// Deterministic pseudo-random number generation (xoshiro256**).
//
// All randomness in AlayaDB (synthetic workloads, index construction, sampling)
// flows through Rng so that tests and benchmarks are reproducible run-to-run.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace alaya {

/// SplitMix64 finalizer: a high-quality, stateless 64->64-bit mixer. Use it to
/// hash small structured inputs (ids, step counters) into well-spread values —
/// e.g. Mix64(Mix64(a) ^ b) for a two-field hash — instead of ad-hoc
/// multiply/modulo schemes, which collide on regular inputs.
constexpr uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// xoshiro256** generator with SplitMix64 seeding. Not thread-safe; create one
/// per thread (see Fork()).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();
  /// Uniform float in [0, 1).
  float UniformFloat() { return static_cast<float>(Uniform()); }
  /// Uniform double in [lo, hi).
  double UniformRange(double lo, double hi) { return lo + (hi - lo) * Uniform(); }
  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t UniformInt(uint64_t bound);

  /// Standard normal via Box-Muller (caches the second deviate).
  double Gaussian();
  float GaussianFloat() { return static_cast<float>(Gaussian()); }
  /// Log-normal with the given parameters of the underlying normal.
  double LogNormal(double mu, double sigma) { return std::exp(mu + sigma * Gaussian()); }

  /// Fills `out[0..n)` with i.i.d. N(0, 1) floats.
  void FillGaussian(float* out, size_t n);
  /// Fills `out[0..n)` with i.i.d. U[0, 1) floats.
  void FillUniform(float* out, size_t n);

  /// Returns k distinct indices drawn uniformly from [0, n). k <= n required.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Derives an independent child generator (for per-thread use).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace alaya
