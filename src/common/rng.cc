#include "src/common/rng.h"

#include <cassert>

namespace alaya {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  return Mix64(*state += 0x9e3779b97f4a7c15ULL);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1, u2;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

void Rng::FillGaussian(float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = GaussianFloat();
}

void Rng::FillUniform(float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = UniformFloat();
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  // Floyd's algorithm: O(k) expected memory, no O(n) permutation.
  std::vector<size_t> out;
  out.reserve(k);
  std::vector<bool> seen;
  if (k * 16 >= n) {
    // Dense case: partial Fisher-Yates over an index array.
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = i;
    for (size_t i = 0; i < k; ++i) {
      size_t j = i + UniformInt(n - i);
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
    return out;
  }
  seen.assign(n, false);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = UniformInt(j + 1);
    if (seen[t]) t = j;
    seen[t] = true;
    out.push_back(t);
  }
  return out;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace alaya
