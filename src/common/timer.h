// Wall-clock timing helpers.
#pragma once

#include <chrono>
#include <cstdint>

namespace alaya {

/// Monotonic stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates durations across start/stop pairs (e.g., per-phase breakdowns).
class AccumTimer {
 public:
  void Start() { timer_.Restart(); }
  void Stop() { total_seconds_ += timer_.ElapsedSeconds(); }
  void Reset() { total_seconds_ = 0.0; }
  double TotalSeconds() const { return total_seconds_; }
  double TotalMillis() const { return total_seconds_ * 1e3; }

 private:
  WallTimer timer_;
  double total_seconds_ = 0.0;
};

}  // namespace alaya
