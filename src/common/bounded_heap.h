// Bounded top-k heaps over (id, score) pairs.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <vector>

#include "src/common/vec_math.h"

namespace alaya {

/// Keeps the k largest-scoring entries seen so far (min-heap of size <= k).
class TopKMaxHeap {
 public:
  explicit TopKMaxHeap(size_t k) : k_(k) { heap_.reserve(k + 1); }

  /// Offers an entry; returns true if it was retained.
  bool Push(uint32_t id, float score) {
    if (k_ == 0) return false;
    if (heap_.size() < k_) {
      heap_.push_back({id, score});
      std::push_heap(heap_.begin(), heap_.end(), MinCmp);
      return true;
    }
    if (score <= heap_.front().score) return false;
    std::pop_heap(heap_.begin(), heap_.end(), MinCmp);
    heap_.back() = {id, score};
    std::push_heap(heap_.begin(), heap_.end(), MinCmp);
    return true;
  }

  /// Smallest retained score; only valid when full().
  float MinRetained() const {
    assert(!heap_.empty());
    return heap_.front().score;
  }

  bool full() const { return heap_.size() >= k_; }
  size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }

  /// Would an entry with this score be admitted?
  bool WouldAccept(float score) const {
    return k_ > 0 && (!full() || score > heap_.front().score);
  }

  /// Extracts contents sorted by descending score (heap is consumed).
  std::vector<ScoredId> TakeSortedDesc() {
    std::vector<ScoredId> out = std::move(heap_);
    SortByScoreDesc(&out);
    return out;
  }

  const std::vector<ScoredId>& raw() const { return heap_; }

 private:
  static bool MinCmp(const ScoredId& a, const ScoredId& b) { return a.score > b.score; }

  size_t k_;
  std::vector<ScoredId> heap_;
};

/// A fixed-capacity sorted candidate pool (best-first search frontier), as used
/// by HNSW-style beam search: keeps the ef closest candidates in ascending
/// "cost" (we store -inner_product as cost so larger ip == better).
class BeamPool {
 public:
  explicit BeamPool(size_t capacity) : capacity_(capacity) { pool_.reserve(capacity + 1); }

  /// Inserts if the pool is not full or score beats the current worst.
  /// Returns the position inserted at, or SIZE_MAX when rejected.
  size_t Insert(uint32_t id, float score) {
    if (full() && score <= pool_.back().score) return SIZE_MAX;
    // Binary search insertion position (descending by score).
    size_t lo = 0, hi = pool_.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (pool_[mid].score >= score) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    pool_.insert(pool_.begin() + lo, ScoredId{id, score});
    if (pool_.size() > capacity_) pool_.pop_back();
    return lo;
  }

  bool full() const { return pool_.size() >= capacity_; }
  size_t size() const { return pool_.size(); }
  const ScoredId& operator[](size_t i) const { return pool_[i]; }
  const std::vector<ScoredId>& entries() const { return pool_; }
  float WorstScore() const { return pool_.empty() ? -1e30f : pool_.back().score; }
  float BestScore() const { return pool_.empty() ? -1e30f : pool_.front().score; }

 private:
  size_t capacity_;
  std::vector<ScoredId> pool_;  // Sorted by descending score.
};

}  // namespace alaya
