// Streaming quantile estimation for serving telemetry: the P² algorithm
// (Jain & Chlamtac, CACM 1985). One sketch tracks one quantile of an
// unbounded stream in O(1) memory — five markers whose heights approximate
// the empirical CDF, adjusted per observation by a piecewise-parabolic
// (hence P²) interpolation. This replaces the serving snapshot's
// first-N-per-class TTFT sample buffers: per-class p50/p99 stay bounded-error
// at any request volume instead of silently freezing after the buffer fills.
#pragma once

#include <cstddef>

namespace alaya {

/// One-quantile P² sketch. Exact (order statistic of the observations) until
/// five samples have arrived; bounded-error streaming estimate after.
/// Copyable — snapshots embed it by value.
class P2QuantileSketch {
 public:
  /// `q` in (0, 1): the quantile to track (0.5 = median, 0.99 = p99).
  explicit P2QuantileSketch(double q = 0.5);

  void Add(double x);

  /// Current estimate; 0 before any observation. With n < 5 this is the
  /// nearest-rank order statistic (exact); after, the P² middle marker.
  double Value() const;

  size_t count() const { return count_; }
  double quantile() const { return q_; }

 private:
  double Parabolic(int i, double d) const;
  double Linear(int i, int d) const;

  double q_;
  size_t count_ = 0;
  double heights_[5] = {0, 0, 0, 0, 0};    ///< Marker heights (q0..q4).
  double positions_[5] = {1, 2, 3, 4, 5};  ///< Actual marker positions (1-based).
  double desired_[5];                      ///< Desired marker positions.
  double increments_[5];                   ///< Per-observation desired deltas.
};

}  // namespace alaya
