#include "src/common/vector_codec.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define ALAYA_X86 1
#elif defined(__ARM_NEON) || defined(__aarch64__)
#include <arm_neon.h>
#define ALAYA_NEON 1
#endif

namespace alaya {

const char* VectorCodecName(VectorCodec c) {
  switch (c) {
    case VectorCodec::kFp32:
      return "fp32";
    case VectorCodec::kFp16:
      return "fp16";
    case VectorCodec::kInt8:
      return "int8";
  }
  return "unknown";
}

bool ParseVectorCodec(const std::string& name, VectorCodec* out) {
  if (name == "fp32") {
    *out = VectorCodec::kFp32;
  } else if (name == "fp16") {
    *out = VectorCodec::kFp16;
  } else if (name == "int8") {
    *out = VectorCodec::kInt8;
  } else {
    return false;
  }
  return true;
}

size_t CodecBytesPerScalar(VectorCodec c) {
  switch (c) {
    case VectorCodec::kFp16:
      return 2;
    case VectorCodec::kInt8:
      return 1;
    case VectorCodec::kFp32:
    default:
      return 4;
  }
}

// --- IEEE binary16 conversions (scalar, round-to-nearest-even) -------------

uint16_t Fp16FromFloat(float x) {
  uint32_t f;
  std::memcpy(&f, &x, sizeof(f));
  const uint32_t sign = (f >> 16) & 0x8000u;
  f &= 0x7FFFFFFFu;
  if (f > 0x7F800000u) return static_cast<uint16_t>(sign | 0x7E00u);  // NaN.
  if (f >= 0x38800000u) {
    // Normal half range (or overflow): drop 13 mantissa bits with RNE.
    const uint32_t rounded = f + 0xFFFu + ((f >> 13) & 1u);
    if (rounded >= 0x47800000u) return static_cast<uint16_t>(sign | 0x7C00u);
    return static_cast<uint16_t>(sign | ((rounded - 0x38000000u) >> 13));
  }
  if (f < 0x33000000u) return static_cast<uint16_t>(sign);  // Below 2^-25 -> 0.
  // Subnormal half: mantissa becomes value / 2^-24, rounded to nearest even.
  const uint32_t shift = 126u - (f >> 23);  // In [14, 24].
  const uint32_t m = (f & 0x7FFFFFu) | 0x800000u;
  const uint32_t bias = ((1u << shift) >> 1) - 1u + ((m >> shift) & 1u);
  return static_cast<uint16_t>(sign | ((m + bias) >> shift));
}

float Fp16ToFloat(uint16_t h) {
  const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  uint32_t exp = (h >> 10) & 0x1Fu;
  uint32_t mant = h & 0x3FFu;
  uint32_t f;
  if (exp == 0) {
    if (mant == 0) {
      f = sign;
    } else {
      int e = -1;
      do {
        mant <<= 1;
        ++e;
      } while (!(mant & 0x400u));
      f = sign | ((112u - static_cast<uint32_t>(e)) << 23) | ((mant & 0x3FFu) << 13);
    }
  } else if (exp == 0x1Fu) {
    f = sign | 0x7F800000u | (mant << 13);
  } else {
    f = sign | ((exp + 112u) << 23) | (mant << 13);
  }
  float out;
  std::memcpy(&out, &f, sizeof(out));
  return out;
}

// --- Scalar reference kernels ----------------------------------------------
// The fp32 loops are the historical vec_math.cc implementations, moved here
// verbatim: the scalar dispatch level is bit-exact with what every caller
// computed before the kernel table existed.

namespace {

float DotScalar(const float* a, const float* b, size_t d) {
  float s0 = 0.f, s1 = 0.f, s2 = 0.f, s3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  float s = s0 + s1 + s2 + s3;
  for (; i < d; ++i) s += a[i] * b[i];
  return s;
}

float L2SqScalar(const float* a, const float* b, size_t d) {
  float s = 0.f;
  for (size_t i = 0; i < d; ++i) {
    const float t = a[i] - b[i];
    s += t * t;
  }
  return s;
}

void AxpyScalar(float* y, const float* x, size_t d, float alpha) {
  for (size_t i = 0; i < d; ++i) y[i] += alpha * x[i];
}

void ScaleScalar(float* a, size_t d, float s) {
  for (size_t i = 0; i < d; ++i) a[i] *= s;
}

void MatVecScalar(const float* m, size_t rows, size_t d, const float* v,
                  float* out) {
  for (size_t i = 0; i < rows; ++i) out[i] = DotScalar(m + i * d, v, d);
}

float DotF16Scalar(const float* q, const uint16_t* c, size_t d) {
  float s0 = 0.f, s1 = 0.f, s2 = 0.f, s3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    s0 += q[i] * Fp16ToFloat(c[i]);
    s1 += q[i + 1] * Fp16ToFloat(c[i + 1]);
    s2 += q[i + 2] * Fp16ToFloat(c[i + 2]);
    s3 += q[i + 3] * Fp16ToFloat(c[i + 3]);
  }
  float s = s0 + s1 + s2 + s3;
  for (; i < d; ++i) s += q[i] * Fp16ToFloat(c[i]);
  return s;
}

float DotI8Scalar(const float* q, const int8_t* c, size_t d) {
  float s0 = 0.f, s1 = 0.f, s2 = 0.f, s3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    s0 += q[i] * static_cast<float>(c[i]);
    s1 += q[i + 1] * static_cast<float>(c[i + 1]);
    s2 += q[i + 2] * static_cast<float>(c[i + 2]);
    s3 += q[i + 3] * static_cast<float>(c[i + 3]);
  }
  float s = s0 + s1 + s2 + s3;
  for (; i < d; ++i) s += q[i] * static_cast<float>(c[i]);
  return s;
}

constexpr KernelOps kScalarOps = {
    DotScalar,  L2SqScalar,   AxpyScalar,  ScaleScalar,
    MatVecScalar, DotF16Scalar, DotI8Scalar, "scalar",
};

// --- AVX2 / FMA / F16C kernels ---------------------------------------------

#if defined(ALAYA_X86)

__attribute__((target("avx"))) inline float HSum256(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

__attribute__((target("avx2,fma"))) float DotAvx2(const float* a, const float* b,
                                                  size_t d) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= d; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8),
                           acc1);
  }
  for (; i + 8 <= d; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
  }
  float s = HSum256(_mm256_add_ps(acc0, acc1));
  for (; i < d; ++i) s += a[i] * b[i];
  return s;
}

__attribute__((target("avx2,fma"))) float L2SqAvx2(const float* a, const float* b,
                                                   size_t d) {
  __m256 acc = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m256 t = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc = _mm256_fmadd_ps(t, t, acc);
  }
  float s = HSum256(acc);
  for (; i < d; ++i) {
    const float t = a[i] - b[i];
    s += t * t;
  }
  return s;
}

__attribute__((target("avx2,fma"))) void AxpyAvx2(float* y, const float* x,
                                                  size_t d, float alpha) {
  const __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    _mm256_storeu_ps(y + i,
                     _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (; i < d; ++i) y[i] += alpha * x[i];
}

__attribute__((target("avx2"))) void ScaleAvx2(float* a, size_t d, float s) {
  const __m256 vs = _mm256_set1_ps(s);
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    _mm256_storeu_ps(a + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), vs));
  }
  for (; i < d; ++i) a[i] *= s;
}

__attribute__((target("avx2,fma"))) void MatVecAvx2(const float* m, size_t rows,
                                                    size_t d, const float* v,
                                                    float* out) {
  for (size_t i = 0; i < rows; ++i) out[i] = DotAvx2(m + i * d, v, d);
}

__attribute__((target("avx2,fma,f16c"))) float DotF16Avx2(const float* q,
                                                          const uint16_t* c,
                                                          size_t d) {
  __m256 acc = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m256 cf = _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(c + i)));
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(q + i), cf, acc);
  }
  float s = HSum256(acc);
  for (; i < d; ++i) s += q[i] * Fp16ToFloat(c[i]);
  return s;
}

__attribute__((target("avx2,fma"))) float DotI8Avx2(const float* q, const int8_t* c,
                                                    size_t d) {
  __m256 acc = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m128i bytes =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(c + i));
    const __m256 cf = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(bytes));
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(q + i), cf, acc);
  }
  float s = HSum256(acc);
  for (; i < d; ++i) s += q[i] * static_cast<float>(c[i]);
  return s;
}

constexpr KernelOps kAvx2Ops = {
    DotAvx2,  L2SqAvx2,   AxpyAvx2,  ScaleAvx2,
    MatVecAvx2, DotF16Avx2, DotI8Avx2, "avx2",
};

#endif  // ALAYA_X86

// --- NEON kernels (arm64 baseline: no runtime probe needed) ----------------

#if defined(ALAYA_NEON)

inline float HSum128(float32x4_t v) { return vaddvq_f32(v); }

float DotNeon(const float* a, const float* b, size_t d) {
  float32x4_t acc0 = vdupq_n_f32(0.f);
  float32x4_t acc1 = vdupq_n_f32(0.f);
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
    acc1 = vfmaq_f32(acc1, vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
  }
  for (; i + 4 <= d; i += 4) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
  }
  float s = HSum128(vaddq_f32(acc0, acc1));
  for (; i < d; ++i) s += a[i] * b[i];
  return s;
}

float L2SqNeon(const float* a, const float* b, size_t d) {
  float32x4_t acc = vdupq_n_f32(0.f);
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    const float32x4_t t = vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    acc = vfmaq_f32(acc, t, t);
  }
  float s = HSum128(acc);
  for (; i < d; ++i) {
    const float t = a[i] - b[i];
    s += t * t;
  }
  return s;
}

void AxpyNeon(float* y, const float* x, size_t d, float alpha) {
  const float32x4_t va = vdupq_n_f32(alpha);
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    vst1q_f32(y + i, vfmaq_f32(vld1q_f32(y + i), va, vld1q_f32(x + i)));
  }
  for (; i < d; ++i) y[i] += alpha * x[i];
}

void ScaleNeon(float* a, size_t d, float s) {
  const float32x4_t vs = vdupq_n_f32(s);
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    vst1q_f32(a + i, vmulq_f32(vld1q_f32(a + i), vs));
  }
  for (; i < d; ++i) a[i] *= s;
}

void MatVecNeon(const float* m, size_t rows, size_t d, const float* v, float* out) {
  for (size_t i = 0; i < rows; ++i) out[i] = DotNeon(m + i * d, v, d);
}

float DotF16Neon(const float* q, const uint16_t* c, size_t d) {
  // FP16 *conversions* are ARMv8.0 baseline (vcvt_f32_f16).
  float32x4_t acc = vdupq_n_f32(0.f);
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    const float32x4_t cf =
        vcvt_f32_f16(vreinterpret_f16_u16(vld1_u16(c + i)));
    acc = vfmaq_f32(acc, vld1q_f32(q + i), cf);
  }
  float s = HSum128(acc);
  for (; i < d; ++i) s += q[i] * Fp16ToFloat(c[i]);
  return s;
}

float DotI8Neon(const float* q, const int8_t* c, size_t d) {
  float32x4_t acc = vdupq_n_f32(0.f);
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const int16x8_t w = vmovl_s8(vld1_s8(c + i));
    acc = vfmaq_f32(acc, vld1q_f32(q + i),
                    vcvtq_f32_s32(vmovl_s16(vget_low_s16(w))));
    acc = vfmaq_f32(acc, vld1q_f32(q + i + 4),
                    vcvtq_f32_s32(vmovl_s16(vget_high_s16(w))));
  }
  float s = HSum128(acc);
  for (; i < d; ++i) s += q[i] * static_cast<float>(c[i]);
  return s;
}

constexpr KernelOps kNeonOps = {
    DotNeon,  L2SqNeon,   AxpyNeon,  ScaleNeon,
    MatVecNeon, DotF16Neon, DotI8Neon, "neon",
};

#endif  // ALAYA_NEON

const KernelOps& ResolveKernels() {
#if defined(ALAYA_X86)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
      __builtin_cpu_supports("f16c")) {
    return kAvx2Ops;
  }
#elif defined(ALAYA_NEON)
  return kNeonOps;
#endif
  return kScalarOps;
}

}  // namespace

const KernelOps& Kernels() {
  static const KernelOps& ops = ResolveKernels();
  return ops;
}

const KernelOps& ScalarKernels() { return kScalarOps; }

const char* KernelDispatchLevel() { return Kernels().level; }

// --- Codec parameter fitting and in-place quantization ---------------------

CodecParams ComputeCodecParams(const float* data, size_t count, VectorCodec codec) {
  CodecParams p;
  if (codec != VectorCodec::kInt8 || count == 0) return p;
  float lo = data[0], hi = data[0];
  for (size_t i = 1; i < count; ++i) {
    lo = std::min(lo, data[i]);
    hi = std::max(hi, data[i]);
  }
  const float range = hi - lo;
  p.scale = range > 1e-30f ? range / 255.f : 1.f;
  p.zero_point = -128.f - lo / p.scale;
  return p;
}

namespace {

inline int8_t EncodeI8(float x, const CodecParams& p) {
  const float c = std::nearbyintf(x / p.scale + p.zero_point);
  return static_cast<int8_t>(std::clamp(c, -128.f, 127.f));
}

inline float DecodeI8(int8_t c, const CodecParams& p) {
  return p.scale * (static_cast<float>(c) - p.zero_point);
}

}  // namespace

void QuantizeRows(float* data, size_t n, size_t d, VectorCodec codec,
                  CodecParams* params, bool reuse_params) {
  const size_t count = n * d;
  if (codec == VectorCodec::kFp32 || count == 0) {
    if (params != nullptr && !reuse_params) *params = CodecParams{};
    return;
  }
  if (codec == VectorCodec::kFp16) {
    for (size_t i = 0; i < count; ++i) data[i] = Fp16ToFloat(Fp16FromFloat(data[i]));
    if (params != nullptr && !reuse_params) *params = CodecParams{};
    return;
  }
  CodecParams p = (reuse_params && params != nullptr)
                      ? *params
                      : ComputeCodecParams(data, count, codec);
  for (size_t i = 0; i < count; ++i) data[i] = DecodeI8(EncodeI8(data[i], p), p);
  if (params != nullptr) *params = p;
}

// --- CodedVectorSet ---------------------------------------------------------

void CodedVectorSet::Encode(VectorSetView src, VectorCodec codec) {
  EncodeWithParams(src, codec,
                   ComputeCodecParams(src.data, src.n * src.d, codec));
}

void CodedVectorSet::EncodeWithParams(VectorSetView src, VectorCodec codec,
                                      CodecParams params) {
  codec_ = codec;
  params_ = params;
  n_ = 0;
  d_ = src.d;
  f16_.clear();
  i8_.clear();
  if (codec == VectorCodec::kFp32) return;  // Empty set == "score on fp32".
  n_ = src.n;
  const size_t count = src.n * src.d;
  if (codec == VectorCodec::kFp16) {
    f16_.resize(count);
    for (size_t i = 0; i < count; ++i) f16_[i] = Fp16FromFloat(src.data[i]);
  } else {
    i8_.resize(count);
    for (size_t i = 0; i < count; ++i) i8_[i] = EncodeI8(src.data[i], params_);
  }
}

void CodedVectorSet::DecodeRow(uint32_t id, float* out) const {
  switch (codec_) {
    case VectorCodec::kFp16: {
      const uint16_t* row = F16Row(id);
      for (size_t i = 0; i < d_; ++i) out[i] = Fp16ToFloat(row[i]);
      return;
    }
    case VectorCodec::kInt8: {
      const int8_t* row = I8Row(id);
      for (size_t i = 0; i < d_; ++i) out[i] = DecodeI8(row[i], params_);
      return;
    }
    case VectorCodec::kFp32:
      return;  // Nothing stored; the fp32 source is authoritative.
  }
}

// --- Query scoring ----------------------------------------------------------

QueryScorer::QueryScorer(const ScoringView& view, const float* q)
    : q_(q),
      d_(view.d()),
      fp32_(view.fp32),
      coded_(view.coded),
      codec_(view.coded_active() ? view.coded->codec() : VectorCodec::kFp32),
      ops_(&Kernels()) {
  if (codec_ == VectorCodec::kInt8) {
    float s = 0.f;
    for (size_t i = 0; i < d_; ++i) s += q[i];
    q_sum_ = s;
  }
}

size_t RerankTopHits(const ScoringView& view, const float* q,
                     std::vector<ScoredId>* hits) {
  if (!view.coded_active() || view.rerank_k == 0 || hits->empty()) return 0;
  const KernelOps& ops = Kernels();
  const size_t k = std::min(view.rerank_k, hits->size());
  for (size_t i = 0; i < k; ++i) {
    (*hits)[i].score = ops.dot(q, view.fp32.Vec((*hits)[i].id), view.fp32.d);
  }
  std::sort(hits->begin(), hits->begin() + static_cast<ptrdiff_t>(k),
            [](const ScoredId& a, const ScoredId& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.id < b.id;
            });
  return k;
}

// --- Batched coded forms ----------------------------------------------------

void MatVecDotCoded(const CodedVectorSet& coded, const float* q, float* out) {
  const KernelOps& ops = Kernels();
  const size_t n = coded.size();
  const size_t d = coded.dim();
  switch (coded.codec()) {
    case VectorCodec::kFp16:
      for (uint32_t i = 0; i < n; ++i) out[i] = ops.dot_f16(q, coded.F16Row(i), d);
      return;
    case VectorCodec::kInt8: {
      float q_sum = 0.f;
      for (size_t i = 0; i < d; ++i) q_sum += q[i];
      for (uint32_t i = 0; i < n; ++i) {
        out[i] = DotInt8(ops, q, coded.I8Row(i), d, coded.params(), q_sum);
      }
      return;
    }
    case VectorCodec::kFp32:
      return;  // Nothing stored: caller should MatVecDot the fp32 source.
  }
}

void MultiQueryDotCoded(const CodedVectorSet& coded, const float* qs, size_t nq,
                        float* out) {
  const size_t n = coded.size();
  const size_t d = coded.dim();
  for (size_t j = 0; j < nq; ++j) MatVecDotCoded(coded, qs + j * d, out + j * n);
}

}  // namespace alaya
