// Minimal leveled logging to stderr.
#pragma once

#include <sstream>
#include <string>

namespace alaya {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Returns/sets the process-wide minimum emitted level (default kInfo).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is filtered out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace alaya

#define ALAYA_LOG(level)                                                        \
  (::alaya::LogLevel::k##level < ::alaya::GetLogLevel())                        \
      ? (void)0                                                                 \
      : (void)::alaya::internal::LogMessage(::alaya::LogLevel::k##level,        \
                                            __FILE__, __LINE__)                 \
            .stream()

// Stream-capable form: ALAYA_LOGS(Info) << "x=" << x;
#define ALAYA_LOGS(level)                                                       \
  ::alaya::internal::LogMessage(::alaya::LogLevel::k##level, __FILE__, __LINE__).stream()
