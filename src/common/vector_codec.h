// Quantized vector codecs + the typed SIMD kernel interface for the hot path.
//
// Two ideas, one seam:
//
//   1. **Codecs** (fp32 passthrough, fp16, int8 with per-head scale/zero
//      point): a compressed representation for index key vectors and
//      offloaded KV. Decode is `x = scale * (code - zero_point)` (fp16 has
//      identity params). Encoding data that already lies on the codec's grid
//      reproduces the exact codes — the property the spill path relies on for
//      bit-identical persist/restore round trips.
//
//   2. **Kernel dispatch**: every distance/BLAS-1 primitive the attention and
//      search loops use goes through a function-pointer table resolved ONCE at
//      startup from a CPU-feature probe (AVX2+FMA+F16C on x86, NEON on arm64,
//      scalar everywhere else). The scalar table is bit-exact with the loops
//      vec_math.cc shipped before this layer existed; the coded kernels score
//      *without decoding* (int8 uses the identity
//      dot(q, dec(c)) = scale * (Σ q_i·c_i − zp·Σ q_i), with Σ q_i prepared
//      once per query).
//
// Contract for every kernel in the table (and the vec_math.h wrappers over
// them):
//   - d == 0 is valid and returns 0 / writes nothing;
//   - no alignment requirement beyond the element type's natural alignment
//     (loads are unaligned; callers may pass arbitrary row pointers);
//   - input spans must not alias the output (Axpy's y/x must be distinct);
//   - results across dispatch levels agree to accumulation-order rounding
//     (a few ULP for unit-scale data), NOT bit-exactly: reductions sum in
//     lane-major order. Code that needs replay-stable numbers must compare
//     runs from the same process, where the level is fixed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/vec_math.h"
#include "src/index/vector_set.h"

namespace alaya {

/// Wire/deployment representation of a vector element.
enum class VectorCodec : uint8_t { kFp32 = 0, kFp16 = 1, kInt8 = 2 };

const char* VectorCodecName(VectorCodec c);
/// Parses "fp32"/"fp16"/"int8" (bench flags). Returns false on anything else.
bool ParseVectorCodec(const std::string& name, VectorCodec* out);
/// Bytes one encoded scalar occupies: 4 / 2 / 1.
size_t CodecBytesPerScalar(VectorCodec c);

/// Affine dequantization parameters: x = scale * (code - zero_point).
/// One pair per (layer, head, keys|values) tensor; fp32/fp16 use the identity
/// {1, 0} and ignore them.
struct CodecParams {
  float scale = 1.f;
  float zero_point = 0.f;
};

/// IEEE-754 binary16 conversions (round to nearest even, like F16C hardware).
uint16_t Fp16FromFloat(float x);
float Fp16ToFloat(uint16_t h);

/// The single user-facing quantization knob set (DbOptions::quant):
///   index_codec — representation DIPRS/beam search scores graph candidates
///                 on (fp32 keys are kept for build + rerank);
///   kv_codec    — representation stored contexts' KV is rounded to at
///                 materialization (drives deployed-byte accounting, tier
///                 budgets, and the spilled on-disk format);
///   rerank_k    — when index_codec != fp32, the top rerank_k hits of every
///                 search are re-scored against exact fp32 keys (0 disables).
struct QuantOptions {
  VectorCodec index_codec = VectorCodec::kFp32;
  VectorCodec kv_codec = VectorCodec::kFp32;
  size_t rerank_k = 32;
};

// --- Kernel dispatch table -------------------------------------------------

/// Function-pointer table of the hot-path primitives. `Kernels()` returns the
/// best table the running CPU supports; `ScalarKernels()` always returns the
/// portable reference implementations (bit-exact with the historical
/// vec_math.cc loops — the goldens quantization tests diff SIMD against).
struct KernelOps {
  float (*dot)(const float* a, const float* b, size_t d);
  float (*l2sq)(const float* a, const float* b, size_t d);
  void (*axpy)(float* y, const float* x, size_t d, float alpha);
  void (*scale)(float* a, size_t d, float s);
  /// out[i] = <m[i,:], v> for i in [0, rows).
  void (*matvec)(const float* m, size_t rows, size_t d, const float* v, float* out);
  /// <q, decode(c)> for an fp16-coded row (decode-free: widens in registers).
  float (*dot_f16)(const float* q, const uint16_t* c, size_t d);
  /// Raw Σ q_i * c_i over int8 codes — caller applies scale/zero-point via
  /// the q_sum identity (see DotInt8 below).
  float (*dot_i8)(const float* q, const int8_t* c, size_t d);
  const char* level;  ///< "scalar", "avx2", "neon" — for logs and benches.
};

/// The dispatch table the process resolved at startup (probe runs once).
const KernelOps& Kernels();
/// Portable reference table (scalar fallback), independent of the probe.
const KernelOps& ScalarKernels();
/// Dispatch level name, e.g. "avx2"; == Kernels().level.
const char* KernelDispatchLevel();

/// <q, decode(c)> for one int8 row given its params and the precomputed
/// Σ q_i: scale * (dot_i8(q, c, d) - zero_point * q_sum).
inline float DotInt8(const KernelOps& ops, const float* q, const int8_t* c,
                     size_t d, const CodecParams& p, float q_sum) {
  return p.scale * (ops.dot_i8(q, c, d) - p.zero_point * q_sum);
}

// --- Coded storage ---------------------------------------------------------

/// Fits affine int8 params to `count` floats (full range onto [-128, 127]).
/// fp32/fp16 return the identity.
CodecParams ComputeCodecParams(const float* data, size_t count, VectorCodec codec);

/// Rounds `n * d` floats in place onto `codec`'s grid (encode→decode) and
/// reports the params used. The canonical way quantization noise is applied:
/// the resident data stays fp32 (the compute convention of this repo) but
/// carries exactly the information the deployed representation would.
/// kFp32 is a no-op. When `params` is non-null on entry *and*
/// `reuse_params` is true the given params are used instead of refitting —
/// the restore path, where the grid must match what was persisted.
void QuantizeRows(float* data, size_t n, size_t d, VectorCodec codec,
                  CodecParams* params, bool reuse_params = false);

/// Owning, immutable coded copy of one head's vectors (row-major codes).
/// Built once per index; searched decode-free through the kernel table.
class CodedVectorSet {
 public:
  CodedVectorSet() = default;

  /// Encodes `src` (fitting params from the data). kFp32 leaves the set
  /// empty — callers treat an empty set as "score on fp32 directly".
  void Encode(VectorSetView src, VectorCodec codec);
  /// Encodes with caller-fixed params (spill packing uses the params stored
  /// on the KV cache so on-grid data round-trips to identical codes).
  void EncodeWithParams(VectorSetView src, VectorCodec codec, CodecParams params);

  VectorCodec codec() const { return codec_; }
  size_t size() const { return n_; }
  size_t dim() const { return d_; }
  bool empty() const { return n_ == 0; }
  const CodecParams& params() const { return params_; }

  const uint16_t* F16Row(uint32_t id) const { return f16_.data() + size_t(id) * d_; }
  const int8_t* I8Row(uint32_t id) const { return i8_.data() + size_t(id) * d_; }

  /// Decodes one row into `out` (d floats).
  void DecodeRow(uint32_t id, float* out) const;

  uint64_t MemoryBytes() const {
    return f16_.capacity() * sizeof(uint16_t) + i8_.capacity() * sizeof(int8_t);
  }

 private:
  VectorCodec codec_ = VectorCodec::kFp32;
  size_t n_ = 0;
  size_t d_ = 0;
  CodecParams params_;
  std::vector<uint16_t> f16_;
  std::vector<int8_t> i8_;
};

// --- Scoring views for graph search ---------------------------------------

/// What a search scores candidates on: the exact fp32 vectors plus an
/// optional coded sidecar. Implicitly constructible from a bare
/// VectorSetView, so every pre-codec call site keeps compiling (and scoring
/// exactly). When `coded` is present and non-fp32, traversal scores on the
/// codes and the top `rerank_k` survivors are re-scored against fp32.
struct ScoringView {
  VectorSetView fp32;
  const CodedVectorSet* coded = nullptr;
  size_t rerank_k = 0;

  ScoringView() = default;
  ScoringView(VectorSetView v) : fp32(v) {}  // NOLINT: implicit by design.
  ScoringView(VectorSetView v, const CodedVectorSet* c, size_t rk)
      : fp32(v), coded(c), rerank_k(rk) {}

  size_t n() const { return fp32.n; }
  size_t d() const { return fp32.d; }
  /// True when traversal will score approximately (codes, not fp32).
  bool coded_active() const {
    return coded != nullptr && !coded->empty() &&
           coded->codec() != VectorCodec::kFp32;
  }
};

/// Per-query scorer: binds one query to a ScoringView, preparing the
/// codec-specific state (Σ q_i for int8) once, then scores ids decode-free.
class QueryScorer {
 public:
  QueryScorer(const ScoringView& view, const float* q);

  /// Score used for traversal — coded when the view is, exact otherwise.
  float Score(uint32_t id) const {
    switch (codec_) {
      case VectorCodec::kFp16:
        return ops_->dot_f16(q_, coded_->F16Row(id), d_);
      case VectorCodec::kInt8:
        return DotInt8(*ops_, q_, coded_->I8Row(id), d_, coded_->params(), q_sum_);
      case VectorCodec::kFp32:
      default:
        return ops_->dot(q_, fp32_.Vec(id), d_);
    }
  }

  /// Exact fp32 score (the rerank reference), regardless of the view codec.
  float ExactScore(uint32_t id) const { return ops_->dot(q_, fp32_.Vec(id), d_); }

  size_t d() const { return d_; }

 private:
  const float* q_;
  size_t d_;
  VectorSetView fp32_;
  const CodedVectorSet* coded_;
  VectorCodec codec_;
  float q_sum_ = 0.f;
  const KernelOps* ops_;
};

/// Re-scores the best min(view.rerank_k, hits->size()) entries of a
/// best-first hit list against exact fp32 and re-sorts that prefix (desc
/// score, tie asc id — the global ordering convention). No-op unless the
/// view is coded with rerank enabled. Returns the exact dot products spent,
/// for the caller's SearchStats.
size_t RerankTopHits(const ScoringView& view, const float* q,
                     std::vector<ScoredId>* hits);

// --- Batched coded forms ---------------------------------------------------

/// out[i] = <q, decode(row i)> for every row of `coded` (decode-free matvec).
void MatVecDotCoded(const CodedVectorSet& coded, const float* q, float* out);

/// Multi-query batch: out[j * coded.size() + i] = <q_j, decode(row i)> for
/// queries q_0..q_{nq-1} packed row-major in `qs`. Per-query state (Σ q_j)
/// is prepared once per query, amortized over all rows.
void MultiQueryDotCoded(const CodedVectorSet& coded, const float* qs, size_t nq,
                        float* out);

}  // namespace alaya
