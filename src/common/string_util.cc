#include "src/common/string_util.h"

#include <cstdio>

namespace alaya {

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int needed = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  if (u == 0) return StrFormat("%llu B", static_cast<unsigned long long>(bytes));
  return StrFormat("%.2f %s", v, units[u]);
}

std::string HumanSeconds(double seconds) {
  if (seconds >= 1.0) return StrFormat("%.3f s", seconds);
  if (seconds >= 1e-3) return StrFormat("%.3f ms", seconds * 1e3);
  if (seconds >= 1e-6) return StrFormat("%.1f us", seconds * 1e6);
  return StrFormat("%.0f ns", seconds * 1e9);
}

std::string Join(const std::vector<std::string>& items, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

}  // namespace alaya
