#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace alaya {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mu;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarning:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < GetLogLevel()) return;
  std::lock_guard<std::mutex> lk(g_log_mu);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal
}  // namespace alaya
