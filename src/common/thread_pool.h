// Fixed-size worker pool with a chunked ParallelFor helper.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace alaya {

/// A fixed-size thread pool. Tasks are plain std::function<void()>; use Wait()
/// or ParallelFor for synchronization. Destruction drains pending tasks.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (0 -> hardware concurrency).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks (including ones submitted from within
  /// tasks) have completed.
  void Wait();

  /// Runs fn(i) for i in [begin, end) across the pool, blocking until done.
  /// Falls back to inline execution for tiny ranges.
  void ParallelFor(size_t begin, size_t end, const std::function<void(size_t)>& fn,
                   size_t min_grain = 1);

  /// Runs fn(chunk_begin, chunk_end) over contiguous chunks; useful when the
  /// body wants per-chunk scratch state.
  void ParallelForChunked(size_t begin, size_t end, size_t num_chunks,
                          const std::function<void(size_t, size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

  /// Process-wide shared pool (lazily constructed with hardware concurrency).
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace alaya
