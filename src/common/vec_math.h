// Dense float vector kernels used throughout attention computation and
// vector search. The BLAS-1 style primitives (Dot, L2Sq, Axpy, Scale,
// MatVecDot) are thin wrappers over the runtime-dispatched kernel table in
// vector_codec.h — AVX2/NEON when the CPU has them, a scalar fallback that is
// bit-exact with the historical loops otherwise. Hot loops that score many
// vectors can grab `Kernels()` once and call through the table directly.
//
// Contract (shared with every table kernel):
//   - d == 0 is valid: reductions return 0, in-place ops write nothing;
//   - no alignment requirement beyond natural element alignment;
//   - input spans must not alias outputs (Axpy's y and x must be distinct);
//   - results across dispatch levels agree to accumulation-order rounding,
//     not bit-exactly — replay-stable comparisons must stay in-process.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace alaya {

/// Inner product <a, b> over d floats.
float Dot(const float* a, const float* b, size_t d);

/// Squared Euclidean distance ||a - b||^2.
float L2Sq(const float* a, const float* b, size_t d);

/// Euclidean norm ||a||.
float Norm(const float* a, size_t d);

/// In-place scale: a *= s.
void Scale(float* a, size_t d, float s);

/// y += alpha * x.
void Axpy(float* y, const float* x, size_t d, float alpha);

/// Normalizes a to unit length in place (no-op on the zero vector).
void NormalizeInPlace(float* a, size_t d);

/// Cosine similarity; 0 when either vector is zero.
float CosineSim(const float* a, const float* b, size_t d);

/// In-place numerically-stable softmax over n scores.
void SoftmaxInPlace(float* scores, size_t n);

/// Stable softmax given precomputed max; returns sum of exp(scores[i] - max).
/// scores are transformed to exp(scores[i] - max) in place.
float ExpShiftInPlace(float* scores, size_t n, float max_value);

/// Index of the maximum element (first on ties); n must be > 0.
size_t ArgMax(const float* a, size_t n);

/// Maximum element value; n must be > 0.
float MaxValue(const float* a, size_t n);

/// Relative L2 error ||a - b|| / max(||b||, eps).
float RelativeError(const float* a, const float* b, size_t d, float eps = 1e-12f);

/// Row-major matrix-vector products: out[i] = <m[i, :], v> for i in [0, rows).
void MatVecDot(const float* m, size_t rows, size_t d, const float* v, float* out);

/// A trivially-copyable (id, score) pair used in search results everywhere.
struct ScoredId {
  uint32_t id;
  float score;
};

/// Sorts (in place) by descending score, tie-break ascending id.
void SortByScoreDesc(std::vector<ScoredId>* v);

}  // namespace alaya
