#include "src/common/quantile_sketch.h"

#include <algorithm>
#include <cmath>

namespace alaya {

P2QuantileSketch::P2QuantileSketch(double q) : q_(std::clamp(q, 1e-6, 1.0 - 1e-6)) {
  desired_[0] = 1;
  desired_[1] = 1 + 2 * q_;
  desired_[2] = 1 + 4 * q_;
  desired_[3] = 3 + 2 * q_;
  desired_[4] = 5;
  increments_[0] = 0;
  increments_[1] = q_ / 2;
  increments_[2] = q_;
  increments_[3] = (1 + q_) / 2;
  increments_[4] = 1;
}

double P2QuantileSketch::Parabolic(int i, double d) const {
  return heights_[i] +
         d / (positions_[i + 1] - positions_[i - 1]) *
             ((positions_[i] - positions_[i - 1] + d) *
                  (heights_[i + 1] - heights_[i]) /
                  (positions_[i + 1] - positions_[i]) +
              (positions_[i + 1] - positions_[i] - d) *
                  (heights_[i] - heights_[i - 1]) /
                  (positions_[i] - positions_[i - 1]));
}

double P2QuantileSketch::Linear(int i, int d) const {
  return heights_[i] + d * (heights_[i + d] - heights_[i]) /
                           (positions_[i + d] - positions_[i]);
}

void P2QuantileSketch::Add(double x) {
  if (count_ < 5) {
    heights_[count_++] = x;
    if (count_ == 5) std::sort(heights_, heights_ + 5);
    return;
  }
  // Find the marker cell containing x, stretching the extremes if needed.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  ++count_;
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];
  // Nudge interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double diff = desired_[i] - positions_[i];
    if ((diff >= 1 && positions_[i + 1] - positions_[i] > 1) ||
        (diff <= -1 && positions_[i - 1] - positions_[i] < -1)) {
      const int d = diff >= 0 ? 1 : -1;
      double h = Parabolic(i, d);
      if (!(heights_[i - 1] < h && h < heights_[i + 1])) h = Linear(i, d);
      heights_[i] = h;
      positions_[i] += d;
    }
  }
}

double P2QuantileSketch::Value() const {
  if (count_ == 0) return 0;
  if (count_ < 5) {
    // Exact nearest-rank order statistic over the (unsorted) init buffer.
    double sorted[5];
    std::copy(heights_, heights_ + count_, sorted);
    std::sort(sorted, sorted + count_);
    const size_t rank = static_cast<size_t>(
        std::ceil(q_ * static_cast<double>(count_)));
    return sorted[std::min(count_, std::max<size_t>(rank, 1)) - 1];
  }
  return heights_[2];
}

}  // namespace alaya
