// Status / Result error-handling primitives (RocksDB/Abseil-style, no exceptions).
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace alaya {

/// Canonical error codes used across AlayaDB.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kCorruption = 4,
  kIoError = 5,
  kNotSupported = 6,
  kResourceExhausted = 7,
  kFailedPrecondition = 8,
  kAborted = 9,
  kInternal = 10,
  kCancelled = 11,          ///< Caller-requested cancellation (RequestHandle).
  kDeadlineExceeded = 12,   ///< Request deadline expired before completion.
  kBacklogFull = 13,        ///< Admission queue at capacity; retry later.
  kNeverFits = 14,          ///< Request exceeds a hard budget even running alone.
};

/// Human-readable name for a status code ("Ok", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. Functions that can fail return Status
/// (or Result<T> for value-producing functions) instead of throwing.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// Retryable admission rejection: the queue is full right now; backing off
  /// and resubmitting can succeed.
  static Status BacklogFull(std::string msg) {
    return Status(StatusCode::kBacklogFull, std::move(msg));
  }
  /// Permanent admission rejection: the request exceeds a hard budget even
  /// running alone; retrying can never succeed.
  static Status NeverFits(std::string msg) {
    return Status(StatusCode::kNeverFits, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const { return code_ == StatusCode::kDeadlineExceeded; }
  bool IsBacklogFull() const { return code_ == StatusCode::kBacklogFull; }
  bool IsNeverFits() const { return code_ == StatusCode::kNeverFits; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error union. Accessing value() on an error aborts in debug builds.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}             // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {      // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result constructed from OK status without a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T&& TakeValue() {
    assert(ok());
    return std::move(*value_);
  }
  /// Returns the contained value, or `fallback` on error.
  T ValueOr(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace alaya

/// Propagates a non-OK Status to the caller.
#define ALAYA_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::alaya::Status _alaya_status = (expr);         \
    if (!_alaya_status.ok()) return _alaya_status;  \
  } while (0)

/// Evaluates a Result<T> expression; assigns its value to `lhs` or propagates
/// the error.
#define ALAYA_ASSIGN_OR_RETURN(lhs, expr)              \
  auto ALAYA_CONCAT_(_alaya_result, __LINE__) = (expr);          \
  if (!ALAYA_CONCAT_(_alaya_result, __LINE__).ok())              \
    return ALAYA_CONCAT_(_alaya_result, __LINE__).status();      \
  lhs = ALAYA_CONCAT_(_alaya_result, __LINE__).TakeValue()

#define ALAYA_CONCAT_INNER_(a, b) a##b
#define ALAYA_CONCAT_(a, b) ALAYA_CONCAT_INNER_(a, b)
