#include "src/common/vec_math.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/common/vector_codec.h"

namespace alaya {

// The BLAS-1 style primitives dispatch through the kernel table resolved at
// startup (see vector_codec.h). The scalar table preserves the historical
// loops bit-for-bit; wider levels agree to accumulation-order rounding.

float Dot(const float* a, const float* b, size_t d) { return Kernels().dot(a, b, d); }

float L2Sq(const float* a, const float* b, size_t d) {
  return Kernels().l2sq(a, b, d);
}

float Norm(const float* a, size_t d) { return std::sqrt(Dot(a, a, d)); }

void Scale(float* a, size_t d, float s) { Kernels().scale(a, d, s); }

void Axpy(float* y, const float* x, size_t d, float alpha) {
  Kernels().axpy(y, x, d, alpha);
}

void NormalizeInPlace(float* a, size_t d) {
  const float n = Norm(a, d);
  if (n > 0.f) Scale(a, d, 1.0f / n);
}

float CosineSim(const float* a, const float* b, size_t d) {
  const float na = Norm(a, d);
  const float nb = Norm(b, d);
  if (na == 0.f || nb == 0.f) return 0.f;
  return Dot(a, b, d) / (na * nb);
}

void SoftmaxInPlace(float* scores, size_t n) {
  if (n == 0) return;
  const float m = MaxValue(scores, n);
  float sum = ExpShiftInPlace(scores, n, m);
  if (sum <= 0.f) sum = 1.f;
  const float inv = 1.0f / sum;
  for (size_t i = 0; i < n; ++i) scores[i] *= inv;
}

float ExpShiftInPlace(float* scores, size_t n, float max_value) {
  float sum = 0.f;
  for (size_t i = 0; i < n; ++i) {
    scores[i] = std::exp(scores[i] - max_value);
    sum += scores[i];
  }
  return sum;
}

size_t ArgMax(const float* a, size_t n) {
  assert(n > 0);
  size_t best = 0;
  for (size_t i = 1; i < n; ++i) {
    if (a[i] > a[best]) best = i;
  }
  return best;
}

float MaxValue(const float* a, size_t n) { return a[ArgMax(a, n)]; }

float RelativeError(const float* a, const float* b, size_t d, float eps) {
  float num = 0.f, den = 0.f;
  for (size_t i = 0; i < d; ++i) {
    const float t = a[i] - b[i];
    num += t * t;
    den += b[i] * b[i];
  }
  return std::sqrt(num) / std::max(std::sqrt(den), eps);
}

void MatVecDot(const float* m, size_t rows, size_t d, const float* v, float* out) {
  Kernels().matvec(m, rows, d, v, out);
}

void SortByScoreDesc(std::vector<ScoredId>* v) {
  std::sort(v->begin(), v->end(), [](const ScoredId& a, const ScoredId& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  });
}

}  // namespace alaya
