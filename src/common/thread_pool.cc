#include "src/common/thread_pool.h"

#include <algorithm>
#include <cassert>
#include <memory>

namespace alaya {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

namespace {

// Shared state of one ParallelFor call. Heap-allocated and reference-counted
// because helper tasks may still be queued (and never grab a chunk) after the
// caller has returned; they must find live atomics, not a dead stack frame.
struct ParallelForState {
  std::atomic<size_t> next;
  std::atomic<size_t> chunks_done{0};
  size_t end = 0;
  size_t chunk_size = 0;
  size_t total_chunks = 0;
  const std::function<void(size_t)>* fn = nullptr;  ///< Valid until chunks_done == total.
  std::mutex mu;
  std::condition_variable cv;

  /// Grabs and executes chunks until none remain; completion is signaled via
  /// chunks_done/cv when the last chunk finishes.
  void RunChunks() {
    for (;;) {
      const size_t lo = next.fetch_add(chunk_size);
      if (lo >= end) return;
      const size_t hi = std::min(end, lo + chunk_size);
      for (size_t i = lo; i < hi; ++i) (*fn)(i);
      if (chunks_done.fetch_add(1) + 1 == total_chunks) {
        std::unique_lock<std::mutex> lk(mu);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn, size_t min_grain) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t nthreads = num_threads();
  if (n <= min_grain || nthreads <= 1) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // Dynamic chunking: ~4 chunks per worker bounds scheduling overhead while
  // keeping load balance for skewed work.
  const size_t chunks = std::min(n, nthreads * 4);
  auto state = std::make_shared<ParallelForState>();
  state->next.store(begin);
  state->end = end;
  state->chunk_size = (n + chunks - 1) / chunks;
  state->total_chunks = (n + state->chunk_size - 1) / state->chunk_size;
  state->fn = &fn;
  // One helper per extra chunk; the caller is itself a participant. The caller
  // executing chunks (instead of sleeping on a condvar) is what makes nested
  // ParallelFor calls — e.g. an index build issued from inside a serving-engine
  // pool task — deadlock-free: every caller is guaranteed forward progress on
  // its own work even when all workers are busy.
  for (size_t c = 1; c < state->total_chunks; ++c) {
    Submit([state] { state->RunChunks(); });
  }
  state->RunChunks();
  std::unique_lock<std::mutex> lk(state->mu);
  state->cv.wait(lk, [&] { return state->chunks_done.load() == state->total_chunks; });
}

void ThreadPool::ParallelForChunked(size_t begin, size_t end, size_t num_chunks,
                                    const std::function<void(size_t, size_t)>& fn) {
  if (begin >= end) return;
  const size_t n = end - begin;
  num_chunks = std::max<size_t>(1, std::min(num_chunks, n));
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  const size_t total = (n + chunk - 1) / chunk;
  // One ParallelFor iteration per chunk index: reuses the caller-participates
  // scheme instead of duplicating it.
  ParallelFor(0, total, [&](size_t c) {
    const size_t lo = begin + c * chunk;
    fn(lo, std::min(end, lo + chunk));
  });
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(0);
  return pool;
}

}  // namespace alaya
