#include "src/common/thread_pool.h"

#include <algorithm>
#include <cassert>

namespace alaya {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn, size_t min_grain) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t nthreads = num_threads();
  if (n <= min_grain || nthreads <= 1) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // Dynamic chunking: ~4 chunks per worker bounds scheduling overhead while
  // keeping load balance for skewed work.
  const size_t chunks = std::min(n, nthreads * 4);
  std::atomic<size_t> next{begin};
  std::atomic<size_t> done_chunks{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  const size_t chunk_size = (n + chunks - 1) / chunks;
  size_t actual_chunks = (n + chunk_size - 1) / chunk_size;
  for (size_t c = 0; c < actual_chunks; ++c) {
    Submit([&, this] {
      (void)this;
      for (;;) {
        size_t lo = next.fetch_add(chunk_size);
        if (lo >= end) break;
        size_t hi = std::min(end, lo + chunk_size);
        for (size_t i = lo; i < hi; ++i) fn(i);
      }
      size_t d = done_chunks.fetch_add(1) + 1;
      if (d == actual_chunks) {
        std::unique_lock<std::mutex> lk(done_mu);
        done_cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lk(done_mu);
  done_cv.wait(lk, [&] { return done_chunks.load() == actual_chunks; });
}

void ThreadPool::ParallelForChunked(size_t begin, size_t end, size_t num_chunks,
                                    const std::function<void(size_t, size_t)>& fn) {
  if (begin >= end) return;
  const size_t n = end - begin;
  num_chunks = std::max<size_t>(1, std::min(num_chunks, n));
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  std::atomic<size_t> done{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t actual = 0;
  for (size_t lo = begin; lo < end; lo += chunk) ++actual;
  for (size_t lo = begin; lo < end; lo += chunk) {
    const size_t hi = std::min(end, lo + chunk);
    Submit([&, lo, hi] {
      fn(lo, hi);
      if (done.fetch_add(1) + 1 == actual) {
        std::unique_lock<std::mutex> lk(done_mu);
        done_cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lk(done_mu);
  done_cv.wait(lk, [&] { return done.load() == actual; });
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(0);
  return pool;
}

}  // namespace alaya
