#include "src/common/status.h"

namespace alaya {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kBacklogFull:
      return "BacklogFull";
    case StatusCode::kNeverFits:
      return "NeverFits";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace alaya
