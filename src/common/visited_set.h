// Epoch-based visited markers for graph traversal (O(1) reset between queries).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace alaya {

/// Marks node ids visited during one search episode. Reset() is O(1) except
/// every 2^32-1 epochs when the backing array is cleared.
class VisitedSet {
 public:
  explicit VisitedSet(size_t n = 0) : marks_(n, 0) {}

  /// Grows capacity to at least n ids.
  void Resize(size_t n) {
    if (n > marks_.size()) marks_.resize(n, 0);
  }

  /// Starts a fresh episode.
  void Reset() {
    if (++epoch_ == 0) {
      std::fill(marks_.begin(), marks_.end(), 0);
      epoch_ = 1;
    }
  }

  bool IsVisited(uint32_t id) const { return marks_[id] == epoch_; }

  /// Marks id; returns true if it was newly marked.
  bool Visit(uint32_t id) {
    if (marks_[id] == epoch_) return false;
    marks_[id] = epoch_;
    return true;
  }

  size_t capacity() const { return marks_.size(); }

 private:
  std::vector<uint32_t> marks_;
  uint32_t epoch_ = 0;
};

}  // namespace alaya
