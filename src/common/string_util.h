// printf-style string formatting and human-readable unit helpers.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <string>
#include <vector>

namespace alaya {

/// snprintf into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// "1.50 GB", "320.0 MB", "4.2 KB", "17 B".
std::string HumanBytes(uint64_t bytes);

/// "1.23 s", "45.6 ms", "789 us".
std::string HumanSeconds(double seconds);

/// Joins items with a separator.
std::string Join(const std::vector<std::string>& items, const std::string& sep);

}  // namespace alaya
