#include "src/attention/partial_softmax.h"

#include <cmath>

#include "src/common/vector_codec.h"

namespace alaya {

void PartialAttention::Accumulate(float logit, const float* v) {
  const size_t d = acc_.size();
  const KernelOps& ops = Kernels();
  if (logit <= max_logit_) {
    const float w = std::exp(logit - max_logit_);
    sum_exp_ += w;
    ops.axpy(acc_.data(), v, d, w);
    return;
  }
  // New maximum: rescale the existing accumulator onto the new base.
  const float rescale = (sum_exp_ > 0.f) ? std::exp(max_logit_ - logit) : 0.f;
  if (rescale != 1.f) {
    ops.scale(acc_.data(), d, rescale);
    sum_exp_ *= rescale;
  }
  max_logit_ = logit;
  sum_exp_ += 1.f;
  ops.axpy(acc_.data(), v, d, 1.f);
}

void PartialAttention::Merge(const PartialAttention& other) {
  if (other.empty()) return;
  const size_t d = acc_.size();
  if (empty()) {
    acc_ = other.acc_;
    max_logit_ = other.max_logit_;
    sum_exp_ = other.sum_exp_;
    return;
  }
  const KernelOps& ops = Kernels();
  if (other.max_logit_ <= max_logit_) {
    const float w = std::exp(other.max_logit_ - max_logit_);
    sum_exp_ += other.sum_exp_ * w;
    ops.axpy(acc_.data(), other.acc_.data(), d, w);
  } else {
    const float w = std::exp(max_logit_ - other.max_logit_);
    ops.scale(acc_.data(), d, w);
    sum_exp_ = sum_exp_ * w + other.sum_exp_;
    ops.axpy(acc_.data(), other.acc_.data(), d, 1.f);
    max_logit_ = other.max_logit_;
  }
}

void PartialAttention::Finalize(float* out) const {
  const size_t d = acc_.size();
  if (sum_exp_ <= 0.f) {
    for (size_t i = 0; i < d; ++i) out[i] = 0.f;
    return;
  }
  const float inv = 1.0f / sum_exp_;
  for (size_t i = 0; i < d; ++i) out[i] = acc_[i] * inv;
}

}  // namespace alaya
