// The native data-centric attention engine (§7.2): partial attention is
// computed on each device where its KV partition resides (GPU window + local
// tail, CPU retrieved tokens), then aggregated — instead of gathering the
// retrieved KV onto one device first.
#pragma once

#include <cstdint>
#include <span>

#include "src/attention/partial_softmax.h"
#include "src/common/vec_math.h"
#include "src/index/vector_set.h"

namespace alaya {

/// One contiguous-or-sparse slice of a head's KV cache living on one device.
struct KvPartition {
  VectorSetView keys;
  VectorSetView values;
  /// When non-empty, only these token ids participate; otherwise the whole
  /// range [range_begin, range_end) does.
  std::span<const uint32_t> ids;
  uint32_t range_begin = 0;
  uint32_t range_end = 0;
};

/// Per-call accounting.
struct AttentionStats {
  uint64_t tokens_attended = 0;
  uint64_t flops = 0;
};

/// Computes one head's partial attention over a partition, folding results
/// into `state`. `scale` is 1/sqrt(d) (Eq. 1). Returns tokens processed.
size_t AccumulatePartition(const float* q, const KvPartition& part, float scale,
                           PartialAttention* state);

/// Exact full attention over keys/values [0, n) for one head: the reference
/// the paper's "Full Attention" rows use. out has head_dim floats.
void FullAttentionHead(const float* q, VectorSetView keys, VectorSetView values,
                       size_t n, float* out, AttentionStats* stats = nullptr);

/// Sparse attention over an explicit token id set (plus nothing else).
void SparseAttentionHead(const float* q, VectorSetView keys, VectorSetView values,
                         std::span<const uint32_t> ids, float* out,
                         AttentionStats* stats = nullptr);

/// Exact attention-score vector (softmax over all n logits) for analysis
/// (recovery-ratio computation in benches/tests). scores must hold n floats.
void ExactAttentionScores(const float* q, VectorSetView keys, size_t n,
                          float* scores);

/// Recovery ratio (§6.1, after RetrievalAttention): fraction of total
/// attention mass captured by the tokens in `ids`.
float RecoveryRatio(const float* q, VectorSetView keys, size_t n,
                    std::span<const uint32_t> ids);

}  // namespace alaya
