// Numerically-stable partial attention state and merging — the same
// (max, sum-exp, weighted-accumulator) triple FlashAttention uses, which lets
// AlayaDB's data-centric engine compute attention where each KV partition
// lives and aggregate the partials exactly (§7.2).
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace alaya {

/// Running softmax-weighted accumulation over one partition of the KV cache.
/// Invariant: acc = sum_i exp(z_i - max_logit) * v_i, sum_exp = sum_i exp(z_i -
/// max_logit). Merging two states re-bases both onto the common max, so the
/// merged result is bit-for-bit the softmax over the union (up to fp rounding).
class PartialAttention {
 public:
  PartialAttention() = default;
  explicit PartialAttention(size_t d) { Init(d); }

  void Init(size_t d) {
    acc_.assign(d, 0.f);
    max_logit_ = -std::numeric_limits<float>::infinity();
    sum_exp_ = 0.f;
  }

  /// Folds in one (logit, value) pair.
  void Accumulate(float logit, const float* v);

  /// Folds in another partition's state. Either may be empty.
  void Merge(const PartialAttention& other);

  /// Writes the normalized output (acc / sum_exp); zero vector if empty.
  void Finalize(float* out) const;

  bool empty() const { return sum_exp_ == 0.f; }
  float max_logit() const { return max_logit_; }
  float sum_exp() const { return sum_exp_; }
  size_t dim() const { return acc_.size(); }

 private:
  std::vector<float> acc_;
  float max_logit_ = -std::numeric_limits<float>::infinity();
  float sum_exp_ = 0.f;
};

}  // namespace alaya
