// Window caching (§7.1): the initial and most recent tokens stay in (simulated)
// GPU memory. These tokens (i) always participate in attention — they carry
// outsized attention mass (attention sinks + locality) — and (ii) seed the
// DIPRS pruning threshold, since the max-inner-product key falls inside the
// window ~98% of the time.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/common/vec_math.h"
#include "src/device/memory_tracker.h"
#include "src/index/vector_set.h"

namespace alaya {

struct WindowConfig {
  uint32_t initial_tokens = 128;
  uint32_t recent_tokens = 512;
};

/// Stateless helper describing which token ids of a length-n context are
/// window-resident, plus the DIPRS prior computation.
class WindowCache {
 public:
  explicit WindowCache(const WindowConfig& config) : config_(config) {}

  const WindowConfig& config() const { return config_; }

  /// Is token id inside the window of a length-n context?
  bool Contains(uint32_t id, size_t n) const {
    if (id < config_.initial_tokens) return true;
    const uint32_t recent_begin =
        n > config_.recent_tokens ? static_cast<uint32_t>(n - config_.recent_tokens) : 0;
    return id >= recent_begin && id < n;
  }

  /// Number of window tokens for a length-n context.
  size_t Size(size_t n) const {
    return std::min<size_t>(n, config_.initial_tokens) +
           (n > config_.initial_tokens
                ? std::min<size_t>(n - config_.initial_tokens, config_.recent_tokens)
                : 0);
  }

  /// Appends the window token ids of a length-n context to `out`.
  void CollectIds(size_t n, std::vector<uint32_t>* out) const {
    const uint32_t init_end =
        static_cast<uint32_t>(std::min<size_t>(n, config_.initial_tokens));
    for (uint32_t i = 0; i < init_end; ++i) out->push_back(i);
    const uint32_t recent_begin = static_cast<uint32_t>(
        n > config_.recent_tokens ? n - config_.recent_tokens : 0);
    for (uint32_t i = std::max(recent_begin, init_end); i < n; ++i) out->push_back(i);
  }

  /// Max inner product of q against the window keys — the window-enhanced
  /// DIPRS prior (§7.1). Returns -inf on an empty window.
  float MaxWindowInnerProduct(const float* q, VectorSetView keys, size_t n) const {
    float best = -1e30f;
    const uint32_t init_end =
        static_cast<uint32_t>(std::min<size_t>(n, config_.initial_tokens));
    for (uint32_t i = 0; i < init_end; ++i) {
      best = std::max(best, Dot(q, keys.Vec(i), keys.d));
    }
    const uint32_t recent_begin = static_cast<uint32_t>(
        n > config_.recent_tokens ? n - config_.recent_tokens : 0);
    for (uint32_t i = std::max(recent_begin, init_end); i < n; ++i) {
      best = std::max(best, Dot(q, keys.Vec(i), keys.d));
    }
    return best;
  }

  /// GPU bytes this window occupies for one layer's KV heads.
  uint64_t GpuBytes(size_t n, uint32_t num_kv_heads, uint32_t head_dim,
                    uint32_t bytes_per_scalar = 2) const {
    return static_cast<uint64_t>(Size(n)) * num_kv_heads * head_dim * 2 *
           bytes_per_scalar;
  }

 private:
  WindowConfig config_;
};

}  // namespace alaya
