#include "src/attention/attention_engine.h"

#include "src/common/vector_codec.h"

#include <cmath>

namespace alaya {

size_t AccumulatePartition(const float* q, const KvPartition& part, float scale,
                           PartialAttention* state) {
  const size_t d = part.keys.d;
  const KernelOps& ops = Kernels();  // Hoisted: one dispatch for the loop.
  size_t count = 0;
  if (!part.ids.empty()) {
    for (uint32_t id : part.ids) {
      const float logit = ops.dot(q, part.keys.Vec(id), d) * scale;
      state->Accumulate(logit, part.values.Vec(id));
      ++count;
    }
  } else {
    for (uint32_t id = part.range_begin; id < part.range_end; ++id) {
      const float logit = ops.dot(q, part.keys.Vec(id), d) * scale;
      state->Accumulate(logit, part.values.Vec(id));
      ++count;
    }
  }
  return count;
}

void FullAttentionHead(const float* q, VectorSetView keys, VectorSetView values,
                       size_t n, float* out, AttentionStats* stats) {
  const size_t d = keys.d;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  PartialAttention state(d);
  KvPartition all{keys, values, {}, 0, static_cast<uint32_t>(n)};
  const size_t count = AccumulatePartition(q, all, scale, &state);
  state.Finalize(out);
  if (stats != nullptr) {
    stats->tokens_attended += count;
    stats->flops += static_cast<uint64_t>(count) * d * 4;
  }
}

void SparseAttentionHead(const float* q, VectorSetView keys, VectorSetView values,
                         std::span<const uint32_t> ids, float* out,
                         AttentionStats* stats) {
  const size_t d = keys.d;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  PartialAttention state(d);
  KvPartition part{keys, values, ids, 0, 0};
  const size_t count = AccumulatePartition(q, part, scale, &state);
  state.Finalize(out);
  if (stats != nullptr) {
    stats->tokens_attended += count;
    stats->flops += static_cast<uint64_t>(count) * d * 4;
  }
}

void ExactAttentionScores(const float* q, VectorSetView keys, size_t n,
                          float* scores) {
  const size_t d = keys.d;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  const KernelOps& ops = Kernels();
  for (size_t i = 0; i < n; ++i) {
    scores[i] = ops.dot(q, keys.Vec(static_cast<uint32_t>(i)), d) * scale;
  }
  SoftmaxInPlace(scores, n);
}

float RecoveryRatio(const float* q, VectorSetView keys, size_t n,
                    std::span<const uint32_t> ids) {
  if (n == 0) return 1.0f;
  std::vector<float> scores(n);
  ExactAttentionScores(q, keys, n, scores.data());
  float mass = 0.f;
  for (uint32_t id : ids) {
    if (id < n) mass += scores[id];
  }
  return mass;
}

}  // namespace alaya
