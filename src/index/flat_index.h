// Flat index: exhaustive scan over all key vectors (Table 4 "Flat").
//
// Less efficient than a graph for small k, but sequential access makes it the
// better plan when many critical tokens are needed (the optimizer uses it for
// layer 1, Fig. 8).
#pragma once

#include "src/index/index.h"

namespace alaya {

class FlatIndex final : public VectorIndex {
 public:
  /// The index holds a *view*: the caller (KV cache) owns the vectors and must
  /// outlive the index. Flat scans always see the current view.
  explicit FlatIndex(VectorSetView view) : view_(view) {}

  /// Rebinds to a grown vector set (cheap; flat index has no state to update).
  void Rebind(VectorSetView view) { view_ = view; }

  IndexClass index_class() const override { return IndexClass::kFlat; }
  size_t size() const override { return view_.n; }
  uint64_t MemoryBytes() const override { return 0; }  // No structure beyond the data.

  Status SearchTopK(const float* q, const TopKParams& params,
                    SearchResult* out) const override;
  Status SearchDipr(const float* q, const DiprParams& params,
                    SearchResult* out) const override;
  Status SearchTopKFiltered(const float* q, const TopKParams& params,
                            const IdFilter& filter, SearchResult* out) const override;
  Status SearchDiprFiltered(const float* q, const DiprParams& params,
                            const IdFilter& filter, SearchResult* out) const override;

 private:
  VectorSetView view_;
};

}  // namespace alaya
