// Fixed-max-degree adjacency storage shared by the graph indices.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "src/index/vector_set.h"

namespace alaya {

/// Flat adjacency with a uniform degree cap R. Node ids are dense [0, n).
/// Thread-safety: concurrent reads are safe; writers must synchronize.
class AdjacencyGraph {
 public:
  AdjacencyGraph() = default;
  AdjacencyGraph(uint32_t n, uint32_t max_degree) { Reset(n, max_degree); }

  void Reset(uint32_t n, uint32_t max_degree) {
    n_ = n;
    r_ = max_degree;
    degrees_.assign(n, 0);
    adj_.assign(static_cast<size_t>(n) * r_, 0);
  }

  /// Appends one node (degree 0); returns its id.
  uint32_t AddNode() {
    degrees_.push_back(0);
    adj_.resize(adj_.size() + r_, 0);
    return n_++;
  }

  std::span<const uint32_t> Neighbors(uint32_t u) const {
    assert(u < n_);
    return {adj_.data() + static_cast<size_t>(u) * r_, degrees_[u]};
  }

  /// Adds edge u->v if capacity remains and it is not a duplicate/self-loop.
  bool AddEdge(uint32_t u, uint32_t v) {
    assert(u < n_ && v < n_);
    if (u == v) return false;
    uint32_t& deg = degrees_[u];
    if (deg >= r_) return false;
    uint32_t* nbrs = adj_.data() + static_cast<size_t>(u) * r_;
    for (uint32_t i = 0; i < deg; ++i) {
      if (nbrs[i] == v) return false;
    }
    nbrs[deg++] = v;
    return true;
  }

  /// Replaces u's neighbor list (truncated at R).
  void SetNeighbors(uint32_t u, const std::vector<uint32_t>& list) {
    assert(u < n_);
    uint32_t deg = static_cast<uint32_t>(list.size() > r_ ? r_ : list.size());
    uint32_t* nbrs = adj_.data() + static_cast<size_t>(u) * r_;
    for (uint32_t i = 0; i < deg; ++i) nbrs[i] = list[i];
    degrees_[u] = deg;
  }

  uint32_t degree(uint32_t u) const { return degrees_[u]; }
  uint32_t max_degree() const { return r_; }
  uint32_t size() const { return n_; }

  uint64_t MemoryBytes() const {
    return adj_.capacity() * sizeof(uint32_t) + degrees_.capacity() * sizeof(uint32_t);
  }

  /// Number of directed edges.
  uint64_t EdgeCount() const {
    uint64_t e = 0;
    for (uint32_t d : degrees_) e += d;
    return e;
  }

 private:
  uint32_t n_ = 0;
  uint32_t r_ = 0;
  std::vector<uint32_t> degrees_;
  std::vector<uint32_t> adj_;
};

/// A graph index searchable by the query-layer algorithms (top-k beam search,
/// DIPRS, filtered DIPRS). Concrete types: RoarGraph, Hnsw (base layer).
class SearchableGraph {
 public:
  virtual ~SearchableGraph() = default;

  virtual const AdjacencyGraph& graph() const = 0;
  virtual VectorSetView vectors() const = 0;

  /// A good starting node for query q (e.g., HNSW upper-layer descent or a
  /// fixed medoid/max-norm entry).
  virtual uint32_t EntryPoint(const float* q) const = 0;
};

}  // namespace alaya
