// Generic best-first (beam) search over an adjacency graph, maximizing inner
// product. Used by index construction (connectivity enhancement), the top-k
// query type, and as the skeleton DIPRS builds on.
#pragma once

#include "src/common/vector_codec.h"
#include "src/common/visited_set.h"
#include "src/index/graph_common.h"
#include "src/index/index.h"

namespace alaya {

/// Classic ef-bounded beam search: returns the ef best candidates found,
/// sorted by descending inner product. `visited` may be nullptr (a local set
/// is used); passing one amortizes allocation across queries.
///
/// `vectors` is a ScoringView: pass a bare VectorSetView for exact fp32
/// scoring (every historical call site), or attach a CodedVectorSet to
/// traverse on quantized codes with the top rerank_k hits re-scored against
/// fp32 before returning.
SearchResult GraphBeamSearch(const AdjacencyGraph& graph,
                             const ScoringView& vectors, uint32_t entry,
                             const float* q, size_t ef,
                             VisitedSet* visited = nullptr);

/// Beam search returning only the top k of an ef-wide beam.
SearchResult GraphTopK(const AdjacencyGraph& graph, const ScoringView& vectors,
                       uint32_t entry, const float* q, const TopKParams& params,
                       VisitedSet* visited = nullptr);

/// Greedy 1-best descent (used by HNSW upper layers): repeatedly moves to the
/// best-scoring neighbor until no improvement.
uint32_t GreedyDescend(const AdjacencyGraph& graph, const ScoringView& vectors,
                       uint32_t entry, const float* q, SearchStats* stats = nullptr);

}  // namespace alaya
