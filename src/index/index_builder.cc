#include "src/index/index_builder.h"

#include <algorithm>

#include "src/common/timer.h"

namespace alaya {

VectorSet SampleQueries(VectorSetView queries, size_t count, Rng* rng) {
  VectorSet out(queries.d);
  if (queries.n == 0 || count == 0) return out;
  count = std::min(count, queries.n);
  auto picks = rng->SampleWithoutReplacement(queries.n, count);
  out.Reserve(count);
  for (size_t idx : picks) out.Append(queries.Vec(static_cast<uint32_t>(idx)));
  return out;
}

Status BuildLayerIndices(const std::vector<VectorSetView>& head_keys,
                         const std::vector<VectorSetView>& head_queries,
                         uint32_t gqa_group_size, const IndexBuildOptions& options,
                         std::vector<std::unique_ptr<RoarGraph>>* out,
                         IndexBuildStats* stats) {
  if (out == nullptr) return Status::InvalidArgument("null output");
  if (gqa_group_size == 0) return Status::InvalidArgument("gqa_group_size == 0");
  const size_t h_kv = head_keys.size();
  const size_t h_q = head_queries.size();
  if (h_q != h_kv * gqa_group_size) {
    return Status::InvalidArgument("h_q must equal h_kv * gqa_group_size");
  }
  out->clear();
  IndexBuildStats local_stats;
  Rng rng(options.seed);
  const CostModel cost;

  struct BuildUnit {
    VectorSetView keys;
    VectorSet training;  // Sampled queries.
  };
  std::vector<BuildUnit> units;

  if (options.share_gqa_group) {
    // One index per KV head; sample query_sample_ratio * n keys worth of
    // training queries spread evenly over the group's query heads, so the
    // merged sample still captures every head's distribution.
    for (size_t kv = 0; kv < h_kv; ++kv) {
      BuildUnit unit;
      unit.keys = head_keys[kv];
      const size_t want_total = static_cast<size_t>(
          options.query_sample_ratio * static_cast<double>(unit.keys.n));
      const size_t per_head = std::max<size_t>(1, want_total / gqa_group_size);
      unit.training.Reset(unit.keys.d);
      for (uint32_t g = 0; g < gqa_group_size; ++g) {
        const VectorSetView& hq = head_queries[kv * gqa_group_size + g];
        VectorSet s = SampleQueries(hq, per_head, &rng);
        unit.training.AppendBatch(s.raw(), s.size());
      }
      units.push_back(std::move(unit));
    }
  } else {
    // RetrievalAttention baseline: one index per query head over its KV head.
    for (size_t g = 0; g < h_q; ++g) {
      BuildUnit unit;
      unit.keys = head_keys[g / gqa_group_size];
      const size_t want = static_cast<size_t>(options.query_sample_ratio *
                                              static_cast<double>(unit.keys.n));
      unit.training = SampleQueries(head_queries[g], std::max<size_t>(1, want), &rng);
      units.push_back(std::move(unit));
    }
  }

  // Stage (i): bipartite kNN per unit — on the simulated GPU when enabled.
  // The per-layer pipeline overlaps the PCIe upload of the *next* unit with
  // the kNN compute of the current one, so the charged device time is
  // sum(max(compute_u, transfer_u)) + first transfer.
  std::vector<std::vector<std::vector<ScoredId>>> knn_lists(units.size());
  WallTimer knn_timer;
  for (size_t u = 0; u < units.size(); ++u) {
    BipartiteKnnOptions knn_opts;
    knn_opts.k = options.roar.knn_per_query;
    knn_opts.pool = options.pool;
    knn_opts.sequential = options.sequential_cpu_baseline;
    knn_lists[u] = ExactBipartiteKnn(units[u].keys, units[u].training.View(), knn_opts);
    local_stats.training_queries += units[u].training.size();
  }
  local_stats.knn_wall_seconds = knn_timer.ElapsedSeconds();

  if (options.use_sim_gpu_knn) {
    double pipeline_seconds = 0.0;
    double prev_compute = 0.0;
    const double per_unit_wall =
        local_stats.knn_wall_seconds / static_cast<double>(units.size());
    for (size_t u = 0; u < units.size(); ++u) {
      const uint64_t kv_bytes =
          static_cast<uint64_t>(units[u].keys.n) * units[u].keys.d * sizeof(float) +
          static_cast<uint64_t>(units[u].training.size()) * units[u].keys.d *
              sizeof(float);
      const double transfer = cost.TransferSeconds(kv_bytes);
      local_stats.modeled_transfer_seconds += transfer;
      const double compute = per_unit_wall / options.gpu_speedup_vs_host;
      local_stats.modeled_gpu_seconds += compute;
      if (u == 0) {
        pipeline_seconds += transfer;  // First upload cannot overlap.
      } else {
        pipeline_seconds += std::max(transfer, prev_compute);
      }
      prev_compute = compute;
    }
    pipeline_seconds += prev_compute;  // Drain the last compute.
    local_stats.reported_seconds += pipeline_seconds;
  } else {
    local_stats.reported_seconds += local_stats.knn_wall_seconds;
  }

  // Stages (2)+(3): projection + connectivity enhancement, always on host.
  WallTimer project_timer;
  for (size_t u = 0; u < units.size(); ++u) {
    RoarGraphOptions ropts = options.roar;
    ropts.sequential = options.sequential_cpu_baseline;
    ropts.pool = options.pool;
    auto index = std::make_unique<RoarGraph>(units[u].keys, ropts);
    ALAYA_RETURN_IF_ERROR(index->BuildFromBipartite(knn_lists[u]));
    local_stats.index_bytes += index->MemoryBytes();
    out->push_back(std::move(index));
  }
  local_stats.project_wall_seconds = project_timer.ElapsedSeconds();
  local_stats.reported_seconds += local_stats.project_wall_seconds;
  local_stats.num_indices = out->size();

  if (stats != nullptr) *stats = local_stats;
  return Status::Ok();
}

Status ExtendLayerIndices(const std::vector<VectorSetView>& head_keys,
                          const std::vector<const RoarGraph*>& base_indices,
                          size_t base_tokens, const IndexBuildOptions& options,
                          std::vector<std::unique_ptr<RoarGraph>>* out,
                          IndexBuildStats* stats) {
  if (out == nullptr) return Status::InvalidArgument("null output");
  if (head_keys.size() != base_indices.size()) {
    return Status::InvalidArgument("one base index per KV head required");
  }
  out->clear();
  IndexBuildStats local_stats;
  WallTimer timer;

  const size_t h_kv = head_keys.size();
  std::vector<std::unique_ptr<RoarGraph>> built(h_kv);
  std::vector<Status> statuses(h_kv, Status::Ok());
  auto extend_one = [&](size_t h) {
    if (base_indices[h] == nullptr) {
      statuses[h] = Status::InvalidArgument("null base index");
      return;
    }
    RoarGraphOptions ropts = options.roar;
    ropts.sequential = true;  // Parallelism comes from batching heads.
    ropts.pool = options.pool;
    auto index = std::make_unique<RoarGraph>(head_keys[h], ropts);
    statuses[h] = index->ExtendFromBase(*base_indices[h], base_tokens);
    built[h] = std::move(index);
  };
  if (options.sequential_cpu_baseline) {
    for (size_t h = 0; h < h_kv; ++h) extend_one(h);
  } else {
    ThreadPool* pool = options.pool != nullptr ? options.pool : &ThreadPool::Global();
    pool->ParallelFor(0, h_kv, extend_one);
  }

  for (size_t h = 0; h < h_kv; ++h) {
    ALAYA_RETURN_IF_ERROR(statuses[h]);
    local_stats.index_bytes += built[h]->MemoryBytes();
    local_stats.extended_indices += 1;
    local_stats.reused_base_nodes += base_tokens;
    local_stats.inserted_suffix_nodes += head_keys[h].n - base_tokens;
    out->push_back(std::move(built[h]));
  }
  local_stats.num_indices = out->size();
  local_stats.project_wall_seconds = timer.ElapsedSeconds();
  local_stats.reported_seconds = local_stats.project_wall_seconds;
  if (stats != nullptr) *stats = local_stats;
  return Status::Ok();
}

}  // namespace alaya
