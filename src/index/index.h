// Vector index interfaces and search parameter/result types.
//
// The query optimizer (Fig. 8) chooses among three index classes:
//   - kFlat:   scan all keys (sequential memory access, O(n))
//   - kCoarse: block-grained selection, blocks cached on (simulated) GPU
//   - kFine:   per-key graph index (RoarGraph / HNSW), searched on CPU
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/common/vec_math.h"
#include "src/index/vector_set.h"

namespace alaya {

/// Index classes as named in the paper (Table 4).
enum class IndexClass : int { kFlat = 0, kCoarse = 1, kFine = 2 };

const char* IndexClassName(IndexClass c);

/// Counters accumulated during one search.
struct SearchStats {
  uint64_t dist_comps = 0;  ///< Inner products evaluated.
  uint64_t hops = 0;        ///< Graph nodes expanded.
  uint64_t appended = 0;    ///< Candidates appended (DIPRS list growth).

  SearchStats& operator+=(const SearchStats& o) {
    dist_comps += o.dist_comps;
    hops += o.hops;
    appended += o.appended;
    return *this;
  }
};

/// Parameters for top-k retrieval.
struct TopKParams {
  size_t k = 100;
  /// Beam width for graph search (>= k); ignored by flat/coarse indices.
  size_t ef = 0;

  size_t EffectiveEf() const { return ef >= k ? ef : k; }
};

/// Parameters for the DIPR query (Definition 3): return every key whose inner
/// product is within beta of the maximum.
struct DiprParams {
  float beta = 50.0f;
  /// Capacity threshold l0 of Algorithm 1 (exploration floor).
  size_t l0 = 64;
  /// Hard cap on returned tokens (0 = unlimited); guards worst-case latency.
  size_t max_tokens = 0;
};

/// Optional predicate restricting which token ids may be returned
/// (attribute filtering for partial context reuse, §7.1).
struct IdFilter {
  /// Tokens with id < prefix_len pass. prefix_len == UINT32_MAX disables.
  uint32_t prefix_len = UINT32_MAX;

  bool Pass(uint32_t id) const { return id < prefix_len; }
  bool enabled() const { return prefix_len != UINT32_MAX; }
};

/// Search output: retained (id, score) pairs, best-first.
struct SearchResult {
  std::vector<ScoredId> hits;
  SearchStats stats;

  void Clear() {
    hits.clear();
    stats = SearchStats{};
  }
};

/// Abstract per-head vector index over key vectors.
class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  virtual IndexClass index_class() const = 0;
  /// Number of indexed vectors.
  virtual size_t size() const = 0;
  /// Bytes of index structure (excluding the raw vectors it points into).
  virtual uint64_t MemoryBytes() const = 0;

  /// Retrieves (approximately) the k keys with the largest inner product.
  virtual Status SearchTopK(const float* q, const TopKParams& params,
                            SearchResult* out) const = 0;

  /// Retrieves the DIPR critical set (Definition 3). Indices that cannot
  /// process DIPR (coarse) return NotSupported, matching Table 4.
  virtual Status SearchDipr(const float* q, const DiprParams& params,
                            SearchResult* out) const = 0;

  /// Filtered variants restrict results to ids passing `filter`.
  virtual Status SearchTopKFiltered(const float* q, const TopKParams& params,
                                    const IdFilter& filter, SearchResult* out) const = 0;
  virtual Status SearchDiprFiltered(const float* q, const DiprParams& params,
                                    const IdFilter& filter, SearchResult* out) const = 0;
};

}  // namespace alaya
