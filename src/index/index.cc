#include "src/index/index.h"

namespace alaya {

const char* IndexClassName(IndexClass c) {
  switch (c) {
    case IndexClass::kFlat:
      return "flat";
    case IndexClass::kCoarse:
      return "coarse";
    case IndexClass::kFine:
      return "fine";
  }
  return "?";
}

}  // namespace alaya
