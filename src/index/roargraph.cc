#include "src/index/roargraph.h"

#include <algorithm>
#include <deque>
#include <mutex>

#include "src/index/graph_search.h"
#include "src/query/diprs.h"

namespace alaya {

RoarGraph::RoarGraph(VectorSetView keys, const RoarGraphOptions& options)
    : keys_(keys), options_(options) {}

RoarGraph::~RoarGraph() = default;

Status RoarGraph::BuildFromQueries(VectorSetView queries) {
  if (queries.d != keys_.d) {
    return Status::InvalidArgument("query/key dimension mismatch");
  }
  BipartiteKnnOptions knn_opts;
  knn_opts.k = options_.knn_per_query;
  knn_opts.pool = options_.pool;
  knn_opts.sequential = options_.sequential;
  auto query_knn = ExactBipartiteKnn(keys_, queries, knn_opts);
  return BuildFromBipartite(query_knn);
}

Status RoarGraph::BuildFromBipartite(
    const std::vector<std::vector<ScoredId>>& query_knn) {
  if (keys_.n == 0) return Status::InvalidArgument("no key vectors to index");
  graph_.Reset(static_cast<uint32_t>(keys_.n), options_.max_degree);

  // Entry point: the max-norm key. Greedy MIPS search provably starts well
  // from high-norm points, and attention-sink keys have large norms.
  float best_norm = -1.f;
  for (uint32_t i = 0; i < keys_.n; ++i) {
    const float n2 = Dot(keys_.Vec(i), keys_.Vec(i), keys_.d);
    if (n2 > best_norm) {
      best_norm = n2;
      entry_ = i;
    }
  }

  ProjectBipartite(query_knn);
  EnhanceConnectivity();
  BuildCodedStore();
  built_ = true;
  return Status::Ok();
}

Status RoarGraph::ExtendFromBase(const RoarGraph& base, size_t base_count) {
  if (!base.built()) return Status::FailedPrecondition("base RoarGraph not built");
  if (base.keys_.d != keys_.d) {
    return Status::InvalidArgument("base/extended key dimension mismatch");
  }
  if (base.size() < base_count || base_count == 0 || base_count > keys_.n) {
    return Status::InvalidArgument(
        "base graph must cover at least the first base_count keys");
  }

  // Adopt the base adjacency for the shared prefix. A base larger than
  // base_count is the partial-reuse case: only its first base_count keys are
  // our tokens, so edges into [base_count, base.size()) are dropped instead
  // of rebuilding the prefix graph from scratch; the connectivity pass below
  // repairs any prefix node the truncation orphans.
  const bool partial_prefix = base.size() > base_count;
  graph_.Reset(static_cast<uint32_t>(keys_.n), options_.max_degree);
  std::vector<uint32_t> nbrs;
  for (uint32_t u = 0; u < base_count; ++u) {
    auto span = base.graph_.Neighbors(u);
    nbrs.clear();
    for (uint32_t v : span) {
      if (v < base_count) nbrs.push_back(v);
    }
    graph_.SetNeighbors(u, nbrs);
  }
  if (base.entry_ < base_count) {
    entry_ = base.entry_;
  } else {
    // The base's max-norm entry lives outside the shared prefix; recompute
    // over the keys we actually kept.
    entry_ = 0;
    float best_norm = -1.f;
    for (uint32_t i = 0; i < base_count; ++i) {
      const float n2 = Dot(keys_.Vec(i), keys_.Vec(i), keys_.d);
      if (n2 > best_norm) {
        best_norm = n2;
        entry_ = i;
      }
    }
  }
  float entry_norm = Dot(keys_.Vec(entry_), keys_.Vec(entry_), keys_.d);

  // Insert the suffix keys one at a time: beam-search the growing graph for
  // each new key, expand the hits by one hop, and diversity-prune exactly like
  // a projection candidate list. Reverse edges are best-effort (a saturated
  // neighbor is skipped); the connectivity pass below repairs any node that is
  // left unreachable.
  VisitedSet visited(keys_.n);
  std::vector<uint32_t> candidates;
  for (uint32_t u = static_cast<uint32_t>(base_count); u < keys_.n; ++u) {
    SearchResult res = GraphBeamSearch(graph_, keys_, entry_, keys_.Vec(u),
                                       options_.ef_enhance, &visited);
    candidates.clear();
    for (const ScoredId& hit : res.hits) {
      if (hit.id == u) continue;
      candidates.push_back(hit.id);
      for (uint32_t v : graph_.Neighbors(hit.id)) {
        if (v != u) candidates.push_back(v);
      }
    }
    PruneNode(u, &candidates);
    for (uint32_t v : graph_.Neighbors(u)) graph_.AddEdge(v, u);
    // Preserve the max-norm entry invariant as the key set grows.
    const float n2 = Dot(keys_.Vec(u), keys_.Vec(u), keys_.d);
    if (n2 > entry_norm) {
      entry_norm = n2;
      entry_ = u;
    }
  }
  built_ = true;  // EnhanceConnectivity's beam searches need a built graph.
  if (keys_.n > base_count || partial_prefix) EnhanceConnectivity();
  BuildCodedStore();
  return Status::Ok();
}

Status RoarGraph::AdoptGraph(AdjacencyGraph&& graph) {
  if (graph.size() != keys_.n) {
    return Status::InvalidArgument("adopted graph size does not match keys");
  }
  graph_ = std::move(graph);
  float best_norm = -1.f;
  for (uint32_t i = 0; i < keys_.n; ++i) {
    const float n2 = Dot(keys_.Vec(i), keys_.Vec(i), keys_.d);
    if (n2 > best_norm) {
      best_norm = n2;
      entry_ = i;
    }
  }
  BuildCodedStore();
  built_ = true;
  return Status::Ok();
}

void RoarGraph::BuildCodedStore() { coded_.Encode(keys_, options_.codec); }

void RoarGraph::ProjectBipartite(const std::vector<std::vector<ScoredId>>& query_knn) {
  // Stage (2): keys co-retrieved by one query become candidate neighbors.
  // The pivot (top-1) connects to the rest of the list, and consecutive
  // ranks chain together, mirroring RoarGraph's bipartite projection.
  std::vector<std::vector<uint32_t>> candidates(keys_.n);
  for (const auto& lst : query_knn) {
    if (lst.size() < 2) continue;
    const uint32_t pivot = lst[0].id;
    for (size_t j = 1; j < lst.size(); ++j) {
      candidates[pivot].push_back(lst[j].id);
      candidates[lst[j].id].push_back(pivot);
      if (j + 1 < lst.size()) {
        candidates[lst[j].id].push_back(lst[j + 1].id);
        candidates[lst[j + 1].id].push_back(lst[j].id);
      }
    }
  }

  auto prune_one = [&](size_t u) {
    PruneNode(static_cast<uint32_t>(u), &candidates[u]);
  };
  if (options_.sequential) {
    for (size_t u = 0; u < keys_.n; ++u) prune_one(u);
  } else {
    ThreadPool* pool = options_.pool != nullptr ? options_.pool : &ThreadPool::Global();
    pool->ParallelFor(0, keys_.n, prune_one);
  }

  // Reverse edges (best-effort: skipped when the target is full).
  for (uint32_t u = 0; u < keys_.n; ++u) {
    for (uint32_t v : graph_.Neighbors(u)) graph_.AddEdge(v, u);
  }
}

void RoarGraph::PruneNode(uint32_t u, std::vector<uint32_t>* candidates) {
  auto& cand = *candidates;
  std::sort(cand.begin(), cand.end());
  cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
  std::erase(cand, u);
  if (cand.empty()) {
    graph_.SetNeighbors(u, {});
    return;
  }

  // Diversity pruning on key-space L2 (Vamana robust prune): keep candidate c
  // unless an already-kept neighbor s is alpha-times closer to c than u is.
  std::vector<ScoredId> by_dist;
  by_dist.reserve(cand.size());
  for (uint32_t c : cand) {
    by_dist.push_back({c, -L2Sq(keys_.Vec(u), keys_.Vec(c), keys_.d)});
  }
  SortByScoreDesc(&by_dist);  // Closest first (scores are negated distances).

  std::vector<uint32_t> kept;
  const float alpha2 = options_.prune_alpha * options_.prune_alpha;
  for (const ScoredId& c : by_dist) {
    if (kept.size() >= options_.max_degree) break;
    const float du = -c.score;
    bool occluded = false;
    for (uint32_t s : kept) {
      const float ds = L2Sq(keys_.Vec(s), keys_.Vec(c.id), keys_.d);
      if (ds * alpha2 < du) {
        occluded = true;
        break;
      }
    }
    if (!occluded) kept.push_back(c.id);
  }
  graph_.SetNeighbors(u, kept);
}

void RoarGraph::ForceEdge(uint32_t u, uint32_t v) {
  if (graph_.AddEdge(u, v)) return;
  // Full: replace the last slot (the least-diverse survivor of pruning).
  std::vector<uint32_t> nbrs(graph_.Neighbors(u).begin(), graph_.Neighbors(u).end());
  if (nbrs.empty()) return;
  nbrs.back() = v;
  graph_.SetNeighbors(u, nbrs);
}

void RoarGraph::EnhanceConnectivity() {
  // Stage (3): make every node reachable from the entry point. Nodes missed by
  // the projection are attached near their approximate nearest reachable
  // neighbor (found by beam search from the entry). Attaching prefers nodes
  // with spare out-degree; when an edge must be force-replaced, the evicted
  // edge can orphan a subtree, so the pass runs to a fixpoint.
  VisitedSet visited(keys_.n);
  std::vector<bool> reached(keys_.n, false);
  auto bfs_from = [&](uint32_t root) {
    std::deque<uint32_t> queue;
    if (!reached[root]) {
      reached[root] = true;
      queue.push_back(root);
    }
    while (!queue.empty()) {
      const uint32_t u = queue.front();
      queue.pop_front();
      for (uint32_t v : graph_.Neighbors(u)) {
        if (!reached[v]) {
          reached[v] = true;
          queue.push_back(v);
        }
      }
    }
  };

  const int kMaxRounds = 16;
  for (int round = 0; round < kMaxRounds; ++round) {
    std::fill(reached.begin(), reached.end(), false);
    bfs_from(entry_);
    bool complete = true;
    for (uint32_t u = 0; u < keys_.n; ++u) {
      if (reached[u]) continue;
      complete = false;
      // Beam search stays inside the reached component (it starts at entry).
      SearchResult res = GraphBeamSearch(graph_, keys_, entry_, keys_.Vec(u),
                                         options_.ef_enhance, &visited);
      uint32_t attach = entry_;
      bool attach_has_room = graph_.degree(entry_) < graph_.max_degree();
      for (const ScoredId& hit : res.hits) {
        if (hit.id == u || !reached[hit.id]) continue;
        if (graph_.degree(hit.id) < graph_.max_degree()) {
          attach = hit.id;
          attach_has_room = true;
          break;
        }
        if (attach == entry_ && !attach_has_room) attach = hit.id;
      }
      if (attach_has_room) {
        graph_.AddEdge(attach, u);
      } else {
        ForceEdge(attach, u);
      }
      bfs_from(u);  // u's out-edges may reach other stragglers.
    }
    if (complete) return;
  }
}

double RoarGraph::ReachableFraction() const {
  if (keys_.n == 0) return 1.0;
  std::vector<bool> reached(keys_.n, false);
  std::deque<uint32_t> queue{entry_};
  reached[entry_] = true;
  size_t count = 1;
  while (!queue.empty()) {
    const uint32_t u = queue.front();
    queue.pop_front();
    for (uint32_t v : graph_.Neighbors(u)) {
      if (!reached[v]) {
        reached[v] = true;
        ++count;
        queue.push_back(v);
      }
    }
  }
  return static_cast<double>(count) / static_cast<double>(keys_.n);
}

Status RoarGraph::SearchTopK(const float* q, const TopKParams& params,
                             SearchResult* out) const {
  if (q == nullptr || out == nullptr) return Status::InvalidArgument("null arg");
  if (!built_) return Status::FailedPrecondition("RoarGraph not built");
  out->Clear();
  *out = GraphBeamSearch(graph_, scoring(), entry_, q, params.EffectiveEf(), nullptr);
  if (out->hits.size() > params.k) out->hits.resize(params.k);
  return Status::Ok();
}

Status RoarGraph::SearchDipr(const float* q, const DiprParams& params,
                             SearchResult* out) const {
  if (q == nullptr || out == nullptr) return Status::InvalidArgument("null arg");
  if (!built_) return Status::FailedPrecondition("RoarGraph not built");
  out->Clear();
  *out = DiprsSearch(graph_, scoring(), entry_, q, params);
  return Status::Ok();
}

Status RoarGraph::SearchTopKFiltered(const float* q, const TopKParams& params,
                                     const IdFilter& filter, SearchResult* out) const {
  ALAYA_RETURN_IF_ERROR(SearchTopK(q, params, out));
  if (filter.enabled()) {
    std::erase_if(out->hits, [&](const ScoredId& h) { return !filter.Pass(h.id); });
  }
  return Status::Ok();
}

Status RoarGraph::SearchDiprFiltered(const float* q, const DiprParams& params,
                                     const IdFilter& filter, SearchResult* out) const {
  if (q == nullptr || out == nullptr) return Status::InvalidArgument("null arg");
  if (!built_) return Status::FailedPrecondition("RoarGraph not built");
  out->Clear();
  *out = DiprsSearchFiltered(graph_, scoring(), entry_, q, params, filter);
  return Status::Ok();
}

}  // namespace alaya
