#include "src/index/flat_index.h"

#include <algorithm>

#include "src/common/bounded_heap.h"

namespace alaya {

Status FlatIndex::SearchTopK(const float* q, const TopKParams& params,
                             SearchResult* out) const {
  return SearchTopKFiltered(q, params, IdFilter{}, out);
}

Status FlatIndex::SearchTopKFiltered(const float* q, const TopKParams& params,
                                     const IdFilter& filter, SearchResult* out) const {
  if (q == nullptr || out == nullptr) {
    return Status::InvalidArgument("null query/output");
  }
  out->Clear();
  TopKMaxHeap heap(params.k);
  const size_t limit = filter.enabled()
                           ? std::min<size_t>(view_.n, filter.prefix_len)
                           : view_.n;
  for (uint32_t i = 0; i < limit; ++i) {
    heap.Push(i, Dot(q, view_.Vec(i), view_.d));
  }
  out->stats.dist_comps += limit;
  out->hits = heap.TakeSortedDesc();
  return Status::Ok();
}

Status FlatIndex::SearchDipr(const float* q, const DiprParams& params,
                             SearchResult* out) const {
  return SearchDiprFiltered(q, params, IdFilter{}, out);
}

Status FlatIndex::SearchDiprFiltered(const float* q, const DiprParams& params,
                                     const IdFilter& filter, SearchResult* out) const {
  if (q == nullptr || out == nullptr) {
    return Status::InvalidArgument("null query/output");
  }
  if (params.beta < 0.f) return Status::InvalidArgument("beta must be >= 0");
  out->Clear();
  const size_t limit = filter.enabled()
                           ? std::min<size_t>(view_.n, filter.prefix_len)
                           : view_.n;
  if (limit == 0) return Status::Ok();

  // Pass 1: exact maximum inner product. Pass 2: collect within beta.
  // (A flat scan computes DIPR exactly — it is the ground-truth oracle the
  // tests use to validate graph-based DIPRS.)
  std::vector<float> scores(limit);
  MatVecDot(view_.data, limit, view_.d, q, scores.data());
  out->stats.dist_comps += limit;
  const float max_ip = MaxValue(scores.data(), limit);
  const float threshold = max_ip - params.beta;
  for (uint32_t i = 0; i < limit; ++i) {
    if (scores[i] >= threshold) out->hits.push_back({i, scores[i]});
  }
  SortByScoreDesc(&out->hits);
  if (params.max_tokens > 0 && out->hits.size() > params.max_tokens) {
    out->hits.resize(params.max_tokens);
  }
  return Status::Ok();
}

}  // namespace alaya
