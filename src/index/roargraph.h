// RoarGraph: a projected bipartite graph for cross-modal (out-of-distribution)
// approximate nearest neighbor search [Chen et al., VLDB 2024], the
// fine-grained index AlayaDB uses for sparse attention (§7.2).
//
// Decode-time query vectors are *not* distributed like key vectors, so
// in-distribution graphs (HNSW/NSG) navigate poorly. RoarGraph instead:
//   (1) builds an exact kNN bipartite graph from sampled *query* vectors to
//       key vectors;
//   (2) projects it: keys co-retrieved by the same query become neighbor
//       candidates, pruned for diversity;
//   (3) enhances connectivity so every key is reachable from the entry point.
#pragma once

#include <memory>

#include "src/common/thread_pool.h"
#include "src/common/vector_codec.h"
#include "src/index/graph_common.h"
#include "src/index/index.h"
#include "src/index/knn_graph.h"

namespace alaya {

struct RoarGraphOptions {
  /// Max out-degree after pruning.
  uint32_t max_degree = 32;
  /// Bipartite neighbors per training query.
  uint32_t knn_per_query = 32;
  /// Occlusion slack for diversity pruning (Vamana-style, on key-space L2).
  float prune_alpha = 1.2f;
  /// Beam width used during connectivity enhancement.
  uint32_t ef_enhance = 64;
  ThreadPool* pool = nullptr;  ///< nullptr -> ThreadPool::Global().
  bool sequential = false;     ///< Disable parallel build (CPU baseline mode).
  /// Representation searches score candidates on (kFp32 = exact, no sidecar).
  /// Build and rerank always use the fp32 keys.
  VectorCodec codec = VectorCodec::kFp32;
  /// With a non-fp32 codec, the top rerank_k hits of every search are
  /// re-scored against fp32 (0 disables rerank).
  size_t rerank_k = 32;
};

class RoarGraph final : public VectorIndex, public SearchableGraph {
 public:
  /// The key vectors are owned by the caller (KV cache) and must outlive the
  /// index. Call one of the Build methods before searching.
  RoarGraph(VectorSetView keys, const RoarGraphOptions& options);
  ~RoarGraph() override;

  /// Full pipeline: exact bipartite kNN from `queries`, then projection and
  /// connectivity enhancement.
  Status BuildFromQueries(VectorSetView queries);

  /// Builds from precomputed bipartite kNN lists (stage (i) output) — used by
  /// IndexBuilder, which computes the kNN on the simulated GPU.
  Status BuildFromBipartite(const std::vector<std::vector<ScoredId>>& query_knn);

  /// Adopts a previously-built adjacency (loaded from the vector file system);
  /// recomputes the entry point and marks the index built.
  Status AdoptGraph(AdjacencyGraph&& graph);

  /// Seeds this index from `base`, whose first `base_count` keys are exactly
  /// this index's first `base_count` keys, and incrementally inserts the
  /// remaining keys [base_count, n): each new key is attached via a beam
  /// search over the growing graph, diversity-pruned like a projection
  /// candidate, and given best-effort reverse edges; a final connectivity
  /// pass restores full reachability. The base adjacency is adopted with
  /// out-of-prefix edges dropped (a base larger than base_count is the
  /// partial-reuse case: its suffix nodes are not our tokens), never rebuilt
  /// — the index-sharing path DB.Store takes when a session extends a stored
  /// context (the base must stay alive only for the duration of this call).
  Status ExtendFromBase(const RoarGraph& base, size_t base_count);

  bool built() const { return built_; }

  // --- VectorIndex ---
  IndexClass index_class() const override { return IndexClass::kFine; }
  size_t size() const override { return keys_.n; }
  uint64_t MemoryBytes() const override {
    return graph_.MemoryBytes() + coded_.MemoryBytes();
  }
  Status SearchTopK(const float* q, const TopKParams& params,
                    SearchResult* out) const override;
  Status SearchDipr(const float* q, const DiprParams& params,
                    SearchResult* out) const override;
  Status SearchTopKFiltered(const float* q, const TopKParams& params,
                            const IdFilter& filter, SearchResult* out) const override;
  Status SearchDiprFiltered(const float* q, const DiprParams& params,
                            const IdFilter& filter, SearchResult* out) const override;

  // --- SearchableGraph ---
  const AdjacencyGraph& graph() const override { return graph_; }
  VectorSetView vectors() const override { return keys_; }
  uint32_t EntryPoint(const float* /*q*/) const override { return entry_; }

  /// What searches score on: fp32 keys plus the coded sidecar when the index
  /// was built with a non-fp32 codec (empty sidecar == exact scoring).
  ScoringView scoring() const { return {keys_, &coded_, options_.rerank_k}; }
  VectorCodec codec() const { return options_.codec; }

  /// Fraction of nodes reachable from the entry point (1.0 after a healthy
  /// build; exposed for tests).
  double ReachableFraction() const;

 private:
  void ProjectBipartite(const std::vector<std::vector<ScoredId>>& query_knn);
  /// (Re-)encodes the coded sidecar; every build path's final step.
  void BuildCodedStore();
  void PruneNode(uint32_t u, std::vector<uint32_t>* candidates);
  void EnhanceConnectivity();
  void ForceEdge(uint32_t u, uint32_t v);

  VectorSetView keys_;
  RoarGraphOptions options_;
  AdjacencyGraph graph_;
  CodedVectorSet coded_;
  uint32_t entry_ = 0;
  bool built_ = false;
};

}  // namespace alaya
