// Dense row-major vector storage and non-owning views.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

namespace alaya {

/// Non-owning view over n contiguous d-dimensional float vectors.
struct VectorSetView {
  const float* data = nullptr;
  size_t n = 0;
  size_t d = 0;

  const float* Vec(uint32_t id) const {
    assert(id < n);
    return data + static_cast<size_t>(id) * d;
  }
  bool empty() const { return n == 0; }
};

/// Owning, append-only vector container (one attention head's keys or values).
class VectorSet {
 public:
  VectorSet() = default;
  explicit VectorSet(size_t d) : d_(d) {}

  void Reset(size_t d) {
    d_ = d;
    data_.clear();
    n_ = 0;
  }

  /// Appends one vector; returns its id.
  uint32_t Append(const float* v) {
    data_.insert(data_.end(), v, v + d_);
    return static_cast<uint32_t>(n_++);
  }

  /// Appends `count` vectors stored contiguously.
  void AppendBatch(const float* v, size_t count) {
    data_.insert(data_.end(), v, v + count * d_);
    n_ += count;
  }

  void Reserve(size_t n) { data_.reserve(n * d_); }

  const float* Vec(uint32_t id) const {
    assert(id < n_);
    return data_.data() + static_cast<size_t>(id) * d_;
  }
  float* MutableVec(uint32_t id) { return data_.data() + static_cast<size_t>(id) * d_; }

  VectorSetView View() const { return VectorSetView{data_.data(), n_, d_}; }

  size_t size() const { return n_; }
  size_t dim() const { return d_; }
  bool empty() const { return n_ == 0; }
  uint64_t MemoryBytes() const { return data_.capacity() * sizeof(float); }
  const float* raw() const { return data_.data(); }

  /// Drops all vectors with id >= new_size (used by session rollback in tests).
  void Truncate(size_t new_size) {
    assert(new_size <= n_);
    n_ = new_size;
    data_.resize(n_ * d_);
  }

 private:
  size_t d_ = 0;
  size_t n_ = 0;
  std::vector<float> data_;
};

}  // namespace alaya
