#include "src/index/hnsw.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "src/common/bounded_heap.h"
#include "src/common/visited_set.h"
#include "src/index/graph_search.h"
#include "src/query/diprs.h"

namespace alaya {

Hnsw::Hnsw(VectorSetView view, const HnswOptions& options)
    : view_(view),
      options_(options),
      rng_(options.seed),
      base_(static_cast<uint32_t>(view.n), options.m * 2) {}

Hnsw::~Hnsw() = default;

float Hnsw::Score(const float* a, const float* b) const {
  if (options_.metric == GraphMetric::kInnerProduct) return Dot(a, b, view_.d);
  return -L2Sq(a, b, view_.d);
}

Status Hnsw::Build() {
  if (view_.d == 0) return Status::InvalidArgument("dimension is zero");
  for (uint32_t id = next_id_; id < view_.n; ++id) InsertNode(id);
  return Status::Ok();
}

Status Hnsw::AppendNewVectors(VectorSetView grown_view) {
  if (grown_view.d != view_.d && next_id_ > 0) {
    return Status::InvalidArgument("dimension mismatch on append");
  }
  if (grown_view.n < next_id_) {
    return Status::InvalidArgument("grown view smaller than inserted set");
  }
  view_ = grown_view;
  while (base_.size() < view_.n) base_.AddNode();
  return Build();
}

std::span<const uint32_t> Hnsw::NeighborsAt(uint32_t u, int level) const {
  if (level == 0) return base_.Neighbors(u);
  const auto& m = upper_[static_cast<size_t>(level - 1)];
  auto it = m.find(u);
  if (it == m.end()) return {};
  return {it->second.data(), it->second.size()};
}

std::vector<ScoredId> Hnsw::SearchLevel(const float* q, uint32_t entry, size_t ef,
                                        int level, SearchStats* stats) const {
  struct MaxFirst {
    bool operator()(const ScoredId& a, const ScoredId& b) const {
      return a.score < b.score;
    }
  };
  std::priority_queue<ScoredId, std::vector<ScoredId>, MaxFirst> frontier;
  TopKMaxHeap results(ef);
  VisitedSet visited(next_id_ == 0 ? 1 : next_id_);
  visited.Reset();

  const float es = Score(q, view_.Vec(entry));
  if (stats) stats->dist_comps++;
  visited.Visit(entry);
  frontier.push({entry, es});
  results.Push(entry, es);

  while (!frontier.empty()) {
    const ScoredId cur = frontier.top();
    frontier.pop();
    if (results.full() && cur.score < results.MinRetained()) break;
    if (stats) stats->hops++;
    for (uint32_t v : NeighborsAt(cur.id, level)) {
      if (!visited.Visit(v)) continue;
      const float s = Score(q, view_.Vec(v));
      if (stats) stats->dist_comps++;
      if (results.WouldAccept(s)) {
        results.Push(v, s);
        frontier.push({v, s});
      }
    }
  }
  return results.TakeSortedDesc();
}

std::vector<uint32_t> Hnsw::SelectNeighbors(uint32_t node,
                                            const std::vector<ScoredId>& candidates,
                                            uint32_t max_links) const {
  // Heuristic from the HNSW paper: take candidates best-first, but skip any
  // candidate that is closer to an already-selected neighbor than to the new
  // node — this keeps edges pointing in diverse directions.
  std::vector<uint32_t> selected;
  selected.reserve(max_links);
  for (const ScoredId& c : candidates) {
    if (selected.size() >= max_links) break;
    if (c.id == node) continue;
    bool keep = true;
    for (uint32_t s : selected) {
      const float cand_to_sel = Score(view_.Vec(c.id), view_.Vec(s));
      if (cand_to_sel > c.score) {  // c.score == Score(node, c).
        keep = false;
        break;
      }
    }
    if (keep) selected.push_back(c.id);
  }
  // Backfill with skipped candidates if diversity left slots empty.
  if (selected.size() < max_links) {
    for (const ScoredId& c : candidates) {
      if (selected.size() >= max_links) break;
      if (c.id == node) continue;
      if (std::find(selected.begin(), selected.end(), c.id) == selected.end()) {
        selected.push_back(c.id);
      }
    }
  }
  return selected;
}

void Hnsw::PruneOverflow(uint32_t u, int level, uint32_t max_links) {
  std::span<const uint32_t> nbrs = NeighborsAt(u, level);
  if (nbrs.size() <= max_links) return;
  std::vector<ScoredId> scored;
  scored.reserve(nbrs.size());
  for (uint32_t v : nbrs) scored.push_back({v, Score(view_.Vec(u), view_.Vec(v))});
  SortByScoreDesc(&scored);
  std::vector<uint32_t> kept = SelectNeighbors(u, scored, max_links);
  if (level == 0) {
    base_.SetNeighbors(u, kept);
  } else {
    upper_[static_cast<size_t>(level - 1)][u] = std::move(kept);
  }
}

void Hnsw::InsertNode(uint32_t id) {
  const double unif = std::max(rng_.Uniform(), 1e-12);
  const int level =
      static_cast<int>(-std::log(unif) / std::log(static_cast<double>(options_.m)));
  levels_.push_back(level);
  while (static_cast<int>(upper_.size()) < level) upper_.emplace_back();
  next_id_ = id + 1;

  if (id == 0) {
    entry_ = 0;
    max_level_ = level;
    return;
  }

  const float* vec = view_.Vec(id);
  uint32_t cur = entry_;
  // Greedy descent through levels above the node's level.
  for (int l = max_level_; l > level; --l) {
    bool improved = true;
    float cur_score = Score(vec, view_.Vec(cur));
    while (improved) {
      improved = false;
      for (uint32_t v : NeighborsAt(cur, l)) {
        const float s = Score(vec, view_.Vec(v));
        if (s > cur_score) {
          cur_score = s;
          cur = v;
          improved = true;
        }
      }
    }
  }

  // Connect on levels [min(level, max_level_) .. 0].
  for (int l = std::min(level, max_level_); l >= 0; --l) {
    auto candidates = SearchLevel(vec, cur, options_.ef_construction, l, nullptr);
    const uint32_t cap = (l == 0) ? options_.m * 2 : options_.m;
    std::vector<uint32_t> selected = SelectNeighbors(id, candidates, cap);
    if (l == 0) {
      base_.SetNeighbors(id, selected);
    } else {
      upper_[static_cast<size_t>(l - 1)][id] = selected;
    }
    for (uint32_t v : selected) {
      if (l == 0) {
        if (!base_.AddEdge(v, id)) {
          // Neighbor is full: re-select its best cap edges including us.
          std::vector<ScoredId> vn;
          for (uint32_t w : base_.Neighbors(v)) {
            vn.push_back({w, Score(view_.Vec(v), view_.Vec(w))});
          }
          vn.push_back({id, Score(view_.Vec(v), vec)});
          SortByScoreDesc(&vn);
          base_.SetNeighbors(v, SelectNeighbors(v, vn, cap));
        }
      } else {
        auto& lst = upper_[static_cast<size_t>(l - 1)][v];
        if (std::find(lst.begin(), lst.end(), id) == lst.end()) lst.push_back(id);
        if (lst.size() > options_.m) PruneOverflow(v, l, options_.m);
      }
    }
    if (!candidates.empty()) cur = candidates.front().id;
  }

  if (level > max_level_) {
    max_level_ = level;
    entry_ = id;
  }
}

uint32_t Hnsw::EntryPoint(const float* q) const {
  if (next_id_ == 0) return 0;
  uint32_t cur = entry_;
  for (int l = max_level_; l >= 1; --l) {
    bool improved = true;
    float cur_score = Score(q, view_.Vec(cur));
    while (improved) {
      improved = false;
      for (uint32_t v : NeighborsAt(cur, l)) {
        const float s = Score(q, view_.Vec(v));
        if (s > cur_score) {
          cur_score = s;
          cur = v;
          improved = true;
        }
      }
    }
  }
  return cur;
}

uint64_t Hnsw::MemoryBytes() const {
  uint64_t bytes = base_.MemoryBytes() + levels_.capacity() * sizeof(int);
  for (const auto& level : upper_) {
    bytes += level.size() *
             (sizeof(uint32_t) + sizeof(std::vector<uint32_t>) + 16 /* bucket cost */);
    for (const auto& [id, lst] : level) bytes += lst.capacity() * sizeof(uint32_t);
  }
  return bytes;
}

Status Hnsw::SearchTopK(const float* q, const TopKParams& params,
                        SearchResult* out) const {
  if (q == nullptr || out == nullptr) return Status::InvalidArgument("null arg");
  if (next_id_ == 0) {
    out->Clear();
    return Status::Ok();
  }
  out->Clear();
  SearchStats stats;
  const uint32_t ep = EntryPoint(q);
  if (options_.metric == GraphMetric::kInnerProduct) {
    *out = GraphBeamSearch(base_, view_, ep, q, params.EffectiveEf(), nullptr);
  } else {
    out->hits = SearchLevel(q, ep, params.EffectiveEf(), 0, &out->stats);
  }
  out->stats += stats;
  if (out->hits.size() > params.k) out->hits.resize(params.k);
  return Status::Ok();
}

Status Hnsw::SearchDipr(const float* q, const DiprParams& params,
                        SearchResult* out) const {
  if (q == nullptr || out == nullptr) return Status::InvalidArgument("null arg");
  if (options_.metric != GraphMetric::kInnerProduct) {
    return Status::NotSupported("DIPR requires an inner-product graph");
  }
  out->Clear();
  if (next_id_ == 0) return Status::Ok();
  *out = DiprsSearch(base_, view_, EntryPoint(q), q, params);
  return Status::Ok();
}

Status Hnsw::SearchTopKFiltered(const float* q, const TopKParams& params,
                                const IdFilter& filter, SearchResult* out) const {
  ALAYA_RETURN_IF_ERROR(SearchTopK(q, params, out));
  if (filter.enabled()) {
    std::erase_if(out->hits, [&](const ScoredId& h) { return !filter.Pass(h.id); });
  }
  return Status::Ok();
}

Status Hnsw::SearchDiprFiltered(const float* q, const DiprParams& params,
                                const IdFilter& filter, SearchResult* out) const {
  if (q == nullptr || out == nullptr) return Status::InvalidArgument("null arg");
  if (options_.metric != GraphMetric::kInnerProduct) {
    return Status::NotSupported("DIPR requires an inner-product graph");
  }
  out->Clear();
  if (next_id_ == 0) return Status::Ok();
  *out = DiprsSearchFiltered(base_, view_, EntryPoint(q), q, params, filter);
  return Status::Ok();
}

}  // namespace alaya
