// Layer-at-a-time index construction with the paper's §7.2 accelerations:
//   - GQA-based index sharing: one RoarGraph per KV head (queries sampled from
//     every query head in the group and merged), an h_q/h_kv-fold reduction in
//     index count and memory;
//   - GPU-based kNN construction: stage (i) runs on the simulated GPU
//     (executed on host threads, charged with modeled device time);
//   - layer pipeline: CPU->GPU transfer of layer l+1 overlaps with kNN compute
//     of layer l.
#pragma once

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/device/cost_model.h"
#include "src/index/roargraph.h"

namespace alaya {

struct IndexBuildOptions {
  RoarGraphOptions roar;
  /// Ratio of sampled training queries to key count (paper uses 40%).
  double query_sample_ratio = 0.4;
  /// Share one index per KV-head group instead of one per query head.
  bool share_gqa_group = true;
  /// Run stage (i) on the simulated GPU.
  bool use_sim_gpu_knn = true;
  /// GPU kNN speedup vs this host's measured throughput. Calibrated so the
  /// GPU:CPU ratio lands in the paper's observed 3-15x band (Fig. 11a);
  /// hardware-relative because our host differs from the authors'.
  double gpu_speedup_vs_host = 8.0;
  /// The CPU-baseline mode builds indices sequentially (RetrievalAttention
  /// builds one index per query head on CPU).
  bool sequential_cpu_baseline = false;
  ThreadPool* pool = nullptr;
  uint64_t seed = 7;
};

struct IndexBuildStats {
  double knn_wall_seconds = 0;       ///< Host wall time spent in stage (i).
  double project_wall_seconds = 0;   ///< Projection + connectivity time.
  double modeled_gpu_seconds = 0;    ///< Charged device time for stage (i).
  double modeled_transfer_seconds = 0;  ///< Charged PCIe time (KV upload).
  /// Reported construction time: wall time of CPU stages + pipelined device
  /// time (max of compute/transfer per layer) when the GPU path is on.
  double reported_seconds = 0;
  uint64_t index_bytes = 0;
  size_t num_indices = 0;
  size_t training_queries = 0;
  /// Extend-from-base accounting (index sharing across near-duplicate
  /// contexts): indices seeded from a stored context's graphs instead of
  /// rebuilt, graph nodes adopted verbatim from those bases, and suffix
  /// vectors inserted incrementally. A pure from-scratch build leaves all
  /// three at zero — the counter tests use to prove a prefix was NOT rebuilt.
  size_t extended_indices = 0;
  size_t reused_base_nodes = 0;
  size_t inserted_suffix_nodes = 0;

  /// Folds another (e.g. per-layer) stats block into this one.
  void Accumulate(const IndexBuildStats& o) {
    knn_wall_seconds += o.knn_wall_seconds;
    project_wall_seconds += o.project_wall_seconds;
    modeled_gpu_seconds += o.modeled_gpu_seconds;
    modeled_transfer_seconds += o.modeled_transfer_seconds;
    reported_seconds += o.reported_seconds;
    index_bytes += o.index_bytes;
    num_indices += o.num_indices;
    training_queries += o.training_queries;
    extended_indices += o.extended_indices;
    reused_base_nodes += o.reused_base_nodes;
    inserted_suffix_nodes += o.inserted_suffix_nodes;
  }
};

/// Builds the fine-grained indices for ONE transformer layer.
///
/// `head_keys[h]` are the key vectors of KV head h (h in [0, h_kv));
/// `head_queries[g]` are prefill query vectors of query head g (g in [0, h_q));
/// `gqa_group_size` = h_q / h_kv. Query head g attends KV head g / group_size.
///
/// With sharing: returns h_kv indices. Without: returns h_q indices (query
/// head g gets its own index over its KV head's keys).
Status BuildLayerIndices(const std::vector<VectorSetView>& head_keys,
                         const std::vector<VectorSetView>& head_queries,
                         uint32_t gqa_group_size, const IndexBuildOptions& options,
                         std::vector<std::unique_ptr<RoarGraph>>* out,
                         IndexBuildStats* stats);

/// Extends ONE layer's fine indices from a base context's graphs instead of
/// rebuilding them (index sharing across near-duplicate contexts, the
/// DB.Store path for sessions that fully reuse a stored prefix).
///
/// `head_keys[h]` are the NEW context's key vectors of KV head h (prefix +
/// suffix); `base_indices[h]` is the base context's graph for the same head,
/// built over exactly the first `base_tokens` rows of `head_keys[h]`. Only
/// the suffix rows [base_tokens, n) are inserted (RoarGraph::ExtendFromBase);
/// the prefix adjacency is adopted verbatim. GQA-shared layout only — one
/// index per KV head.
Status ExtendLayerIndices(const std::vector<VectorSetView>& head_keys,
                          const std::vector<const RoarGraph*>& base_indices,
                          size_t base_tokens, const IndexBuildOptions& options,
                          std::vector<std::unique_ptr<RoarGraph>>* out,
                          IndexBuildStats* stats);

/// Samples `count` query vectors (rows) from `queries` into a new VectorSet.
VectorSet SampleQueries(VectorSetView queries, size_t count, Rng* rng);

}  // namespace alaya
