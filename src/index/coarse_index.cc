#include "src/index/coarse_index.h"

#include <algorithm>
#include <cstring>

#include "src/common/bounded_heap.h"

namespace alaya {

CoarseIndex::CoarseIndex(VectorSetView keys, const CoarseIndexOptions& options)
    : keys_(keys), options_(options) {
  Build();
  if (options_.gpu_memory != nullptr) {
    // The deployed system keeps representatives and the block KV data on GPU.
    uint64_t bytes = MemoryBytes();
    if (options_.bytes_per_token_kv > 0) {
      bytes += static_cast<uint64_t>(keys_.n) * options_.bytes_per_token_kv;
    }
    gpu_reservation_ = MemoryReservation(options_.gpu_memory, bytes);
  }
}

CoarseIndex::~CoarseIndex() = default;

void CoarseIndex::Build() {
  const size_t b = options_.block_size;
  num_blocks_ = (keys_.n + b - 1) / b;
  const size_t d = keys_.d;
  switch (options_.rep_kind) {
    case BlockRepKind::kMean: {
      reps_.assign(num_blocks_ * d, 0.f);
      for (size_t blk = 0; blk < num_blocks_; ++blk) {
        float* rep = reps_.data() + blk * d;
        const size_t lo = blk * b;
        const size_t hi = std::min(keys_.n, lo + b);
        for (size_t i = lo; i < hi; ++i) {
          Axpy(rep, keys_.Vec(static_cast<uint32_t>(i)), d, 1.0f);
        }
        if (hi > lo) Scale(rep, d, 1.0f / static_cast<float>(hi - lo));
      }
      break;
    }
    case BlockRepKind::kMinMax: {
      reps_.assign(num_blocks_ * 2 * d, 0.f);
      for (size_t blk = 0; blk < num_blocks_; ++blk) {
        float* mn = reps_.data() + blk * 2 * d;
        float* mx = mn + d;
        const size_t lo = blk * b;
        const size_t hi = std::min(keys_.n, lo + b);
        std::memcpy(mn, keys_.Vec(static_cast<uint32_t>(lo)), d * sizeof(float));
        std::memcpy(mx, keys_.Vec(static_cast<uint32_t>(lo)), d * sizeof(float));
        for (size_t i = lo + 1; i < hi; ++i) {
          const float* v = keys_.Vec(static_cast<uint32_t>(i));
          for (size_t j = 0; j < d; ++j) {
            mn[j] = std::min(mn[j], v[j]);
            mx[j] = std::max(mx[j], v[j]);
          }
        }
      }
      break;
    }
    case BlockRepKind::kSalient: {
      const size_t r = options_.reps_per_block;
      reps_.assign(num_blocks_ * r * d, 0.f);
      for (size_t blk = 0; blk < num_blocks_; ++blk) {
        const size_t lo = blk * b;
        const size_t hi = std::min(keys_.n, lo + b);
        // Pick the r largest-norm keys in the block as representatives.
        TopKMaxHeap heap(r);
        for (size_t i = lo; i < hi; ++i) {
          const float* v = keys_.Vec(static_cast<uint32_t>(i));
          heap.Push(static_cast<uint32_t>(i), Dot(v, v, d));
        }
        auto picks = heap.TakeSortedDesc();
        for (size_t j = 0; j < picks.size(); ++j) {
          std::memcpy(reps_.data() + (blk * r + j) * d, keys_.Vec(picks[j].id),
                      d * sizeof(float));
        }
        // Duplicate the last pick into unused slots for short blocks.
        for (size_t j = picks.size(); j < r && !picks.empty(); ++j) {
          std::memcpy(reps_.data() + (blk * r + j) * d,
                      keys_.Vec(picks.back().id), d * sizeof(float));
        }
      }
      break;
    }
  }
}

uint64_t CoarseIndex::MemoryBytes() const { return reps_.capacity() * sizeof(float); }

float CoarseIndex::BlockScore(const float* q, size_t blk) const {
  const size_t d = keys_.d;
  switch (options_.rep_kind) {
    case BlockRepKind::kMean:
      return Dot(q, reps_.data() + blk * d, d);
    case BlockRepKind::kMinMax: {
      // Quest upper bound: max over the box corners, separable per dimension.
      const float* mn = reps_.data() + blk * 2 * d;
      const float* mx = mn + d;
      float s = 0.f;
      for (size_t j = 0; j < d; ++j) {
        s += std::max(q[j] * mn[j], q[j] * mx[j]);
      }
      return s;
    }
    case BlockRepKind::kSalient: {
      const size_t r = options_.reps_per_block;
      float best = -1e30f;
      for (size_t j = 0; j < r; ++j) {
        best = std::max(best, Dot(q, reps_.data() + (blk * r + j) * d, d));
      }
      return best;
    }
  }
  return 0.f;
}

Status CoarseIndex::SearchTopK(const float* q, const TopKParams& params,
                               SearchResult* out) const {
  return SearchTopKFiltered(q, params, IdFilter{}, out);
}

Status CoarseIndex::SearchTopKFiltered(const float* q, const TopKParams& params,
                                       const IdFilter& filter,
                                       SearchResult* out) const {
  if (q == nullptr || out == nullptr) {
    return Status::InvalidArgument("null query/output");
  }
  out->Clear();
  if (keys_.n == 0) return Status::Ok();
  const size_t b = options_.block_size;
  const size_t want_blocks =
      std::min(num_blocks_, (params.k + b - 1) / b);

  TopKMaxHeap block_heap(want_blocks);
  for (size_t blk = 0; blk < num_blocks_; ++blk) {
    const uint32_t first_id = static_cast<uint32_t>(blk * b);
    if (filter.enabled() && !filter.Pass(first_id)) continue;
    block_heap.Push(static_cast<uint32_t>(blk), BlockScore(q, blk));
  }
  out->stats.dist_comps += num_blocks_;

  auto blocks = block_heap.TakeSortedDesc();
  for (const auto& blk_hit : blocks) {
    const size_t lo = static_cast<size_t>(blk_hit.id) * b;
    const size_t hi = std::min(keys_.n, lo + b);
    for (size_t i = lo; i < hi; ++i) {
      if (filter.enabled() && !filter.Pass(static_cast<uint32_t>(i))) continue;
      // Tokens inherit their block's score; exact per-token scores are
      // computed later by the attention engine anyway.
      out->hits.push_back({static_cast<uint32_t>(i), blk_hit.score});
    }
  }
  return Status::Ok();
}

Status CoarseIndex::SearchDipr(const float*, const DiprParams&, SearchResult*) const {
  return Status::NotSupported("coarse index cannot process DIPR queries (Table 4)");
}

Status CoarseIndex::SearchDiprFiltered(const float*, const DiprParams&, const IdFilter&,
                                       SearchResult*) const {
  return Status::NotSupported("coarse index cannot process DIPR queries (Table 4)");
}

}  // namespace alaya
