// Hierarchical Navigable Small World graph (Malkov & Yashunin), specialized
// for maximum-inner-product search over KV-cache key vectors.
//
// AlayaDB's default fine-grained index is RoarGraph (built from cross-modal
// query->key kNN); HNSW is provided as the classic in-distribution graph
// baseline (§6.1.3 cites it as a building block) and for incremental inserts.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/index/graph_common.h"
#include "src/index/index.h"

namespace alaya {

/// Similarity used for both construction and search. Scores are
/// "higher is better": inner product, or negated squared L2.
enum class GraphMetric : int { kInnerProduct = 0, kL2 = 1 };

struct HnswOptions {
  uint32_t m = 16;                ///< Max degree on upper layers (2m on layer 0).
  uint32_t ef_construction = 128; ///< Beam width during insertion.
  GraphMetric metric = GraphMetric::kInnerProduct;
  uint64_t seed = 42;
};

class Hnsw final : public VectorIndex, public SearchableGraph {
 public:
  /// Creates an empty index over `view` (vectors owned by the caller).
  /// Call Build() to insert all vectors, or InsertSequential() incrementally
  /// after Rebind()ing to a grown view.
  Hnsw(VectorSetView view, const HnswOptions& options);
  ~Hnsw() override;

  /// Inserts vectors [0, view.n). Single-threaded (insertion mutates shared
  /// adjacency); index construction at scale goes through RoarGraph instead.
  Status Build();

  /// Rebinds to a grown view and inserts the new tail [old_n, view.n).
  Status AppendNewVectors(VectorSetView grown_view);

  // --- VectorIndex ---
  IndexClass index_class() const override { return IndexClass::kFine; }
  size_t size() const override { return next_id_; }
  uint64_t MemoryBytes() const override;
  Status SearchTopK(const float* q, const TopKParams& params,
                    SearchResult* out) const override;
  Status SearchDipr(const float* q, const DiprParams& params,
                    SearchResult* out) const override;
  Status SearchTopKFiltered(const float* q, const TopKParams& params,
                            const IdFilter& filter, SearchResult* out) const override;
  Status SearchDiprFiltered(const float* q, const DiprParams& params,
                            const IdFilter& filter, SearchResult* out) const override;

  // --- SearchableGraph (base layer view for DIPRS) ---
  const AdjacencyGraph& graph() const override { return base_; }
  VectorSetView vectors() const override { return view_; }
  uint32_t EntryPoint(const float* q) const override;

  int max_level() const { return max_level_; }

 private:
  float Score(const float* a, const float* b) const;

  /// Beam search restricted to one level; returns candidates best-first.
  std::vector<ScoredId> SearchLevel(const float* q, uint32_t entry, size_t ef,
                                    int level, SearchStats* stats) const;

  /// HNSW neighbor-selection heuristic: prefers diverse neighbors.
  std::vector<uint32_t> SelectNeighbors(uint32_t node,
                                        const std::vector<ScoredId>& candidates,
                                        uint32_t max_links) const;

  void InsertNode(uint32_t id);
  std::span<const uint32_t> NeighborsAt(uint32_t u, int level) const;
  void PruneOverflow(uint32_t u, int level, uint32_t max_links);

  VectorSetView view_;
  HnswOptions options_;
  Rng rng_;

  uint32_t next_id_ = 0;     ///< Number of inserted nodes.
  std::vector<int> levels_;  ///< Top level of each node.
  AdjacencyGraph base_;      ///< Level 0 adjacency (cap 2m).
  /// Levels >= 1: sparse adjacency.
  std::vector<std::unordered_map<uint32_t, std::vector<uint32_t>>> upper_;
  uint32_t entry_ = 0;
  int max_level_ = -1;
};

}  // namespace alaya
