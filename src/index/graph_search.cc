#include "src/index/graph_search.h"

#include <algorithm>
#include <queue>

#include "src/common/bounded_heap.h"

namespace alaya {

namespace {

struct MaxFirst {
  bool operator()(const ScoredId& a, const ScoredId& b) const {
    return a.score < b.score;  // priority_queue pops the largest score.
  }
};

}  // namespace

SearchResult GraphBeamSearch(const AdjacencyGraph& graph,
                             const ScoringView& vectors, uint32_t entry,
                             const float* q, size_t ef, VisitedSet* visited) {
  SearchResult out;
  if (graph.size() == 0 || ef == 0) return out;

  VisitedSet local;
  if (visited == nullptr) visited = &local;
  visited->Resize(graph.size());
  visited->Reset();

  const QueryScorer scorer(vectors, q);

  // Classic two-heap beam search: `frontier` holds nodes to expand (best
  // first); `results` keeps the ef best scored nodes seen so far.
  std::priority_queue<ScoredId, std::vector<ScoredId>, MaxFirst> frontier;
  TopKMaxHeap results(ef);

  const float entry_score = scorer.Score(entry);
  out.stats.dist_comps++;
  visited->Visit(entry);
  frontier.push({entry, entry_score});
  results.Push(entry, entry_score);

  while (!frontier.empty()) {
    const ScoredId cur = frontier.top();
    frontier.pop();
    if (results.full() && cur.score < results.MinRetained()) break;
    out.stats.hops++;
    for (uint32_t v : graph.Neighbors(cur.id)) {
      if (!visited->Visit(v)) continue;
      const float score = scorer.Score(v);
      out.stats.dist_comps++;
      if (results.WouldAccept(score)) {
        results.Push(v, score);
        frontier.push({v, score});
      }
    }
  }

  out.hits = results.TakeSortedDesc();
  out.stats.dist_comps += RerankTopHits(vectors, q, &out.hits);
  return out;
}

SearchResult GraphTopK(const AdjacencyGraph& graph, const ScoringView& vectors,
                       uint32_t entry, const float* q, const TopKParams& params,
                       VisitedSet* visited) {
  SearchResult res =
      GraphBeamSearch(graph, vectors, entry, q, params.EffectiveEf(), visited);
  if (res.hits.size() > params.k) res.hits.resize(params.k);
  return res;
}

uint32_t GreedyDescend(const AdjacencyGraph& graph, const ScoringView& vectors,
                       uint32_t entry, const float* q, SearchStats* stats) {
  const QueryScorer scorer(vectors, q);
  uint32_t cur = entry;
  float cur_score = scorer.Score(cur);
  if (stats) stats->dist_comps++;
  bool improved = true;
  while (improved) {
    improved = false;
    for (uint32_t v : graph.Neighbors(cur)) {
      const float s = scorer.Score(v);
      if (stats) stats->dist_comps++;
      if (s > cur_score) {
        cur_score = s;
        cur = v;
        improved = true;
      }
    }
    if (stats) stats->hops++;
  }
  return cur;
}

}  // namespace alaya
