// Coarse-grained block index (InfLLM / Quest / PQCache family, Table 4).
//
// Adjacent tokens are grouped into fixed-size blocks; each block is summarized
// by representative vectors. Retrieval scores blocks against the query and
// returns every token in the selected blocks. Blocks are cached in (simulated)
// GPU memory, so this index class trades memory for latency.
#pragma once

#include <memory>

#include "src/device/memory_tracker.h"
#include "src/index/index.h"

namespace alaya {

/// How a block is summarized.
enum class BlockRepKind : int {
  kMean = 0,    ///< Mean key vector (InfLLM-style single representative).
  kMinMax = 1,  ///< Per-dimension min/max planes; scores are upper bounds (Quest).
  kSalient = 2, ///< r highest-norm keys as representatives (InfLLM multi-rep).
};

struct CoarseIndexOptions {
  uint32_t block_size = 128;
  BlockRepKind rep_kind = BlockRepKind::kMean;
  /// Representatives per block for kSalient.
  uint32_t reps_per_block = 4;
  /// When set, block KV bytes are accounted as GPU-resident.
  MemoryTracker* gpu_memory = nullptr;
  /// Bytes per cached token (K + V in the deployed precision, bf16 = 4 bytes).
  uint32_t bytes_per_token_kv = 0;
};

class CoarseIndex final : public VectorIndex {
 public:
  /// Builds block summaries over the given keys. The view must outlive the
  /// index (the KV cache owns the vectors).
  CoarseIndex(VectorSetView keys, const CoarseIndexOptions& options);
  ~CoarseIndex() override;

  IndexClass index_class() const override { return IndexClass::kCoarse; }
  size_t size() const override { return keys_.n; }
  uint64_t MemoryBytes() const override;

  /// Top-k semantics: selects ceil(k / block_size) best blocks and returns all
  /// of their tokens (so |hits| is k rounded up to block granularity).
  Status SearchTopK(const float* q, const TopKParams& params,
                    SearchResult* out) const override;

  /// DIPR needs per-key decisions; a coarse index cannot provide them
  /// (Table 4: coarse supports Top-k and Filter only).
  Status SearchDipr(const float* q, const DiprParams& params,
                    SearchResult* out) const override;

  Status SearchTopKFiltered(const float* q, const TopKParams& params,
                            const IdFilter& filter, SearchResult* out) const override;
  Status SearchDiprFiltered(const float* q, const DiprParams& params,
                            const IdFilter& filter, SearchResult* out) const override;

  size_t num_blocks() const { return num_blocks_; }
  uint32_t block_size() const { return options_.block_size; }

  /// Upper-bound (or representative) relevance score of block b for query q.
  float BlockScore(const float* q, size_t b) const;

 private:
  void Build();

  VectorSetView keys_;
  CoarseIndexOptions options_;
  size_t num_blocks_ = 0;
  /// kMean: [num_blocks, d]; kMinMax: [num_blocks, 2d] (min then max);
  /// kSalient: [num_blocks, reps_per_block * d].
  std::vector<float> reps_;
  MemoryReservation gpu_reservation_;
};

}  // namespace alaya
