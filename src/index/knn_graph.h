// Exact bipartite kNN construction: for each training query vector, the k key
// vectors with the largest inner product. This is stage (i) of RoarGraph
// construction (§7.2); on the paper's testbed it runs on GPU via NVIDIA cuVS,
// here it runs on the host thread pool (the simulated-GPU charging happens in
// IndexBuilder, which owns the layer pipeline).
#pragma once

#include <vector>

#include "src/common/thread_pool.h"
#include "src/common/vec_math.h"
#include "src/index/vector_set.h"

namespace alaya {

struct BipartiteKnnOptions {
  uint32_t k = 16;
  /// Pool for parallel execution; nullptr -> ThreadPool::Global().
  ThreadPool* pool = nullptr;
  /// Run single-threaded (the "CPU baseline" of Fig. 11 builds one index at a
  /// time with limited parallelism; exposed for benchmarking).
  bool sequential = false;
};

/// Exact top-k (by inner product) keys for each query. queries.d must equal
/// keys.d. Returns one descending-sorted list per query.
std::vector<std::vector<ScoredId>> ExactBipartiteKnn(VectorSetView keys,
                                                     VectorSetView queries,
                                                     const BipartiteKnnOptions& options);

/// FLOPs of the exact computation (for the simulated-GPU cost model).
inline double BipartiteKnnFlops(size_t num_keys, size_t num_queries, size_t dim) {
  return 2.0 * static_cast<double>(num_keys) * static_cast<double>(num_queries) *
         static_cast<double>(dim);
}

}  // namespace alaya
