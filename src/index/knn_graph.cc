#include "src/index/knn_graph.h"

#include "src/common/bounded_heap.h"

namespace alaya {

std::vector<std::vector<ScoredId>> ExactBipartiteKnn(VectorSetView keys,
                                                     VectorSetView queries,
                                                     const BipartiteKnnOptions& options) {
  std::vector<std::vector<ScoredId>> out(queries.n);
  if (keys.n == 0 || queries.n == 0) return out;

  auto compute_one = [&](size_t qi) {
    TopKMaxHeap heap(options.k);
    const float* q = queries.Vec(static_cast<uint32_t>(qi));
    for (uint32_t i = 0; i < keys.n; ++i) {
      heap.Push(i, Dot(q, keys.Vec(i), keys.d));
    }
    out[qi] = heap.TakeSortedDesc();
  };

  if (options.sequential) {
    for (size_t qi = 0; qi < queries.n; ++qi) compute_one(qi);
  } else {
    ThreadPool* pool = options.pool != nullptr ? options.pool : &ThreadPool::Global();
    pool->ParallelFor(0, queries.n, compute_one);
  }
  return out;
}

}  // namespace alaya
