#include "src/storage/vector_file.h"

#include <cstring>

#include "src/common/string_util.h"

namespace alaya {

Result<std::unique_ptr<VectorFile>> VectorFile::Create(
    std::unique_ptr<IoBackend> backend, const VectorFileOptions& options,
    BufferManager* buffer, uint64_t file_id) {
  if (options.dim == 0) return Status::InvalidArgument("dim must be > 0");
  const size_t payload = options.block_size - kBlockHeaderSize;
  const size_t vec_bytes = options.dim * sizeof(float);
  const size_t entry_bytes = (1 + options.max_degree) * sizeof(uint32_t);
  if (vec_bytes > payload || entry_bytes > payload) {
    return Status::InvalidArgument(
        StrFormat("block_size %u too small for dim %u / degree %u",
                  options.block_size, options.dim, options.max_degree));
  }
  if (buffer != nullptr && buffer->options().block_size != options.block_size) {
    // Install/Fetch move whole buffer-manager blocks: a geometry mismatch
    // reads past the file's block buffers (heap overflow), so refuse it.
    return Status::InvalidArgument(
        StrFormat("buffer manager block_size %u != file block_size %u",
                  buffer->options().block_size, options.block_size));
  }
  auto file =
      std::unique_ptr<VectorFile>(new VectorFile(std::move(backend), buffer, file_id));
  file->header_.block_size = options.block_size;
  file->header_.dim = options.dim;
  file->header_.max_degree = options.max_degree;
  file->header_.vecs_per_block = static_cast<uint32_t>(payload / vec_bytes);
  file->header_.nodes_per_block = static_cast<uint32_t>(payload / entry_bytes);
  ALAYA_RETURN_IF_ERROR(file->WriteHeader());
  return file;
}

Result<std::unique_ptr<VectorFile>> VectorFile::Open(std::unique_ptr<IoBackend> backend,
                                                     BufferManager* buffer,
                                                     uint64_t file_id) {
  auto file =
      std::unique_ptr<VectorFile>(new VectorFile(std::move(backend), buffer, file_id));
  FileHeader h;
  ALAYA_RETURN_IF_ERROR(file->backend_->Read(0, &h, sizeof(h)));
  if (h.magic != kMagic) return Status::Corruption("bad magic in vector file");
  if (h.version != kVersion) return Status::NotSupported("vector file version");
  if (buffer != nullptr && buffer->options().block_size != h.block_size) {
    return Status::InvalidArgument(
        StrFormat("buffer manager block_size %u != file block_size %u",
                  buffer->options().block_size, h.block_size));
  }
  file->header_ = h;
  ALAYA_RETURN_IF_ERROR(file->LoadBlockMaps());
  return file;
}

Status VectorFile::WriteHeader() {
  // The header occupies logical block -1 (offset 0), padded to block_size.
  std::vector<uint8_t> buf(header_.block_size, 0);
  std::memcpy(buf.data(), &header_, sizeof(header_));
  return backend_->Write(0, buf.data(), buf.size());
}

Status VectorFile::LoadBlockMaps() {
  data_blocks_.clear();
  index_blocks_.clear();
  for (uint32_t b = 0; b < header_.num_blocks; ++b) {
    BlockHeader bh;
    ALAYA_RETURN_IF_ERROR(backend_->Read(BlockOffset(b), &bh, sizeof(bh)));
    auto& map = (static_cast<BlockType>(bh.type) == BlockType::kData) ? data_blocks_
                                                                      : index_blocks_;
    if (bh.seq >= map.size()) map.resize(bh.seq + 1, UINT32_MAX);
    map[bh.seq] = b;
  }
  return Status::Ok();
}

uint32_t VectorFile::PhysicalBlock(BlockType type, uint32_t seq) const {
  const auto& map = (type == BlockType::kData) ? data_blocks_ : index_blocks_;
  if (seq >= map.size()) return UINT32_MAX;
  return map[seq];
}

Result<uint32_t> VectorFile::EnsureBlock(BlockType type, uint32_t seq) {
  uint32_t physical = PhysicalBlock(type, seq);
  if (physical != UINT32_MAX) return physical;
  // Allocate at the tail and persist an initialized (zeroed) block.
  physical = header_.num_blocks++;
  auto& map = (type == BlockType::kData) ? data_blocks_ : index_blocks_;
  if (seq >= map.size()) map.resize(seq + 1, UINT32_MAX);
  map[seq] = physical;
  std::vector<uint8_t> buf(header_.block_size, 0);
  BlockHeader bh;
  bh.type = static_cast<uint32_t>(type);
  bh.seq = seq;
  std::memcpy(buf.data(), &bh, sizeof(bh));
  ALAYA_RETURN_IF_ERROR(backend_->Write(BlockOffset(physical), buf.data(), buf.size()));
  if (buffer_ != nullptr) buffer_->Install(file_id_, physical, type, buf.data());
  ALAYA_RETURN_IF_ERROR(WriteHeader());
  return physical;
}

Status VectorFile::ReadBlock(uint32_t physical, BlockType type,
                             std::shared_ptr<const CachedBlock>* out) const {
  if (buffer_ != nullptr) {
    ALAYA_ASSIGN_OR_RETURN(
        *out, buffer_->Fetch(file_id_, physical, type, [&](uint8_t* dst) {
          return backend_->Read(BlockOffset(physical), dst, header_.block_size);
        }));
    return Status::Ok();
  }
  auto block = std::make_shared<CachedBlock>();
  block->bytes.resize(header_.block_size);
  block->type = type;
  ALAYA_RETURN_IF_ERROR(
      backend_->Read(BlockOffset(physical), block->bytes.data(), header_.block_size));
  *out = std::move(block);
  return Status::Ok();
}

Status VectorFile::WriteBlock(uint32_t physical, BlockType type,
                              const uint8_t* payload) {
  ALAYA_RETURN_IF_ERROR(
      backend_->Write(BlockOffset(physical), payload, header_.block_size));
  if (buffer_ != nullptr) buffer_->Install(file_id_, physical, type, payload);
  return Status::Ok();
}

Result<uint32_t> VectorFile::AppendVector(const float* vec) {
  const uint32_t id = header_.num_vectors;
  const uint32_t seq = id / header_.vecs_per_block;
  const uint32_t slot = id % header_.vecs_per_block;
  ALAYA_ASSIGN_OR_RETURN(uint32_t physical, EnsureBlock(BlockType::kData, seq));

  // Read-modify-write the block (tail block is hot in the buffer manager).
  std::shared_ptr<const CachedBlock> block;
  ALAYA_RETURN_IF_ERROR(ReadBlock(physical, BlockType::kData, &block));
  std::vector<uint8_t> buf = block->bytes;
  std::memcpy(buf.data() + kBlockHeaderSize + slot * header_.dim * sizeof(float), vec,
              header_.dim * sizeof(float));
  BlockHeader* bh = reinterpret_cast<BlockHeader*>(buf.data());
  bh->used = slot + 1;
  ALAYA_RETURN_IF_ERROR(WriteBlock(physical, BlockType::kData, buf.data()));

  header_.num_vectors++;
  ALAYA_RETURN_IF_ERROR(WriteHeader());
  return id;
}

Status VectorFile::ReadVector(uint32_t id, float* out) const {
  if (id >= header_.num_vectors) return Status::OutOfRange("vector id out of range");
  const uint32_t seq = id / header_.vecs_per_block;
  const uint32_t slot = id % header_.vecs_per_block;
  const uint32_t physical = PhysicalBlock(BlockType::kData, seq);
  if (physical == UINT32_MAX) return Status::Corruption("missing data block");
  std::shared_ptr<const CachedBlock> block;
  ALAYA_RETURN_IF_ERROR(ReadBlock(physical, BlockType::kData, &block));
  std::memcpy(out, block->bytes.data() + kBlockHeaderSize + slot * header_.dim * sizeof(float),
              header_.dim * sizeof(float));
  return Status::Ok();
}

Status VectorFile::WriteAdjacency(uint32_t id, std::span<const uint32_t> neighbors) {
  if (id >= header_.num_vectors) return Status::OutOfRange("node id out of range");
  const uint32_t degree = static_cast<uint32_t>(
      neighbors.size() > header_.max_degree ? header_.max_degree : neighbors.size());
  const uint32_t seq = id / header_.nodes_per_block;
  const uint32_t slot = id % header_.nodes_per_block;
  ALAYA_ASSIGN_OR_RETURN(uint32_t physical, EnsureBlock(BlockType::kIndex, seq));

  std::shared_ptr<const CachedBlock> block;
  ALAYA_RETURN_IF_ERROR(ReadBlock(physical, BlockType::kIndex, &block));
  std::vector<uint8_t> buf = block->bytes;
  const size_t entry_bytes = (1 + header_.max_degree) * sizeof(uint32_t);
  uint8_t* entry = buf.data() + kBlockHeaderSize + slot * entry_bytes;
  std::memcpy(entry, &degree, sizeof(uint32_t));
  std::memcpy(entry + sizeof(uint32_t), neighbors.data(), degree * sizeof(uint32_t));
  return WriteBlock(physical, BlockType::kIndex, buf.data());
}

Status VectorFile::ReadAdjacency(uint32_t id, std::vector<uint32_t>* neighbors) const {
  if (id >= header_.num_vectors) return Status::OutOfRange("node id out of range");
  neighbors->clear();
  const uint32_t seq = id / header_.nodes_per_block;
  const uint32_t slot = id % header_.nodes_per_block;
  const uint32_t physical = PhysicalBlock(BlockType::kIndex, seq);
  if (physical == UINT32_MAX) return Status::Ok();  // No adjacency written yet.
  std::shared_ptr<const CachedBlock> block;
  ALAYA_RETURN_IF_ERROR(ReadBlock(physical, BlockType::kIndex, &block));
  const size_t entry_bytes = (1 + header_.max_degree) * sizeof(uint32_t);
  const uint8_t* entry = block->bytes.data() + kBlockHeaderSize + slot * entry_bytes;
  uint32_t degree = 0;
  std::memcpy(&degree, entry, sizeof(uint32_t));
  if (degree > header_.max_degree) return Status::Corruption("degree exceeds cap");
  neighbors->resize(degree);
  std::memcpy(neighbors->data(), entry + sizeof(uint32_t), degree * sizeof(uint32_t));
  return Status::Ok();
}

Status VectorFile::Flush() {
  ALAYA_RETURN_IF_ERROR(WriteHeader());
  return backend_->Sync();
}

}  // namespace alaya
