// Purpose-built buffer manager (§7.3): caches fixed-size blocks with a
// type-aware eviction policy. Index blocks (graph adjacency, traversed on
// every search) are preferentially retained; data blocks (vector payloads,
// typically touched once per attention computation) are evicted first.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"

namespace alaya {

/// Block roles, ordered by eviction priority (lower evicts first).
enum class BlockType : uint32_t {
  kData = 0,    ///< Vector payload: fetched once per use, evict first.
  kIndex = 1,   ///< Graph adjacency: hot during traversal, retain.
  kHeader = 2,  ///< File metadata: effectively pinned.
};

struct BufferStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// A cached block. Immutable once loaded; shared_ptr pins it (the eviction
/// scan skips blocks with external references).
struct CachedBlock {
  std::vector<uint8_t> bytes;
  BlockType type = BlockType::kData;
};

class BufferManager {
 public:
  struct Options {
    size_t capacity_bytes = 16u << 20;
    uint32_t block_size = 4096;
    /// Evict data blocks before index blocks (the paper's policy). When
    /// false, plain global LRU (ablation baseline).
    bool type_aware = true;
  };

  explicit BufferManager(const Options& options) : options_(options) {}

  /// Returns the cached block for (file_id, block_no), invoking `loader` to
  /// fill a block-sized buffer on a miss. Thread-safe.
  Result<std::shared_ptr<const CachedBlock>> Fetch(
      uint64_t file_id, uint64_t block_no, BlockType type,
      const std::function<Status(uint8_t* dst)>& loader);

  /// Drops a (possibly stale) cached block after an in-place write.
  void Invalidate(uint64_t file_id, uint64_t block_no);

  /// Installs freshly-written bytes (write-through caching).
  void Install(uint64_t file_id, uint64_t block_no, BlockType type,
               const uint8_t* bytes);

  BufferStats stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
  }
  size_t cached_blocks() const {
    std::lock_guard<std::mutex> lk(mu_);
    return table_.size();
  }
  size_t cached_bytes() const {
    std::lock_guard<std::mutex> lk(mu_);
    return table_.size() * options_.block_size;
  }
  const Options& options() const { return options_; }

 private:
  using Key = uint64_t;  // (file_id << 40) | block_no — files are small.
  static Key MakeKey(uint64_t file_id, uint64_t block_no) {
    return (file_id << 40) | (block_no & ((1ull << 40) - 1));
  }

  struct Entry {
    std::shared_ptr<CachedBlock> block;
    std::list<Key>::iterator lru_pos;
    int lru_class = 0;
  };

  /// Must hold mu_. Evicts until under capacity; returns false if everything
  /// left is pinned.
  bool EvictOne();
  int ClassOf(BlockType type) const {
    if (!options_.type_aware) return 0;
    return type == BlockType::kData ? 0 : 1;  // Headers ride with index blocks.
  }

  Options options_;
  mutable std::mutex mu_;
  std::unordered_map<Key, Entry> table_;
  std::list<Key> lru_[2];  ///< Class 0 evicts before class 1; front = coldest.
  BufferStats stats_;
};

}  // namespace alaya
