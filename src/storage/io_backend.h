// Pluggable user-space block I/O.
//
// The paper's vector file system sits on SPDK, bypassing the kernel I/O path.
// This reproduction keeps the identical block layout and buffer management
// above a pluggable backend: PosixIoBackend (pread/pwrite) for real files and
// MemIoBackend for tests. Absolute IOPS differ from SPDK; everything the paper
// attributes to the layout (locality, insert-without-restructure, type-aware
// caching) lives above this interface (DESIGN.md §2.4).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/status.h"

namespace alaya {

class IoBackend {
 public:
  virtual ~IoBackend() = default;

  virtual Status Write(uint64_t offset, const void* data, size_t size) = 0;
  virtual Status Read(uint64_t offset, void* data, size_t size) const = 0;
  /// Current backing size in bytes (writes may extend it).
  virtual uint64_t Size() const = 0;
  virtual Status Sync() = 0;
};

/// In-memory backend for tests and ephemeral indices.
class MemIoBackend final : public IoBackend {
 public:
  Status Write(uint64_t offset, const void* data, size_t size) override;
  Status Read(uint64_t offset, void* data, size_t size) const override;
  uint64_t Size() const override { return data_.size(); }
  Status Sync() override { return Status::Ok(); }

 private:
  std::string data_;
};

/// POSIX file backend (user-space block management over pread/pwrite).
class PosixIoBackend final : public IoBackend {
 public:
  /// Opens (or creates) the file at `path`.
  static Result<std::unique_ptr<PosixIoBackend>> Open(const std::string& path,
                                                      bool create);
  ~PosixIoBackend() override;

  Status Write(uint64_t offset, const void* data, size_t size) override;
  Status Read(uint64_t offset, void* data, size_t size) const override;
  uint64_t Size() const override;
  Status Sync() override;

 private:
  explicit PosixIoBackend(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  int fd_;
  std::string path_;
};

}  // namespace alaya
