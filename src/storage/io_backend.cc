#include "src/storage/io_backend.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/string_util.h"

namespace alaya {

Status MemIoBackend::Write(uint64_t offset, const void* data, size_t size) {
  if (offset + size > data_.size()) data_.resize(offset + size, '\0');
  std::memcpy(data_.data() + offset, data, size);
  return Status::Ok();
}

Status MemIoBackend::Read(uint64_t offset, void* data, size_t size) const {
  if (offset + size > data_.size()) {
    return Status::OutOfRange(
        StrFormat("read past end: offset=%llu size=%zu file=%zu",
                  static_cast<unsigned long long>(offset), size, data_.size()));
  }
  std::memcpy(data, data_.data() + offset, size);
  return Status::Ok();
}

Result<std::unique_ptr<PosixIoBackend>> PosixIoBackend::Open(const std::string& path,
                                                             bool create) {
  int flags = O_RDWR;
  if (create) flags |= O_CREAT;
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IoError(StrFormat("open(%s): %s", path.c_str(), strerror(errno)));
  }
  return std::unique_ptr<PosixIoBackend>(new PosixIoBackend(fd, path));
}

PosixIoBackend::~PosixIoBackend() {
  if (fd_ >= 0) ::close(fd_);
}

Status PosixIoBackend::Write(uint64_t offset, const void* data, size_t size) {
  size_t done = 0;
  const char* p = static_cast<const char*>(data);
  while (done < size) {
    const ssize_t n = ::pwrite(fd_, p + done, size - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(StrFormat("pwrite(%s): %s", path_.c_str(), strerror(errno)));
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status PosixIoBackend::Read(uint64_t offset, void* data, size_t size) const {
  size_t done = 0;
  char* p = static_cast<char*>(data);
  while (done < size) {
    const ssize_t n =
        ::pread(fd_, p + done, size - done, static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(StrFormat("pread(%s): %s", path_.c_str(), strerror(errno)));
    }
    if (n == 0) {
      return Status::OutOfRange(StrFormat("read past EOF in %s", path_.c_str()));
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

uint64_t PosixIoBackend::Size() const {
  struct stat st;
  if (::fstat(fd_, &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

Status PosixIoBackend::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::IoError(StrFormat("fsync(%s): %s", path_.c_str(), strerror(errno)));
  }
  return Status::Ok();
}

}  // namespace alaya
