#include "src/storage/vector_file_system.h"

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>
#include <set>

#include "src/common/string_util.h"

namespace alaya {

namespace {

/// All of a file system's files share one buffer manager, whose cached-block
/// geometry MUST match the files': Install copies buffer-manager-block_size
/// bytes out of file-block_size buffers, so a mismatch is a heap overflow
/// (found by ASan), not a tuning knob. One file geometry per VFS — force the
/// shared pool onto it before anything is constructed from the options.
VectorFileSystem::Options Normalized(VectorFileSystem::Options o) {
  o.buffer.block_size = o.file.block_size;
  return o;
}

}  // namespace

VectorFileSystem::VectorFileSystem(const Options& options)
    : options_(Normalized(options)), buffer_(options_.buffer) {
  if (!options_.in_memory) {
    ::mkdir(options_.dir.c_str(), 0755);  // Best effort; Create reports errors.
  }
}

std::string VectorFileSystem::PathFor(const std::string& name) const {
  return options_.dir + "/" + name + ".vf";
}

Result<std::unique_ptr<IoBackend>> VectorFileSystem::MakeBackend(
    const std::string& name, bool create) {
  if (options_.in_memory) {
    return std::unique_ptr<IoBackend>(std::make_unique<MemIoBackend>());
  }
  ALAYA_ASSIGN_OR_RETURN(auto posix, PosixIoBackend::Open(PathFor(name), create));
  return std::unique_ptr<IoBackend>(std::move(posix));
}

Result<VectorFile*> VectorFileSystem::CreateFile(const std::string& name) {
  ALAYA_ASSIGN_OR_RETURN(auto backend, MakeBackend(name, /*create=*/true));
  std::lock_guard<std::mutex> lk(mu_);
  ALAYA_ASSIGN_OR_RETURN(
      auto file, VectorFile::Create(std::move(backend), options_.file, &buffer_,
                                    next_file_id_));
  ++next_file_id_;
  VectorFile* ptr = file.get();
  files_[name] = std::move(file);
  return ptr;
}

Result<VectorFile*> VectorFileSystem::OpenFile(const std::string& name) {
  if (options_.in_memory) {
    return Status::NotSupported("reopen is only meaningful for POSIX-backed files");
  }
  ALAYA_ASSIGN_OR_RETURN(auto backend, MakeBackend(name, /*create=*/false));
  std::lock_guard<std::mutex> lk(mu_);
  ALAYA_ASSIGN_OR_RETURN(
      auto file, VectorFile::Open(std::move(backend), &buffer_, next_file_id_));
  ++next_file_id_;
  VectorFile* ptr = file.get();
  files_[name] = std::move(file);
  return ptr;
}

VectorFile* VectorFileSystem::GetFile(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = files_.find(name);
  return it == files_.end() ? nullptr : it->second.get();
}

size_t VectorFileSystem::num_files() const {
  std::lock_guard<std::mutex> lk(mu_);
  return files_.size();
}

std::vector<std::string> VectorFileSystem::ListNames() const {
  std::set<std::string> names;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& [name, _] : files_) names.insert(name);
  }
  if (!options_.in_memory) {
    // Not-yet-opened files from a previous process only exist on disk.
    if (DIR* dir = ::opendir(options_.dir.c_str()); dir != nullptr) {
      constexpr const char kExt[] = ".vf";
      constexpr size_t kExtLen = sizeof(kExt) - 1;
      while (const struct dirent* ent = ::readdir(dir)) {
        std::string name = ent->d_name;
        if (name.size() <= kExtLen ||
            name.compare(name.size() - kExtLen, kExtLen, kExt) != 0) {
          continue;
        }
        names.insert(name.substr(0, name.size() - kExtLen));
      }
      ::closedir(dir);
    }
  }
  return {names.begin(), names.end()};
}

Status VectorFileSystem::PersistHead(const std::string& name, VectorSetView keys,
                                     const AdjacencyGraph* graph) {
  ALAYA_ASSIGN_OR_RETURN(VectorFile * file, CreateFile(name));
  for (uint32_t i = 0; i < keys.n; ++i) {
    ALAYA_ASSIGN_OR_RETURN(uint32_t id, file->AppendVector(keys.Vec(i)));
    if (id != i) return Status::Internal("unexpected id during persist");
  }
  if (graph != nullptr) {
    for (uint32_t i = 0; i < graph->size(); ++i) {
      auto nbrs = graph->Neighbors(i);
      ALAYA_RETURN_IF_ERROR(
          file->WriteAdjacency(i, {nbrs.data(), nbrs.size()}));
    }
  }
  return file->Flush();
}

Status VectorFileSystem::LoadHead(const std::string& name, VectorSet* keys,
                                  AdjacencyGraph* graph) {
  VectorFile* file = GetFile(name);
  if (file == nullptr) {
    ALAYA_ASSIGN_OR_RETURN(file, OpenFile(name));
  }
  keys->Reset(file->dim());
  std::vector<float> buf(file->dim());
  for (uint32_t i = 0; i < file->num_vectors(); ++i) {
    ALAYA_RETURN_IF_ERROR(file->ReadVector(i, buf.data()));
    keys->Append(buf.data());
  }
  if (graph != nullptr) {
    graph->Reset(file->num_vectors(), file->max_degree());
    std::vector<uint32_t> nbrs;
    for (uint32_t i = 0; i < file->num_vectors(); ++i) {
      ALAYA_RETURN_IF_ERROR(file->ReadAdjacency(i, &nbrs));
      graph->SetNeighbors(i, nbrs);
    }
  }
  return Status::Ok();
}

}  // namespace alaya
