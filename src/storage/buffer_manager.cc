#include "src/storage/buffer_manager.h"

namespace alaya {

Result<std::shared_ptr<const CachedBlock>> BufferManager::Fetch(
    uint64_t file_id, uint64_t block_no, BlockType type,
    const std::function<Status(uint8_t* dst)>& loader) {
  const Key key = MakeKey(file_id, block_no);
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = table_.find(key);
    if (it != table_.end()) {
      stats_.hits++;
      // Refresh recency: move to the back (hottest end) of its class list.
      auto& lst = lru_[it->second.lru_class];
      lst.splice(lst.end(), lst, it->second.lru_pos);
      return std::shared_ptr<const CachedBlock>(it->second.block);
    }
    stats_.misses++;
  }

  // Load outside the lock (I/O may be slow).
  auto block = std::make_shared<CachedBlock>();
  block->bytes.resize(options_.block_size);
  block->type = type;
  ALAYA_RETURN_IF_ERROR(loader(block->bytes.data()));

  std::lock_guard<std::mutex> lk(mu_);
  auto it = table_.find(key);
  if (it != table_.end()) {
    // Raced with another loader; keep the installed copy.
    return std::shared_ptr<const CachedBlock>(it->second.block);
  }
  const size_t capacity_blocks =
      std::max<size_t>(1, options_.capacity_bytes / options_.block_size);
  while (table_.size() >= capacity_blocks) {
    if (!EvictOne()) break;  // Everything pinned; run transiently over budget.
  }
  Entry entry;
  entry.block = block;
  entry.lru_class = ClassOf(type);
  auto& lst = lru_[entry.lru_class];
  entry.lru_pos = lst.insert(lst.end(), key);
  table_[key] = std::move(entry);
  return std::shared_ptr<const CachedBlock>(block);
}

bool BufferManager::EvictOne() {
  for (int cls = 0; cls < 2; ++cls) {
    for (auto it = lru_[cls].begin(); it != lru_[cls].end(); ++it) {
      auto t = table_.find(*it);
      if (t == table_.end()) {
        it = lru_[cls].erase(it);
        if (it == lru_[cls].end()) break;
        --it;
        continue;
      }
      if (t->second.block.use_count() > 1) continue;  // Pinned by a reader.
      lru_[cls].erase(it);
      table_.erase(t);
      stats_.evictions++;
      return true;
    }
  }
  return false;
}

void BufferManager::Invalidate(uint64_t file_id, uint64_t block_no) {
  const Key key = MakeKey(file_id, block_no);
  std::lock_guard<std::mutex> lk(mu_);
  auto it = table_.find(key);
  if (it == table_.end()) return;
  lru_[it->second.lru_class].erase(it->second.lru_pos);
  table_.erase(it);
}

void BufferManager::Install(uint64_t file_id, uint64_t block_no, BlockType type,
                            const uint8_t* bytes) {
  auto block = std::make_shared<CachedBlock>();
  block->bytes.assign(bytes, bytes + options_.block_size);
  block->type = type;

  const Key key = MakeKey(file_id, block_no);
  std::lock_guard<std::mutex> lk(mu_);
  auto it = table_.find(key);
  if (it != table_.end()) {
    lru_[it->second.lru_class].erase(it->second.lru_pos);
    table_.erase(it);
  }
  const size_t capacity_blocks =
      std::max<size_t>(1, options_.capacity_bytes / options_.block_size);
  while (table_.size() >= capacity_blocks) {
    if (!EvictOne()) break;
  }
  Entry entry;
  entry.block = std::move(block);
  entry.lru_class = ClassOf(type);
  auto& lst = lru_[entry.lru_class];
  entry.lru_pos = lst.insert(lst.end(), key);
  table_[key] = std::move(entry);
}

}  // namespace alaya
