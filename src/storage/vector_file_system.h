// The vector file system (§7.3): manages one vector file per attention head
// per layer, all sharing one purpose-built buffer manager.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/index/graph_common.h"
#include "src/storage/vector_file.h"

namespace alaya {

class VectorFileSystem {
 public:
  struct Options {
    BufferManager::Options buffer;
    /// Back files with MemIoBackend (tests) instead of POSIX files.
    bool in_memory = false;
    /// Directory for POSIX-backed files (created if missing).
    std::string dir = "/tmp/alayadb";
    VectorFileOptions file;
  };

  explicit VectorFileSystem(const Options& options);

  /// Creates (or truncates) the file `name`, e.g. "layer3_head1".
  Result<VectorFile*> CreateFile(const std::string& name);
  /// Opens an existing POSIX-backed file.
  Result<VectorFile*> OpenFile(const std::string& name);
  /// Returns an already-created/opened file, or nullptr.
  VectorFile* GetFile(const std::string& name);

  BufferManager& buffer_manager() { return buffer_; }

  /// Persists a head's key vectors and its graph adjacency.
  Status PersistHead(const std::string& name, VectorSetView keys,
                     const AdjacencyGraph* graph);

  /// Loads a persisted head back into memory structures.
  Status LoadHead(const std::string& name, VectorSet* keys, AdjacencyGraph* graph);

  size_t num_files() const;

  /// Names of every file this VFS can serve — on-disk ".vf" files in `dir`
  /// for POSIX-backed systems (whether or not they are open yet), the live
  /// file map for in-memory ones. Warm start scans this for "*_manifest"
  /// entries to re-register persisted contexts after a restart.
  std::vector<std::string> ListNames() const;

 private:
  std::string PathFor(const std::string& name) const;
  Result<std::unique_ptr<IoBackend>> MakeBackend(const std::string& name, bool create);

  Options options_;
  BufferManager buffer_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<VectorFile>> files_;
  uint64_t next_file_id_ = 1;
};

}  // namespace alaya
