// The vector file system's per-head file format (§7.3).
//
// Each vector file stores one attention head's vectors for one layer, in
// fixed-size blocks. Vector *data* and vector *index* (graph adjacency) live
// in different block types; adjacency entries reference node ids whose
// neighbor lists live in other index blocks, so index blocks form the linked
// graph structure the paper describes. Vectors append without restructuring
// the file: new blocks are allocated at the tail, a block-type tag makes the
// layout self-describing on reopen.
//
// Layout:
//   block 0:             file header
//   blocks 1..N:         data / index blocks in allocation order, each with a
//                        16-byte BlockHeader{type, seq}
//   data block seq i:    vectors [i*vecs_per_block, ...)
//   index block seq j:   adjacency entries (1 + max_degree u32s each) for
//                        nodes [j*nodes_per_block, ...)
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "src/storage/buffer_manager.h"
#include "src/storage/io_backend.h"

namespace alaya {

struct VectorFileOptions {
  uint32_t block_size = 4096;
  uint32_t dim = 0;
  uint32_t max_degree = 32;
};

class VectorFile {
 public:
  /// Creates a new file (writes the header). `buffer` may be nullptr
  /// (reads bypass caching). `file_id` keys the buffer manager.
  static Result<std::unique_ptr<VectorFile>> Create(std::unique_ptr<IoBackend> backend,
                                                    const VectorFileOptions& options,
                                                    BufferManager* buffer = nullptr,
                                                    uint64_t file_id = 0);

  /// Opens an existing file, rebuilding block maps from block headers.
  static Result<std::unique_ptr<VectorFile>> Open(std::unique_ptr<IoBackend> backend,
                                                  BufferManager* buffer = nullptr,
                                                  uint64_t file_id = 0);

  /// Appends one vector; returns its id.
  Result<uint32_t> AppendVector(const float* vec);

  /// Reads vector `id` into `out` (dim floats), through the buffer manager.
  Status ReadVector(uint32_t id, float* out) const;

  /// Writes node `id`'s adjacency (id must be < num_vectors; degree capped at
  /// max_degree).
  Status WriteAdjacency(uint32_t id, std::span<const uint32_t> neighbors);

  /// Reads node `id`'s adjacency.
  Status ReadAdjacency(uint32_t id, std::vector<uint32_t>* neighbors) const;

  /// Flushes buffered tail blocks and the header.
  Status Flush();

  uint32_t num_vectors() const { return header_.num_vectors; }
  uint32_t dim() const { return header_.dim; }
  uint32_t max_degree() const { return header_.max_degree; }
  uint32_t vecs_per_block() const { return header_.vecs_per_block; }
  uint32_t nodes_per_block() const { return header_.nodes_per_block; }
  uint64_t file_bytes() const { return backend_->Size(); }

 private:
  static constexpr uint64_t kMagic = 0x414C415941564653ULL;  // "ALAYAVFS"
  static constexpr uint32_t kVersion = 1;

  struct FileHeader {
    uint64_t magic = kMagic;
    uint32_t version = kVersion;
    uint32_t block_size = 0;
    uint32_t dim = 0;
    uint32_t max_degree = 0;
    uint32_t num_vectors = 0;
    uint32_t vecs_per_block = 0;
    uint32_t nodes_per_block = 0;
    uint32_t num_blocks = 0;  ///< Allocated payload blocks (excl. header).
  };

  struct BlockHeader {
    uint32_t type = 0;  ///< BlockType.
    uint32_t seq = 0;   ///< Sequence number within its type.
    uint32_t used = 0;
    uint32_t reserved = 0;
  };
  static constexpr size_t kBlockHeaderSize = sizeof(BlockHeader);

  VectorFile(std::unique_ptr<IoBackend> backend, BufferManager* buffer,
             uint64_t file_id)
      : backend_(std::move(backend)), buffer_(buffer), file_id_(file_id) {}

  uint64_t BlockOffset(uint32_t physical_block) const {
    return static_cast<uint64_t>(physical_block + 1) * header_.block_size;
  }

  Status WriteHeader();
  Status LoadBlockMaps();

  /// Physical block currently mapped for (type, seq); allocates on demand for
  /// writes. Returns UINT32_MAX if absent (reads).
  uint32_t PhysicalBlock(BlockType type, uint32_t seq) const;
  Result<uint32_t> EnsureBlock(BlockType type, uint32_t seq);

  Status ReadBlock(uint32_t physical, BlockType type,
                   std::shared_ptr<const CachedBlock>* out) const;
  Status WriteBlock(uint32_t physical, BlockType type, const uint8_t* payload);

  std::unique_ptr<IoBackend> backend_;
  BufferManager* buffer_;
  uint64_t file_id_;
  FileHeader header_;
  std::vector<uint32_t> data_blocks_;   ///< seq -> physical.
  std::vector<uint32_t> index_blocks_;  ///< seq -> physical.
};

}  // namespace alaya
