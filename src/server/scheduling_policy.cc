#include "src/server/scheduling_policy.h"

#include <algorithm>
#include <limits>

namespace alaya {

namespace {

/// Float-tolerant "deficit covers cost": modeled seconds are tiny (µs-scale),
/// so the tolerance scales with the cost instead of using a fixed epsilon.
bool Covers(double deficit, double cost) {
  return deficit + 1e-12 + 1e-9 * cost >= cost;
}

/// One contending tenant inside the highest priority class present: its
/// queue head (EDF within the tenant, arrival order as the tie-break — views
/// arrive in arrival order, so the first hit wins ties) and that head's cost.
struct Contender {
  uint64_t tenant = 0;
  size_t head_index = 0;
  double head_cost = 0;
  double deficit = 0;
  double weight = 1.0;
};

/// Builds the contender set for the highest priority class in `queued`.
/// Returns the per-tenant heads in ascending tenant id (std::map order), so
/// every tie-break below is deterministic.
std::vector<Contender> ContendersOfTopClass(
    std::span<const QueuedRequestView> queued, const TenantLedger& ledger) {
  std::vector<Contender> out;
  if (queued.empty()) return out;
  int top = std::numeric_limits<int>::min();
  for (const QueuedRequestView& v : queued) top = std::max(top, v.priority);
  std::map<uint64_t, size_t> heads;  // tenant -> view index of its EDF head
  for (size_t i = 0; i < queued.size(); ++i) {
    const QueuedRequestView& v = queued[i];
    if (v.priority != top) continue;
    auto it = heads.find(v.tenant_id);
    if (it == heads.end()) {
      heads.emplace(v.tenant_id, i);
    } else if (v.deadline < queued[it->second].deadline) {
      it->second = i;  // Strictly earlier deadline beats arrival order.
    }
  }
  out.reserve(heads.size());
  for (const auto& [tenant, index] : heads) {
    Contender c;
    c.tenant = tenant;
    c.head_index = index;
    c.head_cost = queued[index].cost_seconds;
    auto lt = ledger.find(tenant);
    if (lt != ledger.end()) {
      c.deficit = lt->second.deficit_seconds;
      c.weight = lt->second.weight;
    }
    out.push_back(c);
  }
  return out;
}

/// The smallest uniform top-up (per unit weight) that makes at least one
/// contender's deficit cover its head cost. Zero when one already does.
double TopUpDelta(const std::vector<Contender>& contenders) {
  double delta = std::numeric_limits<double>::max();
  for (const Contender& c : contenders) {
    if (Covers(c.deficit, c.head_cost)) return 0;
    const double w = c.weight > 0 ? c.weight : 1e-9;  // Degenerate weight guard.
    delta = std::min(delta, (c.head_cost - c.deficit) / w);
  }
  return delta;
}

}  // namespace

// --- FifoPolicy: the historical scheduler, verbatim ---

size_t FifoPolicy::PickNext(std::span<const QueuedRequestView> queued,
                            const TenantLedger& /*ledger*/) const {
  return queued.empty() ? kNone : 0;  // Arrival head, no bypass.
}

void FifoPolicy::OnAdmitted(std::span<const QueuedRequestView> queued,
                            size_t picked, TenantLedger* ledger) const {
  // No deficit mechanics — only the lifetime ledger the snapshot reports.
  if (picked >= queued.size()) return;
  TenantShareState& t = (*ledger)[queued[picked].tenant_id];
  t.admitted_seconds += queued[picked].cost_seconds;
  ++t.admitted;
}

std::vector<uint64_t> FifoPolicy::RankVictims(
    const QueuedRequestView& /*blocked*/,
    std::span<const RunningRequestView> /*running*/) const {
  return {};  // FIFO never preempts.
}

// --- FairSharePolicy ---

size_t FairSharePolicy::PickNext(std::span<const QueuedRequestView> queued,
                                 const TenantLedger& ledger) const {
  const std::vector<Contender> contenders = ContendersOfTopClass(queued, ledger);
  if (contenders.empty()) return kNone;
  const double delta = TopUpDelta(contenders);
  // Simulated top-up (PickNext must not mutate): pick the eligible tenant
  // with the most residual credit after paying its head — the one fairness
  // owes the most. Ties resolve to the lowest tenant id (contenders are
  // sorted by tenant id, and `>` keeps the first of equals).
  size_t best = kNone;
  double best_residual = -std::numeric_limits<double>::max();
  for (const Contender& c : contenders) {
    const double effective = c.deficit + delta * c.weight;
    if (!Covers(effective, c.head_cost)) continue;
    const double residual = effective - c.head_cost;
    if (residual > best_residual) {
      best_residual = residual;
      best = c.head_index;
    }
  }
  return best;
}

void FairSharePolicy::OnAdmitted(std::span<const QueuedRequestView> queued,
                                 size_t picked, TenantLedger* ledger) const {
  if (picked >= queued.size()) return;
  // Apply the same top-up PickNext simulated over the same view set, then
  // spend the admitted head's cost from its tenant.
  const std::vector<Contender> contenders = ContendersOfTopClass(queued, *ledger);
  const double delta = TopUpDelta(contenders);
  for (const Contender& c : contenders) {
    (*ledger)[c.tenant].deficit_seconds += delta * c.weight;
  }
  const QueuedRequestView& admitted = queued[picked];
  TenantShareState& t = (*ledger)[admitted.tenant_id];
  t.deficit_seconds = std::max(0.0, t.deficit_seconds - admitted.cost_seconds);
  t.admitted_seconds += admitted.cost_seconds;
  ++t.admitted;
}

std::vector<uint64_t> FairSharePolicy::RankVictims(
    const QueuedRequestView& blocked,
    std::span<const RunningRequestView> running) const {
  // Only strictly lower classes may be suspended (monotone: a resumed victim
  // can never preempt its preemptor, so preemption cannot cycle). Within a
  // class the ranking is cost-aware: suspending a victim parks its
  // device-resident KV (a modeled transfer out now plus back in at resume,
  // proportional to gpu_bytes) in exchange for the device time its remaining
  // work would have held. Rank by park cost per remaining second — a session
  // about to finish frees its slot soon anyway, so parking its KV is pure
  // waste, while a long-running request with modest KV is the bargain. Ties
  // (identical scores, e.g. equal geometry) fall back to the latest deadline
  // (time_point::max() = nothing waiting on it), then the most recently
  // admitted (least sunk work), keeping the order deterministic.
  std::vector<const RunningRequestView*> victims;
  for (const RunningRequestView& r : running) {
    if (r.priority < blocked.priority) victims.push_back(&r);
  }
  const auto park_score = [](const RunningRequestView* v) {
    return static_cast<double>(v->gpu_bytes) / std::max(v->remaining_seconds, 1e-12);
  };
  std::sort(victims.begin(), victims.end(),
            [&](const RunningRequestView* a, const RunningRequestView* b) {
              if (a->priority != b->priority) return a->priority < b->priority;
              const double sa = park_score(a);
              const double sb = park_score(b);
              if (sa != sb) return sa < sb;
              if (a->deadline != b->deadline) return a->deadline > b->deadline;
              return a->admit_order > b->admit_order;
            });
  std::vector<uint64_t> out;
  out.reserve(victims.size());
  for (const RunningRequestView* v : victims) out.push_back(v->id);
  return out;
}

}  // namespace alaya
