// Live multi-session serving engine — the always-on front door the paper's
// MaaS scenario (§2) needs: one data foundation, many concurrent decoding
// sessions, requests arriving and retiring while the engine runs.
//
// Lifecycle (Created → Running → Draining → Stopped):
//   - Start() spawns a persistent driver thread that loops admit → step →
//     retire. Requests submitted while the engine is live are admitted at the
//     next step boundary — the continuous-batching entry point.
//   - Submit() is non-blocking: it queues the request and returns a
//     RequestHandle owning Wait()/TryWait(), Cancel(), and (via the request's
//     on_token callback) per-step streaming of decoded output blocks.
//   - Shutdown() is graceful: the driver keeps admitting and stepping until
//     both the queue and the active set drain, then the materialization queue
//     is drained too. Abort() stops now: active sessions and queued requests
//     retire with kCancelled. Both join the driver; the engine is restartable
//     (Stopped → Running via Start).
//   - RunToCompletion() is a thin wrapper — Start(); WaitIdle(); Shutdown() —
//     so the batch-style tests, benches and examples exercise exactly the
//     live machinery.
//
// Inside the driver loop each step:
//   1. cancellations and expired deadlines are swept: a cancelled or expired
//      session retires mid-decode with a typed kCancelled/kDeadlineExceeded
//      status, releasing its scheduler reservation and context pin and
//      skipping its store_on_finish;
//   2. the RequestScheduler admits queued requests under the GPU memory
//      budget (prefilled prompt suffix + projected window + decoded-tail
//      footprint) and optional TPOT SLO; each admitted request becomes a
//      Session via DB.create_session — concurrent requests over the same
//      document share the stored context and its indices (prefix reuse,
//      §7.1); a prompt extending past every stored context enters the
//      Prefilling state (per-step chunks through Session::UpdateBatch,
//      batched across sessions, overlapped with the decode layer loop);
//   3. the step's token budget (RequestSchedulerOptions::step_token_budget)
//      is split: decode is funded first — one token per Decoding session —
//      and the remainder is dealt to Prefilling sessions FIFO in chunks of
//      at most prefill_chunk_tokens (PlanStep); chunks launch into a
//      PrefillWave (a dynamic join, not a fixed latch) and overlap the
//      decode layer loop;
//   4. fully-resident sessions decode in lockstep: per layer, every session's
//      Update runs, then all sessions' (session, q_head) DIPRS/attention
//      queries are flattened into ONE batch on the shared ThreadPool
//      (src/query/batched_diprs.h); after a session's last layer its output
//      block is streamed through on_token; BETWEEN layers (and while waiting
//      out a prefill-only step) the driver polls the scheduler and admits
//      newly queued requests mid-step — a new session's first prefill chunk
//      draws from the step's unspent budget and joins the wave already in
//      flight instead of waiting for the batch to drain;
//   5. finished sessions optionally store their context (late
//      materialization; DB.store_async by default, off the step loop) and
//      release their admission reservation, letting the scheduler pull the
//      next queued request at the next boundary.
//
// Request lifecycle: Queued (scheduler backlog) → Prefilling (prompt suffix
// chunks) → Decoding (lockstep tokens) → Retiring (terminal result published,
// reservation released). Requests with a fully-covered prompt skip straight
// to Decoding; cancellation/deadline/errors jump to Retiring from any state.
// Under preemption a running Prefilling/Decoding session may additionally be
// Suspended (KV detached and parked host-side, slot yielded to a
// higher-priority request) and later Resuming (KV reattached, the phase it
// was suspended in continues from the exact position — zero recompute, so the
// resumed decode is bit-identical to an uninterrupted one).
//
// Determinism: with deterministic fill_step/fill_prompt callbacks, a
// concurrent schedule produces bit-identical outputs to a sequential one —
// each session's state evolves only from its own inputs; batching changes
// scheduling, not math. Cancellation changes *which* steps run, never their
// values.
//
// Sharded serving (ServingEngineOptions::devices > 1): admission places each
// request on one device of the environment's DeviceSet via the scheduler's
// PlacementPolicy (best-fit by free KV bytes with a warm-context affinity
// bonus; per-device memory budgets and per-device TPOT accounting, so one hot
// device never throttles admission to idle ones). Sessions bind to their
// device — KV residency on its tracker, modeled kernels on its clock — and
// every device's session group advances through the same shared-pool batch
// each step (per-device lockstep with aligned step boundaries), which is why
// the concurrent==sequential goldens hold at any fleet size: placement moves
// sessions between devices, never their math. Reusing a context warm on
// another device charges a modeled interconnect transfer and re-homes it.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "src/common/quantile_sketch.h"
#include "src/common/thread_pool.h"
#include "src/common/timer.h"
#include "src/core/alaya_db.h"
#include "src/query/batched_prefill.h"
#include "src/server/request_scheduler.h"

namespace alaya {

struct ServingEngineOptions {
  RequestSchedulerOptions scheduler;
  /// Worker pool for cross-session batches (nullptr -> ThreadPool::Global()).
  ThreadPool* pool = nullptr;
  /// Retire store_on_finish sessions through DB.store_async (non-blocking;
  /// materialization overlaps subsequent steps). When false, retire blocks on
  /// the synchronous DB.store — the pre-background-store behavior, kept for
  /// the bit-identical equivalence tests and as an ablation knob.
  bool background_store = true;
  /// Simulated devices to serve across (clamped to >= 1). The engine grows
  /// the DB environment's DeviceSet to this size, mirrors it into the
  /// scheduler (per-device budgets + TPOT, placement policy), binds each
  /// admitted session to its placed device, and reports per-device counters
  /// in the snapshot. With 1 (the default) the whole system is bit-identical
  /// to the pre-sharding engine: one tracker, one clock, device 0 everywhere.
  size_t devices = 1;
  /// Bounded result retention: keep at most this many terminal results in the
  /// id-keyed result() map, evicting the oldest (lowest id) beyond it. Results
  /// are owned by their tickets, so RequestHandle::Wait/TryWait pointers stay
  /// valid for as long as the handle is held even after eviction — only the
  /// id-based result() lookup forgets. 0 = unlimited (the old always-grow
  /// behavior; an always-on engine then leaks one entry per request served).
  size_t result_retention = 4096;
  /// Context parallelism: maximum devices one request may gang across
  /// (clamped to [1, devices]; mirrored into scheduler.max_gang_size, taking
  /// the larger when both are set). Above 1, a prompt whose KV footprint
  /// exceeds one device's budget shards its resident window across the
  /// smallest sufficient device gang (ring-merged partial softmax,
  /// bit-identical to the single-device math) instead of rejecting with
  /// kNeverFits.
  size_t max_gang_size = 1;
  /// Cross-device KV rebalance probe: when > 0, the driver checks
  /// reserved-byte skew at each step boundary and migrates ONE warm, unpinned
  /// context off the hottest device once its reserved bytes exceed
  /// factor * max(coldest device's reserved bytes, 1). The migration charges
  /// the destination's clock with the modeled window transfer
  /// (AlayaDB::MigrateShard); future prefix hits then place toward the cold
  /// device via the affinity probe. 0 disables the probe.
  double rebalance_skew_factor = 0;
  /// Host-pressure spill for suspended KV: when > 0 and the DB has tiering
  /// enabled, a suspension that would push host usage past this budget
  /// persists the parked KV through the tier store's file system instead of
  /// holding host DRAM; resume demand-pages it back bit-identically (the
  /// serializer round-trip is exact). 0 keeps every parked KV host-resident
  /// (the historical behavior).
  uint64_t suspend_spill_host_budget_bytes = 0;
  /// Continuous batching: admit newly queued requests *inside* a running step
  /// — between decode layers and while a prefill-only step's wave is in
  /// flight — launching their first prefill chunk into the current step
  /// instead of waiting for the next boundary. The budget split itself
  /// (scheduler.step_token_budget / prefill_chunk_tokens / min_prefill_tokens)
  /// applies either way. False restores boundary-only admission — the
  /// phase-serialized baseline the TTFT bench compares against.
  bool midstep_admission = true;
};

/// Synthetic id for the `step`-th decoded token of request `request_id`, used
/// when a store_on_finish request supplies no token_at callback. Two sessions
/// storing over the same base context must not produce identical token
/// sequences with different KV (later prompts would silently match the wrong
/// one), so (request_id, step) is mixed through a 64-bit hash into
/// [2^30, 2^31): always positive, disjoint from small hand-rolled test ids,
/// and collision-free in practice — unlike the old `(id % 20'000) * 100'000`
/// salt, which deterministically collided for request ids 20'000 apart.
int32_t SyntheticStoredTokenId(uint64_t request_id, size_t step);

/// Terminal state of one request.
struct RequestResult {
  uint64_t id = 0;
  Status status;  ///< Ok, a per-request error, kCancelled or kDeadlineExceeded.
  size_t reused_prefix = 0;
  uint64_t reused_context_id = 0;  ///< 0 when no stored context matched.
  /// store_on_finish: the stored context's id. Under background_store this is
  /// a reservation ticket — the context becomes matchable once its
  /// materialization publishes (Shutdown/Drain is the barrier); if the build
  /// fails the id never publishes and db.materialization_errors() maps it to
  /// the reason. Results are immutable once terminal, so the failure is NOT
  /// written back here.
  uint64_t stored_context_id = 0;
  size_t prefilled_tokens = 0;     ///< Prompt tokens pushed through prefill.
  size_t steps_completed = 0;
  /// record_outputs: concatenated final-layer outputs, one
  /// [num_q_heads * head_dim] block per step.
  std::vector<float> outputs;
  AttentionCallStats stats;  ///< Summed over all steps/layers/heads.
  double prefill_wall_seconds = 0;
  double decode_wall_seconds = 0;
  /// Submit -> first decoded output block (queueing + admission + prefill +
  /// first step). 0 when no token was produced.
  double ttft_seconds = 0;
  /// Scheduling class and fair-share identity the request ran under (copied
  /// from the ServingRequest so results are self-describing for per-class /
  /// per-tenant aggregation).
  int priority = 0;
  uint64_t tenant_id = 0;
  /// Preemption lifecycle: times this request was suspended mid-run to yield
  /// its slot, and times it was resumed. resumes can lag preemptions by one
  /// when the request reached a terminal state while suspended.
  size_t preemptions = 0;
  size_t resumes = 0;
};

/// A submitted request's ticket: the handle and the driver communicate
/// through it. Internal — callers hold it via RequestHandle. The ticket OWNS
/// its terminal result (shared with the engine's evictable result() map), so
/// a handle's Wait/TryWait pointers survive result-map eviction.
struct RequestTicket {
  uint64_t id = 0;
  std::atomic<bool> cancel_requested{false};
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::shared_ptr<const RequestResult> result;  ///< Set exactly once, before done.
};

class ServingEngine;

/// Caller-side handle to one in-flight request. Copyable and cheap; all
/// methods are thread-safe. The engine must outlive every handle.
class RequestHandle {
 public:
  RequestHandle() = default;

  bool valid() const { return ticket_ != nullptr; }
  uint64_t id() const { return ticket_ != nullptr ? ticket_->id : 0; }

  /// Blocks until the request reaches a terminal state (finished, failed,
  /// cancelled, or deadline-exceeded) and returns its result. The pointer
  /// stays valid for the engine's lifetime. Blocks forever if the engine is
  /// never run — use TryWait to poll. Nullptr on an invalid handle.
  const RequestResult* Wait() const;

  /// Non-blocking: the terminal result, or nullptr while still in flight.
  const RequestResult* TryWait() const;

  /// Requests cancellation. A still-queued request retires immediately (even
  /// on a stopped engine); a running session retires at its next step
  /// boundary with kCancelled, releasing its reservation and context pin and
  /// skipping its store_on_finish. Best-effort: a request that retires
  /// normally before the driver observes the flag completes with Ok. Returns
  /// false when the request already reached a terminal state.
  bool Cancel() const;

 private:
  friend class ServingEngine;
  RequestHandle(ServingEngine* engine, std::shared_ptr<RequestTicket> ticket)
      : engine_(engine), ticket_(std::move(ticket)) {}

  ServingEngine* engine_ = nullptr;
  std::shared_ptr<RequestTicket> ticket_;
};

/// Per-device serving counters (one entry per simulated device). Placement
/// and token counters are lifetime totals written by the driver; residency,
/// reservation and clock fields are read live at snapshot() time.
struct DeviceServingStats {
  int device = 0;
  size_t placements = 0;  ///< Requests admitted onto this device (lifetime).
  /// Placements whose matched prefix context was warm on another device: the
  /// session paid a modeled cross-device window transfer at creation.
  size_t cross_device_reuses = 0;
  uint64_t transfer_bytes = 0;  ///< Modeled bytes pulled over the interconnect.
  size_t tokens_decoded = 0;    ///< Decoded by sessions placed here.
  size_t tokens_prefilled = 0;  ///< Prefilled by sessions placed here.
  uint64_t peak_gpu_bytes = 0;  ///< Max device residency observed at step ends.
  uint64_t reserved_bytes = 0;  ///< Scheduler reservation currently held here.
  size_t active_sessions = 0;   ///< Admitted sessions currently placed here.
  /// Gang shards placed on this device (lifetime): each gang admission or
  /// resume increments every member's count, so a gang-of-4 decode shows
  /// gang_shards > 0 on all four members — the bench's sharding self-gate.
  size_t gang_shards = 0;
  /// The device's virtual clock: modeled seconds of kernels + transfers it
  /// has executed — the utilization axis (relative to the busiest device).
  double modeled_busy_seconds = 0;
};

/// Per-tenant fair-share counters: the scheduler's live ledger (weight,
/// deficit balance, lifetime admitted work) merged with the engine's terminal
/// counters. `admitted > 0` for every tenant that submitted work is the
/// no-starvation evidence the bench asserts.
struct TenantServingStats {
  uint64_t tenant_id = 0;
  double weight = 1.0;
  /// Banked fair-share credit in modeled device-seconds (resets when the
  /// tenant's queue drains — idle tenants do not accumulate credit).
  double deficit_seconds = 0;
  double admitted_seconds = 0;  ///< Lifetime modeled seconds admitted.
  size_t admitted = 0;          ///< Admissions (resumes included).
  size_t completed = 0;         ///< Terminal results (errors/cancels included).
  size_t preempted = 0;         ///< Suspensions of this tenant's sessions.
  size_t resumed = 0;
};

/// Per-priority-class counters. The TTFT quantiles are streaming P² sketches
/// over EVERY completed request that produced a token — the p99 input the
/// preemption bench reports per class (high-priority p99 staying flat under
/// low-priority load is the headline number). Unlike the old first-4096
/// sampling, a long run's tail keeps contributing: O(1) memory per class,
/// no truncation bias toward early (usually uncontended) requests.
struct ClassServingStats {
  int priority = 0;
  size_t completed = 0;
  size_t preempted = 0;
  size_t resumed = 0;
  size_t ttft_count = 0;  ///< Requests folded into the sketches.
  P2QuantileSketch ttft_p50{0.50};
  P2QuantileSketch ttft_p99{0.99};
};

/// Aggregate serving metrics over one engine lifetime.
struct ServingSnapshot {
  size_t submitted = 0;
  size_t rejected = 0;   ///< Failed at Enqueue (kBacklogFull / kNeverFits).
  size_t completed = 0;  ///< Reached a terminal state (incl. errors/cancels).
  size_t cancelled = 0;  ///< Retired with kCancelled.
  size_t deadline_exceeded = 0;  ///< Retired with kDeadlineExceeded.
  size_t tokens_prefilled = 0;   ///< Prompt tokens pushed through prefill.
  size_t tokens_decoded = 0;
  size_t engine_steps = 0;       ///< Driver steps executed (lifetime).
  /// Requests admitted *inside* a running step (between decode layers or
  /// during a prefill-only wave) rather than at a step boundary — the
  /// continuous-batching counter. Zero when midstep_admission is off.
  size_t midstep_admissions = 0;
  /// Sessions retired *inside* a running step — the moment their last token
  /// decoded, instead of at the step boundary — freeing their slot for the
  /// same step's mid-step admission polls. Zero when midstep_admission is off.
  size_t midstep_retirements = 0;
  /// Preemptive scheduling: running sessions suspended to yield their slot to
  /// a higher-priority request, and suspended sessions resumed (with zero
  /// prefill/decode recompute). preemptions >= resumes; the gap is requests
  /// that reached a terminal state (cancel/deadline/abort) while suspended.
  size_t preemptions = 0;
  size_t resumes = 0;
  /// Context parallelism: admissions (resumes included) that placed on a
  /// multi-device gang, the modeled ring-exchange bytes their sessions moved
  /// between members, and the rebalance probe's shard migrations (count and
  /// modeled bytes) — see ServingEngineOptions::{max_gang_size,
  /// rebalance_skew_factor}.
  size_t gang_admissions = 0;
  uint64_t gang_ring_transfer_bytes = 0;
  size_t shard_migrations = 0;
  uint64_t shard_migrated_bytes = 0;
  /// Suspended-KV tiering (suspend_spill_host_budget_bytes): parked KVs
  /// spilled to disk under host pressure, and spilled KVs paged back in at
  /// resume. restores can lag spills when a request retires while spilled.
  size_t suspend_spills = 0;
  size_t suspend_restores = 0;
  double serve_wall_seconds = 0;   ///< Wall time the driver thread was live.
  double tokens_per_second = 0;    ///< Aggregate decode throughput.
  size_t peak_concurrent_sessions = 0;
  uint64_t peak_gpu_bytes = 0;  ///< Max FLEET residency observed at step ends
                                ///< (sampled during prefill and decode alike;
                                ///< with one device, that device's peak).
  /// Background materialization (store_on_finish under background_store):
  /// jobs still queued/running, and lifetime completed/failed totals.
  size_t materializations_pending = 0;
  size_t materializations_completed = 0;
  size_t materializations_failed = 0;
  /// Tiered context store (DbOptions::tier): lifetime spill / page-in /
  /// prefetch counters plus current residency split. All zero when tiering
  /// is disabled.
  uint64_t tier_spills = 0;
  uint64_t tier_page_ins = 0;
  uint64_t tier_prefetches = 0;
  size_t tier_resident_contexts = 0;
  size_t tier_spilled_contexts = 0;
  uint64_t tier_resident_kv_bytes = 0;  ///< Deployed (codec-compressed) bytes.
  /// Sharded serving: one entry per device (a single entry on the default
  /// single-device fleet — its counters then mirror the aggregates above).
  std::vector<DeviceServingStats> devices;
  /// Multi-tenant fair share: one entry per tenant ever seen, ascending id.
  std::vector<TenantServingStats> tenants;
  /// Priority classes: one entry per distinct priority seen, ascending.
  std::vector<ClassServingStats> classes;
};

class ServingEngine {
 public:
  /// Engine lifecycle. Stopped engines are restartable: Start() after
  /// Shutdown()/Abort() begins a fresh run over whatever is queued.
  enum class State { kCreated, kRunning, kDraining, kStopped };

  /// `db` must outlive the engine. The scheduler plans against the DB's model
  /// geometry, session window config, and environment cost model; unless the
  /// caller supplies one, its prefix probe is wired to the DB's context store
  /// so admission projects prefill work from live store contents.
  ServingEngine(AlayaDB* db, const ServingEngineOptions& options);
  /// Aborts a still-running driver (queued and active requests retire with
  /// kCancelled) and joins it.
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Spawns the persistent driver thread (Created/Stopped -> Running).
  /// Requests already queued are admitted immediately; later Submits are
  /// admitted at the next step boundary. FailedPrecondition when the engine
  /// is already running or draining.
  Status Start();

  /// Graceful stop (Running -> Draining -> Stopped): the driver keeps
  /// admitting and stepping until the queue and active set drain, then the
  /// materialization queue is drained (store failures land in the snapshot
  /// counters and db.materialization_errors()). Blocks until the driver has
  /// exited and returns its terminal status. Idempotent; Ok on a
  /// never-started engine.
  Status Shutdown();

  /// Immediate stop: active sessions and queued requests retire with
  /// kCancelled (stores skipped, reservations released); materializations
  /// already handed off still drain. Blocks until the driver has exited.
  Status Abort();

  /// Blocks until the engine has no queued or admitted work (or is not
  /// running). Results of requests finished before WaitIdle returns are
  /// visible. Requests submitted concurrently with the wait may or may not
  /// be covered — callers who need per-request completion use Wait().
  void WaitIdle();

  State state() const;

  /// Queues a request and returns its handle (thread-safe, non-blocking;
  /// callable in every state — a stopped engine serves the backlog on its
  /// next Start). Fails fast with typed kBacklogFull (retryable) or
  /// kNeverFits (permanent) rejections.
  Result<RequestHandle> Submit(ServingRequest request);

  /// Batch-style convenience: Start(); WaitIdle(); Shutdown(). Drives every
  /// queued request to completion through the live driver and returns the
  /// run's terminal status. Per-request failures land in their
  /// RequestResult instead.
  Status RunToCompletion();

  /// Result lookup (nullptr while still in flight, or after the id was
  /// evicted under options.result_retention). Thread-safe: monitoring threads
  /// may poll while the driver runs; a returned pointer stays valid until the
  /// id is evicted (for the engine's lifetime when retention is unlimited or
  /// fewer results than the cap exist), and a terminal result is immutable —
  /// readers never need to synchronize against the driver or Shutdown.
  /// Callers who must outlive eviction hold the RequestHandle and use Wait.
  const RequestResult* result(uint64_t id) const;

  /// Aggregate metrics so far. Thread-safe snapshot (consistent at step
  /// granularity while a run is in flight).
  ServingSnapshot snapshot() const;
  RequestScheduler& scheduler() { return scheduler_; }

 private:
  friend class RequestHandle;

  /// Where a request is in its lifecycle. kQueued covers the span between
  /// admission (queue pop) and session creation; a session then Prefills its
  /// uncovered prompt suffix — one budgeted chunk per step — until prefill_pos
  /// reaches the prompt end, Decodes one lockstep token per step, and turns
  /// kRetiring once terminal (finished, failed, cancelled or expired) until
  /// RetireFinished publishes its result and releases its reservation. A
  /// session is never in two states at once: the budget split (PlanStep)
  /// relies on Prefilling and Decoding being disjoint sets.
  ///
  /// kSuspended is the preemption parking state: the session's KV is detached
  /// host-side, its slot released, and the request waits in suspended_ (keyed
  /// by id) with a resume entry queued at the scheduler. Resume rebuilds the
  /// session and re-enters the phase (kPrefilling/kDecoding) it left at the
  /// exact position it left it.
  enum class RequestState { kQueued, kPrefilling, kDecoding, kSuspended, kRetiring };

  struct ActiveSession {
    uint64_t id = 0;
    int device = 0;  ///< Fleet device the scheduler placed this session on.
    /// Gang members when the admission spanned devices (gang[0] == device;
    /// size <= 1 = ordinary single-device placement).
    std::vector<int> gang;
    ServingRequest request;
    std::unique_ptr<Session> session;
    std::shared_ptr<Context> context_ref;  ///< Pins the reused context.
    std::shared_ptr<RequestTicket> ticket;  ///< May lag Submit; fetched lazily.
    std::chrono::steady_clock::time_point submit_time;
    std::chrono::steady_clock::time_point deadline;  ///< time_point::max() = none.
    RequestResult result;
    RequestState state = RequestState::kQueued;
    size_t prefill_pos = 0;  ///< Next prompt token to prefill (absolute).
    size_t step = 0;
    bool was_prefilling = false;  ///< State at the start of the current step.
    /// Tokens of this step's prefill chunk (0 = no chunk launched this step —
    /// the budget ran dry), and the chunk's Status, written by the wave task
    /// and read only after the step's join.
    size_t chunk_granted = 0;
    Status chunk_status;
    // Per-step scratch, reused across steps.
    std::vector<float> q;    ///< [num_q_heads * head_dim]
    std::vector<float> k;    ///< [num_kv_heads * head_dim]
    std::vector<float> v;    ///< [num_kv_heads * head_dim]
    std::vector<float> out;  ///< [num_q_heads * head_dim]
    std::vector<float> pq, pk, pv;  ///< Prefill chunk scratch (token-major).
    std::vector<AttentionCallStats> head_stats;  ///< One per q_head.
    /// Preemption parking: the detached KV + recorded queries while the
    /// request is kSuspended (engaged exactly then), and the host-memory
    /// reservation covering the parked bytes. The decode position (step) and
    /// prefill_pos above are the rest of the suspended state — fill callbacks
    /// are pure functions of (step/token, layer), so those counters ARE the
    /// generator state and resume restarts from them bit-identically.
    std::optional<Session::SuspendedState> suspended_kv;
    MemoryReservation host_kv_reservation;
    /// Satellite of the suspend path: the parked KV was persisted to the tier
    /// store's disk under host pressure (suspended_kv's cache is then empty;
    /// the bytes live behind disk_kv_reservation until resume restores them).
    bool suspended_on_disk = false;
    MemoryReservation disk_kv_reservation;
    bool failed = false;

    bool Terminal() const {
      return failed || (state == RequestState::kDecoding && step >= request.max_new_tokens);
    }
  };

  enum class StopMode { kNone, kDrain, kAbort };

  void DriverLoop();
  void SweepCancellations();
  /// Pops every currently admissible request from the scheduler, builds its
  /// session (or resumes a suspended one), and appends it to active_. With
  /// `newly` set, collects raw pointers to the sessions actually added (the
  /// mid-step path launches their first chunks). With `allow_preempt`, a
  /// blocked higher-priority pick may suspend running lower-priority victims
  /// (the scheduler advises, SuspendVictim executes, and admission re-runs) —
  /// step-boundary only; the mid-step path passes false. Returns the number
  /// added.
  size_t AdmitInto(std::vector<ActiveSession*>* newly, bool allow_preempt);
  void AdmitPending();
  /// Suspends one running session by id (driver thread only): detaches its
  /// KV + decode state, parks the bytes host-side (modeled device→host
  /// offload charged to its device clock), drops the context pin (the tier
  /// layer may spill the context while the request waits), requeues a resume
  /// entry and releases the slot. False when the id is not an active,
  /// healthy, non-terminal session (nothing was freed).
  bool SuspendVictim(uint64_t id);
  /// Re-admission of a suspended request: rebuilds the session over the same
  /// context/prefix (AlayaDB::ResumeSession — page-in if spilled), reattaches
  /// the parked KV (modeled host→device upload charged to the new device),
  /// and re-enters the exact phase/position it left. Terminal-while-suspended
  /// (cancel/deadline) finalizes instead. Appends to active_ and `newly`.
  void ResumeSuspended(RequestScheduler::Admitted&& adm,
                       std::vector<ActiveSession*>* newly);
  /// Host-pressure spill (suspend_spill_host_budget_bytes): persists a
  /// suspended request's parked KV through the tier store's serializer under
  /// the "suspend<id>" prefix and swaps the host reservation for a disk one.
  /// On failure the KV stays host-resident — spilling is an optimization,
  /// never a correctness gate.
  Status SpillSuspendedKv(ActiveSession* a);
  /// Resume-side page-in: loads the spilled KV back into suspended_kv
  /// (bit-identical serializer round-trip) and releases the disk reservation.
  Status RestoreSuspendedKv(ActiveSession* a);
  /// Step-boundary rebalance probe (rebalance_skew_factor): migrates one
  /// warm, unpinned context off the hottest device when reserved-byte skew
  /// crosses the threshold.
  void MaybeRebalance();
  /// Finalizes a request parked in suspended_ (cancel/deadline/abort while
  /// suspended): publishes the terminal result and frees the parked KV. The
  /// caller must already own the queue entry (RemoveQueued include_resume /
  /// TakeExpired / TakeAllQueued) — the id holds no scheduler reservation.
  void FinalizeSuspended(uint64_t id, Status status);
  /// Mid-step admission: admits queued requests while a step is in flight
  /// (between decode layers / during a prefill-only wave). Newly admitted
  /// Prefilling sessions draw a first chunk from the step's unspent budget
  /// and launch it into `wave`; sessions granted a chunk are appended to
  /// `chunked` so the end-of-step accounting covers them. Returns the number
  /// admitted.
  size_t MidStepAdmit(PrefillWave* wave, size_t* budget_left,
                      std::vector<ActiveSession*>* chunked);
  /// Launches one prefill chunk of `count` tokens into `wave`, recording the
  /// grant in a->chunk_granted (accounting) and pointing the job's status at
  /// a->chunk_status.
  void LaunchChunk(ActiveSession* a, size_t count, PrefillWave* wave);
  /// `step_timer` is the driver's wall timer for this step: sessions retired
  /// mid-step get their partial-step wall time attributed from it (the
  /// driver's post-step attribution loop no longer sees them).
  Status StepActiveSessions(const WallTimer& step_timer);
  /// Folds the fleet's current residency into the per-device and fleet
  /// peak_gpu_bytes high-water marks. Caller holds mu_. Called at the end of
  /// every step, and additionally just before mid-step retirement frees a
  /// retiring session's KV (the step's true footprint would otherwise be
  /// missed by the end-of-step sample).
  void SampleResidencyPeaksLocked();
  void RetireFinished();
  void FinishSession(ActiveSession* active);
  /// Publishes a terminal result and wakes its handle's waiters.
  void FinalizeResult(uint64_t id, RequestResult&& result);
  /// Finalizes a request that never got a session (cancel/deadline/abort
  /// while queued, or at the admission boundary).
  void FinalizeUnadmitted(RequestScheduler::Admitted&& adm, Status status);
  bool CancelRequest(const std::shared_ptr<RequestTicket>& ticket);
  std::shared_ptr<RequestTicket> FindTicket(uint64_t id);
  /// Drains materializations, reconciles store failures into results, and
  /// folds the run's wall time into the snapshot. Runs on the driver thread
  /// as its last act.
  void FinalizeRun();
  /// Joins a driver that has reached kStopped. Caller holds life_mu_.
  Status JoinStoppedDriverLocked();

  AlayaDB* db_;
  ServingEngineOptions options_;
  RequestScheduler scheduler_;
  ThreadPool* pool_;

  std::vector<std::unique_ptr<ActiveSession>> active_;  ///< Driver-thread-only.
  /// Preempted requests parked until a resume entry re-admits them (or they
  /// reach a terminal state while waiting). Driver-thread-only. Invariant:
  /// every entry here has a matching resume entry queued at the scheduler
  /// (requeue-before-release ordering), so WaitIdle can never observe an idle
  /// system while a request is suspended.
  std::map<uint64_t, std::unique_ptr<ActiveSession>> suspended_;

  // Lifecycle. life_cv_ carries every "work or state changed" signal: Submit
  // and Cancel wake an idle driver, the driver announces idleness (WaitIdle)
  // and its exit (Shutdown/Abort). Notifiers hold life_mu_ so a waiter
  // evaluating its predicate cannot miss the wakeup.
  mutable std::mutex life_mu_;
  std::condition_variable life_cv_;
  State state_ = State::kCreated;
  StopMode stop_mode_ = StopMode::kNone;
  std::thread driver_;
  Status run_status_;  ///< Terminal status of the last run (sticky until Start).
  WallTimer run_timer_;  ///< Start -> driver exit, accumulated across runs.

  // Submit and monitoring threads may race with the driver: submit counters
  // are atomic; results_, tickets_ and the rest of the snapshot are guarded
  // by mu_ (the driver takes it briefly at step/retire boundaries).
  std::atomic<size_t> submitted_{0};
  std::atomic<size_t> rejected_{0};
  /// Requests pulled out of the scheduler queue whose terminal result is not
  /// yet published. Incremented BEFORE the removal, decremented after
  /// FinalizeResult: WaitIdle's predicate requires it to be zero, so the
  /// idle observation implies every finished request's result is visible
  /// (the admitted path gets the same guarantee from finalize-before-Release
  /// ordering in FinishSession/AdmitPending).
  std::atomic<size_t> finalizing_{0};
  mutable std::mutex mu_;
  /// Terminal results, shared with their tickets (which own them for the
  /// handle's lifetime). Bounded: beyond options.result_retention the oldest
  /// ids are evicted, so an always-on engine no longer grows with total
  /// requests served — result(id) then returns nullptr for evicted ids while
  /// every outstanding handle's Wait/TryWait pointer stays valid.
  std::map<uint64_t, std::shared_ptr<const RequestResult>> results_;
  std::map<uint64_t, std::shared_ptr<RequestTicket>> tickets_;  ///< In flight.
  ServingSnapshot snapshot_;
  /// Driver-written per-device lifetime counters (guarded by mu_); residency
  /// and reservation fields are merged in at snapshot() time.
  std::vector<DeviceServingStats> device_stats_;
  /// Per-class / per-tenant lifetime counters (guarded by mu_). The tenant
  /// map holds only the engine-side counters; the scheduler's live ledger
  /// (weight/deficit/admitted) is merged in at snapshot() time.
  std::map<int, ClassServingStats> class_stats_;
  std::map<uint64_t, TenantServingStats> tenant_stats_;
};

}  // namespace alaya
