// Concurrent multi-session serving engine — the front door that turns the
// single-query reproduction into a multi-tenant server skeleton (§2's MaaS
// scenario: one data foundation, many decoding sessions).
//
// Submit() queues prompt requests; RunToCompletion() drives them:
//   1. the RequestScheduler admits requests under the GPU memory budget
//      (prefilled prompt suffix + projected window + decoded-tail footprint)
//      and optional TPOT SLO that also accounts for projected prefill time;
//   2. each admitted request becomes a Session via DB.create_session —
//      concurrent requests over the same document share the stored context
//      and its indices (prefix reuse, §7.1); a prompt that extends past every
//      stored context enters a PREFILL phase first: per engine step, one chunk
//      of the unmatched suffix is pushed through Session::UpdateBatch for all
//      layers (QKV from the request's fill_prompt callback, queries recorded
//      for index training), with all prefilling sessions' chunks batched onto
//      the shared ThreadPool where they overlap the decoding sessions' layer
//      loop (src/query/batched_prefill.h);
//   3. sessions whose prompt is fully resident decode in lockstep steps: per
//      layer, every session's Update runs, then all sessions' (session,
//      q_head) DIPRS/attention queries are flattened into ONE batch on the
//      shared ThreadPool (src/query/batched_diprs.h) — cross-session batching
//      of retrieval;
//   4. finished sessions optionally store their context (late
//      materialization) and release their admission reservation, letting the
//      scheduler pull the next queued request mid-run. By default the store
//      is a DB.store_async() handoff: retire detaches the session's local KV,
//      token ids and recorded queries into a materialization job on the
//      shared pool and returns immediately — the KV clone + index build never
//      stalls the step loop. RunToCompletion drains the queue before
//      returning (DB.Drain()); snapshots report pending/completed counts.
//
// Determinism: with deterministic fill_step/fill_prompt callbacks, a
// concurrent schedule produces bit-identical outputs to a sequential one —
// each session's state evolves only from its own inputs; batching changes
// scheduling, not math.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/alaya_db.h"
#include "src/query/batched_prefill.h"
#include "src/server/request_scheduler.h"

namespace alaya {

struct ServingEngineOptions {
  RequestSchedulerOptions scheduler;
  /// Worker pool for cross-session batches (nullptr -> ThreadPool::Global()).
  ThreadPool* pool = nullptr;
  /// Retire store_on_finish sessions through DB.store_async (non-blocking;
  /// materialization overlaps subsequent steps). When false, retire blocks on
  /// the synchronous DB.store — the pre-background-store behavior, kept for
  /// the bit-identical equivalence tests and as an ablation knob.
  bool background_store = true;
};

/// Synthetic id for the `step`-th decoded token of request `request_id`, used
/// when a store_on_finish request supplies no token_at callback. Two sessions
/// storing over the same base context must not produce identical token
/// sequences with different KV (later prompts would silently match the wrong
/// one), so (request_id, step) is mixed through a 64-bit hash into
/// [2^30, 2^31): always positive, disjoint from small hand-rolled test ids,
/// and collision-free in practice — unlike the old `(id % 20'000) * 100'000`
/// salt, which deterministically collided for request ids 20'000 apart.
int32_t SyntheticStoredTokenId(uint64_t request_id, size_t step);

/// Terminal state of one request.
struct RequestResult {
  uint64_t id = 0;
  Status status;
  size_t reused_prefix = 0;
  uint64_t reused_context_id = 0;  ///< 0 when no stored context matched.
  uint64_t stored_context_id = 0;  ///< Set when store_on_finish succeeded.
  size_t prefilled_tokens = 0;     ///< Prompt tokens pushed through prefill.
  size_t steps_completed = 0;
  /// record_outputs: concatenated final-layer outputs, one
  /// [num_q_heads * head_dim] block per step.
  std::vector<float> outputs;
  AttentionCallStats stats;  ///< Summed over all steps/layers/heads.
  double prefill_wall_seconds = 0;
  double decode_wall_seconds = 0;
};

/// Aggregate serving metrics over one engine lifetime.
struct ServingSnapshot {
  size_t submitted = 0;
  size_t rejected = 0;   ///< Failed at Enqueue (backlog full / can never fit).
  size_t completed = 0;  ///< Finished decoding (status may still be an error).
  size_t tokens_prefilled = 0;  ///< Prompt tokens pushed through prefill.
  size_t tokens_decoded = 0;
  double serve_wall_seconds = 0;   ///< Wall time inside RunToCompletion.
  double tokens_per_second = 0;    ///< Aggregate decode throughput.
  size_t peak_concurrent_sessions = 0;
  uint64_t peak_gpu_bytes = 0;  ///< Max device residency observed at step ends
                                ///< (sampled during prefill and decode alike).
  /// Background materialization (store_on_finish under background_store):
  /// jobs still queued/running, and lifetime completed/failed totals.
  size_t materializations_pending = 0;
  size_t materializations_completed = 0;
  size_t materializations_failed = 0;
};

class ServingEngine {
 public:
  /// `db` must outlive the engine. The scheduler plans against the DB's model
  /// geometry, session window config, and environment cost model; unless the
  /// caller supplies one, its prefix probe is wired to the DB's context store
  /// so admission projects prefill work from live store contents.
  ServingEngine(AlayaDB* db, const ServingEngineOptions& options);

  /// Queues a request (thread-safe; may race with a running RunToCompletion).
  /// Fails fast when the backlog is full or the request can never fit the
  /// memory budget. Returns the request id.
  Result<uint64_t> Submit(ServingRequest request);

  /// Drives every queued request to completion (single driver thread; decode
  /// work fans out over the pool). Returns the first engine-level error;
  /// per-request failures land in their RequestResult instead.
  Status RunToCompletion();

  /// Result lookup (nullptr while still in flight). Thread-safe: monitoring
  /// threads may poll while RunToCompletion runs; a returned pointer stays
  /// valid for the engine's lifetime (results are never erased).
  const RequestResult* result(uint64_t id) const;

  /// Aggregate metrics so far. Thread-safe snapshot (consistent at step
  /// granularity while a run is in flight).
  ServingSnapshot snapshot() const;
  RequestScheduler& scheduler() { return scheduler_; }

 private:
  /// A session either prefills its prompt suffix or decodes — never both in
  /// one step; the transition happens when prefill_pos reaches the prompt end.
  enum class Phase { kPrefilling, kDecoding };

  struct ActiveSession {
    uint64_t id = 0;
    ServingRequest request;
    std::unique_ptr<Session> session;
    std::shared_ptr<Context> context_ref;  ///< Pins the reused context.
    RequestResult result;
    Phase phase = Phase::kDecoding;
    size_t prefill_pos = 0;  ///< Next prompt token to prefill (absolute).
    size_t step = 0;
    bool was_prefilling = false;  ///< Phase at the start of the current step.
    // Per-step scratch, reused across steps.
    std::vector<float> q;    ///< [num_q_heads * head_dim]
    std::vector<float> k;    ///< [num_kv_heads * head_dim]
    std::vector<float> v;    ///< [num_kv_heads * head_dim]
    std::vector<float> out;  ///< [num_q_heads * head_dim]
    std::vector<float> pq, pk, pv;  ///< Prefill chunk scratch (token-major).
    std::vector<AttentionCallStats> head_stats;  ///< One per q_head.
    bool failed = false;
  };

  void AdmitPending();
  Status StepActiveSessions();
  void RetireFinished();
  void FinishSession(ActiveSession* active);

  AlayaDB* db_;
  ServingEngineOptions options_;
  RequestScheduler scheduler_;
  ThreadPool* pool_;

  std::vector<std::unique_ptr<ActiveSession>> active_;  ///< Driver-thread-only.

  // Submit and monitoring threads may race with the driver: submit counters
  // are atomic; results_ and the rest of the snapshot are guarded by mu_
  // (the driver takes it briefly at step/retire boundaries).
  std::atomic<size_t> submitted_{0};
  std::atomic<size_t> rejected_{0};
  mutable std::mutex mu_;
  std::map<uint64_t, RequestResult> results_;
  ServingSnapshot snapshot_;
};

}  // namespace alaya
