#include "src/server/serving_engine.h"

#include <algorithm>

#include "src/common/timer.h"
#include "src/query/batched_diprs.h"

namespace alaya {

ServingEngine::ServingEngine(AlayaDB* db, const ServingEngineOptions& options)
    : db_(db),
      options_(options),
      scheduler_(db->options().model, db->options().session.window,
                 db->env().cost_model(), options.scheduler),
      pool_(options.pool != nullptr ? options.pool : &ThreadPool::Global()) {}

Result<uint64_t> ServingEngine::Submit(ServingRequest request) {
  Result<uint64_t> id = scheduler_.Enqueue(std::move(request));
  if (id.ok()) {
    submitted_.fetch_add(1);
  } else {
    rejected_.fetch_add(1);
  }
  return id;
}

void ServingEngine::AdmitPending() {
  for (RequestScheduler::Admitted& adm : scheduler_.Admit()) {
    auto active = std::make_unique<ActiveSession>();
    active->id = adm.id;
    active->request = std::move(adm.request);
    active->result.id = adm.id;

    Result<AlayaDB::SessionCreation> created =
        db_->CreateSession(active->request.prompt);
    if (!created.ok()) {
      active->result.status = created.status();
      active->failed = true;
    } else if (!created.value().truncated_prompt.empty()) {
      // The engine is decode-only for now: serving a prompt whose suffix was
      // never prefilled would silently attend to a context missing those
      // tokens. Fail honestly instead (prefill is a ROADMAP item).
      active->result.status = Status::NotSupported(
          "prompt extends past every stored context; batched prefill is not "
          "implemented — Import the full context first");
      active->failed = true;
    } else {
      AlayaDB::SessionCreation& sc = created.value();
      active->session = std::move(sc.session);
      active->context_ref = std::move(sc.context_ref);
      active->result.reused_prefix = sc.reused_prefix;
      active->result.reused_context_id = sc.context_id;
    }

    const ModelConfig& model = db_->options().model;
    const size_t qdim = static_cast<size_t>(model.num_q_heads) * model.head_dim;
    const size_t kvdim = static_cast<size_t>(model.num_kv_heads) * model.head_dim;
    active->q.resize(qdim);
    active->k.resize(kvdim);
    active->v.resize(kvdim);
    active->out.resize(qdim);
    active->head_stats.resize(model.num_q_heads);
    if (active->request.record_outputs) {
      active->result.outputs.reserve(active->request.max_new_tokens * qdim);
    }
    active_.push_back(std::move(active));
  }
  std::lock_guard<std::mutex> lk(mu_);
  snapshot_.peak_concurrent_sessions =
      std::max(snapshot_.peak_concurrent_sessions, active_.size());
}

Status ServingEngine::StepActiveSessions() {
  const ModelConfig& model = db_->options().model;
  const size_t d = model.head_dim;

  // Sessions still decoding this step (stable submit order for determinism).
  std::vector<ActiveSession*> live;
  live.reserve(active_.size());
  for (auto& a : active_) {
    if (!a->failed && a->step < a->request.max_new_tokens) live.push_back(a.get());
  }
  if (live.empty()) return Status::Ok();

  size_t step_tokens = 0;
  std::vector<HeadAttentionJob> jobs;
  std::vector<ActiveSession*> job_owner;
  std::vector<Status> job_status;
  jobs.reserve(live.size() * model.num_q_heads);
  job_owner.reserve(live.size() * model.num_q_heads);

  for (uint32_t layer = 0; layer < model.num_layers; ++layer) {
    // Phase 1 — Update: append this step's K/V to each session-local cache.
    // Sessions are independent, so this fans out across the pool; within a
    // session the call is exclusive (no attention runs yet).
    pool_->ParallelFor(0, live.size(), [&](size_t i) {
      ActiveSession* a = live[i];
      if (a->failed) return;  // Failed at an earlier layer of this step.
      a->request.fill_step(a->step, layer, a->q.data(), a->k.data(), a->v.data());
      Status s = a->session->Update(layer, a->q.data(), a->k.data(), a->v.data());
      if (!s.ok()) {
        a->result.status = s;
        a->failed = true;
      }
    });

    // Phase 2 — batched attention: flatten every live session's (session,
    // q_head) DIPRS/attention query of this layer into one pool batch. A
    // job's failure fails its own session, never the fleet.
    jobs.clear();
    job_owner.clear();
    for (ActiveSession* a : live) {
      if (a->failed) continue;
      for (uint32_t h = 0; h < model.num_q_heads; ++h) {
        a->head_stats[h] = AttentionCallStats{};
        jobs.push_back(HeadAttentionJob{a->session.get(), layer, h,
                                        a->q.data() + static_cast<size_t>(h) * d,
                                        a->out.data() + static_cast<size_t>(h) * d,
                                        &a->head_stats[h]});
        job_owner.push_back(a);
      }
    }
    ALAYA_RETURN_IF_ERROR(ExecuteHeadJobs(jobs, pool_, &job_status));
    for (size_t j = 0; j < job_status.size(); ++j) {
      if (!job_status[j].ok() && !job_owner[j]->failed) {
        job_owner[j]->result.status = job_status[j];
        job_owner[j]->failed = true;
      }
    }

    // Phase 3 — per-session accounting: fold head stats, charge the modeled
    // device clock once per session-layer (AttendHead leaves it untouched).
    for (ActiveSession* a : live) {
      if (a->failed) continue;
      AttentionCallStats layer_stats;
      for (const AttentionCallStats& hs : a->head_stats) layer_stats.Add(hs);
      a->session->ChargeModeledGpuSeconds(layer_stats.modeled_gpu_seconds);
      a->result.stats.Add(layer_stats);
      if (layer + 1 == model.num_layers) {
        if (a->request.record_outputs) {
          a->result.outputs.insert(a->result.outputs.end(), a->out.begin(),
                                   a->out.end());
        }
        ++a->result.steps_completed;
        ++a->step;
        ++step_tokens;
      }
    }
  }
  std::lock_guard<std::mutex> lk(mu_);
  snapshot_.tokens_decoded += step_tokens;
  snapshot_.peak_gpu_bytes =
      std::max(snapshot_.peak_gpu_bytes, db_->env().gpu_memory().current());
  return Status::Ok();
}

void ServingEngine::FinishSession(ActiveSession* active) {
  if (!active->failed && active->request.store_on_finish) {
    std::vector<int32_t> new_tokens;
    new_tokens.reserve(active->step);
    for (size_t s = 0; s < active->step; ++s) {
      // Default ids are salted with the request id: two sessions storing over
      // the same base context must not produce identical token sequences with
      // different KV, or later prompts would silently match the wrong one.
      new_tokens.push_back(
          active->request.token_at != nullptr
              ? active->request.token_at(s)
              : static_cast<int32_t>(1'000'000 +
                                     (active->id % 20'000) * 100'000 + s));
    }
    Result<uint64_t> stored = db_->Store(active->session.get(), new_tokens);
    if (stored.ok()) {
      active->result.stored_context_id = stored.value();
    } else {
      active->result.status = stored.status();
    }
  }
  // Free the session (and its device reservation) before returning the
  // admission reservation, so the next admit sees consistent accounting.
  active->session.reset();
  active->context_ref.reset();
  scheduler_.Release(active->id);
  std::lock_guard<std::mutex> lk(mu_);
  ++snapshot_.completed;
  results_[active->id] = std::move(active->result);
}

void ServingEngine::RetireFinished() {
  auto it = active_.begin();
  while (it != active_.end()) {
    ActiveSession* a = it->get();
    if (a->failed || a->step >= a->request.max_new_tokens) {
      FinishSession(a);
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
}

Status ServingEngine::RunToCompletion() {
  WallTimer timer;
  for (;;) {
    AdmitPending();
    if (active_.empty()) {
      if (scheduler_.queued() == 0) break;
      // A concurrent Submit may have landed between Admit() and queued();
      // having observed a non-empty queue on an idle system, a second Admit()
      // must pull its head (Enqueue guarantees it fits). If even that admits
      // nothing, it's an internal accounting bug — fail loudly, don't spin.
      AdmitPending();
      if (active_.empty()) {
        if (scheduler_.queued() == 0) break;
        return Status::Internal("queued requests but none admissible on idle system");
      }
    }
    WallTimer step_timer;
    ALAYA_RETURN_IF_ERROR(StepActiveSessions());
    const double step_seconds = step_timer.ElapsedSeconds();
    for (auto& a : active_) {
      if (!a->failed) a->result.decode_wall_seconds += step_seconds;
    }
    RetireFinished();
  }
  std::lock_guard<std::mutex> lk(mu_);
  snapshot_.serve_wall_seconds += timer.ElapsedSeconds();
  snapshot_.tokens_per_second =
      snapshot_.serve_wall_seconds > 0
          ? static_cast<double>(snapshot_.tokens_decoded) / snapshot_.serve_wall_seconds
          : 0;
  return Status::Ok();
}

const RequestResult* ServingEngine::result(uint64_t id) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = results_.find(id);
  // Map nodes are stable and never erased: the pointer outlives the lock.
  return it == results_.end() ? nullptr : &it->second;
}

ServingSnapshot ServingEngine::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  ServingSnapshot out = snapshot_;
  out.submitted = submitted_.load();
  out.rejected = rejected_.load();
  return out;
}

}  // namespace alaya
