#include "src/server/serving_engine.h"

#include <algorithm>
#include <latch>

#include "src/common/rng.h"
#include "src/common/timer.h"
#include "src/query/batched_diprs.h"

namespace alaya {

namespace {

/// Defaults the scheduler's prefix probe to the DB's context store, so
/// admission projects prefill work from what is actually stored.
RequestSchedulerOptions WithDefaultProbe(AlayaDB* db, RequestSchedulerOptions o) {
  if (o.prefix_probe == nullptr) {
    o.prefix_probe = [db](std::span<const int32_t> tokens) {
      return db->contexts().BestPrefixMatchLength(tokens);
    };
  }
  return o;
}

}  // namespace

int32_t SyntheticStoredTokenId(uint64_t request_id, size_t step) {
  const uint64_t h = Mix64(Mix64(request_id) ^ static_cast<uint64_t>(step));
  return static_cast<int32_t>(UINT32_C(0x40000000) |
                              (static_cast<uint32_t>(h >> 33) & UINT32_C(0x3FFFFFFF)));
}

ServingEngine::ServingEngine(AlayaDB* db, const ServingEngineOptions& options)
    : db_(db),
      options_(options),
      scheduler_(db->options().model, db->options().session.window,
                 db->env().cost_model(), WithDefaultProbe(db, options.scheduler)),
      pool_(options.pool != nullptr ? options.pool : &ThreadPool::Global()) {}

Result<uint64_t> ServingEngine::Submit(ServingRequest request) {
  Result<uint64_t> id = scheduler_.Enqueue(std::move(request));
  if (id.ok()) {
    submitted_.fetch_add(1);
  } else {
    rejected_.fetch_add(1);
  }
  return id;
}

void ServingEngine::AdmitPending() {
  const ModelConfig& model = db_->options().model;
  const size_t qdim = static_cast<size_t>(model.num_q_heads) * model.head_dim;
  const size_t kvdim = static_cast<size_t>(model.num_kv_heads) * model.head_dim;
  for (RequestScheduler::Admitted& adm : scheduler_.Admit()) {
    auto active = std::make_unique<ActiveSession>();
    active->id = adm.id;
    active->request = std::move(adm.request);
    active->result.id = adm.id;

    Result<AlayaDB::SessionCreation> created =
        db_->CreateSession(active->request.prompt);
    if (!created.ok()) {
      active->result.status = created.status();
      active->failed = true;
    } else if (!created.value().truncated_prompt.empty() &&
               active->request.fill_prompt == nullptr) {
      // The unmatched prompt suffix must be prefilled before decoding, and
      // only the caller knows its QKV. Fail honestly instead of silently
      // attending to a context missing those tokens.
      active->result.status = Status::NotSupported(
          "prompt extends past every stored context and the request has no "
          "fill_prompt callback to prefill the suffix");
      active->failed = true;
    } else {
      AlayaDB::SessionCreation& sc = created.value();
      active->session = std::move(sc.session);
      active->context_ref = std::move(sc.context_ref);
      active->result.reused_prefix = sc.reused_prefix;
      active->result.reused_context_id = sc.context_id;
      // The enqueue-time prefix probe was an estimate; the store may have
      // changed since (it will, under background materialization). Re-anchor
      // the admission reservation to the reuse the session actually got, so
      // reserved bytes/seconds track real footprints.
      scheduler_.UpdateReservation(
          adm.id, scheduler_.Estimate(active->request, sc.reused_prefix));
      if (!sc.truncated_prompt.empty()) {
        active->phase = Phase::kPrefilling;
        active->prefill_pos = sc.reused_prefix;
        const size_t chunk = scheduler_.options().prefill_chunk_tokens;
        active->pq.resize(chunk * qdim);
        active->pk.resize(chunk * kvdim);
        active->pv.resize(chunk * kvdim);
      }
    }

    active->q.resize(qdim);
    active->k.resize(kvdim);
    active->v.resize(kvdim);
    active->out.resize(qdim);
    active->head_stats.resize(model.num_q_heads);
    if (active->request.record_outputs) {
      active->result.outputs.reserve(active->request.max_new_tokens * qdim);
    }
    active_.push_back(std::move(active));
  }
  std::lock_guard<std::mutex> lk(mu_);
  snapshot_.peak_concurrent_sessions =
      std::max(snapshot_.peak_concurrent_sessions, active_.size());
}

Status ServingEngine::StepActiveSessions() {
  const ModelConfig& model = db_->options().model;
  const size_t d = model.head_dim;

  // Sessions with work this step (stable submit order for determinism), split
  // by phase: prefilling sessions push one prompt chunk, decoding sessions
  // run one lockstep token.
  std::vector<ActiveSession*> decoding, prefilling;
  for (auto& a : active_) {
    if (a->failed) continue;
    if (a->phase == Phase::kPrefilling) {
      prefilling.push_back(a.get());
    } else if (a->step < a->request.max_new_tokens) {
      decoding.push_back(a.get());
    }
  }
  if (decoding.empty() && prefilling.empty()) return Status::Ok();

  // One prefill chunk per prefilling session; a job spans all layers.
  const size_t chunk_cap = scheduler_.options().prefill_chunk_tokens;
  std::vector<SessionPrefillJob> prefill_jobs(prefilling.size());
  std::vector<Status> prefill_status(prefilling.size(), Status::Ok());
  for (size_t i = 0; i < prefilling.size(); ++i) {
    ActiveSession* a = prefilling[i];
    SessionPrefillJob& job = prefill_jobs[i];
    job.session = a->session.get();
    job.first_token = a->prefill_pos;
    job.count = std::min(chunk_cap, a->request.prompt.size() - a->prefill_pos);
    job.fill = a->request.fill_prompt;
    job.q_scratch = a->pq.data();
    job.k_scratch = a->pk.data();
    job.v_scratch = a->pv.data();
  }

  // Launch the prefill chunks. Prefilling and decoding sessions are disjoint,
  // so on mixed steps the chunks are submitted asynchronously and overlap the
  // entire decode layer loop below (joined before accounting) instead of
  // stalling every decoder's first layer behind the slowest chunk. On
  // prefill-only steps the driver participates via the blocking batch helper.
  // The detached tasks capture this frame's locals, so every exit path below
  // MUST pass the prefill_done.wait() join — decode errors are deferred, not
  // returned from inside the loop.
  std::latch prefill_done(static_cast<std::ptrdiff_t>(prefill_jobs.size()));
  if (decoding.empty()) {
    ExecutePrefillJobs(prefill_jobs, pool_, &prefill_status);
    if (!prefill_jobs.empty()) {
      prefill_done.count_down(static_cast<std::ptrdiff_t>(prefill_jobs.size()));
    }
  } else {
    for (size_t j = 0; j < prefill_jobs.size(); ++j) {
      pool_->Submit([&, j] {
        prefill_status[j] = RunPrefillJob(prefill_jobs[j]);
        prefill_done.count_down();
      });
    }
  }

  size_t step_tokens = 0;
  size_t step_prefilled = 0;
  Status decode_status;  // Engine-level decode error, deferred past the join.
  std::vector<HeadAttentionJob> jobs;
  std::vector<ActiveSession*> job_owner;
  std::vector<Status> job_status;
  jobs.reserve(decoding.size() * model.num_q_heads);
  job_owner.reserve(decoding.size() * model.num_q_heads);

  for (uint32_t layer = 0; decoding.size() > 0 && layer < model.num_layers;
       ++layer) {
    // Phase 1 — Update: append this step's K/V to each session-local cache.
    // Sessions are independent, so this fans out across the pool; within a
    // session the call is exclusive (no attention runs yet).
    pool_->ParallelFor(0, decoding.size(), [&](size_t i) {
      ActiveSession* a = decoding[i];
      if (a->failed) return;  // Failed at an earlier layer of this step.
      a->request.fill_step(a->step, layer, a->q.data(), a->k.data(), a->v.data());
      Status s = a->session->Update(layer, a->q.data(), a->k.data(), a->v.data());
      if (!s.ok()) {
        a->result.status = s;
        a->failed = true;
      }
    });

    // Phase 2 — batched attention: flatten every decoding session's (session,
    // q_head) DIPRS/attention query of this layer into one pool batch. A
    // job's failure fails its own session, never the fleet.
    jobs.clear();
    job_owner.clear();
    for (ActiveSession* a : decoding) {
      if (a->failed) continue;
      for (uint32_t h = 0; h < model.num_q_heads; ++h) {
        a->head_stats[h] = AttentionCallStats{};
        jobs.push_back(HeadAttentionJob{a->session.get(), layer, h,
                                        a->q.data() + static_cast<size_t>(h) * d,
                                        a->out.data() + static_cast<size_t>(h) * d,
                                        &a->head_stats[h]});
        job_owner.push_back(a);
      }
    }
    // With a non-null per-job vector ExecuteHeadJobs only returns Ok, but do
    // not return early on principle: the detached prefill tasks still hold
    // references into this frame until the join below.
    decode_status = ExecuteHeadJobs(jobs, pool_, &job_status);
    if (!decode_status.ok()) break;
    for (size_t j = 0; j < job_status.size(); ++j) {
      if (!job_status[j].ok() && !job_owner[j]->failed) {
        job_owner[j]->result.status = job_status[j];
        job_owner[j]->failed = true;
      }
    }

    // Phase 3 — per-session accounting: fold head stats, charge the modeled
    // device clock once per session-layer (AttendHead leaves it untouched).
    for (ActiveSession* a : decoding) {
      if (a->failed) continue;
      AttentionCallStats layer_stats;
      for (const AttentionCallStats& hs : a->head_stats) layer_stats.Add(hs);
      a->session->ChargeModeledGpuSeconds(layer_stats.modeled_gpu_seconds);
      a->result.stats.Add(layer_stats);
      if (layer + 1 == model.num_layers) {
        if (a->request.record_outputs) {
          a->result.outputs.insert(a->result.outputs.end(), a->out.begin(),
                                   a->out.end());
        }
        ++a->result.steps_completed;
        ++a->step;
        ++step_tokens;
      }
    }
  }

  // Join the prefill chunks (unconditionally — see the launch comment), then
  // propagate any deferred decode error, then fold the prefill results and
  // charge the modeled device cost: each prompt token is one full-attention
  // pass over the context visible at its position (per layer and query head)
  // — the prefill analogue of the decode-side per-step charge.
  prefill_done.wait();
  ALAYA_RETURN_IF_ERROR(decode_status);
  const CostModel& cost = db_->env().cost_model();
  for (size_t i = 0; i < prefilling.size(); ++i) {
    ActiveSession* a = prefilling[i];
    if (!prefill_status[i].ok()) {
      a->result.status = prefill_status[i];
      a->failed = true;
      continue;
    }
    double modeled = 0;
    for (size_t t = 0; t < prefill_jobs[i].count; ++t) {
      const double visible = static_cast<double>(a->prefill_pos + t + 1);
      modeled += cost.GpuAttentionSeconds(4.0 * visible * d);
    }
    modeled *= static_cast<double>(model.num_q_heads) * model.num_layers;
    a->session->ChargeModeledGpuSeconds(modeled);
    a->result.stats.modeled_gpu_seconds += modeled;
    a->prefill_pos += prefill_jobs[i].count;
    a->result.prefilled_tokens += prefill_jobs[i].count;
    step_prefilled += prefill_jobs[i].count;
    if (a->prefill_pos == a->request.prompt.size()) {
      a->phase = Phase::kDecoding;  // Decode starts next engine step.
      // The chunk scratch is dead weight for the whole decode phase; free it
      // (jobs referencing it were joined above).
      a->pq = {};
      a->pk = {};
      a->pv = {};
    }
  }

  std::lock_guard<std::mutex> lk(mu_);
  snapshot_.tokens_decoded += step_tokens;
  snapshot_.tokens_prefilled += step_prefilled;
  // Sampled on every step — prefill-only steps included, so residency grown by
  // UpdateBatch (the prompt suffix landing in session-local KV) is observed
  // even when no session decoded this step.
  snapshot_.peak_gpu_bytes =
      std::max(snapshot_.peak_gpu_bytes, db_->env().gpu_memory().current());
  return Status::Ok();
}

void ServingEngine::FinishSession(ActiveSession* active) {
  if (!active->failed && active->request.store_on_finish) {
    // DB.Store expects ids for every session-local token: the prefilled prompt
    // suffix first (its ids are right there in the request), then the decoded
    // tail.
    const std::vector<int32_t>& prompt = active->request.prompt;
    const size_t suffix_begin = active->result.reused_prefix;
    const size_t suffix_end = suffix_begin + active->result.prefilled_tokens;
    std::vector<int32_t> new_tokens;
    new_tokens.reserve(active->result.prefilled_tokens + active->step);
    new_tokens.insert(new_tokens.end(),
                      prompt.begin() + static_cast<long>(suffix_begin),
                      prompt.begin() + static_cast<long>(suffix_end));
    for (size_t s = 0; s < active->step; ++s) {
      // Default ids are salted with the request id: two sessions storing over
      // the same base context must not produce identical token sequences with
      // different KV, or later prompts would silently match the wrong one.
      new_tokens.push_back(active->request.token_at != nullptr
                               ? active->request.token_at(s)
                               : SyntheticStoredTokenId(active->id, s));
    }
    // Background (default): hand the session's KV, ids and recorded queries
    // to a materialization job and retire immediately — the index build never
    // blocks the step loop. The reserved context id is reported right away;
    // it becomes matchable once the job publishes (observe via Drain()).
    Result<uint64_t> stored =
        options_.background_store
            ? db_->StoreAsync(active->session.get(), std::move(new_tokens),
                              active->context_ref)
            : db_->Store(active->session.get(), new_tokens);
    if (stored.ok()) {
      active->result.stored_context_id = stored.value();
    } else {
      active->result.status = stored.status();
    }
  }
  // Free the session (and its device reservation) before returning the
  // admission reservation, so the next admit sees consistent accounting.
  active->session.reset();
  active->context_ref.reset();
  scheduler_.Release(active->id);
  std::lock_guard<std::mutex> lk(mu_);
  ++snapshot_.completed;
  results_[active->id] = std::move(active->result);
}

void ServingEngine::RetireFinished() {
  auto it = active_.begin();
  while (it != active_.end()) {
    ActiveSession* a = it->get();
    if (a->failed || (a->phase == Phase::kDecoding &&
                      a->step >= a->request.max_new_tokens)) {
      FinishSession(a);
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
}

Status ServingEngine::RunToCompletion() {
  WallTimer timer;
  for (;;) {
    AdmitPending();
    if (active_.empty()) {
      if (scheduler_.queued() == 0) break;
      // A concurrent Submit may have landed between Admit() and queued();
      // having observed a non-empty queue on an idle system, a second Admit()
      // must pull its head (Enqueue guarantees it fits). If even that admits
      // nothing, it's an internal accounting bug — fail loudly, don't spin.
      AdmitPending();
      if (active_.empty()) {
        if (scheduler_.queued() == 0) break;
        return Status::Internal("queued requests but none admissible on idle system");
      }
    }
    for (auto& a : active_) a->was_prefilling = a->phase == Phase::kPrefilling;
    WallTimer step_timer;
    ALAYA_RETURN_IF_ERROR(StepActiveSessions());
    const double step_seconds = step_timer.ElapsedSeconds();
    for (auto& a : active_) {
      if (a->failed) continue;
      if (a->was_prefilling) {
        a->result.prefill_wall_seconds += step_seconds;
      } else {
        a->result.decode_wall_seconds += step_seconds;
      }
    }
    RetireFinished();
  }
  // Barrier: every store_on_finish materialization handed off during the run
  // must publish before the engine reports completion — callers (and tests)
  // observe a store whose contexts are all fully built. A failed
  // materialization loses one context, never the run: it is reconciled into
  // the owning request's result below (matching the synchronous path, where
  // a store error lands in result.status at retire) and counted in
  // snapshot().materializations_failed — not returned as an engine error.
  (void)db_->Drain();
  const std::map<uint64_t, Status> mat_errors = db_->materialization_errors();
  std::lock_guard<std::mutex> lk(mu_);
  if (!mat_errors.empty()) {
    for (auto& [rid, res] : results_) {
      if (res.stored_context_id == 0) continue;
      auto it = mat_errors.find(res.stored_context_id);
      if (it == mat_errors.end()) continue;
      if (res.status.ok()) res.status = it->second;
      res.stored_context_id = 0;  // The reserved id will never publish.
    }
  }
  snapshot_.serve_wall_seconds += timer.ElapsedSeconds();
  // Instant runs can round the wall clock to zero even though tokens were
  // decoded; clamp the denominator so the reported throughput stays finite
  // (and zero only when nothing was decoded).
  snapshot_.tokens_per_second =
      snapshot_.tokens_decoded > 0
          ? static_cast<double>(snapshot_.tokens_decoded) /
                std::max(snapshot_.serve_wall_seconds, 1e-9)
          : 0;
  return Status::Ok();
}

const RequestResult* ServingEngine::result(uint64_t id) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = results_.find(id);
  // Map nodes are stable and never erased: the pointer outlives the lock.
  return it == results_.end() ? nullptr : &it->second;
}

ServingSnapshot ServingEngine::snapshot() const {
  const AlayaDB::MaterializationStats mat = db_->materialization_stats();
  std::lock_guard<std::mutex> lk(mu_);
  ServingSnapshot out = snapshot_;
  out.submitted = submitted_.load();
  out.rejected = rejected_.load();
  out.materializations_pending = mat.pending;
  out.materializations_completed = mat.completed;
  out.materializations_failed = mat.failed;
  return out;
}

}  // namespace alaya
