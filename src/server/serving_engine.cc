#include "src/server/serving_engine.h"

#include <algorithm>
#include <span>

#include "src/common/rng.h"
#include "src/core/context_serializer.h"
#include "src/device/gang.h"
#include "src/query/batched_diprs.h"

namespace alaya {

namespace {

/// VFS namespace for a suspended request's spilled KV. Distinct from the tier
/// store's "ctx<id>" context prefix, so warm start never mistakes a parked
/// request fragment for a stored context (ParseSpillName skips it).
std::string SuspendSpillPrefix(uint64_t request_id) {
  return "suspend" + std::to_string(request_id);
}

/// Normalizes engine options: clamps the fleet size, mirrors it into the
/// scheduler, and defaults the scheduler's probes to the DB's context store —
/// admission then projects prefill work from what is actually stored, and
/// placement sees which device holds the matched context (affinity).
ServingEngineOptions WithDefaults(AlayaDB* db, ServingEngineOptions o) {
  o.devices = std::max<size_t>(1, o.devices);
  o.scheduler.devices = o.devices;
  // Gang size: the engine-level knob and the scheduler-level knob are the
  // same control; honor whichever was set (larger wins) and keep both in
  // sync so AdmitInto's DeviceGang construction matches the placement.
  o.max_gang_size = std::clamp<size_t>(
      std::max(o.max_gang_size, o.scheduler.max_gang_size), 1, o.devices);
  o.scheduler.max_gang_size = o.max_gang_size;
  if (o.scheduler.prefix_probe == nullptr) {
    o.scheduler.prefix_probe = [db](std::span<const int32_t> tokens) {
      return db->contexts().BestPrefixMatchLength(tokens);
    };
  }
  if (o.scheduler.affinity_probe == nullptr) {
    o.scheduler.affinity_probe = [db](std::span<const int32_t> tokens) {
      return db->contexts().BestPrefixProbe(tokens).device;
    };
  }
  if (o.scheduler.placement_probe == nullptr) {
    // The Submit fast path: matched length + affinity device from one walk.
    // Hitting a spilled context here is the prefetch hook: the page-in runs
    // on the materialize pool while the request waits for admission, so by
    // the time CreateSession needs the context it is (usually) resident.
    o.scheduler.placement_probe = [db](std::span<const int32_t> tokens) {
      const ContextStore::PrefixProbe probe = db->contexts().BestPrefixProbe(tokens);
      if (probe.spilled) db->PrefetchContext(probe.context_id);
      return RequestSchedulerOptions::PrefixProbeResult{probe.matched, probe.device,
                                                        probe.spilled};
    };
  }
  return o;
}

}  // namespace

int32_t SyntheticStoredTokenId(uint64_t request_id, size_t step) {
  const uint64_t h = Mix64(Mix64(request_id) ^ static_cast<uint64_t>(step));
  return static_cast<int32_t>(UINT32_C(0x40000000) |
                              (static_cast<uint32_t>(h >> 33) & UINT32_C(0x3FFFFFFF)));
}

const RequestResult* RequestHandle::Wait() const {
  if (ticket_ == nullptr) return nullptr;
  std::unique_lock<std::mutex> lk(ticket_->mu);
  ticket_->cv.wait(lk, [&] { return ticket_->done; });
  // The ticket owns the result: the pointer survives result-map eviction for
  // as long as the caller holds the handle.
  return ticket_->result.get();
}

const RequestResult* RequestHandle::TryWait() const {
  if (ticket_ == nullptr) return nullptr;
  std::lock_guard<std::mutex> lk(ticket_->mu);
  return ticket_->done ? ticket_->result.get() : nullptr;
}

bool RequestHandle::Cancel() const {
  if (engine_ == nullptr || ticket_ == nullptr) return false;
  return engine_->CancelRequest(ticket_);
}

ServingEngine::ServingEngine(AlayaDB* db, const ServingEngineOptions& options)
    : db_(db),
      options_(WithDefaults(db, options)),
      scheduler_(db->options().model, db->options().session.window,
                 db->env().cost_model(), options_.scheduler),
      pool_(options_.pool != nullptr ? options_.pool : &ThreadPool::Global()) {
  // The fleet must exist before any placement decision can bind a session to
  // it. Grow-only and pointer-stable, so sessions of other engines sharing
  // this environment are unaffected.
  db_->env().devices().EnsureAtLeast(options_.devices);
  device_stats_.resize(options_.devices);
  for (size_t d = 0; d < device_stats_.size(); ++d) {
    device_stats_[d].device = static_cast<int>(d);
  }
}

ServingEngine::~ServingEngine() { (void)Abort(); }

Status ServingEngine::Start() {
  std::lock_guard<std::mutex> lk(life_mu_);
  if (state_ == State::kRunning || state_ == State::kDraining) {
    return Status::FailedPrecondition("engine is already running");
  }
  if (driver_.joinable()) driver_.join();  // Reap the previous run's thread.
  state_ = State::kRunning;
  stop_mode_ = StopMode::kNone;
  run_status_ = Status::Ok();
  run_timer_.Restart();
  driver_ = std::thread(&ServingEngine::DriverLoop, this);
  return Status::Ok();
}

Status ServingEngine::JoinStoppedDriverLocked() {
  if (driver_.joinable()) driver_.join();
  return run_status_;
}

Status ServingEngine::Shutdown() {
  std::unique_lock<std::mutex> lk(life_mu_);
  if (state_ == State::kCreated) return run_status_;
  if (state_ == State::kStopped) return JoinStoppedDriverLocked();
  if (stop_mode_ == StopMode::kNone) stop_mode_ = StopMode::kDrain;
  state_ = State::kDraining;
  life_cv_.notify_all();
  life_cv_.wait(lk, [&] { return state_ == State::kStopped; });
  return JoinStoppedDriverLocked();
}

Status ServingEngine::Abort() {
  std::unique_lock<std::mutex> lk(life_mu_);
  if (state_ == State::kCreated) return run_status_;
  if (state_ == State::kStopped) return JoinStoppedDriverLocked();
  stop_mode_ = StopMode::kAbort;  // Escalates a graceful drain in progress.
  state_ = State::kDraining;
  life_cv_.notify_all();
  life_cv_.wait(lk, [&] { return state_ == State::kStopped; });
  return JoinStoppedDriverLocked();
}

void ServingEngine::WaitIdle() {
  std::unique_lock<std::mutex> lk(life_mu_);
  life_cv_.wait(lk, [&] {
    if (state_ != State::kRunning && state_ != State::kDraining) return true;
    // Order matters: queued==0 proves any cancel/expiry dequeue already
    // happened, so a zero finalizing_ read afterwards proves its result
    // publication completed too — idle implies every result is visible.
    return scheduler_.queued() == 0 && scheduler_.active() == 0 &&
           finalizing_.load() == 0;
  });
}

ServingEngine::State ServingEngine::state() const {
  std::lock_guard<std::mutex> lk(life_mu_);
  return state_;
}

Status ServingEngine::RunToCompletion() {
  ALAYA_RETURN_IF_ERROR(Start());
  WaitIdle();
  return Shutdown();
}

Result<RequestHandle> ServingEngine::Submit(ServingRequest request) {
  auto ticket = std::make_shared<RequestTicket>();
  // The store probes (admission estimate + placement affinity) are
  // O(prompt-length) trie walks — run them before taking mu_ so concurrent
  // submitters never stall the driver's finalize/snapshot paths on them.
  const RequestScheduler::EnqueuePreflight pre = scheduler_.Preflight(request);
  {
    // Enqueue and ticket registration are one atomic step under mu_: any
    // terminal result is published through FinalizeResult, which also takes
    // mu_, so the driver cannot finalize this request before its ticket
    // exists — the invariant that makes the result map safely evictable
    // (there is never a finalized request whose ticket will register later).
    std::lock_guard<std::mutex> lk(mu_);
    Result<uint64_t> id = scheduler_.Enqueue(std::move(request), pre);
    if (!id.ok()) {
      rejected_.fetch_add(1);
      return id.status();
    }
    submitted_.fetch_add(1);
    ticket->id = id.value();
    tickets_[ticket->id] = ticket;
  }
  {
    // Wake an idle driver. Notify under life_mu_ so a waiter between its
    // predicate check and its sleep cannot miss the signal.
    std::lock_guard<std::mutex> lk(life_mu_);
    life_cv_.notify_all();
  }
  return RequestHandle(this, std::move(ticket));
}

std::shared_ptr<RequestTicket> ServingEngine::FindTicket(uint64_t id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = tickets_.find(id);
  return it == tickets_.end() ? nullptr : it->second;
}

bool ServingEngine::CancelRequest(const std::shared_ptr<RequestTicket>& ticket) {
  {
    std::lock_guard<std::mutex> lk(ticket->mu);
    if (ticket->done) return false;
  }
  ticket->cancel_requested.store(true);
  // Still queued? Pull it out and finalize right here — effective even on a
  // stopped engine, and the driver can never see the request again (exactly
  // one of RemoveQueued/Admit wins the queue entry). Otherwise the request is
  // admitted (or mid-admission) and the driver observes the flag at the next
  // step boundary.
  finalizing_.fetch_add(1);  // Covers the dequeue-to-publication window.
  if (auto adm = scheduler_.RemoveQueued(ticket->id)) {
    FinalizeUnadmitted(std::move(*adm),
                       Status::Cancelled("cancelled before admission"));
  }
  finalizing_.fetch_sub(1);
  // Notify on BOTH paths: the driver may need to observe the flag, and the
  // dequeue above may have just made the engine idle — a WaitIdle waiter
  // whose predicate became true must get to re-evaluate it.
  std::lock_guard<std::mutex> lk(life_mu_);
  life_cv_.notify_all();
  return true;
}

void ServingEngine::FinalizeResult(uint64_t id, RequestResult&& result) {
  result.id = id;
  auto stored = std::make_shared<const RequestResult>(std::move(result));
  std::shared_ptr<RequestTicket> ticket;
  {
    std::lock_guard<std::mutex> lk(mu_);
    results_.insert_or_assign(id, stored);
    ++snapshot_.completed;
    if (stored->status.IsCancelled()) ++snapshot_.cancelled;
    if (stored->status.IsDeadlineExceeded()) ++snapshot_.deadline_exceeded;
    // Per-class / per-tenant terminal accounting. Results are self-describing
    // (priority/tenant stamped at admission or from the queue entry), so this
    // is the single point every finalize path funnels through.
    ClassServingStats& cs = class_stats_[stored->priority];
    cs.priority = stored->priority;
    ++cs.completed;
    if (stored->ttft_seconds > 0) {
      // Streaming quantiles: every completed request contributes (no first-N
      // cap), at O(1) memory per class.
      ++cs.ttft_count;
      cs.ttft_p50.Add(stored->ttft_seconds);
      cs.ttft_p99.Add(stored->ttft_seconds);
    }
    TenantServingStats& ts = tenant_stats_[stored->tenant_id];
    ts.tenant_id = stored->tenant_id;
    ++ts.completed;
    auto t = tickets_.find(id);
    if (t != tickets_.end()) {
      ticket = std::move(t->second);
      tickets_.erase(t);
    }
    // Bounded retention: evict the oldest terminal results beyond the cap.
    // Tickets co-own their results, so outstanding handles are unaffected —
    // only the id-keyed result() lookup forgets ancient requests.
    if (options_.result_retention > 0) {
      while (results_.size() > options_.result_retention) {
        results_.erase(results_.begin());
      }
    }
  }
  if (ticket != nullptr) {
    std::lock_guard<std::mutex> lk(ticket->mu);
    ticket->result = std::move(stored);
    ticket->done = true;
    ticket->cv.notify_all();
  }
}

void ServingEngine::FinalizeUnadmitted(RequestScheduler::Admitted&& adm,
                                       Status status) {
  RequestResult r;
  r.status = std::move(status);
  r.priority = adm.priority;
  r.tenant_id = adm.tenant_id;
  FinalizeResult(adm.id, std::move(r));
}

void ServingEngine::FinalizeSuspended(uint64_t id, Status status) {
  auto it = suspended_.find(id);
  if (it == suspended_.end()) return;
  std::unique_ptr<ActiveSession> a = std::move(it->second);
  suspended_.erase(it);
  // The parked KV dies with the request; no scheduler Release — a suspended
  // request holds no reservation (its slot was freed at suspension). A
  // spilled KV's file stays behind harmlessly: the VFS has no remove, the
  // "suspend" prefix is invisible to warm start, and a future re-spill of the
  // same id truncates it.
  a->suspended_kv.reset();
  a->host_kv_reservation.Release();
  a->disk_kv_reservation.Release();
  a->result.status = std::move(status);
  FinalizeResult(a->id, std::move(a->result));
}

Status ServingEngine::SpillSuspendedKv(ActiveSession* a) {
  TieredContextStore* tiers = db_->tiers();
  if (tiers == nullptr || !a->suspended_kv.has_value()) {
    return Status::FailedPrecondition("no tier store to spill suspended KV into");
  }
  Session::SuspendedState& state = *a->suspended_kv;
  const uint64_t kv_bytes = state.kv_bytes;
  // Wrap the parked KV in a throwaway Context so the serializer's persist
  // path (payload files first, manifest as the commit record) does the
  // formatting. The tokens are positional placeholders — resume never reads
  // them; the engine-side prefill_pos/step counters are the real state.
  const size_t n_local = state.base.local_kv.NumTokens();
  auto kv = std::make_unique<KvCache>(std::move(state.base.local_kv));
  Context shell(a->id, std::vector<int32_t>(n_local, 0), std::move(kv));
  ContextSerializer serializer(&tiers->vfs());
  const Status persisted = serializer.Persist(shell, SuspendSpillPrefix(a->id));
  if (!persisted.ok()) {
    // The KV must survive a failed spill: move it back and let the caller
    // fall back to host-resident parking.
    state.base.local_kv = std::move(shell.mutable_kv());
    return persisted;
  }
  // The parked bytes now live on disk; the in-memory cache is left empty
  // (geometry only) and the host never holds them while the request waits.
  state.base.local_kv = KvCache(db_->options().model);
  a->disk_kv_reservation =
      MemoryReservation(&db_->env().disk_usage(), kv_bytes);
  a->suspended_on_disk = true;
  std::lock_guard<std::mutex> lk(mu_);
  ++snapshot_.suspend_spills;
  return Status::Ok();
}

Status ServingEngine::RestoreSuspendedKv(ActiveSession* a) {
  TieredContextStore* tiers = db_->tiers();
  if (tiers == nullptr || !a->suspended_kv.has_value()) {
    return Status::FailedPrecondition("no spilled suspended KV to restore");
  }
  ContextSerializer serializer(&tiers->vfs());
  Result<std::unique_ptr<Context>> loaded =
      serializer.Load(SuspendSpillPrefix(a->id), a->id, db_->options().model,
                      db_->options().index_build.roar);
  ALAYA_RETURN_IF_ERROR(loaded.status());
  // Serializer round-trips are exact, so the restored cache is bit-identical
  // to the one DetachForSuspend parked — resume stays recompute-free.
  a->suspended_kv->base.local_kv = std::move(loaded.value()->mutable_kv());
  a->suspended_on_disk = false;
  a->disk_kv_reservation.Release();
  std::lock_guard<std::mutex> lk(mu_);
  ++snapshot_.suspend_restores;
  return Status::Ok();
}

bool ServingEngine::SuspendVictim(uint64_t id) {
  auto it = std::find_if(active_.begin(), active_.end(),
                         [id](const auto& a) { return a->id == id; });
  if (it == active_.end()) return false;
  ActiveSession* a = it->get();
  // A failed/terminal session is already on its way out — retiring it frees
  // the slot anyway; suspending it would strand a dead request in suspended_.
  if (a->failed || a->Terminal() || a->session == nullptr) return false;

  // Detach the KV and decode state. step/prefill_pos stay on the parked
  // ActiveSession — with pure fill callbacks they are the full generator
  // state, which is what makes the resumed decode bit-identical.
  const uint64_t ring_bytes = a->session->gang_ring_transfer_bytes();
  Session::SuspendedState state = a->session->DetachForSuspend();
  const uint64_t kv_bytes = state.kv_bytes;
  // The offload is a modeled device→host transfer on the victim's device (it
  // executes the copy-out), and the parked bytes live in host DRAM until
  // resume — unless host pressure spills them onward to disk below.
  Device& dev = db_->env().device(static_cast<size_t>(a->device));
  dev.clock().Advance(dev.cost_model().TransferSeconds(kv_bytes));
  a->suspended_kv.emplace(std::move(state));
  // Host-pressure spill: when parking these bytes would push host usage past
  // the budget, persist them to the tier store's disk instead. Failure falls
  // back to host parking — the spill is an optimization, never a gate.
  const bool spill = options_.suspend_spill_host_budget_bytes > 0 &&
                     db_->tiers() != nullptr &&
                     db_->env().host_memory().current() + kv_bytes >
                         options_.suspend_spill_host_budget_bytes &&
                     SpillSuspendedKv(a).ok();
  if (!spill) {
    a->host_kv_reservation =
        MemoryReservation(&db_->env().host_memory(), kv_bytes);
  }
  a->session.reset();
  // Drop the context pin: while the request waits, the tier layer is free to
  // spill (and later page back in) the context — resume re-pins it.
  a->context_ref.reset();
  a->state = RequestState::kSuspended;
  ++a->result.preemptions;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++snapshot_.preemptions;
    snapshot_.gang_ring_transfer_bytes += ring_bytes;
    ClassServingStats& cs = class_stats_[a->result.priority];
    cs.priority = a->result.priority;
    ++cs.preempted;
    TenantServingStats& ts = tenant_stats_[a->result.tenant_id];
    ts.tenant_id = a->result.tenant_id;
    ++ts.preempted;
  }

  // Requeue BEFORE Release: the resume entry must be visible before the
  // reservation returns, or a WaitIdle between the two could observe an idle
  // system while this request is suspended.
  RequestScheduler::Admitted resume;
  resume.id = a->id;
  resume.request.deadline_seconds = a->request.deadline_seconds;
  resume.submit_time = a->submit_time;
  resume.priority = a->result.priority;
  resume.tenant_id = a->result.tenant_id;
  resume.affinity_device = a->device;  // Warm KV affinity: it lived here last.
  resume.resume = true;
  resume.estimate = scheduler_.EstimateResumed(
      a->request, a->result.reused_prefix, a->prefill_pos, a->step);
  scheduler_.Requeue(std::move(resume));
  scheduler_.Release(a->id);
  suspended_[a->id] = std::move(*it);
  active_.erase(it);
  return true;
}

void ServingEngine::ResumeSuspended(RequestScheduler::Admitted&& adm,
                                    std::vector<ActiveSession*>* newly) {
  auto it = suspended_.find(adm.id);
  if (it == suspended_.end()) {
    // Defensive: the driver owns both sides, so a resume entry without a
    // parked request should not exist. Return the reservation rather than
    // leak it.
    scheduler_.Release(adm.id);
    return;
  }
  std::unique_ptr<ActiveSession> parked = std::move(it->second);
  suspended_.erase(it);
  ActiveSession* a = parked.get();

  // Terminal-while-suspended states the sweeps have not seen yet (Admit just
  // won the queue entry): finalize before rebuilding anything. Finalize
  // before Release, as everywhere, so idleness implies visible results.
  if (a->ticket == nullptr) a->ticket = FindTicket(a->id);
  Status terminal;
  if (a->ticket != nullptr && a->ticket->cancel_requested.load()) {
    terminal = Status::Cancelled("cancelled while suspended");
  } else if (a->deadline <= std::chrono::steady_clock::now()) {
    terminal = Status::DeadlineExceeded("deadline expired while suspended");
  }
  const uint64_t kv_bytes =
      a->suspended_kv.has_value() ? a->suspended_kv->kv_bytes : 0;
  Status rebuilt;
  AlayaDB::SessionResume resumed;
  if (terminal.ok()) {
    // Rebind to the exact context/prefix the session had (paging it back in
    // if it was spilled while suspended), then reattach the parked KV.
    Result<AlayaDB::SessionResume> r = db_->ResumeSession(
        a->result.reused_context_id, a->result.reused_prefix, adm.device);
    if (r.ok()) {
      resumed = std::move(r.value());
      if (adm.gang.size() > 1) {
        // Gang bind must precede AttachFromSuspend: a session only accepts a
        // gang while it holds zero local KV.
        rebuilt = resumed.session->BindGang(
            std::make_shared<const DeviceGang>(&db_->env(), adm.gang));
      }
      if (rebuilt.ok() && a->suspended_on_disk) {
        // The parked KV was spilled under host pressure; demand-page it back
        // before the reattach (bit-identical serializer round-trip).
        rebuilt = RestoreSuspendedKv(a);
      }
      if (rebuilt.ok()) {
        rebuilt = resumed.session->AttachFromSuspend(std::move(*a->suspended_kv));
      }
    } else {
      rebuilt = r.status();
    }
  }
  if (!terminal.ok() || !rebuilt.ok()) {
    a->suspended_kv.reset();
    a->host_kv_reservation.Release();
    a->disk_kv_reservation.Release();
    a->result.status = terminal.ok() ? rebuilt : terminal;
    FinalizeResult(a->id, std::move(a->result));
    scheduler_.Release(a->id);
    return;
  }

  // The parked bytes travel host→device on the resuming device's clock, the
  // host reservation returns, and the request re-enters the exact phase and
  // position it was suspended in. prefill_pos/step were never touched, so
  // there is zero recompute: prefilled_tokens and the decoded outputs come
  // out identical to an uninterrupted run.
  a->suspended_kv.reset();
  a->session = std::move(resumed.session);
  a->context_ref = std::move(resumed.context_ref);
  a->device = adm.device;
  a->gang = adm.gang;
  Device& dev = db_->env().device(static_cast<size_t>(adm.device));
  dev.clock().Advance(dev.cost_model().TransferSeconds(kv_bytes));
  a->host_kv_reservation.Release();
  a->state = a->prefill_pos < a->request.prompt.size()
                 ? RequestState::kPrefilling
                 : RequestState::kDecoding;
  ++a->result.resumes;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++snapshot_.resumes;
    ClassServingStats& cs = class_stats_[a->result.priority];
    cs.priority = a->result.priority;
    ++cs.resumed;
    TenantServingStats& ts = tenant_stats_[a->result.tenant_id];
    ts.tenant_id = a->result.tenant_id;
    ++ts.resumed;
    DeviceServingStats& ds = device_stats_[static_cast<size_t>(adm.device)];
    ++ds.placements;
    if (resumed.cross_device_transfer_bytes > 0) {
      ++ds.cross_device_reuses;
      ds.transfer_bytes += resumed.cross_device_transfer_bytes;
    }
    if (adm.gang.size() > 1) {
      ++snapshot_.gang_admissions;
      for (const int m : adm.gang) {
        ++device_stats_[static_cast<size_t>(m)].gang_shards;
      }
    }
  }
  if (newly != nullptr) newly->push_back(a);
  active_.push_back(std::move(parked));
}

void ServingEngine::SweepCancellations() {
  const auto now = std::chrono::steady_clock::now();
  finalizing_.fetch_add(1);  // Covers the dequeue-to-publication window.
  for (RequestScheduler::Admitted& adm : scheduler_.RemoveQueuedExpired(now)) {
    if (adm.resume) {
      // A suspended request's deadline expired while it waited for a slot:
      // owning its (just removed) resume entry, finalize the parked state.
      FinalizeSuspended(adm.id,
                        Status::DeadlineExceeded("deadline expired while suspended"));
    } else {
      FinalizeUnadmitted(std::move(adm),
                         Status::DeadlineExceeded("deadline expired before admission"));
    }
  }
  // Cancel-while-suspended: the caller-thread Cancel path deliberately skips
  // resume entries (the driver owns the suspended lifecycle), so the driver
  // sweeps the flags here — winning the queue entry first so a concurrent
  // observer can never see the id both finalized and still queued.
  for (auto it = suspended_.begin(); it != suspended_.end();) {
    ActiveSession* a = it->second.get();
    if (a->ticket == nullptr) a->ticket = FindTicket(a->id);
    const bool cancelled =
        a->ticket != nullptr && a->ticket->cancel_requested.load();
    ++it;  // FinalizeSuspended erases; advance first.
    if (cancelled &&
        scheduler_.RemoveQueued(a->id, /*include_resume=*/true).has_value()) {
      FinalizeSuspended(a->id, Status::Cancelled("cancelled while suspended"));
    }
  }
  finalizing_.fetch_sub(1);
  for (auto& a : active_) {
    if (a->failed) continue;
    // Submit registers the ticket after Enqueue, so admission can outrun it;
    // fetch lazily until it appears.
    if (a->ticket == nullptr) a->ticket = FindTicket(a->id);
    if (a->deadline <= now) {
      a->result.status = Status::DeadlineExceeded("request deadline expired");
      a->failed = true;
    } else if (a->ticket != nullptr && a->ticket->cancel_requested.load()) {
      a->result.status = Status::Cancelled("cancelled by caller");
      a->failed = true;
    }
  }
}

size_t ServingEngine::AdmitInto(std::vector<ActiveSession*>* newly,
                                bool allow_preempt) {
  const ModelConfig& model = db_->options().model;
  const size_t qdim = static_cast<size_t>(model.num_q_heads) * model.head_dim;
  const size_t kvdim = static_cast<size_t>(model.num_kv_heads) * model.head_dim;
  size_t added = 0;
  // Admit → suspend advised victims → admit again, until the scheduler stops
  // advising (or suspension frees nothing). Capacity only moves when a victim
  // actually suspends, so the loop terminates: each round either admits, or
  // shrinks the running set, or breaks.
  std::vector<RequestScheduler::Admitted> admitted;
  for (;;) {
    std::vector<uint64_t> victims;
    // Placement can reject a head as permanently unplaceable (custom
    // policies; the uniform-budget case already failed at Submit), and a pick
    // can be swept as expired: those requests hold no reservation, so the
    // finalizing_ guard keeps WaitIdle honest across the
    // dequeue-to-publication window.
    finalizing_.fetch_add(1);
    std::vector<RequestScheduler::Admitted> round =
        scheduler_.Admit(allow_preempt ? &victims : nullptr);
    for (RequestScheduler::Admitted& adm : scheduler_.TakeNeverFits()) {
      FinalizeUnadmitted(std::move(adm),
                         Status::NeverFits("no device's budget can hold the request"));
    }
    for (RequestScheduler::Admitted& adm : scheduler_.TakeExpired()) {
      // Expired at pick time, before the boundary sweep saw it. Suspended
      // requests route back through their parked state.
      if (adm.resume) {
        FinalizeSuspended(
            adm.id, Status::DeadlineExceeded("deadline expired while suspended"));
      } else {
        FinalizeUnadmitted(
            std::move(adm),
            Status::DeadlineExceeded("deadline expired before admission"));
      }
    }
    finalizing_.fetch_sub(1);
    admitted.insert(admitted.end(), std::make_move_iterator(round.begin()),
                    std::make_move_iterator(round.end()));
    if (victims.empty()) break;
    size_t suspended_now = 0;
    for (const uint64_t vid : victims) {
      if (SuspendVictim(vid)) ++suspended_now;
    }
    // Advice built on stale running state (victims already terminal) may free
    // nothing; stop rather than spin — those victims retire at this boundary
    // anyway and the next Admit sees the freed slots.
    if (suspended_now == 0) break;
  }
  for (RequestScheduler::Admitted& adm : admitted) {
    if (adm.resume) {
      ResumeSuspended(std::move(adm), newly);
      ++added;
      continue;
    }
    // Cancellation or deadline expiry may have landed after the queue pop;
    // don't build a session that would only retire immediately. Admit() took
    // the reservation, so return it explicitly on these paths.
    std::shared_ptr<RequestTicket> ticket = FindTicket(adm.id);
    const auto deadline = adm.Deadline();
    // Finalize BEFORE Release (mirroring FinishSession): the reservation keeps
    // WaitIdle's predicate false until the terminal result is visible.
    if (ticket != nullptr && ticket->cancel_requested.load()) {
      const uint64_t rid = adm.id;
      FinalizeUnadmitted(std::move(adm), Status::Cancelled("cancelled at admission"));
      scheduler_.Release(rid);
      continue;
    }
    if (deadline <= std::chrono::steady_clock::now()) {
      const uint64_t rid = adm.id;
      FinalizeUnadmitted(std::move(adm),
                         Status::DeadlineExceeded("deadline expired at admission"));
      scheduler_.Release(rid);
      continue;
    }

    auto active = std::make_unique<ActiveSession>();
    active->id = adm.id;
    active->device = adm.device;
    active->gang = adm.gang;
    active->request = std::move(adm.request);
    active->ticket = std::move(ticket);
    active->submit_time = adm.submit_time;
    active->deadline = deadline;
    active->result.id = adm.id;
    active->result.priority = adm.priority;
    active->result.tenant_id = adm.tenant_id;

    // Bind the session to its placed device: residency lands on that
    // device's tracker, modeled kernels on its clock, and a matched context
    // warm elsewhere pays the cross-device window transfer here.
    Result<AlayaDB::SessionCreation> created =
        db_->CreateSession(active->request.prompt, adm.device);
    if (created.ok()) {
      // Placements count sessions that actually materialized on the device —
      // a failed CreateSession served nothing there, and consumers gate on
      // placements > 0 to decide whether a device was used.
      std::lock_guard<std::mutex> lk(mu_);
      DeviceServingStats& ds = device_stats_[static_cast<size_t>(adm.device)];
      ++ds.placements;
      if (created.value().cross_device_transfer_bytes > 0) {
        ++ds.cross_device_reuses;
        ds.transfer_bytes += created.value().cross_device_transfer_bytes;
      }
    }
    if (!created.ok()) {
      active->result.status = created.status();
      active->failed = true;
    } else if (!created.value().truncated_prompt.empty() &&
               active->request.fill_prompt == nullptr) {
      // The unmatched prompt suffix must be prefilled before decoding, and
      // only the caller knows its QKV. Fail honestly instead of silently
      // attending to a context missing those tokens.
      active->result.status = Status::NotSupported(
          "prompt extends past every stored context and the request has no "
          "fill_prompt callback to prefill the suffix");
      active->failed = true;
    } else {
      AlayaDB::SessionCreation& sc = created.value();
      active->session = std::move(sc.session);
      active->context_ref = std::move(sc.context_ref);
      active->result.reused_prefix = sc.reused_prefix;
      active->result.reused_context_id = sc.context_id;
      if (adm.gang.size() > 1) {
        // Context parallelism: the scheduler placed this request across a
        // device gang. Bind before any prefill lands — a session only accepts
        // a gang while its local KV is empty.
        Status bound = active->session->BindGang(
            std::make_shared<const DeviceGang>(&db_->env(), adm.gang));
        if (!bound.ok()) {
          active->result.status = bound;
          active->failed = true;
        } else {
          std::lock_guard<std::mutex> lk(mu_);
          ++snapshot_.gang_admissions;
          for (const int m : adm.gang) {
            ++device_stats_[static_cast<size_t>(m)].gang_shards;
          }
        }
      }
      if (!active->failed) {
        // The enqueue-time prefix probe was an estimate; the store may have
        // changed since (it will, under background materialization). Re-anchor
        // the admission reservation to the reuse the session actually got, so
        // reserved bytes/seconds track real footprints.
        scheduler_.UpdateReservation(
            adm.id, scheduler_.Estimate(active->request, sc.reused_prefix));
        // prefill_pos is always anchored to the reuse (== prompt length when
        // fully covered): the suspend path snapshots it as the resume position
        // regardless of which phase the session is in.
        active->prefill_pos = sc.reused_prefix;
        if (!sc.truncated_prompt.empty()) {
          active->state = RequestState::kPrefilling;
          // Scratch sized for the largest chunk any step can grant; a budgeted
          // step simply uses a prefix of it.
          const size_t chunk = scheduler_.options().prefill_chunk_tokens;
          active->pq.resize(chunk * qdim);
          active->pk.resize(chunk * kvdim);
          active->pv.resize(chunk * kvdim);
        } else {
          active->state = RequestState::kDecoding;
        }
      }
    }

    active->q.resize(qdim);
    active->k.resize(kvdim);
    active->v.resize(kvdim);
    active->out.resize(qdim);
    active->head_stats.resize(model.num_q_heads);
    if (active->request.record_outputs) {
      active->result.outputs.reserve(active->request.max_new_tokens * qdim);
    }
    if (newly != nullptr) newly->push_back(active.get());
    active_.push_back(std::move(active));
    ++added;
  }
  std::lock_guard<std::mutex> lk(mu_);
  snapshot_.peak_concurrent_sessions =
      std::max(snapshot_.peak_concurrent_sessions, active_.size());
  return added;
}

void ServingEngine::AdmitPending() { (void)AdmitInto(nullptr, /*allow_preempt=*/true); }

size_t ServingEngine::MidStepAdmit(PrefillWave* wave, size_t* budget_left,
                                   std::vector<ActiveSession*>* chunked) {
  std::vector<ActiveSession*> newly;
  // No preemption mid-step: suspending a session whose pointers are live in
  // the running step's decode batch would pull state out from under it.
  // Victims are advised and suspended at step boundaries only.
  const size_t admitted = AdmitInto(&newly, /*allow_preempt=*/false);
  if (admitted > 0) {
    // Published immediately — not at step end — so a live observer sees the
    // admission while the step that absorbed it is still running.
    std::lock_guard<std::mutex> lk(mu_);
    snapshot_.midstep_admissions += admitted;
  }
  for (ActiveSession* a : newly) {
    // The step's wall time after this point is attributed to the state the
    // session entered in (DriverLoop stamps continuing sessions at the top of
    // the step; mid-step arrivals are stamped here).
    a->was_prefilling = a->state == RequestState::kPrefilling;
    if (a->failed || a->state != RequestState::kPrefilling) continue;
    // First chunk out of the step's unspent budget, straight into the wave
    // already in flight — the mid-step admission payoff: prefill starts now,
    // not at the next step boundary.
    const size_t need = a->request.prompt.size() - a->prefill_pos;
    const size_t grant = scheduler_.GrantChunk(need, budget_left);
    if (grant > 0) {
      LaunchChunk(a, grant, wave);
      chunked->push_back(a);
    }
  }
  return admitted;
}

void ServingEngine::LaunchChunk(ActiveSession* a, size_t count, PrefillWave* wave) {
  SessionPrefillJob job;
  job.session = a->session.get();
  job.first_token = a->prefill_pos;
  job.count = count;
  job.fill = a->request.fill_prompt;
  job.q_scratch = a->pq.data();
  job.k_scratch = a->pk.data();
  job.v_scratch = a->pv.data();
  a->chunk_granted = count;
  a->chunk_status = Status::Ok();
  wave->Launch(job, &a->chunk_status, pool_);
}

Status ServingEngine::StepActiveSessions(const WallTimer& step_timer) {
  const ModelConfig& model = db_->options().model;
  const size_t d = model.head_dim;

  // Sessions with work this step (stable submit order for determinism), split
  // by state: Prefilling sessions push one budgeted prompt chunk, Decoding
  // sessions run one lockstep token.
  std::vector<ActiveSession*> decoding, prefilling;
  for (auto& a : active_) {
    if (a->failed) continue;
    if (a->state == RequestState::kPrefilling) {
      prefilling.push_back(a.get());
    } else if (a->state == RequestState::kDecoding &&
               a->step < a->request.max_new_tokens) {
      decoding.push_back(a.get());
    }
  }
  if (decoding.empty() && prefilling.empty()) return Status::Ok();

  // Split the step's token budget: decode is funded first (one token per
  // Decoding session — the budget throttles prefill, never TPOT), the
  // remainder is dealt to Prefilling sessions FIFO in chunks. `chunked`
  // collects every session whose chunk launched this step — including
  // mid-step admissions — for the accounting pass after the join.
  std::vector<size_t> remaining(prefilling.size());
  for (size_t i = 0; i < prefilling.size(); ++i) {
    remaining[i] = prefilling[i]->request.prompt.size() - prefilling[i]->prefill_pos;
  }
  const RequestScheduler::StepPlan plan =
      scheduler_.PlanStep(decoding.size(), remaining);
  size_t budget_left = plan.budget_left;

  // Launch this step's chunks into the wave. Prefilling and decoding sessions
  // are disjoint, so the chunks overlap the entire decode layer loop below
  // (joined once, before accounting) instead of stalling every decoder's
  // first layer behind the slowest chunk. The wave tasks write into the
  // sessions' scratch and chunk_status, so every exit path below MUST pass
  // the wave.Wait() join — decode errors are deferred, not returned from
  // inside the loop.
  PrefillWave wave;
  std::vector<ActiveSession*> chunked;
  chunked.reserve(prefilling.size());
  for (size_t i = 0; i < prefilling.size(); ++i) {
    prefilling[i]->chunk_granted = 0;
    if (plan.chunks[i] > 0) {
      LaunchChunk(prefilling[i], plan.chunks[i], &wave);
      chunked.push_back(prefilling[i]);
    }
  }

  size_t step_tokens = 0;
  size_t step_prefilled = 0;
  // Per-device work this step (folded into device_stats_ under mu_ below).
  std::vector<size_t> dev_tokens(device_stats_.size(), 0);
  std::vector<size_t> dev_prefilled(device_stats_.size(), 0);
  Status decode_status;  // Engine-level decode error, deferred past the join.
  std::vector<HeadAttentionJob> jobs;
  std::vector<ActiveSession*> job_owner;
  std::vector<Status> job_status;
  jobs.reserve(decoding.size() * model.num_q_heads);
  job_owner.reserve(decoding.size() * model.num_q_heads);

  for (uint32_t layer = 0; decoding.size() > 0 && layer < model.num_layers;
       ++layer) {
    // Phase 1 — Update: append this step's K/V to each session-local cache.
    // Sessions are independent, so this fans out across the pool; within a
    // session the call is exclusive (no attention runs yet).
    pool_->ParallelFor(0, decoding.size(), [&](size_t i) {
      ActiveSession* a = decoding[i];
      if (a->failed) return;  // Failed at an earlier layer of this step.
      a->request.fill_step(a->step, layer, a->q.data(), a->k.data(), a->v.data());
      Status s = a->session->Update(layer, a->q.data(), a->k.data(), a->v.data());
      if (!s.ok()) {
        a->result.status = s;
        a->failed = true;
      }
    });

    // Phase 2 — batched attention: flatten every decoding session's (session,
    // q_head) DIPRS/attention query of this layer into one pool batch. A
    // job's failure fails its own session, never the fleet.
    jobs.clear();
    job_owner.clear();
    for (ActiveSession* a : decoding) {
      if (a->failed) continue;
      for (uint32_t h = 0; h < model.num_q_heads; ++h) {
        a->head_stats[h] = AttentionCallStats{};
        jobs.push_back(HeadAttentionJob{a->session.get(), layer, h,
                                        a->q.data() + static_cast<size_t>(h) * d,
                                        a->out.data() + static_cast<size_t>(h) * d,
                                        &a->head_stats[h]});
        job_owner.push_back(a);
      }
    }
    // With a non-null per-job vector ExecuteHeadJobs only returns Ok, but do
    // not return early on principle: the detached prefill tasks still hold
    // references into this frame until the join below.
    decode_status = ExecuteHeadJobs(jobs, pool_, &job_status);
    if (!decode_status.ok()) break;
    for (size_t j = 0; j < job_status.size(); ++j) {
      if (!job_status[j].ok() && !job_owner[j]->failed) {
        job_owner[j]->result.status = job_status[j];
        job_owner[j]->failed = true;
      }
    }

    // Phase 3 — per-session accounting: fold head stats, charge the modeled
    // device clock once per session-layer (AttendHead leaves it untouched).
    for (ActiveSession* a : decoding) {
      if (a->failed) continue;
      AttentionCallStats layer_stats;
      for (const AttentionCallStats& hs : a->head_stats) layer_stats.Add(hs);
      a->session->ChargeModeledGpuSeconds(layer_stats.modeled_gpu_seconds);
      scheduler_.RecordProgress(a->id, layer_stats.modeled_gpu_seconds);
      a->result.stats.Add(layer_stats);
      if (layer + 1 == model.num_layers) {
        if (a->request.record_outputs) {
          a->result.outputs.insert(a->result.outputs.end(), a->out.begin(),
                                   a->out.end());
        }
        if (a->result.steps_completed == 0) {
          a->result.ttft_seconds =
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            a->submit_time)
                  .count();
        }
        // Stream the finished output block before advancing the step counter:
        // callbacks observe steps 0..N-1 strictly in order, from the driver
        // thread, with the span valid only for the duration of the call.
        if (a->request.on_token != nullptr) {
          a->request.on_token(a->step,
                              std::span<const float>(a->out.data(), a->out.size()));
        }
        ++a->result.steps_completed;
        ++a->step;
        ++step_tokens;
        ++dev_tokens[static_cast<size_t>(a->device)];
      }
    }

    // Mid-step admission poll, between layers: a request that arrived while
    // this layer ran gets its session built NOW and its first prefill chunk
    // (budget permitting) launched into the wave already in flight — it does
    // not wait for the batch to drain to a step boundary. Newly admitted
    // sessions never join the current step's decode lockstep (decode starts
    // next step), so the per-layer batch below stays over a fixed set. The
    // last layer skips the poll: a chunk launched there could not overlap
    // anything and would only delay the join.
    if (options_.midstep_admission && layer + 1 < model.num_layers &&
        scheduler_.queued() > 0) {
      MidStepAdmit(&wave, &budget_left, &chunked);
    }
  }

  // Mid-step retirement: a session whose last token just decoded is retired
  // NOW — result published, reservation released — so its slot is free for
  // the wave-tail admission polls below instead of sitting occupied until the
  // step boundary. Safe here: the layer loop is done and `decoding` is not
  // read again, and erasing from active_ only moves unique_ptrs, never the
  // sessions `prefilling`/`chunked` point at. Gated with midstep_admission so
  // the boundary-only baseline keeps its exact retirement timing.
  if (options_.midstep_admission) {
    // Retirement frees the retiring sessions' KV before the end-of-step
    // residency sample; take the step's high-water sample first so
    // peak_gpu_bytes still reflects the footprint this step decoded at.
    {
      std::lock_guard<std::mutex> lk(mu_);
      SampleResidencyPeaksLocked();
    }
    size_t retired = 0;
    auto it = active_.begin();
    while (it != active_.end()) {
      ActiveSession* a = it->get();
      if (!a->failed && a->state == RequestState::kDecoding &&
          a->step >= a->request.max_new_tokens) {
        // The driver's post-step attribution loop no longer sees this
        // session; attribute its partial-step wall time before finalizing.
        a->result.decode_wall_seconds += step_timer.ElapsedSeconds();
        a->state = RequestState::kRetiring;
        FinishSession(a);
        it = active_.erase(it);
        ++retired;
      } else {
        ++it;
      }
    }
    if (retired > 0) {
      std::lock_guard<std::mutex> lk(mu_);
      snapshot_.midstep_retirements += retired;
    }
  }

  // Poll admissions while waiting out the wave — on every step, not just
  // prefill-only ones. For prefill-only steps this is the only poll site (no
  // layer loop to interleave with); for mixed steps it extends coverage past
  // the last between-layer poll into the wave-join tail, so an arrival during
  // the final decode layer or a long chunk still enters mid-step and its
  // chunk joins the same wave.
  if (options_.midstep_admission) {
    while (!wave.WaitFor(std::chrono::microseconds(200))) {
      if (scheduler_.queued() > 0) {
        MidStepAdmit(&wave, &budget_left, &chunked);
      }
    }
  }

  // Join the prefill chunks (unconditionally — see the launch comment), then
  // propagate any deferred decode error, then fold the prefill results and
  // charge the modeled device cost: each prompt token is one full-attention
  // pass over the context visible at its position (per layer and query head)
  // — the prefill analogue of the decode-side per-step charge.
  wave.Wait();
  ALAYA_RETURN_IF_ERROR(decode_status);
  const CostModel& cost = db_->env().cost_model();
  for (ActiveSession* a : chunked) {
    if (!a->chunk_status.ok()) {
      a->result.status = a->chunk_status;
      a->failed = true;
      continue;
    }
    double modeled = 0;
    for (size_t t = 0; t < a->chunk_granted; ++t) {
      const double visible = static_cast<double>(a->prefill_pos + t + 1);
      modeled += cost.GpuAttentionSeconds(4.0 * visible * d);
    }
    modeled *= static_cast<double>(model.num_q_heads) * model.num_layers;
    a->session->ChargeModeledGpuSeconds(modeled);
    scheduler_.RecordProgress(a->id, modeled);
    a->result.stats.modeled_gpu_seconds += modeled;
    a->prefill_pos += a->chunk_granted;
    a->result.prefilled_tokens += a->chunk_granted;
    step_prefilled += a->chunk_granted;
    dev_prefilled[static_cast<size_t>(a->device)] += a->chunk_granted;
    a->chunk_granted = 0;
    if (a->prefill_pos == a->request.prompt.size()) {
      a->state = RequestState::kDecoding;  // Decode starts next engine step.
      // The chunk scratch is dead weight for the whole decode phase; free it
      // (jobs referencing it were joined above).
      a->pq = {};
      a->pk = {};
      a->pv = {};
    }
  }

  std::lock_guard<std::mutex> lk(mu_);
  snapshot_.tokens_decoded += step_tokens;
  snapshot_.tokens_prefilled += step_prefilled;
  ++snapshot_.engine_steps;
  // Sampled on every step — prefill-only steps included, so residency grown by
  // UpdateBatch (the prompt suffix landing in session-local KV) is observed
  // even when no session decoded this step.
  for (size_t d = 0; d < device_stats_.size(); ++d) {
    device_stats_[d].tokens_decoded += dev_tokens[d];
    device_stats_[d].tokens_prefilled += dev_prefilled[d];
  }
  SampleResidencyPeaksLocked();
  return Status::Ok();
}

void ServingEngine::SampleResidencyPeaksLocked() {
  // The fleet peak sums the devices' simultaneous residency (with one device:
  // exactly the per-step sample); each device's own peak is tracked alongside.
  uint64_t fleet_bytes = 0;
  for (size_t d = 0; d < device_stats_.size(); ++d) {
    const uint64_t current = db_->env().device(d).memory().current();
    fleet_bytes += current;
    device_stats_[d].peak_gpu_bytes =
        std::max(device_stats_[d].peak_gpu_bytes, current);
  }
  snapshot_.peak_gpu_bytes = std::max(snapshot_.peak_gpu_bytes, fleet_bytes);
}

void ServingEngine::MaybeRebalance() {
  if (options_.rebalance_skew_factor <= 0 || options_.devices < 2) return;
  const std::vector<DeviceLoad> loads = scheduler_.DeviceLoads();
  size_t hot = 0, cold = 0;
  for (size_t i = 1; i < loads.size(); ++i) {
    if (loads[i].reserved_bytes > loads[hot].reserved_bytes) hot = i;
    if (loads[i].reserved_bytes < loads[cold].reserved_bytes) cold = i;
  }
  const double threshold =
      options_.rebalance_skew_factor *
      static_cast<double>(std::max<uint64_t>(loads[cold].reserved_bytes, 1));
  if (hot == cold ||
      static_cast<double>(loads[hot].reserved_bytes) <= threshold) {
    return;
  }
  // Load skew crossed the trigger: shed ONE warm, unpinned context from the
  // hot device to the cold one. One migration per probe keeps the correction
  // gentle — if skew persists, the next step boundary probes again. Pinned
  // contexts (use_count > 2: the store's ref + ours + a live session's) are
  // skipped; migrating under a running session would charge its device clock
  // for KV the session still attends locally.
  for (const uint64_t id : db_->contexts().Ids()) {
    std::shared_ptr<Context> ref = db_->contexts().FindShared(id);
    if (ref == nullptr) continue;  // Spilled or removed — nothing resident.
    if (ref->resident_device() != static_cast<int>(hot)) continue;
    if (ref.use_count() != 2) continue;
    Result<uint64_t> moved = db_->MigrateShard(id, static_cast<int>(hot),
                                               static_cast<int>(cold));
    if (!moved.ok()) continue;  // Raced a re-homing; plan is stale, skip.
    std::lock_guard<std::mutex> lk(mu_);
    ++snapshot_.shard_migrations;
    snapshot_.shard_migrated_bytes += moved.value();
    break;
  }
}

void ServingEngine::FinishSession(ActiveSession* active) {
  if (!active->failed && active->request.store_on_finish) {
    // DB.Store expects ids for every session-local token: the prefilled prompt
    // suffix first (its ids are right there in the request), then the decoded
    // tail. Cancelled / deadline-exceeded sessions never reach this branch
    // (they carry failed=true): a partial decode must not publish a context.
    const std::vector<int32_t>& prompt = active->request.prompt;
    const size_t suffix_begin = active->result.reused_prefix;
    const size_t suffix_end = suffix_begin + active->result.prefilled_tokens;
    std::vector<int32_t> new_tokens;
    new_tokens.reserve(active->result.prefilled_tokens + active->step);
    new_tokens.insert(new_tokens.end(),
                      prompt.begin() + static_cast<long>(suffix_begin),
                      prompt.begin() + static_cast<long>(suffix_end));
    for (size_t s = 0; s < active->step; ++s) {
      // Default ids are salted with the request id: two sessions storing over
      // the same base context must not produce identical token sequences with
      // different KV, or later prompts would silently match the wrong one.
      new_tokens.push_back(active->request.token_at != nullptr
                               ? active->request.token_at(s)
                               : SyntheticStoredTokenId(active->id, s));
    }
    // Background (default): hand the session's KV, ids and recorded queries
    // to a materialization job and retire immediately — the index build never
    // blocks the step loop. The reserved context id is reported right away;
    // it becomes matchable once the job publishes (observe via Drain()).
    Result<uint64_t> stored =
        options_.background_store
            ? db_->StoreAsync(active->session.get(), std::move(new_tokens),
                              active->context_ref)
            : db_->Store(active->session.get(), new_tokens);
    if (stored.ok()) {
      active->result.stored_context_id = stored.value();
    } else {
      active->result.status = stored.status();
    }
  }
  if (active->session != nullptr && active->session->gang() != nullptr) {
    std::lock_guard<std::mutex> lk(mu_);
    snapshot_.gang_ring_transfer_bytes +=
        active->session->gang_ring_transfer_bytes();
  }
  // Free the session (and its device reservation) before returning the
  // admission reservation, so the next admit sees consistent accounting; and
  // publish the result before Release, so a WaitIdle() that observes zero
  // reservations also observes every finished result.
  active->session.reset();
  active->context_ref.reset();
  FinalizeResult(active->id, std::move(active->result));
  scheduler_.Release(active->id);
}

void ServingEngine::RetireFinished() {
  auto it = active_.begin();
  while (it != active_.end()) {
    ActiveSession* a = it->get();
    if (a->Terminal()) {
      a->state = RequestState::kRetiring;
      FinishSession(a);
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
}

void ServingEngine::DriverLoop() {
  Status status;  // Engine-level; per-request failures live in their results.
  for (;;) {
    StopMode stop;
    {
      std::lock_guard<std::mutex> lk(life_mu_);
      stop = stop_mode_;
    }
    if (stop == StopMode::kAbort) break;

    // Step boundary: retire cancellations/expiries first (their reservations
    // free capacity), then admit — requests submitted while the engine runs
    // enter here, the continuous-batching entry point.
    SweepCancellations();
    RetireFinished();
    MaybeRebalance();
    AdmitPending();

    if (active_.empty()) {
      if (scheduler_.queued() == 0) {
        if (stop == StopMode::kDrain) break;
        // Idle: announce it (WaitIdle waiters) and sleep until a Submit,
        // Cancel or stop request arrives.
        std::unique_lock<std::mutex> lk(life_mu_);
        life_cv_.notify_all();
        life_cv_.wait(lk, [&] {
          return stop_mode_ != StopMode::kNone || scheduler_.queued() > 0;
        });
        continue;
      }
      // A concurrent Submit landed between Admit() and queued(); having
      // observed a non-empty queue on an idle system, a second Admit() must
      // pull its head (Enqueue guarantees it fits). A concurrent Cancel can
      // instead empty the queue — loop around. If neither happened, it's an
      // internal accounting bug — fail loudly, don't spin.
      AdmitPending();
      if (active_.empty()) {
        if (scheduler_.queued() == 0) continue;
        status = Status::Internal("queued requests but none admissible on idle system");
        break;
      }
    }

    for (auto& a : active_) {
      a->was_prefilling = a->state == RequestState::kPrefilling;
    }
    WallTimer step_timer;
    status = StepActiveSessions(step_timer);
    if (!status.ok()) break;
    const double step_seconds = step_timer.ElapsedSeconds();
    for (auto& a : active_) {
      if (a->failed) continue;
      if (a->was_prefilling) {
        a->result.prefill_wall_seconds += step_seconds;
      } else {
        a->result.decode_wall_seconds += step_seconds;
      }
    }
    RetireFinished();
  }

  // Terminal sweep: an abort (or an engine-level error) fails everything the
  // engine still owns, so every handle reaches a terminal state. A graceful
  // drain arrives here with nothing active or queued (a Submit racing the
  // final check stays queued for the next Start — exactly the old
  // RunToCompletion contract the stress tests rely on).
  StopMode final_stop;
  {
    std::lock_guard<std::mutex> lk(life_mu_);
    final_stop = stop_mode_;
  }
  if (!status.ok() || final_stop == StopMode::kAbort) {
    const Status reason =
        status.ok() ? Status::Cancelled("engine aborted") : status;
    for (auto& a : active_) {
      if (!a->failed) {
        a->result.status = reason;
        a->failed = true;
      }
    }
    RetireFinished();
    finalizing_.fetch_add(1);  // Covers the dequeue-to-publication window.
    for (RequestScheduler::Admitted& adm : scheduler_.TakeAllQueued()) {
      if (adm.resume) {
        FinalizeSuspended(adm.id,
                          status.ok() ? Status::Cancelled("engine aborted while suspended")
                                      : status);
      } else {
        FinalizeUnadmitted(std::move(adm),
                           status.ok() ? Status::Cancelled("engine aborted before admission")
                                       : status);
      }
    }
    // Belt and braces: every suspended request has a resume entry (the
    // invariant), so the loop above drained suspended_ — but a request whose
    // entry was lost must still reach a terminal state.
    while (!suspended_.empty()) {
      FinalizeSuspended(suspended_.begin()->first,
                        status.ok() ? Status::Cancelled("engine aborted while suspended")
                                    : status);
    }
    finalizing_.fetch_sub(1);
  }

  FinalizeRun();
  std::lock_guard<std::mutex> lk(life_mu_);
  run_status_ = status;
  state_ = State::kStopped;
  life_cv_.notify_all();
}

void ServingEngine::FinalizeRun() {
  // Barrier: every store_on_finish materialization handed off during the run
  // must publish before the engine reports stopped — callers (and tests)
  // observe a store whose contexts are all fully built. A failed
  // materialization loses one context, never the run: it is counted in
  // snapshot().materializations_failed, and db.materialization_errors() maps
  // the result's stored_context_id (a reservation ticket that will now never
  // publish) to the failure. Published results are deliberately NOT amended:
  // they are immutable once a handle's Wait/TryWait returns, so live callers
  // can read them without synchronizing against Shutdown.
  (void)db_->Drain();
  std::lock_guard<std::mutex> lk(mu_);
  snapshot_.serve_wall_seconds += run_timer_.ElapsedSeconds();
  // Instant runs can round the wall clock to zero even though tokens were
  // decoded; clamp the denominator so the reported throughput stays finite
  // (and zero only when nothing was decoded).
  snapshot_.tokens_per_second =
      snapshot_.tokens_decoded > 0
          ? static_cast<double>(snapshot_.tokens_decoded) /
                std::max(snapshot_.serve_wall_seconds, 1e-9)
          : 0;
}

const RequestResult* ServingEngine::result(uint64_t id) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = results_.find(id);
  // The shared_ptr target is immutable and stays alive until the id is
  // evicted (see result_retention): the pointer outlives the lock.
  return it == results_.end() ? nullptr : it->second.get();
}

ServingSnapshot ServingEngine::snapshot() const {
  const AlayaDB::MaterializationStats mat = db_->materialization_stats();
  const std::vector<DeviceLoad> loads = scheduler_.DeviceLoads();
  const TenantLedger ledger = scheduler_.TenantLedgerSnapshot();
  ServingSnapshot out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    out = snapshot_;
    out.devices = device_stats_;
    // Classes and tenants: engine-side terminal counters first (std::map →
    // ascending key order)...
    out.classes.reserve(class_stats_.size());
    for (const auto& [priority, cs] : class_stats_) out.classes.push_back(cs);
    out.tenants.reserve(std::max(tenant_stats_.size(), ledger.size()));
    for (const auto& [tid, ts] : tenant_stats_) out.tenants.push_back(ts);
  }
  // ...then the scheduler's live fair-share ledger merged over them (a tenant
  // can exist in the ledger before any of its requests reached a terminal
  // state, and vice versa on a fresh scheduler).
  for (const auto& [tid, share] : ledger) {
    auto it = std::find_if(out.tenants.begin(), out.tenants.end(),
                           [tid = tid](const TenantServingStats& t) {
                             return t.tenant_id == tid;
                           });
    if (it == out.tenants.end()) {
      TenantServingStats fresh;
      fresh.tenant_id = tid;
      it = out.tenants.insert(
          std::upper_bound(out.tenants.begin(), out.tenants.end(), fresh,
                           [](const TenantServingStats& a, const TenantServingStats& b) {
                             return a.tenant_id < b.tenant_id;
                           }),
          fresh);
    }
    it->weight = share.weight;
    it->deficit_seconds = share.deficit_seconds;
    it->admitted_seconds = share.admitted_seconds;
    it->admitted = share.admitted;
  }
  out.submitted = submitted_.load();
  out.rejected = rejected_.load();
  out.materializations_pending = mat.pending;
  out.materializations_completed = mat.completed;
  out.materializations_failed = mat.failed;
  if (const TieredContextStore* tiers = db_->tiers()) {
    const TieredContextStore::Stats ts = tiers->stats();
    out.tier_spills = ts.spills;
    out.tier_page_ins = ts.page_ins;
    out.tier_prefetches = ts.prefetches;
    out.tier_resident_contexts = ts.resident_contexts;
    out.tier_spilled_contexts = ts.spilled_contexts;
    out.tier_resident_kv_bytes = ts.resident_kv_bytes;
  }
  // Merge live per-device state: what the scheduler currently reserves on
  // each device, and each device clock's modeled busy seconds (utilization).
  for (DeviceServingStats& ds : out.devices) {
    const size_t d = static_cast<size_t>(ds.device);
    if (d < loads.size()) {
      ds.reserved_bytes = loads[d].reserved_bytes;
      ds.active_sessions = loads[d].active_sessions;
    }
    ds.modeled_busy_seconds = db_->env().device(d).clock().Seconds();
  }
  return out;
}

}  // namespace alaya
