#include "src/server/placement_policy.h"

#include <algorithm>
#include <functional>

namespace alaya {

bool DeviceFits(const PlacementRequest& request, const DeviceLoad& load,
                double tpot_slo_seconds) {
  if (load.budget_bytes > 0 &&
      load.reserved_bytes + request.gpu_bytes > load.budget_bytes) {
    return false;
  }
  // Per-device TPOT: a hot device stops accepting co-tenants, but an idle one
  // admits anything budget-feasible — mirrors the single-device scheduler's
  // "a request exceeding the SLO alone still runs, alone" rule, per device.
  if (tpot_slo_seconds > 0 && load.active_sessions > 0 &&
      load.reserved_step_seconds + request.step_seconds > tpot_slo_seconds) {
    return false;
  }
  return true;
}

namespace {

/// True when the request's footprint exceeds every device's budget outright —
/// waiting can never help, the scheduler's permanent-rejection signal.
bool NeverFits(const PlacementRequest& request, std::span<const DeviceLoad> loads) {
  for (const DeviceLoad& load : loads) {
    if (load.budget_bytes == 0 || request.gpu_bytes <= load.budget_bytes) {
      return false;
    }
  }
  return !loads.empty();
}

PlacementDecision Decide(const PlacementRequest& request,
                         std::span<const DeviceLoad> loads, int best) {
  PlacementDecision out;
  if (best >= 0) {
    out.device = best;
  } else {
    out.never_fits = NeverFits(request, loads);
  }
  return out;
}

}  // namespace

PlacementDecision BestFitPlacement::Place(const PlacementRequest& request,
                                          std::span<const DeviceLoad> loads,
                                          double tpot_slo_seconds) const {
  int best = -1;
  uint64_t best_free = 0;
  uint64_t best_reserved = 0;
  size_t best_sessions = 0;
  for (const DeviceLoad& load : loads) {
    if (!DeviceFits(request, load, tpot_slo_seconds)) continue;
    if (load.device == request.affinity_device) {
      // Warm KV wins outright: same-device reuse skips the modeled
      // cross-device window transfer no packing score can buy back.
      return Decide(request, loads, load.device);
    }
    // Tightest fit by free bytes. With unlimited budgets every device's free
    // space is "infinite" and packing is meaningless, so ties fall through to
    // load spreading (fewer reserved bytes, then fewer sessions) — otherwise
    // cold traffic on an unbudgeted fleet would all pile onto device 0.
    // Final tie: lowest device id (deterministic).
    const uint64_t free = load.FreeBytes();
    const bool better =
        best < 0 || free < best_free ||
        (free == best_free &&
         (load.reserved_bytes < best_reserved ||
          (load.reserved_bytes == best_reserved &&
           load.active_sessions < best_sessions)));
    if (better) {
      best = load.device;
      best_free = free;
      best_reserved = load.reserved_bytes;
      best_sessions = load.active_sessions;
    }
  }
  return Decide(request, loads, best);
}

namespace {

/// Gang-aware permanent rejection: true only when even the largest permitted
/// gang over the biggest-budget devices cannot hold the request against EMPTY
/// budgets. Any unlimited (budget 0) device means "fits eventually".
bool GangNeverFits(const PlacementRequest& request,
                   std::span<const DeviceLoad> loads, size_t k_max) {
  if (loads.empty()) return false;
  std::vector<uint64_t> budgets;
  budgets.reserve(loads.size());
  for (const DeviceLoad& load : loads) {
    if (load.budget_bytes == 0) return false;
    budgets.push_back(load.budget_bytes);
  }
  std::sort(budgets.begin(), budgets.end(), std::greater<uint64_t>());
  for (size_t k = 1; k <= std::min(k_max, budgets.size()); ++k) {
    const uint64_t share = (request.gpu_bytes + k - 1) / k;
    // budgets is descending, so the k-th device is the gang's tightest member.
    if (share <= budgets[k - 1]) return false;
  }
  return true;
}

}  // namespace

GangPlacement::GangPlacement(size_t max_gang_size,
                             std::shared_ptr<const PlacementPolicy> single)
    : max_gang_size_(max_gang_size),
      single_(single != nullptr ? std::move(single)
                                : std::make_shared<BestFitPlacement>()) {}

PlacementDecision GangPlacement::Place(const PlacementRequest& request,
                                       std::span<const DeviceLoad> loads,
                                       double tpot_slo_seconds) const {
  // Single device when it fits — gangs pay ring-exchange overhead, so they
  // are strictly the fallback for requests one device cannot hold.
  PlacementDecision solo = single_->Place(request, loads, tpot_slo_seconds);
  if (solo.placed()) return solo;

  const size_t k_max =
      std::min(max_gang_size_ == 0 ? loads.size() : max_gang_size_, loads.size());
  if (k_max >= 2) {
    // Candidate order: warm-shard affinity first (resuming on the device that
    // already holds the context's KV skips a window transfer), then most free
    // bytes, then lowest id — deterministic under the scheduler lock.
    std::vector<const DeviceLoad*> order;
    order.reserve(loads.size());
    for (const DeviceLoad& load : loads) order.push_back(&load);
    std::sort(order.begin(), order.end(),
              [&](const DeviceLoad* a, const DeviceLoad* b) {
                const bool aa = a->device == request.affinity_device;
                const bool bb = b->device == request.affinity_device;
                if (aa != bb) return aa;
                const uint64_t fa = a->FreeBytes();
                const uint64_t fb = b->FreeBytes();
                if (fa != fb) return fa > fb;
                return a->device < b->device;
              });
    for (size_t k = 2; k <= k_max; ++k) {
      // Smallest sufficient gang: every member holds an even 1/k share.
      PlacementRequest share = request;
      share.gpu_bytes = (request.gpu_bytes + k - 1) / k;
      share.step_seconds = request.step_seconds / static_cast<double>(k);
      share.affinity_device = -1;
      bool all_fit = true;
      for (size_t i = 0; i < k && all_fit; ++i) {
        all_fit = DeviceFits(share, *order[i], tpot_slo_seconds);
      }
      if (!all_fit) continue;
      PlacementDecision out;
      out.gang_members.reserve(k);
      for (size_t i = 0; i < k; ++i) out.gang_members.push_back(order[i]->device);
      // Primary = the affinity member when present (sorted to the front),
      // else the freest device; the rest ascend by id so the shard order is
      // deterministic.
      std::sort(out.gang_members.begin() + 1, out.gang_members.end());
      out.device = out.gang_members.front();
      return out;
    }
  }

  PlacementDecision out;
  out.never_fits = GangNeverFits(request, loads, std::max<size_t>(k_max, 1));
  return out;
}

PlacementDecision LeastLoadedPlacement::Place(const PlacementRequest& request,
                                              std::span<const DeviceLoad> loads,
                                              double tpot_slo_seconds) const {
  int best = -1;
  uint64_t best_free = 0;
  size_t best_sessions = 0;
  for (const DeviceLoad& load : loads) {
    if (!DeviceFits(request, load, tpot_slo_seconds)) continue;
    if (load.device == request.affinity_device) {
      return Decide(request, loads, load.device);
    }
    const uint64_t free = load.FreeBytes();
    if (best < 0 || free > best_free ||
        (free == best_free && load.active_sessions < best_sessions)) {
      best = load.device;
      best_free = free;
      best_sessions = load.active_sessions;
    }
  }
  return Decide(request, loads, best);
}

}  // namespace alaya
