#include "src/server/placement_policy.h"

namespace alaya {

bool DeviceFits(const PlacementRequest& request, const DeviceLoad& load,
                double tpot_slo_seconds) {
  if (load.budget_bytes > 0 &&
      load.reserved_bytes + request.gpu_bytes > load.budget_bytes) {
    return false;
  }
  // Per-device TPOT: a hot device stops accepting co-tenants, but an idle one
  // admits anything budget-feasible — mirrors the single-device scheduler's
  // "a request exceeding the SLO alone still runs, alone" rule, per device.
  if (tpot_slo_seconds > 0 && load.active_sessions > 0 &&
      load.reserved_step_seconds + request.step_seconds > tpot_slo_seconds) {
    return false;
  }
  return true;
}

namespace {

/// True when the request's footprint exceeds every device's budget outright —
/// waiting can never help, the scheduler's permanent-rejection signal.
bool NeverFits(const PlacementRequest& request, std::span<const DeviceLoad> loads) {
  for (const DeviceLoad& load : loads) {
    if (load.budget_bytes == 0 || request.gpu_bytes <= load.budget_bytes) {
      return false;
    }
  }
  return !loads.empty();
}

PlacementDecision Decide(const PlacementRequest& request,
                         std::span<const DeviceLoad> loads, int best) {
  PlacementDecision out;
  if (best >= 0) {
    out.device = best;
  } else {
    out.never_fits = NeverFits(request, loads);
  }
  return out;
}

}  // namespace

PlacementDecision BestFitPlacement::Place(const PlacementRequest& request,
                                          std::span<const DeviceLoad> loads,
                                          double tpot_slo_seconds) const {
  int best = -1;
  uint64_t best_free = 0;
  uint64_t best_reserved = 0;
  size_t best_sessions = 0;
  for (const DeviceLoad& load : loads) {
    if (!DeviceFits(request, load, tpot_slo_seconds)) continue;
    if (load.device == request.affinity_device) {
      // Warm KV wins outright: same-device reuse skips the modeled
      // cross-device window transfer no packing score can buy back.
      return Decide(request, loads, load.device);
    }
    // Tightest fit by free bytes. With unlimited budgets every device's free
    // space is "infinite" and packing is meaningless, so ties fall through to
    // load spreading (fewer reserved bytes, then fewer sessions) — otherwise
    // cold traffic on an unbudgeted fleet would all pile onto device 0.
    // Final tie: lowest device id (deterministic).
    const uint64_t free = load.FreeBytes();
    const bool better =
        best < 0 || free < best_free ||
        (free == best_free &&
         (load.reserved_bytes < best_reserved ||
          (load.reserved_bytes == best_reserved &&
           load.active_sessions < best_sessions)));
    if (better) {
      best = load.device;
      best_free = free;
      best_reserved = load.reserved_bytes;
      best_sessions = load.active_sessions;
    }
  }
  return Decide(request, loads, best);
}

PlacementDecision LeastLoadedPlacement::Place(const PlacementRequest& request,
                                              std::span<const DeviceLoad> loads,
                                              double tpot_slo_seconds) const {
  int best = -1;
  uint64_t best_free = 0;
  size_t best_sessions = 0;
  for (const DeviceLoad& load : loads) {
    if (!DeviceFits(request, load, tpot_slo_seconds)) continue;
    if (load.device == request.affinity_device) {
      return Decide(request, loads, load.device);
    }
    const uint64_t free = load.FreeBytes();
    if (best < 0 || free > best_free ||
        (free == best_free && load.active_sessions < best_sessions)) {
      best = load.device;
      best_free = free;
      best_sessions = load.active_sessions;
    }
  }
  return Decide(request, loads, best);
}

}  // namespace alaya
