// Pluggable device placement for admission control.
//
// With a sharded SimEnvironment every admitted request must land on exactly
// one device: the scheduler tracks per-device reserved KV bytes and per-device
// projected step seconds, and asks a PlacementPolicy to pick the device for
// the queue head. Policies are pure functions over a load snapshot — no locks,
// no clocks — so they are trivially testable and swappable per engine.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace alaya {

/// One device's admission-relevant load, snapshotted under the scheduler lock.
struct DeviceLoad {
  int device = 0;
  /// Per-device KV budget (0 = unlimited).
  uint64_t budget_bytes = 0;
  /// Sum of admitted requests' projected device bytes on this device.
  uint64_t reserved_bytes = 0;
  /// Sum of admitted requests' projected per-step device seconds here.
  double reserved_step_seconds = 0;
  /// Admitted requests currently placed on this device.
  size_t active_sessions = 0;

  uint64_t FreeBytes() const {
    if (budget_bytes == 0) return UINT64_MAX;
    return budget_bytes > reserved_bytes ? budget_bytes - reserved_bytes : 0;
  }
};

/// The candidate request, reduced to what placement needs.
struct PlacementRequest {
  /// Projected device-resident KV bytes at completion (AdmissionEstimate).
  uint64_t gpu_bytes = 0;
  /// Projected per-engine-step device seconds (EffectiveStepSeconds).
  double step_seconds = 0;
  /// Device where the request's best-prefix context currently resides, or -1
  /// when no stored context matched. Placing the session there reuses warm KV;
  /// anywhere else pays a modeled cross-device window transfer.
  int affinity_device = -1;
};

/// Outcome of one placement attempt.
struct PlacementDecision {
  /// Chosen device id; < 0 when the request cannot be placed right now.
  int device = -1;
  /// True when no device could EVER hold the request (its footprint exceeds
  /// every device's budget outright — for gang-aware policies, even the
  /// largest permitted gang's combined budget) — the scheduler's kNeverFits
  /// signal. When false and device < 0, the request waits for load to drain.
  bool never_fits = false;
  /// Context parallelism: when the request was placed across a device gang,
  /// every member id with the primary first (gang_members[0] == device).
  /// Empty for ordinary single-device placements.
  std::vector<int> gang_members;

  bool placed() const { return device >= 0; }
  bool gang() const { return gang_members.size() > 1; }
};

/// Strategy interface. Implementations must be deterministic in their inputs
/// (placement feeds the engine's reproducibility goldens) and must place a
/// feasible request on an all-idle fleet (the scheduler's no-starvation
/// guarantee leans on it). Called under the scheduler lock: keep it cheap and
/// reentrant (const, no shared mutable state).
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Picks a device for `request` given the fleet's `loads` and the optional
  /// per-device TPOT SLO (`tpot_slo_seconds`, 0 = none). A device "fits" when
  /// the request's bytes fit its remaining budget AND adding its step seconds
  /// keeps the device under the SLO — except that an idle (empty) device
  /// always fits a budget-feasible request, so an oversized-per-step request
  /// still runs somewhere alone instead of starving.
  virtual PlacementDecision Place(const PlacementRequest& request,
                                  std::span<const DeviceLoad> loads,
                                  double tpot_slo_seconds) const = 0;
};

/// Default policy: best-fit by free KV bytes, with an affinity bonus.
/// If the affinity device fits, it wins outright (warm KV beats packing —
/// cross-device reuse pays a modeled window transfer). Otherwise the fitting
/// device with the LEAST free bytes wins (classic best-fit: pack tight, keep
/// big devices free for big requests); free-byte ties — always, when budgets
/// are unlimited — spread by load instead (fewest reserved bytes, then
/// fewest active sessions), and the final tie breaks on the lowest device id,
/// so placement is deterministic.
class BestFitPlacement : public PlacementPolicy {
 public:
  PlacementDecision Place(const PlacementRequest& request,
                          std::span<const DeviceLoad> loads,
                          double tpot_slo_seconds) const override;
};

/// Spread policy: least-loaded first (most free bytes wins; ties on fewer
/// active sessions, then lowest id). Maximizes headroom per device — the
/// latency-friendly choice when contexts are cheap to move or requests are
/// uniform. Same affinity bonus as best-fit.
class LeastLoadedPlacement : public PlacementPolicy {
 public:
  PlacementDecision Place(const PlacementRequest& request,
                          std::span<const DeviceLoad> loads,
                          double tpot_slo_seconds) const override;
};

/// Gang-aware placement (context parallelism): single device when the request
/// fits one, the smallest sufficient gang otherwise. Single-device placement
/// delegates to an inner policy (BestFitPlacement by default, affinity bonus
/// included). When no single device fits, the request's footprint is split
/// evenly across candidate gangs of growing size k = 2..max_gang_size; the
/// first k whose top-k devices (most free bytes first, warm-shard affinity
/// preferred into the set and promoted to primary) each hold a 1/k share
/// wins. never_fits only fires when even the largest permitted gang of the
/// biggest-budget devices could not hold the request against EMPTY budgets —
/// so kNeverFits means "no gang can ever hold this", not "busy right now".
class GangPlacement : public PlacementPolicy {
 public:
  /// `max_gang_size` 0 means "the whole fleet". `single` is the policy used
  /// for requests that fit one device (null = BestFitPlacement).
  explicit GangPlacement(size_t max_gang_size = 0,
                         std::shared_ptr<const PlacementPolicy> single = nullptr);

  PlacementDecision Place(const PlacementRequest& request,
                          std::span<const DeviceLoad> loads,
                          double tpot_slo_seconds) const override;

 private:
  size_t max_gang_size_;
  std::shared_ptr<const PlacementPolicy> single_;
};

/// Shared fit predicate: budget + per-device TPOT (empty device exempt).
bool DeviceFits(const PlacementRequest& request, const DeviceLoad& load,
                double tpot_slo_seconds);

}  // namespace alaya
