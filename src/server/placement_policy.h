// Pluggable device placement for admission control.
//
// With a sharded SimEnvironment every admitted request must land on exactly
// one device: the scheduler tracks per-device reserved KV bytes and per-device
// projected step seconds, and asks a PlacementPolicy to pick the device for
// the queue head. Policies are pure functions over a load snapshot — no locks,
// no clocks — so they are trivially testable and swappable per engine.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

namespace alaya {

/// One device's admission-relevant load, snapshotted under the scheduler lock.
struct DeviceLoad {
  int device = 0;
  /// Per-device KV budget (0 = unlimited).
  uint64_t budget_bytes = 0;
  /// Sum of admitted requests' projected device bytes on this device.
  uint64_t reserved_bytes = 0;
  /// Sum of admitted requests' projected per-step device seconds here.
  double reserved_step_seconds = 0;
  /// Admitted requests currently placed on this device.
  size_t active_sessions = 0;

  uint64_t FreeBytes() const {
    if (budget_bytes == 0) return UINT64_MAX;
    return budget_bytes > reserved_bytes ? budget_bytes - reserved_bytes : 0;
  }
};

/// The candidate request, reduced to what placement needs.
struct PlacementRequest {
  /// Projected device-resident KV bytes at completion (AdmissionEstimate).
  uint64_t gpu_bytes = 0;
  /// Projected per-engine-step device seconds (EffectiveStepSeconds).
  double step_seconds = 0;
  /// Device where the request's best-prefix context currently resides, or -1
  /// when no stored context matched. Placing the session there reuses warm KV;
  /// anywhere else pays a modeled cross-device window transfer.
  int affinity_device = -1;
};

/// Outcome of one placement attempt.
struct PlacementDecision {
  /// Chosen device id; < 0 when the request cannot be placed right now.
  int device = -1;
  /// True when no device could EVER hold the request (its footprint exceeds
  /// every device's budget outright) — the scheduler's kNeverFits signal.
  /// When false and device < 0, the request simply waits for load to drain.
  bool never_fits = false;

  bool placed() const { return device >= 0; }
};

/// Strategy interface. Implementations must be deterministic in their inputs
/// (placement feeds the engine's reproducibility goldens) and must place a
/// feasible request on an all-idle fleet (the scheduler's no-starvation
/// guarantee leans on it). Called under the scheduler lock: keep it cheap and
/// reentrant (const, no shared mutable state).
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Picks a device for `request` given the fleet's `loads` and the optional
  /// per-device TPOT SLO (`tpot_slo_seconds`, 0 = none). A device "fits" when
  /// the request's bytes fit its remaining budget AND adding its step seconds
  /// keeps the device under the SLO — except that an idle (empty) device
  /// always fits a budget-feasible request, so an oversized-per-step request
  /// still runs somewhere alone instead of starving.
  virtual PlacementDecision Place(const PlacementRequest& request,
                                  std::span<const DeviceLoad> loads,
                                  double tpot_slo_seconds) const = 0;
};

/// Default policy: best-fit by free KV bytes, with an affinity bonus.
/// If the affinity device fits, it wins outright (warm KV beats packing —
/// cross-device reuse pays a modeled window transfer). Otherwise the fitting
/// device with the LEAST free bytes wins (classic best-fit: pack tight, keep
/// big devices free for big requests); free-byte ties — always, when budgets
/// are unlimited — spread by load instead (fewest reserved bytes, then
/// fewest active sessions), and the final tie breaks on the lowest device id,
/// so placement is deterministic.
class BestFitPlacement : public PlacementPolicy {
 public:
  PlacementDecision Place(const PlacementRequest& request,
                          std::span<const DeviceLoad> loads,
                          double tpot_slo_seconds) const override;
};

/// Spread policy: least-loaded first (most free bytes wins; ties on fewer
/// active sessions, then lowest id). Maximizes headroom per device — the
/// latency-friendly choice when contexts are cheap to move or requests are
/// uniform. Same affinity bonus as best-fit.
class LeastLoadedPlacement : public PlacementPolicy {
 public:
  PlacementDecision Place(const PlacementRequest& request,
                          std::span<const DeviceLoad> loads,
                          double tpot_slo_seconds) const override;
};

/// Shared fit predicate: budget + per-device TPOT (empty device exempt).
bool DeviceFits(const PlacementRequest& request, const DeviceLoad& load,
                double tpot_slo_seconds);

}  // namespace alaya
