#include "src/server/request_scheduler.h"

#include <algorithm>
#include <limits>

namespace alaya {

namespace {

/// Adds (+1) or removes (-1) one request's reservation shares on `loads`: an
/// even byte split across the gang (integer division, remainder on the primary
/// so shares sum EXACTLY to the estimate), an even step-seconds split, and one
/// active session per member. With a single member this is bit-identical to
/// the historical single-device arithmetic (full bytes, full step seconds).
/// AdviseVictimsLocked runs the same function over its simulated loads, so the
/// advice subtraction can never drift from the real bookkeeping.
void ApplyReservationShares(std::vector<DeviceLoad>* loads,
                            const std::vector<int>& members,
                            const AdmissionEstimate& e, int sign) {
  const size_t k = members.size();
  if (k == 0) return;
  const uint64_t base = e.gpu_bytes / k;
  const uint64_t remainder = e.gpu_bytes % k;
  const double step_share = e.EffectiveStepSeconds() / static_cast<double>(k);
  for (size_t i = 0; i < k; ++i) {
    DeviceLoad& load = (*loads)[static_cast<size_t>(members[i])];
    const uint64_t bytes = base + (i == 0 ? remainder : 0);
    if (sign > 0) {
      load.reserved_bytes += bytes;
      load.reserved_step_seconds += step_share;
      ++load.active_sessions;
    } else {
      load.reserved_bytes -= bytes;
      load.reserved_step_seconds -= step_share;
      --load.active_sessions;
    }
  }
}

}  // namespace

RequestScheduler::RequestScheduler(const ModelConfig& model,
                                   const WindowConfig& window, const CostModel& cost,
                                   const RequestSchedulerOptions& options)
    : model_(model), window_(window), cost_(cost), options_(options) {
  // A zero cap would deadlock Admit; one session must always be able to run.
  options_.max_concurrent_sessions = std::max<size_t>(1, options_.max_concurrent_sessions);
  options_.prefill_chunk_tokens = std::max<size_t>(1, options_.prefill_chunk_tokens);
  options_.min_prefill_tokens = std::max<size_t>(1, options_.min_prefill_tokens);
  options_.devices = std::max<size_t>(1, options_.devices);
  options_.max_gang_size =
      std::clamp<size_t>(options_.max_gang_size, 1, options_.devices);
  placement_ = options_.placement != nullptr
                   ? options_.placement
                   : std::make_shared<const BestFitPlacement>();
  if (options_.max_gang_size > 1) {
    // Gang admission: requests that fit one device still place through the
    // inner policy; oversized ones span the smallest sufficient gang.
    placement_ =
        std::make_shared<const GangPlacement>(options_.max_gang_size, placement_);
  }
  // FairSharePolicy is a safe default: single-tenant, uniform-priority,
  // no-deadline traffic (everything that existed before policies) orders
  // exactly FIFO under it.
  policy_ = options_.policy != nullptr ? options_.policy
                                       : std::make_shared<const FairSharePolicy>();
  loads_.resize(options_.devices);
  for (size_t d = 0; d < loads_.size(); ++d) {
    loads_[d].device = static_cast<int>(d);
    loads_[d].budget_bytes = options_.gpu_budget_bytes;
  }
}

AdmissionEstimate RequestScheduler::Estimate(const ServingRequest& request,
                                             size_t reused_prefix) const {
  AdmissionEstimate e;
  const size_t total = request.prompt.size() + request.max_new_tokens;
  reused_prefix = std::min(reused_prefix, request.prompt.size());
  e.prefill_tokens = request.prompt.size() - reused_prefix;

  // Device-resident tokens at completion: the window over the full context,
  // plus whatever part of the session-local tail the window does not already
  // cover. The local tail is the prefilled prompt suffix plus every decoded
  // token — late materialization keeps all of it on device.
  const size_t local_tokens = e.prefill_tokens + request.max_new_tokens;
  const size_t window_tokens = window_.Size(total);
  const size_t gpu_tokens = std::min(total, std::max(window_tokens, local_tokens));
  e.gpu_bytes = static_cast<uint64_t>(gpu_tokens) * model_.KvBytesPerToken();

  // Per-step modeled device time at completion, mirroring the sparse path in
  // Session::AttendHead: one window+tail attention kernel per (layer, head)
  // plus the data-centric partial-state transfer.
  const double per_head =
      cost_.GpuAttentionSeconds(4.0 * static_cast<double>(gpu_tokens) *
                                model_.head_dim) +
      cost_.TransferSeconds((model_.head_dim + 2) * sizeof(float));
  e.step_gpu_seconds = per_head * model_.num_q_heads * model_.num_layers;

  // Prefill phase: each prompt token costs one full-attention pass over the
  // context visible at that point; project with the final prompt length as the
  // (tight for long prompts) upper bound. Per engine step the session pushes
  // one chunk, so that is its per-step contribution while prefilling.
  if (e.prefill_tokens > 0) {
    const double per_token =
        cost_.GpuAttentionSeconds(4.0 * static_cast<double>(request.prompt.size()) *
                                  model_.head_dim) *
        model_.num_q_heads * model_.num_layers;
    // Admission reserves at chunk granularity: a per-step token budget caps
    // the largest chunk a step can actually grant, so the reservation (and
    // the TPOT SLO check built on it) reflects the real per-step cost, not
    // the unthrottled chunk size.
    size_t chunk_cap = options_.prefill_chunk_tokens;
    if (options_.step_token_budget > 0) {
      chunk_cap = std::min(chunk_cap, options_.step_token_budget);
    }
    const size_t chunk = std::min(chunk_cap, e.prefill_tokens);
    e.prefill_step_gpu_seconds = per_token * static_cast<double>(chunk);
    e.prefill_total_gpu_seconds = per_token * static_cast<double>(e.prefill_tokens);
  }
  // The fair-share cost of admitting this request: everything it will run.
  e.total_gpu_seconds = e.prefill_total_gpu_seconds +
                        e.step_gpu_seconds * static_cast<double>(request.max_new_tokens);
  return e;
}

AdmissionEstimate RequestScheduler::EstimateResumed(const ServingRequest& request,
                                                    size_t reused_prefix,
                                                    size_t prefill_pos,
                                                    size_t steps_done) const {
  // Full completion footprint: the detached KV (prefilled suffix + decoded
  // tail so far) returns to the device in full, so gpu_bytes and the per-step
  // decode cost are unchanged from the original estimate.
  AdmissionEstimate e = Estimate(request, reused_prefix);
  prefill_pos = std::min(prefill_pos, request.prompt.size());
  const size_t remaining_prefill = request.prompt.size() - prefill_pos;
  if (e.prefill_tokens > 0) {
    const double per_token =
        e.prefill_total_gpu_seconds / static_cast<double>(e.prefill_tokens);
    e.prefill_total_gpu_seconds = per_token * static_cast<double>(remaining_prefill);
    if (remaining_prefill == 0) e.prefill_step_gpu_seconds = 0;
  }
  e.prefill_tokens = remaining_prefill;
  const size_t steps_left =
      request.max_new_tokens - std::min(steps_done, request.max_new_tokens);
  // Only remaining work counts toward fair-share: the finished slice was
  // already charged when the request first admitted.
  e.total_gpu_seconds =
      e.prefill_total_gpu_seconds + e.step_gpu_seconds * static_cast<double>(steps_left);
  return e;
}

RequestScheduler::StepPlan RequestScheduler::PlanStep(
    size_t decoding_sessions, std::span<const size_t> prefill_remaining) const {
  StepPlan plan;
  plan.decode_tokens = decoding_sessions;  // Decode always runs in full.
  size_t left = options_.step_token_budget == 0
                    ? std::numeric_limits<size_t>::max()
                    : options_.step_token_budget;
  left -= std::min(left, decoding_sessions);
  plan.chunks.reserve(prefill_remaining.size());
  for (size_t i = 0; i < prefill_remaining.size(); ++i) {
    const size_t need = prefill_remaining[i];
    size_t grant = std::min({options_.prefill_chunk_tokens, need, left});
    if (i == 0 && need > 0) {
      // Forward-progress floor: even a decode-saturated budget funds the head
      // prefilling session, or prefill would livelock behind a full batch.
      const size_t floor =
          std::min({need, options_.prefill_chunk_tokens, options_.min_prefill_tokens});
      grant = std::max(grant, floor);
    }
    left -= std::min(left, grant);
    plan.chunks.push_back(grant);
  }
  plan.budget_left = left;
  return plan;
}

size_t RequestScheduler::GrantChunk(size_t remaining_need, size_t* budget_left) const {
  // Mid-step admissions draw only from the step's unspent budget — no floor;
  // a request that gets nothing now is funded at the next step's PlanStep.
  const size_t grant =
      std::min({options_.prefill_chunk_tokens, remaining_need, *budget_left});
  *budget_left -= grant;
  return grant;
}

AdmissionEstimate RequestScheduler::Estimate(const ServingRequest& request) const {
  const size_t reused =
      options_.prefix_probe != nullptr ? options_.prefix_probe(request.prompt) : 0;
  return Estimate(request, reused);
}

PlacementDecision RequestScheduler::PlaceLocked(const Admitted& item) const {
  PlacementRequest preq;
  preq.gpu_bytes = item.estimate.gpu_bytes;
  preq.step_seconds = item.estimate.EffectiveStepSeconds();
  preq.affinity_device = item.affinity_device;  // Probed once, at Enqueue.
  return placement_->Place(preq, loads_, options_.tpot_slo_seconds);
}

std::chrono::steady_clock::time_point RequestScheduler::Admitted::Deadline() const {
  if (request.deadline_seconds <= 0) {
    return std::chrono::steady_clock::time_point::max();
  }
  // Converting double seconds into the clock's integer duration is UB once it
  // overflows (~292 years in nanoseconds); a caller passing an astronomically
  // large budget means "no deadline", so treat it as one instead of wrapping
  // into the past and expiring instantly. Half the representable range leaves
  // headroom for the addition to submit_time.
  using ClockDuration = std::chrono::steady_clock::duration;
  const double ticks = request.deadline_seconds *
                       static_cast<double>(ClockDuration::period::den) /
                       static_cast<double>(ClockDuration::period::num);
  if (ticks >= static_cast<double>(std::numeric_limits<ClockDuration::rep>::max() / 2)) {
    return std::chrono::steady_clock::time_point::max();
  }
  return submit_time + std::chrono::duration_cast<ClockDuration>(
                           std::chrono::duration<double>(request.deadline_seconds));
}

RequestScheduler::EnqueuePreflight RequestScheduler::Preflight(
    const ServingRequest& request) const {
  EnqueuePreflight pre;
  if (options_.placement_probe != nullptr) {
    // One trie walk, one store snapshot: estimate and affinity agree on the
    // matched context by construction.
    const RequestSchedulerOptions::PrefixProbeResult probe =
        options_.placement_probe(request.prompt);
    pre.estimate = Estimate(request, probe.matched);
    pre.affinity_device = probe.affinity_device;
    return pre;
  }
  pre.estimate = Estimate(request);
  pre.affinity_device = options_.affinity_probe != nullptr
                            ? options_.affinity_probe(request.prompt)
                            : -1;
  return pre;
}

Result<uint64_t> RequestScheduler::Enqueue(ServingRequest request) {
  const EnqueuePreflight pre = Preflight(request);
  return Enqueue(std::move(request), pre);
}

Result<uint64_t> RequestScheduler::Enqueue(ServingRequest request,
                                           const EnqueuePreflight& pre) {
  if (request.fill_step == nullptr) {
    return Status::InvalidArgument("request has no fill_step");
  }
  if (request.max_new_tokens == 0) {
    return Status::InvalidArgument("max_new_tokens must be positive");
  }
  const AdmissionEstimate& e = pre.estimate;
  std::lock_guard<std::mutex> lk(mu_);
  // Permanent-rejection gate. Budgets are per-device and uniform, so without
  // gangs exceeding one budget means exceeding every device's; with gangs the
  // footprint shards across up to max_gang_size members, and only a request
  // that outgrows even the largest permitted gang's combined budget can never
  // be placed.
  const uint64_t capacity_bytes =
      options_.gpu_budget_bytes * static_cast<uint64_t>(options_.max_gang_size);
  if (options_.gpu_budget_bytes > 0 && e.gpu_bytes > capacity_bytes) {
    return Status::NeverFits(
        "request footprint (prefilled prompt suffix + window + decoded tail) "
        "exceeds the per-device GPU budget (and the largest permitted device "
        "gang) even running alone");
  }
  if (pending_.size() >= options_.max_queue_depth) {
    // Retryable: the backlog drains as sessions finish.
    return Status::BacklogFull("admission queue is full");
  }
  Admitted item;
  item.id = next_id_++;
  item.priority = request.priority;
  item.tenant_id = request.tenant_id;
  item.request = std::move(request);
  item.estimate = e;
  item.affinity_device = pre.affinity_device;
  item.submit_time = std::chrono::steady_clock::now();
  const uint64_t id = item.id;
  EnsureTenantLocked(item.tenant_id);
  pending_.push_back(std::move(item));
  return id;
}

void RequestScheduler::EnsureTenantLocked(uint64_t tenant_id) {
  auto [it, inserted] = ledger_.try_emplace(tenant_id);
  if (inserted) {
    const auto w = options_.tenant_weights.find(tenant_id);
    it->second.weight =
        (w != options_.tenant_weights.end() && w->second > 0) ? w->second : 1.0;
  }
}

void RequestScheduler::ResetDeficitIfDrainedLocked(uint64_t tenant_id) {
  for (const Admitted& p : pending_) {
    if (p.tenant_id == tenant_id) return;
  }
  auto it = ledger_.find(tenant_id);
  if (it != ledger_.end()) it->second.deficit_seconds = 0;
}

QueuedRequestView RequestScheduler::ViewOfLocked(const Admitted& item) const {
  QueuedRequestView v;
  v.id = item.id;
  v.priority = item.priority;
  v.tenant_id = item.tenant_id;
  v.deadline = item.Deadline();
  v.cost_seconds = item.estimate.total_gpu_seconds;
  v.resume = item.resume;
  return v;
}

void RequestScheduler::Requeue(Admitted item) {
  std::lock_guard<std::mutex> lk(mu_);
  EnsureTenantLocked(item.tenant_id);
  pending_.push_back(std::move(item));
}

void RequestScheduler::AdviseVictimsLocked(const Admitted& blocked,
                                           std::vector<uint64_t>* victims) const {
  std::vector<RunningRequestView> running;
  running.reserve(active_.size());
  for (const auto& [id, entry] : active_) {
    RunningRequestView r;
    r.id = id;
    r.priority = entry.priority;
    r.tenant_id = entry.tenant_id;
    r.device = entry.device;
    r.gpu_bytes = entry.estimate.gpu_bytes;
    r.step_seconds = entry.estimate.EffectiveStepSeconds();
    r.remaining_seconds =
        std::max(0.0, entry.estimate.total_gpu_seconds - entry.consumed_seconds);
    r.deadline = entry.deadline;
    r.admit_order = entry.admit_order;
    running.push_back(r);
  }
  const std::vector<uint64_t> ranked =
      policy_->RankVictims(ViewOfLocked(blocked), running);
  if (ranked.empty()) return;

  // Simulate suspending a growing prefix of the ranking until the blocked
  // request would both have a slot and place on some device. Advice only:
  // nothing is released here — capacity frees when the engine actually
  // suspends the victims and calls back.
  std::vector<DeviceLoad> sim = loads_;
  size_t sim_active = active_.size();
  PlacementRequest preq;
  preq.gpu_bytes = blocked.estimate.gpu_bytes;
  preq.step_seconds = blocked.estimate.EffectiveStepSeconds();
  preq.affinity_device = blocked.affinity_device;
  std::vector<uint64_t> chosen;
  for (const uint64_t vid : ranked) {
    const auto it = active_.find(vid);
    if (it == active_.end()) continue;
    ApplyReservationShares(&sim, it->second.gang, it->second.estimate, -1);
    --sim_active;
    chosen.push_back(vid);
    if (sim_active < options_.max_concurrent_sessions &&
        placement_->Place(preq, sim, options_.tpot_slo_seconds).placed()) {
      victims->insert(victims->end(), chosen.begin(), chosen.end());
      return;
    }
  }
  // Even suspending every ranked victim would not make room: advise nothing
  // (the blocked request waits for ordinary drain instead).
}

std::vector<RequestScheduler::Admitted> RequestScheduler::Admit(
    std::vector<uint64_t>* preempt_victims) {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<Admitted> out;
  const auto now = std::chrono::steady_clock::now();
  while (!pending_.empty()) {
    // Policy views in arrival order (index 0 = FIFO head), rebuilt per pick:
    // each admission mutates the ledger the next pick depends on. Queue depth
    // is capped (max_queue_depth), so the rebuild is cheap.
    std::vector<QueuedRequestView> views;
    views.reserve(pending_.size());
    for (const Admitted& p : pending_) views.push_back(ViewOfLocked(p));
    const size_t pick = policy_->PickNext(views, ledger_);
    if (pick >= pending_.size()) break;
    Admitted& cand = pending_[pick];

    // Expired-at-pick sweep: a doomed request must not absorb a deficit grant
    // or block the queue — set it aside (TakeExpired) and re-pick. This also
    // covers expiries the step-boundary RemoveQueuedExpired sweep has not
    // seen yet because the policy reordered the queue.
    if (cand.request.deadline_seconds > 0 && cand.Deadline() <= now) {
      const uint64_t tenant = cand.tenant_id;
      expired_.push_back(std::move(cand));
      pending_.erase(pending_.begin() + static_cast<long>(pick));
      ResetDeficitIfDrainedLocked(tenant);
      continue;
    }

    const bool slots_full = active_.size() >= options_.max_concurrent_sessions;
    PlacementDecision placed;
    if (!slots_full) {
      // Enqueue guarantees every queued request fits an idle device, and the
      // placement policy must place a feasible request on an all-idle fleet,
      // so the pick is always admissible once the system drains: no
      // starvation.
      placed = PlaceLocked(cand);
    }
    if (slots_full || !placed.placed()) {
      if (!slots_full && placed.never_fits) {
        // Permanently unplaceable (a custom policy's verdict): remove it so
        // it cannot block the queue forever — rejection, not bypass.
        const uint64_t tenant = cand.tenant_id;
        never_fits_.push_back(std::move(cand));
        pending_.erase(pending_.begin() + static_cast<long>(pick));
        ResetDeficitIfDrainedLocked(tenant);
        continue;
      }
      // Blocked pick: optionally advise preemption, then stop — no bypass
      // past the policy's choice (admission order stays deterministic).
      if (preempt_victims != nullptr && options_.preemption) {
        AdviseVictimsLocked(cand, preempt_victims);
      }
      break;
    }
    policy_->OnAdmitted(views, pick, &ledger_);
    cand.device = placed.device;
    cand.gang = placed.gang() ? placed.gang_members
                              : std::vector<int>{placed.device};
    ApplyReservationLocked(cand.gang, cand.estimate, +1);
    ActiveEntry entry;
    entry.estimate = cand.estimate;
    entry.device = placed.device;
    entry.gang = cand.gang;
    entry.priority = cand.priority;
    entry.tenant_id = cand.tenant_id;
    entry.deadline = cand.Deadline();
    entry.admit_order = admit_seq_++;
    active_[cand.id] = std::move(entry);
    const uint64_t tenant = cand.tenant_id;
    out.push_back(std::move(cand));
    pending_.erase(pending_.begin() + static_cast<long>(pick));
    ResetDeficitIfDrainedLocked(tenant);
  }
  return out;
}

void RequestScheduler::UpdateReservation(uint64_t id, const AdmissionEstimate& actual) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = active_.find(id);
  if (it == active_.end()) return;
  // Swap the shares atomically under the lock; the gang membership is fixed
  // for the life of the admission, only the footprint estimate moves.
  ApplyReservationLocked(it->second.gang, it->second.estimate, -1);
  it->second.estimate = actual;
  ApplyReservationLocked(it->second.gang, actual, +1);
}

void RequestScheduler::RecordProgress(uint64_t id, double modeled_seconds) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = active_.find(id);
  if (it == active_.end()) return;
  it->second.consumed_seconds += modeled_seconds;
}

std::vector<RequestScheduler::Admitted> RequestScheduler::TakeNeverFits() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<Admitted> out;
  out.swap(never_fits_);
  return out;
}

std::vector<RequestScheduler::Admitted> RequestScheduler::TakeExpired() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<Admitted> out;
  out.swap(expired_);
  return out;
}

TenantLedger RequestScheduler::TenantLedgerSnapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ledger_;
}

std::optional<RequestScheduler::Admitted> RequestScheduler::RemoveQueued(
    uint64_t id, bool include_resume) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->id == id) {
      if (it->resume && !include_resume) return std::nullopt;
      Admitted out = std::move(*it);
      pending_.erase(it);
      return out;
    }
  }
  return std::nullopt;
}

std::vector<RequestScheduler::Admitted> RequestScheduler::RemoveQueuedExpired(
    std::chrono::steady_clock::time_point now) {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<Admitted> out;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->request.deadline_seconds > 0 && it->Deadline() <= now) {
      out.push_back(std::move(*it));
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

std::vector<RequestScheduler::Admitted> RequestScheduler::TakeAllQueued() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<Admitted> out(std::make_move_iterator(pending_.begin()),
                            std::make_move_iterator(pending_.end()));
  pending_.clear();
  return out;
}

void RequestScheduler::Release(uint64_t id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = active_.find(id);
  if (it == active_.end()) return;
  ApplyReservationLocked(it->second.gang, it->second.estimate, -1);
  active_.erase(it);
}

void RequestScheduler::ApplyReservationLocked(const std::vector<int>& members,
                                              const AdmissionEstimate& estimate,
                                              int sign) {
  ApplyReservationShares(&loads_, members, estimate, sign);
}

size_t RequestScheduler::queued() const {
  std::lock_guard<std::mutex> lk(mu_);
  return pending_.size();
}

size_t RequestScheduler::active() const {
  std::lock_guard<std::mutex> lk(mu_);
  return active_.size();
}

uint64_t RequestScheduler::reserved_gpu_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t total = 0;
  for (const DeviceLoad& load : loads_) total += load.reserved_bytes;
  return total;
}

double RequestScheduler::reserved_step_seconds() const {
  std::lock_guard<std::mutex> lk(mu_);
  double total = 0;
  for (const DeviceLoad& load : loads_) total += load.reserved_step_seconds;
  return total;
}

std::vector<DeviceLoad> RequestScheduler::DeviceLoads() const {
  std::lock_guard<std::mutex> lk(mu_);
  return loads_;
}

}  // namespace alaya
