#include "src/server/request_scheduler.h"

#include <algorithm>
#include <limits>

namespace alaya {

RequestScheduler::RequestScheduler(const ModelConfig& model,
                                   const WindowConfig& window, const CostModel& cost,
                                   const RequestSchedulerOptions& options)
    : model_(model), window_(window), cost_(cost), options_(options) {
  // A zero cap would deadlock Admit; one session must always be able to run.
  options_.max_concurrent_sessions = std::max<size_t>(1, options_.max_concurrent_sessions);
  options_.prefill_chunk_tokens = std::max<size_t>(1, options_.prefill_chunk_tokens);
  options_.min_prefill_tokens = std::max<size_t>(1, options_.min_prefill_tokens);
  options_.devices = std::max<size_t>(1, options_.devices);
  placement_ = options_.placement != nullptr
                   ? options_.placement
                   : std::make_shared<const BestFitPlacement>();
  loads_.resize(options_.devices);
  for (size_t d = 0; d < loads_.size(); ++d) {
    loads_[d].device = static_cast<int>(d);
    loads_[d].budget_bytes = options_.gpu_budget_bytes;
  }
}

AdmissionEstimate RequestScheduler::Estimate(const ServingRequest& request,
                                             size_t reused_prefix) const {
  AdmissionEstimate e;
  const size_t total = request.prompt.size() + request.max_new_tokens;
  reused_prefix = std::min(reused_prefix, request.prompt.size());
  e.prefill_tokens = request.prompt.size() - reused_prefix;

  // Device-resident tokens at completion: the window over the full context,
  // plus whatever part of the session-local tail the window does not already
  // cover. The local tail is the prefilled prompt suffix plus every decoded
  // token — late materialization keeps all of it on device.
  const size_t local_tokens = e.prefill_tokens + request.max_new_tokens;
  const size_t window_tokens = window_.Size(total);
  const size_t gpu_tokens = std::min(total, std::max(window_tokens, local_tokens));
  e.gpu_bytes = static_cast<uint64_t>(gpu_tokens) * model_.KvBytesPerToken();

  // Per-step modeled device time at completion, mirroring the sparse path in
  // Session::AttendHead: one window+tail attention kernel per (layer, head)
  // plus the data-centric partial-state transfer.
  const double per_head =
      cost_.GpuAttentionSeconds(4.0 * static_cast<double>(gpu_tokens) *
                                model_.head_dim) +
      cost_.TransferSeconds((model_.head_dim + 2) * sizeof(float));
  e.step_gpu_seconds = per_head * model_.num_q_heads * model_.num_layers;

  // Prefill phase: each prompt token costs one full-attention pass over the
  // context visible at that point; project with the final prompt length as the
  // (tight for long prompts) upper bound. Per engine step the session pushes
  // one chunk, so that is its per-step contribution while prefilling.
  if (e.prefill_tokens > 0) {
    const double per_token =
        cost_.GpuAttentionSeconds(4.0 * static_cast<double>(request.prompt.size()) *
                                  model_.head_dim) *
        model_.num_q_heads * model_.num_layers;
    // Admission reserves at chunk granularity: a per-step token budget caps
    // the largest chunk a step can actually grant, so the reservation (and
    // the TPOT SLO check built on it) reflects the real per-step cost, not
    // the unthrottled chunk size.
    size_t chunk_cap = options_.prefill_chunk_tokens;
    if (options_.step_token_budget > 0) {
      chunk_cap = std::min(chunk_cap, options_.step_token_budget);
    }
    const size_t chunk = std::min(chunk_cap, e.prefill_tokens);
    e.prefill_step_gpu_seconds = per_token * static_cast<double>(chunk);
    e.prefill_total_gpu_seconds = per_token * static_cast<double>(e.prefill_tokens);
  }
  return e;
}

RequestScheduler::StepPlan RequestScheduler::PlanStep(
    size_t decoding_sessions, std::span<const size_t> prefill_remaining) const {
  StepPlan plan;
  plan.decode_tokens = decoding_sessions;  // Decode always runs in full.
  size_t left = options_.step_token_budget == 0
                    ? std::numeric_limits<size_t>::max()
                    : options_.step_token_budget;
  left -= std::min(left, decoding_sessions);
  plan.chunks.reserve(prefill_remaining.size());
  for (size_t i = 0; i < prefill_remaining.size(); ++i) {
    const size_t need = prefill_remaining[i];
    size_t grant = std::min({options_.prefill_chunk_tokens, need, left});
    if (i == 0 && need > 0) {
      // Forward-progress floor: even a decode-saturated budget funds the head
      // prefilling session, or prefill would livelock behind a full batch.
      const size_t floor =
          std::min({need, options_.prefill_chunk_tokens, options_.min_prefill_tokens});
      grant = std::max(grant, floor);
    }
    left -= std::min(left, grant);
    plan.chunks.push_back(grant);
  }
  plan.budget_left = left;
  return plan;
}

size_t RequestScheduler::GrantChunk(size_t remaining_need, size_t* budget_left) const {
  // Mid-step admissions draw only from the step's unspent budget — no floor;
  // a request that gets nothing now is funded at the next step's PlanStep.
  const size_t grant =
      std::min({options_.prefill_chunk_tokens, remaining_need, *budget_left});
  *budget_left -= grant;
  return grant;
}

AdmissionEstimate RequestScheduler::Estimate(const ServingRequest& request) const {
  const size_t reused =
      options_.prefix_probe != nullptr ? options_.prefix_probe(request.prompt) : 0;
  return Estimate(request, reused);
}

PlacementDecision RequestScheduler::PlaceLocked(const Admitted& item) const {
  PlacementRequest preq;
  preq.gpu_bytes = item.estimate.gpu_bytes;
  preq.step_seconds = item.estimate.EffectiveStepSeconds();
  preq.affinity_device = item.affinity_device;  // Probed once, at Enqueue.
  return placement_->Place(preq, loads_, options_.tpot_slo_seconds);
}

std::chrono::steady_clock::time_point RequestScheduler::Admitted::Deadline() const {
  if (request.deadline_seconds <= 0) {
    return std::chrono::steady_clock::time_point::max();
  }
  // Converting double seconds into the clock's integer duration is UB once it
  // overflows (~292 years in nanoseconds); a caller passing an astronomically
  // large budget means "no deadline", so treat it as one instead of wrapping
  // into the past and expiring instantly. Half the representable range leaves
  // headroom for the addition to submit_time.
  using ClockDuration = std::chrono::steady_clock::duration;
  const double ticks = request.deadline_seconds *
                       static_cast<double>(ClockDuration::period::den) /
                       static_cast<double>(ClockDuration::period::num);
  if (ticks >= static_cast<double>(std::numeric_limits<ClockDuration::rep>::max() / 2)) {
    return std::chrono::steady_clock::time_point::max();
  }
  return submit_time + std::chrono::duration_cast<ClockDuration>(
                           std::chrono::duration<double>(request.deadline_seconds));
}

RequestScheduler::EnqueuePreflight RequestScheduler::Preflight(
    const ServingRequest& request) const {
  EnqueuePreflight pre;
  if (options_.placement_probe != nullptr) {
    // One trie walk, one store snapshot: estimate and affinity agree on the
    // matched context by construction.
    const RequestSchedulerOptions::PrefixProbeResult probe =
        options_.placement_probe(request.prompt);
    pre.estimate = Estimate(request, probe.matched);
    pre.affinity_device = probe.affinity_device;
    return pre;
  }
  pre.estimate = Estimate(request);
  pre.affinity_device = options_.affinity_probe != nullptr
                            ? options_.affinity_probe(request.prompt)
                            : -1;
  return pre;
}

Result<uint64_t> RequestScheduler::Enqueue(ServingRequest request) {
  const EnqueuePreflight pre = Preflight(request);
  return Enqueue(std::move(request), pre);
}

Result<uint64_t> RequestScheduler::Enqueue(ServingRequest request,
                                           const EnqueuePreflight& pre) {
  if (request.fill_step == nullptr) {
    return Status::InvalidArgument("request has no fill_step");
  }
  if (request.max_new_tokens == 0) {
    return Status::InvalidArgument("max_new_tokens must be positive");
  }
  const AdmissionEstimate& e = pre.estimate;
  std::lock_guard<std::mutex> lk(mu_);
  if (options_.gpu_budget_bytes > 0 && e.gpu_bytes > options_.gpu_budget_bytes) {
    // Permanent: no amount of waiting shrinks the footprint. Budgets are
    // per-device and uniform, so exceeding one budget means exceeding every
    // device's — the placement policy could never find a home for it.
    return Status::NeverFits(
        "request footprint (prefilled prompt suffix + window + decoded tail) "
        "exceeds the per-device GPU budget even running alone");
  }
  if (pending_.size() >= options_.max_queue_depth) {
    // Retryable: the backlog drains as sessions finish.
    return Status::BacklogFull("admission queue is full");
  }
  Admitted item;
  item.id = next_id_++;
  item.request = std::move(request);
  item.estimate = e;
  item.affinity_device = pre.affinity_device;
  item.submit_time = std::chrono::steady_clock::now();
  const uint64_t id = item.id;
  pending_.push_back(std::move(item));
  return id;
}

std::vector<RequestScheduler::Admitted> RequestScheduler::Admit() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<Admitted> out;
  while (!pending_.empty()) {
    if (active_.size() >= options_.max_concurrent_sessions) break;
    Admitted& head = pending_.front();
    // Enqueue guarantees every queued request fits an idle device, and the
    // placement policy must place a feasible request on an all-idle fleet, so
    // the head is always admissible once the system drains: no starvation.
    const PlacementDecision placed = PlaceLocked(head);
    if (!placed.placed()) {
      if (placed.never_fits) {
        // Permanently unplaceable (a custom policy's verdict): remove it so
        // it cannot block the queue forever — rejection, not bypass.
        never_fits_.push_back(std::move(head));
        pending_.pop_front();
        continue;
      }
      break;  // FIFO: no bypass past a blocked head.
    }
    DeviceLoad& load = loads_[static_cast<size_t>(placed.device)];
    load.reserved_bytes += head.estimate.gpu_bytes;
    load.reserved_step_seconds += head.estimate.EffectiveStepSeconds();
    ++load.active_sessions;
    head.device = placed.device;
    active_[head.id] = ActiveEntry{head.estimate, placed.device};
    out.push_back(std::move(head));
    pending_.pop_front();
  }
  return out;
}

void RequestScheduler::UpdateReservation(uint64_t id, const AdmissionEstimate& actual) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = active_.find(id);
  if (it == active_.end()) return;
  DeviceLoad& load = loads_[static_cast<size_t>(it->second.device)];
  load.reserved_bytes -= it->second.estimate.gpu_bytes;
  load.reserved_step_seconds -= it->second.estimate.EffectiveStepSeconds();
  it->second.estimate = actual;
  load.reserved_bytes += actual.gpu_bytes;
  load.reserved_step_seconds += actual.EffectiveStepSeconds();
}

std::vector<RequestScheduler::Admitted> RequestScheduler::TakeNeverFits() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<Admitted> out;
  out.swap(never_fits_);
  return out;
}

std::optional<RequestScheduler::Admitted> RequestScheduler::RemoveQueued(uint64_t id) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->id == id) {
      Admitted out = std::move(*it);
      pending_.erase(it);
      return out;
    }
  }
  return std::nullopt;
}

std::vector<RequestScheduler::Admitted> RequestScheduler::RemoveQueuedExpired(
    std::chrono::steady_clock::time_point now) {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<Admitted> out;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->request.deadline_seconds > 0 && it->Deadline() <= now) {
      out.push_back(std::move(*it));
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

std::vector<RequestScheduler::Admitted> RequestScheduler::TakeAllQueued() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<Admitted> out(std::make_move_iterator(pending_.begin()),
                            std::make_move_iterator(pending_.end()));
  pending_.clear();
  return out;
}

void RequestScheduler::Release(uint64_t id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = active_.find(id);
  if (it == active_.end()) return;
  DeviceLoad& load = loads_[static_cast<size_t>(it->second.device)];
  load.reserved_bytes -= it->second.estimate.gpu_bytes;
  load.reserved_step_seconds -= it->second.estimate.EffectiveStepSeconds();
  --load.active_sessions;
  active_.erase(it);
}

size_t RequestScheduler::queued() const {
  std::lock_guard<std::mutex> lk(mu_);
  return pending_.size();
}

size_t RequestScheduler::active() const {
  std::lock_guard<std::mutex> lk(mu_);
  return active_.size();
}

uint64_t RequestScheduler::reserved_gpu_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t total = 0;
  for (const DeviceLoad& load : loads_) total += load.reserved_bytes;
  return total;
}

double RequestScheduler::reserved_step_seconds() const {
  std::lock_guard<std::mutex> lk(mu_);
  double total = 0;
  for (const DeviceLoad& load : loads_) total += load.reserved_step_seconds;
  return total;
}

std::vector<DeviceLoad> RequestScheduler::DeviceLoads() const {
  std::lock_guard<std::mutex> lk(mu_);
  return loads_;
}

}  // namespace alaya
