// Admission control and queueing for the multi-session serving engine.
//
// Every prompt request carries a projected device footprint (prefilled prompt
// suffix + window + decoded tail at deployed KV precision) and projected
// per-step modeled device times for both of its phases: a chunked prefill
// phase over the prompt tokens no stored context covers, then steady-state
// decode (CostModel). The scheduler admits requests in the order a pluggable
// SchedulingPolicy picks them — strict priority classes with weighted
// fair-share across tenants and EDF within a tenant by default, exact
// historical FIFO under FifoPolicy — while the aggregate stays under the GPU
// memory budget (and, optionally, a per-step TPOT SLO), and queues the rest —
// the provider-side knob the paper's MaaS scenario needs ("heavy traffic",
// §2): memory decides *whether* a session may run, the cost model decides
// *how many* may run at once, the policy decides *who goes first* — and,
// via preemption (Admit's victim advice + Requeue), who must yield a slot to
// a higher class and resume later with zero recompute.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "src/attention/window_cache.h"
#include "src/common/status.h"
#include "src/core/model_config.h"
#include "src/device/cost_model.h"
#include "src/server/placement_policy.h"
#include "src/server/scheduling_policy.h"

namespace alaya {

/// One prompt request submitted to the serving front door.
struct ServingRequest {
  /// Full prompt tokens; the engine routes them through DB.create_session for
  /// prefix reuse against the context store. The suffix no stored context
  /// covers is prefilled via `fill_prompt` before decoding starts.
  std::vector<int32_t> prompt;
  /// Decode steps to run (tokens to generate).
  size_t max_new_tokens = 1;
  /// Fills one decode step's inputs: q is [num_q_heads * head_dim], k and v
  /// are [num_kv_heads * head_dim]. Must be deterministic in (step, layer) —
  /// concurrent and sequential schedules then produce identical outputs.
  std::function<void(size_t step, uint32_t layer, float* q, float* k, float* v)>
      fill_step;
  /// Fills one *prompt* token's inputs during the prefill phase; `token` is
  /// the token's absolute position in `prompt` (independent of how much prefix
  /// was reused). Same layout and determinism contract as fill_step. Requests
  /// that leave this null fail honestly when their prompt extends past every
  /// stored context.
  std::function<void(size_t token, uint32_t layer, float* q, float* k, float* v)>
      fill_prompt;
  /// Token id appended at `step` (used when store_on_finish materializes the
  /// session into a new context). Optional; defaults to synthetic ids.
  std::function<int32_t(size_t step)> token_at;
  /// DB.store(session) on completion (late materialization, §7.2).
  bool store_on_finish = false;
  /// Keep every step's final-layer attention output in the result (tests and
  /// determinism checks; costs steps * num_q_heads * head_dim floats).
  bool record_outputs = false;
  /// Streaming: invoked from the engine's step loop with each decoded output
  /// block (`out` is [num_q_heads * head_dim], the final-layer attention
  /// output of `step`). Called on the driver thread, strictly in step order;
  /// the span is only valid for the duration of the call. Keep it cheap — a
  /// slow callback stalls every co-scheduled session's next step.
  std::function<void(size_t step, std::span<const float> out)> on_token;
  /// Wall-clock budget measured from Submit (0 = none). A request that is
  /// still queued or decoding when the budget expires retires with
  /// kDeadlineExceeded at the next step boundary of a running engine; tokens
  /// already streamed stand.
  double deadline_seconds = 0;
  /// Scheduling class: higher admits strictly first, and (when preemption is
  /// enabled) a blocked higher-class request may suspend running lower-class
  /// sessions to make room. Equal-priority traffic is ordered by the
  /// SchedulingPolicy (fair-share across tenants, EDF within a tenant).
  int priority = 0;
  /// Fair-share identity: requests of the same tenant share one weighted
  /// deficit account (RequestSchedulerOptions::tenant_weights). The default
  /// tenant 0 with uniform priorities degenerates to exact FIFO.
  uint64_t tenant_id = 0;
};

/// Projected steady-state resource usage of one request, computed up front.
struct AdmissionEstimate {
  /// Device-resident KV bytes at completion: window over the full context plus
  /// the session-local tail — prefilled prompt suffix AND decoded tokens, both
  /// of which stay on device under late materialization (mirrors
  /// Session::GpuResidentBytes).
  uint64_t gpu_bytes = 0;
  /// Modeled device seconds per decode step at completion (all layers/heads).
  double step_gpu_seconds = 0;
  /// Prompt tokens no stored context covered when the request was enqueued
  /// (projected; the store may change before admission).
  size_t prefill_tokens = 0;
  /// Modeled device seconds one engine step costs while this request prefills
  /// (one chunk of prefill_chunk_tokens pushed through all layers).
  double prefill_step_gpu_seconds = 0;
  /// Projected total prefill latency (all prefill tokens).
  double prefill_total_gpu_seconds = 0;
  /// Projected total modeled device-seconds of REMAINING work: the full
  /// prefill phase plus every remaining decode step. This is the fair-share
  /// cost one admission spends from its tenant's deficit account; for a
  /// resumed request (EstimateResumed) it covers only the unfinished part.
  double total_gpu_seconds = 0;

  /// Per-engine-step device time this request contributes while active: the
  /// prefill phase and the decode phase alternate never — a session is in one
  /// or the other — so the reservation is the worse of the two.
  double EffectiveStepSeconds() const {
    return prefill_step_gpu_seconds > step_gpu_seconds ? prefill_step_gpu_seconds
                                                       : step_gpu_seconds;
  }
};

struct RequestSchedulerOptions {
  /// PER-DEVICE budget for admitted sessions (0 = unlimited). With one device
  /// this is exactly the old aggregate budget; with N devices each device
  /// holds this many bytes and a request is kNeverFits only when it exceeds
  /// the budget of every device even running alone.
  uint64_t gpu_budget_bytes = 0;
  /// Hard cap on concurrently decoding sessions (fleet-wide).
  size_t max_concurrent_sessions = 8;
  /// Enqueue fails with kBacklogFull (retryable) beyond this backlog.
  size_t max_queue_depth = 256;
  /// When > 0: stop admitting onto a device once ITS summed projected
  /// per-step time would exceed this bound (a request exceeding it on its own
  /// still runs, alone on an idle device — rejecting it outright would starve
  /// it forever). Per-device accounting: one hot device stops taking
  /// co-tenants without throttling admission to idle ones. Prefilling
  /// sessions are charged their per-chunk prefill time, so a prefill-heavy
  /// request whose projected chunk time blows the budget decodes alone
  /// instead of dragging every co-resident session past its TPOT.
  double tpot_slo_seconds = 0;
  /// Simulated devices the scheduler places across (clamped to >= 1). The
  /// serving engine mirrors its `devices` option here and grows the
  /// environment's DeviceSet to match.
  size_t devices = 1;
  /// Device selection strategy (nullptr -> BestFitPlacement: best-fit by free
  /// KV bytes with an affinity win for the device already holding the
  /// request's matched prefix context).
  std::shared_ptr<const PlacementPolicy> placement;
  /// Probe returning the device where the best-prefix context for a prompt
  /// currently resides (-1 = no match) — the placement affinity signal. Null
  /// means no affinity information (every placement is cold). Only consulted
  /// when placement_probe is unset.
  std::function<int(std::span<const int32_t>)> affinity_probe;
  /// Combined store probe: matched prefix length AND the matched context's
  /// device from ONE trie walk over ONE store snapshot (the serving engine
  /// wires this to ContextStore::BestPrefixProbe). When set, Preflight uses
  /// it instead of the prefix_probe + affinity_probe pair — halving store
  /// read-lock pressure per Submit and guaranteeing the estimate and the
  /// affinity target agree on which context matched.
  struct PrefixProbeResult {
    size_t matched = 0;
    int affinity_device = -1;
    /// The matched context is spilled to disk (tiered store): the probe is
    /// the prefetch point — the engine's default probe starts the page-in
    /// here, off the decode path, so CreateSession finds it resident.
    bool spilled = false;
  };
  std::function<PrefixProbeResult(std::span<const int32_t>)> placement_probe;
  /// Prompt tokens one prefilling session pushes through all layers per engine
  /// step. Smaller chunks interleave more fairly with decoding sessions (lower
  /// TPOT impact); larger chunks finish prefill in fewer steps.
  size_t prefill_chunk_tokens = 32;
  /// Per-step token budget split between decode steps and prefill chunks
  /// (0 = unlimited, the legacy behavior: every decoding session advances one
  /// token AND every prefilling session pushes a full prefill_chunk_tokens
  /// chunk each step). With a budget, decode is funded first — one token per
  /// decoding session, protecting TPOT — and the remainder is dealt to
  /// prefilling sessions FIFO in chunks of at most prefill_chunk_tokens. A
  /// newly admitted request's first chunk draws from whatever of the current
  /// step's budget is still unspent (mid-step admission).
  size_t step_token_budget = 0;
  /// Forward-progress floor: the head prefilling session is granted at least
  /// this many tokens per step even when decode alone exhausts the budget
  /// (clamped to >= 1 — a zero floor would livelock prefill behind a large
  /// decode batch).
  size_t min_prefill_tokens = 1;
  /// Probe returning the longest stored-context prefix of a prompt (the
  /// serving engine wires this to ContextStore::BestPrefixMatchLength). Null
  /// means no reuse information: every prompt token is assumed to need
  /// prefill, the conservative upper bound.
  std::function<size_t(std::span<const int32_t>)> prefix_probe;
  /// Admission-ordering / preemption strategy (nullptr -> FairSharePolicy:
  /// strict priority classes, weighted deficit round-robin across tenants
  /// over modeled device-seconds, EDF within a tenant — which degenerates to
  /// exact FIFO for single-tenant uniform-priority no-deadline traffic).
  /// FifoPolicy restores the historical scheduler bit-identically.
  std::shared_ptr<const SchedulingPolicy> policy;
  /// Fair-share weight per tenant id (unlisted tenants weigh 1.0; weights
  /// <= 0 are treated as 1.0). A weight-2 tenant earns deficit credit twice
  /// as fast as a weight-1 tenant contending in the same priority class.
  std::map<uint64_t, double> tenant_weights;
  /// Allow Admit() to advise preempting running lower-priority sessions when
  /// a higher-priority request cannot admit (see Admit's preempt_victims).
  /// Safe to leave on: equal-priority traffic never preempts.
  bool preemption = true;
  /// Context parallelism: maximum devices one session may gang across
  /// (clamped to [1, devices]). Above 1, the placement policy is wrapped in
  /// GangPlacement (a request that fits one device still places solo),
  /// Enqueue's permanent-rejection gate relaxes to the largest permitted
  /// gang's combined budget, and admission reserves per member — kNeverFits
  /// then means "no gang can ever hold this", not "no single device can".
  size_t max_gang_size = 1;
};

/// Thread-safe admission queue, ordered by a pluggable SchedulingPolicy.
/// Enqueue may race with the engine's Admit/Release loop (a front door
/// accepting requests mid-flight).
class RequestScheduler {
 public:
  RequestScheduler(const ModelConfig& model, const WindowConfig& window,
                   const CostModel& cost, const RequestSchedulerOptions& options);

  /// Projected footprint of `request` assuming `reused_prefix` of its prompt
  /// tokens are covered by a stored context (no lock needed; pure computation).
  AdmissionEstimate Estimate(const ServingRequest& request,
                             size_t reused_prefix) const;

  /// Projected footprint using the prefix probe (or zero reuse without one).
  AdmissionEstimate Estimate(const ServingRequest& request) const;

  /// How one engine step's token budget splits between the decode batch and
  /// the prefilling sessions (see RequestSchedulerOptions::step_token_budget).
  struct StepPlan {
    /// Tokens funded for decode (one per decoding session; decode always runs
    /// in full — the budget throttles prefill, never TPOT).
    size_t decode_tokens = 0;
    /// Per prefilling session (same order as the input), tokens granted this
    /// step: min(chunk cap, tokens the session still needs, budget left),
    /// dealt FIFO. The head session always gets >= min_prefill_tokens of its
    /// remaining need, so prefill can never livelock behind decode.
    std::vector<size_t> chunks;
    /// Unspent budget after the grants above — the pool a mid-step admission
    /// draws its first chunk from.
    size_t budget_left = 0;
  };

  /// Pure planning (no lock, no state): splits one step's budget between
  /// `decoding_sessions` decode steps and the prefilling sessions' remaining
  /// token counts (`prefill_remaining`, FIFO order).
  StepPlan PlanStep(size_t decoding_sessions,
                    std::span<const size_t> prefill_remaining) const;

  /// Grants a mid-step admission its first chunk out of `*budget_left`
  /// (decrementing it), honoring the chunk cap but NOT the forward-progress
  /// floor — an admission the spent budget can't fund simply waits for the
  /// next step's PlanStep.
  size_t GrantChunk(size_t remaining_need, size_t* budget_left) const;

  struct Admitted {
    uint64_t id = 0;
    ServingRequest request;
    AdmissionEstimate estimate;
    /// Device the placement policy admitted the request onto (0 on a
    /// single-device fleet). The engine binds the session here.
    int device = 0;
    /// Context parallelism: when the placement spanned a device gang, every
    /// member id with the primary first (gang[0] == device). Size <= 1 means
    /// an ordinary single-device admission. The engine builds a DeviceGang
    /// from this and binds it to the session; the scheduler holds one
    /// 1/size reservation share on each member until Release.
    std::vector<int> gang;
    /// Affinity target probed at Enqueue (-1 = none): the device the matched
    /// prefix context resided on then. Deliberately not re-probed per Admit
    /// poll — staleness costs at most one suboptimal placement (a modeled
    /// transfer), while re-probing would walk the prefix trie under the
    /// scheduler lock on every step a blocked head waits.
    int affinity_device = -1;
    /// Stamped at Enqueue; the origin of TTFT measurements and the anchor the
    /// request's deadline (deadline_seconds) counts from.
    std::chrono::steady_clock::time_point submit_time;
    /// Scheduling class and fair-share identity, copied from the request at
    /// Enqueue so resume entries (whose `request` is a stub) order correctly.
    int priority = 0;
    uint64_t tenant_id = 0;
    /// A preempted request re-entering the queue (Requeue): `request` carries
    /// only deadline_seconds, `estimate` the remaining work, and id /
    /// submit_time are the originals (TTFT and deadline anchors survive
    /// suspension). The engine routes these back to its suspended set.
    bool resume = false;
    /// Absolute deadline, or time_point::max() when the request has none.
    std::chrono::steady_clock::time_point Deadline() const;
  };

  /// Precomputed enqueue inputs: the admission estimate (prefix probe) and
  /// the placement affinity target. Both probes walk the context store's
  /// prefix trie — O(prompt length) — so callers holding their own locks
  /// (the engine's Submit) run Preflight first, outside them.
  struct EnqueuePreflight {
    AdmissionEstimate estimate;
    int affinity_device = -1;
  };
  EnqueuePreflight Preflight(const ServingRequest& request) const;

  /// Queues a request. Rejections are typed so live-mode callers can
  /// implement backpressure without string-matching: kBacklogFull (the queue
  /// is at max_queue_depth right now — retryable) vs kNeverFits (the request
  /// exceeds the memory budget even running alone — permanent). Returns the
  /// request id. The two-arg form skips the store probes (see Preflight).
  Result<uint64_t> Enqueue(ServingRequest request);
  Result<uint64_t> Enqueue(ServingRequest request, const EnqueuePreflight& pre);

  /// Pops every queued request admissible under the current load, in the
  /// order the SchedulingPolicy picks them (FifoPolicy: arrival order with no
  /// head-of-line bypass — the historical behavior). An admissible request is
  /// one the placement policy can put on SOME device — fitting that device's
  /// remaining memory budget and TPOT headroom — or the pick while the fleet
  /// is idle (guaranteed progress). Each popped request carries the device it
  /// was placed on. A pick the policy reports as never_fits (no device's
  /// budget could EVER hold it — possible under custom policies; the built-in
  /// uniform-budget case is caught at Enqueue) is removed instead of blocking
  /// the queue forever; the caller collects it via TakeNeverFits and fails it
  /// with a typed kNeverFits result. A picked request whose deadline already
  /// passed is likewise swept aside (TakeExpired) instead of absorbing a
  /// deficit grant, and the policy re-picks.
  ///
  /// Preemption: when the picked request is blocked (all slots taken or no
  /// device fits) and `preempt_victims` is non-null (and options.preemption
  /// is set), the policy ranks running lower-priority victims and the
  /// shortest prefix of that ranking whose suspension would let the pick
  /// place is appended to `*preempt_victims`. Admission then stops — the
  /// caller suspends the victims (Release + Requeue) and calls Admit again;
  /// capacity only frees once real suspension happens. Callers stepping
  /// mid-batch pass nullptr: preemption is a step-boundary-only affair.
  std::vector<Admitted> Admit(std::vector<uint64_t>* preempt_victims = nullptr);

  /// Drains requests a prior Admit() rejected as permanently unplaceable.
  std::vector<Admitted> TakeNeverFits();

  /// Drains requests a prior Admit() swept as expired-at-pick. The caller
  /// finalizes them with kDeadlineExceeded (routing resume entries back to
  /// its suspended set).
  std::vector<Admitted> TakeExpired();

  /// Re-queues a preempted request so a later Admit can resume it. The caller
  /// (the engine's suspend path) builds the entry: resume=true, original id /
  /// submit_time / priority / tenant_id, a stub request carrying only
  /// deadline_seconds, and an EstimateResumed() estimate. No validation, no
  /// backlog cap (a suspended request must always be re-queueable; the count
  /// is bounded by max_concurrent_sessions), no reservation held until a
  /// later Admit places it again.
  void Requeue(Admitted item);

  /// Estimate for a request resuming after suspension with `prefill_pos`
  /// prompt tokens already prefilled (absolute; >= its original
  /// `reused_prefix`) and `steps_done` tokens already decoded. gpu_bytes stays
  /// the full completion footprint — the detached KV returns to the device —
  /// while prefill_tokens / total_gpu_seconds cover only remaining work, so
  /// fair-share never double-charges the finished slice.
  AdmissionEstimate EstimateResumed(const ServingRequest& request,
                                    size_t reused_prefix, size_t prefill_pos,
                                    size_t steps_done) const;

  /// Copy of the per-tenant fair-share ledger (deficit balances + lifetime
  /// admitted work) — the snapshot's no-starvation evidence.
  TenantLedger TenantLedgerSnapshot() const;

  /// Returns a finished (or failed) request's reservation to the pool.
  void Release(uint64_t id);

  // --- Cancellation-aware queue surgery (live serving) ---
  //
  // Queued requests hold no reservation, so removal is pure bookkeeping; the
  // caller finalizes the returned items (typed kCancelled/kDeadlineExceeded
  // results). An id that a concurrent Admit() already popped is simply not
  // found — exactly one side wins the queue entry.

  /// Removes one queued (not yet admitted) request. Empty when the id is
  /// unknown, already admitted, or already released. Resume entries are
  /// skipped unless `include_resume`: a caller-thread cancel must not steal a
  /// suspended request's queue entry out from under the driver, which owns
  /// the suspended lifecycle and passes include_resume=true.
  std::optional<Admitted> RemoveQueued(uint64_t id, bool include_resume = false);

  /// Removes every queued request whose deadline has passed at `now`.
  std::vector<Admitted> RemoveQueuedExpired(std::chrono::steady_clock::time_point now);

  /// Empties the queue (engine Abort). Active reservations are untouched.
  std::vector<Admitted> TakeAllQueued();

  /// Replaces an admitted request's reservation with `actual` — the estimate
  /// recomputed against the prefix reuse DB.create_session really found. The
  /// enqueue-time probe is a TOCTOU estimate: the store can change between
  /// Enqueue and Admit (guaranteed to under background Store), so the engine
  /// re-estimates at session-creation time and calls this so reservations
  /// never diverge from real footprints. The request stays admitted even if
  /// the fresh estimate exceeds the budget (its session already exists;
  /// aborting it would strand work) — subsequent admissions simply see the
  /// corrected, larger reservation. No-op for unknown/released ids.
  void UpdateReservation(uint64_t id, const AdmissionEstimate& actual);

  /// Records `modeled_seconds` of completed work against an admitted request.
  /// The engine calls this as it charges modeled step/chunk time; the running
  /// balance feeds RunningRequestView::remaining_seconds so victim ranking
  /// can weigh how much work a suspension would defer. No-op for
  /// unknown/released ids.
  void RecordProgress(uint64_t id, double modeled_seconds);

  size_t queued() const;
  size_t active() const;
  /// Sum of admitted requests' projected device bytes (fleet-wide).
  uint64_t reserved_gpu_bytes() const;
  /// Sum of admitted requests' projected per-step device seconds (each at its
  /// EffectiveStepSeconds, i.e. the worse of its prefill and decode phases),
  /// fleet-wide.
  double reserved_step_seconds() const;

  /// Per-device load snapshot (reserved bytes/seconds, active sessions) —
  /// what the placement policy saw, for benches/tests/snapshots.
  std::vector<DeviceLoad> DeviceLoads() const;

  const RequestSchedulerOptions& options() const { return options_; }

 private:
  /// Asks the placement policy where the request could go right now; nullopt
  /// when it must keep waiting. Caller holds mu_.
  PlacementDecision PlaceLocked(const Admitted& item) const;

  /// Policy view of one queued entry. Caller holds mu_.
  QueuedRequestView ViewOfLocked(const Admitted& item) const;
  /// Creates the tenant's ledger entry on first sight (weight from
  /// options.tenant_weights). Caller holds mu_.
  void EnsureTenantLocked(uint64_t tenant_id);
  /// DRR reset: a tenant whose queue just emptied forfeits banked deficit
  /// (idle tenants do not accumulate credit). Caller holds mu_.
  void ResetDeficitIfDrainedLocked(uint64_t tenant_id);
  /// Ranks running victims for a blocked pick and appends the shortest
  /// ranking prefix whose suspension would let `blocked` place. Caller holds
  /// mu_.
  void AdviseVictimsLocked(const Admitted& blocked,
                           std::vector<uint64_t>* victims) const;

  struct ActiveEntry {
    AdmissionEstimate estimate;
    int device = 0;
    /// Gang members holding this request's reservation shares (gang[0] ==
    /// device; size <= 1 = single-device).
    std::vector<int> gang;
    int priority = 0;
    uint64_t tenant_id = 0;
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
    uint64_t admit_order = 0;  ///< Monotonic admission stamp (victim ranking).
    /// Modeled device-seconds of work completed so far (RecordProgress) —
    /// subtracted from the estimate for cost-aware victim ranking.
    double consumed_seconds = 0;
  };

  /// Adds (`sign` = +1) or removes (-1) one request's reservation shares —
  /// an even byte/step split across `members` (remainder on the primary),
  /// one active session counted per member. Caller holds mu_.
  void ApplyReservationLocked(const std::vector<int>& members,
                              const AdmissionEstimate& estimate, int sign);

  ModelConfig model_;
  WindowCache window_;
  CostModel cost_;
  RequestSchedulerOptions options_;
  std::shared_ptr<const PlacementPolicy> placement_;
  std::shared_ptr<const SchedulingPolicy> policy_;

  mutable std::mutex mu_;
  std::deque<Admitted> pending_;
  std::map<uint64_t, ActiveEntry> active_;
  std::vector<DeviceLoad> loads_;  ///< One per device; budgets fixed at ctor.
  std::vector<Admitted> never_fits_;  ///< Rejected by placement; see TakeNeverFits.
  std::vector<Admitted> expired_;     ///< Swept expired-at-pick; see TakeExpired.
  TenantLedger ledger_;  ///< Fair-share accounting, mutated via the policy.
  uint64_t next_id_ = 1;
  uint64_t admit_seq_ = 0;  ///< Stamps ActiveEntry::admit_order.
};

}  // namespace alaya
