// Admission control and queueing for the multi-session serving engine.
//
// Every prompt request carries a projected device footprint (window + decoded
// tail at deployed KV precision) and a projected per-step modeled device time
// (CostModel). The scheduler admits requests FIFO while the aggregate stays
// under the GPU memory budget (and, optionally, a per-step TPOT SLO), and
// queues the rest — the provider-side knob the paper's MaaS scenario needs
// ("heavy traffic", §2): memory decides *whether* a session may run, the cost
// model decides *how many* may run at once.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "src/attention/window_cache.h"
#include "src/common/status.h"
#include "src/core/model_config.h"
#include "src/device/cost_model.h"

namespace alaya {

/// One prompt request submitted to the serving front door.
struct ServingRequest {
  /// Full prompt tokens; the engine routes them through DB.create_session for
  /// prefix reuse against the context store.
  std::vector<int32_t> prompt;
  /// Decode steps to run (tokens to generate).
  size_t max_new_tokens = 1;
  /// Fills one decode step's inputs: q is [num_q_heads * head_dim], k and v
  /// are [num_kv_heads * head_dim]. Must be deterministic in (step, layer) —
  /// concurrent and sequential schedules then produce identical outputs.
  std::function<void(size_t step, uint32_t layer, float* q, float* k, float* v)>
      fill_step;
  /// Token id appended at `step` (used when store_on_finish materializes the
  /// session into a new context). Optional; defaults to synthetic ids.
  std::function<int32_t(size_t step)> token_at;
  /// DB.store(session) on completion (late materialization, §7.2).
  bool store_on_finish = false;
  /// Keep every step's final-layer attention output in the result (tests and
  /// determinism checks; costs steps * num_q_heads * head_dim floats).
  bool record_outputs = false;
};

/// Projected steady-state resource usage of one request, computed up front.
struct AdmissionEstimate {
  /// Device-resident KV bytes at completion: window over the full context plus
  /// the session-local decoded tail (mirrors Session::GpuResidentBytes).
  uint64_t gpu_bytes = 0;
  /// Modeled device seconds per decode step at completion (all layers/heads).
  double step_gpu_seconds = 0;
};

struct RequestSchedulerOptions {
  /// Aggregate device budget for admitted sessions (0 = unlimited).
  uint64_t gpu_budget_bytes = 0;
  /// Hard cap on concurrently decoding sessions.
  size_t max_concurrent_sessions = 8;
  /// Enqueue fails with ResourceExhausted beyond this backlog.
  size_t max_queue_depth = 256;
  /// When > 0: stop admitting once the summed projected per-step device time
  /// of active sessions would exceed this bound (a request exceeding it on its
  /// own still runs, alone — rejecting it outright would starve it forever).
  double tpot_slo_seconds = 0;
};

/// Thread-safe FIFO admission queue. Enqueue may race with the engine's
/// Admit/Release loop (a front door accepting requests mid-flight).
class RequestScheduler {
 public:
  RequestScheduler(const ModelConfig& model, const WindowConfig& window,
                   const CostModel& cost, const RequestSchedulerOptions& options);

  /// Projected footprint of `request` (no lock needed; pure computation).
  AdmissionEstimate Estimate(const ServingRequest& request) const;

  /// Queues a request, failing fast when the backlog is full or the request
  /// could never fit the memory budget even running alone. Returns request id.
  Result<uint64_t> Enqueue(ServingRequest request);

  struct Admitted {
    uint64_t id = 0;
    ServingRequest request;
    AdmissionEstimate estimate;
  };

  /// Pops every queued request admissible under the current load, FIFO with no
  /// head-of-line bypass (keeps the admission order deterministic). An
  /// admissible request fits the remaining memory budget and the TPOT SLO, or
  /// is the head while nothing is active (guaranteed progress).
  std::vector<Admitted> Admit();

  /// Returns a finished (or failed) request's reservation to the pool.
  void Release(uint64_t id);

  size_t queued() const;
  size_t active() const;
  /// Sum of admitted requests' projected device bytes.
  uint64_t reserved_gpu_bytes() const;
  /// Sum of admitted requests' projected per-step device seconds.
  double reserved_step_seconds() const;

  const RequestSchedulerOptions& options() const { return options_; }

 private:
  bool FitsLocked(const AdmissionEstimate& e) const;

  ModelConfig model_;
  WindowCache window_;
  CostModel cost_;
  RequestSchedulerOptions options_;

  mutable std::mutex mu_;
  std::deque<Admitted> pending_;
  std::map<uint64_t, AdmissionEstimate> active_;
  uint64_t next_id_ = 1;
  uint64_t reserved_bytes_ = 0;
  double reserved_seconds_ = 0;
};

}  // namespace alaya
