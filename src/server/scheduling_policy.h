// Pluggable admission-ordering and preemption policy for RequestScheduler —
// the refactor that turns FIFO admission into multi-tenant SLO scheduling.
//
// The scheduler owns the queue, the reservations and the locks; the policy is
// a pure strategy consulted under the scheduler's mutex:
//   - PickNext: which queued request should be considered for admission next
//     (replaces "the FIFO head").
//   - OnAdmitted: bookkeeping after that request actually placed (deficit
//     accounting; split from PickNext so a pick the placement layer then
//     blocks does not mutate anything).
//   - RankVictims: when the picked request cannot admit, which running
//     sessions may be suspended to make room, best victim first (empty =
//     never preempt).
//
// Two built-ins:
//   - FifoPolicy: bit-identical to the historical FIFO scheduler — picks the
//     arrival head, never preempts. The golden baseline.
//   - FairSharePolicy (default): strict priority classes; within the highest
//     class present, weighted deficit round-robin across tenants over modeled
//     device-seconds (each tenant's deficit earns credit at its weight's rate
//     and admission spends the request's projected total seconds), and
//     earliest-deadline-first within a tenant. With a single tenant, uniform
//     priorities and no deadlines it degenerates to exact FIFO, which is why
//     it can be the default without perturbing single-class workloads.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

namespace alaya {

/// What the policy may know about one queued request. Views are handed to the
/// policy in arrival order, so index 0 is the FIFO head.
struct QueuedRequestView {
  uint64_t id = 0;
  int priority = 0;       ///< Higher admits first (strict classes).
  uint64_t tenant_id = 0;
  /// Absolute deadline (time_point::max() = none) — EDF within a tenant.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Projected total modeled device-seconds of remaining work (prefill +
  /// decode) — the fair-share cost one admission spends.
  double cost_seconds = 0;
  /// A preempted request re-entering the queue to resume. Carries its
  /// original id/submit time; policies treat it like any other request of its
  /// class (no implicit boost — fairness already paid for its first slice).
  bool resume = false;
};

/// What the policy may know about one running session when ranking victims.
struct RunningRequestView {
  uint64_t id = 0;
  int priority = 0;
  uint64_t tenant_id = 0;
  int device = 0;
  uint64_t gpu_bytes = 0;     ///< Reserved device bytes a suspension frees.
  double step_seconds = 0;    ///< Reserved per-step seconds a suspension frees.
  /// Projected modeled device-seconds of work still ahead of this request
  /// (admission estimate minus progress recorded so far): the throughput a
  /// suspension defers, and the denominator of cost-aware victim ranking.
  double remaining_seconds = 0;
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  uint64_t admit_order = 0;   ///< Monotonic admission stamp (higher = newer).
};

/// Per-tenant fair-share ledger entry, owned by the scheduler and mutated
/// only through SchedulingPolicy::OnAdmitted. Exposed in snapshots: deficit
/// balances plus lifetime admitted work are the no-starvation evidence.
struct TenantShareState {
  double weight = 1.0;
  /// Deficit round-robin balance in modeled device-seconds: topped up at the
  /// tenant's weighted rate while it contends, spent by admissions, reset
  /// when its queue empties (an idle tenant does not bank credit).
  double deficit_seconds = 0;
  double admitted_seconds = 0;  ///< Lifetime device-seconds admitted.
  size_t admitted = 0;          ///< Lifetime requests admitted.
};

using TenantLedger = std::map<uint64_t, TenantShareState>;

class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  static constexpr size_t kNone = static_cast<size_t>(-1);

  /// Index into `queued` of the request to consider next, or kNone to admit
  /// nothing this round. Must not mutate the ledger (simulate top-ups).
  virtual size_t PickNext(std::span<const QueuedRequestView> queued,
                          const TenantLedger& ledger) const = 0;

  /// The request PickNext chose at `picked` placed successfully: apply the
  /// fair-share accounting to `ledger`. `queued` is the same view set the
  /// pick saw (the admitted entry still included).
  virtual void OnAdmitted(std::span<const QueuedRequestView> queued, size_t picked,
                          TenantLedger* ledger) const = 0;

  /// The request `blocked` cannot admit (no slot or no device fits): running
  /// sessions that may be suspended for it, best victim first. The scheduler
  /// suspends a prefix of this ranking until the blocked request fits. Empty
  /// = never preempt. Implementations must only ever rank victims of strictly
  /// lower priority than `blocked` — the monotonicity that prevents
  /// preemption cycles.
  virtual std::vector<uint64_t> RankVictims(
      const QueuedRequestView& blocked,
      std::span<const RunningRequestView> running) const = 0;

  virtual const char* name() const = 0;
};

/// Bit-identical to the historical FIFO scheduler: arrival order, no
/// preemption, no fairness accounting beyond lifetime counters.
class FifoPolicy : public SchedulingPolicy {
 public:
  size_t PickNext(std::span<const QueuedRequestView> queued,
                  const TenantLedger& ledger) const override;
  void OnAdmitted(std::span<const QueuedRequestView> queued, size_t picked,
                  TenantLedger* ledger) const override;
  std::vector<uint64_t> RankVictims(
      const QueuedRequestView& blocked,
      std::span<const RunningRequestView> running) const override;
  const char* name() const override { return "fifo"; }
};

/// Strict priority classes + weighted deficit round-robin across tenants +
/// EDF within a tenant. See file header for the exact scheme.
class FairSharePolicy : public SchedulingPolicy {
 public:
  size_t PickNext(std::span<const QueuedRequestView> queued,
                  const TenantLedger& ledger) const override;
  void OnAdmitted(std::span<const QueuedRequestView> queued, size_t picked,
                  TenantLedger* ledger) const override;
  std::vector<uint64_t> RankVictims(
      const QueuedRequestView& blocked,
      std::span<const RunningRequestView> running) const override;
  const char* name() const override { return "fair_share"; }
};

}  // namespace alaya
