// Generation-quality proxy (DESIGN.md §2.2): attention-output fidelity against
// the oracle (exact attention over the planted critical set), anchored to the
// paper's Full Attention scores so *relative* method ordering is the measured
// quantity. Sparse methods that retrieve the critical set exactly can exceed
// full attention's fidelity (they exclude noise dilution) — reproducing the
// paper's observation that e.g. InfLLM beats Full Attention on Retr.KV.
#pragma once

#include <cstddef>

namespace alaya {

/// Cosine similarity clamped to [0, 1] between a method's attention output and
/// the oracle output.
double CosineFidelity(const float* method_out, const float* oracle_out, size_t d);

/// Anchored task score: paper_full_score * (method_fidelity / full_fidelity),
/// clamped to [0, max_boost * paper_full_score] and to <= 100.
double AnchoredScore(double method_fidelity, double full_fidelity,
                     double paper_full_score, double max_boost = 2.0);

/// Streaming mean.
class MeanAccumulator {
 public:
  void Add(double x) {
    sum_ += x;
    ++count_;
  }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  size_t count() const { return count_; }

 private:
  double sum_ = 0.0;
  size_t count_ = 0;
};

}  // namespace alaya
