#include "src/llm/qkv_generator.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/attention/attention_engine.h"

namespace alaya {

namespace {

/// Stable 64-bit mix for deriving per-(step,layer,head) RNG seeds.
uint64_t MixSeed(uint64_t a, uint64_t b, uint64_t c, uint64_t d) {
  uint64_t h = a * 0x9e3779b97f4a7c15ULL;
  h ^= b + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= c + 0x94d049bb133111ebULL + (h << 6) + (h >> 2);
  h *= 0x94d049bb133111ebULL;
  h ^= d + (h << 6) + (h >> 2);
  return h;
}

/// Fills `out` with a random unit vector.
void RandomUnit(Rng* rng, float* out, size_t d) {
  rng->FillGaussian(out, d);
  NormalizeInPlace(out, d);
}

/// out = cos_target * dir + sqrt(1 - cos^2) * (unit vector orthogonal to dir).
void VectorAtCosine(Rng* rng, const float* dir, float cos_target, float* out,
                    size_t d) {
  std::vector<float> noise(d);
  rng->FillGaussian(noise.data(), d);
  const float proj = Dot(noise.data(), dir, d);
  Axpy(noise.data(), dir, d, -proj);  // Orthogonalize.
  NormalizeInPlace(noise.data(), d);
  const float sin_target = std::sqrt(std::max(0.f, 1.f - cos_target * cos_target));
  for (size_t i = 0; i < d; ++i) {
    out[i] = cos_target * dir[i] + sin_target * noise[i];
  }
}

}  // namespace

SyntheticContext::SyntheticContext(const SyntheticContextOptions& options)
    : options_(options) {}

Status SyntheticContext::Generate() {
  ALAYA_RETURN_IF_ERROR(options_.model.Validate());
  const ModelConfig& m = options_.model;
  const WorkloadSpec& spec = options_.spec;
  const size_t n = spec.context_tokens;
  if (n < options_.num_sinks + 16) {
    return Status::InvalidArgument("context too short for the planted structure");
  }

  kv_ = std::make_unique<KvCache>(m);
  plans_.assign(static_cast<size_t>(m.num_layers) * m.num_kv_heads, HeadPlan{});

  // Synthetic token ids: deterministic per (task, seed) so different contexts
  // share no accidental prefixes, while re-generation is reproducible. The
  // task name is folded in because suite seeds are sequential per task — two
  // tasks offset by a per-tenant index can collide on the same numeric seed,
  // which would give distinct documents identical token ids (and make the DB
  // silently "reuse" one tenant's KV for another's prompt).
  tokens_.resize(n);
  uint64_t name_hash = 0xcbf29ce484222325ULL;  // FNV-1a.
  for (char c : spec.name) {
    name_hash = (name_hash ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  }
  Rng token_rng(spec.seed ^ name_hash ^ 0x746f6b656e734964ULL);
  const int32_t base = static_cast<int32_t>(token_rng.UniformInt(1u << 20)) + 1;
  for (size_t i = 0; i < n; ++i) {
    tokens_[i] = base + static_cast<int32_t>(i);
  }

  ThreadPool* pool = options_.pool != nullptr ? options_.pool : &ThreadPool::Global();
  const size_t total_heads = static_cast<size_t>(m.num_layers) * m.num_kv_heads;
  std::vector<std::vector<float>> keys(total_heads), values(total_heads);
  std::vector<Status> statuses(total_heads, Status::Ok());
  pool->ParallelFor(0, total_heads, [&](size_t slot) {
    const uint32_t layer = static_cast<uint32_t>(slot / m.num_kv_heads);
    const uint32_t kv_head = static_cast<uint32_t>(slot % m.num_kv_heads);
    GenerateHead(layer, kv_head, MixSeed(spec.seed, layer, kv_head, 0xabcdef),
                 &keys[slot], &values[slot]);
  });

  // Assemble the KvCache layer by layer (token-major packing).
  const size_t d = m.head_dim;
  std::vector<float> krow(static_cast<size_t>(m.num_kv_heads) * d);
  std::vector<float> vrow(static_cast<size_t>(m.num_kv_heads) * d);
  for (uint32_t layer = 0; layer < m.num_layers; ++layer) {
    kv_->Reserve(layer, n);
    for (size_t t = 0; t < n; ++t) {
      for (uint32_t h = 0; h < m.num_kv_heads; ++h) {
        const auto& hk = keys[static_cast<size_t>(layer) * m.num_kv_heads + h];
        const auto& hv = values[static_cast<size_t>(layer) * m.num_kv_heads + h];
        std::memcpy(krow.data() + h * d, hk.data() + t * d, d * sizeof(float));
        std::memcpy(vrow.data() + h * d, hv.data() + t * d, d * sizeof(float));
      }
      kv_->AppendToken(layer, krow.data(), vrow.data());
    }
  }
  return Status::Ok();
}

void SyntheticContext::GenerateHead(uint32_t layer, uint32_t kv_head, uint64_t seed,
                                    std::vector<float>* keys,
                                    std::vector<float>* values) {
  const ModelConfig& m = options_.model;
  const WorkloadSpec& spec = options_.spec;
  const size_t d = m.head_dim;
  const size_t n = spec.context_tokens;
  const uint32_t T = options_.num_topics;
  Rng rng(seed);

  HeadPlan& plan = MutablePlan(layer, kv_head);
  plan.topic_dirs.resize(static_cast<size_t>(T) * d);
  plan.sink_dir.resize(d);
  RandomUnit(&rng, plan.sink_dir.data(), d);
  for (uint32_t t = 0; t < T; ++t) {
    RandomUnit(&rng, plan.topic_dirs.data() + static_cast<size_t>(t) * d, d);
  }

  // Per-head critical-size factor: log-normal across heads (Obs. I), boosted
  // in layer 0 (Fig. 5: early layers need vastly more tokens).
  plan.head_factor = std::exp(spec.head_sigma * rng.Gaussian());
  if (layer == 0) plan.head_factor *= spec.layer0_boost;

  // Topic sizes and disjoint member sets.
  std::vector<size_t> sizes(T);
  size_t total = 0;
  const size_t cap = std::max<size_t>(1, n / (2 * T));
  for (uint32_t t = 0; t < T; ++t) {
    double s = spec.critical_base * plan.head_factor * std::exp(0.35 * rng.Gaussian());
    sizes[t] = std::min<size_t>(cap, std::max<size_t>(1, static_cast<size_t>(s)));
    total += sizes[t];
  }
  const size_t assignable = n - options_.num_sinks;
  std::vector<size_t> picks = rng.SampleWithoutReplacement(assignable, std::min(total, assignable));
  plan.topic_members.assign(T, {});
  size_t cursor = 0;
  for (uint32_t t = 0; t < T; ++t) {
    auto& members = plan.topic_members[t];
    for (size_t i = 0; i < sizes[t] && cursor < picks.size(); ++i, ++cursor) {
      members.push_back(static_cast<uint32_t>(picks[cursor] + options_.num_sinks));
    }
    std::sort(members.begin(), members.end());
  }

  // Keys and values. Values are *individual* random unit vectors: an
  // attention output then reveals exactly how much of the planted critical
  // mass a method recovered (a subset's value mean is uncorrelated with the
  // missing tokens'), so fidelity cannot saturate on partial retrieval.
  keys->assign(n * d, 0.f);
  values->assign(n * d, 0.f);
  // Background key norm rho derived so scaled background logits come out as
  // z ~ N(0, noise_z_sigma): z = rho * |q| * cos(q, k)/sqrt(d) with
  // cos ~ N(0, 1/d) and |q| = sqrt(d * (crit_z_max^2 + sink_z^2)).
  const double query_norm_z = std::sqrt(spec.crit_z_max * spec.crit_z_max +
                                        spec.sink_z * spec.sink_z);
  const float rho = static_cast<float>(spec.bg_key_norm * spec.noise_z_sigma *
                                       std::sqrt(static_cast<double>(d)) /
                                       query_norm_z);
  for (size_t i = 0; i < n; ++i) {
    float* k = keys->data() + i * d;
    rng.FillGaussian(k, d);
    NormalizeInPlace(k, d);
    Scale(k, d, rho);
    float* v = values->data() + i * d;
    rng.FillGaussian(v, d);
    NormalizeInPlace(v, d);
  }
  // Sinks: unit keys along the sink direction; near-zero value mass.
  for (uint32_t s = 0; s < options_.num_sinks && s < n; ++s) {
    float* k = keys->data() + static_cast<size_t>(s) * d;
    VectorAtCosine(&rng, plan.sink_dir.data(), 0.995f, k, d);
    float* v = values->data() + static_cast<size_t>(s) * d;
    Scale(v, d, static_cast<float>(options_.sink_value_scale));
  }
  // Critical tokens: keys at exact cosine so z lands in the task band.
  for (uint32_t t = 0; t < T; ++t) {
    const float* dir = plan.topic_dirs.data() + static_cast<size_t>(t) * d;
    for (uint32_t id : plan.topic_members[t]) {
      const double z = spec.crit_z_min +
                       rng.Uniform() * (spec.crit_z_max - spec.crit_z_min);
      const float cos_target = static_cast<float>(z / spec.crit_z_max);
      VectorAtCosine(&rng, dir, cos_target, keys->data() + static_cast<size_t>(id) * d,
                     d);
    }
  }
}

uint32_t SyntheticContext::StepTopic(size_t step, uint32_t layer, uint32_t q_head) const {
  return static_cast<uint32_t>((step + 3 * q_head + 7 * layer) % options_.num_topics);
}

void SyntheticContext::BuildQuery(uint32_t layer, uint32_t kv_head, uint32_t topic,
                                  Rng* rng, float* q, double jitter_scale) const {
  const size_t d = options_.model.head_dim;
  const WorkloadSpec& spec = options_.spec;
  const HeadPlan& plan = Plan(layer, kv_head);
  const float* dir = plan.topic_dirs.data() + static_cast<size_t>(topic) * d;

  // Jitter is specified as the target angular offset: a Gaussian perturbation
  // of per-dimension scale j has norm ~ j*sqrt(d), so normalize it out.
  std::vector<float> jitter(d);
  rng->FillGaussian(jitter.data(), d);
  const float js = static_cast<float>(jitter_scale / std::sqrt(static_cast<double>(d)));
  for (size_t i = 0; i < d; ++i) {
    q[i] = dir[i] + js * jitter[i];
  }
  NormalizeInPlace(q, d);
  const float sqrt_d = std::sqrt(static_cast<float>(d));
  const float query_scale = static_cast<float>(spec.crit_z_max) * sqrt_d;
  Scale(q, d, query_scale);
  // Sink component: guarantees the max-IP key lives in the window.
  Axpy(q, plan.sink_dir.data(), d, static_cast<float>(spec.sink_z) * sqrt_d);
}

void SyntheticContext::MakeDecodeQuery(size_t step, uint32_t layer, uint32_t q_head,
                                       float* q) const {
  const uint32_t kv_head = options_.model.KvHeadForQuery(q_head);
  Rng rng(MixSeed(options_.spec.seed, step, layer, 0x51000 + q_head));
  BuildQuery(layer, kv_head, StepTopic(step, layer, q_head), &rng, q,
             options_.query_jitter);
}

void SyntheticContext::MakeDecodeQueryLayer(size_t step, uint32_t layer,
                                            float* q) const {
  const size_t d = options_.model.head_dim;
  for (uint32_t h = 0; h < options_.model.num_q_heads; ++h) {
    MakeDecodeQuery(step, layer, h, q + static_cast<size_t>(h) * d);
  }
}

const std::vector<uint32_t>& SyntheticContext::CriticalSet(size_t step, uint32_t layer,
                                                           uint32_t q_head) const {
  const uint32_t kv_head = options_.model.KvHeadForQuery(q_head);
  return Plan(layer, kv_head).topic_members[StepTopic(step, layer, q_head)];
}

const std::vector<uint32_t>& SyntheticContext::TopicMembers(uint32_t layer,
                                                            uint32_t kv_head,
                                                            uint32_t topic) const {
  return Plan(layer, kv_head).topic_members[topic];
}

double SyntheticContext::HeadFactor(uint32_t layer, uint32_t kv_head) const {
  return Plan(layer, kv_head).head_factor;
}

void SyntheticContext::OracleOutput(size_t step, uint32_t layer, uint32_t q_head,
                                    float* out) const {
  const ModelConfig& m = options_.model;
  const uint32_t kv_head = m.KvHeadForQuery(q_head);
  std::vector<float> q(m.head_dim);
  MakeDecodeQuery(step, layer, q_head, q.data());

  std::vector<uint32_t> ids;
  for (uint32_t s = 0; s < options_.num_sinks; ++s) ids.push_back(s);
  const auto& critical = CriticalSet(step, layer, q_head);
  ids.insert(ids.end(), critical.begin(), critical.end());
  SparseAttentionHead(q.data(), kv_->Keys(layer, kv_head), kv_->Values(layer, kv_head),
                      ids, out);
}

std::unique_ptr<QuerySamples> SyntheticContext::MakeTrainingQueries(
    size_t per_head) const {
  auto samples = std::make_unique<QuerySamples>(options_.model);
  const ModelConfig& m = options_.model;
  const size_t d = m.head_dim;
  std::vector<float> row(static_cast<size_t>(m.num_q_heads) * d);
  for (uint32_t layer = 0; layer < m.num_layers; ++layer) {
    for (size_t i = 0; i < per_head; ++i) {
      for (uint32_t h = 0; h < m.num_q_heads; ++h) {
        const uint32_t kv_head = m.KvHeadForQuery(h);
        const uint32_t topic = static_cast<uint32_t>((i + h) % options_.num_topics);
        Rng rng(MixSeed(options_.spec.seed, 0x7261696eULL + i, layer, h));
        BuildQuery(layer, kv_head, topic, &rng, row.data() + static_cast<size_t>(h) * d,
                   options_.training_jitter);
      }
      samples->Record(layer, row.data());
    }
  }
  return samples;
}

}  // namespace alaya
