#include "src/llm/inference_sim.h"

#include "src/attention/attention_engine.h"
#include "src/llm/quality.h"

namespace alaya {

EvalOptions MakeScaledEvalOptions(const ModelConfig& bench_model,
                                  double server_parallelism) {
  const ModelConfig paper = ModelConfig::Llama3_8B();
  EvalOptions opts;
  opts.layer_head_scale =
      (static_cast<double>(paper.num_layers) * paper.num_q_heads) /
      (static_cast<double>(bench_model.num_layers) * bench_model.num_q_heads);
  opts.server_parallelism = server_parallelism;
  const double geom = static_cast<double>(paper.KvBytesPerToken()) /
                      static_cast<double>(bench_model.KvBytesPerToken());
  opts.gpu_ctx_scale = geom;
  opts.gpu_fixed_scale = geom;
  return opts;
}

Result<MethodEval> EvaluateMethod(const SyntheticContext& context,
                                  MethodRunner* runner, const EvalOptions& options) {
  const ModelConfig& m = runner->model();
  const size_t d = m.head_dim;
  const size_t steps =
      options.decode_steps > 0 ? options.decode_steps : context.spec().decode_steps;

  MethodEval eval;
  eval.label = runner->spec().label;
  eval.gpu_bytes = runner->GpuBytes();

  MeanAccumulator fid, retr, attend, recov;
  double cpu_total = 0, gpu_ctx_total = 0, gpu_fixed_total = 0;
  std::vector<float> q(d), out(d), oracle(d);
  std::vector<uint32_t> used_ids;

  for (size_t step = 0; step < steps; ++step) {
    for (uint32_t layer = 0; layer < m.num_layers; ++layer) {
      for (uint32_t h = 0; h < m.num_q_heads; ++h) {
        context.MakeDecodeQuery(step, layer, h, q.data());
        MethodHeadStats stats;
        ALAYA_RETURN_IF_ERROR(runner->AttendHead(
            layer, h, q.data(), out.data(), &stats,
            options.collect_recovery ? &used_ids : nullptr));
        context.OracleOutput(step, layer, h, oracle.data());
        fid.Add(CosineFidelity(out.data(), oracle.data(), d));
        retr.Add(static_cast<double>(stats.retrieved));
        attend.Add(static_cast<double>(stats.attended));
        cpu_total += stats.cpu_seconds;
        gpu_ctx_total += stats.gpu_ctx_seconds;
        gpu_fixed_total += stats.gpu_fixed_seconds;
        if (options.collect_recovery) {
          const uint32_t kv_head = m.KvHeadForQuery(h);
          VectorSetView keys = context.kv().Keys(layer, kv_head);
          recov.Add(RecoveryRatio(q.data(), keys, keys.n, used_ids));
        }
      }
    }
  }

  eval.fidelity = fid.Mean();
  eval.mean_retrieved = retr.Mean();
  eval.mean_attended = attend.Mean();
  eval.recovery = recov.Mean();
  eval.cpu_seconds_per_step = cpu_total / static_cast<double>(steps);
  eval.gpu_modeled_per_step =
      (gpu_ctx_total + gpu_fixed_total) / static_cast<double>(steps);
  eval.tpot_seconds =
      eval.cpu_seconds_per_step * options.cpu_work_scale * options.layer_head_scale /
          options.server_parallelism +
      gpu_ctx_total / static_cast<double>(steps) * options.gpu_ctx_scale +
      gpu_fixed_total / static_cast<double>(steps) * options.gpu_fixed_scale;
  eval.slo_met = eval.tpot_seconds <= options.slo_tpot_seconds;
  return eval;
}

void AnchorScores(std::vector<MethodEval>* evals, double paper_full_score) {
  double full_fidelity = 0;
  for (const auto& e : *evals) {
    if (e.label.rfind("Full", 0) == 0) full_fidelity = e.fidelity;
  }
  if (full_fidelity <= 0) {
    for (const auto& e : *evals) full_fidelity = std::max(full_fidelity, e.fidelity);
  }
  for (auto& e : *evals) {
    e.score = AnchoredScore(e.fidelity, full_fidelity, paper_full_score);
  }
}

}  // namespace alaya
