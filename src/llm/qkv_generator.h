// Synthetic transformer context with planted attention structure.
//
// Construction (DESIGN.md §2.1). For every (layer, KV head):
//   - `num_topics` random unit "topic" directions partition a small subset of
//     tokens into planted critical sets; per-head sizes follow a log-normal
//     factor (Observation I) scaled by the task's critical_base
//     (Observation II) and a layer-0 boost (Fig. 5).
//   - a critical token's key is constructed at an exact cosine to its topic
//     direction, so its scaled logit z = q.k/sqrt(d) lands uniformly in the
//     task's [crit_z_min, crit_z_max] band;
//   - background keys are scaled Gaussian noise (z ~ N(0, ~noise_z_sigma));
//   - attention sinks: decode queries carry a fixed component along a per-head
//     sink direction matched by the initial tokens' keys, so the max-IP key
//     sits in the cached window (the §7.1 ~98% observation);
//   - values encode "content": topic tokens share a topic value direction, so
//     attention outputs reveal whether the right critical set was attended.
//
// Decode queries are built from the same topic directions with jitter —
// faithfully out-of-distribution w.r.t. keys, which is exactly the regime
// RoarGraph targets.
#pragma once

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/core/kv_cache.h"
#include "src/core/query_samples.h"
#include "src/llm/workloads.h"

namespace alaya {

struct SyntheticContextOptions {
  ModelConfig model = ModelConfig::Bench();
  WorkloadSpec spec;
  uint32_t num_topics = 8;
  uint32_t num_sinks = 4;
  /// Angular jitter of decode queries around the topic direction (radians-ish:
  /// the perturbation's norm relative to the unit direction).
  double query_jitter = 0.06;
  /// Training queries get wider jitter so the bipartite kNN covers more of
  /// each critical cone.
  double training_jitter = 0.25;
  /// Sink tokens carry near-zero value mass (they are sinks, not content —
  /// their large softmax weight must not wash out the signal).
  double sink_value_scale = 0.02;
  /// Parallel generation pool (nullptr -> Global).
  ThreadPool* pool = nullptr;
};

class SyntheticContext {
 public:
  explicit SyntheticContext(const SyntheticContextOptions& options);

  /// Generates keys/values for all layers and heads. Deterministic in
  /// options.spec.seed.
  Status Generate();

  const ModelConfig& model() const { return options_.model; }
  const WorkloadSpec& spec() const { return options_.spec; }
  size_t num_tokens() const { return options_.spec.context_tokens; }
  const KvCache& kv() const { return *kv_; }
  std::unique_ptr<KvCache> TakeKv() { return std::move(kv_); }
  /// Synthetic token ids (deterministic per seed) for DB prefix matching.
  const std::vector<int32_t>& tokens() const { return tokens_; }

  /// Topic targeted by a decode step for (layer, q_head).
  uint32_t StepTopic(size_t step, uint32_t layer, uint32_t q_head) const;

  /// Writes the decode query (head_dim floats) for (step, layer, q_head).
  void MakeDecodeQuery(size_t step, uint32_t layer, uint32_t q_head, float* q) const;
  /// All heads of one layer: [num_q_heads * head_dim].
  void MakeDecodeQueryLayer(size_t step, uint32_t layer, float* q) const;

  /// Ground-truth critical token ids for (step, layer, q_head)'s query.
  const std::vector<uint32_t>& CriticalSet(size_t step, uint32_t layer,
                                           uint32_t q_head) const;

  /// Planted members of (layer, kv_head, topic).
  const std::vector<uint32_t>& TopicMembers(uint32_t layer, uint32_t kv_head,
                                            uint32_t topic) const;

  /// Per-head critical-size factor (Fig. 5 analysis).
  double HeadFactor(uint32_t layer, uint32_t kv_head) const;

  /// Oracle output: exact attention restricted to the planted critical set
  /// plus sinks — the "right answer" quality is measured against.
  void OracleOutput(size_t step, uint32_t layer, uint32_t q_head, float* out) const;

  /// Training queries for index construction: `per_head` jittered queries per
  /// query head, cycling over topics.
  std::unique_ptr<QuerySamples> MakeTrainingQueries(size_t per_head) const;

  uint32_t num_sinks() const { return options_.num_sinks; }

 private:
  struct HeadPlan {
    std::vector<std::vector<uint32_t>> topic_members;
    std::vector<float> topic_dirs;  ///< [num_topics, d], unit rows.
    std::vector<float> sink_dir;    ///< [d], unit.
    double head_factor = 1.0;
  };

  const HeadPlan& Plan(uint32_t layer, uint32_t kv_head) const {
    return plans_[static_cast<size_t>(layer) * options_.model.num_kv_heads + kv_head];
  }
  HeadPlan& MutablePlan(uint32_t layer, uint32_t kv_head) {
    return plans_[static_cast<size_t>(layer) * options_.model.num_kv_heads + kv_head];
  }

  void GenerateHead(uint32_t layer, uint32_t kv_head, uint64_t seed,
                    std::vector<float>* keys, std::vector<float>* values);
  void BuildQuery(uint32_t layer, uint32_t kv_head, uint32_t topic, Rng* rng,
                  float* q, double jitter_scale) const;

  SyntheticContextOptions options_;
  std::unique_ptr<KvCache> kv_;
  std::vector<HeadPlan> plans_;
  std::vector<int32_t> tokens_;
};

}  // namespace alaya
