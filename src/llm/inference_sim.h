// Decode-loop evaluation harness: runs a sparse-attention method over a
// synthetic context and reports quality, TPOT, and device memory — the
// measurement pipeline behind Table 5, Fig. 6, and Fig. 9.
#pragma once

#include <string>
#include <vector>

#include "src/baselines/method_runner.h"
#include "src/llm/qkv_generator.h"

namespace alaya {

struct EvalOptions {
  /// Decode steps (0 -> spec.decode_steps).
  size_t decode_steps = 0;
  /// TPOT SLO: 0.24 s (human reading speed, §9.1).
  double slo_tpot_seconds = 0.24;

  // TPOT scaling to full-model equivalents (DESIGN.md §2.3): bench geometry is
  // smaller than Llama-3-8B, so host work scales by the layer*head ratio
  // (divided by server parallelism — searches run concurrently across heads).
  // Modeled device work scales by the KV-bytes ratio; the context-linear part
  // (full-attention streaming) additionally scales by 1/context_scale, while
  // window/cache work is context-independent.
  double layer_head_scale = 1.0;
  double server_parallelism = 24.0;
  /// Extra host-work scale: head_dim ratio (dot products are linear in d) and
  /// graph search depth ratio (log of context ratio). Set by bench_util.
  double cpu_work_scale = 1.0;
  double gpu_ctx_scale = 1.0;
  double gpu_fixed_scale = 1.0;

  /// Also compute exact recovery ratios (adds an O(n) scan per head-step).
  bool collect_recovery = false;
};

/// Scaling options mapping a bench geometry to Llama-3-8B equivalents.
EvalOptions MakeScaledEvalOptions(const ModelConfig& bench_model,
                                  double server_parallelism = 24.0);

struct MethodEval {
  std::string label;
  double fidelity = 0;    ///< Mean cosine to the oracle output.
  double score = 0;       ///< Anchored task score (fill via AnchorScores).
  double tpot_seconds = 0;
  double cpu_seconds_per_step = 0;
  double gpu_modeled_per_step = 0;  ///< ctx + fixed parts, unscaled.
  uint64_t gpu_bytes = 0;
  double mean_retrieved = 0;
  double mean_attended = 0;
  double recovery = 0;
  bool slo_met = true;
};

/// Runs the decode loop. The runner must be Prepare()d on `context`.
Result<MethodEval> EvaluateMethod(const SyntheticContext& context,
                                  MethodRunner* runner, const EvalOptions& options);

/// Converts fidelities to anchored task scores in place. `evals` must contain
/// a row whose label starts with "Full" to anchor against; if absent, the max
/// fidelity anchors.
void AnchorScores(std::vector<MethodEval>* evals, double paper_full_score);

}  // namespace alaya
