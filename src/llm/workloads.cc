#include "src/llm/workloads.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace alaya {

namespace {

WorkloadSpec MakeSpec(const std::string& name, double ctx_k_tokens, double scale,
                      double critical_base, double head_sigma, double z_min,
                      double z_max, double noise_sigma, double bg_norm,
                      double paper_score, uint64_t seed) {
  WorkloadSpec s;
  s.name = name;
  s.context_tokens = static_cast<size_t>(ctx_k_tokens * 1000.0 * scale);
  s.critical_base = critical_base;
  s.head_sigma = head_sigma;
  s.crit_z_min = z_min;
  s.crit_z_max = z_max;
  // Sinks sit well above the critical band: cross-projection noise has
  // sigma ~ sink_z/sqrt(d) (~1.7 at d=64), so a 4-sigma-ish margin keeps the
  // global max inside the window (§7.1's ~98% observation).
  s.sink_z = z_max + 4.0;
  s.noise_z_sigma = noise_sigma;
  s.bg_key_norm = bg_norm;
  s.paper_full_score = paper_score;
  s.seed = seed;
  return s;
}

}  // namespace

std::vector<WorkloadSpec> InfinityBenchSuite(double context_scale) {
  // Task profiles: (avg ctx length from InfinityBench, planted critical size,
  // head spread, logit band, noise). High noise_sigma + low band => full
  // attention is diluted (sparse methods can beat it, as the paper observes on
  // Retr.KV); tight high band + low noise => retrieval tasks where quality is
  // all-or-nothing on finding the needle.
  std::vector<WorkloadSpec> suite;
  // Retr.KV: dispersed key-value pairs, many critical tokens, heavy dilution.
  suite.push_back(MakeSpec("Retr.KV", 89.9, context_scale, 512, 1.1, 4.6, 6.6, 1.05,
                           1.0, 15.8, 101));
  // Retr.P / Retr.N: single planted needle region, crisp logits.
  suite.push_back(MakeSpec("Retr.P", 176.6, context_scale, 48, 0.8, 8.2, 10.4, 0.7,
                           0.6, 100.0, 102));
  suite.push_back(MakeSpec("Retr.N", 192.6, context_scale, 40, 0.8, 8.2, 10.4, 0.7,
                           0.6, 100.0, 103));
  // Code.D: moderate spread, mid-band logits.
  suite.push_back(MakeSpec("Code.D", 44.0, context_scale, 160, 1.0, 6.2, 8.2, 0.9,
                           0.8, 27.4, 104));
  // En.MC: multiple-choice over long novels.
  suite.push_back(MakeSpec("En.MC", 142.4, context_scale, 128, 1.0, 7.4, 9.4, 0.8,
                           0.7, 55.9, 105));
  // En.QA: open QA, wider critical sets.
  suite.push_back(MakeSpec("En.QA", 184.4, context_scale, 224, 1.1, 6.6, 8.6, 0.9,
                           0.8, 31.0, 106));
  // En.Sum: summarization, diffuse criticality.
  suite.push_back(MakeSpec("En.Sum", 171.5, context_scale, 384, 1.2, 5.6, 7.6, 1.0,
                           0.9, 15.1, 107));
  // Math.F: window-dominated (math_find: ~98% of maxima in the 32+32 window).
  suite.push_back(MakeSpec("Math.F", 43.9, context_scale, 32, 0.9, 7.2, 10.0, 0.8,
                           0.7, 19.1, 108));
  return suite;
}

std::vector<WorkloadSpec> LongBenchSuite(double context_scale) {
  // Table 3: planted k and context length chosen so k/context matches the
  // paper's reported proportion. (Qasper 350 @ 9.67%, Passage R. 250 @ 2.69%,
  // HotpotQA 200 @ 2.19%, QMSum 150 @ 1.41%, LCC 65 @ 5.26%, TriviaQA 20 @
  // 0.24%.)
  std::vector<WorkloadSpec> suite;
  suite.push_back(MakeSpec("Qasper", 350 / 0.0967 / 1000.0, context_scale, 350, 0.9,
                           6.4, 8.4, 0.9, 0.8, 43.0, 201));
  suite.push_back(MakeSpec("Passage R.", 250 / 0.0269 / 1000.0, context_scale, 250,
                           0.9, 7.6, 9.6, 0.8, 0.7, 90.0, 202));
  suite.push_back(MakeSpec("HotpotQA", 200 / 0.0219 / 1000.0, context_scale, 200, 0.9,
                           7.0, 9.0, 0.8, 0.7, 55.0, 203));
  suite.push_back(MakeSpec("QMSum", 150 / 0.0141 / 1000.0, context_scale, 150, 1.0,
                           6.2, 8.2, 0.9, 0.8, 25.0, 204));
  suite.push_back(MakeSpec("LCC", 65 / 0.0526 / 1000.0, context_scale, 65, 0.8, 7.2,
                           9.2, 0.8, 0.7, 59.0, 205));
  suite.push_back(MakeSpec("TriviaQA", 20 / 0.0024 / 1000.0, context_scale, 20, 0.8,
                           8.0, 10.2, 0.7, 0.6, 91.0, 206));
  return suite;
}

double SuggestedDiprBeta(const WorkloadSpec& spec, uint32_t head_dim, double margin) {
  return (spec.sink_z - spec.crit_z_min + margin) *
         std::sqrt(static_cast<double>(head_dim));
}

WorkloadSpec FindTask(const std::vector<WorkloadSpec>& suite, const std::string& name) {
  for (const auto& s : suite) {
    if (s.name == name) return s;
  }
  std::fprintf(stderr, "unknown task: %s\n", name.c_str());
  std::abort();
}

}  // namespace alaya
