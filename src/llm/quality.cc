#include "src/llm/quality.h"

#include <algorithm>

#include "src/common/vec_math.h"

namespace alaya {

double CosineFidelity(const float* method_out, const float* oracle_out, size_t d) {
  const double cs = CosineSim(method_out, oracle_out, d);
  return std::clamp(cs, 0.0, 1.0);
}

double AnchoredScore(double method_fidelity, double full_fidelity,
                     double paper_full_score, double max_boost) {
  if (full_fidelity <= 1e-6) return 0.0;
  const double ratio =
      std::clamp(method_fidelity / full_fidelity, 0.0, max_boost);
  return std::min(100.0, paper_full_score * ratio);
}

}  // namespace alaya
