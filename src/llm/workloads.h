// Synthetic workload profiles mirroring the paper's evaluation suites.
//
// Substitution (DESIGN.md §2.1-2.2): instead of running a real Llama-3-8B on
// ∞-Bench / LongBench text, each task is a profile of attention-sparsity
// statistics — planted critical-set sizes (Observation II / Table 3),
// cross-head dispersion (Observation I / Fig. 5), logit bands, and noise
// dilution — with the paper's full-attention scores as calibration anchors.
// Everything the reproduced experiments measure (retrieval recall, DIPR
// adaptivity, latency, memory) depends only on these statistics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace alaya {

/// Scaled-logit (z = q.k / sqrt(d)) parameters of one task's attention shape.
struct WorkloadSpec {
  std::string name;
  /// Context length (tokens). Suite factories scale the paper's averages down
  /// by `context_scale` so CPU full-attention references stay feasible.
  size_t context_tokens = 32768;
  /// Decode steps evaluated per task.
  size_t decode_steps = 16;

  /// Typical planted critical-set size per head (task-level k, Table 3).
  double critical_base = 128;
  /// Log-normal sigma of the per-head critical-size factor (Obs. I: heads
  /// differ by orders of magnitude).
  double head_sigma = 1.0;
  /// Multiplier on critical sizes for layer 0 (Fig. 5/Fig. 8: the first layer
  /// needs far more tokens).
  double layer0_boost = 8.0;

  /// Critical tokens' scaled logits are uniform in [crit_z_min, crit_z_max].
  double crit_z_min = 7.0;
  double crit_z_max = 9.0;
  /// Scaled logit of attention-sink tokens (initial window); the §7.1
  /// observation that the max-IP key is almost always in the window.
  double sink_z = 9.2;
  /// Background tokens: z ~ N(0, noise_z_sigma) * key norm rho. Their total
  /// exp-mass controls how much full attention is diluted (tasks where sparse
  /// attention *beats* full attention, e.g. Retr.KV, have heavy dilution).
  double noise_z_sigma = 0.8;
  /// Background key norm (relative to unit critical keys).
  double bg_key_norm = 0.7;

  /// Paper's Full Attention score on this task (Table 5) — the calibration
  /// anchor: reported scores = anchor * (method fidelity / full fidelity).
  double paper_full_score = 100.0;

  uint64_t seed = 1;
};

/// The 8 ∞-Bench tasks of Table 5 (context lengths = paper averages *
/// context_scale).
std::vector<WorkloadSpec> InfinityBenchSuite(double context_scale = 0.125);

/// The 6 LongBench tasks of Table 3. Planted critical sizes equal the paper's
/// reported k so the Table 3 bench can *recover* them from measurements.
std::vector<WorkloadSpec> LongBenchSuite(double context_scale = 1.0);

/// Finds a task by name; aborts if missing (bench convenience).
WorkloadSpec FindTask(const std::vector<WorkloadSpec>& suite, const std::string& name);

/// DIPR beta (raw inner-product units, Definition 2) that spans from the
/// window maximum (the sink logit, which seeds the threshold per §7.1) down to
/// the bottom of the task's critical band, plus a jitter margin:
///   beta = (sink_z - crit_z_min + margin) * sqrt(d).
double SuggestedDiprBeta(const WorkloadSpec& spec, uint32_t head_dim,
                         double margin = 0.8);

}  // namespace alaya
