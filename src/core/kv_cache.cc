#include "src/core/kv_cache.h"

#include <cassert>

namespace alaya {

KvCache::KvCache(const ModelConfig& config) : config_(config) {
  heads_.resize(static_cast<size_t>(config_.num_layers) * config_.num_kv_heads);
  for (auto& h : heads_) {
    h.keys.Reset(config_.head_dim);
    h.values.Reset(config_.head_dim);
  }
}

void KvCache::AppendToken(uint32_t layer, const float* k, const float* v) {
  assert(layer < config_.num_layers);
  for (uint32_t h = 0; h < config_.num_kv_heads; ++h) {
    KvHeadStore& store = heads_[Slot(layer, h)];
    store.keys.Append(k + static_cast<size_t>(h) * config_.head_dim);
    store.values.Append(v + static_cast<size_t>(h) * config_.head_dim);
  }
}

void KvCache::AppendTokens(uint32_t layer, size_t count, const float* k,
                           const float* v) {
  const size_t stride = static_cast<size_t>(config_.num_kv_heads) * config_.head_dim;
  for (size_t t = 0; t < count; ++t) {
    AppendToken(layer, k + t * stride, v + t * stride);
  }
}

size_t KvCache::NumTokens(uint32_t layer) const {
  assert(layer < config_.num_layers);
  return heads_[Slot(layer, 0)].keys.size();
}

VectorSetView KvCache::Keys(uint32_t layer, uint32_t kv_head) const {
  return heads_[Slot(layer, kv_head)].keys.View();
}

VectorSetView KvCache::Values(uint32_t layer, uint32_t kv_head) const {
  return heads_[Slot(layer, kv_head)].values.View();
}

KvHeadStore& KvCache::Head(uint32_t layer, uint32_t kv_head) {
  return heads_[Slot(layer, kv_head)];
}

const KvHeadStore& KvCache::Head(uint32_t layer, uint32_t kv_head) const {
  return heads_[Slot(layer, kv_head)];
}

Status KvCache::AppendPrefixFrom(const KvCache& src, size_t count) {
  if (src.config_.num_layers != config_.num_layers ||
      src.config_.num_kv_heads != config_.num_kv_heads ||
      src.config_.head_dim != config_.head_dim) {
    return Status::InvalidArgument("KV cache geometry mismatch");
  }
  if (count > src.NumTokens()) {
    return Status::OutOfRange("prefix longer than source cache");
  }
  for (uint32_t layer = 0; layer < config_.num_layers; ++layer) {
    for (uint32_t h = 0; h < config_.num_kv_heads; ++h) {
      KvHeadStore& dst = heads_[Slot(layer, h)];
      const KvHeadStore& s = src.heads_[Slot(layer, h)];
      dst.keys.AppendBatch(s.keys.raw(), count);
      dst.values.AppendBatch(s.values.raw(), count);
    }
  }
  return Status::Ok();
}

Status KvCache::AppendAllFrom(const KvCache& src) {
  return AppendPrefixFrom(src, src.NumTokens());
}

uint64_t KvCache::FloatBytes() const {
  uint64_t bytes = 0;
  for (const auto& h : heads_) bytes += h.keys.MemoryBytes() + h.values.MemoryBytes();
  return bytes;
}

uint64_t KvCache::DeployedBytes() const {
  return NumTokens() * config_.KvBytesPerToken();
}

void KvCache::Reserve(uint32_t layer, size_t tokens) {
  for (uint32_t h = 0; h < config_.num_kv_heads; ++h) {
    heads_[Slot(layer, h)].keys.Reserve(tokens);
    heads_[Slot(layer, h)].values.Reserve(tokens);
  }
}

}  // namespace alaya
