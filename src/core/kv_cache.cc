#include "src/core/kv_cache.h"

#include <algorithm>
#include <cassert>

namespace alaya {

KvCache::KvCache(const ModelConfig& config) : config_(config) {
  heads_.resize(static_cast<size_t>(config_.num_layers) * config_.num_kv_heads);
  for (auto& h : heads_) {
    h.keys.Reset(config_.head_dim);
    h.values.Reset(config_.head_dim);
  }
}

void KvCache::AppendToken(uint32_t layer, const float* k, const float* v) {
  assert(layer < config_.num_layers);
  for (uint32_t h = 0; h < config_.num_kv_heads; ++h) {
    KvHeadStore& store = heads_[Slot(layer, h)];
    store.keys.Append(k + static_cast<size_t>(h) * config_.head_dim);
    store.values.Append(v + static_cast<size_t>(h) * config_.head_dim);
  }
}

void KvCache::AppendTokens(uint32_t layer, size_t count, const float* k,
                           const float* v) {
  const size_t stride = static_cast<size_t>(config_.num_kv_heads) * config_.head_dim;
  for (size_t t = 0; t < count; ++t) {
    AppendToken(layer, k + t * stride, v + t * stride);
  }
}

size_t KvCache::NumTokens(uint32_t layer) const {
  assert(layer < config_.num_layers);
  return heads_[Slot(layer, 0)].keys.size();
}

VectorSetView KvCache::Keys(uint32_t layer, uint32_t kv_head) const {
  return heads_[Slot(layer, kv_head)].keys.View();
}

VectorSetView KvCache::Values(uint32_t layer, uint32_t kv_head) const {
  return heads_[Slot(layer, kv_head)].values.View();
}

KvHeadStore& KvCache::Head(uint32_t layer, uint32_t kv_head) {
  return heads_[Slot(layer, kv_head)];
}

const KvHeadStore& KvCache::Head(uint32_t layer, uint32_t kv_head) const {
  return heads_[Slot(layer, kv_head)];
}

Status KvCache::AppendPrefixFrom(const KvCache& src, size_t count) {
  if (src.config_.num_layers != config_.num_layers ||
      src.config_.num_kv_heads != config_.num_kv_heads ||
      src.config_.head_dim != config_.head_dim) {
    return Status::InvalidArgument("KV cache geometry mismatch");
  }
  if (count > src.NumTokens()) {
    return Status::OutOfRange("prefix longer than source cache");
  }
  for (uint32_t layer = 0; layer < config_.num_layers; ++layer) {
    for (uint32_t h = 0; h < config_.num_kv_heads; ++h) {
      KvHeadStore& dst = heads_[Slot(layer, h)];
      const KvHeadStore& s = src.heads_[Slot(layer, h)];
      dst.keys.AppendBatch(s.keys.raw(), count);
      dst.values.AppendBatch(s.values.raw(), count);
    }
  }
  return Status::Ok();
}

Status KvCache::AppendAllFrom(const KvCache& src) {
  return AppendPrefixFrom(src, src.NumTokens());
}

uint64_t KvCache::FloatBytes() const {
  uint64_t bytes = 0;
  for (const auto& h : heads_) bytes += h.keys.MemoryBytes() + h.values.MemoryBytes();
  return bytes;
}

uint64_t KvCache::DeployedBytes() const {
  const uint64_t full = NumTokens() * config_.KvBytesPerToken();
  const uint64_t bps = config_.bytes_per_scalar;
  const uint64_t coded = std::min<uint64_t>(bps, CodecBytesPerScalar(codec_));
  return full / bps * coded;
}

void KvCache::QuantizeInPlace(VectorCodec codec) {
  codec_ = codec;
  key_params_.assign(heads_.size(), CodecParams{});
  val_params_.assign(heads_.size(), CodecParams{});
  if (codec == VectorCodec::kFp32) return;
  for (size_t s = 0; s < heads_.size(); ++s) {
    KvHeadStore& h = heads_[s];
    const size_t n = h.keys.size();
    if (n == 0) continue;
    QuantizeRows(h.keys.MutableVec(0), n, config_.head_dim, codec, &key_params_[s]);
    QuantizeRows(h.values.MutableVec(0), n, config_.head_dim, codec, &val_params_[s]);
  }
}

void KvCache::SetCodecState(VectorCodec codec, std::vector<CodecParams> key_params,
                            std::vector<CodecParams> val_params) {
  codec_ = codec;
  if (codec == VectorCodec::kFp32) {
    key_params_.clear();
    val_params_.clear();
    return;
  }
  assert(key_params.size() == heads_.size() && val_params.size() == heads_.size());
  key_params_ = std::move(key_params);
  val_params_ = std::move(val_params);
}

const CodecParams& KvCache::KeyParams(uint32_t layer, uint32_t kv_head) const {
  static const CodecParams kIdentity;
  return key_params_.empty() ? kIdentity : key_params_[Slot(layer, kv_head)];
}

const CodecParams& KvCache::ValParams(uint32_t layer, uint32_t kv_head) const {
  static const CodecParams kIdentity;
  return val_params_.empty() ? kIdentity : val_params_[Slot(layer, kv_head)];
}

void KvCache::Reserve(uint32_t layer, size_t tokens) {
  for (uint32_t h = 0; h < config_.num_kv_heads; ++h) {
    heads_[Slot(layer, h)].keys.Reserve(tokens);
    heads_[Slot(layer, h)].values.Reserve(tokens);
  }
}

}  // namespace alaya
