// Compressed (radix) trie over stored token sequences: the sublinear engine
// behind ContextStore::BestPrefixMatch. The linear scan it replaces touches
// every stored context per lookup; the trie walks only the query's own
// prefix, so lookup cost is O(match length) regardless of how many contexts
// the store holds — the property a long-lived serving store needs.
//
// Edges carry compressed token runs (path compression), so node count is
// bounded by sequences and their divergence points, not by total tokens.
// Every node keeps the set of sequence ids in its subtree: the deepest node a
// query reaches yields both the exact common-prefix length and, via the set's
// minimum, the same winner the linear scan's first-strictly-greater rule
// picked (lowest id among the maxima) — tie-breaking is bit-compatible.
//
// Not thread-safe; ContextStore guards it with its reader/writer lock.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <vector>

namespace alaya {

class TokenTrie {
 public:
  struct Best {
    uint64_t id = 0;      ///< 0 when nothing matched (matched == 0).
    size_t matched = 0;   ///< Longest common prefix with any stored sequence.
  };

  /// Indexes `tokens` under `id`. Ids must be unique across live sequences;
  /// two ids may carry identical token sequences.
  void Insert(uint64_t id, std::span<const int32_t> tokens);

  /// Removes the sequence previously inserted under `id`. `tokens` must be
  /// the exact sequence passed to Insert. Returns false when the id was not
  /// on that path (nothing is changed).
  bool Erase(uint64_t id, std::span<const int32_t> tokens);

  /// The stored sequence sharing the longest common prefix with `tokens`
  /// (lowest id on ties). {0, 0} when no sequence shares even one token.
  Best BestPrefix(std::span<const int32_t> tokens) const;

  size_t size() const { return size_; }  ///< Live sequences.
  /// Allocated trie nodes (root excluded) — observability for tests: path
  /// compression keeps this bounded by sequences + divergence points, not
  /// total tokens.
  size_t node_count() const { return node_count_; }

 private:
  struct Node {
    std::vector<int32_t> label;  ///< Compressed edge into this node.
    /// Every sequence id whose tokens pass through (or end inside) this
    /// node's subtree. Non-empty for all live nodes; emptied nodes are pruned.
    std::set<uint64_t> ids;
    std::map<int32_t, std::unique_ptr<Node>> children;  ///< By label.front().
  };

  Node root_;  ///< Empty label; ids = every live sequence.
  size_t size_ = 0;
  size_t node_count_ = 0;
};

}  // namespace alaya
