// Persistence of stored contexts through the vector file system (§7.3):
// each (layer, KV head)'s keys, values, and fine-index adjacency are written
// to block-structured vector files, so contexts survive restarts and cold
// contexts can be spilled from host DRAM to NVMe.
//
// File naming: "<prefix>_L<layer>_H<head>_keys" / "..._vals"; the graph
// adjacency rides in the keys file's index blocks (the layout the paper
// describes: data blocks and graph-linked index blocks in one file).
// A small manifest file ("<prefix>_manifest") records geometry, tokens,
// device affinity, payload sizes and the original index build accounting —
// everything the tiered store needs to register a spilled placeholder
// without touching the (much larger) KV payload files.
//
// Torn-write safety: the payload head files are written FIRST and the
// manifest LAST, so the manifest is the commit record — a crash mid-persist
// leaves payload files with no manifest, which warm start simply never sees.
// The manifest itself ends in a trailer (magic, generation stamp, checksum
// over every preceding row), so a torn or bit-rotted manifest is detected and
// rejected as Corruption instead of resurrecting a half-persisted context.
#pragma once

#include <string>
#include <vector>

#include "src/core/context_store.h"
#include "src/storage/vector_file_system.h"

namespace alaya {

/// Everything a manifest records beyond the raw KV payload. Reading this is
/// cheap (one small file) — warm start registers placeholders from it and
/// defers the per-head files until a prefix hit demand-pages them.
struct ContextManifest {
  size_t length = 0;
  uint32_t num_layers = 0;
  uint32_t num_kv_heads = 0;
  uint32_t head_dim = 0;
  bool has_fine = false;
  int resident_device = 0;
  uint64_t kv_bytes = 0;     ///< DeployedBytes of the persisted KV cache.
  uint64_t index_bytes = 0;  ///< In-memory bytes of the persisted indices.
  IndexBuildStats build_stats;
  std::vector<int32_t> tokens;
  /// KV quantization codec (manifest v3). v2 manifests — everything persisted
  /// before codecs existed — load as kFp32 with empty params.
  VectorCodec kv_codec = VectorCodec::kFp32;
  /// Per-(layer, kv_head) affine params, KvCache Slot() order (layer-major);
  /// empty for kFp32.
  std::vector<CodecParams> key_params;
  std::vector<CodecParams> val_params;
  /// Monotone stamp the tiered store assigns per persist — distinguishes a
  /// re-persisted context from a stale manifest generation on warm start.
  uint64_t generation = 0;
};

class ContextSerializer {
 public:
  explicit ContextSerializer(VectorFileSystem* vfs) : vfs_(vfs) {}

  /// Persists the context's KV cache and (if built) its fine-index graphs.
  /// `prefix` namespaces the files (e.g. "ctx42"). Payload files land first;
  /// the manifest — stamped with `generation` and ending in a checksum
  /// trailer — is written last, as the commit record.
  ///
  /// Quantized KV: the payload rows are already on the codec's grid (fp32
  /// storage convention), so they persist verbatim; the manifest is written
  /// in the v3 layout, which adds the codec id and the per-head scale /
  /// zero-point rows. fp32 contexts keep writing the v2 layout byte-for-byte,
  /// and v2 manifests load as kFp32 — old spill directories stay readable.
  Status Persist(const Context& context, const std::string& prefix,
                 uint64_t generation = 0);

  /// Loads a previously persisted context. Fine indices are restored from the
  /// stored adjacency (no rebuild; fine_indices_restored() proves it), and
  /// the manifest's resident_device / build_stats carry over — a warm-started
  /// store keeps device affinity and the original construction cost.
  /// `id` becomes the context's id.
  Result<std::unique_ptr<Context>> Load(const std::string& prefix, uint64_t id,
                                        const ModelConfig& model,
                                        const RoarGraphOptions& graph_options);

  /// Reads only the manifest — no KV, no adjacency. Rejects manifests whose
  /// geometry does not match `model` (same contract as Load).
  Result<ContextManifest> LoadManifest(const std::string& prefix,
                                       const ModelConfig& model);

  /// The manifest name for a namespace prefix ("ctx42" -> "ctx42_manifest");
  /// warm start enumerates VFS names and inverts this.
  static std::string ManifestName(const std::string& prefix);

 private:
  static std::string HeadName(const std::string& prefix, uint32_t layer,
                              uint32_t head, const char* what);
  /// LoadManifest body; the public wrapper maps OutOfRange (file shorter than
  /// its own geometry claims — a torn write) to Corruption.
  Result<ContextManifest> LoadManifestImpl(const std::string& prefix,
                                           const ModelConfig& model);

  VectorFileSystem* vfs_;
};

}  // namespace alaya
