// Persistence of stored contexts through the vector file system (§7.3):
// each (layer, KV head)'s keys, values, and fine-index adjacency are written
// to block-structured vector files, so contexts survive restarts and cold
// contexts can be spilled from host DRAM to NVMe.
//
// File naming: "<prefix>_L<layer>_H<head>_keys" / "..._vals"; the graph
// adjacency rides in the keys file's index blocks (the layout the paper
// describes: data blocks and graph-linked index blocks in one file).
// A small manifest file ("<prefix>_manifest") records geometry and tokens.
#pragma once

#include <string>

#include "src/core/context_store.h"
#include "src/storage/vector_file_system.h"

namespace alaya {

class ContextSerializer {
 public:
  explicit ContextSerializer(VectorFileSystem* vfs) : vfs_(vfs) {}

  /// Persists the context's KV cache and (if built) its fine-index graphs.
  /// `prefix` namespaces the files (e.g. "ctx42").
  Status Persist(const Context& context, const std::string& prefix);

  /// Loads a previously persisted context. Fine indices are restored from the
  /// stored adjacency (no rebuild). `id` becomes the context's id.
  Result<std::unique_ptr<Context>> Load(const std::string& prefix, uint64_t id,
                                        const ModelConfig& model,
                                        const RoarGraphOptions& graph_options);

 private:
  static std::string HeadName(const std::string& prefix, uint32_t layer,
                              uint32_t head, const char* what);

  VectorFileSystem* vfs_;
};

}  // namespace alaya
