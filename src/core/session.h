// Session: connects one running inference request to its (possibly reused)
// context (§5, Table 2). Mirrors the paper's API:
//   Session.update(q, k, v, layer)   -> Update()      (DynamicCache-compatible)
//   Session.attention(q, layer) -> o -> Attention()   (flash-attention drop-in)
//
// Newly generated KV is appended to the session-local cache and attended via
// the window — it is only materialized into a physical index when
// DB.Store(session) is called (late materialization, §7.2).
#pragma once

#include <memory>
#include <vector>

#include "src/attention/window_cache.h"
#include "src/core/context_store.h"
#include "src/core/kv_cache.h"
#include "src/core/query_samples.h"
#include "src/device/device.h"
#include "src/device/gang.h"
#include "src/query/optimizer.h"

namespace alaya {

struct SessionOptions {
  WindowConfig window;
  OptimizerOptions optimizer;
  /// Per-session device budget the optimizer plans against.
  uint64_t gpu_budget_bytes = 0;
  /// Seed DIPRS pruning with the max window inner product (§7.1).
  bool use_window_dipr_hint = true;
  /// Data-centric attention (§7.2): compute partial attention where KV lives
  /// and merge. When false, models gather-then-compute (retrieved KV is
  /// charged as a PCIe transfer before a GPU kernel) — the ablation baseline.
  bool data_centric = true;
  /// Record prefill queries so DB.Store() can train RoarGraph.
  bool record_queries = true;
  size_t max_recorded_tokens = 8192;
};

/// Per-Attention-call accounting (one layer, all query heads).
struct AttentionCallStats {
  size_t retrieved_tokens = 0;  ///< Critical tokens returned by retrieval.
  size_t attended_tokens = 0;   ///< Tokens that entered softmax (incl. window).
  SearchStats search;
  double search_seconds = 0;
  double attention_seconds = 0;
  double modeled_gpu_seconds = 0;  ///< Charged device time (window part, transfers).
  std::string plan_explain;        ///< Plan of the last head (all heads agree).

  void Add(const AttentionCallStats& o) {
    retrieved_tokens += o.retrieved_tokens;
    attended_tokens += o.attended_tokens;
    search += o.search;
    search_seconds += o.search_seconds;
    attention_seconds += o.attention_seconds;
    modeled_gpu_seconds += o.modeled_gpu_seconds;
  }
};

class Session {
 public:
  /// `reused` may be nullptr (fresh context). `reused_prefix` <=
  /// reused->length() tokens of the stored context are visible to this session
  /// (partial reuse engages attribute filtering, §7.1). `device` binds the
  /// session to one GPU of the environment's DeviceSet (clamped to the fleet):
  /// its KV residency reserves bytes on that device's tracker and every
  /// modeled kernel it runs advances that device's clock.
  Session(const ModelConfig& config, const SessionOptions& options, Context* reused,
          size_t reused_prefix, SimEnvironment* env = nullptr, int device = 0);

  /// Appends one token's K/V to the session-local cache for `layer` and
  /// (optionally) records q for index training. Compatible with
  /// DynamicCache.update: the full K/V remains accessible via kv views.
  Status Update(uint32_t layer, const float* q, const float* k, const float* v);

  /// Batch prefill variant: `count` tokens, token-major layout.
  Status UpdateBatch(uint32_t layer, size_t count, const float* q, const float* k,
                     const float* v);

  /// Computes one layer's attention output for the newest token.
  /// q and out are [num_q_heads * head_dim]. Replaces flash_attn_func.
  Status Attention(uint32_t layer, const float* q, float* out,
                   AttentionCallStats* stats = nullptr);

  /// One (layer, q_head) attention call — the unit the serving engine batches
  /// across concurrent sessions. `qh`/`out_h` are this head's [head_dim]
  /// slices; `stats` must be non-null.
  ///
  /// Unlike Attention(), this does NOT advance the environment's GPU clock:
  /// batching callers aggregate stats->modeled_gpu_seconds across heads and
  /// call ChargeModeledGpuSeconds once. Reentrancy: safe to call concurrently
  /// for distinct heads of the same session (all session state it touches is
  /// read-only), provided no Update/UpdateBatch runs concurrently.
  Status AttendHead(uint32_t layer, uint32_t q_head, const float* qh, float* out_h,
                    AttentionCallStats* stats);

  /// Advances the shared environment's modeled GPU clock (thread-safe).
  /// Gang-backed sessions split the charge across members by resident-token
  /// share and add one modeled ring-exchange rotation per call (each member
  /// forwards its partial-softmax triples to its ring successor).
  void ChargeModeledGpuSeconds(double seconds);

  /// Gang-backed mode (context parallelism): shard this session's
  /// device-resident KV across `gang`'s members — per-member memory
  /// reservations follow DeviceGang::ShardMap, and modeled kernel time is
  /// split by shard weight plus a ring-exchange transfer per step. The math
  /// is untouched (the block fold runs identically either way), so a
  /// gang-backed decode is bit-identical to the single-device one. Only
  /// valid on a fresh session (no local KV, not detached) whose bound device
  /// is the gang's primary.
  Status BindGang(std::shared_ptr<const DeviceGang> gang);
  const DeviceGang* gang() const { return gang_.get(); }

  /// Lifetime bytes of modeled ring-exchange traffic (gang mode only).
  uint64_t gang_ring_transfer_bytes() const { return gang_ring_bytes_; }

  /// Everything DB.Store needs, severed from the live session — the ownership
  /// handoff that lets the serving engine retire a session immediately while
  /// materialization runs in the background. `reused_context` is a borrowed
  /// pointer: the caller must keep its pin (shared_ptr) alive for as long as
  /// the detached state references it.
  struct DetachedState {
    KvCache local_kv;
    std::unique_ptr<QuerySamples> recorded;
    size_t reused_prefix = 0;
    Context* reused_context = nullptr;
  };

  /// Moves the session-local KV and recorded queries out and releases the
  /// session's device reservation (retire == the KV leaves the device under
  /// late materialization). The session is dead afterwards: Update/Attention
  /// fail with FailedPrecondition, LocalTokens() reads zero.
  DetachedState DetachForStore();
  bool detached() const { return detached_; }

  /// Everything a *suspended* (preempted) request needs to later resume with
  /// zero recompute: the detached KV/queries plus the byte count the caller
  /// parks host-side while the request waits. Decode position and the
  /// per-request "RNG state" live engine-side — fill_step/fill_prompt are
  /// pure functions of (step/token, layer), so the engine's step and
  /// prefill_pos counters ARE the generator state; it parks them alongside
  /// this struct.
  struct SuspendedState {
    DetachedState base;
    uint64_t kv_bytes = 0;  ///< Device bytes the detach released.
  };

  /// Generalization of DetachForStore for preemption: same detach (the
  /// session is dead afterwards), plus the released byte count so the engine
  /// can reserve host memory for the parked KV and charge the modeled
  /// device→host offload transfer.
  SuspendedState DetachForSuspend();

  /// Resume-side reattach: moves a suspended request's KV and recorded
  /// queries back into this session and re-reserves device residency. Only
  /// valid on a freshly constructed session (not detached, zero local
  /// tokens) built over the same reused prefix length the suspended session
  /// had — the context *pointer* may differ (the context may have been
  /// spilled and paged back in while suspended; page-in restores it
  /// bit-identically), which is why the state's borrowed reused_context is
  /// ignored in favor of this session's own binding.
  Status AttachFromSuspend(SuspendedState&& state);

  // --- Introspection ---
  size_t reused_prefix() const { return prefix_len_; }
  bool partial_reuse() const {
    return context_ != nullptr && prefix_len_ < context_->length();
  }
  size_t LocalTokens(uint32_t layer = 0) const { return local_.NumTokens(layer); }
  size_t TotalTokens(uint32_t layer = 0) const {
    return prefix_len_ + local_.NumTokens(layer);
  }
  Context* reused_context() { return context_; }
  const Context* reused_context() const { return context_; }
  /// The device this session is bound to (id into the environment's fleet).
  int device() const { return device_->id(); }
  const KvCache& local_kv() const { return local_; }
  const QuerySamples* recorded_queries() const { return recorded_.get(); }
  const ModelConfig& config() const { return config_; }
  const SessionOptions& options() const { return options_; }
  const RuleBasedOptimizer& optimizer() const { return optimizer_; }

  /// Bytes currently GPU-resident for this session (window + local KV at
  /// deployed precision, across layers — summed over gang members when
  /// gang-backed).
  uint64_t GpuResidentBytes() const;

  /// Device-resident tokens (context window drawn from the reused prefix plus
  /// the local tail) — the sequence the gang shard map partitions.
  size_t TokensOnGpu() const;

 private:
  QueryContext MakeQueryContext(uint32_t layer) const;

  /// Re-sizes device reservations to the current residency: the single bound
  /// device's tracker normally, each gang member's shard share in gang mode.
  void RefreshDeviceReservations();

  ModelConfig config_;
  SessionOptions options_;
  Context* context_;
  size_t prefix_len_;
  SimEnvironment* env_;
  Device* device_;  ///< The fleet device this session reserves/charges on.
  KvCache local_;
  std::unique_ptr<QuerySamples> recorded_;
  RuleBasedOptimizer optimizer_;
  WindowCache window_;
  MemoryReservation gpu_reservation_;
  /// Context parallelism: non-null once BindGang succeeds. Reservations are
  /// per member (gang_reservations_[i] on member i's tracker) and replace
  /// gpu_reservation_, which stays at zero while gang-backed.
  std::shared_ptr<const DeviceGang> gang_;
  std::vector<MemoryReservation> gang_reservations_;
  uint64_t gang_ring_bytes_ = 0;
  bool detached_ = false;
};

}  // namespace alaya
