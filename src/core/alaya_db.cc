#include "src/core/alaya_db.h"

namespace alaya {

AlayaDB::AlayaDB(const DbOptions& options, SimEnvironment* env)
    : options_(options), env_(env != nullptr ? env : &SimEnvironment::Global()) {}

Result<AlayaDB::SessionCreation> AlayaDB::CreateSession(
    const std::vector<int32_t>& prompt) {
  ALAYA_RETURN_IF_ERROR(options_.model.Validate());
  SessionCreation out;
  ContextStore::PrefixMatch match = contexts_.BestPrefixMatch(prompt);
  Context* reused = nullptr;
  if (match.context != nullptr && match.matched > 0) {
    reused = match.context;
    out.reused_prefix = match.matched;
    out.context_id = match.context->id();
    out.context_ref = match.ref;
  }
  out.truncated_prompt.assign(prompt.begin() + static_cast<long>(out.reused_prefix),
                              prompt.end());
  out.session = std::make_unique<Session>(options_.model, options_.session, reused,
                                          out.reused_prefix, env_);
  return out;
}

Status AlayaDB::BuildIndices(Context* context, const QuerySamples* queries) {
  if (options_.build_fine_indices) {
    ALAYA_RETURN_IF_ERROR(context->BuildFineIndices(options_.index_build, queries));
  }
  if (options_.build_coarse_indices) {
    CoarseIndexOptions copts = options_.coarse;
    copts.gpu_memory = &env_->gpu_memory();
    if (copts.bytes_per_token_kv == 0) {
      copts.bytes_per_token_kv =
          static_cast<uint32_t>(options_.model.KvBytesPerTokenLayer());
    }
    ALAYA_RETURN_IF_ERROR(context->BuildCoarseIndices(copts));
  }
  return Status::Ok();
}

Result<uint64_t> AlayaDB::Import(std::vector<int32_t> tokens,
                                 std::unique_ptr<KvCache> kv,
                                 const QuerySamples* queries) {
  if (kv == nullptr) return Status::InvalidArgument("null KV cache");
  if (kv->NumTokens() != tokens.size()) {
    return Status::InvalidArgument("token/KV length mismatch");
  }
  const uint64_t kv_bytes = kv->DeployedBytes();
  auto context = std::make_unique<Context>(0, std::move(tokens), std::move(kv));
  ALAYA_RETURN_IF_ERROR(BuildIndices(context.get(), queries));
  env_->host_memory().Allocate(kv_bytes);  // Offloaded KV lives in host DRAM.
  return contexts_.Add(std::move(context));
}

Result<uint64_t> AlayaDB::Store(Session* session,
                                std::span<const int32_t> new_tokens) {
  if (session == nullptr) return Status::InvalidArgument("null session");
  if (new_tokens.size() != session->LocalTokens()) {
    return Status::InvalidArgument(
        "new_tokens must cover exactly the session-local tokens");
  }

  // Compose the full token sequence: reused prefix + session-local tail.
  std::vector<int32_t> tokens;
  tokens.reserve(session->reused_prefix() + new_tokens.size());
  if (const Context* reused = session->reused_context(); reused != nullptr) {
    const auto& src = reused->tokens();
    tokens.insert(tokens.end(), src.begin(),
                  src.begin() + static_cast<long>(session->reused_prefix()));
  }
  tokens.insert(tokens.end(), new_tokens.begin(), new_tokens.end());

  // Clone KV: context prefix + local tail (materialization happens here, not
  // during decoding — late materialization, §7.2).
  auto kv = std::make_unique<KvCache>(options_.model);
  if (const Context* reused = session->reused_context(); reused != nullptr) {
    ALAYA_RETURN_IF_ERROR(kv->AppendPrefixFrom(reused->kv(), session->reused_prefix()));
  }
  ALAYA_RETURN_IF_ERROR(kv->AppendAllFrom(session->local_kv()));

  const uint64_t kv_bytes = kv->DeployedBytes();
  auto context = std::make_unique<Context>(0, std::move(tokens), std::move(kv));
  // Decode-time queries recorded by the session are the ideal training set
  // (they are exactly the distribution future searches come from).
  ALAYA_RETURN_IF_ERROR(BuildIndices(context.get(), session->recorded_queries()));
  env_->host_memory().Allocate(kv_bytes);
  return contexts_.Add(std::move(context));
}

}  // namespace alaya
