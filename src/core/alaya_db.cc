#include "src/core/alaya_db.h"

#include <algorithm>

namespace alaya {

namespace {

/// Composes the stored token sequence: the reused prefix's ids followed by the
/// session-appended tail.
std::vector<int32_t> ComposeTokens(const Context* reused, size_t reused_prefix,
                                   std::span<const int32_t> new_tokens) {
  std::vector<int32_t> tokens;
  tokens.reserve(reused_prefix + new_tokens.size());
  if (reused != nullptr) {
    const auto& src = reused->tokens();
    tokens.insert(tokens.end(), src.begin(),
                  src.begin() + static_cast<long>(reused_prefix));
  }
  tokens.insert(tokens.end(), new_tokens.begin(), new_tokens.end());
  return tokens;
}

}  // namespace

AlayaDB::AlayaDB(const DbOptions& options, SimEnvironment* env)
    : options_(options), env_(env != nullptr ? env : &SimEnvironment::Global()) {
  // One quantization knob set: the index codec rides into every RoarGraph
  // build/extend/restore through index_build.roar (the tiered store below
  // captures the same options for its restore path).
  options_.index_build.roar.codec = options_.quant.index_codec;
  options_.index_build.roar.rerank_k = options_.quant.rerank_k;
  if (options_.tier.Enabled()) {
    tiers_ = std::make_unique<TieredContextStore>(
        &contexts_, env_, options_.model, options_.index_build.roar,
        options_.tier, MaterializePool());
    if (options_.tier.warm_start) {
      // Restart semantics: re-register every persisted context as a spilled
      // placeholder. Best-effort — a bad manifest is skipped, not fatal; the
      // sticky status is readable via tiers()->warm_start_status().
      (void)tiers_->WarmStart();
    }
  }
}

AlayaDB::~AlayaDB() {
  // In-flight jobs capture `this`; they must finish before members die.
  (void)WaitForMaterialization();
}

ThreadPool* AlayaDB::MaterializePool() const {
  return options_.materialize_pool != nullptr ? options_.materialize_pool
                                              : &ThreadPool::Global();
}

Result<AlayaDB::SessionCreation> AlayaDB::CreateSession(
    const std::vector<int32_t>& prompt, int device) {
  ALAYA_RETURN_IF_ERROR(options_.model.Validate());
  device = static_cast<int>(std::min<size_t>(
      static_cast<size_t>(std::max(device, 0)), env_->num_devices() - 1));
  SessionCreation out;
  ContextStore::PrefixMatch match = contexts_.BestPrefixMatch(prompt);
  if (match.spilled && match.matched > 0) {
    // The best prefix lives on disk: demand-page it back before the session
    // binds to it (ideally a no-op — the admission probe already prefetched
    // it on the materialize pool). A failed page-in degrades to a cold start
    // instead of failing the session.
    Result<std::shared_ptr<Context>> paged =
        tiers_ != nullptr ? tiers_->PageIn(match.id)
                          : Result<std::shared_ptr<Context>>(Status::NotFound(
                                "spilled context without a tier layer"));
    if (paged.ok()) {
      match.ref = std::move(paged.value());
      match.context = match.ref.get();
      match.spilled = false;
    } else {
      match = ContextStore::PrefixMatch{};
    }
  }
  Context* reused = nullptr;
  if (match.context != nullptr && match.matched > 0) {
    if (tiers_ != nullptr) tiers_->OnPrefixHit(match.id);
    reused = match.context;
    out.reused_prefix = match.matched;
    out.context_id = match.context->id();
    out.context_ref = match.ref;
    if (reused->resident_device() != device) {
      // The context is warm on another device: the window tokens the session
      // will keep device-resident have to cross the interconnect once, up
      // front. Charge the modeled transfer to the *target* device (it is the
      // one stalled waiting for the bytes) and move the context's residency
      // with the session — the affinity signal placement policies read.
      const WindowCache window(options_.session.window);
      const size_t window_tokens =
          std::min(window.Size(out.reused_prefix), out.reused_prefix);
      out.cross_device_transfer_bytes =
          static_cast<uint64_t>(window_tokens) * options_.model.KvBytesPerToken();
      Device& dst = env_->device(static_cast<size_t>(device));
      dst.clock().Advance(
          dst.cost_model().TransferSeconds(out.cross_device_transfer_bytes));
      reused->set_resident_device(device);
    }
  }
  out.truncated_prompt.assign(prompt.begin() + static_cast<long>(out.reused_prefix),
                              prompt.end());
  out.session = std::make_unique<Session>(options_.model, options_.session, reused,
                                          out.reused_prefix, env_, device);
  return out;
}

Result<AlayaDB::SessionResume> AlayaDB::ResumeSession(uint64_t context_id,
                                                      size_t reused_prefix,
                                                      int device) {
  ALAYA_RETURN_IF_ERROR(options_.model.Validate());
  device = static_cast<int>(std::min<size_t>(
      static_cast<size_t>(std::max(device, 0)), env_->num_devices() - 1));
  SessionResume out;
  Context* reused = nullptr;
  if (context_id != 0 && reused_prefix > 0) {
    out.context_ref = contexts_.FindShared(context_id);
    if (out.context_ref == nullptr && tiers_ != nullptr) {
      // The pin was dropped at suspension, so the tier layer was free to spill
      // the context to disk meanwhile. Page-in restores it bit-identically.
      Result<std::shared_ptr<Context>> paged = tiers_->PageIn(context_id);
      if (paged.ok()) out.context_ref = std::move(paged.value());
    }
    if (out.context_ref == nullptr) {
      // Removed outright while the request was suspended. The parked KV's
      // token positions are meaningless without the prefix; fail honestly
      // rather than silently recomputing (callers surface this as a lost
      // request, never as corrupted output).
      return Status::NotFound("suspended request's reused context is gone");
    }
    if (reused_prefix > out.context_ref->length()) {
      return Status::InvalidArgument(
          "suspended prefix exceeds the stored context");
    }
    reused = out.context_ref.get();
    if (tiers_ != nullptr) tiers_->OnPrefixHit(context_id);
    if (reused->resident_device() != device) {
      // Same cross-device charge as CreateSession: the resuming device pulls
      // the window bytes over the interconnect and the context re-homes.
      const WindowCache window(options_.session.window);
      const size_t window_tokens =
          std::min(window.Size(reused_prefix), reused_prefix);
      out.cross_device_transfer_bytes =
          static_cast<uint64_t>(window_tokens) * options_.model.KvBytesPerToken();
      Device& dst = env_->device(static_cast<size_t>(device));
      dst.clock().Advance(
          dst.cost_model().TransferSeconds(out.cross_device_transfer_bytes));
      reused->set_resident_device(device);
    }
  }
  out.session = std::make_unique<Session>(options_.model, options_.session, reused,
                                          reused == nullptr ? 0 : reused_prefix,
                                          env_, device);
  return out;
}

Result<uint64_t> AlayaDB::MigrateShard(uint64_t context_id, int from, int to) {
  if (from == to) return Status::InvalidArgument("migration source == target");
  std::shared_ptr<Context> ref = contexts_.FindShared(context_id);
  if (ref == nullptr) return Status::NotFound("context not in store");
  if (ref->resident_device() != from) {
    // A session re-homed the context between the caller's load probe and now
    // (last-user-wins residency). The migration plan is stale; moving it
    // anyway would fight the session that just pulled it.
    return Status::FailedPrecondition("context is not resident on the source");
  }
  // Same bytes CreateSession's cross-device reuse moves: the window over the
  // stored sequence — the part a future session keeps device-resident.
  const WindowCache window(options_.session.window);
  const size_t length = ref->length();
  const size_t window_tokens = std::min(window.Size(length), length);
  const uint64_t bytes =
      static_cast<uint64_t>(window_tokens) * options_.model.KvBytesPerToken();
  Device& dst = env_->device(static_cast<size_t>(std::max(to, 0)));
  dst.clock().Advance(dst.cost_model().TransferSeconds(bytes));
  ref->set_resident_device(to);
  return bytes;
}

Status AlayaDB::BuildIndices(Context* context, const QuerySamples* queries,
                             const Context* base, size_t base_prefix) {
  if (options_.build_fine_indices) {
    ALAYA_RETURN_IF_ERROR(context->BuildFineIndices(options_.index_build, queries,
                                                    /*total_stats=*/nullptr, base,
                                                    base_prefix));
  }
  if (options_.build_coarse_indices) {
    CoarseIndexOptions copts = options_.coarse;
    copts.gpu_memory = &env_->gpu_memory();
    if (copts.bytes_per_token_kv == 0) {
      copts.bytes_per_token_kv =
          static_cast<uint32_t>(options_.model.KvBytesPerTokenLayer());
    }
    ALAYA_RETURN_IF_ERROR(context->BuildCoarseIndices(copts));
  }
  return Status::Ok();
}

Result<uint64_t> AlayaDB::Import(std::vector<int32_t> tokens,
                                 std::unique_ptr<KvCache> kv,
                                 const QuerySamples* queries) {
  if (kv == nullptr) return Status::InvalidArgument("null KV cache");
  if (kv->NumTokens() != tokens.size()) {
    return Status::InvalidArgument("token/KV length mismatch");
  }
  // Round the imported KV onto the deployment grid before anything reads it:
  // indices build over (and searches score against) exactly the keys the
  // deployed representation would hold.
  kv->QuantizeInPlace(options_.quant.kv_codec);
  const uint64_t kv_bytes = kv->DeployedBytes();
  auto context = std::make_unique<Context>(0, std::move(tokens), std::move(kv));
  ALAYA_RETURN_IF_ERROR(BuildIndices(context.get(), queries));
  // Offloaded KV lives in host DRAM; the context owns the reservation so the
  // bytes are returned when it is released (store/remove symmetry). Headroom
  // is made BEFORE the bytes attach, keeping the tracker peak under budget.
  if (tiers_ != nullptr) tiers_->EnsureHeadroom(kv_bytes);
  context->AttachHostReservation(MemoryReservation(&env_->host_memory(), kv_bytes));
  const uint64_t id = contexts_.Add(std::move(context));
  if (tiers_ != nullptr) tiers_->NotifyPublished(id);
  return id;
}

Result<std::unique_ptr<Context>> AlayaDB::MaterializeContext(
    std::vector<int32_t> tokens, const Context* reused, size_t reused_prefix,
    const KvCache& local_kv, const QuerySamples* queries) {
  // Clone KV: context prefix + local tail (materialization happens here, not
  // during decoding — late materialization, §7.2).
  auto kv = std::make_unique<KvCache>(options_.model);
  if (reused != nullptr) {
    ALAYA_RETURN_IF_ERROR(kv->AppendPrefixFrom(reused->kv(), reused_prefix));
  }
  ALAYA_RETURN_IF_ERROR(kv->AppendAllFrom(local_kv));
  // Quantize after the full sequence is assembled (prefix + tail share one
  // grid per head); a kFp32 kv_codec leaves the floats untouched.
  kv->QuantizeInPlace(options_.quant.kv_codec);

  const uint64_t kv_bytes = kv->DeployedBytes();
  auto context = std::make_unique<Context>(0, std::move(tokens), std::move(kv));
  // Decode-time queries recorded by the session are the ideal training set
  // (they are exactly the distribution future searches come from). When the
  // session fully reused `reused`, its graphs are extended with the suffix
  // instead of rebuilt (index sharing; see Context::BuildFineIndices).
  ALAYA_RETURN_IF_ERROR(BuildIndices(context.get(), queries, reused, reused_prefix));
  // Evict-before-attach: the host tracker's peak never exceeds the budget.
  if (tiers_ != nullptr) tiers_->EnsureHeadroom(kv_bytes);
  context->AttachHostReservation(MemoryReservation(&env_->host_memory(), kv_bytes));
  return context;
}

Result<uint64_t> AlayaDB::Store(Session* session,
                                std::span<const int32_t> new_tokens) {
  if (session == nullptr) return Status::InvalidArgument("null session");
  if (session->detached()) {
    return Status::FailedPrecondition("session was already detached for store");
  }
  if (new_tokens.size() != session->LocalTokens()) {
    return Status::InvalidArgument(
        "new_tokens must cover exactly the session-local tokens");
  }
  const Context* reused = session->reused_context();
  const size_t prefix = session->reused_prefix();
  Result<std::unique_ptr<Context>> built =
      MaterializeContext(ComposeTokens(reused, prefix, new_tokens), reused, prefix,
                         session->local_kv(), session->recorded_queries());
  ALAYA_RETURN_IF_ERROR(built.status());
  // The new context is warm where the session that produced it ran.
  built.value()->set_resident_device(session->device());
  const uint64_t id = contexts_.Add(std::move(built.value()));
  if (tiers_ != nullptr) tiers_->NotifyPublished(id);
  return id;
}

Result<uint64_t> AlayaDB::StoreAsync(Session* session,
                                     std::vector<int32_t> new_tokens,
                                     std::shared_ptr<Context> context_ref) {
  if (session == nullptr) return Status::InvalidArgument("null session");
  if (session->detached()) {
    return Status::FailedPrecondition("session was already detached for store");
  }
  if (new_tokens.size() != session->LocalTokens()) {
    return Status::InvalidArgument(
        "new_tokens must cover exactly the session-local tokens");
  }

  const int device = session->device();  // Residency of the future context.
  Session::DetachedState det = session->DetachForStore();
  std::vector<int32_t> tokens =
      ComposeTokens(det.reused_context, det.reused_prefix, new_tokens);

  // The background job reads the reused context's tokens/KV/graphs: it must
  // be pinned for the job's lifetime, not just the session's.
  if (det.reused_context != nullptr && context_ref.get() != det.reused_context) {
    context_ref = contexts_.FindShared(det.reused_context->id());
  }
  const uint64_t id = contexts_.ReservePending();

  if (det.reused_context != nullptr && context_ref == nullptr) {
    // The reused context is no longer in the store and the caller provided no
    // pin: there is no way to guarantee it outlives a background job, so
    // materialize inline (still publishing through the pending id, and still
    // counted — the completed/failed totals reconcile against store contents
    // regardless of which path a StoreAsync took).
    Result<std::unique_ptr<Context>> built =
        MaterializeContext(std::move(tokens), det.reused_context, det.reused_prefix,
                           det.local_kv, det.recorded.get());
    if (built.ok()) built.value()->set_resident_device(device);
    Status status = built.ok() ? contexts_.Publish(id, std::move(built.value()))
                               : built.status();
    if (!status.ok()) contexts_.AbortPending(id);
    if (status.ok() && tiers_ != nullptr) tiers_->NotifyPublished(id);
    RecordMaterializationOutcome(id, status, /*was_queued=*/false);
    ALAYA_RETURN_IF_ERROR(status);
    return id;
  }

  {
    std::lock_guard<std::mutex> lk(mat_mu_);
    ++mat_pending_;
  }
  // ThreadPool tasks must be copyable std::functions; park the moved-in state
  // behind a shared_ptr.
  struct Job {
    std::vector<int32_t> tokens;
    Session::DetachedState det;
    std::shared_ptr<Context> pin;
    uint64_t id;
    int device;
  };
  auto job = std::make_shared<Job>(Job{std::move(tokens), std::move(det),
                                       std::move(context_ref), id, device});
  MaterializePool()->Submit([this, job] {
    Status status;
    {
      Result<std::unique_ptr<Context>> built = MaterializeContext(
          std::move(job->tokens), job->det.reused_context, job->det.reused_prefix,
          job->det.local_kv, job->det.recorded.get());
      if (built.ok()) built.value()->set_resident_device(job->device);
      status = built.ok() ? contexts_.Publish(job->id, std::move(built.value()))
                          : built.status();
      if (!status.ok()) contexts_.AbortPending(job->id);
      // Tier bookkeeping (and durable write-through + budget enforcement)
      // runs here on the worker — never on the decode path — and before the
      // drain barrier lifts, so Drain() also covers the persist.
      if (status.ok() && tiers_ != nullptr) tiers_->NotifyPublished(job->id);
      // Drop the base-context pin (and, via this scope, any failed build)
      // BEFORE signalling completion: releasing the last pin frees host
      // bytes against the environment, and callers are free to tear the
      // environment down the moment the drain barrier lifts. The rest of the
      // job state (KV buffers, recorded queries) is plain heap memory, safe
      // to destroy whenever the worker gets to it.
      job->pin.reset();
    }
    RecordMaterializationOutcome(job->id, status, /*was_queued=*/true);
  });
  return id;
}

void AlayaDB::RecordMaterializationOutcome(uint64_t id, const Status& status,
                                           bool was_queued) {
  std::lock_guard<std::mutex> lk(mat_mu_);
  if (was_queued) --mat_pending_;
  if (status.ok()) {
    ++mat_completed_;
  } else {
    ++mat_failed_;
    if (mat_first_error_.ok()) mat_first_error_ = status;
    mat_errors_[id] = status;
  }
  if (was_queued) mat_cv_.notify_all();
}

Status AlayaDB::WaitForMaterialization() {
  std::unique_lock<std::mutex> lk(mat_mu_);
  mat_cv_.wait(lk, [&] { return mat_pending_ == 0; });
  return mat_first_error_;
}

AlayaDB::MaterializationStats AlayaDB::materialization_stats() const {
  std::lock_guard<std::mutex> lk(mat_mu_);
  MaterializationStats out;
  out.pending = mat_pending_;
  out.completed = mat_completed_;
  out.failed = mat_failed_;
  out.first_error = mat_first_error_;
  return out;
}

std::map<uint64_t, Status> AlayaDB::materialization_errors() const {
  std::lock_guard<std::mutex> lk(mat_mu_);
  return mat_errors_;
}

}  // namespace alaya
