// Prefill-time query vectors, recorded per (layer, query head). RoarGraph is a
// cross-modal index: it is trained on *query* samples so decode-time searches
// navigate well even though queries are out-of-distribution w.r.t. keys (§7.2).
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/model_config.h"
#include "src/index/vector_set.h"

namespace alaya {

class QuerySamples {
 public:
  explicit QuerySamples(const ModelConfig& config) : config_(config) {
    sets_.resize(static_cast<size_t>(config.num_layers) * config.num_q_heads);
    for (auto& s : sets_) s.Reset(config.head_dim);
  }

  /// Records one token's query vectors for one layer
  /// (q is [num_q_heads * head_dim], head-major).
  void Record(uint32_t layer, const float* q) {
    for (uint32_t h = 0; h < config_.num_q_heads; ++h) {
      sets_[Slot(layer, h)].Append(q + static_cast<size_t>(h) * config_.head_dim);
    }
  }

  VectorSetView View(uint32_t layer, uint32_t q_head) const {
    return sets_[Slot(layer, q_head)].View();
  }

  VectorSet& Mutable(uint32_t layer, uint32_t q_head) { return sets_[Slot(layer, q_head)]; }

  size_t NumSamples(uint32_t layer = 0) const { return sets_[Slot(layer, 0)].size(); }

  const ModelConfig& config() const { return config_; }

  uint64_t FloatBytes() const {
    uint64_t b = 0;
    for (const auto& s : sets_) b += s.MemoryBytes();
    return b;
  }

 private:
  size_t Slot(uint32_t layer, uint32_t q_head) const {
    return static_cast<size_t>(layer) * config_.num_q_heads + q_head;
  }

  ModelConfig config_;
  std::vector<VectorSet> sets_;
};

}  // namespace alaya
