#include "src/core/context_serializer.h"

#include <cstring>

#include "src/common/string_util.h"

namespace alaya {

std::string ContextSerializer::HeadName(const std::string& prefix, uint32_t layer,
                                        uint32_t head, const char* what) {
  return StrFormat("%s_L%u_H%u_%s", prefix.c_str(), layer, head, what);
}

Status ContextSerializer::Persist(const Context& context, const std::string& prefix) {
  if (vfs_ == nullptr) return Status::FailedPrecondition("no vector file system");
  const ModelConfig& m = context.kv().config();

  // Manifest: scalars stored in slot 0 of full-width rows (the VFS fixes one
  // dim for all files).
  {
    ALAYA_ASSIGN_OR_RETURN(VectorFile * mf, vfs_->CreateFile(prefix + "_manifest"));
    std::vector<float> row(mf->dim(), 0.f);
    auto put = [&](float v) -> Status {
      row[0] = v;
      ALAYA_ASSIGN_OR_RETURN(uint32_t id, mf->AppendVector(row.data()));
      (void)id;
      return Status::Ok();
    };
    ALAYA_RETURN_IF_ERROR(put(static_cast<float>(context.length())));
    ALAYA_RETURN_IF_ERROR(put(static_cast<float>(m.num_layers)));
    ALAYA_RETURN_IF_ERROR(put(static_cast<float>(m.num_kv_heads)));
    ALAYA_RETURN_IF_ERROR(put(static_cast<float>(m.head_dim)));
    ALAYA_RETURN_IF_ERROR(put(context.HasFineIndices() ? 1.f : 0.f));
    for (int32_t t : context.tokens()) {
      ALAYA_RETURN_IF_ERROR(put(static_cast<float>(t)));
    }
    ALAYA_RETURN_IF_ERROR(mf->Flush());
  }

  for (uint32_t layer = 0; layer < m.num_layers; ++layer) {
    for (uint32_t h = 0; h < m.num_kv_heads; ++h) {
      // Keys + the fine graph's adjacency share one file (§7.3 layout).
      const RoarGraph* fine = context.FineIndex(layer, h * m.GroupSize());
      ALAYA_RETURN_IF_ERROR(vfs_->PersistHead(HeadName(prefix, layer, h, "keys"),
                                              context.kv().Keys(layer, h),
                                              fine != nullptr ? &fine->graph()
                                                              : nullptr));
      ALAYA_RETURN_IF_ERROR(vfs_->PersistHead(HeadName(prefix, layer, h, "vals"),
                                              context.kv().Values(layer, h), nullptr));
    }
  }
  return Status::Ok();
}

Result<std::unique_ptr<Context>> ContextSerializer::Load(
    const std::string& prefix, uint64_t id, const ModelConfig& model,
    const RoarGraphOptions& graph_options) {
  if (vfs_ == nullptr) return Status::FailedPrecondition("no vector file system");

  // Manifest.
  VectorFile* mf = vfs_->GetFile(prefix + "_manifest");
  if (mf == nullptr) {
    ALAYA_ASSIGN_OR_RETURN(mf, vfs_->OpenFile(prefix + "_manifest"));
  }
  auto get = [&](uint32_t idx) -> Result<float> {
    std::vector<float> row(mf->dim());
    ALAYA_RETURN_IF_ERROR(mf->ReadVector(idx, row.data()));
    return row[0];
  };
  ALAYA_ASSIGN_OR_RETURN(float f_tokens, get(0));
  ALAYA_ASSIGN_OR_RETURN(float f_layers, get(1));
  ALAYA_ASSIGN_OR_RETURN(float f_heads, get(2));
  ALAYA_ASSIGN_OR_RETURN(float f_dim, get(3));
  ALAYA_ASSIGN_OR_RETURN(float f_fine, get(4));
  const size_t n_tokens = static_cast<size_t>(f_tokens);
  if (static_cast<uint32_t>(f_layers) != model.num_layers ||
      static_cast<uint32_t>(f_heads) != model.num_kv_heads ||
      static_cast<uint32_t>(f_dim) != model.head_dim) {
    return Status::Corruption("persisted geometry does not match the model config");
  }
  std::vector<int32_t> tokens(n_tokens);
  for (size_t t = 0; t < n_tokens; ++t) {
    ALAYA_ASSIGN_OR_RETURN(float v, get(static_cast<uint32_t>(5 + t)));
    tokens[t] = static_cast<int32_t>(v);
  }

  auto kv = std::make_unique<KvCache>(model);
  std::vector<AdjacencyGraph> loaded_graphs;
  for (uint32_t layer = 0; layer < model.num_layers; ++layer) {
    // Load each head, then interleave into the token-major KvCache layout.
    std::vector<VectorSet> keys(model.num_kv_heads), vals(model.num_kv_heads);
    std::vector<AdjacencyGraph> graphs(model.num_kv_heads);
    for (uint32_t h = 0; h < model.num_kv_heads; ++h) {
      ALAYA_RETURN_IF_ERROR(vfs_->LoadHead(HeadName(prefix, layer, h, "keys"),
                                           &keys[h], &graphs[h]));
      ALAYA_RETURN_IF_ERROR(
          vfs_->LoadHead(HeadName(prefix, layer, h, "vals"), &vals[h], nullptr));
      if (keys[h].size() != n_tokens || vals[h].size() != n_tokens) {
        return Status::Corruption("head vector count does not match the manifest");
      }
    }
    std::vector<float> krow(static_cast<size_t>(model.num_kv_heads) * model.head_dim);
    std::vector<float> vrow(krow.size());
    for (size_t t = 0; t < n_tokens; ++t) {
      for (uint32_t h = 0; h < model.num_kv_heads; ++h) {
        std::memcpy(krow.data() + static_cast<size_t>(h) * model.head_dim,
                    keys[h].Vec(static_cast<uint32_t>(t)),
                    model.head_dim * sizeof(float));
        std::memcpy(vrow.data() + static_cast<size_t>(h) * model.head_dim,
                    vals[h].Vec(static_cast<uint32_t>(t)),
                    model.head_dim * sizeof(float));
      }
      kv->AppendToken(layer, krow.data(), vrow.data());
    }
    for (uint32_t h = 0; h < model.num_kv_heads; ++h) {
      loaded_graphs.push_back(std::move(graphs[h]));
    }
  }

  auto context = std::make_unique<Context>(id, std::move(tokens), std::move(kv));
  if (f_fine > 0.5f) {
    ALAYA_RETURN_IF_ERROR(
        context->RestoreFineIndices(graph_options, std::move(loaded_graphs)));
  }
  return context;
}

}  // namespace alaya
