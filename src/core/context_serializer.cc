#include "src/core/context_serializer.h"

#include <cstring>

#include "src/common/string_util.h"

namespace alaya {

namespace {

// Manifest row layout. Every value occupies one full-width row; 8-byte values
// (doubles, uint64 counters) are memcpy'd across the row's first two float
// slots so they round-trip bit-exact — a float cast would corrupt byte
// counters past 2^24.
enum ManifestRow : uint32_t {
  kRowLength = 0,
  kRowNumLayers,
  kRowNumKvHeads,
  kRowHeadDim,
  kRowHasFine,
  kRowResidentDevice,
  kRowKvBytes,             // u64
  kRowIndexBytes,          // u64
  kRowKnnWallSeconds,      // f64
  kRowProjectWallSeconds,  // f64
  kRowModeledGpuSeconds,   // f64
  kRowModeledXferSeconds,  // f64
  kRowReportedSeconds,     // f64
  kRowStatsIndexBytes,     // u64
  kRowNumIndices,          // u64
  kRowTrainingQueries,     // u64
  kRowExtendedIndices,     // u64
  kRowReusedBaseNodes,     // u64
  kRowInsertedSuffix,      // u64
  kRowTokensBegin,
  // v3 manifests (written only for quantized KV) insert, BETWEEN the fixed
  // rows above and the tokens:
  //   kRowTokensBegin + 0: codec id (float)
  //   then 2 * num_layers * num_kv_heads param rows, Slot() order — for each
  //   (layer, head): keys {scale, zero_point} then vals {scale, zero_point}
  //   in the row's first two float slots;
  // tokens (and the trailer) shift down accordingly. The trailer magic names
  // the layout, so LoadManifest probes both candidate trailer positions to
  // detect the version — a v2 manifest needs no migration.
  // After the tokens, three trailer rows close the manifest:
  //   kRowTokensBegin + length + 0: magic   (u64 — format/version witness)
  //   kRowTokensBegin + length + 1: generation (u64 — persist stamp)
  //   kRowTokensBegin + length + 2: checksum (u64 — FNV-1a over the raw bytes
  //                                 of every preceding row, trailer excluded)
  // A torn write that loses any row also loses the trailer (rows append in
  // order), and a partial block that garbles earlier rows fails the checksum:
  // either way LoadManifest returns Corruption and warm start skips the
  // context instead of resurrecting a half-persisted one.
};

/// Bumped when the row layout changes; doubles as the torn-write witness (an
/// old-format or truncated manifest has no matching magic row where the
/// trailer should be). v2 is the pre-codec layout and still what fp32
/// contexts write; v3 adds the codec + params rows.
constexpr uint64_t kManifestMagic = 0x414C41594D463032ULL;    // "ALAYMF02"
constexpr uint64_t kManifestMagicV3 = 0x414C41594D463033ULL;  // "ALAYMF03"

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t Fnv1a(uint64_t h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::string ContextSerializer::ManifestName(const std::string& prefix) {
  return prefix + "_manifest";
}

std::string ContextSerializer::HeadName(const std::string& prefix, uint32_t layer,
                                        uint32_t head, const char* what) {
  return StrFormat("%s_L%u_H%u_%s", prefix.c_str(), layer, head, what);
}

Status ContextSerializer::Persist(const Context& context, const std::string& prefix,
                                  uint64_t generation) {
  if (vfs_ == nullptr) return Status::FailedPrecondition("no vector file system");
  const ModelConfig& m = context.kv().config();

  // Payload first: the (large) per-head KV and adjacency files carry no
  // commit semantics of their own. A crash anywhere in this loop leaves
  // orphaned payload files and NO manifest — warm start never sees the
  // context, which is exactly the pre-crash truth (it was never durably
  // published).
  for (uint32_t layer = 0; layer < m.num_layers; ++layer) {
    for (uint32_t h = 0; h < m.num_kv_heads; ++h) {
      // Keys + the fine graph's adjacency share one file (§7.3 layout).
      const RoarGraph* fine = context.FineIndex(layer, h * m.GroupSize());
      ALAYA_RETURN_IF_ERROR(vfs_->PersistHead(HeadName(prefix, layer, h, "keys"),
                                              context.kv().Keys(layer, h),
                                              fine != nullptr ? &fine->graph()
                                                              : nullptr));
      ALAYA_RETURN_IF_ERROR(vfs_->PersistHead(HeadName(prefix, layer, h, "vals"),
                                              context.kv().Values(layer, h), nullptr));
    }
  }

  // Manifest last — the commit record. Scalars stored in full-width rows (the
  // VFS fixes one dim for all files; 8-byte values span the first two float
  // slots); every row's raw bytes fold into the checksum the trailer seals.
  ALAYA_ASSIGN_OR_RETURN(VectorFile * mf, vfs_->CreateFile(ManifestName(prefix)));
  if (mf->dim() < 2) {
    return Status::InvalidArgument("manifest rows need at least two float slots");
  }
  std::vector<float> row(mf->dim(), 0.f);
  uint64_t checksum = kFnvOffset;
  const size_t row_bytes = row.size() * sizeof(float);
  auto append = [&](bool hashed) -> Status {
    if (hashed) checksum = Fnv1a(checksum, row.data(), row_bytes);
    ALAYA_ASSIGN_OR_RETURN(uint32_t id, mf->AppendVector(row.data()));
    (void)id;
    return Status::Ok();
  };
  auto put = [&](float v) -> Status {
    std::fill(row.begin(), row.end(), 0.f);
    row[0] = v;
    return append(/*hashed=*/true);
  };
  auto put64 = [&](const void* v) -> Status {
    std::fill(row.begin(), row.end(), 0.f);
    std::memcpy(row.data(), v, 8);
    return append(/*hashed=*/true);
  };
  auto put64_trailer = [&](const void* v) -> Status {
    std::fill(row.begin(), row.end(), 0.f);
    std::memcpy(row.data(), v, 8);
    return append(/*hashed=*/false);
  };
  const IndexBuildStats& s = context.build_stats();
  const uint64_t kv_bytes = context.kv().DeployedBytes();
  const uint64_t index_bytes = context.IndexBytes();
  const uint64_t stat_u64[] = {
      s.index_bytes,           s.num_indices,     s.training_queries,
      s.extended_indices,      s.reused_base_nodes,
      s.inserted_suffix_nodes,
  };
  const double stat_f64[] = {s.knn_wall_seconds, s.project_wall_seconds,
                             s.modeled_gpu_seconds, s.modeled_transfer_seconds,
                             s.reported_seconds};
  ALAYA_RETURN_IF_ERROR(put(static_cast<float>(context.length())));
  ALAYA_RETURN_IF_ERROR(put(static_cast<float>(m.num_layers)));
  ALAYA_RETURN_IF_ERROR(put(static_cast<float>(m.num_kv_heads)));
  ALAYA_RETURN_IF_ERROR(put(static_cast<float>(m.head_dim)));
  ALAYA_RETURN_IF_ERROR(put(context.HasFineIndices() ? 1.f : 0.f));
  ALAYA_RETURN_IF_ERROR(put(static_cast<float>(context.resident_device())));
  ALAYA_RETURN_IF_ERROR(put64(&kv_bytes));
  ALAYA_RETURN_IF_ERROR(put64(&index_bytes));
  for (double d : stat_f64) ALAYA_RETURN_IF_ERROR(put64(&d));
  for (uint64_t u : stat_u64) ALAYA_RETURN_IF_ERROR(put64(&u));
  // Quantized KV: v3 rows — codec id, then per-(layer, head) keys/vals affine
  // params. fp32 contexts skip these and stay byte-identical v2 manifests.
  const VectorCodec kv_codec = context.kv().codec();
  if (kv_codec != VectorCodec::kFp32) {
    auto put2 = [&](float a, float b) -> Status {
      std::fill(row.begin(), row.end(), 0.f);
      row[0] = a;
      row[1] = b;
      return append(/*hashed=*/true);
    };
    ALAYA_RETURN_IF_ERROR(put(static_cast<float>(static_cast<uint8_t>(kv_codec))));
    for (uint32_t layer = 0; layer < m.num_layers; ++layer) {
      for (uint32_t h = 0; h < m.num_kv_heads; ++h) {
        const CodecParams& kp = context.kv().KeyParams(layer, h);
        const CodecParams& vp = context.kv().ValParams(layer, h);
        ALAYA_RETURN_IF_ERROR(put2(kp.scale, kp.zero_point));
        ALAYA_RETURN_IF_ERROR(put2(vp.scale, vp.zero_point));
      }
    }
  }
  for (int32_t t : context.tokens()) {
    ALAYA_RETURN_IF_ERROR(put(static_cast<float>(t)));
  }
  // Trailer: magic, generation, then the checksum over everything above. The
  // trailer rows are excluded from the hash (the checksum cannot cover
  // itself); the magic row doubles as the truncation witness and names the
  // layout version.
  const uint64_t magic =
      kv_codec != VectorCodec::kFp32 ? kManifestMagicV3 : kManifestMagic;
  ALAYA_RETURN_IF_ERROR(put64_trailer(&magic));
  ALAYA_RETURN_IF_ERROR(put64_trailer(&generation));
  ALAYA_RETURN_IF_ERROR(put64_trailer(&checksum));
  return mf->Flush();
}

Result<ContextManifest> ContextSerializer::LoadManifest(const std::string& prefix,
                                                        const ModelConfig& model) {
  Result<ContextManifest> r = LoadManifestImpl(prefix, model);
  if (!r.ok() && r.status().IsOutOfRange()) {
    // The file (or its row count) ends before the manifest's own geometry
    // says it should — a physically truncated write. Same disposition as a
    // failed trailer: Corruption, so warm start skips rather than errors.
    return Status::Corruption("manifest ends early (torn write?): " +
                              r.status().ToString());
  }
  return r;
}

Result<ContextManifest> ContextSerializer::LoadManifestImpl(
    const std::string& prefix, const ModelConfig& model) {
  if (vfs_ == nullptr) return Status::FailedPrecondition("no vector file system");
  VectorFile* mf = vfs_->GetFile(ManifestName(prefix));
  if (mf == nullptr) {
    ALAYA_ASSIGN_OR_RETURN(mf, vfs_->OpenFile(ManifestName(prefix)));
  }
  if (mf->dim() < 2) return Status::Corruption("manifest rows too narrow");
  std::vector<float> row(mf->dim());
  // Rows are read exactly once, in file order, so the running FNV-1a here
  // mirrors the one Persist folded row by row; the trailer reads below use
  // the unhashed variant (the stored checksum cannot cover itself).
  uint64_t checksum = kFnvOffset;
  const size_t row_bytes = row.size() * sizeof(float);
  auto get = [&](uint32_t idx) -> Result<float> {
    ALAYA_RETURN_IF_ERROR(mf->ReadVector(idx, row.data()));
    checksum = Fnv1a(checksum, row.data(), row_bytes);
    return row[0];
  };
  auto get64 = [&](uint32_t idx, void* out) -> Status {
    ALAYA_RETURN_IF_ERROR(mf->ReadVector(idx, row.data()));
    checksum = Fnv1a(checksum, row.data(), row_bytes);
    std::memcpy(out, row.data(), 8);
    return Status::Ok();
  };
  auto get64_trailer = [&](uint32_t idx, void* out) -> Status {
    ALAYA_RETURN_IF_ERROR(mf->ReadVector(idx, row.data()));
    std::memcpy(out, row.data(), 8);
    return Status::Ok();
  };

  ContextManifest man;
  ALAYA_ASSIGN_OR_RETURN(float f_tokens, get(kRowLength));
  ALAYA_ASSIGN_OR_RETURN(float f_layers, get(kRowNumLayers));
  ALAYA_ASSIGN_OR_RETURN(float f_heads, get(kRowNumKvHeads));
  ALAYA_ASSIGN_OR_RETURN(float f_dim, get(kRowHeadDim));
  ALAYA_ASSIGN_OR_RETURN(float f_fine, get(kRowHasFine));
  ALAYA_ASSIGN_OR_RETURN(float f_device, get(kRowResidentDevice));
  if (!(f_tokens >= 0.f && f_tokens <= 1e9f)) {
    return Status::Corruption("manifest length row is garbage");
  }
  man.length = static_cast<size_t>(f_tokens);
  man.num_layers = static_cast<uint32_t>(f_layers);
  man.num_kv_heads = static_cast<uint32_t>(f_heads);
  man.head_dim = static_cast<uint32_t>(f_dim);
  man.has_fine = f_fine > 0.5f;
  man.resident_device = static_cast<int>(f_device);
  if (man.num_layers != model.num_layers ||
      man.num_kv_heads != model.num_kv_heads || man.head_dim != model.head_dim) {
    return Status::Corruption("persisted geometry does not match the model config");
  }
  ALAYA_RETURN_IF_ERROR(get64(kRowKvBytes, &man.kv_bytes));
  ALAYA_RETURN_IF_ERROR(get64(kRowIndexBytes, &man.index_bytes));
  IndexBuildStats& s = man.build_stats;
  ALAYA_RETURN_IF_ERROR(get64(kRowKnnWallSeconds, &s.knn_wall_seconds));
  ALAYA_RETURN_IF_ERROR(get64(kRowProjectWallSeconds, &s.project_wall_seconds));
  ALAYA_RETURN_IF_ERROR(get64(kRowModeledGpuSeconds, &s.modeled_gpu_seconds));
  ALAYA_RETURN_IF_ERROR(get64(kRowModeledXferSeconds, &s.modeled_transfer_seconds));
  ALAYA_RETURN_IF_ERROR(get64(kRowReportedSeconds, &s.reported_seconds));
  ALAYA_RETURN_IF_ERROR(get64(kRowStatsIndexBytes, &s.index_bytes));
  uint64_t u = 0;
  ALAYA_RETURN_IF_ERROR(get64(kRowNumIndices, &u));
  s.num_indices = static_cast<size_t>(u);
  ALAYA_RETURN_IF_ERROR(get64(kRowTrainingQueries, &u));
  s.training_queries = static_cast<size_t>(u);
  ALAYA_RETURN_IF_ERROR(get64(kRowExtendedIndices, &u));
  s.extended_indices = static_cast<size_t>(u);
  ALAYA_RETURN_IF_ERROR(get64(kRowReusedBaseNodes, &u));
  s.reused_base_nodes = static_cast<size_t>(u);
  ALAYA_RETURN_IF_ERROR(get64(kRowInsertedSuffix, &u));
  s.inserted_suffix_nodes = static_cast<size_t>(u);

  // Version detection: the trailer magic names the layout, so probe both
  // candidate trailer positions with unhashed reads (a failed probe — row out
  // of range — just means "not that version"). v2 puts the trailer right
  // after the tokens; v3 first inserts the codec row and 2 * layers * heads
  // param rows.
  const size_t slots =
      static_cast<size_t>(man.num_layers) * man.num_kv_heads;
  const size_t v2_trailer = kRowTokensBegin + man.length;
  const size_t v3_trailer = kRowTokensBegin + 1 + 2 * slots + man.length;
  bool is_v3 = false;
  uint64_t probe = 0;
  if (get64_trailer(static_cast<uint32_t>(v2_trailer), &probe).ok() &&
      probe == kManifestMagic) {
    is_v3 = false;
  } else if (get64_trailer(static_cast<uint32_t>(v3_trailer), &probe).ok() &&
             probe == kManifestMagicV3) {
    is_v3 = true;
  } else {
    return Status::Corruption("manifest trailer missing or wrong magic (torn write?)");
  }

  // Bound the token count by the file's actual rows BEFORE allocating: a
  // garbled length row must fail cleanly, not drive a huge resize.
  const size_t tokens_begin = is_v3 ? kRowTokensBegin + 1 + 2 * slots
                                    : static_cast<size_t>(kRowTokensBegin);
  if (man.length + tokens_begin + 3 > static_cast<size_t>(mf->num_vectors())) {
    return Status::Corruption("manifest token count exceeds stored rows");
  }

  if (is_v3) {
    // Hashed reads continue in file order: codec row, then the param rows.
    ALAYA_ASSIGN_OR_RETURN(float f_codec, get(kRowTokensBegin));
    const auto codec_id = static_cast<uint32_t>(f_codec);
    if (codec_id > static_cast<uint32_t>(VectorCodec::kInt8) ||
        codec_id == static_cast<uint32_t>(VectorCodec::kFp32)) {
      return Status::Corruption("v3 manifest carries an unknown or fp32 codec id");
    }
    man.kv_codec = static_cast<VectorCodec>(codec_id);
    man.key_params.resize(slots);
    man.val_params.resize(slots);
    uint32_t idx = kRowTokensBegin + 1;
    auto get2 = [&](uint32_t i, CodecParams* p) -> Status {
      ALAYA_RETURN_IF_ERROR(mf->ReadVector(i, row.data()));
      checksum = Fnv1a(checksum, row.data(), row_bytes);
      p->scale = row[0];
      p->zero_point = row[1];
      return Status::Ok();
    };
    for (size_t s2 = 0; s2 < slots; ++s2) {
      ALAYA_RETURN_IF_ERROR(get2(idx++, &man.key_params[s2]));
      ALAYA_RETURN_IF_ERROR(get2(idx++, &man.val_params[s2]));
    }
  }

  man.tokens.resize(man.length);
  for (size_t t = 0; t < man.length; ++t) {
    ALAYA_ASSIGN_OR_RETURN(float v, get(static_cast<uint32_t>(tokens_begin + t)));
    man.tokens[t] = static_cast<int32_t>(v);
  }

  // Trailer: a manifest torn mid-write is missing rows (the reads fail), an
  // old-format or foreign file has no magic where the trailer belongs, and a
  // garbled-in-place one fails the checksum. All three are Corruption — the
  // tiered store's warm start skips the context rather than resurrecting a
  // half-persisted one. (The magic itself was verified by the version probe.)
  const uint32_t trailer = static_cast<uint32_t>(tokens_begin + man.length);
  ALAYA_RETURN_IF_ERROR(get64_trailer(trailer + 1, &man.generation));
  uint64_t stored_checksum = 0;
  ALAYA_RETURN_IF_ERROR(get64_trailer(trailer + 2, &stored_checksum));
  if (stored_checksum != checksum) {
    return Status::Corruption("manifest checksum mismatch (torn or corrupt write)");
  }
  return man;
}

Result<std::unique_ptr<Context>> ContextSerializer::Load(
    const std::string& prefix, uint64_t id, const ModelConfig& model,
    const RoarGraphOptions& graph_options) {
  ALAYA_ASSIGN_OR_RETURN(ContextManifest man, LoadManifest(prefix, model));
  const size_t n_tokens = man.length;

  auto kv = std::make_unique<KvCache>(model);
  std::vector<AdjacencyGraph> loaded_graphs;
  for (uint32_t layer = 0; layer < model.num_layers; ++layer) {
    // Load each head, then interleave into the token-major KvCache layout.
    std::vector<VectorSet> keys(model.num_kv_heads), vals(model.num_kv_heads);
    std::vector<AdjacencyGraph> graphs(model.num_kv_heads);
    for (uint32_t h = 0; h < model.num_kv_heads; ++h) {
      ALAYA_RETURN_IF_ERROR(vfs_->LoadHead(HeadName(prefix, layer, h, "keys"),
                                           &keys[h], &graphs[h]));
      ALAYA_RETURN_IF_ERROR(
          vfs_->LoadHead(HeadName(prefix, layer, h, "vals"), &vals[h], nullptr));
      if (keys[h].size() != n_tokens || vals[h].size() != n_tokens) {
        return Status::Corruption("head vector count does not match the manifest");
      }
    }
    std::vector<float> krow(static_cast<size_t>(model.num_kv_heads) * model.head_dim);
    std::vector<float> vrow(krow.size());
    for (size_t t = 0; t < n_tokens; ++t) {
      for (uint32_t h = 0; h < model.num_kv_heads; ++h) {
        std::memcpy(krow.data() + static_cast<size_t>(h) * model.head_dim,
                    keys[h].Vec(static_cast<uint32_t>(t)),
                    model.head_dim * sizeof(float));
        std::memcpy(vrow.data() + static_cast<size_t>(h) * model.head_dim,
                    vals[h].Vec(static_cast<uint32_t>(t)),
                    model.head_dim * sizeof(float));
      }
      kv->AppendToken(layer, krow.data(), vrow.data());
    }
    for (uint32_t h = 0; h < model.num_kv_heads; ++h) {
      loaded_graphs.push_back(std::move(graphs[h]));
    }
  }

  if (man.kv_codec != VectorCodec::kFp32) {
    // The payload floats are already on the codec's grid (persisted verbatim);
    // re-attach the codec id + params so DeployedBytes and any re-persist see
    // exactly the state the original process had.
    kv->SetCodecState(man.kv_codec, man.key_params, man.val_params);
  }

  auto context = std::make_unique<Context>(id, std::move(man.tokens), std::move(kv));
  if (man.has_fine) {
    ALAYA_RETURN_IF_ERROR(
        context->RestoreFineIndices(graph_options, std::move(loaded_graphs)));
  }
  // Carry the manifest's affinity and build accounting over: the warm-started
  // context is placed where it was last hot, and eviction keeps modeling its
  // (original) rebuild cost rather than seeing zero.
  context->set_resident_device(man.resident_device);
  context->set_build_stats(man.build_stats);
  return context;
}

}  // namespace alaya
