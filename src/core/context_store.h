// Stored contexts: token sequence + KV cache + per-head vector indices.
// The DB abstraction manages these; sessions reuse them by (partial) prefix
// matching (§5, §7.1).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "src/core/kv_cache.h"
#include "src/core/query_samples.h"
#include "src/core/token_trie.h"
#include "src/device/memory_tracker.h"
#include "src/index/coarse_index.h"
#include "src/index/index_builder.h"
#include "src/index/roargraph.h"

namespace alaya {

/// One imported/stored context: the unit of reuse.
class Context {
 public:
  Context(uint64_t id, std::vector<int32_t> tokens, std::unique_ptr<KvCache> kv)
      : id_(id), tokens_(std::move(tokens)), kv_(std::move(kv)) {}

  uint64_t id() const { return id_; }
  /// Assigned by ContextStore::Add when constructed with id 0.
  void set_id(uint64_t id) { id_ = id; }
  const std::vector<int32_t>& tokens() const { return tokens_; }
  size_t length() const { return tokens_.size(); }
  const KvCache& kv() const { return *kv_; }
  KvCache& mutable_kv() { return *kv_; }

  /// Builds the fine-grained (RoarGraph) indices for all layers, trained on
  /// `queries` (prefill query samples). Pass nullptr to train on keys
  /// themselves (functional, but cross-modal navigation degrades).
  ///
  /// Extend-from-base (index sharing across near-duplicate contexts): when
  /// `base` is a stored context whose ENTIRE token sequence is the first
  /// `base_prefix` tokens of this one and it has compatible fine indices,
  /// each (layer, head) graph is seeded from the base's graph and only the
  /// suffix vectors are inserted — the prefix is never rebuilt (provable via
  /// build_stats().reused_base_nodes). Any incompatibility (partial prefix,
  /// unshared layout, missing indices) silently falls back to a scratch
  /// build. `base` is only read during this call; it need not outlive it.
  Status BuildFineIndices(const IndexBuildOptions& options, const QuerySamples* queries,
                          IndexBuildStats* total_stats = nullptr,
                          const Context* base = nullptr, size_t base_prefix = 0);

  /// Builds coarse (block) indices for all layers/KV heads.
  Status BuildCoarseIndices(const CoarseIndexOptions& options);

  /// Restores GQA-shared fine indices from persisted adjacency (one graph per
  /// (layer, KV head), layer-major). Used by ContextSerializer::Load.
  Status RestoreFineIndices(const RoarGraphOptions& options,
                            std::vector<AdjacencyGraph>&& graphs);

  bool HasFineIndices() const { return !fine_.empty(); }
  bool HasCoarseIndices() const { return !coarse_.empty(); }

  /// Fine index serving (layer, q_head). With GQA sharing this is the KV
  /// head's index; without, each query head has its own.
  const RoarGraph* FineIndex(uint32_t layer, uint32_t q_head) const;
  const CoarseIndex* CoarseIdx(uint32_t layer, uint32_t kv_head) const;

  uint64_t IndexBytes() const;
  const IndexBuildStats& build_stats() const { return build_stats_; }

  /// Hands the context ownership of its offloaded KV's host-memory
  /// reservation: the tracker bytes are freed when the context is destroyed
  /// (i.e. once removed from the store AND unpinned by every session), keeping
  /// host accounting symmetric across store/remove cycles.
  void AttachHostReservation(MemoryReservation reservation) {
    host_kv_reservation_ = std::move(reservation);
  }

  /// Device affinity: the fleet device whose caches are warm for this context
  /// — where it was materialized, or where the last session to reuse it ran.
  /// A session on another device pays a modeled cross-device transfer for the
  /// device-resident window it pulls over (AlayaDB::CreateSession), after
  /// which residency follows it (last-user-wins). Placement policies read
  /// this through ContextStore::BestPrefixProbe for the affinity bonus.
  int resident_device() const { return resident_device_.load(std::memory_order_relaxed); }
  void set_resident_device(int device) {
    resident_device_.store(device, std::memory_order_relaxed);
  }

 private:
  uint64_t id_;
  std::vector<int32_t> tokens_;
  std::unique_ptr<KvCache> kv_;
  MemoryReservation host_kv_reservation_;
  std::atomic<int> resident_device_{0};

  /// fine_[layer * indices_per_layer + slot]; slot is kv_head (shared) or
  /// q_head (unshared).
  std::vector<std::unique_ptr<RoarGraph>> fine_;
  bool fine_shared_ = true;
  std::vector<std::unique_ptr<CoarseIndex>> coarse_;
  IndexBuildStats build_stats_;
};

/// Registry of stored contexts with longest-common-prefix lookup.
///
/// Thread-safety: all methods may be called concurrently (reader/writer lock;
/// lookups take shared locks, Add/Remove exclusive ones). Contexts are
/// reference-counted: `FindShared` / `PrefixMatch::ref` pin the context, so a
/// concurrent `Remove` unregisters it from the store but the storage stays
/// alive until the last running session drops its reference — the invariant
/// the multi-session serving engine relies on.
class ContextStore {
 public:
  struct PrefixMatch {
    Context* context = nullptr;
    /// Lifetime pin for `context`; hold it as long as the raw pointer is used.
    std::shared_ptr<Context> ref;
    size_t matched = 0;  ///< Tokens of shared prefix.
    bool full() const { return context != nullptr && matched == context->length(); }
  };

  /// Takes ownership; returns the context id.
  uint64_t Add(std::unique_ptr<Context> context);

  // --- Pending-context lifecycle (background materialization) ---
  //
  // A context being materialized off the decode path must never be observable
  // half-built: ReservePending allocates its id without making anything
  // visible; Publish atomically flips the finished context into the store
  // (from that point Find/BestPrefixMatch can return it); AbortPending
  // abandons a reservation whose materialization failed. Every lookup,
  // Ids(), size() and the byte totals see only published contexts.

  /// Allocates an id for a context whose materialization is still running.
  uint64_t ReservePending();

  /// Publishes the finished context under its reserved id.
  Status Publish(uint64_t id, std::unique_ptr<Context> context);

  /// Drops a reservation whose materialization failed. Returns false when the
  /// id was not pending.
  bool AbortPending(uint64_t id);

  /// Number of reserved-but-unpublished contexts.
  size_t pending() const;

  /// Borrowed lookup. The pointer is only safe while no concurrent Remove can
  /// run; concurrent callers should prefer FindShared.
  Context* Find(uint64_t id);
  const Context* Find(uint64_t id) const;

  /// Owning lookup: keeps the context alive across a concurrent Remove.
  std::shared_ptr<Context> FindShared(uint64_t id) const;

  /// The stored context sharing the longest common prefix with `tokens`.
  /// Served by a compressed token trie over published sequences: cost is
  /// O(match length), independent of how many contexts the store holds, and
  /// the winner on ties (lowest id among the maxima) is bit-compatible with
  /// the linear scan this replaced. The trie indexes exactly the published
  /// set — Add/Publish insert, Remove erases, pending reservations are
  /// invisible until published.
  PrefixMatch BestPrefixMatch(std::span<const int32_t> tokens) const;

  /// Length of the longest stored prefix of `tokens`, without pinning the
  /// matched context — the cheap probe admission control uses to project how
  /// many prompt tokens a request would have to prefill. The store may change
  /// before the session is actually created; callers treat this as an
  /// estimate, not a reservation.
  size_t BestPrefixMatchLength(std::span<const int32_t> tokens) const;

  /// Everything placement-aware admission wants from one trie walk, still
  /// without pinning: the match length plus the winning context's id and
  /// device residency (the affinity target). device == -1 when nothing
  /// matched. Same TOCTOU caveat as BestPrefixMatchLength.
  struct PrefixProbe {
    size_t matched = 0;
    uint64_t context_id = 0;
    int device = -1;
  };
  PrefixProbe BestPrefixProbe(std::span<const int32_t> tokens) const;

  bool Remove(uint64_t id);
  size_t size() const;
  std::vector<uint64_t> Ids() const;

  /// Total deployed KV bytes across stored contexts (host-resident).
  uint64_t TotalKvBytes() const;
  uint64_t TotalIndexBytes() const;

  /// Trie nodes the prefix lookups walk (observability for tests/benches).
  size_t PrefixIndexNodes() const;

 private:
  mutable std::shared_mutex mu_;
  std::map<uint64_t, std::shared_ptr<Context>> contexts_;
  std::set<uint64_t> pending_;  ///< Reserved ids, invisible to all lookups.
  /// Prefix index over published contexts' token sequences, kept coherent
  /// under mu_: every path that makes a context visible (Add, Publish)
  /// inserts it, Remove erases it, pending ids never enter.
  TokenTrie prefix_index_;
  uint64_t next_id_ = 1;
};

}  // namespace alaya
