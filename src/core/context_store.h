// Stored contexts: token sequence + KV cache + per-head vector indices.
// The DB abstraction manages these; sessions reuse them by (partial) prefix
// matching (§5, §7.1).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "src/core/kv_cache.h"
#include "src/core/query_samples.h"
#include "src/core/token_trie.h"
#include "src/device/memory_tracker.h"
#include "src/index/coarse_index.h"
#include "src/index/index_builder.h"
#include "src/index/roargraph.h"

namespace alaya {

/// One imported/stored context: the unit of reuse.
class Context {
 public:
  Context(uint64_t id, std::vector<int32_t> tokens, std::unique_ptr<KvCache> kv)
      : id_(id), tokens_(std::move(tokens)), kv_(std::move(kv)) {}

  uint64_t id() const { return id_; }
  /// Assigned by ContextStore::Add when constructed with id 0.
  void set_id(uint64_t id) { id_ = id; }
  const std::vector<int32_t>& tokens() const { return tokens_; }
  size_t length() const { return tokens_.size(); }
  const KvCache& kv() const { return *kv_; }
  KvCache& mutable_kv() { return *kv_; }

  /// Builds the fine-grained (RoarGraph) indices for all layers, trained on
  /// `queries` (prefill query samples). Pass nullptr to train on keys
  /// themselves (functional, but cross-modal navigation degrades).
  ///
  /// Extend-from-base (index sharing across near-duplicate contexts): when
  /// `base` is a stored context whose ENTIRE token sequence is the first
  /// `base_prefix` tokens of this one and it has compatible fine indices,
  /// each (layer, head) graph is seeded from the base's graph and only the
  /// suffix vectors are inserted — the prefix is never rebuilt (provable via
  /// build_stats().reused_base_nodes). Any incompatibility (partial prefix,
  /// unshared layout, missing indices) silently falls back to a scratch
  /// build. `base` is only read during this call; it need not outlive it.
  Status BuildFineIndices(const IndexBuildOptions& options, const QuerySamples* queries,
                          IndexBuildStats* total_stats = nullptr,
                          const Context* base = nullptr, size_t base_prefix = 0);

  /// Builds coarse (block) indices for all layers/KV heads.
  Status BuildCoarseIndices(const CoarseIndexOptions& options);

  /// Restores GQA-shared fine indices from persisted adjacency (one graph per
  /// (layer, KV head), layer-major). Used by ContextSerializer::Load: the
  /// adjacency is adopted verbatim — no kNN, no projection, no scratch build
  /// ever runs on this path — and fine_indices_restored() flips to true so
  /// warm-start tests can prove it.
  Status RestoreFineIndices(const RoarGraphOptions& options,
                            std::vector<AdjacencyGraph>&& graphs);

  bool HasFineIndices() const { return !fine_.empty(); }
  bool HasCoarseIndices() const { return !coarse_.empty(); }

  /// True when the fine indices were adopted from persisted adjacency
  /// (RestoreFineIndices) rather than built/extended in this process.
  bool fine_indices_restored() const { return fine_restored_; }

  /// Fine index serving (layer, q_head). With GQA sharing this is the KV
  /// head's index; without, each query head has its own.
  const RoarGraph* FineIndex(uint32_t layer, uint32_t q_head) const;
  const CoarseIndex* CoarseIdx(uint32_t layer, uint32_t kv_head) const;

  uint64_t IndexBytes() const;
  const IndexBuildStats& build_stats() const { return build_stats_; }
  /// Restores persisted build accounting (ContextSerializer::Load): a
  /// warm-started context keeps its original construction cost, which the
  /// tiered store's eviction policy models rebuild cost from.
  void set_build_stats(const IndexBuildStats& stats) { build_stats_ = stats; }

  /// Hands the context ownership of its offloaded KV's host-memory
  /// reservation: the tracker bytes are freed when the context is destroyed
  /// (i.e. once removed from the store AND unpinned by every session), keeping
  /// host accounting symmetric across store/remove/spill cycles.
  void AttachHostReservation(MemoryReservation reservation) {
    host_kv_reservation_ = std::move(reservation);
  }

  /// Device affinity: the fleet device whose caches are warm for this context
  /// — where it was materialized, or where the last session to reuse it ran.
  /// A session on another device pays a modeled cross-device transfer for the
  /// device-resident window it pulls over (AlayaDB::CreateSession), after
  /// which residency follows it (last-user-wins). Placement policies read
  /// this through ContextStore::BestPrefixProbe for the affinity bonus.
  int resident_device() const { return resident_device_.load(std::memory_order_relaxed); }
  void set_resident_device(int device) {
    resident_device_.store(device, std::memory_order_relaxed);
  }

 private:
  uint64_t id_;
  std::vector<int32_t> tokens_;
  std::unique_ptr<KvCache> kv_;
  MemoryReservation host_kv_reservation_;
  std::atomic<int> resident_device_{0};

  /// fine_[layer * indices_per_layer + slot]; slot is kv_head (shared) or
  /// q_head (unshared).
  std::vector<std::unique_ptr<RoarGraph>> fine_;
  bool fine_shared_ = true;
  bool fine_restored_ = false;
  std::vector<std::unique_ptr<CoarseIndex>> coarse_;
  IndexBuildStats build_stats_;
};

/// Registry of stored contexts with longest-common-prefix lookup.
///
/// Thread-safety: all methods may be called concurrently (reader/writer lock;
/// lookups take shared locks, Add/Remove/spill transitions exclusive ones).
/// Contexts are reference-counted: `FindShared` / `PrefixMatch::ref` pin the
/// context, so a concurrent `Remove` (or spill) unregisters it from the store
/// but the storage stays alive until the last running session drops its
/// reference — the invariant the multi-session serving engine relies on.
///
/// Tiering (host → disk): a published context can be SPILLED — its resident
/// payload (KV + indices) detached for persistence while its token sequence
/// stays in the prefix trie, so BestPrefixMatch still finds it and reports it
/// as spilled for the caller (TieredContextStore) to demand-page back in.
/// Spilled entries count in size()/Ids() but not in the byte totals;
/// Find/FindShared return null for them (there is nothing resident to pin).
class ContextStore {
 public:
  struct PrefixMatch {
    Context* context = nullptr;
    /// Lifetime pin for `context`; hold it as long as the raw pointer is used.
    std::shared_ptr<Context> ref;
    size_t matched = 0;  ///< Tokens of shared prefix.
    uint64_t id = 0;     ///< Matched context id (0 when nothing matched).
    /// The match is a spilled placeholder: `context`/`ref` are null, but the
    /// stored sequence (and its persisted KV + indices) cover `matched`
    /// tokens — page it in through the tiered store to use it.
    bool spilled = false;
    size_t length = 0;  ///< Full stored sequence length of the match.
    bool full() const { return matched > 0 && matched == length; }
  };

  /// Takes ownership; returns the context id.
  uint64_t Add(std::unique_ptr<Context> context);

  // --- Pending-context lifecycle (background materialization) ---
  //
  // A context being materialized off the decode path must never be observable
  // half-built: ReservePending allocates its id without making anything
  // visible; Publish atomically flips the finished context into the store
  // (from that point Find/BestPrefixMatch can return it); AbortPending
  // abandons a reservation whose materialization failed. Every lookup,
  // Ids(), size() and the byte totals see only published contexts.

  /// Allocates an id for a context whose materialization is still running.
  uint64_t ReservePending();

  /// Publishes the finished context under its reserved id.
  Status Publish(uint64_t id, std::unique_ptr<Context> context);

  /// Drops a reservation whose materialization failed. Returns false when the
  /// id was not pending.
  bool AbortPending(uint64_t id);

  /// Number of reserved-but-unpublished contexts.
  size_t pending() const;

  /// Borrowed lookup — TEST-ONLY, and the name now says so. The raw pointer
  /// is only safe while no concurrent Remove OR spill can run, which on every
  /// serving path is never true now that the tiered store evicts: production
  /// code must use FindShared (the pin keeps a concurrently-evicted context
  /// alive). The only callers are single-threaded tests and setup code; src/
  /// has none.
  Context* FindUnsafeForTest(uint64_t id);
  const Context* FindUnsafeForTest(uint64_t id) const;

  /// Owning lookup: keeps the context alive across a concurrent Remove or
  /// spill. Null for unknown ids AND for spilled entries (nothing resident).
  std::shared_ptr<Context> FindShared(uint64_t id) const;

  // --- Spill / restore (host → disk tiering mechanism) ---
  //
  // The policy — who to evict, where bytes go — lives in TieredContextStore;
  // the store only provides the atomic residency transitions. All three keep
  // the prefix trie untouched: a spilled context still wins prefix matches.

  /// Detaches a published context's resident payload for spilling: the entry
  /// stays (tokens remain in the trie, size()/Ids() still count it) but the
  /// in-memory Context is handed to the caller, whose drop of the returned
  /// reference frees the host bytes (unless a running session still pins it).
  /// The entry remembers the context's device affinity and payload bytes.
  /// Null when the id is unknown, pending, or already spilled.
  std::shared_ptr<Context> DetachForSpill(uint64_t id);

  /// Re-attaches a resident payload to a spilled entry (demand page-in). The
  /// context's token sequence must equal the spilled entry's. Exactly one of
  /// two racing restores wins (AlreadyExists for the loser, whose caller
  /// simply re-reads FindShared).
  Status RestoreSpilled(uint64_t id, std::shared_ptr<Context> context);

  /// Registers a spilled placeholder directly — the warm-start path: an
  /// engine restart enumerates the persistence manifests and re-registers
  /// every on-disk context as spilled, so the trie serves prefix matches
  /// immediately and the payload pages in on first hit. `kv_bytes` /
  /// `index_bytes` record the payload size for tier accounting. Fails if the
  /// id is already live or pending.
  Status AddSpilled(uint64_t id, std::vector<int32_t> tokens, int resident_device,
                    uint64_t kv_bytes, uint64_t index_bytes);

  /// True when the id exists and is currently spilled.
  bool IsSpilled(uint64_t id) const;

  /// The stored context sharing the longest common prefix with `tokens`.
  /// Served by a compressed token trie over published sequences: cost is
  /// O(match length), independent of how many contexts the store holds, and
  /// the winner on ties (lowest id among the maxima) is bit-compatible with
  /// the linear scan this replaced. The trie indexes exactly the published
  /// set — Add/Publish insert, Remove erases, pending reservations are
  /// invisible until published, spilled entries stay (match.spilled set).
  PrefixMatch BestPrefixMatch(std::span<const int32_t> tokens) const;

  /// Length of the longest stored prefix of `tokens`, without pinning the
  /// matched context — the cheap probe admission control uses to project how
  /// many prompt tokens a request would have to prefill. The store may change
  /// before the session is actually created; callers treat this as an
  /// estimate, not a reservation.
  size_t BestPrefixMatchLength(std::span<const int32_t> tokens) const;

  /// Everything placement-aware admission wants from one trie walk, still
  /// without pinning: the match length plus the winning context's id and
  /// device residency (the affinity target). device == -1 when nothing
  /// matched; `spilled` tells the serving layer to prefetch the page-in off
  /// the decode path. Same TOCTOU caveat as BestPrefixMatchLength.
  struct PrefixProbe {
    size_t matched = 0;
    uint64_t context_id = 0;
    int device = -1;
    bool spilled = false;
  };
  PrefixProbe BestPrefixProbe(std::span<const int32_t> tokens) const;

  bool Remove(uint64_t id);
  /// Published entries, resident AND spilled.
  size_t size() const;
  /// Published entries currently host-resident / currently spilled to disk.
  size_t resident() const;
  size_t spilled() const;
  std::vector<uint64_t> Ids() const;
  std::vector<uint64_t> SpilledIds() const;

  /// Total deployed KV / index bytes across host-RESIDENT stored contexts.
  /// Incrementally maintained counters updated by Add/Publish/Remove and the
  /// spill transitions — O(1), where the old implementation walked every
  /// context under the store lock on each serving snapshot.
  uint64_t TotalKvBytes() const;
  uint64_t TotalIndexBytes() const;

  /// Trie nodes the prefix lookups walk (observability for tests/benches).
  size_t PrefixIndexNodes() const;

 private:
  /// One published context: resident payload (null while spilled) plus the
  /// metadata that must survive a spill — the token sequence (trie erase on
  /// Remove, identity check on restore), device affinity, and payload bytes.
  struct Entry {
    std::shared_ptr<Context> context;
    std::vector<int32_t> tokens;
    int resident_device = 0;  ///< Snapshot while spilled; live value is the
                              ///< context's own atomic while resident.
    uint64_t kv_bytes = 0;    ///< Payload size, resident or not.
    uint64_t index_bytes = 0;
  };

  /// Inserts a resident entry under `id` (caller holds mu_ exclusively):
  /// records payload bytes, bumps the incremental totals, indexes the trie.
  void EmplaceResidentLocked(uint64_t id, std::shared_ptr<Context> context);

  mutable std::shared_mutex mu_;
  std::map<uint64_t, Entry> contexts_;
  std::set<uint64_t> pending_;  ///< Reserved ids, invisible to all lookups.
  /// Prefix index over published contexts' token sequences, kept coherent
  /// under mu_: every path that makes a context visible (Add, Publish,
  /// AddSpilled) inserts it, Remove erases it, pending ids never enter, and
  /// spill/restore leave it untouched.
  TokenTrie prefix_index_;
  uint64_t next_id_ = 1;
  /// Incrementally maintained byte totals over resident entries; asserted
  /// equal to a full scan in context_store_test.
  uint64_t resident_kv_bytes_ = 0;
  uint64_t resident_index_bytes_ = 0;
};

}  // namespace alaya
