// Transformer geometry the database needs to know about: layers, GQA heads,
// head dimension, and deployed KV precision (for byte-accurate accounting).
#pragma once

#include <cstdint>

#include "src/common/status.h"

namespace alaya {

struct ModelConfig {
  uint32_t num_layers = 8;
  uint32_t num_q_heads = 8;
  uint32_t num_kv_heads = 2;
  uint32_t head_dim = 64;
  /// Bytes per scalar in the deployed KV cache (bf16 = 2). This repo computes
  /// in fp32 but reports memory at deployment precision.
  uint32_t bytes_per_scalar = 2;

  /// GQA group size: query heads sharing one KV head.
  uint32_t GroupSize() const { return num_q_heads / num_kv_heads; }
  /// KV head serving query head `q_head`.
  uint32_t KvHeadForQuery(uint32_t q_head) const { return q_head / GroupSize(); }

  /// Deployed KV bytes per token for one layer (K + V across KV heads).
  uint64_t KvBytesPerTokenLayer() const {
    return 2ull * num_kv_heads * head_dim * bytes_per_scalar;
  }
  /// Deployed KV bytes per token across all layers.
  uint64_t KvBytesPerToken() const { return KvBytesPerTokenLayer() * num_layers; }

  Status Validate() const {
    if (num_layers == 0 || num_q_heads == 0 || num_kv_heads == 0 || head_dim == 0) {
      return Status::InvalidArgument("model dimensions must be positive");
    }
    if (num_q_heads % num_kv_heads != 0) {
      return Status::InvalidArgument("num_q_heads must be a multiple of num_kv_heads");
    }
    return Status::Ok();
  }

  /// The paper's evaluation model: Llama-3-8B-Instruct-262k
  /// (32 layers, 32 query heads, 8 KV heads, head dim 128, bf16).
  static ModelConfig Llama3_8B() { return ModelConfig{32, 32, 8, 128, 2}; }

  /// Small geometry for unit tests.
  static ModelConfig Tiny() { return ModelConfig{2, 4, 2, 16, 2}; }

  /// Scaled-down geometry for benchmarks (keeps GQA 4:1 and the head_dim of
  /// Llama, fewer layers/heads so CPU full-attention references stay feasible).
  static ModelConfig Bench() { return ModelConfig{4, 8, 2, 128, 2}; }
};

}  // namespace alaya
