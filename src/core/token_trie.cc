#include "src/core/token_trie.h"

#include <algorithm>

namespace alaya {

namespace {

/// Length of the common prefix of `label` and `tokens`.
size_t CommonLength(std::span<const int32_t> label, std::span<const int32_t> tokens) {
  const size_t limit = std::min(label.size(), tokens.size());
  size_t k = 0;
  while (k < limit && label[k] == tokens[k]) ++k;
  return k;
}

}  // namespace

void TokenTrie::Insert(uint64_t id, std::span<const int32_t> tokens) {
  ++size_;
  Node* node = &root_;
  node->ids.insert(id);
  size_t pos = 0;
  while (pos < tokens.size()) {
    auto it = node->children.find(tokens[pos]);
    if (it == node->children.end()) {
      // No edge starts with this token: the whole remainder becomes one leaf.
      auto leaf = std::make_unique<Node>();
      leaf->label.assign(tokens.begin() + static_cast<long>(pos), tokens.end());
      leaf->ids.insert(id);
      node->children.emplace(tokens[pos], std::move(leaf));
      ++node_count_;
      return;
    }
    Node* child = it->second.get();
    const size_t k = CommonLength(child->label, tokens.subspan(pos));
    if (k == child->label.size()) {
      // Full edge consumed; descend.
      child->ids.insert(id);
      node = child;
      pos += k;
      continue;
    }
    // Diverged (or the sequence ends) mid-edge: split the edge at k. The
    // intermediate node inherits the child's subtree plus this sequence.
    auto intermediate = std::make_unique<Node>();
    intermediate->label.assign(child->label.begin(),
                               child->label.begin() + static_cast<long>(k));
    intermediate->ids = child->ids;
    intermediate->ids.insert(id);
    std::unique_ptr<Node> old_child = std::move(it->second);
    old_child->label.erase(old_child->label.begin(),
                           old_child->label.begin() + static_cast<long>(k));
    intermediate->children.emplace(old_child->label.front(), std::move(old_child));
    ++node_count_;
    Node* inter = intermediate.get();
    it->second = std::move(intermediate);
    pos += k;
    if (pos == tokens.size()) return;  // Sequence ends at the split point.
    auto leaf = std::make_unique<Node>();
    leaf->label.assign(tokens.begin() + static_cast<long>(pos), tokens.end());
    leaf->ids.insert(id);
    inter->children.emplace(tokens[pos], std::move(leaf));
    ++node_count_;
    return;
  }
}

bool TokenTrie::Erase(uint64_t id, std::span<const int32_t> tokens) {
  // First verify the full path carries the id, so a mismatched call cannot
  // leave the trie half-edited.
  Node* node = &root_;
  size_t pos = 0;
  std::vector<Node*> path{&root_};
  while (pos < tokens.size()) {
    auto it = node->children.find(tokens[pos]);
    if (it == node->children.end()) return false;
    Node* child = it->second.get();
    const size_t k = CommonLength(child->label, tokens.subspan(pos));
    if (k != child->label.size()) return false;  // Sequence not in the trie.
    node = child;
    pos += k;
    path.push_back(node);
  }
  if (node->ids.count(id) == 0) return false;
  --size_;
  for (Node* n : path) n->ids.erase(id);
  // Prune the dead branch. Id sets shrink along the path (a node's set
  // contains its descendants'), so emptiness is monotone: detaching the
  // SHALLOWEST emptied node (root excluded) releases every emptied node in
  // one cut.
  for (size_t i = 1; i < path.size(); ++i) {
    if (!path[i]->ids.empty()) continue;
    // Subtract the whole dropped branch from the node count.
    size_t dropped = 0;
    std::vector<const Node*> stack{path[i]};
    while (!stack.empty()) {
      const Node* cur = stack.back();
      stack.pop_back();
      ++dropped;
      for (const auto& [_, c] : cur->children) stack.push_back(c.get());
    }
    node_count_ -= dropped;
    path[i - 1]->children.erase(path[i]->label.front());
    break;
  }
  return true;
}

TokenTrie::Best TokenTrie::BestPrefix(std::span<const int32_t> tokens) const {
  const Node* node = &root_;
  size_t pos = 0;
  while (pos < tokens.size()) {
    auto it = node->children.find(tokens[pos]);
    if (it == node->children.end()) break;
    const Node* child = it->second.get();
    const size_t k = CommonLength(child->label, tokens.subspan(pos));
    if (k < child->label.size()) {
      // Stopped mid-edge: every sequence below `child` agrees with the query
      // on exactly pos + k tokens (k >= 1 — edges are keyed by first token).
      node = child;
      pos += k;
      break;
    }
    node = child;
    pos += k;
  }
  if (pos == 0 || node->ids.empty()) return Best{};
  return Best{*node->ids.begin(), pos};
}

}  // namespace alaya
