// AlayaDB: the DB abstraction (Table 2) — manages all contexts (prompts, KV
// cache, vector indexes) and hands out Sessions:
//   DB.create_session(prompts) -> Session, truncated prompts
//   DB.import(prompts, kv_cache)
//   DB.store(session)
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "src/core/context_store.h"
#include "src/core/session.h"

namespace alaya {

struct DbOptions {
  ModelConfig model = ModelConfig::Tiny();
  SessionOptions session;
  IndexBuildOptions index_build;
  /// Build RoarGraph per (layer, KV head) on Import/Store.
  bool build_fine_indices = true;
  /// Additionally build coarse block indices (used when the optimizer has GPU
  /// budget to burn; InfLLM-in-AlayaDB, Fig. 8).
  bool build_coarse_indices = false;
  CoarseIndexOptions coarse;
};

class AlayaDB {
 public:
  explicit AlayaDB(const DbOptions& options, SimEnvironment* env = nullptr);

  /// Result of create_session: the session plus the non-reused (truncated)
  /// suffix of the prompt, which the inference engine must still prefill.
  struct SessionCreation {
    std::unique_ptr<Session> session;
    std::vector<int32_t> truncated_prompt;
    size_t reused_prefix = 0;
    uint64_t context_id = 0;  ///< 0 when no stored context matched.
    /// Pins the reused context for the session's lifetime: a concurrent
    /// ContextStore::Remove unregisters it but cannot free it underneath a
    /// running session. Keep this alive as long as `session` is.
    std::shared_ptr<Context> context_ref;
  };

  /// DB.create_session(prompts): finds the stored context sharing the longest
  /// common prefix with `prompt` and returns a session reusing it.
  Result<SessionCreation> CreateSession(const std::vector<int32_t>& prompt);

  /// DB.import(prompts, kv_cache): registers a precomputed context (and its
  /// optional prefill query samples for index training); builds indices.
  Result<uint64_t> Import(std::vector<int32_t> tokens, std::unique_ptr<KvCache> kv,
                          const QuerySamples* queries = nullptr);

  /// DB.store(session): materializes the session (reused prefix + local KV)
  /// into a new reusable context — the late-materialization endpoint (§7.2).
  /// `new_tokens` are the token ids the session appended
  /// (|new_tokens| == session->LocalTokens()).
  Result<uint64_t> Store(Session* session, std::span<const int32_t> new_tokens);

  ContextStore& contexts() { return contexts_; }
  const ContextStore& contexts() const { return contexts_; }
  SimEnvironment& env() { return *env_; }
  const DbOptions& options() const { return options_; }

 private:
  Status BuildIndices(Context* context, const QuerySamples* queries);

  DbOptions options_;
  SimEnvironment* env_;
  ContextStore contexts_;
};

}  // namespace alaya
