// AlayaDB: the DB abstraction (Table 2) — manages all contexts (prompts, KV
// cache, vector indexes) and hands out Sessions:
//   DB.create_session(prompts) -> Session, truncated prompts
//   DB.import(prompts, kv_cache)
//   DB.store(session)
//   DB.store_async(session) -> context id, materialization off the hot path
//
// Callers serving live traffic sit one layer up, behind ServingEngine
// (src/server/serving_engine.h): an always-on driver thread that turns these
// primitives into a request lifecycle — non-blocking Submit returning a
// RequestHandle, continuous admission at step boundaries, per-step streaming,
// cancellation/deadlines, graceful Shutdown draining this DB's
// materialization queue. Prefix lookups that route create_session's reuse are
// trie-indexed (ContextStore::BestPrefixMatch — O(match length), independent
// of store size).
#pragma once

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/context_store.h"
#include "src/core/session.h"
#include "src/core/tiered_context_store.h"

namespace alaya {

struct DbOptions {
  ModelConfig model = ModelConfig::Tiny();
  SessionOptions session;
  IndexBuildOptions index_build;
  /// Quantization: the one knob set (vector_codec.h). index_codec/rerank_k
  /// are copied into index_build.roar at construction; kv_codec rounds every
  /// materialized/imported context's KV onto the codec grid, which shrinks
  /// DeployedBytes (tier budgets, admission) to the codec's width.
  QuantOptions quant;
  /// Build RoarGraph per (layer, KV head) on Import/Store.
  bool build_fine_indices = true;
  /// Additionally build coarse block indices (used when the optimizer has GPU
  /// budget to burn; InfLLM-in-AlayaDB, Fig. 8).
  bool build_coarse_indices = false;
  CoarseIndexOptions coarse;
  /// Worker pool background materializations (StoreAsync) run on
  /// (nullptr -> ThreadPool::Global()).
  ThreadPool* materialize_pool = nullptr;
  /// Host → disk tiering (TieredContextStore): host budget, spill backing,
  /// durability and restart semantics. Disabled by default — the store then
  /// behaves exactly as before (grow-only, host-resident).
  TierOptions tier;
};

class AlayaDB {
 public:
  explicit AlayaDB(const DbOptions& options, SimEnvironment* env = nullptr);
  /// Drains every in-flight materialization before tearing the DB down.
  ~AlayaDB();

  AlayaDB(const AlayaDB&) = delete;
  AlayaDB& operator=(const AlayaDB&) = delete;

  /// Result of create_session: the session plus the non-reused (truncated)
  /// suffix of the prompt, which the inference engine must still prefill.
  struct SessionCreation {
    std::unique_ptr<Session> session;
    std::vector<int32_t> truncated_prompt;
    size_t reused_prefix = 0;
    uint64_t context_id = 0;  ///< 0 when no stored context matched.
    /// Pins the reused context for the session's lifetime: a concurrent
    /// ContextStore::Remove unregisters it but cannot free it underneath a
    /// running session. Keep this alive as long as `session` is.
    std::shared_ptr<Context> context_ref;
    /// Cross-device reuse: the matched context resided on a different fleet
    /// device than the session was placed on, so the device-resident window it
    /// contributes was pulled over the interconnect — these bytes were charged
    /// as a modeled transfer to the session's device clock, and the context's
    /// residency moved with it (last-user-wins). 0 on same-device reuse.
    uint64_t cross_device_transfer_bytes = 0;
  };

  /// DB.create_session(prompts): finds the stored context sharing the longest
  /// common prefix with `prompt` and returns a session reusing it. `device`
  /// places the session on one GPU of the environment's fleet (clamped);
  /// reusing a context warm on another device charges the modeled transfer of
  /// its window bytes to the target device and re-homes the context there.
  Result<SessionCreation> CreateSession(const std::vector<int32_t>& prompt,
                                        int device = 0);

  /// Rebinding for a preempted request resuming after suspension: constructs
  /// a fresh session over EXACTLY the context/prefix the suspended session
  /// had — deliberately no prefix re-matching (the store may have grown a
  /// longer match since; rebinding to it would shift the suspended KV's token
  /// positions) — ready for Session::AttachFromSuspend. `context_id` 0 means
  /// the original session had no reuse. A context spilled to disk while the
  /// request was suspended (dropping the pin during suspension makes it
  /// evictable — that is the point) is demand-paged back; a context removed
  /// outright fails honestly with kNotFound. Cross-device resume charges the
  /// same modeled window transfer and re-homing as CreateSession.
  struct SessionResume {
    std::unique_ptr<Session> session;
    std::shared_ptr<Context> context_ref;  ///< Re-pinned; null when no reuse.
    uint64_t cross_device_transfer_bytes = 0;
  };
  Result<SessionResume> ResumeSession(uint64_t context_id, size_t reused_prefix,
                                      int device = 0);

  /// DB.import(prompts, kv_cache): registers a precomputed context (and its
  /// optional prefill query samples for index training); builds indices.
  Result<uint64_t> Import(std::vector<int32_t> tokens, std::unique_ptr<KvCache> kv,
                          const QuerySamples* queries = nullptr);

  /// DB.store(session): materializes the session (reused prefix + local KV)
  /// into a new reusable context — the late-materialization endpoint (§7.2).
  /// `new_tokens` are the token ids the session appended
  /// (|new_tokens| == session->LocalTokens()). Synchronous: blocks the caller
  /// for the full KV clone + index build; the session stays usable.
  Result<uint64_t> Store(Session* session, std::span<const int32_t> new_tokens);

  /// DB.store_async(session): same materialization, off the caller's path.
  /// Detaches the session's local KV and recorded queries (the session is
  /// dead afterwards — the serving engine retires it immediately), reserves a
  /// context id, and schedules the KV clone + index build on the materialize
  /// pool. The returned id becomes visible to CreateSession/BestPrefixMatch
  /// only when the context is fully built (ContextStore::Publish); no lookup
  /// can ever observe it half-built. `context_ref` pins the session's reused
  /// context for the job's lifetime; when omitted it is re-pinned from the
  /// store (and if that fails — the context was already removed — the
  /// materialization runs inline before returning, the only safe fallback).
  ///
  /// Produces a context bit-identical to Store() on the same session state:
  /// both run the same materialization code; only the thread differs.
  Result<uint64_t> StoreAsync(Session* session, std::vector<int32_t> new_tokens,
                              std::shared_ptr<Context> context_ref = nullptr);

  /// Background-materialization accounting (pending counts queued + running
  /// jobs; completed/failed are lifetime totals; first_error is sticky).
  struct MaterializationStats {
    size_t pending = 0;
    size_t completed = 0;
    size_t failed = 0;
    Status first_error;
  };

  /// Blocks until every scheduled materialization has published (or failed);
  /// returns the sticky first failure. The barrier RunToCompletion and tests
  /// use to observe Store completion.
  Status WaitForMaterialization();
  /// Alias for WaitForMaterialization().
  Status Drain() { return WaitForMaterialization(); }
  MaterializationStats materialization_stats() const;

  /// Per-reservation failures: reserved context id -> why its materialization
  /// never published. Lets callers that recorded a StoreAsync ticket (e.g. the
  /// serving engine's RequestResult) map an aggregate failure count back to
  /// the specific store that was lost. Sticky for the DB's lifetime.
  std::map<uint64_t, Status> materialization_errors() const;

  ContextStore& contexts() { return contexts_; }
  const ContextStore& contexts() const { return contexts_; }
  SimEnvironment& env() { return *env_; }
  const DbOptions& options() const { return options_; }

  /// The tiering policy layer; nullptr when options.tier is disabled.
  TieredContextStore* tiers() { return tiers_.get(); }
  const TieredContextStore* tiers() const { return tiers_.get(); }

  /// Admission-time hint: a probe saw a spilled context match — warm it on
  /// the materialize pool so CreateSession finds it resident. No-op without
  /// tiering or for ids that are resident (or already loading).
  void PrefetchContext(uint64_t id) {
    if (tiers_ != nullptr) tiers_->PrefetchAsync(id);
  }

  /// Cross-device KV migration: moves context `context_id`'s device residency
  /// from `from` to `to`, charging the modeled transfer of its window bytes
  /// (the same formula CreateSession's cross-device reuse pays) to the
  /// DESTINATION device's clock — it is the one stalled receiving. The
  /// scheduler's rebalance probe calls this to shed a warm shard off a hot
  /// device; subsequent prefix hits then place toward `to` via the affinity
  /// probe. Returns the bytes moved. Fails kNotFound for unknown ids and
  /// kFailedPrecondition when the context is not actually resident on `from`
  /// (it raced a session re-homing it — the migration is stale, skip it).
  Result<uint64_t> MigrateShard(uint64_t context_id, int from, int to);

 private:
  Status BuildIndices(Context* context, const QuerySamples* queries,
                      const Context* base = nullptr, size_t base_prefix = 0);

  /// The one materialization path (Store, StoreAsync and its inline fallback
  /// all funnel here — the bit-identical guarantee): clones prefix + local KV,
  /// builds indices (extending from `reused`'s graphs when it fully covers
  /// the prefix), and attaches the host-memory reservation for the offloaded
  /// KV. `tokens` is the full composed sequence.
  Result<std::unique_ptr<Context>> MaterializeContext(
      std::vector<int32_t> tokens, const Context* reused, size_t reused_prefix,
      const KvCache& local_kv, const QuerySamples* queries);

  ThreadPool* MaterializePool() const;

  /// Folds one materialization's outcome into the counters/error map; the
  /// single bookkeeping point for the background job and the inline fallback.
  /// `was_queued` jobs also decrement the pending count and wake Drain().
  void RecordMaterializationOutcome(uint64_t id, const Status& status,
                                    bool was_queued);

  DbOptions options_;
  SimEnvironment* env_;
  ContextStore contexts_;
  /// Declared after contexts_ (destroyed first): its teardown waits for
  /// in-flight prefetches, which read the store.
  std::unique_ptr<TieredContextStore> tiers_;

  mutable std::mutex mat_mu_;
  std::condition_variable mat_cv_;
  size_t mat_pending_ = 0;
  size_t mat_completed_ = 0;
  size_t mat_failed_ = 0;
  Status mat_first_error_;
  std::map<uint64_t, Status> mat_errors_;  ///< Reserved id -> failure.
};

}  // namespace alaya
