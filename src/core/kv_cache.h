// Per-layer, per-KV-head key/value storage (the "vector data" the database
// manages). Values are stored alongside keys; token id i is row i of both.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/common/vector_codec.h"
#include "src/core/model_config.h"
#include "src/index/vector_set.h"

namespace alaya {

/// One attention head's keys and values.
struct KvHeadStore {
  VectorSet keys;
  VectorSet values;
};

/// KV cache for all layers/KV-heads of one context or session.
class KvCache {
 public:
  explicit KvCache(const ModelConfig& config);

  const ModelConfig& config() const { return config_; }

  /// Appends one token's K/V for one layer. `k` and `v` are
  /// [num_kv_heads * head_dim] packed head-major.
  void AppendToken(uint32_t layer, const float* k, const float* v);

  /// Appends `count` tokens for one layer; k/v are [count, num_kv_heads * d]
  /// row-major (token-major, head-minor).
  void AppendTokens(uint32_t layer, size_t count, const float* k, const float* v);

  /// Tokens stored in a layer (all layers agree after a complete forward pass).
  size_t NumTokens(uint32_t layer = 0) const;

  VectorSetView Keys(uint32_t layer, uint32_t kv_head) const;
  VectorSetView Values(uint32_t layer, uint32_t kv_head) const;
  KvHeadStore& Head(uint32_t layer, uint32_t kv_head);
  const KvHeadStore& Head(uint32_t layer, uint32_t kv_head) const;

  /// Copies rows [0, count) of `src` into this cache (prefix clone for
  /// materializing partially-reused contexts).
  Status AppendPrefixFrom(const KvCache& src, size_t count);

  /// Appends all tokens of `src` (geometries must match).
  Status AppendAllFrom(const KvCache& src);

  /// Rounds every stored K/V element onto `codec`'s grid in place and records
  /// the per-(layer, head, keys|vals) affine params. The resident data stays
  /// fp32 (this repo computes in fp32, accounts deployed) but carries exactly
  /// the information the deployed representation would, and DeployedBytes()
  /// switches to the codec's byte width. Idempotent for already-on-grid data.
  /// Quantize once, after the final token of a context is appended — appends
  /// after quantization would mix grids within a head.
  void QuantizeInPlace(VectorCodec codec);

  /// Restores codec metadata without touching the (already on-grid) floats —
  /// the spill-restore path, where params must match what was persisted.
  /// `key_params`/`val_params` are indexed by Slot() order (layer-major) and
  /// must each hold num_layers * num_kv_heads entries (ignored for kFp32).
  void SetCodecState(VectorCodec codec, std::vector<CodecParams> key_params,
                     std::vector<CodecParams> val_params);

  VectorCodec codec() const { return codec_; }
  /// Affine params for one head's keys/values (identity until quantized).
  const CodecParams& KeyParams(uint32_t layer, uint32_t kv_head) const;
  const CodecParams& ValParams(uint32_t layer, uint32_t kv_head) const;

  /// Resident fp32 bytes (actual process memory).
  uint64_t FloatBytes() const;
  /// Deployed-precision bytes — what admission, tier budgets and reported
  /// numbers charge. Per-scalar width is the smaller of the model's deployed
  /// precision (bf16 by default) and the quantization codec's width, so
  /// kv_codec=int8 halves the accounted footprint and fp16 changes nothing.
  uint64_t DeployedBytes() const;

  void Reserve(uint32_t layer, size_t tokens);

 private:
  size_t Slot(uint32_t layer, uint32_t kv_head) const {
    return static_cast<size_t>(layer) * config_.num_kv_heads + kv_head;
  }

  ModelConfig config_;
  std::vector<KvHeadStore> heads_;
  VectorCodec codec_ = VectorCodec::kFp32;
  std::vector<CodecParams> key_params_;  ///< Slot()-indexed; empty until coded.
  std::vector<CodecParams> val_params_;
};

}  // namespace alaya
