// Per-layer, per-KV-head key/value storage (the "vector data" the database
// manages). Values are stored alongside keys; token id i is row i of both.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/core/model_config.h"
#include "src/index/vector_set.h"

namespace alaya {

/// One attention head's keys and values.
struct KvHeadStore {
  VectorSet keys;
  VectorSet values;
};

/// KV cache for all layers/KV-heads of one context or session.
class KvCache {
 public:
  explicit KvCache(const ModelConfig& config);

  const ModelConfig& config() const { return config_; }

  /// Appends one token's K/V for one layer. `k` and `v` are
  /// [num_kv_heads * head_dim] packed head-major.
  void AppendToken(uint32_t layer, const float* k, const float* v);

  /// Appends `count` tokens for one layer; k/v are [count, num_kv_heads * d]
  /// row-major (token-major, head-minor).
  void AppendTokens(uint32_t layer, size_t count, const float* k, const float* v);

  /// Tokens stored in a layer (all layers agree after a complete forward pass).
  size_t NumTokens(uint32_t layer = 0) const;

  VectorSetView Keys(uint32_t layer, uint32_t kv_head) const;
  VectorSetView Values(uint32_t layer, uint32_t kv_head) const;
  KvHeadStore& Head(uint32_t layer, uint32_t kv_head);
  const KvHeadStore& Head(uint32_t layer, uint32_t kv_head) const;

  /// Copies rows [0, count) of `src` into this cache (prefix clone for
  /// materializing partially-reused contexts).
  Status AppendPrefixFrom(const KvCache& src, size_t count);

  /// Appends all tokens of `src` (geometries must match).
  Status AppendAllFrom(const KvCache& src);

  /// Resident fp32 bytes (actual process memory).
  uint64_t FloatBytes() const;
  /// Deployed-precision bytes (bf16 accounting used in reported numbers).
  uint64_t DeployedBytes() const;

  void Reserve(uint32_t layer, size_t tokens);

 private:
  size_t Slot(uint32_t layer, uint32_t kv_head) const {
    return static_cast<size_t>(layer) * config_.num_kv_heads + kv_head;
  }

  ModelConfig config_;
  std::vector<KvHeadStore> heads_;
};

}  // namespace alaya
