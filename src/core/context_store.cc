#include "src/core/context_store.h"

#include <algorithm>

namespace alaya {

Status Context::BuildFineIndices(const IndexBuildOptions& options,
                                 const QuerySamples* queries,
                                 IndexBuildStats* total_stats,
                                 const Context* base, size_t base_prefix) {
  const ModelConfig& cfg = kv_->config();
  fine_.clear();
  fine_shared_ = options.share_gqa_group;
  fine_restored_ = false;
  IndexBuildStats total;

  // Extend-from-base: reuse the base context's per-head graphs for the shared
  // prefix and insert only the suffix vectors. Sound whenever the first
  // base_prefix tokens agree and the index layouts match: a full reuse
  // (base_prefix == base->length()) adopts the base adjacency verbatim, a
  // PARTIAL reuse (base_prefix < base->length()) adopts it with the base's
  // out-of-prefix edges dropped (RoarGraph::ExtendFromBase) instead of a
  // scratch rebuild. Layout mismatches fall back to the scratch build below.
  const bool can_extend =
      base != nullptr && base != this && base->HasFineIndices() &&
      base->fine_shared_ && options.share_gqa_group && base_prefix > 0 &&
      base_prefix <= base->length() && base_prefix <= kv_->NumTokens() &&
      base->fine_.size() ==
          static_cast<size_t>(cfg.num_layers) * cfg.num_kv_heads;
  if (can_extend) {
    for (uint32_t layer = 0; layer < cfg.num_layers; ++layer) {
      std::vector<VectorSetView> head_keys;
      std::vector<const RoarGraph*> base_indices;
      for (uint32_t h = 0; h < cfg.num_kv_heads; ++h) {
        head_keys.push_back(kv_->Keys(layer, h));
        base_indices.push_back(
            base->fine_[static_cast<size_t>(layer) * cfg.num_kv_heads + h].get());
      }
      std::vector<std::unique_ptr<RoarGraph>> layer_indices;
      IndexBuildStats stats;
      ALAYA_RETURN_IF_ERROR(ExtendLayerIndices(head_keys, base_indices, base_prefix,
                                               options, &layer_indices, &stats));
      total.Accumulate(stats);
      for (auto& idx : layer_indices) fine_.push_back(std::move(idx));
    }
    build_stats_ = total;
    if (total_stats != nullptr) *total_stats = total;
    return Status::Ok();
  }

  // Keys trained on themselves when no prefill queries were recorded.
  std::unique_ptr<QuerySamples> self_train;
  if (queries == nullptr) {
    self_train = std::make_unique<QuerySamples>(cfg);
    for (uint32_t layer = 0; layer < cfg.num_layers; ++layer) {
      for (uint32_t h = 0; h < cfg.num_q_heads; ++h) {
        const uint32_t kv_head = cfg.KvHeadForQuery(h);
        VectorSetView keys = kv_->Keys(layer, kv_head);
        VectorSet& dst = self_train->Mutable(layer, h);
        dst.AppendBatch(keys.data, keys.n);
      }
    }
    queries = self_train.get();
  }

  for (uint32_t layer = 0; layer < cfg.num_layers; ++layer) {
    std::vector<VectorSetView> head_keys;
    for (uint32_t h = 0; h < cfg.num_kv_heads; ++h) {
      head_keys.push_back(kv_->Keys(layer, h));
    }
    std::vector<VectorSetView> head_queries;
    for (uint32_t h = 0; h < cfg.num_q_heads; ++h) {
      head_queries.push_back(queries->View(layer, h));
    }
    std::vector<std::unique_ptr<RoarGraph>> layer_indices;
    IndexBuildStats stats;
    ALAYA_RETURN_IF_ERROR(BuildLayerIndices(head_keys, head_queries, cfg.GroupSize(),
                                            options, &layer_indices, &stats));
    total.Accumulate(stats);
    for (auto& idx : layer_indices) fine_.push_back(std::move(idx));
  }
  build_stats_ = total;
  if (total_stats != nullptr) *total_stats = total;
  return Status::Ok();
}

Status Context::RestoreFineIndices(const RoarGraphOptions& options,
                                   std::vector<AdjacencyGraph>&& graphs) {
  const ModelConfig& cfg = kv_->config();
  const size_t expected = static_cast<size_t>(cfg.num_layers) * cfg.num_kv_heads;
  if (graphs.size() != expected) {
    return Status::InvalidArgument("graph count does not match layers * kv_heads");
  }
  fine_.clear();
  fine_shared_ = true;
  for (uint32_t layer = 0; layer < cfg.num_layers; ++layer) {
    for (uint32_t h = 0; h < cfg.num_kv_heads; ++h) {
      auto index = std::make_unique<RoarGraph>(kv_->Keys(layer, h), options);
      ALAYA_RETURN_IF_ERROR(index->AdoptGraph(
          std::move(graphs[static_cast<size_t>(layer) * cfg.num_kv_heads + h])));
      fine_.push_back(std::move(index));
    }
  }
  fine_restored_ = true;
  return Status::Ok();
}

Status Context::BuildCoarseIndices(const CoarseIndexOptions& options) {
  const ModelConfig& cfg = kv_->config();
  coarse_.clear();
  for (uint32_t layer = 0; layer < cfg.num_layers; ++layer) {
    for (uint32_t h = 0; h < cfg.num_kv_heads; ++h) {
      coarse_.push_back(std::make_unique<CoarseIndex>(kv_->Keys(layer, h), options));
    }
  }
  return Status::Ok();
}

const RoarGraph* Context::FineIndex(uint32_t layer, uint32_t q_head) const {
  if (fine_.empty()) return nullptr;
  const ModelConfig& cfg = kv_->config();
  const size_t per_layer = fine_shared_ ? cfg.num_kv_heads : cfg.num_q_heads;
  const size_t slot = fine_shared_ ? cfg.KvHeadForQuery(q_head) : q_head;
  const size_t idx = static_cast<size_t>(layer) * per_layer + slot;
  return idx < fine_.size() ? fine_[idx].get() : nullptr;
}

const CoarseIndex* Context::CoarseIdx(uint32_t layer, uint32_t kv_head) const {
  if (coarse_.empty()) return nullptr;
  const ModelConfig& cfg = kv_->config();
  const size_t idx = static_cast<size_t>(layer) * cfg.num_kv_heads + kv_head;
  return idx < coarse_.size() ? coarse_[idx].get() : nullptr;
}

uint64_t Context::IndexBytes() const {
  uint64_t b = 0;
  for (const auto& f : fine_) b += f->MemoryBytes();
  for (const auto& c : coarse_) b += c->MemoryBytes();
  return b;
}

void ContextStore::EmplaceResidentLocked(uint64_t id,
                                         std::shared_ptr<Context> context) {
  Entry entry;
  entry.tokens = context->tokens();
  entry.resident_device = context->resident_device();
  entry.kv_bytes = context->kv().DeployedBytes();
  entry.index_bytes = context->IndexBytes();
  entry.context = std::move(context);
  resident_kv_bytes_ += entry.kv_bytes;
  resident_index_bytes_ += entry.index_bytes;
  prefix_index_.Insert(id, entry.tokens);
  contexts_[id] = std::move(entry);
}

uint64_t ContextStore::Add(std::unique_ptr<Context> context) {
  std::unique_lock<std::shared_mutex> lk(mu_);
  uint64_t id = context->id() != 0 ? context->id() : next_id_;
  // A preset id (the serializer-restore path) must not collide with a pending
  // reservation: the later Publish would silently overwrite this context.
  // Treat such ids as taken and allocate a fresh one instead.
  if (pending_.count(id) > 0) id = next_id_;
  context->set_id(id);
  next_id_ = std::max(next_id_, id + 1);
  // A preset id may also overwrite an already-published context (restore into
  // a populated store); the displaced sequence must leave the prefix index —
  // and the incremental totals — or lookups would chase a dead id.
  if (auto it = contexts_.find(id); it != contexts_.end()) {
    prefix_index_.Erase(id, it->second.tokens);
    resident_kv_bytes_ -= it->second.context ? it->second.kv_bytes : 0;
    resident_index_bytes_ -= it->second.context ? it->second.index_bytes : 0;
    contexts_.erase(it);
  }
  EmplaceResidentLocked(id, std::shared_ptr<Context>(std::move(context)));
  return id;
}

uint64_t ContextStore::ReservePending() {
  std::unique_lock<std::shared_mutex> lk(mu_);
  const uint64_t id = next_id_++;
  pending_.insert(id);
  return id;
}

Status ContextStore::Publish(uint64_t id, std::unique_ptr<Context> context) {
  if (context == nullptr) return Status::InvalidArgument("null context");
  std::unique_lock<std::shared_mutex> lk(mu_);
  if (pending_.erase(id) == 0) {
    return Status::FailedPrecondition("context id was not reserved as pending");
  }
  context->set_id(id);
  EmplaceResidentLocked(id, std::shared_ptr<Context>(std::move(context)));
  return Status::Ok();
}

bool ContextStore::AbortPending(uint64_t id) {
  std::unique_lock<std::shared_mutex> lk(mu_);
  return pending_.erase(id) > 0;
}

size_t ContextStore::pending() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return pending_.size();
}

Context* ContextStore::FindUnsafeForTest(uint64_t id) {
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = contexts_.find(id);
  return it == contexts_.end() ? nullptr : it->second.context.get();
}

const Context* ContextStore::FindUnsafeForTest(uint64_t id) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = contexts_.find(id);
  return it == contexts_.end() ? nullptr : it->second.context.get();
}

std::shared_ptr<Context> ContextStore::FindShared(uint64_t id) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = contexts_.find(id);
  return it == contexts_.end() ? nullptr : it->second.context;
}

std::shared_ptr<Context> ContextStore::DetachForSpill(uint64_t id) {
  std::unique_lock<std::shared_mutex> lk(mu_);
  auto it = contexts_.find(id);
  if (it == contexts_.end() || it->second.context == nullptr) return nullptr;
  Entry& entry = it->second;
  // Freeze the affinity the context had at spill time: probes keep answering
  // from this snapshot while the payload is on disk.
  entry.resident_device = entry.context->resident_device();
  resident_kv_bytes_ -= entry.kv_bytes;
  resident_index_bytes_ -= entry.index_bytes;
  return std::move(entry.context);
}

Status ContextStore::RestoreSpilled(uint64_t id, std::shared_ptr<Context> context) {
  if (context == nullptr) return Status::InvalidArgument("null context");
  std::unique_lock<std::shared_mutex> lk(mu_);
  auto it = contexts_.find(id);
  if (it == contexts_.end()) {
    return Status::NotFound("no spilled entry for id");
  }
  Entry& entry = it->second;
  if (entry.context != nullptr) {
    return Status::Aborted("context is already resident");
  }
  if (context->tokens() != entry.tokens) {
    return Status::InvalidArgument("restored tokens do not match spilled entry");
  }
  context->set_id(id);
  context->set_resident_device(entry.resident_device);
  // Payload bytes may legitimately differ from the spill-time snapshot (e.g.
  // indices restored with different options); re-measure for the totals.
  entry.kv_bytes = context->kv().DeployedBytes();
  entry.index_bytes = context->IndexBytes();
  resident_kv_bytes_ += entry.kv_bytes;
  resident_index_bytes_ += entry.index_bytes;
  entry.context = std::move(context);
  return Status::Ok();
}

Status ContextStore::AddSpilled(uint64_t id, std::vector<int32_t> tokens,
                                int resident_device, uint64_t kv_bytes,
                                uint64_t index_bytes) {
  if (id == 0) return Status::InvalidArgument("spilled id must be nonzero");
  std::unique_lock<std::shared_mutex> lk(mu_);
  if (contexts_.count(id) > 0 || pending_.count(id) > 0) {
    return Status::FailedPrecondition("context id already live");
  }
  next_id_ = std::max(next_id_, id + 1);
  Entry entry;
  entry.tokens = std::move(tokens);
  entry.resident_device = resident_device;
  entry.kv_bytes = kv_bytes;
  entry.index_bytes = index_bytes;
  prefix_index_.Insert(id, entry.tokens);
  contexts_[id] = std::move(entry);
  return Status::Ok();
}

bool ContextStore::IsSpilled(uint64_t id) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = contexts_.find(id);
  return it != contexts_.end() && it->second.context == nullptr;
}

ContextStore::PrefixMatch ContextStore::BestPrefixMatch(
    std::span<const int32_t> tokens) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  PrefixMatch best;
  const TokenTrie::Best hit = prefix_index_.BestPrefix(tokens);
  if (hit.matched == 0) return best;
  auto it = contexts_.find(hit.id);
  if (it == contexts_.end()) return best;  // Unreachable while coherent.
  best.matched = hit.matched;
  best.id = hit.id;
  best.length = it->second.tokens.size();
  best.spilled = it->second.context == nullptr;
  best.context = it->second.context.get();
  best.ref = it->second.context;
  return best;
}

size_t ContextStore::BestPrefixMatchLength(std::span<const int32_t> tokens) const {
  // Same trie walk session creation's match uses, minus the pin — probe-based
  // admission estimates can never diverge from the matching semantics.
  std::shared_lock<std::shared_mutex> lk(mu_);
  return prefix_index_.BestPrefix(tokens).matched;
}

ContextStore::PrefixProbe ContextStore::BestPrefixProbe(
    std::span<const int32_t> tokens) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  PrefixProbe out;
  const TokenTrie::Best hit = prefix_index_.BestPrefix(tokens);
  if (hit.matched == 0) return out;
  auto it = contexts_.find(hit.id);
  if (it == contexts_.end()) return out;  // Unreachable while coherent.
  out.matched = hit.matched;
  out.context_id = hit.id;
  out.spilled = it->second.context == nullptr;
  out.device = out.spilled ? it->second.resident_device
                           : it->second.context->resident_device();
  return out;
}

bool ContextStore::Remove(uint64_t id) {
  std::unique_lock<std::shared_mutex> lk(mu_);
  auto it = contexts_.find(id);
  if (it == contexts_.end()) return false;
  prefix_index_.Erase(id, it->second.tokens);
  if (it->second.context != nullptr) {
    resident_kv_bytes_ -= it->second.kv_bytes;
    resident_index_bytes_ -= it->second.index_bytes;
  }
  contexts_.erase(it);
  return true;
}

size_t ContextStore::PrefixIndexNodes() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return prefix_index_.node_count();
}

size_t ContextStore::size() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return contexts_.size();
}

size_t ContextStore::resident() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  size_t n = 0;
  for (const auto& [_, entry] : contexts_) n += entry.context != nullptr;
  return n;
}

size_t ContextStore::spilled() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  size_t n = 0;
  for (const auto& [_, entry] : contexts_) n += entry.context == nullptr;
  return n;
}

std::vector<uint64_t> ContextStore::Ids() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  std::vector<uint64_t> ids;
  ids.reserve(contexts_.size());
  for (const auto& [id, _] : contexts_) ids.push_back(id);
  return ids;
}

std::vector<uint64_t> ContextStore::SpilledIds() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  std::vector<uint64_t> ids;
  for (const auto& [id, entry] : contexts_) {
    if (entry.context == nullptr) ids.push_back(id);
  }
  return ids;
}

uint64_t ContextStore::TotalKvBytes() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return resident_kv_bytes_;
}

uint64_t ContextStore::TotalIndexBytes() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return resident_index_bytes_;
}

}  // namespace alaya
