#include "src/core/tiered_context_store.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace alaya {

namespace {

constexpr char kManifestSuffix[] = "_manifest";
constexpr size_t kManifestSuffixLen = sizeof(kManifestSuffix) - 1;

/// Parses "ctx<digits>" back to the context id; 0 on anything else.
uint64_t ParseSpillName(const std::string& prefix) {
  if (prefix.size() <= 3 || prefix.compare(0, 3, "ctx") != 0) return 0;
  uint64_t id = 0;
  for (size_t i = 3; i < prefix.size(); ++i) {
    const char c = prefix[i];
    if (c < '0' || c > '9') return 0;
    id = id * 10 + static_cast<uint64_t>(c - '0');
  }
  return id;
}

}  // namespace

std::string TieredContextStore::SpillName(uint64_t id) {
  return "ctx" + std::to_string(id);
}

VectorFileSystem::Options TieredContextStore::MakeVfsOptions(
    const ModelConfig& model, const RoarGraphOptions& graph,
    const TierOptions& options) {
  VectorFileSystem::Options o;
  o.in_memory = options.spill_dir.empty();
  if (!o.in_memory) o.dir = options.spill_dir;
  // Spill-file geometry follows the model: rows are per-head key/value
  // vectors, adjacency fans out up to the graphs' build degree.
  o.file.dim = model.head_dim;
  o.file.max_degree = graph.max_degree;
  o.file.block_size = options.file_block_size;
  return o;
}

TieredContextStore::TieredContextStore(ContextStore* store, SimEnvironment* env,
                                       const ModelConfig& model,
                                       const RoarGraphOptions& graph,
                                       const TierOptions& options, ThreadPool* pool)
    : store_(store),
      env_(env),
      model_(model),
      graph_(graph),
      options_(options),
      pool_(pool),
      vfs_(MakeVfsOptions(model, graph, options)),
      serializer_(&vfs_),
      disk_reservation_(&env->disk_usage(), 0) {}

double TieredContextStore::DecayedHitsLocked(const Meta& m) const {
  if (options_.popularity_half_life <= 0 || m.hits == 0) return m.hits;
  const double elapsed = static_cast<double>(tick_ - m.hits_tick);
  return m.hits * std::exp2(-elapsed / options_.popularity_half_life);
}

void TieredContextStore::Touch(uint64_t id, bool hit) {
  std::lock_guard<std::mutex> lk(meta_mu_);
  Meta& m = meta_[id];
  m.last_touch = tick_++;
  if (hit) {
    // Fold the decay in before adding, then restamp: hits stays "weight as
    // of hits_tick" and old popularity fades with a half-life instead of
    // shielding a context forever.
    m.hits = DecayedHitsLocked(m) + 1.0;
    m.hits_tick = m.last_touch;
  }
}

void TieredContextStore::NotifyPublished(uint64_t id) {
  std::shared_ptr<Context> ctx = store_->FindShared(id);
  if (ctx == nullptr) return;
  {
    std::lock_guard<std::mutex> lk(meta_mu_);
    Meta& m = meta_[id];
    m.last_touch = tick_++;
    m.rebuild_seconds = ctx->build_stats().reported_seconds;
    m.kv_bytes = ctx->kv().DeployedBytes();
  }
  if (options_.durable) {
    // Write-through; a failed write stays un-persisted and is retried when
    // eviction actually needs this context on disk.
    (void)PersistOnce(id, *ctx);
  }
  // Drop our pin before enforcing: the freshly published context must be an
  // eviction candidate like any other (e.g. it alone exceeds the budget).
  ctx.reset();
  EnsureHeadroom(0);
}

void TieredContextStore::OnPrefixHit(uint64_t id) { Touch(id, /*hit=*/true); }

uint64_t TieredContextStore::PickVictim() {
  // Cost-aware LRU: evict the context with the highest
  //   age / ((1 + modeled rebuild seconds) * (1 + prefix hits))
  // — the longest-idle context, discounted by how expensive its indices were
  // to build and how popular its prefix is. Contexts pinned by running
  // sessions are never picked (their bytes would not free anyway).
  std::lock_guard<std::mutex> lk(meta_mu_);
  uint64_t victim = 0;
  double best = -1.0;
  for (uint64_t id : store_->Ids()) {
    std::shared_ptr<Context> ctx = store_->FindShared(id);
    if (ctx == nullptr) continue;  // Spilled already.
    // use_count: the store's map entry + our local copy = 2 when unpinned.
    if (ctx.use_count() > 2) continue;
    const auto it = meta_.find(id);
    const Meta m = it != meta_.end() ? it->second : Meta{};
    const double age = static_cast<double>(tick_ - m.last_touch);
    const double score =
        age / ((1.0 + m.rebuild_seconds) * (1.0 + DecayedHitsLocked(m)));
    if (score > best) {
      best = score;
      victim = id;
    }
  }
  return victim;
}

Status TieredContextStore::PersistOnce(uint64_t id, const Context& context) {
  {
    std::lock_guard<std::mutex> lk(meta_mu_);
    if (meta_[id].persisted) return Status::Ok();
  }
  std::lock_guard<std::mutex> io(IoMutexFor(id));
  {
    // Re-check: a racer may have persisted while we waited for the I/O lock.
    std::lock_guard<std::mutex> lk(meta_mu_);
    if (meta_[id].persisted) return Status::Ok();
  }
  ALAYA_RETURN_IF_ERROR(serializer_.Persist(context, SpillName(id),
                                            generation_.fetch_add(1)));
  const uint64_t disk_bytes = context.kv().DeployedBytes() + context.IndexBytes();
  {
    std::lock_guard<std::mutex> lk(meta_mu_);
    meta_[id].persisted = true;
    disk_reservation_.ResizeTo(disk_reservation_.bytes() + disk_bytes);
  }
  ++persisted_;
  return Status::Ok();
}

Status TieredContextStore::SpillContext(uint64_t id) {
  std::shared_ptr<Context> ctx = store_->FindShared(id);
  if (ctx == nullptr) {
    return store_->IsSpilled(id)
               ? Status::Ok()  // Already where a spill would put it.
               : Status::NotFound("no resident context to spill");
  }
  ALAYA_RETURN_IF_ERROR(PersistOnce(id, *ctx));
  // Detach AFTER the payload is safely on disk. Dropping the returned
  // reference (and ours) frees the host bytes — unless a running session
  // still pins the context, in which case they free when the pin drops.
  if (store_->DetachForSpill(id) != nullptr) ++spills_;
  return Status::Ok();
}

void TieredContextStore::EnsureHeadroom(uint64_t incoming_bytes) {
  if (options_.host_budget_bytes == 0) return;
  while (store_->TotalKvBytes() + incoming_bytes > options_.host_budget_bytes) {
    const uint64_t victim = PickVictim();
    if (victim == 0) {
      // Everything resident is pinned by running sessions (or the store is
      // empty): spilling would free nothing, so stop rather than spin.
      ++eviction_stalls_;
      return;
    }
    if (!SpillContext(victim).ok()) {
      ++eviction_stalls_;
      return;
    }
  }
}

Result<std::shared_ptr<Context>> TieredContextStore::PageIn(uint64_t id) {
  for (;;) {
    if (std::shared_ptr<Context> ctx = store_->FindShared(id)) {
      Touch(id, /*hit=*/false);
      return ctx;
    }
    if (!store_->IsSpilled(id)) {
      return Status::NotFound("context is neither resident nor spilled");
    }
    uint64_t incoming = 0;
    {
      std::unique_lock<std::mutex> lk(meta_mu_);
      if (page_ins_in_flight_.count(id) > 0) {
        // Another thread is loading this context; piggyback on its result.
        page_in_cv_.wait(lk, [&] { return page_ins_in_flight_.count(id) == 0; });
        continue;
      }
      page_ins_in_flight_.insert(id);
      incoming = meta_[id].kv_bytes;
    }
    // Budget first: the load is about to attach `incoming` host bytes, and
    // the tracker's peak must never cross the budget. The id being paged in
    // is spilled, so it cannot be chosen as its own victim.
    EnsureHeadroom(incoming);
    Result<std::unique_ptr<Context>> loaded = [&] {
      std::lock_guard<std::mutex> io(IoMutexFor(id));
      return serializer_.Load(SpillName(id), id, model_, graph_);
    }();
    std::shared_ptr<Context> restored;
    Status status = loaded.status();
    if (loaded.ok()) {
      restored = std::shared_ptr<Context>(std::move(loaded.value()));
      restored->AttachHostReservation(MemoryReservation(
          &env_->host_memory(), restored->kv().DeployedBytes()));
      status = store_->RestoreSpilled(id, restored);
      if (!status.ok()) restored.reset();  // Reservation frees with it.
    }
    {
      std::lock_guard<std::mutex> lk(meta_mu_);
      page_ins_in_flight_.erase(id);
    }
    page_in_cv_.notify_all();
    if (restored != nullptr) {
      ++page_ins_;
      Touch(id, /*hit=*/false);
      return restored;
    }
    // A racing Remove/restore may have resolved the id; surface whatever the
    // store holds now, otherwise the failure.
    if (std::shared_ptr<Context> ctx = store_->FindShared(id)) return ctx;
    ++page_in_failures_;
    return status;
  }
}

void TieredContextStore::PrefetchAsync(uint64_t id) {
  if (!store_->IsSpilled(id)) return;
  {
    std::lock_guard<std::mutex> lk(meta_mu_);
    if (page_ins_in_flight_.count(id) > 0) return;  // Already loading.
    ++pending_async_;
  }
  ++prefetches_;
  pool_->Submit([this, id] {
    (void)PageIn(id);
    {
      std::lock_guard<std::mutex> lk(meta_mu_);
      --pending_async_;
    }
    page_in_cv_.notify_all();
  });
}

TieredContextStore::~TieredContextStore() {
  // Prefetch jobs capture `this`; they must land before members die.
  std::unique_lock<std::mutex> lk(meta_mu_);
  page_in_cv_.wait(lk, [&] { return pending_async_ == 0; });
}

Status TieredContextStore::WarmStart() {
  Status first;
  uint64_t max_generation = 0;
  for (const std::string& name : vfs_.ListNames()) {
    if (name.size() <= kManifestSuffixLen ||
        name.compare(name.size() - kManifestSuffixLen, kManifestSuffixLen,
                     kManifestSuffix) != 0) {
      continue;
    }
    const std::string prefix = name.substr(0, name.size() - kManifestSuffixLen);
    const uint64_t id = ParseSpillName(prefix);
    if (id == 0) continue;  // Foreign file in the namespace; not ours.
    Result<ContextManifest> man = [&] {
      std::lock_guard<std::mutex> io(IoMutexFor(id));
      return serializer_.LoadManifest(prefix, model_);
    }();
    if (!man.ok()) {
      if (man.status().IsCorruption()) {
        // A torn manifest is the expected residue of a crash mid-persist,
        // not an operator error: skip it (the context was never committed)
        // and leave the status clean so intact neighbors still warm-start.
        ++warm_start_skipped_;
      } else if (first.ok()) {
        first = man.status();
      }
      continue;
    }
    const ContextManifest& m = man.value();
    max_generation = std::max(max_generation, m.generation);
    // Manifest only — tokens into the trie, payload stays on disk until a
    // prefix hit pages it in. Ids already live (warm start over a populated
    // store, or a repeat call) are left untouched.
    if (!store_
             ->AddSpilled(id, m.tokens, m.resident_device, m.kv_bytes,
                          m.index_bytes)
             .ok()) {
      continue;
    }
    {
      std::lock_guard<std::mutex> lk(meta_mu_);
      Meta& meta = meta_[id];
      meta.persisted = true;
      meta.rebuild_seconds = m.build_stats.reported_seconds;
      meta.kv_bytes = m.kv_bytes;
      meta.last_touch = tick_++;
      disk_reservation_.ResizeTo(disk_reservation_.bytes() + m.kv_bytes +
                                 m.index_bytes);
    }
    ++warm_started_;
  }
  // Re-persists after restart must stamp past everything already on disk.
  uint64_t next = generation_.load();
  while (next <= max_generation &&
         !generation_.compare_exchange_weak(next, max_generation + 1)) {
  }
  warm_start_status_ = first;
  return first;
}

TieredContextStore::Stats TieredContextStore::stats() const {
  Stats s;
  s.spills = spills_.load();
  s.page_ins = page_ins_.load();
  s.prefetches = prefetches_.load();
  s.persisted = persisted_.load();
  s.warm_started = warm_started_.load();
  s.warm_start_skipped = warm_start_skipped_.load();
  s.page_in_failures = page_in_failures_.load();
  s.eviction_stalls = eviction_stalls_.load();
  s.host_budget_bytes = options_.host_budget_bytes;
  s.resident_kv_bytes = store_->TotalKvBytes();
  s.resident_contexts = store_->resident();
  s.spilled_contexts = store_->spilled();
  return s;
}

}  // namespace alaya
