#include "src/core/session.h"

#include <algorithm>
#include <cmath>

#include "src/attention/attention_engine.h"
#include "src/common/timer.h"
#include "src/index/flat_index.h"
#include "src/index/graph_search.h"
#include "src/query/diprs.h"
#include "src/query/sharded_attention.h"

namespace alaya {

Session::Session(const ModelConfig& config, const SessionOptions& options,
                 Context* reused, size_t reused_prefix, SimEnvironment* env,
                 int device)
    : config_(config),
      options_(options),
      context_(reused),
      prefix_len_(reused != nullptr ? std::min(reused_prefix, reused->length()) : 0),
      env_(env != nullptr ? env : &SimEnvironment::Global()),
      device_(&env_->device(static_cast<size_t>(
          std::clamp<long>(device, 0, static_cast<long>(env_->num_devices()) - 1)))),
      local_(config),
      optimizer_(options.optimizer),
      window_(options.window),
      gpu_reservation_(&device_->memory(), 0) {}

Status Session::Update(uint32_t layer, const float* q, const float* k, const float* v) {
  return UpdateBatch(layer, 1, q, k, v);
}

Status Session::UpdateBatch(uint32_t layer, size_t count, const float* q,
                            const float* k, const float* v) {
  if (detached_) return Status::FailedPrecondition("session was detached for store");
  if (layer >= config_.num_layers) return Status::OutOfRange("layer out of range");
  if (k == nullptr || v == nullptr) return Status::InvalidArgument("null k/v");
  local_.AppendTokens(layer, count, k, v);

  if (options_.record_queries && q != nullptr) {
    if (recorded_ == nullptr) recorded_ = std::make_unique<QuerySamples>(config_);
    const size_t stride = static_cast<size_t>(config_.num_q_heads) * config_.head_dim;
    for (size_t t = 0; t < count; ++t) {
      if (recorded_->NumSamples(layer) >= options_.max_recorded_tokens) break;
      recorded_->Record(layer, q + t * stride);
    }
  }

  // Window + local KV are device-resident; refresh the reservation once per
  // token (when the last layer has been updated).
  if (layer + 1 == config_.num_layers) {
    RefreshDeviceReservations();
  }
  return Status::Ok();
}

size_t Session::TokensOnGpu() const {
  const size_t n_local = local_.NumTokens();
  const size_t n_total = prefix_len_ + n_local;
  // Window tokens drawn from the reused context plus the entire local tail
  // stay on device, per layer.
  const size_t window_from_context =
      std::min(window_.Size(n_total), n_total) > n_local
          ? window_.Size(n_total) - std::min(window_.Size(n_total), n_local)
          : 0;
  return window_from_context + n_local;
}

uint64_t Session::GpuResidentBytes() const {
  return static_cast<uint64_t>(TokensOnGpu()) * config_.KvBytesPerToken();
}

void Session::RefreshDeviceReservations() {
  if (gang_ == nullptr || gang_->size() <= 1) {
    gpu_reservation_.ResizeTo(GpuResidentBytes());
    return;
  }
  const std::vector<DeviceGang::Shard> shards = gang_->ShardMap(TokensOnGpu());
  for (size_t i = 0; i < shards.size(); ++i) {
    gang_reservations_[i].ResizeTo(static_cast<uint64_t>(shards[i].tokens()) *
                                   config_.KvBytesPerToken());
  }
}

Status Session::BindGang(std::shared_ptr<const DeviceGang> gang) {
  if (gang == nullptr || gang->size() <= 1) return Status::Ok();  // Degenerate: stay solo.
  if (detached_) return Status::FailedPrecondition("session was detached for store");
  if (local_.NumTokens() != 0) {
    return Status::FailedPrecondition("gang must bind before the session holds local KV");
  }
  if (gang->primary() != device_->id()) {
    return Status::InvalidArgument("gang primary must be the session's bound device");
  }
  gang_ = std::move(gang);
  gang_reservations_.clear();
  gang_reservations_.reserve(gang_->size());
  for (size_t i = 0; i < gang_->size(); ++i) {
    gang_reservations_.emplace_back(&gang_->member_device(i).memory(), 0);
  }
  gpu_reservation_.ResizeTo(0);
  return Status::Ok();
}

QueryContext Session::MakeQueryContext(uint32_t layer) const {
  QueryContext qc;
  qc.context_length = TotalTokens(layer);
  qc.partial_reuse = partial_reuse();
  qc.reused_prefix_len =
      qc.partial_reuse ? static_cast<uint32_t>(prefix_len_) : UINT32_MAX;
  qc.gpu_budget_bytes = options_.gpu_budget_bytes;
  qc.layer_id = static_cast<int>(layer);
  return qc;
}

Status Session::Attention(uint32_t layer, const float* q, float* out,
                          AttentionCallStats* stats) {
  if (layer >= config_.num_layers) return Status::OutOfRange("layer out of range");
  if (q == nullptr || out == nullptr) return Status::InvalidArgument("null q/out");
  AttentionCallStats total;
  for (uint32_t h = 0; h < config_.num_q_heads; ++h) {
    AttentionCallStats head_stats;
    const size_t off = static_cast<size_t>(h) * config_.head_dim;
    ALAYA_RETURN_IF_ERROR(AttendHead(layer, h, q + off, out + off, &head_stats));
    total.Add(head_stats);
    total.plan_explain = head_stats.plan_explain;
  }
  ChargeModeledGpuSeconds(total.modeled_gpu_seconds);
  if (stats != nullptr) *stats = total;
  return Status::Ok();
}

void Session::ChargeModeledGpuSeconds(double seconds) {
  if (gang_ == nullptr || gang_->size() <= 1) {
    device_->clock().Advance(seconds);
    return;
  }
  // Context parallelism: each member runs the kernels over its own shard, so
  // the modeled time splits by resident-token share (the shard map is block-
  // quantized, so shares are exact block counts, not estimates).
  const size_t n = TokensOnGpu();
  const std::vector<DeviceGang::Shard> shards = gang_->ShardMap(n);
  bool charged = false;
  for (const DeviceGang::Shard& s : shards) {
    if (s.tokens() == 0) continue;
    charged = true;
    gang_->member_device(s.member).clock().Advance(
        seconds * (static_cast<double>(s.tokens()) / static_cast<double>(n)));
  }
  if (!charged) device_->clock().Advance(seconds);  // Nothing resident yet.
  // One ring rotation per charge: every member forwards its partial-softmax
  // triples for all query heads to its ring successor on the interconnect.
  const uint64_t ring_bytes =
      DeviceGang::RingExchangeBytes(config_.num_q_heads, config_.head_dim);
  for (size_t i = 0; i < gang_->size(); ++i) {
    Device& dev = gang_->member_device(i);
    dev.clock().Advance(dev.cost_model().TransferSeconds(ring_bytes));
  }
  gang_ring_bytes_ += ring_bytes * gang_->size();
}

Session::DetachedState Session::DetachForStore() {
  DetachedState out{std::move(local_), std::move(recorded_), prefix_len_, context_};
  detached_ = true;
  // Leave the session in a valid (but dead) state: an empty local cache, no
  // recorded queries, and no device residency — retiring IS the offload.
  local_ = KvCache(config_);
  recorded_.reset();
  gpu_reservation_.ResizeTo(0);
  for (MemoryReservation& r : gang_reservations_) r.ResizeTo(0);
  return out;
}

Session::SuspendedState Session::DetachForSuspend() {
  const uint64_t bytes = GpuResidentBytes();  // Before the detach zeroes it.
  return SuspendedState{DetachForStore(), bytes};
}

Status Session::AttachFromSuspend(SuspendedState&& state) {
  if (detached_) {
    return Status::FailedPrecondition("cannot attach onto a detached session");
  }
  if (local_.NumTokens() != 0) {
    return Status::FailedPrecondition("cannot attach onto a session with local KV");
  }
  if (state.base.reused_prefix != prefix_len_) {
    // The resume path must rebind the exact prefix the suspended session saw;
    // a different (e.g. freshly re-matched, longer) prefix would shift every
    // local token's absolute position and corrupt attention.
    return Status::InvalidArgument("suspended state prefix mismatch");
  }
  local_ = std::move(state.base.local_kv);
  recorded_ = std::move(state.base.recorded);
  RefreshDeviceReservations();
  return Status::Ok();
}

Status Session::AttendHead(uint32_t layer, uint32_t q_head, const float* qh,
                           float* out_h, AttentionCallStats* stats) {
  if (detached_) return Status::FailedPrecondition("session was detached for store");
  const uint32_t kv_head = config_.KvHeadForQuery(q_head);
  const size_t d = config_.head_dim;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  const size_t n_local = local_.NumTokens(layer);
  const size_t n_total = prefix_len_ + n_local;

  VectorSetView ctx_keys, ctx_vals;
  if (context_ != nullptr && prefix_len_ > 0) {
    ctx_keys = context_->kv().Keys(layer, kv_head);
    ctx_vals = context_->kv().Values(layer, kv_head);
  }
  VectorSetView loc_keys = local_.Keys(layer, kv_head);
  VectorSetView loc_vals = local_.Values(layer, kv_head);

  const QueryPlan plan = optimizer_.Plan(MakeQueryContext(layer));
  stats->plan_explain = plan.Explain();

  PartialAttention state(d);

  if (plan.query == QueryClass::kFullAttention) {
    WallTimer t;
    if (prefix_len_ > 0) {
      KvPartition ctx_part{ctx_keys, ctx_vals, {}, 0,
                           static_cast<uint32_t>(prefix_len_)};
      stats->attended_tokens += AccumulatePartition(qh, ctx_part, scale, &state);
    }
    if (n_local > 0) {
      KvPartition loc_part{loc_keys, loc_vals, {}, 0, static_cast<uint32_t>(n_local)};
      stats->attended_tokens += AccumulatePartition(qh, loc_part, scale, &state);
    }
    state.Finalize(out_h);
    stats->attention_seconds += t.ElapsedSeconds();
    // In the deployed system full attention runs on GPU.
    stats->modeled_gpu_seconds +=
        device_->cost_model().GpuAttentionSeconds(4.0 * static_cast<double>(n_total) * d);
    return Status::Ok();
  }

  // --- Sparse path: window ids over the combined [context | local] space. ---
  // Local tokens are all attended (late materialization keeps them in the
  // device window); context window ids are the initial tokens plus whatever
  // part of the recent window reaches back into the reused prefix.
  std::vector<uint32_t> ctx_window_ids;
  const uint32_t init_end = static_cast<uint32_t>(
      std::min<size_t>(prefix_len_, window_.config().initial_tokens));
  for (uint32_t i = 0; i < init_end; ++i) ctx_window_ids.push_back(i);
  const size_t recent = window_.config().recent_tokens;
  if (recent > n_local && prefix_len_ > 0) {
    const size_t reach = recent - n_local;  // Recent tokens inside the prefix.
    const uint32_t lo = static_cast<uint32_t>(prefix_len_ > reach ? prefix_len_ - reach : 0);
    for (uint32_t i = std::max(lo, init_end); i < prefix_len_; ++i) {
      ctx_window_ids.push_back(i);
    }
  }

  // Window-enhanced DIPRS prior (§7.1): best inner product over device-resident
  // tokens (context window + local tail).
  float prior = -1e30f;
  WallTimer search_timer;
  if (options_.use_window_dipr_hint) {
    for (uint32_t id : ctx_window_ids) {
      prior = std::max(prior, Dot(qh, ctx_keys.Vec(id), d));
    }
    for (uint32_t i = 0; i < n_local; ++i) {
      prior = std::max(prior, Dot(qh, loc_keys.Vec(i), d));
    }
    stats->search.dist_comps += ctx_window_ids.size() + n_local;
  }

  // --- Retrieval over the reused context. ---
  SearchResult retrieved;
  if (prefix_len_ > 0) {
    IdFilter filter = plan.filter;
    switch (plan.index) {
      case IndexClass::kCoarse: {
        const CoarseIndex* coarse = context_->CoarseIdx(layer, kv_head);
        if (coarse != nullptr) {
          ALAYA_RETURN_IF_ERROR(
              coarse->SearchTopKFiltered(qh, plan.topk, filter, &retrieved));
          break;
        }
        [[fallthrough]];  // No coarse index built: degrade to fine/flat.
      }
      case IndexClass::kFine: {
        const RoarGraph* fine = context_->FineIndex(layer, q_head);
        if (fine != nullptr && fine->built()) {
          DiprsHints hints;
          if (options_.use_window_dipr_hint) hints.prior_best_ip = prior;
          if (plan.query == QueryClass::kDipr) {
            retrieved = filter.enabled()
                            ? DiprsSearchFiltered(fine->graph(), fine->scoring(),
                                                  fine->EntryPoint(qh), qh, plan.dipr,
                                                  filter, hints)
                            : DiprsSearch(fine->graph(), fine->scoring(),
                                          fine->EntryPoint(qh), qh, plan.dipr, hints);
          } else {
            ALAYA_RETURN_IF_ERROR(
                fine->SearchTopKFiltered(qh, plan.topk, filter, &retrieved));
          }
          break;
        }
        [[fallthrough]];  // No fine index: degrade to flat scan.
      }
      case IndexClass::kFlat: {
        FlatIndex flat(ctx_keys);
        if (plan.query == QueryClass::kDipr) {
          ALAYA_RETURN_IF_ERROR(
              flat.SearchDiprFiltered(qh, plan.dipr, filter, &retrieved));
        } else {
          ALAYA_RETURN_IF_ERROR(
              flat.SearchTopKFiltered(qh, plan.topk, filter, &retrieved));
        }
        break;
      }
    }
  }
  stats->search_seconds += search_timer.ElapsedSeconds();
  stats->search += retrieved.stats;
  stats->retrieved_tokens += retrieved.hits.size();

  // --- Data-centric partial attention (§7.2). ---
  WallTimer attn_timer;
  // Partition 1 (CPU, where the offloaded context lives): retrieved critical
  // tokens minus those already in the device window.
  std::vector<uint32_t> cpu_ids;
  cpu_ids.reserve(retrieved.hits.size());
  for (const ScoredId& hit : retrieved.hits) {
    const bool in_window =
        hit.id < init_end ||
        (recent > n_local && hit.id >= prefix_len_ - std::min(prefix_len_,
                                                              recent - n_local));
    if (!in_window) cpu_ids.push_back(hit.id);
  }
  PartialAttention cpu_state(d);
  if (!cpu_ids.empty()) {
    KvPartition part{ctx_keys, ctx_vals, cpu_ids, 0, 0};
    stats->attended_tokens += AccumulatePartition(qh, part, scale, &cpu_state);
  }

  // Partition 2 (GPU): context window tokens + the local tail, accumulated as
  // the canonical block fold — per-kShardBlockTokens partials merged in
  // ascending order. Gang members own whole blocks, so a gang-of-N computes
  // this exact float sequence distributed and the result stays bit-identical.
  PartialAttention gpu_state(d);
  stats->attended_tokens += AccumulateDeviceBlocks(
      qh, scale, ctx_keys, ctx_vals, loc_keys, loc_vals, ctx_window_ids, n_local,
      &gpu_state);
  const size_t gpu_tokens = ctx_window_ids.size() + n_local;
  stats->modeled_gpu_seconds +=
      device_->cost_model().GpuAttentionSeconds(4.0 * static_cast<double>(gpu_tokens) * d);

  if (options_.data_centric) {
    // Only the (max, sum, acc) triple crosses PCIe: d + 2 floats.
    stats->modeled_gpu_seconds +=
        device_->cost_model().TransferSeconds((d + 2) * sizeof(float));
  } else {
    // Gather-then-compute ablation: ship retrieved K+V to the device first.
    const uint64_t gather_bytes = static_cast<uint64_t>(cpu_ids.size()) * 2 * d *
                                  config_.bytes_per_scalar;
    stats->modeled_gpu_seconds += device_->cost_model().TransferSeconds(gather_bytes);
    stats->modeled_gpu_seconds += device_->cost_model().GpuAttentionSeconds(
        4.0 * static_cast<double>(cpu_ids.size()) * d);
  }

  state.Merge(gpu_state);
  state.Merge(cpu_state);
  state.Finalize(out_h);
  stats->attention_seconds += attn_timer.ElapsedSeconds();
  return Status::Ok();
}

}  // namespace alaya
