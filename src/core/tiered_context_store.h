// Tiered context store (host → disk lifecycle): the policy layer that keeps
// ContextStore under a host-byte budget by spilling cold contexts to the
// vector file system (§7.3) and demand-paging them back on prefix hits.
//
// Division of labor: ContextStore owns the residency *mechanism* (spilled
// placeholders that keep winning prefix matches, atomic detach/restore,
// incremental byte totals); this layer owns the *policy* — who to evict
// (LRU × modeled rebuild cost × prefix popularity), when (budget headroom
// before a new context lands, never on the decode path), and where the bytes
// go (ContextSerializer onto a VectorFileSystem, in-memory for tests or a
// real directory for durability). It also gives AlayaDB restart semantics:
// WarmStart() enumerates the manifest namespace and re-registers every
// persisted context as a spilled placeholder, so a fresh process serves
// stored prefixes immediately and pays the KV load only on first use.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "src/common/thread_pool.h"
#include "src/core/context_serializer.h"
#include "src/core/context_store.h"
#include "src/device/device.h"

namespace alaya {

/// Tiering knobs (DbOptions::tier). Tiering engages when any knob is set;
/// the all-defaults struct keeps the DB byte-identical to the untired one.
struct TierOptions {
  /// Host budget over store-resident KV bytes. Publishing past it evicts the
  /// coldest contexts first (spill to disk); 0 = unbounded, never evict.
  uint64_t host_budget_bytes = 0;
  /// Directory for the spill files. Empty = in-memory backing (tests; dies
  /// with the process), non-empty = POSIX files that survive restarts.
  std::string spill_dir;
  /// Write-through: persist every context when it publishes, not only when
  /// it is evicted — an engine kill then loses no stored context.
  bool durable = false;
  /// Enumerate the manifest namespace at DB open and register every persisted
  /// context as a spilled placeholder (restart semantics).
  bool warm_start = false;
  /// Block size of the spill files (and their shared buffer pool).
  uint32_t file_block_size = 4096;
  /// Half-life (in virtual-time ticks — one tick per store touch) of the
  /// eviction score's popularity term: a context's accumulated prefix-hit
  /// weight halves every this-many touches it goes without one, so a
  /// formerly-hot context loses to a currently-hot one instead of being
  /// immortalized by hits since boot. 0 disables decay (the legacy
  /// count-forever behavior).
  double popularity_half_life = 512;

  bool Enabled() const {
    return host_budget_bytes > 0 || durable || warm_start || !spill_dir.empty();
  }
};

class TieredContextStore {
 public:
  /// Lifetime counters (all monotone) plus a residency snapshot.
  struct Stats {
    uint64_t spills = 0;     ///< Contexts detached to disk.
    uint64_t page_ins = 0;   ///< Spilled contexts made resident again.
    uint64_t prefetches = 0; ///< Page-ins requested off the decode path.
    uint64_t persisted = 0;  ///< Contexts written through the serializer.
    uint64_t warm_started = 0;       ///< Placeholders registered by WarmStart.
    uint64_t warm_start_skipped = 0; ///< Torn/corrupt manifests skipped at boot.
    uint64_t page_in_failures = 0;
    uint64_t eviction_stalls = 0;  ///< Budget exceeded but every context pinned.
    uint64_t host_budget_bytes = 0;
    uint64_t resident_kv_bytes = 0;
    size_t resident_contexts = 0;
    size_t spilled_contexts = 0;
  };

  /// `store`, `env` and `pool` must outlive this object. `graph` restores
  /// fine indices with the same options they were built with; spill-file
  /// geometry derives from `model` (rows are head_dim floats wide).
  TieredContextStore(ContextStore* store, SimEnvironment* env,
                     const ModelConfig& model, const RoarGraphOptions& graph,
                     const TierOptions& options, ThreadPool* pool);
  /// Blocks until every in-flight prefetch has landed (they capture `this`).
  ~TieredContextStore();

  TieredContextStore(const TieredContextStore&) = delete;
  TieredContextStore& operator=(const TieredContextStore&) = delete;

  /// Restart semantics: scans the VFS for "ctx<id>_manifest" files and
  /// registers each as a spilled placeholder (tokens into the trie, payload
  /// stays on disk until a prefix hit pages it in). A torn or corrupt
  /// manifest (bad trailer/checksum — the expected residue of a crash
  /// mid-persist) is silently skipped and counted in warm_start_skipped;
  /// other per-manifest failures are skipped too but the first is returned.
  /// Ids already live in the store are left alone. Idempotent.
  Status WarmStart();

  /// A context became visible in the store (Add or Publish): starts its
  /// recency/popularity tracking, write-through-persists it when durable,
  /// then enforces the budget. Runs on the publishing thread — the
  /// materialize pool for StoreAsync, the caller for Import/Store.
  void NotifyPublished(uint64_t id);

  /// A prefix match chose this context (CreateSession): bumps its popularity
  /// and recency — the signals the eviction score protects hot prefixes with.
  void OnPrefixHit(uint64_t id);

  /// Makes room for `incoming_bytes` of new resident KV BEFORE they are
  /// attached: evicts coldest-first until resident + incoming fits the
  /// budget, so the host tracker's PEAK (not just its settle point) stays
  /// under budget. Best-effort — when everything evictable is pinned by
  /// running sessions it stops (eviction_stalls) rather than deadlock.
  void EnsureHeadroom(uint64_t incoming_bytes);

  /// Spills one published context now (policy bypass; eviction and tests).
  /// Persists it first unless already on disk, then detaches the resident
  /// payload — host bytes free when the last session pin drops.
  Status SpillContext(uint64_t id);

  /// Demand page-in: loads a spilled context from disk, re-attaches it to
  /// the store and returns it pinned. Resident ids return immediately;
  /// concurrent page-ins of the same id coalesce into one load. Fails with
  /// NotFound for unknown ids and the serializer's error on a bad read.
  Result<std::shared_ptr<Context>> PageIn(uint64_t id);

  /// Schedules PageIn(id) on the worker pool (admission-time prefetch: the
  /// scheduler probe sees `spilled` and warms the context before the session
  /// is created). Duplicate requests for an id already resident or already
  /// loading are dropped.
  void PrefetchAsync(uint64_t id);

  Stats stats() const;
  const Status& warm_start_status() const { return warm_start_status_; }
  VectorFileSystem& vfs() { return vfs_; }
  const TierOptions& options() const { return options_; }

  /// The VFS namespace prefix for a context id ("ctx42").
  static std::string SpillName(uint64_t id);

 private:
  /// Per-context policy state. `kv_bytes` mirrors the payload size so
  /// headroom checks know what a page-in will cost before loading it.
  struct Meta {
    uint64_t last_touch = 0;
    /// Exponentially decayed prefix-hit weight as of virtual time `hits_tick`
    /// (half-life TierOptions::popularity_half_life). Read it through
    /// DecayedHitsLocked — the raw value is stale by (tick_ - hits_tick).
    double hits = 0;
    uint64_t hits_tick = 0;
    double rebuild_seconds = 0;  ///< Modeled index build cost (build_stats).
    uint64_t kv_bytes = 0;
    bool persisted = false;  ///< On disk already; spill skips the write.
  };

  void Touch(uint64_t id, bool hit);
  /// `m.hits` discounted from `m.hits_tick` to now (tick_). meta_mu_ held.
  double DecayedHitsLocked(const Meta& m) const;
  /// Highest eviction score among resident, unpinned contexts; 0 when none.
  uint64_t PickVictim();
  /// Persists `context` under SpillName(id) once (serialized on the id's io
  /// shard, stamped with the next generation) and grows the disk-tier
  /// reservation. No-op if already persisted.
  Status PersistOnce(uint64_t id, const Context& context);

  static VectorFileSystem::Options MakeVfsOptions(const ModelConfig& model,
                                                  const RoarGraphOptions& graph,
                                                  const TierOptions& options);

  ContextStore* store_;
  SimEnvironment* env_;
  ModelConfig model_;
  RoarGraphOptions graph_;
  TierOptions options_;
  ThreadPool* pool_;
  VectorFileSystem vfs_;
  ContextSerializer serializer_;
  Status warm_start_status_;

  /// Serializes Persist/Load I/O *per context id* (16-way sharded): distinct
  /// contexts stream through distinct VectorFiles and the internally locked
  /// buffer pool, so they may overlap; two operations on the SAME id (e.g. a
  /// demand page-in racing a warm-start load, or a durable re-persist) must
  /// not interleave their multi-file sequences. Never held with meta_mu_.
  static constexpr size_t kIoShards = 16;
  std::array<std::mutex, kIoShards> io_shards_;
  std::mutex& IoMutexFor(uint64_t id) { return io_shards_[id % kIoShards]; }

  mutable std::mutex meta_mu_;
  std::condition_variable page_in_cv_;
  std::map<uint64_t, Meta> meta_;
  std::set<uint64_t> page_ins_in_flight_;
  size_t pending_async_ = 0;  ///< Prefetch jobs queued or running on pool_.
  uint64_t tick_ = 1;  ///< Logical recency clock (bumped per touch).
  MemoryReservation disk_reservation_;  ///< Disk-tier bytes of persisted contexts.
  /// Next manifest generation stamp; WarmStart re-seeds it past the highest
  /// generation found on disk so re-persists after restart stay monotone.
  std::atomic<uint64_t> generation_{1};

  std::atomic<uint64_t> spills_{0};
  std::atomic<uint64_t> page_ins_{0};
  std::atomic<uint64_t> prefetches_{0};
  std::atomic<uint64_t> persisted_{0};
  std::atomic<uint64_t> warm_started_{0};
  std::atomic<uint64_t> warm_start_skipped_{0};
  std::atomic<uint64_t> page_in_failures_{0};
  std::atomic<uint64_t> eviction_stalls_{0};
};

}  // namespace alaya
