// Batched prefill execution for multi-session serving — the companion of
// batched_diprs.h for the *prompt* side of a request.
//
// A request whose prompt extends past every stored context must push the
// unmatched suffix through the model before it can decode: per prompt token
// and layer, the session's KV cache grows by one entry and the query vector is
// recorded for index training (RoarGraph is query-trained, §7.2). Distinct
// sessions' prefill chunks are fully independent — of each other AND of every
// decoding session — so the serving engine batches all prefilling sessions'
// current chunks onto the shared ThreadPool (the same cross-session
// flattening batched_diprs applies to decode-step retrievals), overlapping
// them with the decode layer loop on mixed steps.
//
// Within one job the layers run sequentially (Session::UpdateBatch is
// exclusive per session), so a job is race-free without any session locking;
// parallelism comes from batching jobs of different sessions.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/session.h"

namespace alaya {

/// Fills one prompt token's QKV for one layer. `token` is the token's absolute
/// position in the request prompt (so the values are independent of how much
/// prefix was reused); q is [num_q_heads * head_dim], k and v are
/// [num_kv_heads * head_dim]. Must be deterministic in (token, layer) — the
/// serving engine's bit-identical concurrent-vs-sequential guarantee extends
/// to prefill only under this contract.
using PrefillFillFn =
    std::function<void(size_t token, uint32_t layer, float* q, float* k, float* v)>;

/// One session's prefill chunk: `count` prompt tokens starting at absolute
/// position `first_token`, pushed through every layer via UpdateBatch.
/// The scratch buffers are caller-owned, reused layer by layer, and must hold
/// `count * num_q_heads * head_dim` (q) resp. `count * num_kv_heads * head_dim`
/// (k, v) floats. One job per session per batch: a session must never appear
/// in two jobs of the same batch (UpdateBatch is not self-concurrent).
struct SessionPrefillJob {
  Session* session = nullptr;
  size_t first_token = 0;
  size_t count = 0;
  PrefillFillFn fill;
  float* q_scratch = nullptr;
  float* k_scratch = nullptr;
  float* v_scratch = nullptr;
};

/// Runs one job on the calling thread: for each layer, fills the chunk's QKV
/// token-major into the scratch buffers and appends it with one UpdateBatch.
/// The serving engine submits one of these per prefilling session to the
/// shared pool, overlapping them with its decode layer loop.
Status RunPrefillJob(const SessionPrefillJob& job);

/// Executes every job on `pool` (nullptr -> ThreadPool::Global()), one task
/// per session chunk. Always drains the whole batch. With `per_job` set, each
/// job's Status lands at the matching index and the call returns Ok — callers
/// isolate failures per session. Without it, returns the first error.
Status ExecutePrefillJobs(std::span<SessionPrefillJob> jobs, ThreadPool* pool = nullptr,
                          std::vector<Status>* per_job = nullptr);

/// Dynamic join for in-flight prefill chunks. Unlike a std::latch — whose
/// count is fixed at construction, forcing the serving engine to freeze the
/// set of prefilling sessions at the top of a step — a wave accepts Launch()
/// at any point while earlier chunks are still running. That is what makes
/// mid-step admission possible: a session admitted between decode layers gets
/// its first chunk launched into the *current* step's wave, and the step only
/// joins once at the end, right before accounting.
///
/// `*status` must outlive the wave (the serving engine points it at the
/// owning session state, which is stable for the duration of a step). A wave
/// must be drained (Wait / WaitFor true) before destruction.
class PrefillWave {
 public:
  PrefillWave() = default;
  PrefillWave(const PrefillWave&) = delete;
  PrefillWave& operator=(const PrefillWave&) = delete;
  ~PrefillWave();

  /// Runs `job` asynchronously on `pool` (nullptr -> ThreadPool::Global());
  /// the job's Status lands in `*status` before the wave counts it done.
  /// The job struct is copied; its scratch buffers stay caller-owned.
  void Launch(const SessionPrefillJob& job, Status* status, ThreadPool* pool = nullptr);

  /// Blocks until every launched chunk has completed.
  void Wait();

  /// Waits up to `timeout` for the wave to drain; returns true when no chunk
  /// is outstanding. The serving engine polls this on prefill-only steps so
  /// it can admit newly queued requests while chunks are still in flight.
  bool WaitFor(std::chrono::microseconds timeout);

  /// Chunks launched over the wave's lifetime (driver thread only).
  size_t launched() const { return launched_; }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t outstanding_ = 0;
  size_t launched_ = 0;
};

}  // namespace alaya
