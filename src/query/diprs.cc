#include "src/query/diprs.h"

#include <algorithm>
#include <deque>

namespace alaya {

namespace {

/// tryAppend (Algorithm 1, lines 10-14) shared state.
struct DiprsState {
  std::vector<ScoredId> c;  ///< Unordered candidate list C (insertion order).
  float best_ip;            ///< Max inner product over C and the window prior.
  float beta;
  size_t l0;
  size_t max_explored = 0;  ///< Strict cap on |C| (0 = unbounded).
  SearchStats stats;
};

inline void TryAppend(uint32_t id, float ip, DiprsState* st) {
  if (st->max_explored > 0 && st->c.size() >= st->max_explored) {
    if (ip > st->best_ip) st->best_ip = ip;
    return;
  }
  // Line 13: append while below the capacity floor, or when within beta of
  // the best-so-far inner product.
  if (st->c.size() <= st->l0 || ip >= st->best_ip - st->beta) {
    st->c.push_back({id, ip});
    st->stats.appended++;
    if (ip > st->best_ip) st->best_ip = ip;
  }
}

SearchResult Finalize(DiprsState* st, const DiprParams& params,
                      const ScoringView& view, const float* q) {
  SearchResult out;
  out.stats = st->stats;
  const float threshold = st->best_ip - params.beta;
  for (const ScoredId& c : st->c) {
    if (c.score >= threshold) out.hits.push_back(c);
  }
  SortByScoreDesc(&out.hits);
  if (params.max_tokens > 0 && out.hits.size() > params.max_tokens) {
    out.hits.resize(params.max_tokens);
  }
  // Coded views: re-score the head of the critical set against exact fp32 so
  // the attention weights downstream see exact inner products for the tokens
  // that dominate the softmax.
  out.stats.dist_comps += RerankTopHits(view, q, &out.hits);
  return out;
}

}  // namespace

SearchResult DiprsSearch(const AdjacencyGraph& graph, const ScoringView& vectors,
                         uint32_t entry, const float* q, const DiprParams& params,
                         const DiprsHints& hints, VisitedSet* visited) {
  SearchResult empty;
  if (graph.size() == 0) return empty;

  VisitedSet local;
  if (visited == nullptr) visited = &local;
  visited->Resize(graph.size());
  visited->Reset();

  DiprsState st;
  st.beta = params.beta;
  st.l0 = params.l0;
  st.max_explored = hints.max_explored;
  st.best_ip = hints.prior_best_ip;

  const QueryScorer scorer(vectors, q);

  // Line 1: initialize C with the start key.
  visited->Visit(entry);
  const float entry_ip = scorer.Score(entry);
  st.stats.dist_comps++;
  st.c.push_back({entry, entry_ip});
  if (entry_ip > st.best_ip) st.best_ip = entry_ip;

  // Lines 3-7: sweep C in insertion order; C grows during the sweep.
  for (size_t i = 0; i < st.c.size(); ++i) {
    if (hints.max_explored > 0 && st.c.size() >= hints.max_explored) break;
    const uint32_t u = st.c[i].id;
    st.stats.hops++;
    for (uint32_t v : graph.Neighbors(u)) {
      if (!visited->Visit(v)) continue;
      const float ip = scorer.Score(v);
      st.stats.dist_comps++;
      TryAppend(v, ip, &st);
    }
  }

  // Lines 8-9: keep candidates within beta of the best inner product found.
  return Finalize(&st, params, vectors, q);
}

SearchResult DiprsSearchFiltered(const AdjacencyGraph& graph,
                                 const ScoringView& vectors,
                                 uint32_t entry, const float* q,
                                 const DiprParams& params, const IdFilter& filter,
                                 const DiprsHints& hints, VisitedSet* visited) {
  if (!filter.enabled()) {
    return DiprsSearch(graph, vectors, entry, q, params, hints, visited);
  }
  SearchResult empty;
  if (graph.size() == 0) return empty;

  VisitedSet local;
  if (visited == nullptr) visited = &local;
  visited->Resize(graph.size());
  visited->Reset();

  DiprsState st;
  st.beta = params.beta;
  st.l0 = params.l0;
  st.max_explored = hints.max_explored;
  st.best_ip = hints.prior_best_ip;

  const QueryScorer scorer(vectors, q);

  // Seed C with passing nodes. If the entry fails the predicate, BFS through
  // the graph (bounded) until a few passing seeds are found.
  visited->Visit(entry);
  if (filter.Pass(entry)) {
    const float ip = scorer.Score(entry);
    st.stats.dist_comps++;
    st.c.push_back({entry, ip});
    if (ip > st.best_ip) st.best_ip = ip;
  } else {
    std::deque<uint32_t> bfs{entry};
    const size_t kSeedTarget = 4;
    const size_t kBfsBudget = 4096;
    size_t popped = 0;
    while (!bfs.empty() && st.c.size() < kSeedTarget && popped < kBfsBudget) {
      const uint32_t u = bfs.front();
      bfs.pop_front();
      ++popped;
      for (uint32_t v : graph.Neighbors(u)) {
        if (!visited->Visit(v)) continue;
        if (filter.Pass(v)) {
          const float ip = scorer.Score(v);
          st.stats.dist_comps++;
          st.c.push_back({v, ip});
          if (ip > st.best_ip) st.best_ip = ip;
        } else {
          bfs.push_back(v);
        }
      }
    }
    if (st.c.empty()) return empty;  // Predicate selects nothing reachable.
  }

  // Main sweep with bridged expansion through filtered-out nodes (§7.1,
  // after ACORN [49]): a neighbor v failing the predicate becomes a "bridge"
  // whose own neighborhood is inspected, breadth-first with a bounded drain
  // per candidate, so connectivity survives even low-selectivity predicates
  // (e.g. a 20% reuse ratio) without scanning the whole graph.
  std::deque<uint32_t> bridges;
  const size_t kBridgeDrainPerHop = 48;
  for (size_t i = 0; i < st.c.size(); ++i) {
    if (hints.max_explored > 0 && st.c.size() >= hints.max_explored) break;
    const uint32_t u = st.c[i].id;
    st.stats.hops++;
    for (uint32_t v : graph.Neighbors(u)) {
      if (!visited->Visit(v)) continue;
      if (filter.Pass(v)) {
        const float ip = scorer.Score(v);
        st.stats.dist_comps++;
        TryAppend(v, ip, &st);
      } else {
        bridges.push_back(v);
      }
    }
    size_t drained = 0;
    while (!bridges.empty() && drained < kBridgeDrainPerHop) {
      const uint32_t b = bridges.front();
      bridges.pop_front();
      ++drained;
      st.stats.hops++;
      for (uint32_t w : graph.Neighbors(b)) {
        if (!visited->Visit(w)) continue;
        if (filter.Pass(w)) {
          const float ip = scorer.Score(w);
          st.stats.dist_comps++;
          TryAppend(w, ip, &st);
        } else {
          bridges.push_back(w);
        }
      }
    }
  }

  return Finalize(&st, params, vectors, q);
}

}  // namespace alaya
