// DIPRS: approximate processing of the Dynamic Inner-Product Range query
// (paper §6.1.3, Algorithm 1).
//
// DIPR(q, beta) returns every key whose inner product with q is within beta of
// the maximum (Definition 3) — the number of returned critical tokens is
// dynamic, adapting per head and per task (Observations I & II). DIPRS walks a
// graph index with an unordered variable-capacity candidate list:
//   (i)  below capacity threshold l0, explore unconditionally (escape local
//        maxima quickly);
//   (ii) beyond l0, append only candidates within beta of the best-so-far
//        inner product (prune non-critical explorations).
#pragma once

#include <limits>

#include "src/common/vector_codec.h"
#include "src/common/visited_set.h"
#include "src/index/graph_common.h"
#include "src/index/index.h"

namespace alaya {

/// Optional accelerators for DIPRS.
struct DiprsHints {
  /// Window-caching enhancement (§7.1): best inner product among the cached
  /// initial+last window tokens, which holds the global maximum ~98% of the
  /// time; seeding the threshold with it prunes exploration immediately.
  float prior_best_ip = -std::numeric_limits<float>::infinity();
  /// Safety cap on candidate-list growth (0 = unbounded).
  size_t max_explored = 0;
};

/// Algorithm 1. Returns the critical token set c_K, best-first.
///
/// `vectors` is a ScoringView: a bare VectorSetView scores exactly on fp32
/// (every historical call site); attaching a CodedVectorSet traverses on the
/// quantized codes and re-scores the top rerank_k survivors against fp32.
SearchResult DiprsSearch(const AdjacencyGraph& graph, const ScoringView& vectors,
                         uint32_t entry, const float* q, const DiprParams& params,
                         const DiprsHints& hints = DiprsHints{},
                         VisitedSet* visited = nullptr);

/// Attribute-filtered DIPRS for partial context reuse (§7.1): only tokens
/// passing `filter` are candidates; traversal additionally inspects 2-hop
/// neighbors through filtered-out nodes (ACORN-style) so graph connectivity
/// survives the predicate.
SearchResult DiprsSearchFiltered(const AdjacencyGraph& graph,
                                 const ScoringView& vectors,
                                 uint32_t entry, const float* q,
                                 const DiprParams& params, const IdFilter& filter,
                                 const DiprsHints& hints = DiprsHints{},
                                 VisitedSet* visited = nullptr);

}  // namespace alaya
