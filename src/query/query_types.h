// Query classes supported by the query processing engine (Fig. 3, §6.2).
//
// Both query types and index types are extensible registries: the optimizer
// consults SupportMatrix() (Table 4) instead of hard-coding pairs, so new
// query/index classes can be slotted in.
#pragma once

#include <string>

#include "src/index/index.h"

namespace alaya {

/// How critical tokens are retrieved for sparse attention.
enum class QueryClass : int {
  kFullAttention = 0,  ///< No retrieval; attend to everything (short contexts).
  kTopK = 1,           ///< Traditional fixed-k retrieval.
  kDipr = 2,           ///< Dynamic inner-product range (Definition 3).
};

const char* QueryClassName(QueryClass c);

/// Table 4: which index types can process which query types.
bool IndexSupportsQuery(IndexClass index, QueryClass query);

/// Table 4: whether the index supports attribute filtering (all three do).
bool IndexSupportsFilter(IndexClass index);

}  // namespace alaya
