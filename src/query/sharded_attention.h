// Sharded (context-parallel) window attention: the canonical block fold that
// makes device gangs bit-identical to single-device runs.
//
// The device-resident token sequence of one (layer, head) attention call is
// the context-window ids (ascending) followed by the session-local tail. The
// fold partitions that sequence into fixed blocks of kShardBlockTokens
// (src/device/gang.h), accumulates each block into its own partial-softmax
// state in sequence order, and merges the block partials in ascending block
// index — the ring-attention reduction. Because a DeviceGang::ShardMap only
// ever assigns WHOLE blocks to members, computing block partials on N devices
// and ring-merging them performs the exact same float operation sequence as
// this single-device fold: gang results are bit-identical by construction,
// not by tolerance.
//
// This fold runs in every mode (gang or not), so single-device serving and
// gang serving share one numerical contract.
#pragma once

#include <cstddef>
#include <span>

#include "src/attention/partial_softmax.h"
#include "src/index/vector_set.h"

namespace alaya {

/// Accumulates one head's partial attention over the device-resident sequence
/// — context window tokens `ctx_window_ids` (rows of ctx_keys/ctx_vals)
/// followed by local rows [0, n_local) of loc_keys/loc_vals — as a block fold:
/// per-kShardBlockTokens partials merged in ascending order into `out`.
/// Returns the number of tokens attended. `scale` is 1/sqrt(head_dim).
size_t AccumulateDeviceBlocks(const float* qh, float scale,
                              VectorSetView ctx_keys, VectorSetView ctx_vals,
                              VectorSetView loc_keys, VectorSetView loc_vals,
                              std::span<const uint32_t> ctx_window_ids,
                              size_t n_local, PartialAttention* out);

}  // namespace alaya
