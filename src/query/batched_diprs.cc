#include "src/query/batched_diprs.h"

#include "src/query/batched_execution.h"

namespace alaya {

Status ExecuteHeadJobs(std::span<HeadAttentionJob> jobs, ThreadPool* pool,
                       std::vector<Status>* per_job) {
  return ExecuteJobBatch(jobs, pool, per_job, [](HeadAttentionJob& job) {
    if (job.session == nullptr || job.q == nullptr || job.out == nullptr ||
        job.stats == nullptr) {
      return Status::InvalidArgument("incomplete head attention job");
    }
    return job.session->AttendHead(job.layer, job.q_head, job.q, job.out, job.stats);
  });
}

}  // namespace alaya
