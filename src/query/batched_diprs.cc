#include "src/query/batched_diprs.h"

#include <atomic>

namespace alaya {

Status ExecuteHeadJobs(std::span<HeadAttentionJob> jobs, ThreadPool* pool,
                       std::vector<Status>* per_job) {
  if (per_job != nullptr) per_job->assign(jobs.size(), Status::Ok());
  if (jobs.empty()) return Status::Ok();
  if (pool == nullptr) pool = &ThreadPool::Global();

  std::vector<Status> local;
  std::vector<Status>& statuses = per_job != nullptr ? *per_job : local;
  if (per_job == nullptr) statuses.assign(jobs.size(), Status::Ok());
  pool->ParallelFor(0, jobs.size(), [&](size_t i) {
    HeadAttentionJob& job = jobs[i];
    if (job.session == nullptr || job.q == nullptr || job.out == nullptr ||
        job.stats == nullptr) {
      statuses[i] = Status::InvalidArgument("incomplete head attention job");
      return;
    }
    statuses[i] =
        job.session->AttendHead(job.layer, job.q_head, job.q, job.out, job.stats);
  });

  if (per_job != nullptr) return Status::Ok();
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

}  // namespace alaya
