#include "src/query/optimizer.h"

#include "src/common/string_util.h"

namespace alaya {

std::string QueryPlan::Explain() const {
  std::string s;
  switch (query) {
    case QueryClass::kFullAttention:
      s = "full_attention";
      break;
    case QueryClass::kTopK:
      s = StrFormat("topk(k=%zu) on %s index", topk.k, IndexClassName(index));
      break;
    case QueryClass::kDipr:
      s = StrFormat("dipr(beta=%.1f, l0=%zu) on %s index", dipr.beta, dipr.l0,
                    IndexClassName(index));
      break;
  }
  if (filter.enabled()) {
    s += StrFormat(" + attribute_filter(prefix<%u)", filter.prefix_len);
  }
  return s;
}

QueryPlan RuleBasedOptimizer::Plan(const QueryContext& ctx) const {
  QueryPlan plan;
  plan.topk = options_.coarse_topk;
  plan.dipr = options_.dipr;

  // Rule 1: short contexts take exact full attention.
  if (ctx.context_length <= options_.short_context_threshold) {
    plan.query = QueryClass::kFullAttention;
    return plan;
  }

  // Rule 2: partial prefix reuse adds the attribute-filtering predicate.
  if (ctx.partial_reuse) {
    plan.filter.prefix_len = ctx.reused_prefix_len;
  }

  // Rule 3: with enough GPU memory, cache blocks on device and run top-k on
  // the coarse index (InfLLM-style) for the lowest latency.
  const uint64_t coarse_need = static_cast<uint64_t>(ctx.context_length) *
                               options_.coarse_bytes_per_token;
  if (ctx.gpu_budget_bytes >= coarse_need) {
    plan.query = QueryClass::kTopK;
    plan.index = IndexClass::kCoarse;
    return plan;
  }

  // Rule 4: tight budget -> DIPR. Layer 0 needs a large dynamic critical set
  // (Fig. 5), where a scan beats graph traversal; deeper layers use the
  // fine-grained graph.
  plan.query = QueryClass::kDipr;
  plan.index = (ctx.layer_id == 0) ? IndexClass::kFlat : IndexClass::kFine;
  return plan;
}

}  // namespace alaya
