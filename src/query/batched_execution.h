// Shared dispatch/fold contract for cross-session job batches (decode-side
// head attention in batched_diprs.h, prompt-side prefill chunks in
// batched_prefill.h): run every job on the pool, always drain the whole
// batch, and either report per-job statuses (caller isolates failures per
// session) or return the first error. Centralized so the two batch kinds can
// never drift apart on these semantics — the serving engine relies on the
// per-job mode returning Ok unconditionally.
#pragma once

#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_pool.h"

namespace alaya {

/// Executes `run(job)` for every job on `pool` (nullptr ->
/// ThreadPool::Global()). With `per_job` set, each job's Status lands at the
/// matching index and the call returns Ok. Without it, returns the first
/// error encountered (the batch still drains fully).
template <typename Job, typename RunFn>
Status ExecuteJobBatch(std::span<Job> jobs, ThreadPool* pool,
                       std::vector<Status>* per_job, RunFn run) {
  if (per_job != nullptr) per_job->assign(jobs.size(), Status::Ok());
  if (jobs.empty()) return Status::Ok();
  if (pool == nullptr) pool = &ThreadPool::Global();

  std::vector<Status> local;
  std::vector<Status>& statuses = per_job != nullptr ? *per_job : local;
  if (per_job == nullptr) statuses.assign(jobs.size(), Status::Ok());
  pool->ParallelFor(0, jobs.size(), [&](size_t i) { statuses[i] = run(jobs[i]); });

  if (per_job != nullptr) return Status::Ok();
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

}  // namespace alaya
