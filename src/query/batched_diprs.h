// Batched DIPRS execution for multi-session serving.
//
// One decode step of one session issues a DIPRS (or top-k / full-attention)
// retrieval per (layer, q_head). When many sessions decode concurrently, the
// per-head calls are independent read-only searches over shared indices, so
// the serving engine flattens all sessions' (session, layer, head) queries of
// the current step into one batch and executes it with a single ParallelFor —
// one scheduling round instead of per-session head loops, and load balancing
// across heads whose DIPRS exploration sizes differ (Observation I).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/session.h"

namespace alaya {

/// One (session, layer, q_head) attention query of the current decode step.
/// `q` and `out` are this head's [head_dim] slices; `stats` must be non-null
/// and unique per job (jobs run concurrently).
struct HeadAttentionJob {
  Session* session = nullptr;
  uint32_t layer = 0;
  uint32_t q_head = 0;
  const float* q = nullptr;
  float* out = nullptr;
  AttentionCallStats* stats = nullptr;
};

/// Executes every job on `pool` (nullptr -> ThreadPool::Global()). Jobs may
/// mix sessions and layers; all referenced sessions must be quiescent (no
/// concurrent Update). Always drains the whole batch. With `per_job` set, each
/// job's Status lands at the matching index and the call returns Ok — callers
/// isolate failures per job (the serving engine fails one session, not the
/// fleet). Without it, returns the first error encountered. Does not advance
/// any GPU clock — callers aggregate per-job stats and charge each session
/// once per batch.
Status ExecuteHeadJobs(std::span<HeadAttentionJob> jobs, ThreadPool* pool = nullptr,
                       std::vector<Status>* per_job = nullptr);

}  // namespace alaya
