#include "src/query/query_types.h"

namespace alaya {

const char* QueryClassName(QueryClass c) {
  switch (c) {
    case QueryClass::kFullAttention:
      return "full_attention";
    case QueryClass::kTopK:
      return "topk";
    case QueryClass::kDipr:
      return "dipr";
  }
  return "?";
}

bool IndexSupportsQuery(IndexClass index, QueryClass query) {
  if (query == QueryClass::kFullAttention) return false;  // Bypasses indices.
  switch (index) {
    case IndexClass::kCoarse:
      // Coarse: Top-k and Filter only — block granularity cannot answer the
      // per-key DIPR predicate.
      return query == QueryClass::kTopK;
    case IndexClass::kFine:
    case IndexClass::kFlat:
      return query == QueryClass::kTopK || query == QueryClass::kDipr;
  }
  return false;
}

bool IndexSupportsFilter(IndexClass) { return true; }

}  // namespace alaya
