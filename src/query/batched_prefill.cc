#include "src/query/batched_prefill.h"

#include "src/query/batched_execution.h"

namespace alaya {

Status RunPrefillJob(const SessionPrefillJob& job) {
  if (job.session == nullptr || job.fill == nullptr) {
    return Status::InvalidArgument("incomplete prefill job: null session or fill");
  }
  if (job.q_scratch == nullptr || job.k_scratch == nullptr ||
      job.v_scratch == nullptr) {
    return Status::InvalidArgument("incomplete prefill job: null scratch buffer");
  }
  if (job.count == 0) return Status::Ok();

  const ModelConfig& model = job.session->config();
  const size_t qdim = static_cast<size_t>(model.num_q_heads) * model.head_dim;
  const size_t kvdim = static_cast<size_t>(model.num_kv_heads) * model.head_dim;
  for (uint32_t layer = 0; layer < model.num_layers; ++layer) {
    for (size_t t = 0; t < job.count; ++t) {
      job.fill(job.first_token + t, layer, job.q_scratch + t * qdim,
               job.k_scratch + t * kvdim, job.v_scratch + t * kvdim);
    }
    ALAYA_RETURN_IF_ERROR(job.session->UpdateBatch(layer, job.count, job.q_scratch,
                                                   job.k_scratch, job.v_scratch));
  }
  return Status::Ok();
}

Status ExecutePrefillJobs(std::span<SessionPrefillJob> jobs, ThreadPool* pool,
                          std::vector<Status>* per_job) {
  return ExecuteJobBatch(jobs, pool, per_job,
                         [](const SessionPrefillJob& job) { return RunPrefillJob(job); });
}

PrefillWave::~PrefillWave() { Wait(); }

void PrefillWave::Launch(const SessionPrefillJob& job, Status* status, ThreadPool* pool) {
  if (pool == nullptr) pool = &ThreadPool::Global();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++outstanding_;
    ++launched_;
  }
  pool->Submit([this, job, status]() {
    Status s = RunPrefillJob(job);
    std::lock_guard<std::mutex> lock(mu_);
    if (status != nullptr) *status = std::move(s);
    --outstanding_;
    if (outstanding_ == 0) cv_.notify_all();
  });
}

void PrefillWave::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return outstanding_ == 0; });
}

bool PrefillWave::WaitFor(std::chrono::microseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, timeout, [this] { return outstanding_ == 0; });
}

}  // namespace alaya
