#include "src/query/batched_prefill.h"

#include "src/query/batched_execution.h"

namespace alaya {

Status RunPrefillJob(const SessionPrefillJob& job) {
  if (job.session == nullptr || job.fill == nullptr) {
    return Status::InvalidArgument("incomplete prefill job: null session or fill");
  }
  if (job.q_scratch == nullptr || job.k_scratch == nullptr ||
      job.v_scratch == nullptr) {
    return Status::InvalidArgument("incomplete prefill job: null scratch buffer");
  }
  if (job.count == 0) return Status::Ok();

  const ModelConfig& model = job.session->config();
  const size_t qdim = static_cast<size_t>(model.num_q_heads) * model.head_dim;
  const size_t kvdim = static_cast<size_t>(model.num_kv_heads) * model.head_dim;
  for (uint32_t layer = 0; layer < model.num_layers; ++layer) {
    for (size_t t = 0; t < job.count; ++t) {
      job.fill(job.first_token + t, layer, job.q_scratch + t * qdim,
               job.k_scratch + t * kvdim, job.v_scratch + t * kvdim);
    }
    ALAYA_RETURN_IF_ERROR(job.session->UpdateBatch(layer, job.count, job.q_scratch,
                                                   job.k_scratch, job.v_scratch));
  }
  return Status::Ok();
}

Status ExecutePrefillJobs(std::span<SessionPrefillJob> jobs, ThreadPool* pool,
                          std::vector<Status>* per_job) {
  return ExecuteJobBatch(jobs, pool, per_job,
                         [](const SessionPrefillJob& job) { return RunPrefillJob(job); });
}

}  // namespace alaya
