#include "src/query/sharded_attention.h"

#include <algorithm>

#include "src/attention/attention_engine.h"
#include "src/device/gang.h"

namespace alaya {

size_t AccumulateDeviceBlocks(const float* qh, float scale,
                              VectorSetView ctx_keys, VectorSetView ctx_vals,
                              VectorSetView loc_keys, VectorSetView loc_vals,
                              std::span<const uint32_t> ctx_window_ids,
                              size_t n_local, PartialAttention* out) {
  const size_t n_ctx = ctx_window_ids.size();
  const size_t n = n_ctx + n_local;
  size_t attended = 0;
  for (size_t b0 = 0; b0 < n; b0 += kShardBlockTokens) {
    const size_t b1 = std::min(n, b0 + kShardBlockTokens);
    PartialAttention block(out->dim());
    if (b0 < n_ctx) {
      // Context-window slice of this block.
      const size_t e = std::min(b1, n_ctx);
      KvPartition part{ctx_keys, ctx_vals, ctx_window_ids.subspan(b0, e - b0), 0, 0};
      attended += AccumulatePartition(qh, part, scale, &block);
    }
    if (b1 > n_ctx) {
      // Local-tail slice of this block.
      const size_t s = b0 > n_ctx ? b0 - n_ctx : 0;
      KvPartition part{loc_keys, loc_vals, {}, static_cast<uint32_t>(s),
                       static_cast<uint32_t>(b1 - n_ctx)};
      attended += AccumulatePartition(qh, part, scale, &block);
    }
    out->Merge(block);
  }
  return attended;
}

}  // namespace alaya
