// Rule-based query optimizer (Fig. 8): picks the attention mode, query type,
// and index type for one attention call, given context length, reuse state,
// GPU memory budget, and layer id.
#pragma once

#include <cstdint>
#include <string>

#include "src/index/index.h"
#include "src/query/query_types.h"

namespace alaya {

struct OptimizerOptions {
  /// Contexts at or below this length use full attention (retrieval overhead
  /// is not worth it; quality is exact).
  size_t short_context_threshold = 4096;
  /// Default top-k when the coarse plan is chosen.
  TopKParams coarse_topk{/*k=*/4096, /*ef=*/0};
  /// Default DIPR parameters.
  DiprParams dipr{/*beta=*/50.0f, /*l0=*/64, /*max_tokens=*/0};
  /// Bytes of GPU memory required per cached token under the coarse plan
  /// (K + V in deployed precision; bf16 Llama-3-8B: 2 * 128 * 2 bytes).
  uint32_t coarse_bytes_per_token = 512;
};

/// Everything the optimizer looks at for one attention call.
struct QueryContext {
  size_t context_length = 0;
  /// True when the session reuses only a prefix of a stored context (§7.1).
  bool partial_reuse = false;
  uint32_t reused_prefix_len = UINT32_MAX;
  /// Available (or user-capped) GPU memory for this session's KV blocks.
  uint64_t gpu_budget_bytes = 0;
  /// Transformer layer (0-based). Layer 0 needs many critical tokens (Fig. 5),
  /// so it scans instead of graph-searching.
  int layer_id = 0;
};

/// The chosen execution plan.
struct QueryPlan {
  QueryClass query = QueryClass::kFullAttention;
  /// Meaningful only when query != kFullAttention.
  IndexClass index = IndexClass::kFine;
  TopKParams topk;
  DiprParams dipr;
  IdFilter filter;  ///< Enabled when the context is partially reused.

  /// EXPLAIN-style one-liner, e.g. "dipr(beta=50) on fine index + filter".
  std::string Explain() const;
};

/// The rule-based optimizer of Fig. 8. Deterministic and side-effect free;
/// one instance serves all sessions.
class RuleBasedOptimizer {
 public:
  explicit RuleBasedOptimizer(const OptimizerOptions& options = OptimizerOptions{})
      : options_(options) {}

  /// Decision procedure of Fig. 8:
  ///   short context                -> full attention
  ///   partial reuse                -> + attribute filter (prefix predicate)
  ///   enough GPU budget            -> top-k on coarse index
  ///   tight budget, layer 0        -> DIPR on flat index
  ///   tight budget, deeper layers  -> DIPR on fine (graph) index
  QueryPlan Plan(const QueryContext& ctx) const;

  const OptimizerOptions& options() const { return options_; }

 private:
  OptimizerOptions options_;
};

}  // namespace alaya
