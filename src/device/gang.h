// Device gangs (context parallelism): one session spanning N devices, per
// "Context Parallelism for Scalable Million-Token Inference" (PAPERS.md).
// A gang shards a session's device-resident KV — the context window plus the
// session-local tail — across its members as contiguous token ranges, so the
// max servable context grows with the gang instead of being capped by one
// device's budget. Each member computes window attention over its own shard;
// the per-shard (max, sumexp, weighted-V) triples ride a modeled ring
// exchange and reduce through the partial-softmax merge
// (src/attention/partial_softmax.h), which is exactly the combination
// primitive ring attention needs.
//
// Determinism contract: ShardMap is a pure function of (members, n_tokens),
// and shard boundaries are quantized to kShardBlockTokens — the same block
// granularity the sharded-attention fold (src/query/sharded_attention.h)
// reduces at in EVERY mode, gang or not. Because device assignment can only
// move whole blocks between members and blocks always merge in ascending
// order, a gang-of-N run is bit-identical to the single-device run of the
// same prompt by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/device/device.h"

namespace alaya {

/// Reduction granularity of the sharded attention fold: device-resident
/// tokens are accumulated into one partial-softmax state per block of this
/// many tokens, then merged in ascending block order. Fixed (independent of
/// gang size) so the float operation sequence never depends on how many
/// devices the tokens happen to live on.
inline constexpr size_t kShardBlockTokens = 128;

/// A group of fleet devices serving one session's context in parallel.
/// Immutable after construction; cheap to share between the scheduler's
/// admission record and the session it backs.
class DeviceGang {
 public:
  /// `env` must outlive the gang. `members` are fleet device ids (the fleet
  /// is grown to cover them); members[0] is the gang's primary — the device
  /// the session itself binds to and the one charged for work no shard owns
  /// yet (e.g. the first tokens of a fresh prompt).
  DeviceGang(SimEnvironment* env, std::vector<int> members);

  size_t size() const { return members_.size(); }
  int primary() const { return members_.front(); }
  const std::vector<int>& members() const { return members_; }
  Device& member_device(size_t i) const { return env_->device(static_cast<size_t>(members_[i])); }
  SimEnvironment* env() const { return env_; }

  /// One member's contiguous token range of the device-resident sequence.
  struct Shard {
    int device = 0;     ///< Fleet device id owning the range.
    size_t member = 0;  ///< Index into members().
    size_t begin = 0;   ///< First resident-token index (inclusive).
    size_t end = 0;     ///< One past the last.
    size_t tokens() const { return end - begin; }
  };

  /// Deterministic shard map over `n_tokens` device-resident tokens: the
  /// token sequence is cut into ceil(n / kShardBlockTokens) blocks and the
  /// blocks are dealt front-to-back — member i owns floor(blocks/size) whole
  /// blocks, the first (blocks % size) members one extra. Always returns
  /// size() shards (trailing members may own empty ranges); ranges are
  /// contiguous, disjoint, and cover [0, n_tokens).
  std::vector<Shard> ShardMap(size_t n_tokens) const;

  /// Bytes one ring rotation moves per member: every member forwards its
  /// partial (max, sumexp, weighted-V accumulator) triples — (head_dim + 2)
  /// floats per query head — to its ring successor.
  static uint64_t RingExchangeBytes(uint32_t num_q_heads, uint32_t head_dim) {
    return static_cast<uint64_t>(head_dim + 2) * sizeof(float) * num_q_heads;
  }

 private:
  SimEnvironment* env_;
  std::vector<int> members_;
};

}  // namespace alaya
