#include "src/device/gang.h"

#include <algorithm>

namespace alaya {

DeviceGang::DeviceGang(SimEnvironment* env, std::vector<int> members)
    : env_(env != nullptr ? env : &SimEnvironment::Global()),
      members_(std::move(members)) {
  if (members_.empty()) members_.push_back(0);
  for (int& m : members_) m = std::max(m, 0);
  // Grow the fleet to cover every member so member_device never faults.
  int max_id = 0;
  for (int m : members_) max_id = std::max(max_id, m);
  env_->devices().EnsureAtLeast(static_cast<size_t>(max_id) + 1);
}

std::vector<DeviceGang::Shard> DeviceGang::ShardMap(size_t n_tokens) const {
  const size_t k = members_.size();
  std::vector<Shard> shards(k);
  const size_t n_blocks = (n_tokens + kShardBlockTokens - 1) / kShardBlockTokens;
  const size_t base = n_blocks / k;
  const size_t extra = n_blocks % k;
  size_t block = 0;
  for (size_t i = 0; i < k; ++i) {
    const size_t owned = base + (i < extra ? 1 : 0);
    Shard& s = shards[i];
    s.device = members_[i];
    s.member = i;
    s.begin = std::min(n_tokens, block * kShardBlockTokens);
    block += owned;
    s.end = std::min(n_tokens, block * kShardBlockTokens);
  }
  return shards;
}

}  // namespace alaya
