// Byte-accurate accounting of where data resides (simulated GPU vs host vs disk).
//
// The paper reports "GPU memory consumption" for each method; since this
// reproduction runs on CPU, every structure that the real system would place in
// GPU memory registers its footprint here, so reported numbers are true byte
// counts of GPU-resident state (weights excluded unless requested).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace alaya {

/// Which physical tier a byte lives on in the simulated deployment.
enum class MemoryTier : int { kGpu = 0, kHost = 1, kDisk = 2 };

const char* MemoryTierName(MemoryTier tier);

/// Thread-safe usage counter for one tier.
class MemoryTracker {
 public:
  explicit MemoryTracker(MemoryTier tier) : tier_(tier) {}

  void Allocate(uint64_t bytes) {
    uint64_t cur = current_.fetch_add(bytes) + bytes;
    // Racy peak update is fine: peaks are advisory metrics.
    uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (cur > peak && !peak_.compare_exchange_weak(peak, cur)) {
    }
  }

  void Free(uint64_t bytes) { current_.fetch_sub(bytes); }

  uint64_t current() const { return current_.load(); }
  uint64_t peak() const { return peak_.load(); }
  MemoryTier tier() const { return tier_; }

  void ResetPeak() { peak_.store(current_.load()); }
  void Reset() {
    current_.store(0);
    peak_.store(0);
  }

  std::string ToString() const;

 private:
  MemoryTier tier_;
  std::atomic<uint64_t> current_{0};
  std::atomic<uint64_t> peak_{0};
};

/// RAII reservation: frees its bytes on destruction.
class MemoryReservation {
 public:
  MemoryReservation() = default;
  MemoryReservation(MemoryTracker* tracker, uint64_t bytes)
      : tracker_(tracker), bytes_(bytes) {
    if (tracker_) tracker_->Allocate(bytes_);
  }
  ~MemoryReservation() { Release(); }

  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;
  MemoryReservation(MemoryReservation&& other) noexcept { *this = std::move(other); }
  MemoryReservation& operator=(MemoryReservation&& other) noexcept {
    if (this != &other) {
      Release();
      tracker_ = other.tracker_;
      bytes_ = other.bytes_;
      other.tracker_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }

  /// Grows or shrinks the reservation to `bytes`.
  void ResizeTo(uint64_t bytes) {
    if (!tracker_) return;
    if (bytes > bytes_) {
      tracker_->Allocate(bytes - bytes_);
    } else {
      tracker_->Free(bytes_ - bytes);
    }
    bytes_ = bytes;
  }

  void Release() {
    if (tracker_) tracker_->Free(bytes_);
    tracker_ = nullptr;
    bytes_ = 0;
  }

  uint64_t bytes() const { return bytes_; }

 private:
  MemoryTracker* tracker_ = nullptr;
  uint64_t bytes_ = 0;
};

}  // namespace alaya
