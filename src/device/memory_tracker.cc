#include "src/device/memory_tracker.h"

#include "src/common/string_util.h"

namespace alaya {

const char* MemoryTierName(MemoryTier tier) {
  switch (tier) {
    case MemoryTier::kGpu:
      return "GPU";
    case MemoryTier::kHost:
      return "HOST";
    case MemoryTier::kDisk:
      return "DISK";
  }
  return "?";
}

std::string MemoryTracker::ToString() const {
  return StrFormat("%s: current=%s peak=%s", MemoryTierName(tier_),
                   HumanBytes(current()).c_str(), HumanBytes(peak()).c_str());
}

}  // namespace alaya
