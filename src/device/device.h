// Simulated deployment: a set of GPU devices, each with tracked memory, its
// own virtual clock and cost model, plus shared host and disk tiers. One
// SimEnvironment is shared by a DB instance.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "src/device/cost_model.h"
#include "src/device/memory_tracker.h"

namespace alaya {

/// One simulated GPU: byte-accurate residency tracking plus a modeled-time
/// clock and the hardware constants that drive it. Sessions bind to exactly
/// one device; everything they keep device-resident reserves bytes in
/// memory(), and every modeled kernel/transfer they run advances clock().
class Device {
 public:
  explicit Device(int id) : id_(id), memory_(MemoryTier::kGpu) {}

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  int id() const { return id_; }
  MemoryTracker& memory() { return memory_; }
  const MemoryTracker& memory() const { return memory_; }
  VirtualClock& clock() { return clock_; }
  const VirtualClock& clock() const { return clock_; }
  CostModel& cost_model() { return cost_model_; }
  const CostModel& cost_model() const { return cost_model_; }

 private:
  int id_;
  MemoryTracker memory_;
  CostModel cost_model_;
  VirtualClock clock_;
};

/// The environment's device fleet. Devices are identified by dense ids
/// [0, size()); device 0 always exists and is what every single-device code
/// path (and the pre-sharding API surface) uses. Grow-only: EnsureAtLeast
/// appends, nothing is ever removed, and Device pointers/references stay
/// stable for the set's lifetime (sessions cache them).
///
/// Thread-safe: the serving engine grows the set at construction while
/// sessions on other devices hold references, and placement snapshots race
/// with admission.
class DeviceSet {
 public:
  explicit DeviceSet(size_t num_devices = 1);

  size_t size() const;

  /// Grows the fleet to at least `num_devices` devices (no-op if already
  /// there). New devices start empty with default cost models.
  void EnsureAtLeast(size_t num_devices);

  /// Device `id` in [0, size()); the reference stays valid forever.
  Device& At(size_t id);
  const Device& At(size_t id) const;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Device>> devices_;
};

/// The simulated hardware environment (N GPUs, host DRAM, NVMe).
/// GPU-resident structures reserve bytes on their device's tracker; modeled
/// kernel and transfer durations accumulate in that device's clock. The
/// legacy single-device accessors (gpu_memory, gpu_clock, cost_model,
/// ChargeTransfer, ChargeGpuAttention) are views of device 0, so every
/// pre-sharding caller keeps its exact behavior.
class SimEnvironment {
 public:
  explicit SimEnvironment(size_t num_devices = 1)
      : devices_(num_devices),
        host_memory_(MemoryTier::kHost),
        disk_usage_(MemoryTier::kDisk) {}

  DeviceSet& devices() { return devices_; }
  const DeviceSet& devices() const { return devices_; }
  Device& device(size_t id) { return devices_.At(id); }
  const Device& device(size_t id) const { return devices_.At(id); }
  size_t num_devices() const { return devices_.size(); }

  MemoryTracker& gpu_memory() { return devices_.At(0).memory(); }
  MemoryTracker& host_memory() { return host_memory_; }
  MemoryTracker& disk_usage() { return disk_usage_; }
  const MemoryTracker& gpu_memory() const { return devices_.At(0).memory(); }
  const MemoryTracker& host_memory() const { return host_memory_; }

  CostModel& cost_model() { return devices_.At(0).cost_model(); }
  const CostModel& cost_model() const { return devices_.At(0).cost_model(); }

  VirtualClock& gpu_clock() { return devices_.At(0).clock(); }
  const VirtualClock& gpu_clock() const { return devices_.At(0).clock(); }

  /// Charges a host->device (or device->host) transfer to device 0.
  void ChargeTransfer(uint64_t bytes) {
    Device& d = devices_.At(0);
    d.clock().Advance(d.cost_model().TransferSeconds(bytes));
  }

  /// Charges `flops` of GPU attention work to device 0.
  void ChargeGpuAttention(double flops) {
    Device& d = devices_.At(0);
    d.clock().Advance(d.cost_model().GpuAttentionSeconds(flops));
  }

  /// Process-wide default environment (single device).
  static SimEnvironment& Global();

 private:
  DeviceSet devices_;
  MemoryTracker host_memory_;
  MemoryTracker disk_usage_;
};

}  // namespace alaya
