// Simulated deployment: a GPU device with tracked memory + cost model, plus
// host and disk tiers. One SimEnvironment is shared by a DB instance.
#pragma once

#include <memory>

#include "src/device/cost_model.h"
#include "src/device/memory_tracker.h"

namespace alaya {

/// The simulated hardware environment (one GPU, host DRAM, NVMe).
/// GPU-resident structures reserve bytes in gpu_memory(); modeled kernel and
/// transfer durations accumulate in gpu_clock().
class SimEnvironment {
 public:
  SimEnvironment()
      : gpu_memory_(MemoryTier::kGpu),
        host_memory_(MemoryTier::kHost),
        disk_usage_(MemoryTier::kDisk) {}

  MemoryTracker& gpu_memory() { return gpu_memory_; }
  MemoryTracker& host_memory() { return host_memory_; }
  MemoryTracker& disk_usage() { return disk_usage_; }
  const MemoryTracker& gpu_memory() const { return gpu_memory_; }
  const MemoryTracker& host_memory() const { return host_memory_; }

  CostModel& cost_model() { return cost_model_; }
  const CostModel& cost_model() const { return cost_model_; }

  VirtualClock& gpu_clock() { return gpu_clock_; }
  const VirtualClock& gpu_clock() const { return gpu_clock_; }

  /// Charges a host->device (or device->host) transfer.
  void ChargeTransfer(uint64_t bytes) {
    gpu_clock_.Advance(cost_model_.TransferSeconds(bytes));
  }

  /// Charges `flops` of GPU attention work.
  void ChargeGpuAttention(double flops) {
    gpu_clock_.Advance(cost_model_.GpuAttentionSeconds(flops));
  }

  /// Process-wide default environment.
  static SimEnvironment& Global();

 private:
  MemoryTracker gpu_memory_;
  MemoryTracker host_memory_;
  MemoryTracker disk_usage_;
  CostModel cost_model_;
  VirtualClock gpu_clock_;
};

}  // namespace alaya
