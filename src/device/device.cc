#include "src/device/device.h"

namespace alaya {

SimEnvironment& SimEnvironment::Global() {
  static SimEnvironment env;
  return env;
}

}  // namespace alaya
