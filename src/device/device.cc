#include "src/device/device.h"

#include <algorithm>

namespace alaya {

DeviceSet::DeviceSet(size_t num_devices) {
  EnsureAtLeast(std::max<size_t>(1, num_devices));
}

size_t DeviceSet::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return devices_.size();
}

void DeviceSet::EnsureAtLeast(size_t num_devices) {
  std::lock_guard<std::mutex> lk(mu_);
  while (devices_.size() < num_devices) {
    devices_.push_back(std::make_unique<Device>(static_cast<int>(devices_.size())));
  }
}

Device& DeviceSet::At(size_t id) {
  std::lock_guard<std::mutex> lk(mu_);
  return *devices_.at(id);
}

const Device& DeviceSet::At(size_t id) const {
  std::lock_guard<std::mutex> lk(mu_);
  return *devices_.at(id);
}

SimEnvironment& SimEnvironment::Global() {
  static SimEnvironment env;
  return env;
}

}  // namespace alaya
