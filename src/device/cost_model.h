// Calibrated cost model for device-side work that this CPU-only reproduction
// cannot execute natively (GPU kernels, PCIe transfers, NVMe I/O).
//
// Substitution rule (DESIGN.md §2.3): CPU-side work is executed and wall-clock
// timed; GPU/transfer work is executed on host threads but *charged* with the
// modeled durations below. Constants approximate an NVIDIA L20 + PCIe 4.0 x16
// testbed like the paper's.
#pragma once

#include <atomic>
#include <cstdint>

namespace alaya {

/// Tunable hardware constants. All rates are "effective" (i.e., already
/// discounted for real-world efficiency), not peak datasheet numbers.
struct CostModel {
  /// Effective host<->device bandwidth (PCIe 4.0 x16 ~ 24 GB/s usable).
  double pcie_gbps = 24.0;
  /// Effective GPU throughput for attention GEMMs (L20 bf16, ~40% MFU).
  double gpu_attn_tflops = 24.0;
  /// Effective GPU memory bandwidth (L20 GDDR6 864 GB/s, ~75% achievable).
  double gpu_mem_gbps = 650.0;
  /// KV-cache decompression throughput for the LMCache-style baseline
  /// (CacheGen-like codecs decode a few GB/s on CPU).
  double kv_decompress_gbps = 4.0;
  /// GPU kNN-graph construction throughput (cuVS NN-descent; pairwise-distance
  /// equivalent FLOP rate).
  double gpu_knn_tflops = 12.0;
  /// Per-kernel launch overhead.
  double kernel_launch_seconds = 10e-6;
  /// NVMe read bandwidth for the vector file system tier.
  double nvme_read_gbps = 6.5;
  /// NVMe random-read latency per request (SPDK-class user-space driver).
  double nvme_latency_seconds = 12e-6;
  /// Effective fraction of GPU memory bandwidth that HF-transformers-style
  /// eager decode attention achieves (unfused kernels materialize the score
  /// matrix and make several passes). Calibrated so full attention violates
  /// the 0.24 s TPOT SLO past ~100K tokens, matching the paper's Table 5.
  double hf_attention_efficiency = 0.08;

  /// Seconds to move `bytes` across PCIe.
  double TransferSeconds(uint64_t bytes) const {
    return kernel_launch_seconds + static_cast<double>(bytes) / (pcie_gbps * 1e9);
  }

  /// Seconds for the GPU to execute `flops` of attention GEMM work.
  double GpuAttentionSeconds(double flops) const {
    return kernel_launch_seconds + flops / (gpu_attn_tflops * 1e12);
  }

  /// Seconds the GPU needs just to stream `bytes` from device memory
  /// (bandwidth-bound decode attention).
  double GpuMemoryStreamSeconds(uint64_t bytes) const {
    return kernel_launch_seconds + static_cast<double>(bytes) / (gpu_mem_gbps * 1e9);
  }

  /// Seconds to decompress `bytes` of compressed KV cache.
  double DecompressSeconds(uint64_t bytes) const {
    return static_cast<double>(bytes) / (kv_decompress_gbps * 1e9);
  }

  /// Seconds for the GPU to do `flops` of kNN-construction distance work.
  double GpuKnnSeconds(double flops) const {
    return kernel_launch_seconds + flops / (gpu_knn_tflops * 1e12);
  }

  /// Seconds for one NVMe read of `bytes`.
  double NvmeReadSeconds(uint64_t bytes) const {
    return nvme_latency_seconds + static_cast<double>(bytes) / (nvme_read_gbps * 1e9);
  }

  /// Seconds for one decode step of HF-eager full attention streaming `bytes`
  /// of KV cache (bandwidth-bound, inefficiency factored in).
  double HfDecodeAttentionSeconds(uint64_t bytes) const {
    return kernel_launch_seconds +
           static_cast<double>(bytes) /
               (gpu_mem_gbps * hf_attention_efficiency * 1e9);
  }
};

/// FLOP count of causal full-attention prefill over n tokens
/// (QK^T + AV per head: 2 * 2 * d * n^2/2 per head).
inline double PrefillAttentionFlops(uint64_t n, uint64_t heads, uint64_t head_dim,
                                    uint64_t layers) {
  const double n2 = static_cast<double>(n) * static_cast<double>(n) / 2.0;
  return 2.0 * 2.0 * static_cast<double>(head_dim) * n2 * static_cast<double>(heads) *
         static_cast<double>(layers);
}

/// FLOP count of one decode step of full attention over a context of n tokens.
inline double DecodeAttentionFlops(uint64_t n, uint64_t heads, uint64_t head_dim,
                                   uint64_t layers) {
  return 2.0 * 2.0 * static_cast<double>(head_dim) * static_cast<double>(n) *
         static_cast<double>(heads) * static_cast<double>(layers);
}

/// Accumulates modeled (virtual) seconds alongside measured wall time.
/// Thread-safe: concurrent sessions sharing one SimEnvironment all charge
/// modeled device time to the same clock.
class VirtualClock {
 public:
  void Advance(double seconds) {
    double cur = seconds_.load(std::memory_order_relaxed);
    while (!seconds_.compare_exchange_weak(cur, cur + seconds,
                                           std::memory_order_relaxed)) {
    }
  }
  void Reset() { seconds_.store(0.0); }
  double Seconds() const { return seconds_.load(); }

 private:
  std::atomic<double> seconds_{0.0};
};

}  // namespace alaya
