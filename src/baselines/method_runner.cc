#include "src/baselines/method_runner.h"

#include <algorithm>
#include <cmath>

#include "src/attention/attention_engine.h"
#include "src/common/timer.h"
#include "src/query/diprs.h"

namespace alaya {

Status MethodRunner::Prepare(const SyntheticContext& context, SimEnvironment* env,
                             const IndexBuildOptions& build_options) {
  context_ = &context;
  env_ = env != nullptr ? env : &SimEnvironment::Global();
  const ModelConfig& m = model_;

  if (spec_.kind == MethodSpec::Kind::kTopK || spec_.kind == MethodSpec::Kind::kDiprs) {
    // Fine-grained RoarGraph per (layer, KV head), GQA-shared, trained on
    // synthetic prefill queries.
    auto training = context.MakeTrainingQueries(
        std::max<size_t>(64, static_cast<size_t>(build_options.query_sample_ratio *
                                                 context.num_tokens() /
                                                 m.GroupSize())));
    fine_.clear();
    for (uint32_t layer = 0; layer < m.num_layers; ++layer) {
      std::vector<VectorSetView> head_keys;
      for (uint32_t h = 0; h < m.num_kv_heads; ++h) {
        head_keys.push_back(context.kv().Keys(layer, h));
      }
      std::vector<VectorSetView> head_queries;
      for (uint32_t h = 0; h < m.num_q_heads; ++h) {
        head_queries.push_back(training->View(layer, h));
      }
      std::vector<std::unique_ptr<RoarGraph>> built;
      IndexBuildStats stats;
      IndexBuildOptions opts = build_options;
      opts.share_gqa_group = true;
      ALAYA_RETURN_IF_ERROR(
          BuildLayerIndices(head_keys, head_queries, m.GroupSize(), opts, &built,
                            &stats));
      build_stats_.reported_seconds += stats.reported_seconds;
      build_stats_.index_bytes += stats.index_bytes;
      build_stats_.num_indices += stats.num_indices;
      for (auto& idx : built) fine_.push_back(std::move(idx));
    }
  } else if (spec_.kind == MethodSpec::Kind::kInfLlm) {
    coarse_.clear();
    CoarseIndexOptions copts;
    copts.block_size = spec_.infllm_block;
    copts.rep_kind = BlockRepKind::kSalient;
    copts.reps_per_block = 4;
    for (uint32_t layer = 0; layer < m.num_layers; ++layer) {
      for (uint32_t h = 0; h < m.num_kv_heads; ++h) {
        coarse_.push_back(
            std::make_unique<CoarseIndex>(context.kv().Keys(layer, h), copts));
      }
    }
  }
  return Status::Ok();
}

const RoarGraph* MethodRunner::FineIndex(uint32_t layer, uint32_t q_head) const {
  const size_t slot = static_cast<size_t>(layer) * model_.num_kv_heads +
                      model_.KvHeadForQuery(q_head);
  return slot < fine_.size() ? fine_[slot].get() : nullptr;
}

uint64_t MethodRunner::GpuBytes() const {
  if (context_ == nullptr) return 0;
  const size_t n = context_->num_tokens();
  const uint64_t per_token = model_.KvBytesPerToken();
  switch (spec_.kind) {
    case MethodSpec::Kind::kFullAttention:
      return static_cast<uint64_t>(n) * per_token;
    case MethodSpec::Kind::kStreamingLlm:
      return window_.Size(n) * per_token;
    case MethodSpec::Kind::kInfLlm: {
      uint64_t reps = 0;
      for (const auto& c : coarse_) reps += c->MemoryBytes();
      // Representatives (at deployed precision) + cached blocks + window.
      return reps / 2 +
             (window_.Size(n) + spec_.infllm_cache_tokens) * per_token;
    }
    case MethodSpec::Kind::kTopK:
    case MethodSpec::Kind::kDiprs:
      // Graph index + offloaded KV live on CPU; only the window is on device.
      return window_.Size(n) * per_token;
  }
  return 0;
}

Status MethodRunner::AttendHead(uint32_t layer, uint32_t q_head, const float* q,
                                float* out, MethodHeadStats* stats,
                                std::vector<uint32_t>* used_ids) {
  if (context_ == nullptr) return Status::FailedPrecondition("Prepare() not called");
  const ModelConfig& m = model_;
  const uint32_t kv_head = m.KvHeadForQuery(q_head);
  const size_t d = m.head_dim;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  VectorSetView keys = context_->kv().Keys(layer, kv_head);
  VectorSetView values = context_->kv().Values(layer, kv_head);
  const size_t n = keys.n;
  const CostModel& cost = env_->cost_model();

  MethodHeadStats local;
  WallTimer wall;

  if (spec_.kind == MethodSpec::Kind::kFullAttention) {
    AttentionStats astats;
    FullAttentionHead(q, keys, values, n, out, &astats);
    local.attended = astats.tokens_attended;
    local.cpu_seconds = 0;  // Runs on GPU in deployment; host time not charged.
    local.gpu_ctx_seconds =
        cost.HfDecodeAttentionSeconds(static_cast<uint64_t>(n) * 2 * d *
                                      m.bytes_per_scalar);
    if (used_ids != nullptr) {
      used_ids->resize(n);
      for (size_t i = 0; i < n; ++i) (*used_ids)[i] = static_cast<uint32_t>(i);
    }
    if (stats != nullptr) *stats = local;
    return Status::Ok();
  }

  // Window partition (device-resident for every sparse method).
  std::vector<uint32_t> window_ids;
  window_.CollectIds(n, &window_ids);

  std::vector<uint32_t> retrieved_ids;
  switch (spec_.kind) {
    case MethodSpec::Kind::kStreamingLlm:
      break;  // Window only.
    case MethodSpec::Kind::kInfLlm: {
      const size_t slot = static_cast<size_t>(layer) * m.num_kv_heads + kv_head;
      const CoarseIndex* coarse = coarse_[slot].get();
      TopKParams params;
      params.k = spec_.infllm_cache_tokens;
      SearchResult res;
      ALAYA_RETURN_IF_ERROR(coarse->SearchTopK(q, params, &res));
      local.search = res.stats;
      for (const ScoredId& h : res.hits) {
        if (!window_.Contains(h.id, n)) retrieved_ids.push_back(h.id);
      }
      break;
    }
    case MethodSpec::Kind::kTopK: {
      const RoarGraph* fine = FineIndex(layer, q_head);
      if (fine == nullptr) return Status::FailedPrecondition("missing fine index");
      TopKParams params;
      params.k = spec_.k;
      params.ef = spec_.ef != 0 ? spec_.ef : std::max<size_t>(spec_.k, 64);
      SearchResult res;
      ALAYA_RETURN_IF_ERROR(fine->SearchTopK(q, params, &res));
      local.search = res.stats;
      for (const ScoredId& h : res.hits) {
        if (!window_.Contains(h.id, n)) retrieved_ids.push_back(h.id);
      }
      break;
    }
    case MethodSpec::Kind::kDiprs: {
      const RoarGraph* fine = FineIndex(layer, q_head);
      if (fine == nullptr) return Status::FailedPrecondition("missing fine index");
      DiprParams params;
      params.beta = spec_.beta;
      params.l0 = spec_.dipr_l0;
      DiprsHints hints;
      if (spec_.window_hint) {
        hints.prior_best_ip = window_.MaxWindowInnerProduct(q, keys, n);
        local.search.dist_comps += window_ids.size();
      }
      SearchResult res = DiprsSearch(fine->graph(), fine->vectors(),
                                     fine->EntryPoint(q), q, params, hints);
      local.search += res.stats;
      for (const ScoredId& h : res.hits) {
        if (!window_.Contains(h.id, n)) retrieved_ids.push_back(h.id);
      }
      break;
    }
    default:
      return Status::Internal("unhandled method kind");
  }
  local.retrieved = retrieved_ids.size();

  // Data-centric partial attention: retrieved tokens where the KV lives (CPU
  // for fine methods, GPU for InfLLM's cached blocks), window on GPU; exact
  // flash-style merge.
  PartialAttention merged(d);
  PartialAttention window_part(d);
  if (!window_ids.empty()) {
    KvPartition part{keys, values, window_ids, 0, 0};
    local.attended += AccumulatePartition(q, part, scale, &window_part);
  }
  PartialAttention retrieved_part(d);
  if (!retrieved_ids.empty()) {
    KvPartition part{keys, values, retrieved_ids, 0, 0};
    local.attended += AccumulatePartition(q, part, scale, &retrieved_part);
  }
  merged.Merge(window_part);
  merged.Merge(retrieved_part);
  merged.Finalize(out);

  local.cpu_seconds = wall.ElapsedSeconds();
  const uint64_t window_bytes =
      static_cast<uint64_t>(window_ids.size()) * 2 * d * m.bytes_per_scalar;
  local.gpu_fixed_seconds += cost.GpuMemoryStreamSeconds(window_bytes);
  // The flash-style partial-result merge ships (d+2) floats across PCIe.
  local.gpu_fixed_seconds += cost.TransferSeconds((d + 2) * sizeof(float));
  if (spec_.kind == MethodSpec::Kind::kInfLlm) {
    // Blocks are GPU-cached: attention over them is device work, not host.
    const uint64_t blk_bytes =
        static_cast<uint64_t>(retrieved_ids.size()) * 2 * d * m.bytes_per_scalar;
    local.gpu_fixed_seconds += cost.GpuMemoryStreamSeconds(blk_bytes);
    local.cpu_seconds *= 0.1;  // Only block scoring is host-side.
  }

  if (used_ids != nullptr) {
    *used_ids = window_ids;
    used_ids->insert(used_ids->end(), retrieved_ids.begin(), retrieved_ids.end());
  }
  if (stats != nullptr) *stats = local;
  return Status::Ok();
}

}  // namespace alaya
