// LMCache-style KV-cache disaggregation baseline (§9.1.2, Fig. 10).
//
// Stores the *compressed* KV cache of a full context in host memory; on reuse
// it must decompress and transfer the whole cache to the GPU before decoding
// with full attention — so TTFT grows linearly with context length. AlayaDB
// instead decodes directly on the offloaded cache through its indices.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "src/core/kv_cache.h"
#include "src/device/device.h"

namespace alaya {

struct LmCacheOptions {
  /// CacheGen-style compression ratio on KV bytes.
  double compression_ratio = 2.5;
};

class LmCacheStore {
 public:
  explicit LmCacheStore(const LmCacheOptions& options = LmCacheOptions{},
                        SimEnvironment* env = nullptr);
  /// Returns every live entry's compressed bytes to the host tracker.
  ~LmCacheStore();

  LmCacheStore(const LmCacheStore&) = delete;
  LmCacheStore& operator=(const LmCacheStore&) = delete;

  /// Registers a context's KV (bytes accounted compressed, host-resident).
  Status StoreContext(uint64_t id, const KvCache& kv);

  /// Drops a stored context, freeing its compressed host bytes — the
  /// symmetric counterpart of StoreContext*, so host accounting returns to
  /// baseline across store/remove cycles. Returns false for unknown ids.
  bool RemoveContext(uint64_t id);

  /// Accounting-only registration for modeled experiments: `tokens` of context
  /// at `bytes_per_token` deployed KV bytes (e.g. ModelConfig::KvBytesPerToken).
  Status StoreContextBytes(uint64_t id, size_t tokens, uint64_t bytes_per_token);

  struct LoadBreakdown {
    double decompress_seconds = 0;
    double transfer_seconds = 0;
    double total_seconds = 0;
    uint64_t bytes_moved = 0;
  };

  /// Models loading a stored context into GPU memory (decompress + PCIe).
  Result<LoadBreakdown> Load(uint64_t id);

  /// Modeled first-decode-step time after loading (full attention on GPU).
  double DecodeStepSeconds(uint64_t id) const;

  uint64_t StoredBytes() const;
  bool Contains(uint64_t id) const { return entries_.count(id) > 0; }

 private:
  struct Entry {
    uint64_t raw_bytes = 0;
    uint64_t compressed_bytes = 0;
    size_t tokens = 0;
  };

  LmCacheOptions options_;
  SimEnvironment* env_;
  std::map<uint64_t, Entry> entries_;
};

}  // namespace alaya
