// The sparse-attention methods compared in §9.1 (Table 5 / Fig. 9), sharing
// one runner so differences are purely algorithmic:
//   - Full Attention: attends everything (GPU, HF-eager cost model);
//   - StreamingLLM:   window tokens only;
//   - InfLLM:         coarse block retrieval, blocks cached on GPU;
//   - Top-k:          RoarGraph top-k on CPU (RetrievalAttention-style);
//   - DIPRS:          the paper's dynamic inner-product range search.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/attention/window_cache.h"
#include "src/core/kv_cache.h"
#include "src/device/device.h"
#include "src/index/coarse_index.h"
#include "src/index/index_builder.h"
#include "src/index/roargraph.h"
#include "src/llm/qkv_generator.h"

namespace alaya {

struct MethodSpec {
  enum class Kind { kFullAttention, kStreamingLlm, kInfLlm, kTopK, kDiprs };
  Kind kind = Kind::kDiprs;
  std::string label = "DIPRS";
  /// [initial + last] device-cached window.
  WindowConfig window{128, 512};
  /// Top-k retrieval budget (kTopK) — Table 5 uses 100 and 2000.
  size_t k = 100;
  size_t ef = 0;  ///< Beam width (0 -> max(k, 64)).
  /// DIPR beta in raw inner-product units (z-band width * sqrt(d)).
  float beta = 16.0f;
  size_t dipr_l0 = 128;
  /// InfLLM: block size and the device cache budget in tokens (= retrieval
  /// budget; more GPU memory buys more attended blocks — Fig. 9's x-axis).
  uint32_t infllm_block = 128;
  size_t infllm_cache_tokens = 4096;
  /// Window-enhanced DIPRS prior (§7.1); on for the AlayaDB configuration.
  bool window_hint = true;

  static MethodSpec Full() {
    MethodSpec s;
    s.kind = Kind::kFullAttention;
    s.label = "Full Attention";
    return s;
  }
  static MethodSpec Streaming(size_t window_tokens) {
    MethodSpec s;
    s.kind = Kind::kStreamingLlm;
    s.label = "StreamingLLM";
    s.window = WindowConfig{128, static_cast<uint32_t>(window_tokens)};
    return s;
  }
  static MethodSpec InfLlm(size_t cache_tokens, uint32_t recent = 4096) {
    MethodSpec s;
    s.kind = Kind::kInfLlm;
    s.label = "InfLLM";
    s.window = WindowConfig{128, recent};
    s.infllm_cache_tokens = cache_tokens;
    return s;
  }
  static MethodSpec TopK(size_t k) {
    MethodSpec s;
    s.kind = Kind::kTopK;
    s.label = "Top" + std::to_string(k);
    s.k = k;
    return s;
  }
  static MethodSpec Diprs(float beta) {
    MethodSpec s;
    s.kind = Kind::kDiprs;
    s.label = "DIPRS";
    s.beta = beta;
    return s;
  }
};

/// Per-head-call accounting. Modeled device time is split by how it scales
/// when mapping bench geometry to full-model equivalents: work proportional to
/// the context length (full-attention KV streaming) vs fixed-size work
/// (window/cached-block attention, partial-result transfers).
struct MethodHeadStats {
  double cpu_seconds = 0;  ///< Measured host time (search + CPU attention).
  double gpu_ctx_seconds = 0;    ///< Charged device time, linear in context.
  double gpu_fixed_seconds = 0;  ///< Charged device time, context-independent.
  size_t retrieved = 0;
  size_t attended = 0;
  SearchStats search;
};

class MethodRunner {
 public:
  MethodRunner(const ModelConfig& model, const MethodSpec& spec)
      : model_(model), spec_(spec), window_(spec.window) {}

  /// Builds whatever the method needs over the context KV (offline, like the
  /// paper: "the index of the input context is built in advance").
  Status Prepare(const SyntheticContext& context, SimEnvironment* env,
                 const IndexBuildOptions& build_options = IndexBuildOptions{});

  /// Attends one (layer, q_head). q/out are head_dim floats.
  /// `used_ids` (optional) receives the non-window token ids attended —
  /// used by recovery-ratio analyses.
  Status AttendHead(uint32_t layer, uint32_t q_head, const float* q, float* out,
                    MethodHeadStats* stats, std::vector<uint32_t>* used_ids = nullptr);

  /// Device-resident bytes of this method (KV at deployed precision + index
  /// structures that live on GPU). Model weights excluded.
  uint64_t GpuBytes() const;

  const MethodSpec& spec() const { return spec_; }
  const ModelConfig& model() const { return model_; }

  /// Adjusts the top-k retrieval budget without rebuilding the prepared
  /// index (parameter sweeps, Table 3 / Fig. 6).
  void set_k(size_t k) {
    spec_.k = k;
    spec_.ef = 0;
  }
  /// Adjusts DIPR's beta on the prepared index.
  void set_beta(float beta) { spec_.beta = beta; }

 private:
  const RoarGraph* FineIndex(uint32_t layer, uint32_t q_head) const;

  ModelConfig model_;
  MethodSpec spec_;
  WindowCache window_;
  const SyntheticContext* context_ = nullptr;
  SimEnvironment* env_ = nullptr;
  std::vector<std::unique_ptr<RoarGraph>> fine_;      ///< [layer][kv_head] flattened.
  std::vector<std::unique_ptr<CoarseIndex>> coarse_;  ///< [layer][kv_head] flattened.
  IndexBuildStats build_stats_;
};

}  // namespace alaya
