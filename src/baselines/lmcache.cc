#include "src/baselines/lmcache.h"

namespace alaya {

LmCacheStore::LmCacheStore(const LmCacheOptions& options, SimEnvironment* env)
    : options_(options), env_(env != nullptr ? env : &SimEnvironment::Global()) {}

LmCacheStore::~LmCacheStore() {
  for (const auto& [_, e] : entries_) env_->host_memory().Free(e.compressed_bytes);
}

bool LmCacheStore::RemoveContext(uint64_t id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  env_->host_memory().Free(it->second.compressed_bytes);
  entries_.erase(it);
  return true;
}

Status LmCacheStore::StoreContext(uint64_t id, const KvCache& kv) {
  return StoreContextBytes(id, kv.NumTokens(),
                           kv.NumTokens() > 0 ? kv.DeployedBytes() / kv.NumTokens()
                                              : 0);
}

Status LmCacheStore::StoreContextBytes(uint64_t id, size_t tokens,
                                       uint64_t bytes_per_token) {
  Entry e;
  e.raw_bytes = static_cast<uint64_t>(tokens) * bytes_per_token;
  e.compressed_bytes = static_cast<uint64_t>(static_cast<double>(e.raw_bytes) /
                                             options_.compression_ratio);
  e.tokens = tokens;
  if (auto it = entries_.find(id); it != entries_.end()) {
    env_->host_memory().Free(it->second.compressed_bytes);  // Re-store: swap.
  }
  entries_[id] = e;
  env_->host_memory().Allocate(e.compressed_bytes);
  return Status::Ok();
}

Result<LmCacheStore::LoadBreakdown> LmCacheStore::Load(uint64_t id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return Status::NotFound("context not in LMCache store");
  const Entry& e = it->second;
  const CostModel& cost = env_->cost_model();
  LoadBreakdown b;
  // Decompression on host, then raw KV crosses PCIe. (CacheGen pipelines the
  // two; we follow LMCache's load path where decode cannot start until the
  // full layer set is resident — the dominant cost either way.)
  b.decompress_seconds = cost.DecompressSeconds(e.compressed_bytes);
  b.transfer_seconds = cost.TransferSeconds(e.raw_bytes);
  b.total_seconds = b.decompress_seconds + b.transfer_seconds;
  b.bytes_moved = e.raw_bytes;
  env_->gpu_memory().Allocate(e.raw_bytes);
  env_->gpu_clock().Advance(b.total_seconds);
  return b;
}

double LmCacheStore::DecodeStepSeconds(uint64_t id) const {
  auto it = entries_.find(id);
  if (it == entries_.end()) return 0;
  return env_->cost_model().HfDecodeAttentionSeconds(it->second.raw_bytes);
}

uint64_t LmCacheStore::StoredBytes() const {
  uint64_t b = 0;
  for (const auto& [_, e] : entries_) b += e.compressed_bytes;
  return b;
}

}  // namespace alaya
