// Financial document analysis (§8 use case 1): one long report is imported
// once; many analyst questions hit the same context. AlayaDB answers each
// from the shared stored context with sparse attention — no per-question
// prefill, tiny device footprint.
#include <cstdio>
#include <vector>

#include "src/common/timer.h"
#include "src/common/string_util.h"
#include "src/core/alaya_db.h"
#include "src/llm/inference_sim.h"
#include "src/llm/quality.h"

using namespace alaya;

int main() {
  ModelConfig model{2, 4, 2, 64, 2};
  SyntheticContextOptions ctx_opts;
  ctx_opts.model = model;
  // Summarization-style profile: diffuse criticality across the document.
  ctx_opts.spec = FindTask(InfinityBenchSuite(0.06), "En.Sum");
  SyntheticContext report(ctx_opts);
  if (!report.Generate().ok()) return 1;
  std::printf("financial report: %zu tokens (imported once)\n", report.num_tokens());

  DbOptions options;
  options.model = model;
  options.session.optimizer.short_context_threshold = 512;
  options.session.optimizer.dipr.beta =
      static_cast<float>(SuggestedDiprBeta(ctx_opts.spec, model.head_dim));
  options.session.optimizer.dipr.l0 = 128;
  options.session.window = WindowConfig{32, 128};
  AlayaDB db(options);

  auto kv = std::make_unique<KvCache>(model);
  if (!kv->AppendAllFrom(report.kv()).ok()) return 1;
  auto training = report.MakeTrainingQueries(256);
  WallTimer import_timer;
  if (!db.Import(report.tokens(), std::move(kv), training.get()).ok()) return 1;
  std::printf("import + index build: %s (one-off)\n\n",
              HumanSeconds(import_timer.ElapsedSeconds()).c_str());

  // Several analysts ask different questions about the same report. Each
  // question is a new session that reuses the stored context instantly.
  const size_t qdim = model.num_q_heads * model.head_dim;
  std::vector<float> q(qdim), o(qdim), oracle(model.head_dim);
  for (int analyst = 0; analyst < 3; ++analyst) {
    auto created = db.CreateSession(report.tokens());
    if (!created.ok()) return 1;
    Session& session = *created.value().session;

    WallTimer ttft;
    MeanAccumulator fidelity;
    size_t retrieved = 0;
    // Different analysts probe different planted topics (step offset).
    const size_t step = static_cast<size_t>(analyst);
    for (uint32_t layer = 0; layer < model.num_layers; ++layer) {
      report.MakeDecodeQueryLayer(step, layer, q.data());
      AttentionCallStats stats;
      if (!session.Attention(layer, q.data(), o.data(), &stats).ok()) return 1;
      retrieved += stats.retrieved_tokens;
      for (uint32_t h = 0; h < model.num_q_heads; ++h) {
        report.OracleOutput(step, layer, h, oracle.data());
        fidelity.Add(CosineFidelity(o.data() + h * model.head_dim, oracle.data(),
                                    model.head_dim));
      }
    }
    std::printf(
        "analyst %d: first-token latency %s | attention fidelity %.3f | "
        "%zu critical tokens retrieved\n",
        analyst + 1, HumanSeconds(ttft.ElapsedSeconds()).c_str(), fidelity.Mean(),
        retrieved);
  }
  std::printf("\nGPU memory in use: %s (offloaded KV stays in host DRAM: %s)\n",
              HumanBytes(db.env().gpu_memory().current()).c_str(),
              HumanBytes(db.env().host_memory().current()).c_str());
  std::printf("document_qa OK\n");
  return 0;
}
