// Quickstart: the Fig. 4 integration in C++.
//
// An inference engine normally does:
//     past_key_values.update(k, v, layer)      (DynamicCache)
//     o = flash_attn_func(q, k, v)
// With AlayaDB it becomes:
//     session, prompts = DB.create_session(prompts)
//     session.update(q, k, v, layer)
//     o = session.attention(q, layer)
//
// This example imports a long context, reuses it in a session, runs a few
// decode steps of sparse attention, and stores the extended context back.
#include <cstdio>
#include <vector>

#include "src/common/string_util.h"
#include "src/core/alaya_db.h"
#include "src/llm/qkv_generator.h"

using namespace alaya;

int main() {
  // The "model": 2 layers, 4 query heads, 2 KV heads (GQA), head dim 64.
  ModelConfig model{2, 4, 2, 64, 2};

  // Synthesize a long context (stands in for a prefilled document).
  SyntheticContextOptions ctx_opts;
  ctx_opts.model = model;
  ctx_opts.spec = FindTask(InfinityBenchSuite(0.05), "En.QA");
  SyntheticContext document(ctx_opts);
  if (!document.Generate().ok()) return 1;
  std::printf("document: %zu tokens\n", document.num_tokens());

  // Configure the database: DIPR defaults tuned to this workload's logit band.
  DbOptions options;
  options.model = model;
  options.session.optimizer.short_context_threshold = 512;
  options.session.optimizer.dipr.beta =
      static_cast<float>(SuggestedDiprBeta(ctx_opts.spec, model.head_dim));
  options.session.optimizer.dipr.l0 = 128;
  options.session.window = WindowConfig{32, 128};
  AlayaDB db(options);

  // DB.import(prompts, kv_cache): register the prefilled context. Training
  // queries recorded at prefill time teach RoarGraph the query distribution.
  auto kv = std::make_unique<KvCache>(model);
  if (!kv->AppendAllFrom(document.kv()).ok()) return 1;
  auto training = document.MakeTrainingQueries(256);
  auto imported = db.Import(document.tokens(), std::move(kv), training.get());
  if (!imported.ok()) {
    std::printf("import failed: %s\n", imported.status().ToString().c_str());
    return 1;
  }
  std::printf("imported context #%llu (indices built)\n",
              static_cast<unsigned long long>(imported.value()));

  // DB.create_session(prompts) -> session + truncated prompt.
  auto created = db.CreateSession(document.tokens());
  if (!created.ok()) return 1;
  std::printf("session reuses %zu tokens; %zu left to prefill\n",
              created.value().reused_prefix, created.value().truncated_prompt.size());
  Session& session = *created.value().session;

  // Decode loop: session.attention(q, layer) replaces flash_attn_func.
  const size_t qdim = model.num_q_heads * model.head_dim;
  std::vector<float> q(qdim), o(qdim);
  for (size_t step = 0; step < 3; ++step) {
    for (uint32_t layer = 0; layer < model.num_layers; ++layer) {
      document.MakeDecodeQueryLayer(step, layer, q.data());
      AttentionCallStats stats;
      if (!session.Attention(layer, q.data(), o.data(), &stats).ok()) return 1;
      if (layer == 1 && step == 0) {
        std::printf("step %zu layer %u: plan = %s, retrieved %zu critical tokens\n",
                    step, layer, stats.plan_explain.c_str(), stats.retrieved_tokens);
      }
    }
  }

  // Append a generated token (session.update == DynamicCache.update) and
  // store the session as a new reusable context (late materialization).
  Rng rng(1);
  std::vector<float> k(model.num_kv_heads * model.head_dim);
  std::vector<float> v(k.size());
  for (uint32_t layer = 0; layer < model.num_layers; ++layer) {
    rng.FillGaussian(q.data(), qdim);
    rng.FillGaussian(k.data(), k.size());
    rng.FillGaussian(v.data(), v.size());
    if (!session.Update(layer, q.data(), k.data(), v.data()).ok()) return 1;
  }
  std::vector<int32_t> new_tokens = {424242};
  auto stored = db.Store(&session, new_tokens);
  if (!stored.ok()) return 1;
  std::printf("stored extended context #%llu (%zu contexts in DB)\n",
              static_cast<unsigned long long>(stored.value()), db.contexts().size());
  std::printf("GPU-resident bytes for this session: %s\n",
              HumanBytes(session.GpuResidentBytes()).c_str());
  std::printf("quickstart OK\n");
  return 0;
}
