// Legal assistant (§8 use case 2): a statute corpus is stored; user A's
// conversation extends it; user B shares only the statute prefix. Partial
// context reuse (§7.1) lets B's session search user A's stored context
// *filtered to the shared prefix* — no re-prefill, no index rebuild.
#include <cstdio>
#include <vector>

#include "src/common/string_util.h"
#include "src/core/alaya_db.h"
#include "src/llm/qkv_generator.h"

using namespace alaya;

int main() {
  ModelConfig model{2, 4, 2, 64, 2};
  SyntheticContextOptions ctx_opts;
  ctx_opts.model = model;
  // QA profile: answers must be precise; critical sets are moderate.
  ctx_opts.spec = FindTask(InfinityBenchSuite(0.06), "En.QA");
  SyntheticContext corpus(ctx_opts);
  if (!corpus.Generate().ok()) return 1;

  DbOptions options;
  options.model = model;
  options.session.optimizer.short_context_threshold = 512;
  options.session.optimizer.dipr.beta =
      static_cast<float>(SuggestedDiprBeta(ctx_opts.spec, model.head_dim));
  options.session.optimizer.dipr.l0 = 128;
  options.session.window = WindowConfig{32, 128};
  AlayaDB db(options);

  // The stored context = statutes + user A's prior conversation. Only the
  // first 70% (the statutes) is shared material.
  const size_t statute_len = corpus.num_tokens() * 7 / 10;
  auto kv = std::make_unique<KvCache>(model);
  if (!kv->AppendAllFrom(corpus.kv()).ok()) return 1;
  auto training = corpus.MakeTrainingQueries(256);
  if (!db.Import(corpus.tokens(), std::move(kv), training.get()).ok()) return 1;
  std::printf("stored context: %zu tokens (statutes: first %zu)\n",
              corpus.num_tokens(), statute_len);

  // User B's prompt: the same statutes, then a fresh question.
  std::vector<int32_t> prompt(corpus.tokens().begin(),
                              corpus.tokens().begin() + statute_len);
  prompt.push_back(-1);
  prompt.push_back(-2);

  auto created = db.CreateSession(prompt);
  if (!created.ok()) return 1;
  Session& session = *created.value().session;
  std::printf("user B reuses %zu tokens (partial: %s); %zu tokens to prefill\n",
              created.value().reused_prefix,
              session.partial_reuse() ? "yes" : "no",
              created.value().truncated_prompt.size());

  // Prefill user B's new tokens through the session (update + attention).
  Rng rng(9);
  const size_t qdim = model.num_q_heads * model.head_dim;
  const size_t kvdim = model.num_kv_heads * model.head_dim;
  std::vector<float> q(qdim), k(kvdim), v(kvdim), o(qdim);
  for (size_t t = 0; t < created.value().truncated_prompt.size(); ++t) {
    for (uint32_t layer = 0; layer < model.num_layers; ++layer) {
      rng.FillGaussian(q.data(), qdim);
      rng.FillGaussian(k.data(), kvdim);
      rng.FillGaussian(v.data(), kvdim);
      if (!session.Update(layer, q.data(), k.data(), v.data()).ok()) return 1;
    }
  }

  // Decode: the optimizer adds the attribute-filter predicate automatically,
  // so retrieval only surfaces statute tokens — never user A's conversation.
  for (uint32_t layer = 0; layer < model.num_layers; ++layer) {
    corpus.MakeDecodeQueryLayer(0, layer, q.data());
    AttentionCallStats stats;
    if (!session.Attention(layer, q.data(), o.data(), &stats).ok()) return 1;
    std::printf("layer %u plan: %s | retrieved %zu | attended %zu\n", layer,
                stats.plan_explain.c_str(), stats.retrieved_tokens,
                stats.attended_tokens);
  }
  std::printf("legal_assistant OK\n");
  return 0;
}
