// MaaS-style serving: several concurrent sessions over different stored
// contexts, each decoding under a TPOT budget while the provider watches
// aggregate GPU memory. Demonstrates DB/Session isolation, concurrent
// read-only search over shared indices, and memory accounting.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/common/timer.h"
#include "src/common/string_util.h"
#include "src/core/alaya_db.h"
#include "src/llm/qkv_generator.h"

using namespace alaya;

int main() {
  ModelConfig model{2, 4, 2, 64, 2};
  DbOptions options;
  options.model = model;
  options.session.optimizer.short_context_threshold = 512;
  options.session.window = WindowConfig{32, 128};
  AlayaDB db(options);

  // Three tenants import three different documents.
  std::vector<std::unique_ptr<SyntheticContext>> docs;
  const char* tasks[] = {"En.QA", "En.MC", "Code.D"};
  for (int i = 0; i < 3; ++i) {
    SyntheticContextOptions copts;
    copts.model = model;
    copts.spec = FindTask(InfinityBenchSuite(0.04), tasks[i]);
    copts.spec.seed += static_cast<uint64_t>(i);
    auto doc = std::make_unique<SyntheticContext>(copts);
    if (!doc->Generate().ok()) return 1;
    auto kv = std::make_unique<KvCache>(model);
    if (!kv->AppendAllFrom(doc->kv()).ok()) return 1;
    auto training = doc->MakeTrainingQueries(128);
    if (!db.Import(doc->tokens(), std::move(kv), training.get()).ok()) return 1;
    std::printf("tenant %d imported %zu-token context (%s profile)\n", i,
                doc->num_tokens(), tasks[i]);
    docs.push_back(std::move(doc));
  }

  // Serve all three tenants concurrently.
  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  std::vector<double> worst_tpot(3, 0.0);
  for (int i = 0; i < 3; ++i) {
    workers.emplace_back([&, i] {
      auto created = db.CreateSession(docs[i]->tokens());
      if (!created.ok()) {
        failed = true;
        return;
      }
      Session& session = *created.value().session;
      const size_t qdim = model.num_q_heads * model.head_dim;
      std::vector<float> q(qdim), o(qdim);
      for (size_t step = 0; step < 4; ++step) {
        WallTimer tpot;
        for (uint32_t layer = 0; layer < model.num_layers; ++layer) {
          docs[i]->MakeDecodeQueryLayer(step, layer, q.data());
          if (!session.Attention(layer, q.data(), o.data()).ok()) {
            failed = true;
            return;
          }
        }
        worst_tpot[i] = std::max(worst_tpot[i], tpot.ElapsedSeconds());
      }
    });
  }
  for (auto& w : workers) w.join();
  if (failed.load()) {
    std::printf("serving failed\n");
    return 1;
  }

  for (int i = 0; i < 3; ++i) {
    std::printf("tenant %d: worst measured per-token latency %s\n", i,
                HumanSeconds(worst_tpot[i]).c_str());
  }
  std::printf("aggregate GPU memory: %s | host (offloaded KV + indices): %s\n",
              HumanBytes(db.env().gpu_memory().current()).c_str(),
              HumanBytes(db.env().host_memory().current()).c_str());
  std::printf("multi_session_serving OK\n");
  return 0;
}
