// MaaS-style serving through the live serving engine: Start() brings up the
// always-on driver, several tenants submit prompt requests to one AlayaDB
// front door and get back RequestHandles; the RequestScheduler admits them
// under a GPU memory budget at step boundaries, the ServingEngine decodes all
// admitted sessions concurrently (per-step DIPRS retrieval batched across
// sessions on the shared pool), and finished sessions materialize their
// extended contexts back into the store for future reuse (late
// materialization, §7.2). Tenant 0 streams its decoded output blocks through
// on_token; the fourth tenant's prompt extends past its stored context, so
// the engine prefills the unmatched suffix (batched UpdateBatch chunks,
// §7.1's partial prefix reuse) before it joins lockstep decode. Shutdown()
// drains gracefully.
#include <atomic>
#include <cstdio>
#include <memory>
#include <span>
#include <vector>

#include "src/common/string_util.h"
#include "src/core/alaya_db.h"
#include "src/llm/qkv_generator.h"
#include "src/server/serving_engine.h"

using namespace alaya;

int main() {
  ModelConfig model{2, 4, 2, 64, 2};
  DbOptions options;
  options.model = model;
  options.session.optimizer.short_context_threshold = 512;
  options.session.window = WindowConfig{32, 128};
  SimEnvironment env;
  AlayaDB db(options, &env);
  ThreadPool pool(4);

  // Three tenants import three different documents.
  std::vector<std::unique_ptr<SyntheticContext>> docs;
  const char* tasks[] = {"En.QA", "En.MC", "Code.D"};
  for (int i = 0; i < 3; ++i) {
    SyntheticContextOptions copts;
    copts.model = model;
    copts.spec = FindTask(InfinityBenchSuite(0.04), tasks[i]);
    // Widely-spaced per-tenant seeds: suite seeds are sequential, so a bare
    // `+= i` can collide two tasks onto one seed.
    copts.spec.seed += static_cast<uint64_t>(i) * 1000;
    copts.pool = &pool;
    auto doc = std::make_unique<SyntheticContext>(copts);
    if (!doc->Generate().ok()) return 1;
    auto kv = std::make_unique<KvCache>(model);
    if (!kv->AppendAllFrom(doc->kv()).ok()) return 1;
    auto training = doc->MakeTrainingQueries(128);
    if (!db.Import(doc->tokens(), std::move(kv), training.get()).ok()) return 1;
    std::printf("tenant %d imported %zu-token context (%s profile)\n", i,
                doc->num_tokens(), tasks[i]);
    docs.push_back(std::move(doc));
  }

  // The tenants' contexts are sharded across a two-GPU fleet (tenant i's
  // document is warm on device i % 2): placement-aware admission routes each
  // request to its warm device, and a request landing elsewhere would pay a
  // modeled cross-device window transfer.
  const std::vector<uint64_t> stored_ids = db.contexts().Ids();
  for (size_t i = 0; i < stored_ids.size(); ++i) {
    // FindShared pins the context; the borrowed Find() is test-only now that
    // the tiered store can evict concurrently with serving.
    db.contexts().FindShared(stored_ids[i])->set_resident_device(
        static_cast<int>(i % 2));
  }

  // The front door: all four tenants decode concurrently under per-device
  // budgets on the sharded fleet. Live lifecycle — Start() first, then submit
  // into the running engine; requests are admitted at step boundaries as they
  // arrive.
  ServingEngineOptions eopts;
  eopts.scheduler.max_concurrent_sessions = 4;
  eopts.scheduler.gpu_budget_bytes = 64ull << 20;  // Per device.
  eopts.devices = 2;
  eopts.pool = &pool;
  ServingEngine engine(&db, eopts);
  if (!engine.Start().ok()) return 1;

  constexpr size_t kPrefillSuffix = 24;
  std::atomic<size_t> streamed{0};
  std::vector<RequestHandle> handles;
  std::vector<uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    // Tenant 3 asks about tenant 0's document *plus* a fresh follow-up: only
    // the stored prefix is reused, the suffix goes through batched prefill.
    const SyntheticContext* doc = docs[i == 3 ? 0 : i].get();
    ServingRequest req;
    req.prompt = doc->tokens();
    if (i == 3) {
      for (size_t t = 0; t < kPrefillSuffix; ++t) {
        req.prompt.push_back(static_cast<int32_t>(5'000'000 + t));
      }
      req.fill_prompt = [model](size_t token, uint32_t layer, float* q, float* k,
                                float* v) {
        Rng rng(0xF111 ^ (token * 2654435761ull + layer));
        rng.FillGaussian(q, static_cast<size_t>(model.num_q_heads) * model.head_dim);
        rng.FillGaussian(k, static_cast<size_t>(model.num_kv_heads) * model.head_dim);
        rng.FillGaussian(v, static_cast<size_t>(model.num_kv_heads) * model.head_dim);
      };
    }
    req.max_new_tokens = 8;
    req.fill_step = [doc, model](size_t step, uint32_t layer, float* q, float* k,
                                 float* v) {
      doc->MakeDecodeQueryLayer(step, layer, q);
      Rng rng(0xA11CE ^ (step * 2654435761ull + layer));
      rng.FillGaussian(k, static_cast<size_t>(model.num_kv_heads) * model.head_dim);
      rng.FillGaussian(v, static_cast<size_t>(model.num_kv_heads) * model.head_dim);
    };
    // The third tenant saves its extended context for future prefix reuse.
    req.store_on_finish = (i == 2);
    // The first tenant streams: each decoded output block is delivered from
    // the step loop as it completes, instead of waiting for the full result.
    if (i == 0) {
      req.on_token = [&streamed](size_t, std::span<const float>) {
        streamed.fetch_add(1);
      };
    }
    auto id = engine.Submit(std::move(req));
    if (!id.ok()) {
      std::printf("submit failed: %s\n", id.status().ToString().c_str());
      return 1;
    }
    handles.push_back(id.value());
    ids.push_back(id.value().id());
  }

  // Live API: the engine is already running (Start above), so every request
  // was admitted at a step boundary as it arrived; Wait() blocks per handle.
  for (const RequestHandle& h : handles) {
    const RequestResult* r = h.Wait();
    if (r == nullptr) return 1;
  }
  std::printf("tenant 0 streamed %zu token blocks (first at ttft %.0f us)\n",
              streamed.load(),
              engine.result(ids[0])->ttft_seconds * 1e6);
  if (Status s = engine.Shutdown(); !s.ok()) {
    std::printf("serving failed: %s\n", s.ToString().c_str());
    return 1;
  }

  for (int i = 0; i < 4; ++i) {
    const RequestResult* r = engine.result(ids[i]);
    if (r == nullptr || !r->status.ok()) {
      std::printf("tenant %d failed\n", i);
      return 1;
    }
    std::printf("tenant %d: reused %zu-token prefix of context %llu, prefilled "
                "%zu, decoded %zu tokens, mean retrieved/step %.1f%s\n",
                i, r->reused_prefix,
                static_cast<unsigned long long>(r->reused_context_id),
                r->prefilled_tokens, r->steps_completed,
                static_cast<double>(r->stats.retrieved_tokens) /
                    static_cast<double>(r->steps_completed),
                r->stored_context_id != 0 ? " (context stored)" : "");
  }
  if (engine.result(ids[3])->prefilled_tokens != kPrefillSuffix) {
    std::printf("FAIL: tenant 3 should have prefilled %zu tokens\n", kPrefillSuffix);
    return 1;
  }
  if (streamed.load() != engine.result(ids[0])->steps_completed) {
    std::printf("FAIL: tenant 0 streamed %zu blocks, decoded %zu\n",
                streamed.load(), engine.result(ids[0])->steps_completed);
    return 1;
  }

  const ServingSnapshot snap = engine.snapshot();
  std::printf("aggregate: %zu prefilled + %zu decoded tokens at %.1f tok/s, peak "
              "%zu concurrent sessions, peak GPU %s | host (offloaded KV + "
              "indices): %s\n",
              snap.tokens_prefilled, snap.tokens_decoded, snap.tokens_per_second,
              snap.peak_concurrent_sessions, HumanBytes(snap.peak_gpu_bytes).c_str(),
              HumanBytes(env.host_memory().current()).c_str());
  std::printf("contexts in store after serving: %zu\n", db.contexts().size());

  // Per-device residency + placement (the sharded-serving observability).
  size_t devices_used = 0;
  for (const DeviceServingStats& ds : snap.devices) {
    if (ds.placements > 0) ++devices_used;
    std::printf("device %d: %zu placements (%zu cross-device reuses, %s "
                "transferred), %zu tokens, peak %s, modeled busy %.4fs\n",
                ds.device, ds.placements, ds.cross_device_reuses,
                HumanBytes(ds.transfer_bytes).c_str(),
                ds.tokens_decoded + ds.tokens_prefilled,
                HumanBytes(ds.peak_gpu_bytes).c_str(), ds.modeled_busy_seconds);
  }
  if (devices_used < 2) {
    std::printf("FAIL: expected the sharded store to spread tenants over both "
                "devices, got %zu\n", devices_used);
    return 1;
  }
  std::printf("multi_session_serving OK\n");
  return 0;
}
