// Figure 5: the number of critical tokens varies by orders of magnitude
// across heads. Red series: tokens needed per head to reach a 90% recovery
// ratio (exact, by sorting attention scores). Blue series: tokens selected by
// a DIPR query with one fixed beta — tracking the per-head requirement
// without per-head tuning.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/attention/attention_engine.h"
#include "src/index/flat_index.h"

namespace alaya {
namespace {

using bench::BenchModel;

size_t TokensForRecovery(const float* q, VectorSetView keys, double target) {
  std::vector<float> scores(keys.n);
  ExactAttentionScores(q, keys, keys.n, scores.data());
  std::sort(scores.begin(), scores.end(), std::greater<float>());
  double mass = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    mass += scores[i];
    if (mass >= target) return i + 1;
  }
  return scores.size();
}

void Run() {
  // KV-retrieval-style workload (the paper's Fig. 5 uses the ∞-Bench KV
  // retrieval dataset) on a 4-layer bench model to expose the layer trend.
  ModelConfig model{4, 8, 2, 64, 2};
  WorkloadSpec spec = FindTask(InfinityBenchSuite(bench::kContextScale), "Retr.KV");
  spec.decode_steps = 2;
  SyntheticContext ctx = bench::MakeContext(spec, model);
  const float beta = static_cast<float>(SuggestedDiprBeta(spec, model.head_dim));

  bench::Header("Figure 5", "critical tokens per head: 90% recovery vs DIPR(beta)");
  std::printf("model: %u layers x %u q-heads, d=%u | context=%zu | beta=%.0f\n",
              model.num_layers, model.num_q_heads, model.head_dim,
              ctx.num_tokens(), beta);
  std::printf("%-6s %-6s %12s %12s %12s\n", "layer", "head", "recov90", "dipr_sel",
              "head_factor");

  std::vector<float> q(model.head_dim);
  size_t min_recov = SIZE_MAX, max_recov = 0;
  double sum_recov = 0, sum_dipr = 0;
  size_t rows = 0;
  for (uint32_t layer = 0; layer < model.num_layers; ++layer) {
    for (uint32_t h = 0; h < model.num_q_heads; h += 2) {  // Sample heads.
      const uint32_t kvh = model.KvHeadForQuery(h);
      ctx.MakeDecodeQuery(0, layer, h, q.data());
      VectorSetView keys = ctx.kv().Keys(layer, kvh);
      const size_t recov = TokensForRecovery(q.data(), keys, 0.90);

      FlatIndex flat(keys);
      SearchResult res;
      DiprParams params;
      params.beta = beta;
      Status st = flat.SearchDipr(q.data(), params, &res);
      if (!st.ok()) std::abort();

      std::printf("%-6u %-6u %12zu %12zu %12.2f\n", layer, h, recov,
                  res.hits.size(), ctx.HeadFactor(layer, kvh));
      min_recov = std::min(min_recov, recov);
      max_recov = std::max(max_recov, recov);
      sum_recov += static_cast<double>(recov);
      sum_dipr += static_cast<double>(res.hits.size());
      ++rows;
    }
  }
  bench::Rule(78);
  std::printf("per-head 90%%-recovery spread: min=%zu max=%zu (%.0fx)\n", min_recov,
              max_recov, static_cast<double>(max_recov) / std::max<size_t>(1, min_recov));
  std::printf("mean recovery-90 tokens=%.1f | mean DIPR-selected=%.1f\n",
              sum_recov / rows, sum_dipr / rows);
  std::printf("expected shape (paper): spread of orders of magnitude across heads;\n"
              "DIPR's one beta tracks the per-head requirement.\n");
}

}  // namespace
}  // namespace alaya

int main() {
  alaya::Run();
  return 0;
}
