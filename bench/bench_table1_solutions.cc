// Table 1 / Figure 2: the four LLM-inference solution categories compared on
// the same workload — GPU memory, latency, and quality.
//   (1) coupled architecture  -> Full Attention, KV on device
//   (2) KV-cache disaggregation -> LMCache-style load-then-decode
//   (3) retrieval-based sparse attention -> Top-k (RetrievalAttention-style)
//   (4) AlayaDB -> DIPRS + window + data-centric engine
#include <cstdio>

#include "bench/bench_util.h"
#include "src/llm/quality.h"
#include "src/baselines/lmcache.h"

namespace alaya {
namespace {

void Run() {
  bench::Header("Table 1", "solution categories: memory / latency / quality");
  WorkloadSpec spec = FindTask(InfinityBenchSuite(bench::kContextScale), "En.QA");
  spec.decode_steps = 5;
  SyntheticContext ctx = bench::MakeContext(spec);
  SimEnvironment env;
  const double geom_scale =
      static_cast<double>(ModelConfig::Llama3_8B().KvBytesPerToken()) /
      static_cast<double>(ctx.model().KvBytesPerToken()) / bench::kContextScale;

  struct Row {
    std::string name;
    MethodSpec spec;
  };
  std::vector<Row> rows = {
      {"(1) coupled/full", MethodSpec::Full()},
      {"(3) sparse/top-k", MethodSpec::TopK(100)},
      {"(4) AlayaDB/DIPRS",
       MethodSpec::Diprs(static_cast<float>(
           SuggestedDiprBeta(spec, ctx.model().head_dim)))},
  };

  std::vector<MethodEval> evals;
  std::vector<uint64_t> gpu_bytes;
  for (auto& row : rows) {
    MethodRunner runner(ctx.model(), row.spec);
    if (!runner.Prepare(ctx, &env).ok()) std::abort();
    auto eval = EvaluateMethod(ctx, &runner, bench::ScaledEval(ctx.model(), 5));
    if (!eval.ok()) std::abort();
    evals.push_back(eval.TakeValue());
    gpu_bytes.push_back(runner.GpuBytes());
  }
  AnchorScores(&evals, spec.paper_full_score);

  // (2) KV-cache disaggregation: quality equals full attention (same math),
  // memory equals full attention during decode, TTFT dominated by the load.
  LmCacheStore lm(LmCacheOptions{}, &env);
  const size_t paper_tokens =
      static_cast<size_t>(ctx.num_tokens() / bench::kContextScale);
  if (!lm.StoreContextBytes(1, paper_tokens,
                            ModelConfig::Llama3_8B().KvBytesPerToken())
           .ok()) {
    std::abort();
  }
  auto load = lm.Load(1);

  std::printf("%-20s %14s %14s %10s %14s\n", "solution", "GPU KV mem", "TPOT",
              "quality", "reuse TTFT");
  auto print_row = [&](const std::string& name, uint64_t bytes, double tpot,
                       double score, double ttft) {
    std::printf("%-20s %14s %14s %10.1f %14s\n", name.c_str(),
                HumanBytes(static_cast<uint64_t>(bytes * geom_scale)).c_str(),
                HumanSeconds(tpot).c_str(), score, HumanSeconds(ttft).c_str());
  };
  print_row(rows[0].name, gpu_bytes[0], evals[0].tpot_seconds, evals[0].score,
            evals[0].tpot_seconds);
  print_row("(2) disagg/LMCache", gpu_bytes[0], evals[0].tpot_seconds, evals[0].score,
            load.value().total_seconds + evals[0].tpot_seconds);
  print_row(rows[1].name, gpu_bytes[1], evals[1].tpot_seconds, evals[1].score,
            evals[1].tpot_seconds);
  print_row(rows[2].name, gpu_bytes[2], evals[2].tpot_seconds, evals[2].score,
            evals[2].tpot_seconds);

  bench::Rule(78);
  std::printf(
      "expected shape (paper Table 1): (1) large memory/good quality, (2) adds\n"
      "reuse but still large memory + load latency, (3) small memory with a\n"
      "quality trade-off, (4) AlayaDB: small memory, low latency, high quality.\n");
}

}  // namespace
}  // namespace alaya

int main() {
  alaya::Run();
  return 0;
}
