// Table 5: generation quality of sparse-attention methods on the 8 ∞-Bench
// tasks, with the TPOT <= 0.24 s SLO check. Scores are anchored so Full
// Attention reproduces the paper's row; other methods scale by measured
// attention fidelity (DESIGN.md §2.2).
#include <cstdio>
#include <map>
#include <set>

#include "bench/bench_util.h"
#include "src/index/flat_index.h"
#include "src/index/roargraph.h"
#include "tests/test_util.h"

namespace alaya {
namespace {

/// Quantization quality gate: an int8-coded RoarGraph with fp32 rerank must
/// lose no more than 1% recall@10 against the exact fp32 oracle, relative to
/// the same graph traversed in fp32. Returns false (and the caller exits
/// non-zero) on violation — quantized traversal is only worth shipping if the
/// rerank pass recovers the ordering.
bool RunQuantRecallGate() {
  bench::Header("Quant gate", "int8 + rerank recall vs fp32 RoarGraph");
  constexpr size_t kN = 20000, kDim = 64, kPlanted = 200, kK = 10, kQueries = 64;
  testutil::PlantedMips data(kN, kDim, kPlanted, 23);
  VectorSet training = testutil::MakeTrainingQueries(data, 2000, 24);
  VectorSet probes = testutil::MakeTrainingQueries(data, kQueries, 25);

  RoarGraphOptions fp32_opts;
  RoarGraphOptions int8_opts;
  int8_opts.codec = VectorCodec::kInt8;
  int8_opts.rerank_k = 32;

  RoarGraph fp32_graph(data.keys.View(), fp32_opts);
  RoarGraph int8_graph(data.keys.View(), int8_opts);
  if (!fp32_graph.BuildFromQueries(training.View()).ok()) std::abort();
  if (!int8_graph.BuildFromQueries(training.View()).ok()) std::abort();
  FlatIndex oracle(data.keys.View());

  const TopKParams params{kK, 64};
  double recall_fp32 = 0, recall_int8 = 0;
  for (uint32_t qi = 0; qi < kQueries; ++qi) {
    const float* q = probes.View().Vec(qi);
    SearchResult exact, got32, got8;
    if (!oracle.SearchTopK(q, params, &exact).ok()) std::abort();
    if (!fp32_graph.SearchTopK(q, params, &got32).ok()) std::abort();
    if (!int8_graph.SearchTopK(q, params, &got8).ok()) std::abort();
    std::set<uint32_t> truth;
    for (const auto& h : exact.hits) truth.insert(h.id);
    size_t hit32 = 0, hit8 = 0;
    for (const auto& h : got32.hits) hit32 += truth.count(h.id);
    for (const auto& h : got8.hits) hit8 += truth.count(h.id);
    recall_fp32 += static_cast<double>(hit32) / truth.size();
    recall_int8 += static_cast<double>(hit8) / truth.size();
  }
  recall_fp32 /= kQueries;
  recall_int8 /= kQueries;
  const double loss = recall_fp32 - recall_int8;
  const bool pass = loss <= 0.01;
  std::printf(
      "recall@%zu over %zu queries: fp32 graph %.4f, int8+rerank graph %.4f\n"
      "recall loss %.4f (gate <= 0.0100): %s\n\n",
      kK, kQueries, recall_fp32, recall_int8, loss, pass ? "PASS" : "FAIL");
  return pass;
}

void Run() {
  bench::Header("Table 5", "quality on ∞-Bench tasks (anchored) + SLO check");
  auto suite = InfinityBenchSuite(bench::kContextScale);
  SimEnvironment env;

  std::vector<std::string> method_names;
  std::map<std::string, std::vector<double>> scores;
  std::map<std::string, bool> slo_ok;
  std::map<std::string, double> worst_tpot;

  std::printf("%-16s", "method");
  for (const auto& spec : suite) std::printf("%9s", spec.name.c_str());
  std::printf("%9s\n", "Avg.");

  for (const auto& task : suite) {
    WorkloadSpec spec = task;
    spec.decode_steps = 5;
    SyntheticContext ctx = bench::MakeContext(spec);
    auto methods = bench::Table5Methods(spec, ctx.model().head_dim);
    std::vector<MethodEval> evals;
    for (const auto& m : methods) {
      MethodRunner runner(ctx.model(), m);
      if (!runner.Prepare(ctx, &env).ok()) std::abort();
      EvalOptions opts = bench::ScaledEval(ctx.model(), spec.decode_steps);
      auto eval = EvaluateMethod(ctx, &runner, opts);
      if (!eval.ok()) std::abort();
      evals.push_back(eval.TakeValue());
    }
    AnchorScores(&evals, spec.paper_full_score);
    for (const auto& e : evals) {
      if (scores.find(e.label) == scores.end()) method_names.push_back(e.label);
      scores[e.label].push_back(e.score);
      auto it = slo_ok.find(e.label);
      if (it == slo_ok.end()) {
        slo_ok[e.label] = e.slo_met;
        worst_tpot[e.label] = e.tpot_seconds;
      } else {
        it->second = it->second && e.slo_met;
        worst_tpot[e.label] = std::max(worst_tpot[e.label], e.tpot_seconds);
      }
    }
  }

  for (const auto& name : method_names) {
    std::printf("%-16s", name.c_str());
    double sum = 0;
    for (double s : scores[name]) {
      std::printf("%9.1f", s);
      sum += s;
    }
    std::printf("%9.1f\n", sum / scores[name].size());
  }
  bench::Rule(78);
  std::printf("SLO (TPOT <= 0.24 s at Llama-3-8B-equivalent scale):\n");
  for (const auto& name : method_names) {
    std::printf("  %-16s %s (worst TPOT %s)\n", name.c_str(),
                slo_ok[name] ? "MET    " : "VIOLATED",
                HumanSeconds(worst_tpot[name]).c_str());
  }
  std::printf(
      "\nexpected shape (paper Table 5): DIPRS best average while meeting SLO;\n"
      "Top2000 comparable quality but SLO-violating; Top100 slightly behind\n"
      "DIPRS; StreamingLLM collapses on retrieval tasks; Full Attention\n"
      "violates the SLO on long contexts.\n");
}

}  // namespace
}  // namespace alaya

int main() {
  const bool quant_ok = alaya::RunQuantRecallGate();
  alaya::Run();
  return quant_ok ? 0 : 1;
}
