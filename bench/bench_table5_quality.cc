// Table 5: generation quality of sparse-attention methods on the 8 ∞-Bench
// tasks, with the TPOT <= 0.24 s SLO check. Scores are anchored so Full
// Attention reproduces the paper's row; other methods scale by measured
// attention fidelity (DESIGN.md §2.2).
#include <cstdio>
#include <map>

#include "bench/bench_util.h"

namespace alaya {
namespace {

void Run() {
  bench::Header("Table 5", "quality on ∞-Bench tasks (anchored) + SLO check");
  auto suite = InfinityBenchSuite(bench::kContextScale);
  SimEnvironment env;

  std::vector<std::string> method_names;
  std::map<std::string, std::vector<double>> scores;
  std::map<std::string, bool> slo_ok;
  std::map<std::string, double> worst_tpot;

  std::printf("%-16s", "method");
  for (const auto& spec : suite) std::printf("%9s", spec.name.c_str());
  std::printf("%9s\n", "Avg.");

  for (const auto& task : suite) {
    WorkloadSpec spec = task;
    spec.decode_steps = 5;
    SyntheticContext ctx = bench::MakeContext(spec);
    auto methods = bench::Table5Methods(spec, ctx.model().head_dim);
    std::vector<MethodEval> evals;
    for (const auto& m : methods) {
      MethodRunner runner(ctx.model(), m);
      if (!runner.Prepare(ctx, &env).ok()) std::abort();
      EvalOptions opts = bench::ScaledEval(ctx.model(), spec.decode_steps);
      auto eval = EvaluateMethod(ctx, &runner, opts);
      if (!eval.ok()) std::abort();
      evals.push_back(eval.TakeValue());
    }
    AnchorScores(&evals, spec.paper_full_score);
    for (const auto& e : evals) {
      if (scores.find(e.label) == scores.end()) method_names.push_back(e.label);
      scores[e.label].push_back(e.score);
      auto it = slo_ok.find(e.label);
      if (it == slo_ok.end()) {
        slo_ok[e.label] = e.slo_met;
        worst_tpot[e.label] = e.tpot_seconds;
      } else {
        it->second = it->second && e.slo_met;
        worst_tpot[e.label] = std::max(worst_tpot[e.label], e.tpot_seconds);
      }
    }
  }

  for (const auto& name : method_names) {
    std::printf("%-16s", name.c_str());
    double sum = 0;
    for (double s : scores[name]) {
      std::printf("%9.1f", s);
      sum += s;
    }
    std::printf("%9.1f\n", sum / scores[name].size());
  }
  bench::Rule(78);
  std::printf("SLO (TPOT <= 0.24 s at Llama-3-8B-equivalent scale):\n");
  for (const auto& name : method_names) {
    std::printf("  %-16s %s (worst TPOT %s)\n", name.c_str(),
                slo_ok[name] ? "MET    " : "VIOLATED",
                HumanSeconds(worst_tpot[name]).c_str());
  }
  std::printf(
      "\nexpected shape (paper Table 5): DIPRS best average while meeting SLO;\n"
      "Top2000 comparable quality but SLO-violating; Top100 slightly behind\n"
      "DIPRS; StreamingLLM collapses on retrieval tasks; Full Attention\n"
      "violates the SLO on long contexts.\n");
}

}  // namespace
}  // namespace alaya

int main() {
  alaya::Run();
  return 0;
}
