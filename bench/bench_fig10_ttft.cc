// Figure 10: TTFT when reusing a stored long context.
//   (a) TTFT vs context length for: w/o reuse (full prefill), LMCache-style
//       load-then-decode, and AlayaDB (decode directly on the offloaded cache
//       through its indices).
//   (b) latency breakdown (load vs decode) at the endpoints.
//
// The prefill and LMCache paths are modeled at the paper's geometry
// (Llama-3-8B bf16, real token counts). The AlayaDB path *measures* decode on
// a scaled-down context and scales to model equivalents (bench_util.h).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baselines/lmcache.h"
#include "src/core/alaya_db.h"

namespace alaya {
namespace {

struct AlayaPoint {
  double ttft_seconds;
  double decode_seconds;
};

AlayaPoint MeasureAlayaDecode(size_t paper_tokens) {
  // Scaled measured decode: context at 1/16 of the paper length.
  ModelConfig model = bench::BenchModel();
  WorkloadSpec spec = FindTask(InfinityBenchSuite(1.0), "En.QA");
  spec.context_tokens = paper_tokens / 16;
  spec.decode_steps = 2;
  SyntheticContext ctx = bench::MakeContext(spec, model);
  SimEnvironment env;

  const float beta = static_cast<float>(SuggestedDiprBeta(spec, model.head_dim));
  MethodRunner runner(model, MethodSpec::Diprs(beta));
  if (!runner.Prepare(ctx, &env).ok()) std::abort();
  EvalOptions opts = bench::ScaledEval(model, 2, 1.0 / 16.0);
  auto eval = EvaluateMethod(ctx, &runner, opts);
  if (!eval.ok()) std::abort();
  // TTFT for AlayaDB == the first decode step on the offloaded cache (no KV
  // load), i.e. the scaled TPOT.
  return {eval.value().tpot_seconds, eval.value().tpot_seconds};
}

void Run() {
  bench::Header("Figure 10", "TTFT of long-context reuse: w/o reuse vs LMCache vs AlayaDB");
  const ModelConfig paper = ModelConfig::Llama3_8B();
  SimEnvironment env;
  LmCacheStore lmcache(LmCacheOptions{}, &env);
  const CostModel& cost = env.cost_model();

  std::printf("%-10s %16s %16s %16s\n", "context", "w/o reuse(s)", "LMCache(s)",
              "AlayaDB(s)");
  struct Breakdown {
    size_t tokens;
    double load, decode, alaya;
  };
  std::vector<Breakdown> endpoints;

  for (size_t tokens : {40000u, 80000u, 120000u, 160000u, 200000u}) {
    // w/o reuse: full O(n^2) prefill on the device.
    const double prefill = cost.GpuAttentionSeconds(PrefillAttentionFlops(
                               tokens, paper.num_q_heads, paper.head_dim,
                               paper.num_layers)) *
                           8.0;  // HF-eager inefficiency vs ideal GEMM rate.

    // LMCache: store once, then decompress + transfer + one decode step.
    const uint64_t id = tokens;
    if (!lmcache.StoreContextBytes(id, tokens, paper.KvBytesPerToken()).ok()) {
      std::abort();
    }
    auto load = lmcache.Load(id);
    if (!load.ok()) std::abort();
    const double lm_decode = cost.HfDecodeAttentionSeconds(
        static_cast<uint64_t>(tokens) * paper.KvBytesPerToken());
    const double lm_total = load.value().total_seconds + lm_decode;

    const AlayaPoint alaya = MeasureAlayaDecode(tokens);

    std::printf("%-10zu %16.2f %16.2f %16.3f\n", tokens, prefill, lm_total,
                alaya.ttft_seconds);
    if (tokens == 40000u || tokens == 200000u) {
      endpoints.push_back({tokens, load.value().total_seconds, lm_decode,
                           alaya.ttft_seconds});
    }
  }

  bench::Rule(78);
  std::printf("Figure 10(b) — latency breakdown (seconds):\n");
  std::printf("%-10s %16s %16s %16s\n", "context", "LMCache load", "LMCache decode",
              "AlayaDB decode");
  for (const auto& e : endpoints) {
    std::printf("%-10zu %16.2f %16.2f %16.3f\n", e.tokens, e.load, e.decode, e.alaya);
  }
  std::printf(
      "\nexpected shape (paper): reuse beats recompute by 2-3 orders of\n"
      "magnitude; AlayaDB beats LMCache by 19-42x because it never ships the\n"
      "KV cache — LMCache load time grows linearly with context length.\n");
}

}  // namespace
}  // namespace alaya

int main() {
  alaya::Run();
  return 0;
}
