// Shared helpers for the table/figure reproduction benches.
//
// Scaling (EXPERIMENTS.md): benches run a reduced geometry (fewer layers and
// heads, d=64, contexts scaled down from the paper's 44K-192K averages) so CPU
// full-attention references stay feasible. Reported latencies are scaled to
// Llama-3-8B equivalents via MakeScaledEvalOptions; modeled device costs for
// the TTFT/prefill paths use the paper's geometry and token counts directly.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/string_util.h"
#include "src/llm/inference_sim.h"
#include "src/llm/qkv_generator.h"
#include "src/llm/workloads.h"

namespace alaya {
namespace bench {

/// Default bench geometry: 2 layers, 4 query heads, 2 KV heads (GQA 2:1),
/// head dim 64.
inline ModelConfig BenchModel() { return ModelConfig{2, 4, 2, 64, 2}; }

/// Context scale relative to the paper's ∞-Bench averages.
inline constexpr double kContextScale = 1.0 / 16.0;

/// Builds and generates a synthetic context for a task.
inline SyntheticContext MakeContext(const WorkloadSpec& spec,
                                    ModelConfig model = BenchModel(),
                                    uint32_t num_topics = 8) {
  SyntheticContextOptions opts;
  opts.model = model;
  opts.spec = spec;
  opts.num_topics = num_topics;
  SyntheticContext ctx(opts);
  Status st = ctx.Generate();
  if (!st.ok()) {
    std::fprintf(stderr, "context generation failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  return ctx;
}

/// Eval options with latencies scaled to Llama-3-8B equivalents, including the
/// context-length scale (decode attention and KV bytes are linear in n).
inline EvalOptions ScaledEval(const ModelConfig& model, size_t steps,
                              double context_scale = kContextScale) {
  EvalOptions opts = MakeScaledEvalOptions(model);
  opts.decode_steps = steps;
  // Context-linear device work (full-attention streaming) additionally scales
  // by the context reduction; window/cache work does not.
  opts.gpu_ctx_scale /= context_scale;
  // Host work: dot products scale with head_dim; graph searches walk deeper on
  // the full-size context (log of the token ratio, ~1.3 at 1/16 scale).
  const double dim_ratio = 128.0 / model.head_dim;
  const double depth_ratio =
      std::log(140000.0) / std::log(140000.0 * context_scale);
  opts.cpu_work_scale = dim_ratio * depth_ratio;
  return opts;
}

/// The Table 5 method roster for a task.
inline std::vector<MethodSpec> Table5Methods(const WorkloadSpec& spec,
                                             uint32_t head_dim) {
  // Paper settings, with window/cache budgets (fractions of the context)
  // scaled by kContextScale: InfLLM [128+4K]+4K, StreamingLLM [128]+8K,
  // Top-k and DIPRS [128+512]+retrieved. Retrieval budgets k and beta stay
  // absolute: the planted critical-set sizes are paper-absolute too.
  const float beta = static_cast<float>(SuggestedDiprBeta(spec, head_dim));
  const auto scaled = [](size_t tokens) {
    return static_cast<uint32_t>(std::max<size_t>(8, tokens * kContextScale));
  };
  const WindowConfig fine_window{scaled(128), scaled(512)};
  std::vector<MethodSpec> methods;
  methods.push_back(MethodSpec::Full());
  // InfLLM's 4K *retrieval* budget is absolute (like k); its local window is
  // a context fraction and scales.
  MethodSpec infllm = MethodSpec::InfLlm(4096, scaled(4096));
  infllm.window.initial_tokens = scaled(128);
  infllm.infllm_block = 32;
  methods.push_back(infllm);
  MethodSpec streaming = MethodSpec::Streaming(scaled(8192));
  streaming.window.initial_tokens = scaled(128);
  methods.push_back(streaming);
  MethodSpec top100 = MethodSpec::TopK(100);
  top100.window = fine_window;
  methods.push_back(top100);
  MethodSpec top2000 = MethodSpec::TopK(2000);
  top2000.window = fine_window;
  methods.push_back(top2000);
  MethodSpec diprs = MethodSpec::Diprs(beta);
  diprs.window = fine_window;
  methods.push_back(diprs);
  return methods;
}

/// Prints a horizontal rule sized to `width`.
inline void Rule(size_t width) {
  std::string line(width, '-');
  std::printf("%s\n", line.c_str());
}

/// Prints a bench header with provenance.
inline void Header(const std::string& id, const std::string& what) {
  Rule(78);
  std::printf("%s  |  %s\n", id.c_str(), what.c_str());
  Rule(78);
}

}  // namespace bench
}  // namespace alaya
