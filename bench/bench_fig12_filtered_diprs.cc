// Figure 12: micro-benchmark of filter-based DIPRS for partial context reuse
// (§7.1). The reused prefix is fixed while the stored context (= index size)
// grows, dropping the reuse ratio from 100% to 20%. Reported: recall of the
// filtered search against an exact filtered scan, and per-query latency.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/timer.h"
#include "src/index/flat_index.h"
#include "src/index/roargraph.h"
#include "src/query/diprs.h"

namespace alaya {
namespace {

void Run() {
  bench::Header("Figure 12", "filter-based DIPRS: recall & latency vs reuse ratio");
  ModelConfig model{1, 2, 1, 64, 2};
  const size_t kPrefix = 4000;  // Paper: 40K; scaled 1/10.
  std::printf("prefix fixed at %zu tokens (paper: 40K)\n", kPrefix);
  std::printf("%-12s %-12s %10s %14s\n", "index_size", "reuse", "recall",
              "latency(ms)");

  for (double ratio : {1.0, 0.8, 0.6, 0.4, 0.2}) {
    const size_t stored = static_cast<size_t>(kPrefix / ratio);
    WorkloadSpec spec = FindTask(InfinityBenchSuite(1.0), "En.QA");
    spec.context_tokens = stored;
    spec.decode_steps = 8;
    SyntheticContext ctx = bench::MakeContext(spec, model);

    RoarGraphOptions ropts;
    RoarGraph graph(ctx.kv().Keys(0, 0), ropts);
    auto training = ctx.MakeTrainingQueries(stored * 2 / 10);
    if (!graph.BuildFromQueries(training->View(0, 0)).ok()) std::abort();

    FlatIndex flat(ctx.kv().Keys(0, 0));
    IdFilter filter;
    filter.prefix_len = static_cast<uint32_t>(kPrefix);
    DiprParams params;
    params.beta = static_cast<float>(SuggestedDiprBeta(spec, model.head_dim));
    params.l0 = 128;

    double recall_sum = 0;
    size_t recall_n = 0;
    AccumTimer latency;
    std::vector<float> q(model.head_dim);
    for (size_t step = 0; step < spec.decode_steps; ++step) {
      ctx.MakeDecodeQuery(step, 0, 0, q.data());
      // Exact filtered DIPR (oracle).
      SearchResult oracle;
      if (!flat.SearchDiprFiltered(q.data(), params, filter, &oracle).ok()) {
        std::abort();
      }
      latency.Start();
      SearchResult got = DiprsSearchFiltered(graph.graph(), graph.vectors(),
                                             graph.EntryPoint(q.data()), q.data(),
                                             params, filter);
      latency.Stop();
      if (oracle.hits.empty()) continue;
      std::vector<bool> found(stored, false);
      for (const auto& h : got.hits) found[h.id] = true;
      size_t inter = 0;
      for (const auto& h : oracle.hits) {
        if (found[h.id]) ++inter;
      }
      recall_sum += static_cast<double>(inter) / oracle.hits.size();
      ++recall_n;
    }
    std::printf("%-12zu %10.0f%% %10.3f %14.3f\n", stored, ratio * 100,
                recall_sum / std::max<size_t>(1, recall_n),
                latency.TotalMillis() / spec.decode_steps);
  }
  bench::Rule(78);
  std::printf(
      "expected shape (paper): recall stays high at every reuse ratio; latency\n"
      "grows only slightly as the index outgrows the reused prefix (the 2-hop\n"
      "expansion keeps the search scope, paper: +1.13 ms from 40K to 200K).\n");
}

}  // namespace
}  // namespace alaya

int main() {
  alaya::Run();
  return 0;
}
