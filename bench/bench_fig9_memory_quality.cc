// Figure 9: generation quality vs GPU memory consumption under the SLO, on
// En.MC and En.QA. InfLLM / StreamingLLM sweep their device-cached token
// budget; Top100 and DIPRS are single points (window-only device residency).
// Reported memory = method bytes + the model-weight constant (15.4 GB on the
// paper's L20), both at Llama-3-8B-equivalent scale.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/llm/quality.h"

namespace alaya {
namespace {

constexpr double kWeightsGb = 15.4;

void RunTask(const char* name) {
  WorkloadSpec spec = FindTask(InfinityBenchSuite(bench::kContextScale), name);
  spec.decode_steps = 5;
  SyntheticContext ctx = bench::MakeContext(spec);
  SimEnvironment env;

  // KV-byte scale from bench geometry to Llama-3-8B at paper context length.
  const double geom_scale =
      static_cast<double>(ModelConfig::Llama3_8B().KvBytesPerToken()) /
      static_cast<double>(ctx.model().KvBytesPerToken()) / bench::kContextScale;

  MethodRunner full(ctx.model(), MethodSpec::Full());
  if (!full.Prepare(ctx, &env).ok()) std::abort();
  auto full_eval = EvaluateMethod(ctx, &full, bench::ScaledEval(ctx.model(), 5));
  const double full_fid = full_eval.value().fidelity;

  std::printf("\n[%s] context=%zu (x%zu at paper scale)\n", name, ctx.num_tokens(),
              static_cast<size_t>(1.0 / bench::kContextScale));
  std::printf("%-14s %14s %12s %10s\n", "method", "gpu_mem(GB)", "score", "slo");

  auto report = [&](const MethodSpec& m) {
    MethodRunner runner(ctx.model(), m);
    if (!runner.Prepare(ctx, &env).ok()) std::abort();
    auto eval = EvaluateMethod(ctx, &runner, bench::ScaledEval(ctx.model(), 5));
    if (!eval.ok()) std::abort();
    const double gb =
        kWeightsGb + static_cast<double>(runner.GpuBytes()) * geom_scale / 1e9;
    const double score =
        AnchoredScore(eval.value().fidelity, full_fid, spec.paper_full_score);
    std::printf("%-14s %14.2f %12.1f %10s\n", m.label.c_str(), gb, score,
                eval.value().slo_met ? "met" : "violated");
  };

  for (size_t cache : {1024u, 2048u, 4096u, 8192u}) {
    MethodSpec m = MethodSpec::InfLlm(cache, /*recent=*/512);
    m.label = StrFormat("InfLLM/%zuK", cache / 1024);
    report(m);
  }
  for (size_t window : {1024u, 2048u, 4096u, 8192u}) {
    MethodSpec m = MethodSpec::Streaming(window);
    m.label = StrFormat("Stream/%zuK", window / 1024);
    report(m);
  }
  report(MethodSpec::TopK(100));
  report(MethodSpec::Diprs(static_cast<float>(
      SuggestedDiprBeta(spec, ctx.model().head_dim))));
}

}  // namespace
}  // namespace alaya

int main() {
  alaya::bench::Header("Figure 9",
                       "quality vs GPU memory with SLO guarantees (En.MC, En.QA)");
  alaya::RunTask("En.MC");
  alaya::RunTask("En.QA");
  alaya::bench::Rule(78);
  std::printf(
      "expected shape (paper): DIPRS reaches the best quality at the lowest\n"
      "device memory; InfLLM/StreamingLLM need several extra GB to approach it,\n"
      "pushing past consumer-GPU budgets (e.g. 24 GB RTX4090).\n");
  return 0;
}
