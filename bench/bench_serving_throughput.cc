// Serving throughput: aggregate decode tokens/sec as the number of concurrent
// sessions grows — the multi-tenant dimension the paper's MaaS scenario (§2)
// adds on top of per-query latency. Each tenant decodes over its own imported
// context; the engine batches every step's (session, layer, head) DIPRS
// queries across sessions onto the shared pool, and the scheduler keeps the
// set of admitted sessions under the GPU memory budget.
//
// --prefill-fraction <f> (default 0) imports only the first (1-f) of each
// tenant's document and prompts with the full document, so f of every prompt
// flows through the engine's batched prefill phase before decode — the
// partial-prefix-reuse serving path (§7.1).
//
// --store-fraction <f> (default 0) marks f of the requests store_on_finish,
// so their retirement hands the session off to the background materialization
// queue (DB.store_async) — the late-materialization serving path (§7.2). A
// retire-path stall (a store blocking the step loop) shows up directly in the
// reported wall seconds, which is why CI smoke-runs this flag.
//
// --open-loop <arrivals/s> switches to an open-loop run against the LIVE
// engine API: Start() brings up the always-on driver, then requests arrive on
// a Poisson process (seeded RNG — reproducible) and are admitted continuously
// — a newcomer's first prefill chunk runs inside whatever step is already in
// flight (mid-step admission) and prefilling sessions interleave with
// decoding ones under the per-step token budget. Reports per-request p50/p99
// TTFT (Submit -> first decoded block, from RequestResult::ttft_seconds) and
// TPOT (decode wall seconds per token) — the latency axes a closed-loop run
// hides. Honors --prefill-fraction, so the TTFT tail actually exercises the
// chunked-prefill path. With --json, the same trace is first replayed against
// a phase-serialized configuration (no step budget, no mid-step admission —
// the pre-continuous-batching engine) and its percentiles land in the JSON as
// baseline_*, so CI can assert the p99 TTFT win without a second binary.
//
// --step-budget <tokens> (default 64 in open-loop, 0 = unlimited elsewhere)
// sets RequestSchedulerOptions::step_token_budget for the main open-loop run;
// --no-midstep disables ServingEngineOptions::midstep_admission, which
// reduces the engine to boundary-only admission (the baseline behavior).
//
// --devices <n> (default 1) serves over a sharded fleet: each tenant's
// context is re-homed round-robin across the devices (as a sharded store
// would leave them), placement routes requests to their warm device, and a
// per-device table reports placements, cross-device reuses, residency peaks
// and modeled busy seconds (utilization).
//
// --host-budget <MiB> (default 0 = unbounded) caps the host bytes the context
// store keeps resident: publishing past the cap spills cold contexts to the
// tiered store's backing and prefix hits demand-page them back — the tier
// spill/page-in/prefetch counters land in the JSON summary, so CI tracks how
// much disk traffic a budgeted store generates.
//
// --json <path> additionally emits the machine-readable summary CI archives
// as BENCH_serving.json — p50/p99 TTFT and TPOT, aggregate throughput, tier
// counters, and the per-device counters — the start of the perf trajectory.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/string_util.h"
#include "src/common/timer.h"
#include "src/server/serving_engine.h"

using namespace alaya;

namespace {

struct Tenant {
  std::unique_ptr<SyntheticContext> doc;
  size_t imported_tokens = 0;
};

ServingRequest MakeRequest(const Tenant& tenant, size_t steps, bool store) {
  ServingRequest r;
  r.prompt = tenant.doc->tokens();
  r.max_new_tokens = steps;
  r.store_on_finish = store;
  const ModelConfig model = tenant.doc->model();
  const SyntheticContext* d = tenant.doc.get();
  r.fill_step = [d, model](size_t step, uint32_t layer, float* q, float* k,
                           float* v) {
    d->MakeDecodeQueryLayer(step, layer, q);
    // Decoded K/V: derived deterministically from the decode query so the
    // local tail is well-defined without running a real FFN.
    Rng rng(0xC0FFEE ^ (step * 1315423911ull + layer));
    rng.FillGaussian(k, static_cast<size_t>(model.num_kv_heads) * model.head_dim);
    rng.FillGaussian(v, static_cast<size_t>(model.num_kv_heads) * model.head_dim);
  };
  // Prompt tokens past the imported prefix prefill with the document's own
  // K/V rows (so prefilled sessions see exactly the document content) and a
  // deterministic synthetic query.
  r.fill_prompt = [d, model](size_t token, uint32_t layer, float* q, float* k,
                             float* v) {
    Rng rng(0x9E3779B9 ^ (token * 2654435761ull + layer));
    rng.FillGaussian(q, static_cast<size_t>(model.num_q_heads) * model.head_dim);
    for (uint32_t h = 0; h < model.num_kv_heads; ++h) {
      const float* kk = d->kv().Keys(layer, h).Vec(static_cast<uint32_t>(token));
      const float* vv = d->kv().Values(layer, h).Vec(static_cast<uint32_t>(token));
      std::memcpy(k + static_cast<size_t>(h) * model.head_dim, kk,
                  model.head_dim * sizeof(float));
      std::memcpy(v + static_cast<size_t>(h) * model.head_dim, vv,
                  model.head_dim * sizeof(float));
    }
  };
  return r;
}

/// Nearest-rank percentile (q in [0, 1]) of an unsorted sample.
double Percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t rank = std::min(
      v.size() - 1, static_cast<size_t>(q * static_cast<double>(v.size() - 1) + 0.5));
  return v[rank];
}

/// Re-homes stored contexts round-robin across the fleet, the state a
/// sharded store would be in; the placement affinity then spreads tenants.
void ShardContextsAcrossDevices(AlayaDB& db, size_t devices) {
  if (devices <= 1) return;
  size_t i = 0;
  for (uint64_t id : db.contexts().Ids()) {
    // FindShared (not the test-only borrowed Find): with a host budget the
    // tiered store may evict concurrently, and a spilled id returns null —
    // it keeps the affinity it had at spill time, so skipping it is correct.
    if (std::shared_ptr<Context> ctx = db.contexts().FindShared(id)) {
      ctx->set_resident_device(static_cast<int>(i % devices));
    }
    ++i;
  }
}

void PrintDeviceTable(const ServingSnapshot& snap) {
  if (snap.devices.size() <= 1) return;
  std::printf("\n%8s %12s %12s %12s %12s %12s %14s\n", "device", "placements",
              "xdev-reuse", "transfer", "tokens", "peak-gpu", "busy-seconds");
  for (const DeviceServingStats& ds : snap.devices) {
    std::printf("%8d %12zu %12zu %12s %12zu %12s %14.4f\n", ds.device,
                ds.placements, ds.cross_device_reuses,
                HumanBytes(ds.transfer_bytes).c_str(),
                ds.tokens_decoded + ds.tokens_prefilled,
                HumanBytes(ds.peak_gpu_bytes).c_str(), ds.modeled_busy_seconds);
  }
}

/// One complete open-loop pass: the latency samples plus the final snapshot.
struct OpenLoopResult {
  std::vector<double> ttft_s, tpot_s;
  double tokens_per_second = 0;
  double wall_seconds = 0;
  ServingSnapshot snap;
};

/// Machine-readable run summary (one JSON object; schema kept flat and
/// additive so CI's BENCH_serving.json artifacts stay comparable over time).
/// `baseline` (open-loop only) carries the phase-serialized pass so the
/// continuous-batching TTFT delta is auditable from the artifact alone.
bool WriteBenchJson(const char* path, const char* mode, size_t requests,
                    const std::vector<double>& ttft_s,
                    const std::vector<double>& tpot_s, double tokens_per_second,
                    double wall_seconds, const ServingSnapshot& snap,
                    size_t step_token_budget = 0, bool midstep = false,
                    const OpenLoopResult* baseline = nullptr) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open --json path %s\n", path);
    return false;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", mode);
  std::fprintf(f, "  \"requests\": %zu,\n", requests);
  std::fprintf(f, "  \"step_token_budget\": %zu,\n", step_token_budget);
  std::fprintf(f, "  \"midstep_admission\": %s,\n", midstep ? "true" : "false");
  std::fprintf(f, "  \"midstep_admissions\": %zu,\n", snap.midstep_admissions);
  if (baseline != nullptr) {
    std::fprintf(f, "  \"baseline_ttft_p50_ms\": %.3f,\n",
                 Percentile(baseline->ttft_s, 0.5) * 1e3);
    std::fprintf(f, "  \"baseline_ttft_p99_ms\": %.3f,\n",
                 Percentile(baseline->ttft_s, 0.99) * 1e3);
    std::fprintf(f, "  \"baseline_tpot_p50_ms\": %.3f,\n",
                 Percentile(baseline->tpot_s, 0.5) * 1e3);
    std::fprintf(f, "  \"baseline_tpot_p99_ms\": %.3f,\n",
                 Percentile(baseline->tpot_s, 0.99) * 1e3);
  }
  std::fprintf(f, "  \"tokens_decoded\": %zu,\n", snap.tokens_decoded);
  std::fprintf(f, "  \"tokens_prefilled\": %zu,\n", snap.tokens_prefilled);
  std::fprintf(f, "  \"tokens_per_second\": %.3f,\n", tokens_per_second);
  std::fprintf(f, "  \"wall_seconds\": %.6f,\n", wall_seconds);
  std::fprintf(f, "  \"ttft_p50_ms\": %.3f,\n", Percentile(ttft_s, 0.5) * 1e3);
  std::fprintf(f, "  \"ttft_p99_ms\": %.3f,\n", Percentile(ttft_s, 0.99) * 1e3);
  std::fprintf(f, "  \"tpot_p50_ms\": %.3f,\n", Percentile(tpot_s, 0.5) * 1e3);
  std::fprintf(f, "  \"tpot_p99_ms\": %.3f,\n", Percentile(tpot_s, 0.99) * 1e3);
  std::fprintf(f, "  \"peak_gpu_bytes\": %llu,\n",
               static_cast<unsigned long long>(snap.peak_gpu_bytes));
  std::fprintf(f, "  \"peak_concurrent_sessions\": %zu,\n",
               snap.peak_concurrent_sessions);
  // Tiered-store counters (all zero when --host-budget is unset): how often
  // the budget spilled a context, how many disk hits paged one back in, and
  // how many of those were warmed at admission time.
  std::fprintf(f, "  \"tier_spills\": %llu,\n",
               static_cast<unsigned long long>(snap.tier_spills));
  std::fprintf(f, "  \"tier_page_ins\": %llu,\n",
               static_cast<unsigned long long>(snap.tier_page_ins));
  std::fprintf(f, "  \"tier_prefetches\": %llu,\n",
               static_cast<unsigned long long>(snap.tier_prefetches));
  std::fprintf(f, "  \"tier_resident_contexts\": %zu,\n",
               snap.tier_resident_contexts);
  std::fprintf(f, "  \"tier_spilled_contexts\": %zu,\n", snap.tier_spilled_contexts);
  std::fprintf(f, "  \"devices\": [");
  for (size_t d = 0; d < snap.devices.size(); ++d) {
    const DeviceServingStats& ds = snap.devices[d];
    std::fprintf(f,
                 "%s\n    {\"device\": %d, \"placements\": %zu, "
                 "\"cross_device_reuses\": %zu, \"transfer_bytes\": %llu, "
                 "\"tokens_decoded\": %zu, \"tokens_prefilled\": %zu, "
                 "\"peak_gpu_bytes\": %llu, \"modeled_busy_seconds\": %.6f}",
                 d == 0 ? "" : ",", ds.device, ds.placements,
                 ds.cross_device_reuses,
                 static_cast<unsigned long long>(ds.transfer_bytes),
                 ds.tokens_decoded, ds.tokens_prefilled,
                 static_cast<unsigned long long>(ds.peak_gpu_bytes),
                 ds.modeled_busy_seconds);
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
  return true;
}

/// Engine-side knobs one open-loop pass runs under.
struct OpenLoopConfig {
  double arrivals_per_sec = 0;
  size_t devices = 1;
  uint64_t host_budget_bytes = 0;
  double prefill_fraction = 0;
  size_t step_token_budget = 0;
  size_t prefill_chunk_tokens = 0;  ///< 0 = scheduler default.
  bool midstep = true;
};

constexpr size_t kOpenLoopTenants = 4;
constexpr size_t kOpenLoopRequests = 24;
constexpr size_t kOpenLoopSteps = 12;

/// One Poisson pass against the live engine. A fresh DB per pass keeps the
/// baseline and the continuous-batching run byte-comparable (same imported
/// prefixes, same arrival trace from the same seeded RNG). Returns 0 on
/// success; validates that every request completed with a measured TTFT.
int RunOpenLoopOnce(const OpenLoopConfig& cfg, OpenLoopResult* out) {
  const ModelConfig model = bench::BenchModel();
  const auto suite = InfinityBenchSuite(0.04);
  const char* tasks[] = {"En.QA", "En.MC", "Code.D", "Math.F"};

  ThreadPool pool(4);
  SimEnvironment env;
  DbOptions options;
  options.model = model;
  options.session.optimizer.short_context_threshold = 512;
  options.session.window = WindowConfig{32, 128};
  options.materialize_pool = &pool;
  options.tier.host_budget_bytes = cfg.host_budget_bytes;
  AlayaDB db(options, &env);

  size_t expected_prefill_per_round = 0;
  std::vector<Tenant> tenants;
  for (size_t i = 0; i < kOpenLoopTenants; ++i) {
    SyntheticContextOptions copts;
    copts.model = model;
    copts.spec = FindTask(suite, tasks[i]);
    copts.spec.seed += i * 1000;
    copts.pool = &pool;
    auto doc = std::make_unique<SyntheticContext>(copts);
    if (!doc->Generate().ok()) return 1;
    // Import only the reusable prefix; every request over this tenant then
    // prefills the remaining suffix of its prompt through the chunked path.
    const size_t import_tokens = static_cast<size_t>(
        static_cast<double>(doc->num_tokens()) * (1.0 - cfg.prefill_fraction));
    auto kv = std::make_unique<KvCache>(model);
    if (!kv->AppendPrefixFrom(doc->kv(), import_tokens).ok()) return 1;
    std::vector<int32_t> tokens(doc->tokens().begin(),
                                doc->tokens().begin() +
                                    static_cast<long>(import_tokens));
    auto training = doc->MakeTrainingQueries(128);
    if (!db.Import(std::move(tokens), std::move(kv), training.get()).ok()) return 1;
    expected_prefill_per_round += doc->num_tokens() - import_tokens;
    tenants.push_back(Tenant{std::move(doc), import_tokens});
  }

  ShardContextsAcrossDevices(db, cfg.devices);
  ServingEngineOptions eopts;
  // 6 slots against 24 requests: deep enough that queueing shows, loose
  // enough that slots are free while steps run — the regime where mid-step
  // admission (vs waiting for the boundary) actually changes TTFT.
  eopts.scheduler.max_concurrent_sessions = 6;
  eopts.scheduler.step_token_budget = cfg.step_token_budget;
  if (cfg.prefill_chunk_tokens > 0) {
    eopts.scheduler.prefill_chunk_tokens = cfg.prefill_chunk_tokens;
  }
  eopts.midstep_admission = cfg.midstep;
  eopts.devices = cfg.devices;
  eopts.pool = &pool;
  ServingEngine engine(&db, eopts);
  if (Status s = engine.Start(); !s.ok()) {
    std::fprintf(stderr, "start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Seeded exponential interarrivals: the trace is identical run to run, so
  // latency regressions are attributable to the engine, not the workload.
  Rng rng(0x09E17007);
  WallTimer wall;
  std::vector<RequestHandle> handles;
  for (size_t i = 0; i < kOpenLoopRequests; ++i) {
    if (i > 0) {
      const double gap = -std::log(1.0 - rng.Uniform()) / cfg.arrivals_per_sec;
      std::this_thread::sleep_for(std::chrono::duration<double>(gap));
    }
    auto h = engine.Submit(
        MakeRequest(tenants[i % kOpenLoopTenants], kOpenLoopSteps, false));
    if (!h.ok()) {
      // kBacklogFull would be the retryable branch of a real client; at this
      // queue depth (256) it cannot trigger here, so any rejection is fatal.
      std::fprintf(stderr, "submit %zu failed: %s\n", i, h.status().ToString().c_str());
      return 1;
    }
    handles.push_back(h.value());
  }

  std::vector<double>& ttft_s = out->ttft_s;
  std::vector<double>& tpot_s = out->tpot_s;
  for (size_t i = 0; i < handles.size(); ++i) {
    const RequestResult* r = handles[i].Wait();
    if (r == nullptr || !r->status.ok()) {
      std::fprintf(stderr, "request %zu failed: %s\n", i,
                   r != nullptr ? r->status.ToString().c_str() : "(null)");
      return 1;
    }
    if (r->steps_completed != kOpenLoopSteps || r->ttft_seconds <= 0) {
      std::fprintf(stderr, "FAIL: request %zu: %zu steps, ttft %.9f\n", i,
                   r->steps_completed, r->ttft_seconds);
      return 1;
    }
    ttft_s.push_back(r->ttft_seconds);
    tpot_s.push_back(r->decode_wall_seconds / static_cast<double>(r->steps_completed));
  }
  out->wall_seconds = wall.ElapsedSeconds();
  if (Status s = engine.Shutdown(); !s.ok()) {
    std::fprintf(stderr, "shutdown failed: %s\n", s.ToString().c_str());
    return 1;
  }

  out->snap = engine.snapshot();
  const ServingSnapshot& snap = out->snap;
  const size_t expected_prefill =
      (kOpenLoopRequests / kOpenLoopTenants) * expected_prefill_per_round;
  if (snap.completed != kOpenLoopRequests ||
      snap.tokens_decoded != kOpenLoopRequests * kOpenLoopSteps ||
      snap.tokens_prefilled != expected_prefill) {
    std::fprintf(stderr, "FAIL: %zu completed, %zu decoded, %zu prefilled (want %zu)\n",
                 snap.completed, snap.tokens_decoded, snap.tokens_prefilled,
                 expected_prefill);
    return 1;
  }
  if (cfg.midstep && snap.midstep_admissions == 0 && cfg.arrivals_per_sec >= 50) {
    // At >= 50 req/s, arrivals land inside running steps essentially always;
    // zero mid-step admissions means the continuous path silently regressed.
    std::fprintf(stderr, "FAIL: no mid-step admissions at %.0f req/s\n",
                 cfg.arrivals_per_sec);
    return 1;
  }
  out->tokens_per_second =
      static_cast<double>(snap.tokens_decoded) / std::max(out->wall_seconds, 1e-9);
  return 0;
}

/// Open-loop mode: with --json, the phase-serialized baseline runs first so
/// the artifact carries both sides of the continuous-batching comparison.
int RunOpenLoop(const OpenLoopConfig& cfg, const char* json_path) {
  OpenLoopResult baseline;
  bool have_baseline = false;
  if (json_path != nullptr) {
    OpenLoopConfig base = cfg;
    base.step_token_budget = 0;  // Unbounded steps.
    // Chunks larger than any prompt suffix: an admitted request prefills its
    // ENTIRE suffix inside one step while every decoder stalls — the convoy
    // the pre-continuous engine created. (Bounded, not SIZE_MAX: admission
    // sizes the chunk scratch buffers to this.)
    base.prefill_chunk_tokens = 8192;
    base.midstep = false;  // Admission only at step boundaries.
    std::printf("=== open-loop baseline: phase-serialized (no step budget, "
                "boundary-only admission) ===\n");
    if (int rc = RunOpenLoopOnce(base, &baseline); rc != 0) return rc;
    std::printf("%10s %12s %12s %12s %12s\n", "requests", "ttft-p50",
                "ttft-p99", "tpot-p50", "tpot-p99");
    std::printf("%10zu %10.2fms %10.2fms %10.2fms %10.2fms\n", kOpenLoopRequests,
                Percentile(baseline.ttft_s, 0.5) * 1e3,
                Percentile(baseline.ttft_s, 0.99) * 1e3,
                Percentile(baseline.tpot_s, 0.5) * 1e3,
                Percentile(baseline.tpot_s, 0.99) * 1e3);
    have_baseline = true;
  }

  std::printf("=== open-loop serving: Poisson arrivals at %.0f req/s into the "
              "live engine (%zu device%s, step budget %zu, mid-step %s) ===\n",
              cfg.arrivals_per_sec, cfg.devices, cfg.devices == 1 ? "" : "s",
              cfg.step_token_budget, cfg.midstep ? "on" : "off");
  OpenLoopResult main_run;
  if (int rc = RunOpenLoopOnce(cfg, &main_run); rc != 0) return rc;

  std::printf("%10s %12s %12s %12s %12s %12s %12s %12s\n", "requests",
              "ttft-p50", "ttft-p99", "tpot-p50", "tpot-p99", "tokens/sec",
              "peak-conc", "midstep");
  std::printf("%10zu %10.2fms %10.2fms %10.2fms %10.2fms %12.1f %12zu %12zu\n",
              kOpenLoopRequests, Percentile(main_run.ttft_s, 0.5) * 1e3,
              Percentile(main_run.ttft_s, 0.99) * 1e3,
              Percentile(main_run.tpot_s, 0.5) * 1e3,
              Percentile(main_run.tpot_s, 0.99) * 1e3,
              main_run.tokens_per_second, main_run.snap.peak_concurrent_sessions,
              main_run.snap.midstep_admissions);
  PrintDeviceTable(main_run.snap);
  if (json_path != nullptr &&
      !WriteBenchJson(json_path, "open-loop", kOpenLoopRequests, main_run.ttft_s,
                      main_run.tpot_s, main_run.tokens_per_second,
                      main_run.wall_seconds, main_run.snap,
                      cfg.step_token_budget, cfg.midstep,
                      have_baseline ? &baseline : nullptr)) {
    return 1;
  }
  std::printf("bench_serving_throughput OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  double prefill_fraction = 0.0;
  double store_fraction = 0.0;
  double open_loop_rate = 0.0;
  size_t devices = 1;
  uint64_t host_budget_bytes = 0;
  long step_budget = -1;  // -1 = unset: open loop defaults to 64, closed to 0.
  bool midstep = true;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--host-budget") == 0 && i + 1 < argc) {
      // MiB of host DRAM the context store may keep resident (0 = unbounded).
      // Small enough budgets force spill/page-in traffic through the tiered
      // store, which shows up in the tier_* counters of the JSON summary.
      char* end = nullptr;
      const long n = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n < 0) {
        std::fprintf(stderr, "--host-budget: need MiB >= 0: %s\n", argv[i]);
        return 2;
      }
      host_budget_bytes = static_cast<uint64_t>(n) << 20;
    } else if (std::strcmp(argv[i], "--devices") == 0 && i + 1 < argc) {
      char* end = nullptr;
      const long n = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n < 1 || n > 64) {
        std::fprintf(stderr, "--devices: need an integer in [1, 64]: %s\n", argv[i]);
        return 2;
      }
      devices = static_cast<size_t>(n);
    } else if (std::strcmp(argv[i], "--step-budget") == 0 && i + 1 < argc) {
      // Per-step token budget shared by decode steps and prefill chunks
      // (0 = unlimited; see RequestSchedulerOptions::step_token_budget).
      char* end = nullptr;
      step_budget = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || step_budget < 0) {
        std::fprintf(stderr, "--step-budget: need tokens >= 0: %s\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--no-midstep") == 0) {
      midstep = false;  // Boundary-only admission: the phase-serialized mode.
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--prefill-fraction") == 0 && i + 1 < argc) {
      char* end = nullptr;
      prefill_fraction = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0') {
        std::fprintf(stderr, "--prefill-fraction: not a number: %s\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--store-fraction") == 0 && i + 1 < argc) {
      char* end = nullptr;
      store_fraction = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0') {
        std::fprintf(stderr, "--store-fraction: not a number: %s\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--open-loop") == 0 && i + 1 < argc) {
      char* end = nullptr;
      open_loop_rate = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0') {
        std::fprintf(stderr, "--open-loop: not a number: %s\n", argv[i]);
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--prefill-fraction f] [--store-fraction f] "
                   "[--open-loop arrivals_per_sec] [--step-budget tokens] "
                   "[--no-midstep] [--devices n] "
                   "[--host-budget mib] [--json path]"
                   "   (0 <= f < 1, 0 <= store <= 1, arrivals > 0)\n",
                   argv[0]);
      return 2;
    }
  }
  if (open_loop_rate != 0.0) {
    if (!(open_loop_rate > 0.0)) {
      std::fprintf(stderr, "--open-loop must be positive\n");
      return 2;
    }
    if (!(prefill_fraction >= 0.0 && prefill_fraction < 1.0)) {
      std::fprintf(stderr, "--prefill-fraction must be in [0, 1)\n");
      return 2;
    }
    OpenLoopConfig cfg;
    cfg.arrivals_per_sec = open_loop_rate;
    cfg.devices = devices;
    cfg.host_budget_bytes = host_budget_bytes;
    cfg.prefill_fraction = prefill_fraction;
    // Open loop defaults to a bounded step so the continuous-batching path is
    // exercised out of the box; closed loop keeps the historical unlimited.
    cfg.step_token_budget = step_budget < 0 ? 64 : static_cast<size_t>(step_budget);
    cfg.midstep = midstep;
    return RunOpenLoop(cfg, json_path);
  }
  // Negated form so NaN (which fails every comparison) is rejected too.
  if (!(prefill_fraction >= 0.0 && prefill_fraction < 1.0)) {
    std::fprintf(stderr, "--prefill-fraction must be in [0, 1)\n");
    return 2;
  }
  if (!(store_fraction >= 0.0 && store_fraction <= 1.0)) {
    std::fprintf(stderr, "--store-fraction must be in [0, 1]\n");
    return 2;
  }

  const ModelConfig model = bench::BenchModel();
  const auto suite = InfinityBenchSuite(0.04);
  const char* tasks[] = {"En.QA", "En.MC", "Code.D", "Math.F"};
  constexpr size_t kTenants = 4;
  constexpr size_t kSteps = 16;

  std::printf("=== serving throughput: concurrent sessions over shared AlayaDB ===\n");
  std::printf("model: %u layers, %u q-heads, %u kv-heads, d=%u; %zu decode steps/request, "
              "prefill fraction %.2f, store fraction %.2f, %zu device%s\n\n",
              model.num_layers, model.num_q_heads, model.num_kv_heads, model.head_dim,
              kSteps, prefill_fraction, store_fraction, devices,
              devices == 1 ? "" : "s");

  ThreadPool pool(4);
  const size_t expected_stores =
      static_cast<size_t>(store_fraction * static_cast<double>(kTenants) + 0.5);

  std::printf("%12s %10s %12s %12s %14s %12s %12s %10s\n", "concurrency", "requests",
              "prefilled", "tokens/sec", "wall-seconds", "peak-gpu", "peak-conc",
              "stored");
  double sequential_tps = 0;
  for (size_t concurrency : {size_t{1}, size_t{2}, kTenants}) {
    // Fresh DB per run so context stores and virtual clocks are comparable.
    SimEnvironment env;
    DbOptions options;
    options.model = model;
    options.session.optimizer.short_context_threshold = 512;
    options.session.window = WindowConfig{32, 128};
    options.materialize_pool = &pool;
    options.tier.host_budget_bytes = host_budget_bytes;
    AlayaDB db(options, &env);

    size_t expected_prefill = 0;
    std::vector<Tenant> tenants;
    for (size_t i = 0; i < kTenants; ++i) {
      SyntheticContextOptions copts;
      copts.model = model;
      copts.spec = FindTask(suite, tasks[i]);
      copts.spec.seed += i * 1000;  // Sequential suite seeds: avoid collisions.
      copts.pool = &pool;
      auto doc = std::make_unique<SyntheticContext>(copts);
      if (!doc->Generate().ok()) return 1;
      // Import only the reusable prefix; the rest of the prompt must prefill.
      const size_t import_tokens = static_cast<size_t>(
          static_cast<double>(doc->num_tokens()) * (1.0 - prefill_fraction));
      auto kv = std::make_unique<KvCache>(model);
      if (!kv->AppendPrefixFrom(doc->kv(), import_tokens).ok()) return 1;
      std::vector<int32_t> tokens(doc->tokens().begin(),
                                  doc->tokens().begin() +
                                      static_cast<long>(import_tokens));
      auto training = doc->MakeTrainingQueries(128);
      if (!db.Import(std::move(tokens), std::move(kv), training.get()).ok()) return 1;
      expected_prefill += doc->num_tokens() - import_tokens;
      tenants.push_back(Tenant{std::move(doc), import_tokens});
    }

    ShardContextsAcrossDevices(db, devices);
    ServingEngineOptions eopts;
    eopts.scheduler.max_concurrent_sessions = concurrency;
    eopts.scheduler.step_token_budget =
        step_budget < 0 ? 0 : static_cast<size_t>(step_budget);
    eopts.midstep_admission = midstep;
    eopts.devices = devices;
    eopts.pool = &pool;
    ServingEngine engine(&db, eopts);
    std::vector<RequestHandle> handles;
    for (size_t i = 0; i < kTenants; ++i) {
      auto id = engine.Submit(MakeRequest(tenants[i], kSteps, i < expected_stores));
      if (!id.ok()) {
        std::fprintf(stderr, "submit failed: %s\n", id.status().ToString().c_str());
        return 1;
      }
      handles.push_back(id.value());
    }
    if (Status s = engine.RunToCompletion(); !s.ok()) {
      std::fprintf(stderr, "serving failed: %s\n", s.ToString().c_str());
      return 1;
    }
    const ServingSnapshot snap = engine.snapshot();
    if (host_budget_bytes > 0) {
      std::printf("  tier: %llu spills, %llu page-ins, %llu prefetches, "
                  "%zu resident / %zu spilled\n",
                  static_cast<unsigned long long>(snap.tier_spills),
                  static_cast<unsigned long long>(snap.tier_page_ins),
                  static_cast<unsigned long long>(snap.tier_prefetches),
                  snap.tier_resident_contexts, snap.tier_spilled_contexts);
    }
    if (concurrency == 1) sequential_tps = snap.tokens_per_second;
    // Latency samples for the final (highest-concurrency) run's JSON summary.
    std::printf("%12zu %10zu %12zu %12.1f %14.3f %12s %12zu %10zu\n", concurrency,
                snap.completed, snap.tokens_prefilled, snap.tokens_per_second,
                snap.serve_wall_seconds, HumanBytes(snap.peak_gpu_bytes).c_str(),
                snap.peak_concurrent_sessions, snap.materializations_completed);
    if (snap.completed != kTenants || snap.tokens_decoded != kTenants * kSteps) {
      std::fprintf(stderr, "FAIL: expected %zu requests x %zu tokens, got %zu x %zu\n",
                   kTenants, kSteps, snap.completed, snap.tokens_decoded);
      return 1;
    }
    if (snap.tokens_prefilled != expected_prefill) {
      std::fprintf(stderr, "FAIL: expected %zu prefilled tokens, got %zu\n",
                   expected_prefill, snap.tokens_prefilled);
      return 1;
    }
    // Every store_on_finish retire must have materialized by the end of the
    // run (RunToCompletion drains the queue), and none may have failed — a
    // retire-path stall or a lost store is a regression, not noise.
    if (snap.materializations_completed != expected_stores ||
        snap.materializations_pending != 0 || snap.materializations_failed != 0) {
      std::fprintf(stderr,
                   "FAIL: expected %zu materializations, got %zu completed / "
                   "%zu pending / %zu failed\n",
                   expected_stores, snap.materializations_completed,
                   snap.materializations_pending, snap.materializations_failed);
      return 1;
    }
    if (db.contexts().size() != kTenants + expected_stores ||
        db.contexts().pending() != 0) {
      std::fprintf(stderr, "FAIL: store holds %zu contexts (%zu pending), want %zu\n",
                   db.contexts().size(), db.contexts().pending(),
                   kTenants + expected_stores);
      return 1;
    }
    if (concurrency > 1 && snap.peak_concurrent_sessions < 2) {
      std::fprintf(stderr, "FAIL: expected >1 concurrent session\n");
      return 1;
    }
    if (concurrency == kTenants) {
      std::vector<double> ttft_s, tpot_s;
      for (RequestHandle& h : handles) {
        const RequestResult* r = h.Wait();
        if (r == nullptr || !r->status.ok()) {
          std::fprintf(stderr, "request failed: %s\n",
                       r != nullptr ? r->status.ToString().c_str() : "(null)");
          return 1;
        }
        ttft_s.push_back(r->ttft_seconds);
        tpot_s.push_back(r->decode_wall_seconds /
                         static_cast<double>(std::max<size_t>(1, r->steps_completed)));
      }
      // With devices > 1 the sharded store must actually spread the tenants:
      // silent single-device fallback would invalidate every per-device number.
      size_t devices_used = 0;
      for (const DeviceServingStats& ds : snap.devices) {
        if (ds.placements > 0) ++devices_used;
      }
      if (devices_used < std::min(devices, kTenants)) {
        std::fprintf(stderr, "FAIL: %zu devices used, want >= %zu\n", devices_used,
                     std::min(devices, kTenants));
        return 1;
      }
      PrintDeviceTable(snap);
      if (json_path != nullptr &&
          !WriteBenchJson(json_path, "closed-loop", kTenants, ttft_s, tpot_s,
                          snap.tokens_per_second, snap.serve_wall_seconds, snap,
                          step_budget < 0 ? 0 : static_cast<size_t>(step_budget),
                          midstep)) {
        return 1;
      }
    }
  }

  std::printf("\nnote: per-head batching already saturates the pool at "
              "concurrency 1 on few-core hosts, so aggregate tok/s stays "
              "roughly flat while in-flight sessions multiply; gains appear "
              "as worker count grows (sequential baseline %.1f tok/s)\n",
              sequential_tps);
  std::printf("bench_serving_throughput OK\n");
  return 0;
}
