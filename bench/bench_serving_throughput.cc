// Serving throughput: aggregate decode tokens/sec as the number of concurrent
// sessions grows — the multi-tenant dimension the paper's MaaS scenario (§2)
// adds on top of per-query latency. Each tenant decodes over its own imported
// context; the engine batches every step's (session, layer, head) DIPRS
// queries across sessions onto the shared pool, and the scheduler keeps the
// set of admitted sessions under the GPU memory budget.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/string_util.h"
#include "src/common/timer.h"
#include "src/server/serving_engine.h"

using namespace alaya;

namespace {

struct Tenant {
  std::unique_ptr<SyntheticContext> doc;
};

ServingRequest MakeRequest(const SyntheticContext& doc, size_t steps) {
  ServingRequest r;
  r.prompt = doc.tokens();
  r.max_new_tokens = steps;
  const ModelConfig model = doc.model();
  const SyntheticContext* d = &doc;
  r.fill_step = [d, model](size_t step, uint32_t layer, float* q, float* k,
                           float* v) {
    d->MakeDecodeQueryLayer(step, layer, q);
    // Decoded K/V: derived deterministically from the decode query so the
    // local tail is well-defined without running a real FFN.
    Rng rng(0xC0FFEE ^ (step * 1315423911ull + layer));
    rng.FillGaussian(k, static_cast<size_t>(model.num_kv_heads) * model.head_dim);
    rng.FillGaussian(v, static_cast<size_t>(model.num_kv_heads) * model.head_dim);
  };
  return r;
}

}  // namespace

int main() {
  const ModelConfig model = bench::BenchModel();
  const auto suite = InfinityBenchSuite(0.04);
  const char* tasks[] = {"En.QA", "En.MC", "Code.D", "Math.F"};
  constexpr size_t kTenants = 4;
  constexpr size_t kSteps = 16;

  std::printf("=== serving throughput: concurrent sessions over shared AlayaDB ===\n");
  std::printf("model: %u layers, %u q-heads, %u kv-heads, d=%u; %zu decode steps/request\n\n",
              model.num_layers, model.num_q_heads, model.num_kv_heads, model.head_dim,
              kSteps);

  ThreadPool pool(4);

  std::printf("%12s %10s %12s %14s %12s %12s\n", "concurrency", "requests",
              "tokens/sec", "wall-seconds", "peak-gpu", "peak-conc");
  double sequential_tps = 0;
  for (size_t concurrency : {size_t{1}, size_t{2}, kTenants}) {
    // Fresh DB per run so context stores and virtual clocks are comparable.
    SimEnvironment env;
    DbOptions options;
    options.model = model;
    options.session.optimizer.short_context_threshold = 512;
    options.session.window = WindowConfig{32, 128};
    AlayaDB db(options, &env);

    std::vector<Tenant> tenants;
    for (size_t i = 0; i < kTenants; ++i) {
      SyntheticContextOptions copts;
      copts.model = model;
      copts.spec = FindTask(suite, tasks[i]);
      copts.spec.seed += i * 1000;  // Sequential suite seeds: avoid collisions.
      copts.pool = &pool;
      auto doc = std::make_unique<SyntheticContext>(copts);
      if (!doc->Generate().ok()) return 1;
      auto kv = std::make_unique<KvCache>(model);
      if (!kv->AppendAllFrom(doc->kv()).ok()) return 1;
      auto training = doc->MakeTrainingQueries(128);
      if (!db.Import(doc->tokens(), std::move(kv), training.get()).ok()) return 1;
      tenants.push_back(Tenant{std::move(doc)});
    }

    ServingEngineOptions eopts;
    eopts.scheduler.max_concurrent_sessions = concurrency;
    eopts.pool = &pool;
    ServingEngine engine(&db, eopts);
    for (size_t i = 0; i < kTenants; ++i) {
      auto id = engine.Submit(MakeRequest(*tenants[i].doc, kSteps));
      if (!id.ok()) {
        std::fprintf(stderr, "submit failed: %s\n", id.status().ToString().c_str());
        return 1;
      }
    }
    if (Status s = engine.RunToCompletion(); !s.ok()) {
      std::fprintf(stderr, "serving failed: %s\n", s.ToString().c_str());
      return 1;
    }
    const ServingSnapshot snap = engine.snapshot();
    if (concurrency == 1) sequential_tps = snap.tokens_per_second;
    std::printf("%12zu %10zu %12.1f %14.3f %12s %12zu\n", concurrency,
                snap.completed, snap.tokens_per_second, snap.serve_wall_seconds,
                HumanBytes(snap.peak_gpu_bytes).c_str(),
                snap.peak_concurrent_sessions);
    if (snap.completed != kTenants || snap.tokens_decoded != kTenants * kSteps) {
      std::fprintf(stderr, "FAIL: expected %zu requests x %zu tokens, got %zu x %zu\n",
                   kTenants, kSteps, snap.completed, snap.tokens_decoded);
      return 1;
    }
    if (concurrency > 1 && snap.peak_concurrent_sessions < 2) {
      std::fprintf(stderr, "FAIL: expected >1 concurrent session\n");
      return 1;
    }
  }

  std::printf("\nnote: per-head batching already saturates the pool at "
              "concurrency 1 on few-core hosts, so aggregate tok/s stays "
              "roughly flat while in-flight sessions multiply; gains appear "
              "as worker count grows (sequential baseline %.1f tok/s)\n",
              sequential_tps);
  std::printf("bench_serving_throughput OK\n");
  return 0;
}
