// Serving throughput: aggregate decode tokens/sec as the number of concurrent
// sessions grows — the multi-tenant dimension the paper's MaaS scenario (§2)
// adds on top of per-query latency. Each tenant decodes over its own imported
// context; the engine batches every step's (session, layer, head) DIPRS
// queries across sessions onto the shared pool, and the scheduler keeps the
// set of admitted sessions under the GPU memory budget.
//
// --prefill-fraction <f> (default 0) imports only the first (1-f) of each
// tenant's document and prompts with the full document, so f of every prompt
// flows through the engine's batched prefill phase before decode — the
// partial-prefix-reuse serving path (§7.1).
//
// --store-fraction <f> (default 0) marks f of the requests store_on_finish,
// so their retirement hands the session off to the background materialization
// queue (DB.store_async) — the late-materialization serving path (§7.2). A
// retire-path stall (a store blocking the step loop) shows up directly in the
// reported wall seconds, which is why CI smoke-runs this flag.
//
// --open-loop <arrivals/s> switches to an open-loop run against the LIVE
// engine API: Start() brings up the always-on driver, then requests arrive on
// a Poisson process (seeded RNG — reproducible) and are admitted continuously
// — a newcomer's first prefill chunk runs inside whatever step is already in
// flight (mid-step admission) and prefilling sessions interleave with
// decoding ones under the per-step token budget. Reports per-request p50/p99
// TTFT (Submit -> first decoded block, from RequestResult::ttft_seconds) and
// TPOT (decode wall seconds per token) — the latency axes a closed-loop run
// hides. Honors --prefill-fraction, so the TTFT tail actually exercises the
// chunked-prefill path. With --json, the same trace is first replayed against
// a phase-serialized configuration (no step budget, no mid-step admission —
// the pre-continuous-batching engine) and its percentiles land in the JSON as
// baseline_*, so CI can assert the p99 TTFT win without a second binary.
//
// --step-budget <tokens> (default 64 in open-loop, 0 = unlimited elsewhere)
// sets RequestSchedulerOptions::step_token_budget for the main open-loop run;
// --no-midstep disables ServingEngineOptions::midstep_admission, which
// reduces the engine to boundary-only admission (the baseline behavior).
//
// --devices <n> (default 1) serves over a sharded fleet: each tenant's
// context is re-homed round-robin across the devices (as a sharded store
// would leave them), placement routes requests to their warm device, and a
// per-device table reports placements, cross-device reuses, residency peaks
// and modeled busy seconds (utilization).
//
// --host-budget <MiB> (default 0 = unbounded) caps the host bytes the context
// store keeps resident: publishing past the cap spills cold contexts to the
// tiered store's backing and prefix hits demand-page them back — the tier
// spill/page-in/prefetch counters land in the JSON summary, so CI tracks how
// much disk traffic a budgeted store generates.
//
// --virtual-time paces the open-loop arrivals on the fleet's modeled device
// clocks instead of wall sleeps: each Poisson gap is a gap in VIRTUAL seconds,
// a request is submitted once modeled time reaches its arrival point, and an
// idle engine fast-forwards the clocks discrete-event style. The arrival
// trace is then identical on any host regardless of its speed — latency
// regressions can't hide behind a slower CI machine shifting the arrivals.
//
// --priority-burst runs the preemptive-scheduling scenario instead of the
// throughput sweep: Phase A measures high-priority TTFT on an idle engine
// (the baseline), Phase B fills every slot with long LOW-priority decodes and
// then fires a burst of short HIGH-priority requests mid-decode. The highs
// must preempt (suspend) lows to get their slots, and every low must resume
// and finish with zero recompute. Reports per-class TTFT percentiles, the
// preemption/resume counters, and the per-tenant fair-share ledger; fails if
// nothing was preempted, a low lost work, any tenant starved, or the
// burst-phase high p99 TTFT exceeds 2x the idle baseline (with a small
// absolute floor so microsecond-scale baselines don't flake).
//
// --tenants <n> (default 3) spreads requests round-robin over n scheduler
// tenant ids (tenant 0 weighted 2.0 in --priority-burst to exercise weighted
// fair share); the per-tenant ledger lands in the JSON summary.
//
// --kv-codec {fp32,fp16,int8} (default fp32) sets DbOptions::quant.kv_codec:
// imported and materialized KV is rounded onto the codec grid and the context
// store accounts its DEPLOYED (compressed) bytes, so a --host-budget run fits
// more contexts resident as the codec narrows. The codec name and the store's
// resident KV bytes land in the JSON summary.
//
// --codec-gate runs the quantized-residency gate instead of the sweep: two
// identical import workloads against the same --host-budget, one fp32 and one
// int8; the int8 store must hold STRICTLY more contexts resident (and stay
// under budget) or the run exits non-zero. CI smoke-runs this.
//
// --json <path> additionally emits the machine-readable summary CI archives
// as BENCH_serving.json — p50/p99 TTFT and TPOT, aggregate throughput, tier
// counters, preemption/resume totals, per-class and per-tenant stats, and the
// per-device counters — the start of the perf trajectory.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/string_util.h"
#include "src/common/timer.h"
#include "src/server/serving_engine.h"

using namespace alaya;

namespace {

/// KV codec for every DB the run constructs (--kv-codec; fp32 = historical).
VectorCodec g_kv_codec = VectorCodec::kFp32;

struct Tenant {
  std::unique_ptr<SyntheticContext> doc;
  size_t imported_tokens = 0;
};

ServingRequest MakeRequest(const Tenant& tenant, size_t steps, bool store) {
  ServingRequest r;
  r.prompt = tenant.doc->tokens();
  r.max_new_tokens = steps;
  r.store_on_finish = store;
  const ModelConfig model = tenant.doc->model();
  const SyntheticContext* d = tenant.doc.get();
  r.fill_step = [d, model](size_t step, uint32_t layer, float* q, float* k,
                           float* v) {
    d->MakeDecodeQueryLayer(step, layer, q);
    // Decoded K/V: derived deterministically from the decode query so the
    // local tail is well-defined without running a real FFN.
    Rng rng(0xC0FFEE ^ (step * 1315423911ull + layer));
    rng.FillGaussian(k, static_cast<size_t>(model.num_kv_heads) * model.head_dim);
    rng.FillGaussian(v, static_cast<size_t>(model.num_kv_heads) * model.head_dim);
  };
  // Prompt tokens past the imported prefix prefill with the document's own
  // K/V rows (so prefilled sessions see exactly the document content) and a
  // deterministic synthetic query.
  r.fill_prompt = [d, model](size_t token, uint32_t layer, float* q, float* k,
                             float* v) {
    Rng rng(0x9E3779B9 ^ (token * 2654435761ull + layer));
    rng.FillGaussian(q, static_cast<size_t>(model.num_q_heads) * model.head_dim);
    for (uint32_t h = 0; h < model.num_kv_heads; ++h) {
      const float* kk = d->kv().Keys(layer, h).Vec(static_cast<uint32_t>(token));
      const float* vv = d->kv().Values(layer, h).Vec(static_cast<uint32_t>(token));
      std::memcpy(k + static_cast<size_t>(h) * model.head_dim, kk,
                  model.head_dim * sizeof(float));
      std::memcpy(v + static_cast<size_t>(h) * model.head_dim, vv,
                  model.head_dim * sizeof(float));
    }
  };
  return r;
}

/// Nearest-rank percentile (q in [0, 1]) of an unsorted sample.
double Percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t rank = std::min(
      v.size() - 1, static_cast<size_t>(q * static_cast<double>(v.size() - 1) + 0.5));
  return v[rank];
}

/// Re-homes stored contexts round-robin across the fleet, the state a
/// sharded store would be in; the placement affinity then spreads tenants.
void ShardContextsAcrossDevices(AlayaDB& db, size_t devices) {
  if (devices <= 1) return;
  size_t i = 0;
  for (uint64_t id : db.contexts().Ids()) {
    // FindShared (not the test-only borrowed Find): with a host budget the
    // tiered store may evict concurrently, and a spilled id returns null —
    // it keeps the affinity it had at spill time, so skipping it is correct.
    if (std::shared_ptr<Context> ctx = db.contexts().FindShared(id)) {
      ctx->set_resident_device(static_cast<int>(i % devices));
    }
    ++i;
  }
}

void PrintDeviceTable(const ServingSnapshot& snap) {
  if (snap.devices.size() <= 1) return;
  std::printf("\n%8s %12s %12s %12s %12s %12s %14s\n", "device", "placements",
              "xdev-reuse", "transfer", "tokens", "peak-gpu", "busy-seconds");
  for (const DeviceServingStats& ds : snap.devices) {
    std::printf("%8d %12zu %12zu %12s %12zu %12s %14.4f\n", ds.device,
                ds.placements, ds.cross_device_reuses,
                HumanBytes(ds.transfer_bytes).c_str(),
                ds.tokens_decoded + ds.tokens_prefilled,
                HumanBytes(ds.peak_gpu_bytes).c_str(), ds.modeled_busy_seconds);
  }
}

/// Emits the per-priority-class and per-tenant arrays shared by every JSON
/// mode (trailing comma included; schema additive).
void WriteClassTenantArrays(FILE* f, const ServingSnapshot& snap) {
  std::fprintf(f, "  \"preemptions\": %zu,\n", snap.preemptions);
  std::fprintf(f, "  \"resumes\": %zu,\n", snap.resumes);
  std::fprintf(f, "  \"midstep_retirements\": %zu,\n", snap.midstep_retirements);
  std::fprintf(f, "  \"classes\": [");
  for (size_t i = 0; i < snap.classes.size(); ++i) {
    const ClassServingStats& cs = snap.classes[i];
    std::fprintf(f,
                 "%s\n    {\"priority\": %d, \"completed\": %zu, "
                 "\"preempted\": %zu, \"resumed\": %zu, "
                 "\"ttft_p50_ms\": %.3f, \"ttft_p99_ms\": %.3f}",
                 i == 0 ? "" : ",", cs.priority, cs.completed, cs.preempted,
                 cs.resumed, cs.ttft_p50.Value() * 1e3,
                 cs.ttft_p99.Value() * 1e3);
  }
  std::fprintf(f, "\n  ],\n");
  std::fprintf(f, "  \"tenants\": [");
  for (size_t i = 0; i < snap.tenants.size(); ++i) {
    const TenantServingStats& ts = snap.tenants[i];
    std::fprintf(f,
                 "%s\n    {\"tenant_id\": %llu, \"weight\": %.3f, "
                 "\"admitted\": %zu, \"completed\": %zu, \"preempted\": %zu, "
                 "\"resumed\": %zu, \"deficit_seconds\": %.6f, "
                 "\"admitted_seconds\": %.6f}",
                 i == 0 ? "" : ",", static_cast<unsigned long long>(ts.tenant_id),
                 ts.weight, ts.admitted, ts.completed, ts.preempted, ts.resumed,
                 ts.deficit_seconds, ts.admitted_seconds);
  }
  std::fprintf(f, "\n  ],\n");
}

/// One complete open-loop pass: the latency samples plus the final snapshot.
struct OpenLoopResult {
  std::vector<double> ttft_s, tpot_s;
  double tokens_per_second = 0;
  double wall_seconds = 0;
  ServingSnapshot snap;
};

/// Machine-readable run summary (one JSON object; schema kept flat and
/// additive so CI's BENCH_serving.json artifacts stay comparable over time).
/// `baseline` (open-loop only) carries the phase-serialized pass so the
/// continuous-batching TTFT delta is auditable from the artifact alone.
bool WriteBenchJson(const char* path, const char* mode, size_t requests,
                    const std::vector<double>& ttft_s,
                    const std::vector<double>& tpot_s, double tokens_per_second,
                    double wall_seconds, const ServingSnapshot& snap,
                    size_t step_token_budget = 0, bool midstep = false,
                    bool virtual_time = false,
                    const OpenLoopResult* baseline = nullptr) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open --json path %s\n", path);
    return false;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", mode);
  std::fprintf(f, "  \"requests\": %zu,\n", requests);
  std::fprintf(f, "  \"step_token_budget\": %zu,\n", step_token_budget);
  std::fprintf(f, "  \"midstep_admission\": %s,\n", midstep ? "true" : "false");
  std::fprintf(f, "  \"virtual_time\": %s,\n", virtual_time ? "true" : "false");
  std::fprintf(f, "  \"midstep_admissions\": %zu,\n", snap.midstep_admissions);
  WriteClassTenantArrays(f, snap);
  if (baseline != nullptr) {
    std::fprintf(f, "  \"baseline_ttft_p50_ms\": %.3f,\n",
                 Percentile(baseline->ttft_s, 0.5) * 1e3);
    std::fprintf(f, "  \"baseline_ttft_p99_ms\": %.3f,\n",
                 Percentile(baseline->ttft_s, 0.99) * 1e3);
    std::fprintf(f, "  \"baseline_tpot_p50_ms\": %.3f,\n",
                 Percentile(baseline->tpot_s, 0.5) * 1e3);
    std::fprintf(f, "  \"baseline_tpot_p99_ms\": %.3f,\n",
                 Percentile(baseline->tpot_s, 0.99) * 1e3);
  }
  std::fprintf(f, "  \"tokens_decoded\": %zu,\n", snap.tokens_decoded);
  std::fprintf(f, "  \"tokens_prefilled\": %zu,\n", snap.tokens_prefilled);
  std::fprintf(f, "  \"tokens_per_second\": %.3f,\n", tokens_per_second);
  std::fprintf(f, "  \"wall_seconds\": %.6f,\n", wall_seconds);
  std::fprintf(f, "  \"ttft_p50_ms\": %.3f,\n", Percentile(ttft_s, 0.5) * 1e3);
  std::fprintf(f, "  \"ttft_p99_ms\": %.3f,\n", Percentile(ttft_s, 0.99) * 1e3);
  std::fprintf(f, "  \"tpot_p50_ms\": %.3f,\n", Percentile(tpot_s, 0.5) * 1e3);
  std::fprintf(f, "  \"tpot_p99_ms\": %.3f,\n", Percentile(tpot_s, 0.99) * 1e3);
  std::fprintf(f, "  \"peak_gpu_bytes\": %llu,\n",
               static_cast<unsigned long long>(snap.peak_gpu_bytes));
  std::fprintf(f, "  \"peak_concurrent_sessions\": %zu,\n",
               snap.peak_concurrent_sessions);
  // Tiered-store counters (all zero when --host-budget is unset): how often
  // the budget spilled a context, how many disk hits paged one back in, and
  // how many of those were warmed at admission time.
  std::fprintf(f, "  \"tier_spills\": %llu,\n",
               static_cast<unsigned long long>(snap.tier_spills));
  std::fprintf(f, "  \"tier_page_ins\": %llu,\n",
               static_cast<unsigned long long>(snap.tier_page_ins));
  std::fprintf(f, "  \"tier_prefetches\": %llu,\n",
               static_cast<unsigned long long>(snap.tier_prefetches));
  std::fprintf(f, "  \"tier_resident_contexts\": %zu,\n",
               snap.tier_resident_contexts);
  std::fprintf(f, "  \"tier_spilled_contexts\": %zu,\n", snap.tier_spilled_contexts);
  std::fprintf(f, "  \"kv_codec\": \"%s\",\n", VectorCodecName(g_kv_codec));
  std::fprintf(f, "  \"tier_resident_kv_bytes\": %llu,\n",
               static_cast<unsigned long long>(snap.tier_resident_kv_bytes));
  std::fprintf(f, "  \"devices\": [");
  for (size_t d = 0; d < snap.devices.size(); ++d) {
    const DeviceServingStats& ds = snap.devices[d];
    std::fprintf(f,
                 "%s\n    {\"device\": %d, \"placements\": %zu, "
                 "\"cross_device_reuses\": %zu, \"transfer_bytes\": %llu, "
                 "\"tokens_decoded\": %zu, \"tokens_prefilled\": %zu, "
                 "\"peak_gpu_bytes\": %llu, \"modeled_busy_seconds\": %.6f}",
                 d == 0 ? "" : ",", ds.device, ds.placements,
                 ds.cross_device_reuses,
                 static_cast<unsigned long long>(ds.transfer_bytes),
                 ds.tokens_decoded, ds.tokens_prefilled,
                 static_cast<unsigned long long>(ds.peak_gpu_bytes),
                 ds.modeled_busy_seconds);
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
  return true;
}

/// Engine-side knobs one open-loop pass runs under.
struct OpenLoopConfig {
  double arrivals_per_sec = 0;
  size_t devices = 1;
  uint64_t host_budget_bytes = 0;
  double prefill_fraction = 0;
  size_t step_token_budget = 0;
  size_t prefill_chunk_tokens = 0;  ///< 0 = scheduler default.
  bool midstep = true;
  bool virtual_time = false;  ///< Pace arrivals on the modeled device clocks.
  size_t tenants = 3;         ///< Scheduler tenant ids, assigned round-robin.
};

constexpr size_t kOpenLoopTenants = 4;
constexpr size_t kOpenLoopRequests = 24;
constexpr size_t kOpenLoopSteps = 12;

/// One Poisson pass against the live engine. A fresh DB per pass keeps the
/// baseline and the continuous-batching run byte-comparable (same imported
/// prefixes, same arrival trace from the same seeded RNG). Returns 0 on
/// success; validates that every request completed with a measured TTFT.
int RunOpenLoopOnce(const OpenLoopConfig& cfg, OpenLoopResult* out) {
  const ModelConfig model = bench::BenchModel();
  const auto suite = InfinityBenchSuite(0.04);
  const char* tasks[] = {"En.QA", "En.MC", "Code.D", "Math.F"};

  ThreadPool pool(4);
  SimEnvironment env;
  DbOptions options;
  options.model = model;
  options.session.optimizer.short_context_threshold = 512;
  options.session.window = WindowConfig{32, 128};
  options.materialize_pool = &pool;
  options.tier.host_budget_bytes = cfg.host_budget_bytes;
  options.quant.kv_codec = g_kv_codec;
  AlayaDB db(options, &env);

  size_t expected_prefill_per_round = 0;
  std::vector<Tenant> tenants;
  for (size_t i = 0; i < kOpenLoopTenants; ++i) {
    SyntheticContextOptions copts;
    copts.model = model;
    copts.spec = FindTask(suite, tasks[i]);
    copts.spec.seed += i * 1000;
    copts.pool = &pool;
    auto doc = std::make_unique<SyntheticContext>(copts);
    if (!doc->Generate().ok()) return 1;
    // Import only the reusable prefix; every request over this tenant then
    // prefills the remaining suffix of its prompt through the chunked path.
    const size_t import_tokens = static_cast<size_t>(
        static_cast<double>(doc->num_tokens()) * (1.0 - cfg.prefill_fraction));
    auto kv = std::make_unique<KvCache>(model);
    if (!kv->AppendPrefixFrom(doc->kv(), import_tokens).ok()) return 1;
    std::vector<int32_t> tokens(doc->tokens().begin(),
                                doc->tokens().begin() +
                                    static_cast<long>(import_tokens));
    auto training = doc->MakeTrainingQueries(128);
    if (!db.Import(std::move(tokens), std::move(kv), training.get()).ok()) return 1;
    expected_prefill_per_round += doc->num_tokens() - import_tokens;
    tenants.push_back(Tenant{std::move(doc), import_tokens});
  }

  ShardContextsAcrossDevices(db, cfg.devices);
  ServingEngineOptions eopts;
  // 6 slots against 24 requests: deep enough that queueing shows, loose
  // enough that slots are free while steps run — the regime where mid-step
  // admission (vs waiting for the boundary) actually changes TTFT.
  eopts.scheduler.max_concurrent_sessions = 6;
  eopts.scheduler.step_token_budget = cfg.step_token_budget;
  if (cfg.prefill_chunk_tokens > 0) {
    eopts.scheduler.prefill_chunk_tokens = cfg.prefill_chunk_tokens;
  }
  eopts.midstep_admission = cfg.midstep;
  eopts.devices = cfg.devices;
  eopts.pool = &pool;
  ServingEngine engine(&db, eopts);
  if (Status s = engine.Start(); !s.ok()) {
    std::fprintf(stderr, "start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Seeded exponential interarrivals: the trace is identical run to run, so
  // latency regressions are attributable to the engine, not the workload.
  // Under --virtual-time the gaps are VIRTUAL seconds: an arrival fires when
  // the fleet's modeled time reaches its point on the trace, which decouples
  // the arrival process from host speed entirely.
  Rng rng(0x09E17007);
  WallTimer wall;
  auto fleet_virtual_seconds = [&env]() {
    double now = 0;
    for (size_t d = 0; d < env.num_devices(); ++d) {
      now = std::max(now, env.device(d).clock().Seconds());
    }
    return now;
  };
  double arrival_vt = fleet_virtual_seconds();
  std::vector<RequestHandle> handles;
  for (size_t i = 0; i < kOpenLoopRequests; ++i) {
    if (i > 0) {
      const double gap = -std::log(1.0 - rng.Uniform()) / cfg.arrivals_per_sec;
      if (cfg.virtual_time) {
        arrival_vt += gap;
        // Busy work advances the clocks on its own; a drained engine would
        // never reach the arrival point, so fast-forward it discrete-event
        // style (the clocks model the idle gap as elapsed).
        while (fleet_virtual_seconds() < arrival_vt) {
          if (engine.scheduler().active() == 0 && engine.scheduler().queued() == 0) {
            for (size_t d = 0; d < env.num_devices(); ++d) {
              const double lag = arrival_vt - env.device(d).clock().Seconds();
              if (lag > 0) env.device(d).clock().Advance(lag);
            }
            break;
          }
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      } else {
        std::this_thread::sleep_for(std::chrono::duration<double>(gap));
      }
    }
    ServingRequest req =
        MakeRequest(tenants[i % kOpenLoopTenants], kOpenLoopSteps, false);
    req.tenant_id = i % std::max<size_t>(1, cfg.tenants);
    auto h = engine.Submit(std::move(req));
    if (!h.ok()) {
      // kBacklogFull would be the retryable branch of a real client; at this
      // queue depth (256) it cannot trigger here, so any rejection is fatal.
      std::fprintf(stderr, "submit %zu failed: %s\n", i, h.status().ToString().c_str());
      return 1;
    }
    handles.push_back(h.value());
  }

  std::vector<double>& ttft_s = out->ttft_s;
  std::vector<double>& tpot_s = out->tpot_s;
  for (size_t i = 0; i < handles.size(); ++i) {
    const RequestResult* r = handles[i].Wait();
    if (r == nullptr || !r->status.ok()) {
      std::fprintf(stderr, "request %zu failed: %s\n", i,
                   r != nullptr ? r->status.ToString().c_str() : "(null)");
      return 1;
    }
    if (r->steps_completed != kOpenLoopSteps || r->ttft_seconds <= 0) {
      std::fprintf(stderr, "FAIL: request %zu: %zu steps, ttft %.9f\n", i,
                   r->steps_completed, r->ttft_seconds);
      return 1;
    }
    ttft_s.push_back(r->ttft_seconds);
    tpot_s.push_back(r->decode_wall_seconds / static_cast<double>(r->steps_completed));
  }
  out->wall_seconds = wall.ElapsedSeconds();
  if (Status s = engine.Shutdown(); !s.ok()) {
    std::fprintf(stderr, "shutdown failed: %s\n", s.ToString().c_str());
    return 1;
  }

  out->snap = engine.snapshot();
  const ServingSnapshot& snap = out->snap;
  const size_t expected_prefill =
      (kOpenLoopRequests / kOpenLoopTenants) * expected_prefill_per_round;
  if (snap.completed != kOpenLoopRequests ||
      snap.tokens_decoded != kOpenLoopRequests * kOpenLoopSteps ||
      snap.tokens_prefilled != expected_prefill) {
    std::fprintf(stderr, "FAIL: %zu completed, %zu decoded, %zu prefilled (want %zu)\n",
                 snap.completed, snap.tokens_decoded, snap.tokens_prefilled,
                 expected_prefill);
    return 1;
  }
  if (cfg.midstep && !cfg.virtual_time && snap.midstep_admissions == 0 &&
      cfg.arrivals_per_sec >= 50) {
    // At >= 50 wall req/s, arrivals land inside running steps essentially
    // always; zero mid-step admissions means the continuous path silently
    // regressed. (Virtual-time arrivals pace on the modeled clocks, whose
    // density relative to step walls is host-dependent — no such guarantee.)
    std::fprintf(stderr, "FAIL: no mid-step admissions at %.0f req/s\n",
                 cfg.arrivals_per_sec);
    return 1;
  }
  out->tokens_per_second =
      static_cast<double>(snap.tokens_decoded) / std::max(out->wall_seconds, 1e-9);
  return 0;
}

/// Open-loop mode: with --json, the phase-serialized baseline runs first so
/// the artifact carries both sides of the continuous-batching comparison.
int RunOpenLoop(const OpenLoopConfig& cfg, const char* json_path) {
  OpenLoopResult baseline;
  bool have_baseline = false;
  if (json_path != nullptr) {
    OpenLoopConfig base = cfg;
    base.step_token_budget = 0;  // Unbounded steps.
    // Chunks larger than any prompt suffix: an admitted request prefills its
    // ENTIRE suffix inside one step while every decoder stalls — the convoy
    // the pre-continuous engine created. (Bounded, not SIZE_MAX: admission
    // sizes the chunk scratch buffers to this.)
    base.prefill_chunk_tokens = 8192;
    base.midstep = false;  // Admission only at step boundaries.
    std::printf("=== open-loop baseline: phase-serialized (no step budget, "
                "boundary-only admission) ===\n");
    if (int rc = RunOpenLoopOnce(base, &baseline); rc != 0) return rc;
    std::printf("%10s %12s %12s %12s %12s\n", "requests", "ttft-p50",
                "ttft-p99", "tpot-p50", "tpot-p99");
    std::printf("%10zu %10.2fms %10.2fms %10.2fms %10.2fms\n", kOpenLoopRequests,
                Percentile(baseline.ttft_s, 0.5) * 1e3,
                Percentile(baseline.ttft_s, 0.99) * 1e3,
                Percentile(baseline.tpot_s, 0.5) * 1e3,
                Percentile(baseline.tpot_s, 0.99) * 1e3);
    have_baseline = true;
  }

  std::printf("=== open-loop serving: Poisson arrivals at %.0f req/s into the "
              "live engine (%zu device%s, step budget %zu, mid-step %s) ===\n",
              cfg.arrivals_per_sec, cfg.devices, cfg.devices == 1 ? "" : "s",
              cfg.step_token_budget, cfg.midstep ? "on" : "off");
  OpenLoopResult main_run;
  if (int rc = RunOpenLoopOnce(cfg, &main_run); rc != 0) return rc;

  std::printf("%10s %12s %12s %12s %12s %12s %12s %12s\n", "requests",
              "ttft-p50", "ttft-p99", "tpot-p50", "tpot-p99", "tokens/sec",
              "peak-conc", "midstep");
  std::printf("%10zu %10.2fms %10.2fms %10.2fms %10.2fms %12.1f %12zu %12zu\n",
              kOpenLoopRequests, Percentile(main_run.ttft_s, 0.5) * 1e3,
              Percentile(main_run.ttft_s, 0.99) * 1e3,
              Percentile(main_run.tpot_s, 0.5) * 1e3,
              Percentile(main_run.tpot_s, 0.99) * 1e3,
              main_run.tokens_per_second, main_run.snap.peak_concurrent_sessions,
              main_run.snap.midstep_admissions);
  PrintDeviceTable(main_run.snap);
  if (json_path != nullptr &&
      !WriteBenchJson(json_path, "open-loop", kOpenLoopRequests, main_run.ttft_s,
                      main_run.tpot_s, main_run.tokens_per_second,
                      main_run.wall_seconds, main_run.snap,
                      cfg.step_token_budget, cfg.midstep, cfg.virtual_time,
                      have_baseline ? &baseline : nullptr)) {
    return 1;
  }
  std::printf("bench_serving_throughput OK\n");
  return 0;
}

/// Machine-readable summary for the preemption scenario (CI archives it as
/// BENCH_serving_priority.json): the idle-vs-burst high-priority TTFT pair
/// the 2x acceptance gate reads, plus the shared class/tenant arrays.
bool WritePriorityBurstJson(const char* path, size_t requests,
                            const std::vector<double>& idle_ttft,
                            const std::vector<double>& burst_ttft,
                            const std::vector<double>& low_ttft,
                            const ServingSnapshot& snap) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open --json path %s\n", path);
    return false;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"mode\": \"priority-burst\",\n");
  std::fprintf(f, "  \"requests\": %zu,\n", requests);
  std::fprintf(f, "  \"idle_high_ttft_p50_ms\": %.3f,\n",
               Percentile(idle_ttft, 0.5) * 1e3);
  std::fprintf(f, "  \"idle_high_ttft_p99_ms\": %.3f,\n",
               Percentile(idle_ttft, 0.99) * 1e3);
  std::fprintf(f, "  \"burst_high_ttft_p50_ms\": %.3f,\n",
               Percentile(burst_ttft, 0.5) * 1e3);
  std::fprintf(f, "  \"burst_high_ttft_p99_ms\": %.3f,\n",
               Percentile(burst_ttft, 0.99) * 1e3);
  std::fprintf(f, "  \"low_ttft_p50_ms\": %.3f,\n", Percentile(low_ttft, 0.5) * 1e3);
  std::fprintf(f, "  \"low_ttft_p99_ms\": %.3f,\n", Percentile(low_ttft, 0.99) * 1e3);
  WriteClassTenantArrays(f, snap);
  std::fprintf(f, "  \"tokens_decoded\": %zu,\n", snap.tokens_decoded);
  std::fprintf(f, "  \"peak_concurrent_sessions\": %zu\n",
               snap.peak_concurrent_sessions);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
  return true;
}

/// The preemptive-scheduling scenario. Phase A: high-priority requests on an
/// idle engine (the TTFT baseline). Phase B: every slot filled with a long
/// low-priority decode, then a burst of short high-priority requests lands
/// provably mid-decode — they must preempt lows for their slots, and the lows
/// must all resume and finish intact. Fails unless preemption happened, every
/// low kept its full decode, no tenant starved, and the burst-phase high p99
/// TTFT stays within 2x the idle baseline.
int RunPriorityBurst(size_t num_tenants, bool midstep, long step_budget,
                     const char* json_path) {
  constexpr size_t kSlots = 4;
  constexpr size_t kLows = 4;
  constexpr size_t kHighs = 6;
  constexpr size_t kLowSteps = 96;
  constexpr size_t kHighSteps = 4;
  // Slow hosts make microsecond-scale idle baselines flaky; the acceptance
  // gate is max(2x idle, this floor).
  constexpr double kTtftFloorSeconds = 0.050;

  const ModelConfig model = bench::BenchModel();
  const auto suite = InfinityBenchSuite(0.04);
  const char* tasks[] = {"En.QA", "En.MC", "Code.D", "Math.F"};

  ThreadPool pool(4);
  SimEnvironment env;
  DbOptions options;
  options.model = model;
  options.session.optimizer.short_context_threshold = 512;
  options.session.window = WindowConfig{32, 128};
  options.materialize_pool = &pool;
  AlayaDB db(options, &env);

  std::vector<Tenant> docs;
  for (size_t i = 0; i < 4; ++i) {
    SyntheticContextOptions copts;
    copts.model = model;
    copts.spec = FindTask(suite, tasks[i]);
    copts.spec.seed += i * 1000;
    copts.pool = &pool;
    auto doc = std::make_unique<SyntheticContext>(copts);
    if (!doc->Generate().ok()) return 1;
    // Import the full document: prompts are fully covered, so TTFT isolates
    // scheduling (admission + preemption) rather than prefill length.
    auto kv = std::make_unique<KvCache>(model);
    if (!kv->AppendPrefixFrom(doc->kv(), doc->num_tokens()).ok()) return 1;
    std::vector<int32_t> tokens = doc->tokens();
    auto training = doc->MakeTrainingQueries(128);
    if (!db.Import(std::move(tokens), std::move(kv), training.get()).ok()) return 1;
    const size_t imported = doc->num_tokens();
    docs.push_back(Tenant{std::move(doc), imported});
  }

  ServingEngineOptions eopts;
  eopts.scheduler.max_concurrent_sessions = kSlots;
  eopts.scheduler.step_token_budget =
      step_budget < 0 ? 64 : static_cast<size_t>(step_budget);
  // Tenant 0 carries double weight so the run exercises WEIGHTED fair share,
  // not just round-robin; the ledger lands in the JSON.
  eopts.scheduler.tenant_weights[0] = 2.0;
  eopts.midstep_admission = midstep;
  eopts.pool = &pool;
  ServingEngine engine(&db, eopts);
  if (Status s = engine.Start(); !s.ok()) {
    std::fprintf(stderr, "start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  auto make = [&](size_t doc_idx, size_t steps, int priority, size_t i) {
    ServingRequest r = MakeRequest(docs[doc_idx % docs.size()], steps, false);
    r.priority = priority;
    r.tenant_id = i % std::max<size_t>(1, num_tenants);
    return r;
  };

  // Phase A — idle baseline: one high-priority request at a time against an
  // otherwise empty engine; its TTFT is pure admission + first step.
  std::printf("=== priority burst: phase A (idle high-priority baseline, "
              "%zu requests) ===\n", kHighs);
  std::vector<double> idle_ttft;
  for (size_t i = 0; i < kHighs; ++i) {
    auto h = engine.Submit(make(i, kHighSteps, /*priority=*/1, i));
    if (!h.ok()) return 1;
    const RequestResult* r = h.value().Wait();
    if (r == nullptr || !r->status.ok()) {
      std::fprintf(stderr, "idle high %zu failed\n", i);
      return 1;
    }
    idle_ttft.push_back(r->ttft_seconds);
  }

  // Phase B — fill every slot with a long low-priority decode, prove all are
  // mid-decode (first token streamed), then fire the high burst.
  std::printf("=== priority burst: phase B (%zu long low-priority decodes, "
              "then %zu-request high burst mid-decode) ===\n", kLows, kHighs);
  std::atomic<size_t> lows_started{0};
  std::vector<RequestHandle> lows, highs;
  for (size_t i = 0; i < kLows; ++i) {
    ServingRequest r = make(i, kLowSteps, /*priority=*/0, i);
    r.on_token = [&lows_started](size_t step, std::span<const float>) {
      if (step == 0) lows_started.fetch_add(1);
    };
    auto h = engine.Submit(std::move(r));
    if (!h.ok()) return 1;
    lows.push_back(h.value());
  }
  while (lows_started.load() < kLows) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  for (size_t i = 0; i < kHighs; ++i) {
    auto h = engine.Submit(make(i, kHighSteps, /*priority=*/1, i));
    if (!h.ok()) return 1;
    highs.push_back(h.value());
  }

  std::vector<double> burst_ttft, low_ttft;
  for (size_t i = 0; i < highs.size(); ++i) {
    const RequestResult* r = highs[i].Wait();
    if (r == nullptr || !r->status.ok() || r->steps_completed != kHighSteps) {
      std::fprintf(stderr, "burst high %zu failed\n", i);
      return 1;
    }
    burst_ttft.push_back(r->ttft_seconds);
  }
  size_t low_preemptions = 0;
  for (size_t i = 0; i < lows.size(); ++i) {
    const RequestResult* r = lows[i].Wait();
    if (r == nullptr || !r->status.ok() || r->steps_completed != kLowSteps) {
      // A resumed low losing decode steps would be silent recompute/loss —
      // exactly what suspend/resume promises not to do.
      std::fprintf(stderr, "FAIL: low %zu did not finish intact\n", i);
      return 1;
    }
    low_preemptions += r->preemptions;
    if (r->resumes != r->preemptions) {
      std::fprintf(stderr, "FAIL: low %zu: %zu preemptions, %zu resumes\n", i,
                   r->preemptions, r->resumes);
      return 1;
    }
    low_ttft.push_back(r->ttft_seconds);
  }
  engine.WaitIdle();
  if (Status s = engine.Shutdown(); !s.ok()) return 1;
  const ServingSnapshot snap = engine.snapshot();

  const double idle_p99 = Percentile(idle_ttft, 0.99);
  const double burst_p99 = Percentile(burst_ttft, 0.99);
  std::printf("\n%10s %10s %12s %12s %12s %12s\n", "class", "completed",
              "preempted", "resumed", "ttft-p50", "ttft-p99");
  for (const ClassServingStats& cs : snap.classes) {
    std::printf("%10d %10zu %12zu %12zu %10.2fms %10.2fms\n", cs.priority,
                cs.completed, cs.preempted, cs.resumed,
                cs.ttft_p50.Value() * 1e3, cs.ttft_p99.Value() * 1e3);
  }
  std::printf("\n%10s %8s %10s %10s %12s %12s %16s\n", "tenant", "weight",
              "admitted", "completed", "preempted", "resumed", "admitted-sec");
  for (const TenantServingStats& ts : snap.tenants) {
    std::printf("%10llu %8.2f %10zu %10zu %12zu %12zu %16.6f\n",
                static_cast<unsigned long long>(ts.tenant_id), ts.weight,
                ts.admitted, ts.completed, ts.preempted, ts.resumed,
                ts.admitted_seconds);
  }
  std::printf("\nidle high p99 %.2fms, burst high p99 %.2fms, "
              "%zu preemptions / %zu resumes\n",
              idle_p99 * 1e3, burst_p99 * 1e3, snap.preemptions, snap.resumes);

  if (snap.preemptions == 0 || snap.resumes == 0 || low_preemptions == 0) {
    std::fprintf(stderr, "FAIL: high burst did not preempt any low decode\n");
    return 1;
  }
  if (burst_p99 > std::max(2.0 * idle_p99, kTtftFloorSeconds)) {
    std::fprintf(stderr,
                 "FAIL: burst high p99 TTFT %.2fms exceeds 2x idle %.2fms\n",
                 burst_p99 * 1e3, idle_p99 * 1e3);
    return 1;
  }
  for (const TenantServingStats& ts : snap.tenants) {
    if (ts.admitted == 0 || ts.completed == 0) {
      std::fprintf(stderr, "FAIL: tenant %llu starved\n",
                   static_cast<unsigned long long>(ts.tenant_id));
      return 1;
    }
  }
  if (json_path != nullptr &&
      !WritePriorityBurstJson(json_path, kHighs * 2 + kLows, idle_ttft,
                              burst_ttft, low_ttft, snap)) {
    return 1;
  }
  std::printf("bench_serving_throughput OK\n");
  return 0;
}

/// Largest zero-reuse prompt the scheduler will accept (vs reject with the
/// permanent kNeverFits) at `gang` context parallelism — the admission
/// boundary the gang relaxes from one device's budget to the combined gang's.
size_t MaxServableTokens(const ModelConfig& model, const CostModel& cost,
                         uint64_t budget_bytes, size_t devices, size_t gang) {
  RequestSchedulerOptions sopts;
  sopts.gpu_budget_bytes = budget_bytes;
  sopts.devices = devices;
  sopts.max_gang_size = gang;
  const WindowConfig wcfg{32, 128};
  // Fresh scheduler per probe: Enqueue holds no reservation, but reusing one
  // instance would trip the backlog cap long before the search converges.
  auto fits = [&](size_t tokens) {
    RequestScheduler sched(model, wcfg, cost, sopts);
    ServingRequest r;
    r.prompt.assign(tokens, 7);
    r.max_new_tokens = 1;
    r.fill_step = [](size_t, uint32_t, float*, float*, float*) {};
    return sched.Enqueue(std::move(r)).ok();
  };
  if (!fits(1)) return 0;
  size_t lo = 1, hi = 2;
  while (hi <= (size_t{1} << 24) && fits(hi)) {
    lo = hi;
    hi *= 2;
  }
  while (lo + 1 < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    (fits(mid) ? lo : hi) = mid;
  }
  return lo;
}

/// Machine-readable summary for --gang-size (CI archives BENCH_serving_gang.json).
bool WriteGangJson(const char* path, size_t gang_size, uint64_t probe_budget,
                   const std::vector<size_t>& max_tokens, double scaling,
                   uint64_t gang_budget, bool golden_match,
                   const ServingSnapshot& snap) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open --json path %s\n", path);
    return false;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"mode\": \"gang-scaling\",\n");
  std::fprintf(f, "  \"gang_size\": %zu,\n", gang_size);
  std::fprintf(f, "  \"probe_budget_bytes\": %llu,\n",
               static_cast<unsigned long long>(probe_budget));
  std::fprintf(f, "  \"max_context_tokens\": [");
  for (size_t k = 1; k < max_tokens.size(); ++k) {
    std::fprintf(f, "%s%zu", k == 1 ? "" : ", ", max_tokens[k]);
  }
  std::fprintf(f, "],\n");
  std::fprintf(f, "  \"context_scaling\": %.3f,\n", scaling);
  std::fprintf(f, "  \"gang_budget_bytes\": %llu,\n",
               static_cast<unsigned long long>(gang_budget));
  std::fprintf(f, "  \"golden_match\": %s,\n", golden_match ? "true" : "false");
  std::fprintf(f, "  \"gang_admissions\": %zu,\n", snap.gang_admissions);
  std::fprintf(f, "  \"gang_ring_transfer_bytes\": %llu,\n",
               static_cast<unsigned long long>(snap.gang_ring_transfer_bytes));
  std::fprintf(f, "  \"shard_migrations\": %zu,\n", snap.shard_migrations);
  std::fprintf(f, "  \"devices\": [");
  for (size_t d = 0; d < snap.devices.size(); ++d) {
    const DeviceServingStats& ds = snap.devices[d];
    std::fprintf(f,
                 "%s\n    {\"device\": %d, \"gang_shards\": %zu, "
                 "\"placements\": %zu, \"modeled_busy_seconds\": %.6f}",
                 d == 0 ? "" : ",", ds.device, ds.gang_shards, ds.placements,
                 ds.modeled_busy_seconds);
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
  return true;
}

/// --gang-size mode: the context-parallelism story. Part 1 probes the max
/// servable context at each gang size (the kNeverFits admission boundary) —
/// the headline is the 1 -> N scaling of what one request may hold. Part 2
/// runs the same decode twice — solo on an unbounded device, then ganged
/// across N devices under a per-device budget only the full gang satisfies —
/// and self-gates: the gang must actually form (gang_admissions, per-member
/// gang_shards) and its outputs must be bit-identical to the solo run (the
/// ring-merged partial softmax is exact, not approximate).
int RunGangScaling(size_t gang_size, const char* json_path) {
  constexpr size_t kGangSteps = 12;
  const ModelConfig model = bench::BenchModel();
  const auto suite = InfinityBenchSuite(0.04);
  const uint64_t kv_per_token = model.KvBytesPerToken();
  const WindowConfig wcfg{32, 128};
  ThreadPool pool(4);
  SimEnvironment probe_env;

  const uint64_t probe_budget = 512 * kv_per_token;
  std::printf("=== device gangs: max servable context vs gang size "
              "(per-device budget %s) ===\n", HumanBytes(probe_budget).c_str());
  std::printf("%10s %20s\n", "gang", "max-context-tokens");
  std::vector<size_t> max_tokens(gang_size + 1, 0);
  for (size_t k = 1; k <= gang_size; ++k) {
    max_tokens[k] = MaxServableTokens(model, probe_env.cost_model(),
                                      probe_budget, gang_size, k);
    std::printf("%10zu %20zu\n", k, max_tokens[k]);
  }
  const double scaling =
      max_tokens[1] > 0 ? static_cast<double>(max_tokens[gang_size]) /
                              static_cast<double>(max_tokens[1])
                        : 0.0;

  // One document shared by both golden runs: identical content guarantees any
  // output divergence is the gang path's fault, not the workload's.
  SyntheticContextOptions copts;
  copts.model = model;
  copts.spec = FindTask(suite, "En.QA");
  copts.pool = &pool;
  Tenant tenant;
  tenant.doc = std::make_unique<SyntheticContext>(copts);
  if (!tenant.doc->Generate().ok()) return 1;
  tenant.imported_tokens = tenant.doc->num_tokens();

  // Size the per-device budget so the decode footprint needs EXACTLY a
  // gang_size gang: any budget in [ceil(bytes/N), bytes/(N-1)) rejects every
  // smaller gang while the full gang's even shares fit.
  RequestSchedulerOptions est_opts;
  RequestScheduler est_sched(model, wcfg, probe_env.cost_model(), est_opts);
  const AdmissionEstimate est = est_sched.Estimate(
      MakeRequest(tenant, kGangSteps, false), tenant.doc->num_tokens());
  uint64_t gang_budget = 0;
  if (gang_size > 1) {
    const uint64_t lo = (est.gpu_bytes + gang_size - 1) / gang_size;
    const uint64_t hi = est.gpu_bytes / (gang_size - 1);
    gang_budget = lo + (hi > lo ? (hi - lo) / 2 : 0);
  }

  auto run = [&](size_t devices, size_t gang, uint64_t budget,
                 std::vector<float>* out, ServingSnapshot* snap) -> int {
    SimEnvironment env;
    DbOptions options;
    options.model = model;
    options.session.optimizer.short_context_threshold = 512;
    options.session.window = wcfg;
    options.materialize_pool = &pool;
    AlayaDB db(options, &env);
    auto kv = std::make_unique<KvCache>(model);
    if (!kv->AppendPrefixFrom(tenant.doc->kv(), tenant.doc->num_tokens()).ok()) {
      return 1;
    }
    auto training = tenant.doc->MakeTrainingQueries(128);
    if (!db.Import(tenant.doc->tokens(), std::move(kv), training.get()).ok()) {
      return 1;
    }
    ServingEngineOptions eopts;
    eopts.scheduler.max_concurrent_sessions = 1;
    eopts.scheduler.gpu_budget_bytes = budget;
    eopts.devices = devices;
    eopts.max_gang_size = gang;
    eopts.pool = &pool;
    ServingEngine engine(&db, eopts);
    ServingRequest req = MakeRequest(tenant, kGangSteps, false);
    req.record_outputs = true;
    auto h = engine.Submit(std::move(req));
    if (!h.ok()) {
      std::fprintf(stderr, "gang submit failed: %s\n",
                   h.status().ToString().c_str());
      return 1;
    }
    if (Status s = engine.RunToCompletion(); !s.ok()) {
      std::fprintf(stderr, "gang run failed: %s\n", s.ToString().c_str());
      return 1;
    }
    const RequestResult* r = h.value().Wait();
    if (r == nullptr || !r->status.ok() || r->steps_completed != kGangSteps) {
      std::fprintf(stderr, "gang request did not complete: %s\n",
                   r != nullptr ? r->status.ToString().c_str() : "(null)");
      return 1;
    }
    *out = r->outputs;
    *snap = engine.snapshot();
    return 0;
  };

  std::printf("\n=== gang golden: %zu-step decode over %zu tokens, solo "
              "(unbounded) vs gang-%zu (per-device budget %s, footprint %s) "
              "===\n",
              kGangSteps, tenant.doc->num_tokens(), gang_size,
              HumanBytes(gang_budget).c_str(), HumanBytes(est.gpu_bytes).c_str());
  std::vector<float> solo_out, gang_out;
  ServingSnapshot solo_snap, gang_snap;
  if (run(1, 1, 0, &solo_out, &solo_snap) != 0) return 1;
  if (run(gang_size, gang_size, gang_budget, &gang_out, &gang_snap) != 0) return 1;

  const bool golden_match =
      solo_out.size() == gang_out.size() && !solo_out.empty() &&
      std::memcmp(solo_out.data(), gang_out.data(),
                  solo_out.size() * sizeof(float)) == 0;
  std::printf("%8s %12s %14s\n", "device", "gang-shards", "busy-seconds");
  for (const DeviceServingStats& ds : gang_snap.devices) {
    std::printf("%8d %12zu %14.6f\n", ds.device, ds.gang_shards,
                ds.modeled_busy_seconds);
  }
  std::printf("gang admissions %zu, ring transfer %s, golden %s, "
              "context scaling 1->%zu: %.2fx\n",
              gang_snap.gang_admissions,
              HumanBytes(gang_snap.gang_ring_transfer_bytes).c_str(),
              golden_match ? "MATCH" : "MISMATCH", gang_size, scaling);

  int rc = 0;
  if (!golden_match) {
    std::fprintf(stderr, "FAIL: gang decode diverged from the solo golden\n");
    rc = 1;
  }
  if (gang_size > 1) {
    if (gang_snap.gang_admissions == 0) {
      std::fprintf(stderr, "FAIL: no gang admission happened\n");
      rc = 1;
    }
    for (size_t d = 0; d < gang_size; ++d) {
      if (gang_snap.devices.size() <= d || gang_snap.devices[d].gang_shards == 0) {
        std::fprintf(stderr, "FAIL: device %zu held no gang shard\n", d);
        rc = 1;
      }
    }
    if (gang_snap.gang_ring_transfer_bytes == 0) {
      std::fprintf(stderr, "FAIL: gang decode moved no ring-exchange bytes\n");
      rc = 1;
    }
    if (gang_size >= 4 && scaling < 3.0) {
      std::fprintf(stderr, "FAIL: context scaling %.2fx < 3.0x at gang %zu\n",
                   scaling, gang_size);
      rc = 1;
    }
  }
  if (json_path != nullptr &&
      !WriteGangJson(json_path, gang_size, probe_budget, max_tokens, scaling,
                     gang_budget, golden_match, gang_snap)) {
    rc = 1;
  }
  if (rc == 0) std::printf("bench_serving_throughput OK\n");
  return rc;
}

// --- Quantized-residency gate (--codec-gate) ------------------------------

struct CodecBudgetResult {
  size_t resident = 0;
  size_t spilled = 0;
  uint64_t resident_bytes = 0;
};

/// Imports `kContexts` synthetic tenants into a budgeted store under `codec`
/// and reports the residency split the eviction policy settles on. The
/// workload (specs, seeds, training queries) is byte-identical across calls,
/// so any residency difference is attributable to the codec alone.
int ImportUnderBudget(VectorCodec codec, uint64_t budget_bytes,
                      CodecBudgetResult* out) {
  const ModelConfig model = bench::BenchModel();
  const auto suite = InfinityBenchSuite(0.04);
  const char* tasks[] = {"En.QA", "En.MC", "Code.D", "Math.F"};
  constexpr size_t kContexts = 8;

  ThreadPool pool(4);
  SimEnvironment env;
  DbOptions options;
  options.model = model;
  options.materialize_pool = &pool;
  options.tier.host_budget_bytes = budget_bytes;
  options.quant.kv_codec = codec;
  AlayaDB db(options, &env);

  for (size_t i = 0; i < kContexts; ++i) {
    SyntheticContextOptions copts;
    copts.model = model;
    copts.spec = FindTask(suite, tasks[i % 4]);
    copts.spec.seed += i * 1000;
    copts.pool = &pool;
    SyntheticContext doc(copts);
    if (!doc.Generate().ok()) return 1;
    auto kv = std::make_unique<KvCache>(model);
    if (!kv->AppendPrefixFrom(doc.kv(), doc.num_tokens()).ok()) return 1;
    auto training = doc.MakeTrainingQueries(128);
    std::vector<int32_t> tokens = doc.tokens();
    if (!db.Import(std::move(tokens), std::move(kv), training.get()).ok()) return 1;
  }

  const TieredContextStore* tiers = db.tiers();
  if (tiers == nullptr) {
    std::fprintf(stderr, "codec gate: tiering disabled (need --host-budget > 0)\n");
    return 1;
  }
  const TieredContextStore::Stats ts = tiers->stats();
  out->resident = ts.resident_contexts;
  out->spilled = ts.spilled_contexts;
  out->resident_bytes = ts.resident_kv_bytes;
  if (ts.resident_contexts + ts.spilled_contexts != kContexts) {
    std::fprintf(stderr, "codec gate: %zu resident + %zu spilled != %zu imported\n",
                 ts.resident_contexts, ts.spilled_contexts, kContexts);
    return 1;
  }
  if (ts.resident_kv_bytes > budget_bytes) {
    std::fprintf(stderr, "codec gate: %llu resident bytes over the %llu budget\n",
                 static_cast<unsigned long long>(ts.resident_kv_bytes),
                 static_cast<unsigned long long>(budget_bytes));
    return 1;
  }
  return 0;
}

int RunCodecGate(uint64_t budget_bytes, const char* json_path) {
  if (budget_bytes == 0) {
    std::fprintf(stderr, "--codec-gate needs --host-budget > 0\n");
    return 2;
  }
  std::printf("=== codec gate: residency at equal host budget (%s) ===\n",
              HumanBytes(budget_bytes).c_str());
  CodecBudgetResult fp32, int8;
  if (ImportUnderBudget(VectorCodec::kFp32, budget_bytes, &fp32) != 0) return 1;
  if (ImportUnderBudget(VectorCodec::kInt8, budget_bytes, &int8) != 0) return 1;
  std::printf("%8s %10s %10s %16s\n", "codec", "resident", "spilled", "kv-bytes");
  std::printf("%8s %10zu %10zu %16s\n", "fp32", fp32.resident, fp32.spilled,
              HumanBytes(fp32.resident_bytes).c_str());
  std::printf("%8s %10zu %10zu %16s\n", "int8", int8.resident, int8.spilled,
              HumanBytes(int8.resident_bytes).c_str());
  // The budget must actually bind on fp32 (otherwise the comparison is
  // vacuous) and int8 must then fit strictly more contexts resident.
  bool pass = true;
  if (fp32.spilled == 0) {
    std::fprintf(stderr, "FAIL: budget does not bind on fp32 (nothing spilled); "
                         "lower --host-budget\n");
    pass = false;
  }
  if (int8.resident <= fp32.resident) {
    std::fprintf(stderr, "FAIL: int8 fits %zu resident contexts vs fp32's %zu "
                         "(want strictly more)\n",
                 int8.resident, fp32.resident);
    pass = false;
  }
  if (json_path != nullptr) {
    FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"mode\": \"codec-gate\",\n  \"host_budget_bytes\": %llu,\n"
                 "  \"fp32\": {\"resident\": %zu, \"spilled\": %zu, "
                 "\"resident_kv_bytes\": %llu},\n"
                 "  \"int8\": {\"resident\": %zu, \"spilled\": %zu, "
                 "\"resident_kv_bytes\": %llu},\n  \"pass\": %s\n}\n",
                 static_cast<unsigned long long>(budget_bytes), fp32.resident,
                 fp32.spilled, static_cast<unsigned long long>(fp32.resident_bytes),
                 int8.resident, int8.spilled,
                 static_cast<unsigned long long>(int8.resident_bytes),
                 pass ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  std::printf("codec gate: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  double prefill_fraction = 0.0;
  double store_fraction = 0.0;
  double open_loop_rate = 0.0;
  size_t devices = 1;
  uint64_t host_budget_bytes = 0;
  long step_budget = -1;  // -1 = unset: open loop defaults to 64, closed to 0.
  bool midstep = true;
  bool virtual_time = false;
  bool priority_burst = false;
  size_t num_tenants = 3;
  size_t gang_size = 0;  // > 0 selects the gang-scaling mode.
  bool codec_gate = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--host-budget") == 0 && i + 1 < argc) {
      // MiB of host DRAM the context store may keep resident (0 = unbounded).
      // Small enough budgets force spill/page-in traffic through the tiered
      // store, which shows up in the tier_* counters of the JSON summary.
      char* end = nullptr;
      const long n = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n < 0) {
        std::fprintf(stderr, "--host-budget: need MiB >= 0: %s\n", argv[i]);
        return 2;
      }
      host_budget_bytes = static_cast<uint64_t>(n) << 20;
    } else if (std::strcmp(argv[i], "--devices") == 0 && i + 1 < argc) {
      char* end = nullptr;
      const long n = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n < 1 || n > 64) {
        std::fprintf(stderr, "--devices: need an integer in [1, 64]: %s\n", argv[i]);
        return 2;
      }
      devices = static_cast<size_t>(n);
    } else if (std::strcmp(argv[i], "--step-budget") == 0 && i + 1 < argc) {
      // Per-step token budget shared by decode steps and prefill chunks
      // (0 = unlimited; see RequestSchedulerOptions::step_token_budget).
      char* end = nullptr;
      step_budget = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || step_budget < 0) {
        std::fprintf(stderr, "--step-budget: need tokens >= 0: %s\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--no-midstep") == 0) {
      midstep = false;  // Boundary-only admission: the phase-serialized mode.
    } else if (std::strcmp(argv[i], "--virtual-time") == 0) {
      virtual_time = true;  // Open-loop arrivals on the modeled device clocks.
    } else if (std::strcmp(argv[i], "--priority-burst") == 0) {
      priority_burst = true;  // The preemptive-scheduling scenario.
    } else if (std::strcmp(argv[i], "--gang-size") == 0 && i + 1 < argc) {
      // Context-parallelism mode: probe max servable context at gang sizes
      // 1..n, then gate a gang-of-n decode bit-identical to the solo run.
      char* end = nullptr;
      const long n = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n < 1 || n > 16) {
        std::fprintf(stderr, "--gang-size: need an integer in [1, 16]: %s\n",
                     argv[i]);
        return 2;
      }
      gang_size = static_cast<size_t>(n);
    } else if (std::strcmp(argv[i], "--tenants") == 0 && i + 1 < argc) {
      char* end = nullptr;
      const long n = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || n < 1 || n > 64) {
        std::fprintf(stderr, "--tenants: need an integer in [1, 64]: %s\n", argv[i]);
        return 2;
      }
      num_tenants = static_cast<size_t>(n);
    } else if (std::strcmp(argv[i], "--kv-codec") == 0 && i + 1 < argc) {
      ++i;
      if (!ParseVectorCodec(argv[i], &g_kv_codec)) {
        std::fprintf(stderr, "--kv-codec: want fp32|fp16|int8: %s\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--codec-gate") == 0) {
      codec_gate = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--prefill-fraction") == 0 && i + 1 < argc) {
      char* end = nullptr;
      prefill_fraction = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0') {
        std::fprintf(stderr, "--prefill-fraction: not a number: %s\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--store-fraction") == 0 && i + 1 < argc) {
      char* end = nullptr;
      store_fraction = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0') {
        std::fprintf(stderr, "--store-fraction: not a number: %s\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--open-loop") == 0 && i + 1 < argc) {
      char* end = nullptr;
      open_loop_rate = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0') {
        std::fprintf(stderr, "--open-loop: not a number: %s\n", argv[i]);
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--prefill-fraction f] [--store-fraction f] "
                   "[--open-loop arrivals_per_sec] [--step-budget tokens] "
                   "[--no-midstep] [--virtual-time] [--priority-burst] "
                   "[--gang-size n] [--tenants n] [--devices n] "
                   "[--host-budget mib] [--kv-codec fp32|fp16|int8] "
                   "[--codec-gate] [--json path]"
                   "   (0 <= f < 1, 0 <= store <= 1, arrivals > 0)\n",
                   argv[0]);
      return 2;
    }
  }
  if (codec_gate) {
    return RunCodecGate(host_budget_bytes, json_path);
  }
  if (gang_size > 0) {
    return RunGangScaling(gang_size, json_path);
  }
  if (priority_burst) {
    return RunPriorityBurst(num_tenants, midstep, step_budget, json_path);
  }
  if (open_loop_rate != 0.0) {
    if (!(open_loop_rate > 0.0)) {
      std::fprintf(stderr, "--open-loop must be positive\n");
      return 2;
    }
    if (!(prefill_fraction >= 0.0 && prefill_fraction < 1.0)) {
      std::fprintf(stderr, "--prefill-fraction must be in [0, 1)\n");
      return 2;
    }
    OpenLoopConfig cfg;
    cfg.arrivals_per_sec = open_loop_rate;
    cfg.devices = devices;
    cfg.host_budget_bytes = host_budget_bytes;
    cfg.prefill_fraction = prefill_fraction;
    // Open loop defaults to a bounded step so the continuous-batching path is
    // exercised out of the box; closed loop keeps the historical unlimited.
    cfg.step_token_budget = step_budget < 0 ? 64 : static_cast<size_t>(step_budget);
    cfg.midstep = midstep;
    cfg.virtual_time = virtual_time;
    cfg.tenants = num_tenants;
    return RunOpenLoop(cfg, json_path);
  }
  // Negated form so NaN (which fails every comparison) is rejected too.
  if (!(prefill_fraction >= 0.0 && prefill_fraction < 1.0)) {
    std::fprintf(stderr, "--prefill-fraction must be in [0, 1)\n");
    return 2;
  }
  if (!(store_fraction >= 0.0 && store_fraction <= 1.0)) {
    std::fprintf(stderr, "--store-fraction must be in [0, 1]\n");
    return 2;
  }

  const ModelConfig model = bench::BenchModel();
  const auto suite = InfinityBenchSuite(0.04);
  const char* tasks[] = {"En.QA", "En.MC", "Code.D", "Math.F"};
  constexpr size_t kTenants = 4;
  constexpr size_t kSteps = 16;

  std::printf("=== serving throughput: concurrent sessions over shared AlayaDB ===\n");
  std::printf("model: %u layers, %u q-heads, %u kv-heads, d=%u; %zu decode steps/request, "
              "prefill fraction %.2f, store fraction %.2f, %zu device%s\n\n",
              model.num_layers, model.num_q_heads, model.num_kv_heads, model.head_dim,
              kSteps, prefill_fraction, store_fraction, devices,
              devices == 1 ? "" : "s");

  ThreadPool pool(4);
  const size_t expected_stores =
      static_cast<size_t>(store_fraction * static_cast<double>(kTenants) + 0.5);

  std::printf("%12s %10s %12s %12s %14s %12s %12s %10s\n", "concurrency", "requests",
              "prefilled", "tokens/sec", "wall-seconds", "peak-gpu", "peak-conc",
              "stored");
  double sequential_tps = 0;
  for (size_t concurrency : {size_t{1}, size_t{2}, kTenants}) {
    // Fresh DB per run so context stores and virtual clocks are comparable.
    SimEnvironment env;
    DbOptions options;
    options.model = model;
    options.session.optimizer.short_context_threshold = 512;
    options.session.window = WindowConfig{32, 128};
    options.materialize_pool = &pool;
    options.tier.host_budget_bytes = host_budget_bytes;
    options.quant.kv_codec = g_kv_codec;
    AlayaDB db(options, &env);

    size_t expected_prefill = 0;
    std::vector<Tenant> tenants;
    for (size_t i = 0; i < kTenants; ++i) {
      SyntheticContextOptions copts;
      copts.model = model;
      copts.spec = FindTask(suite, tasks[i]);
      copts.spec.seed += i * 1000;  // Sequential suite seeds: avoid collisions.
      copts.pool = &pool;
      auto doc = std::make_unique<SyntheticContext>(copts);
      if (!doc->Generate().ok()) return 1;
      // Import only the reusable prefix; the rest of the prompt must prefill.
      const size_t import_tokens = static_cast<size_t>(
          static_cast<double>(doc->num_tokens()) * (1.0 - prefill_fraction));
      auto kv = std::make_unique<KvCache>(model);
      if (!kv->AppendPrefixFrom(doc->kv(), import_tokens).ok()) return 1;
      std::vector<int32_t> tokens(doc->tokens().begin(),
                                  doc->tokens().begin() +
                                      static_cast<long>(import_tokens));
      auto training = doc->MakeTrainingQueries(128);
      if (!db.Import(std::move(tokens), std::move(kv), training.get()).ok()) return 1;
      expected_prefill += doc->num_tokens() - import_tokens;
      tenants.push_back(Tenant{std::move(doc), import_tokens});
    }

    ShardContextsAcrossDevices(db, devices);
    ServingEngineOptions eopts;
    eopts.scheduler.max_concurrent_sessions = concurrency;
    eopts.scheduler.step_token_budget =
        step_budget < 0 ? 0 : static_cast<size_t>(step_budget);
    eopts.midstep_admission = midstep;
    eopts.devices = devices;
    eopts.pool = &pool;
    ServingEngine engine(&db, eopts);
    std::vector<RequestHandle> handles;
    for (size_t i = 0; i < kTenants; ++i) {
      auto id = engine.Submit(MakeRequest(tenants[i], kSteps, i < expected_stores));
      if (!id.ok()) {
        std::fprintf(stderr, "submit failed: %s\n", id.status().ToString().c_str());
        return 1;
      }
      handles.push_back(id.value());
    }
    if (Status s = engine.RunToCompletion(); !s.ok()) {
      std::fprintf(stderr, "serving failed: %s\n", s.ToString().c_str());
      return 1;
    }
    const ServingSnapshot snap = engine.snapshot();
    if (host_budget_bytes > 0) {
      std::printf("  tier: %llu spills, %llu page-ins, %llu prefetches, "
                  "%zu resident / %zu spilled\n",
                  static_cast<unsigned long long>(snap.tier_spills),
                  static_cast<unsigned long long>(snap.tier_page_ins),
                  static_cast<unsigned long long>(snap.tier_prefetches),
                  snap.tier_resident_contexts, snap.tier_spilled_contexts);
    }
    if (concurrency == 1) sequential_tps = snap.tokens_per_second;
    // Latency samples for the final (highest-concurrency) run's JSON summary.
    std::printf("%12zu %10zu %12zu %12.1f %14.3f %12s %12zu %10zu\n", concurrency,
                snap.completed, snap.tokens_prefilled, snap.tokens_per_second,
                snap.serve_wall_seconds, HumanBytes(snap.peak_gpu_bytes).c_str(),
                snap.peak_concurrent_sessions, snap.materializations_completed);
    if (snap.completed != kTenants || snap.tokens_decoded != kTenants * kSteps) {
      std::fprintf(stderr, "FAIL: expected %zu requests x %zu tokens, got %zu x %zu\n",
                   kTenants, kSteps, snap.completed, snap.tokens_decoded);
      return 1;
    }
    if (snap.tokens_prefilled != expected_prefill) {
      std::fprintf(stderr, "FAIL: expected %zu prefilled tokens, got %zu\n",
                   expected_prefill, snap.tokens_prefilled);
      return 1;
    }
    // Every store_on_finish retire must have materialized by the end of the
    // run (RunToCompletion drains the queue), and none may have failed — a
    // retire-path stall or a lost store is a regression, not noise.
    if (snap.materializations_completed != expected_stores ||
        snap.materializations_pending != 0 || snap.materializations_failed != 0) {
      std::fprintf(stderr,
                   "FAIL: expected %zu materializations, got %zu completed / "
                   "%zu pending / %zu failed\n",
                   expected_stores, snap.materializations_completed,
                   snap.materializations_pending, snap.materializations_failed);
      return 1;
    }
    if (db.contexts().size() != kTenants + expected_stores ||
        db.contexts().pending() != 0) {
      std::fprintf(stderr, "FAIL: store holds %zu contexts (%zu pending), want %zu\n",
                   db.contexts().size(), db.contexts().pending(),
                   kTenants + expected_stores);
      return 1;
    }
    if (concurrency > 1 && snap.peak_concurrent_sessions < 2) {
      std::fprintf(stderr, "FAIL: expected >1 concurrent session\n");
      return 1;
    }
    if (concurrency == kTenants) {
      std::vector<double> ttft_s, tpot_s;
      for (RequestHandle& h : handles) {
        const RequestResult* r = h.Wait();
        if (r == nullptr || !r->status.ok()) {
          std::fprintf(stderr, "request failed: %s\n",
                       r != nullptr ? r->status.ToString().c_str() : "(null)");
          return 1;
        }
        ttft_s.push_back(r->ttft_seconds);
        tpot_s.push_back(r->decode_wall_seconds /
                         static_cast<double>(std::max<size_t>(1, r->steps_completed)));
      }
      // With devices > 1 the sharded store must actually spread the tenants:
      // silent single-device fallback would invalidate every per-device number.
      size_t devices_used = 0;
      for (const DeviceServingStats& ds : snap.devices) {
        if (ds.placements > 0) ++devices_used;
      }
      if (devices_used < std::min(devices, kTenants)) {
        std::fprintf(stderr, "FAIL: %zu devices used, want >= %zu\n", devices_used,
                     std::min(devices, kTenants));
        return 1;
      }
      PrintDeviceTable(snap);
      if (json_path != nullptr &&
          !WriteBenchJson(json_path, "closed-loop", kTenants, ttft_s, tpot_s,
                          snap.tokens_per_second, snap.serve_wall_seconds, snap,
                          step_budget < 0 ? 0 : static_cast<size_t>(step_budget),
                          midstep)) {
        return 1;
      }
    }
  }

  std::printf("\nnote: per-head batching already saturates the pool at "
              "concurrency 1 on few-core hosts, so aggregate tok/s stays "
              "roughly flat while in-flight sessions multiply; gains appear "
              "as worker count grows (sequential baseline %.1f tok/s)\n",
              sequential_tps);
  std::printf("bench_serving_throughput OK\n");
  return 0;
}
