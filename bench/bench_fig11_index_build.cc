// Figure 11: index-construction acceleration (§7.2).
//   (a) construction time: CPU baseline (one RoarGraph per query head, built
//       sequentially, RetrievalAttention-style) vs simulated-GPU kNN with the
//       layer pipeline vs GPU + GQA index sharing.
//   (b) index memory with vs without sharing.
// Contexts are scaled down (~1/10 of the paper's 40K-200K) so the CPU
// baseline finishes; the *ratios* are the reproduced result.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/index/index_builder.h"

namespace alaya {
namespace {

struct BuildInputs {
  std::vector<VectorSet> keys;
  std::vector<VectorSet> queries;
  std::vector<VectorSetView> key_views;
  std::vector<VectorSetView> query_views;
};

BuildInputs MakeInputs(const SyntheticContext& ctx, const ModelConfig& m) {
  BuildInputs in;
  for (uint32_t h = 0; h < m.num_kv_heads; ++h) {
    VectorSetView v = ctx.kv().Keys(0, h);
    in.keys.emplace_back(v.d);
    in.keys.back().AppendBatch(v.data, v.n);
  }
  auto training = ctx.MakeTrainingQueries(ctx.num_tokens() * 4 / 10 / m.GroupSize());
  for (uint32_t g = 0; g < m.num_q_heads; ++g) {
    VectorSetView v = training->View(0, g);
    in.queries.emplace_back(v.d);
    in.queries.back().AppendBatch(v.data, v.n);
  }
  for (auto& k : in.keys) in.key_views.push_back(k.View());
  for (auto& q : in.queries) in.query_views.push_back(q.View());
  return in;
}

void Run() {
  bench::Header("Figure 11", "index construction: CPU vs GPU kNN vs GPU+GQA-share");
  ModelConfig model{1, 8, 2, 64, 2};  // One layer, 8 q-heads, GQA 4:1.
  std::printf("%-10s %12s %12s %12s | %12s %12s\n", "context", "CPU(s)", "GPU(s)",
              "GPU+share(s)", "mem noshare", "mem share");

  for (size_t tokens : {4000u, 8000u, 12000u, 16000u, 20000u}) {
    WorkloadSpec spec = FindTask(InfinityBenchSuite(1.0), "En.QA");
    spec.context_tokens = tokens;
    SyntheticContext ctx = bench::MakeContext(spec, model);
    BuildInputs in = MakeInputs(ctx, model);

    std::vector<std::unique_ptr<RoarGraph>> out;
    IndexBuildStats cpu_stats, gpu_stats, share_stats;

    IndexBuildOptions cpu;  // RetrievalAttention baseline.
    cpu.share_gqa_group = false;
    cpu.use_sim_gpu_knn = false;
    cpu.sequential_cpu_baseline = true;
    if (!BuildLayerIndices(in.key_views, in.query_views, model.GroupSize(), cpu, &out,
                           &cpu_stats)
             .ok()) {
      std::abort();
    }

    IndexBuildOptions gpu;  // GPU kNN + pipeline, still one index per q head.
    gpu.share_gqa_group = false;
    gpu.use_sim_gpu_knn = true;
    if (!BuildLayerIndices(in.key_views, in.query_views, model.GroupSize(), gpu, &out,
                           &gpu_stats)
             .ok()) {
      std::abort();
    }
    const uint64_t mem_noshare = gpu_stats.index_bytes;

    IndexBuildOptions share = gpu;  // + GQA sharing.
    share.share_gqa_group = true;
    if (!BuildLayerIndices(in.key_views, in.query_views, model.GroupSize(), share,
                           &out, &share_stats)
             .ok()) {
      std::abort();
    }

    std::printf("%-10zu %12.2f %12.2f %12.2f | %12s %12s\n", tokens,
                cpu_stats.reported_seconds, gpu_stats.reported_seconds,
                share_stats.reported_seconds, HumanBytes(mem_noshare).c_str(),
                HumanBytes(share_stats.index_bytes).c_str());
  }
  bench::Rule(78);
  std::printf(
      "expected shape (paper): GPU kNN + pipeline gives 3-15x over the CPU\n"
      "baseline; GQA sharing lifts it to 12-62x and shrinks index memory ~4x\n"
      "(h_q/h_kv = 4).\n");
}

}  // namespace
}  // namespace alaya

int main() {
  alaya::Run();
  return 0;
}
