// Table 3: the number k of required tokens differs per task. For each
// LongBench-style task, sweep top-k and report the smallest k whose quality
// matches full attention (within a small tolerance), plus its proportion of
// the context length.
#include <cstdio>

#include "bench/bench_util.h"

namespace alaya {
namespace {

double FidelityAtK(const SyntheticContext& ctx, MethodRunner* topk_runner, size_t k) {
  topk_runner->set_k(k);
  EvalOptions opts = bench::ScaledEval(ctx.model(), 4);
  auto eval = EvaluateMethod(ctx, topk_runner, opts);
  if (!eval.ok()) std::abort();
  return eval.value().fidelity;
}

void Run() {
  bench::Header("Table 3", "smallest top-k matching full-attention quality per task");
  // LongBench contexts are short enough to run at full scale; 4 planted
  // topics per head so large per-task critical sets (Qasper: 9.7% of the
  // context) fit disjointly.
  auto suite = LongBenchSuite(1.0);
  SimEnvironment env;
  std::printf("%-12s %10s %10s %12s %14s\n", "task", "context", "k_found",
              "proportion", "paper_k(prop)");

  struct PaperRow {
    const char* name;
    int k;
    double prop;
  };
  const PaperRow paper[] = {{"Qasper", 350, 0.0967},   {"Passage R.", 250, 0.0269},
                            {"HotpotQA", 200, 0.0219}, {"QMSum", 150, 0.0141},
                            {"LCC", 65, 0.0526},       {"TriviaQA", 20, 0.0024}};

  for (const auto& row : paper) {
    WorkloadSpec spec = FindTask(suite, row.name);
    spec.decode_steps = 4;
    SyntheticContext ctx = bench::MakeContext(spec, bench::BenchModel(),
                                              /*num_topics=*/4);

    MethodRunner full(ctx.model(), MethodSpec::Full());
    if (!full.Prepare(ctx, &env).ok()) std::abort();
    EvalOptions opts = bench::ScaledEval(ctx.model(), 4);
    auto full_eval = EvaluateMethod(ctx, &full, opts);
    // Tolerance accounts for the graph-recall asymptote (top-k recall
    // saturates slightly below exact full attention).
    const double target = full_eval.value().fidelity - 0.02;

    MethodSpec topk_spec = MethodSpec::TopK(4);
    topk_spec.window = WindowConfig{8, 64};  // Keep the window out of the way.
    MethodRunner topk(ctx.model(), topk_spec);
    if (!topk.Prepare(ctx, &env).ok()) std::abort();

    // Geometric sweep, then binary refinement (index built once per task).
    size_t lo = 4, hi = ctx.num_tokens() / 2, found = hi;
    size_t k = lo;
    while (k <= hi) {
      if (FidelityAtK(ctx, &topk, k) >= target) {
        found = k;
        break;
      }
      k *= 2;
    }
    size_t lower = found / 2;
    while (lower + 8 < found) {
      const size_t mid = (lower + found) / 2;
      if (FidelityAtK(ctx, &topk, mid) >= target) {
        found = mid;
      } else {
        lower = mid;
      }
    }
    std::printf("%-12s %10zu %10zu %11.2f%% %8d (%.2f%%)\n", spec.name.c_str(),
                ctx.num_tokens(), found,
                100.0 * static_cast<double>(found) / ctx.num_tokens(), row.k,
                row.prop * 100);
  }
  bench::Rule(78);
  std::printf("expected shape (paper): required k spans 20..350 (0.24%%..9.7%% of\n"
              "context); simple retrieval tasks need few tokens, dense-context\n"
              "tasks need many. Planted sizes follow Table 3, so found ~= planted.\n");
}

}  // namespace
}  // namespace alaya

int main() {
  alaya::Run();
  return 0;
}
