// Micro-kernels (google-benchmark): the primitives every experiment sits on.
#include <benchmark/benchmark.h>

#include "src/attention/attention_engine.h"
#include "src/attention/partial_softmax.h"
#include "src/common/rng.h"
#include "src/common/vec_math.h"
#include "src/index/flat_index.h"
#include "src/index/roargraph.h"
#include "src/query/diprs.h"
#include "tests/test_util.h"

namespace alaya {
namespace {

void BM_Dot(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  Rng rng(1);
  std::vector<float> a(d), b(d);
  rng.FillGaussian(a.data(), d);
  rng.FillGaussian(b.data(), d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dot(a.data(), b.data(), d));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Dot)->Arg(64)->Arg(128)->Arg(256);

void BM_Softmax(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2);
  std::vector<float> scores(n), scratch(n);
  rng.FillGaussian(scores.data(), n);
  for (auto _ : state) {
    scratch = scores;
    SoftmaxInPlace(scratch.data(), n);
    benchmark::DoNotOptimize(scratch.data());
  }
}
BENCHMARK(BM_Softmax)->Arg(1024)->Arg(16384);

void BM_PartialMerge(benchmark::State& state) {
  const size_t d = 128;
  Rng rng(3);
  PartialAttention a(d), b(d);
  std::vector<float> v(d);
  rng.FillGaussian(v.data(), d);
  a.Accumulate(1.0f, v.data());
  b.Accumulate(2.0f, v.data());
  std::vector<float> out(d);
  for (auto _ : state) {
    PartialAttention merged(d);
    merged.Merge(a);
    merged.Merge(b);
    merged.Finalize(out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_PartialMerge);

void BM_FullAttentionHead(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0)), d = 128;
  Rng rng(4);
  VectorSet keys(d), values(d);
  std::vector<float> v(d);
  for (size_t i = 0; i < n; ++i) {
    rng.FillGaussian(v.data(), d);
    keys.Append(v.data());
    rng.FillGaussian(v.data(), d);
    values.Append(v.data());
  }
  std::vector<float> q(d), out(d);
  rng.FillGaussian(q.data(), d);
  for (auto _ : state) {
    FullAttentionHead(q.data(), keys.View(), values.View(), n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FullAttentionHead)->Arg(4096)->Arg(32768);

struct SearchFixture {
  testutil::PlantedMips data;
  RoarGraph graph;
  SearchFixture()
      : data(20000, 64, 200, 9), graph(data.keys.View(), RoarGraphOptions{}) {
    VectorSet training = testutil::MakeTrainingQueries(data, 2000, 10);
    if (!graph.BuildFromQueries(training.View()).ok()) std::abort();
  }
};

SearchFixture& Fixture() {
  static SearchFixture* fx = new SearchFixture();
  return *fx;
}

void BM_GraphTopK(benchmark::State& state) {
  auto& fx = Fixture();
  const size_t k = static_cast<size_t>(state.range(0));
  SearchResult res;
  for (auto _ : state) {
    if (!fx.graph.SearchTopK(fx.data.query.data(), TopKParams{k, 0}, &res).ok()) {
      std::abort();
    }
    benchmark::DoNotOptimize(res.hits.data());
  }
}
BENCHMARK(BM_GraphTopK)->Arg(100)->Arg(2000);

void BM_Diprs(benchmark::State& state) {
  auto& fx = Fixture();
  DiprParams params;
  params.beta = 11.f;
  params.l0 = 128;
  for (auto _ : state) {
    SearchResult res =
        DiprsSearch(fx.graph.graph(), fx.data.keys.View(),
                    fx.graph.EntryPoint(fx.data.query.data()),
                    fx.data.query.data(), params);
    benchmark::DoNotOptimize(res.hits.data());
  }
}
BENCHMARK(BM_Diprs);

void BM_FlatDipr(benchmark::State& state) {
  auto& fx = Fixture();
  FlatIndex flat(fx.data.keys.View());
  DiprParams params;
  params.beta = 11.f;
  SearchResult res;
  for (auto _ : state) {
    if (!flat.SearchDipr(fx.data.query.data(), params, &res).ok()) std::abort();
    benchmark::DoNotOptimize(res.hits.data());
  }
}
BENCHMARK(BM_FlatDipr);

}  // namespace
}  // namespace alaya

BENCHMARK_MAIN();
