// Micro-kernels (google-benchmark): the primitives every experiment sits on.
//
// Two modes:
//   (default)           google-benchmark harness over all BM_* rows.
//   --json <path>       hand-timed kernel gate: times fp32 scalar vs the
//                       dispatched fp32/fp16/int8 dot kernels, writes the
//                       rows to <path> (CI archives it as BENCH_kernels.json)
//                       and exits non-zero if the int8 dot is not >= 1.5x the
//                       scalar fp32 dot. The gate only binds when the runtime
//                       dispatch level is wider than "scalar" — a scalar-only
//                       host has no SIMD win to assert.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/attention/attention_engine.h"
#include "src/attention/partial_softmax.h"
#include "src/common/rng.h"
#include "src/common/vec_math.h"
#include "src/common/vector_codec.h"
#include "src/index/flat_index.h"
#include "src/index/roargraph.h"
#include "src/query/diprs.h"
#include "tests/test_util.h"

namespace alaya {
namespace {

void BM_Dot(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  Rng rng(1);
  std::vector<float> a(d), b(d);
  rng.FillGaussian(a.data(), d);
  rng.FillGaussian(b.data(), d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dot(a.data(), b.data(), d));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Dot)->Arg(64)->Arg(128)->Arg(256);

void BM_DotF16(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  Rng rng(1);
  std::vector<float> a(d), b(d);
  rng.FillGaussian(a.data(), d);
  rng.FillGaussian(b.data(), d);
  std::vector<uint16_t> h(d);
  for (size_t i = 0; i < d; ++i) h[i] = Fp16FromFloat(b[i]);
  const KernelOps& ops = Kernels();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.dot_f16(a.data(), h.data(), d));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DotF16)->Arg(64)->Arg(128)->Arg(256);

void BM_DotI8(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  Rng rng(1);
  std::vector<float> a(d);
  rng.FillGaussian(a.data(), d);
  std::vector<int8_t> c(d);
  for (size_t i = 0; i < d; ++i) c[i] = static_cast<int8_t>((i * 37) % 251 - 125);
  const KernelOps& ops = Kernels();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.dot_i8(a.data(), c.data(), d));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DotI8)->Arg(64)->Arg(128)->Arg(256);

void BM_MatVecDotCoded(benchmark::State& state) {
  // Decode-free scoring of a whole coded block vs the fp32 MatVecDot baseline
  // (BM_MatVecDotFp32) on identical geometry.
  const size_t n = static_cast<size_t>(state.range(0)), d = 128;
  Rng rng(5);
  VectorSet rows(d);
  std::vector<float> v(d);
  for (size_t i = 0; i < n; ++i) {
    rng.FillGaussian(v.data(), d);
    rows.Append(v.data());
  }
  CodedVectorSet coded;
  coded.Encode(rows.View(), VectorCodec::kInt8);
  std::vector<float> q(d), out(n);
  rng.FillGaussian(q.data(), d);
  for (auto _ : state) {
    MatVecDotCoded(coded, q.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MatVecDotCoded)->Arg(4096)->Arg(32768);

void BM_MatVecDotFp32(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0)), d = 128;
  Rng rng(5);
  VectorSet rows(d);
  std::vector<float> v(d);
  for (size_t i = 0; i < n; ++i) {
    rng.FillGaussian(v.data(), d);
    rows.Append(v.data());
  }
  std::vector<float> q(d), out(n);
  rng.FillGaussian(q.data(), d);
  for (auto _ : state) {
    MatVecDot(rows.View().data, n, d, q.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MatVecDotFp32)->Arg(4096)->Arg(32768);

void BM_Softmax(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2);
  std::vector<float> scores(n), scratch(n);
  rng.FillGaussian(scores.data(), n);
  for (auto _ : state) {
    scratch = scores;
    SoftmaxInPlace(scratch.data(), n);
    benchmark::DoNotOptimize(scratch.data());
  }
}
BENCHMARK(BM_Softmax)->Arg(1024)->Arg(16384);

void BM_PartialMerge(benchmark::State& state) {
  const size_t d = 128;
  Rng rng(3);
  PartialAttention a(d), b(d);
  std::vector<float> v(d);
  rng.FillGaussian(v.data(), d);
  a.Accumulate(1.0f, v.data());
  b.Accumulate(2.0f, v.data());
  std::vector<float> out(d);
  for (auto _ : state) {
    PartialAttention merged(d);
    merged.Merge(a);
    merged.Merge(b);
    merged.Finalize(out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_PartialMerge);

void BM_FullAttentionHead(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0)), d = 128;
  Rng rng(4);
  VectorSet keys(d), values(d);
  std::vector<float> v(d);
  for (size_t i = 0; i < n; ++i) {
    rng.FillGaussian(v.data(), d);
    keys.Append(v.data());
    rng.FillGaussian(v.data(), d);
    values.Append(v.data());
  }
  std::vector<float> q(d), out(d);
  rng.FillGaussian(q.data(), d);
  for (auto _ : state) {
    FullAttentionHead(q.data(), keys.View(), values.View(), n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FullAttentionHead)->Arg(4096)->Arg(32768);

struct SearchFixture {
  testutil::PlantedMips data;
  RoarGraph graph;
  SearchFixture()
      : data(20000, 64, 200, 9), graph(data.keys.View(), RoarGraphOptions{}) {
    VectorSet training = testutil::MakeTrainingQueries(data, 2000, 10);
    if (!graph.BuildFromQueries(training.View()).ok()) std::abort();
  }
};

SearchFixture& Fixture() {
  static SearchFixture* fx = new SearchFixture();
  return *fx;
}

void BM_GraphTopK(benchmark::State& state) {
  auto& fx = Fixture();
  const size_t k = static_cast<size_t>(state.range(0));
  SearchResult res;
  for (auto _ : state) {
    if (!fx.graph.SearchTopK(fx.data.query.data(), TopKParams{k, 0}, &res).ok()) {
      std::abort();
    }
    benchmark::DoNotOptimize(res.hits.data());
  }
}
BENCHMARK(BM_GraphTopK)->Arg(100)->Arg(2000);

void BM_Diprs(benchmark::State& state) {
  auto& fx = Fixture();
  DiprParams params;
  params.beta = 11.f;
  params.l0 = 128;
  for (auto _ : state) {
    SearchResult res =
        DiprsSearch(fx.graph.graph(), fx.data.keys.View(),
                    fx.graph.EntryPoint(fx.data.query.data()),
                    fx.data.query.data(), params);
    benchmark::DoNotOptimize(res.hits.data());
  }
}
BENCHMARK(BM_Diprs);

void BM_FlatDipr(benchmark::State& state) {
  auto& fx = Fixture();
  FlatIndex flat(fx.data.keys.View());
  DiprParams params;
  params.beta = 11.f;
  SearchResult res;
  for (auto _ : state) {
    if (!flat.SearchDipr(fx.data.query.data(), params, &res).ok()) std::abort();
    benchmark::DoNotOptimize(res.hits.data());
  }
}
BENCHMARK(BM_FlatDipr);

// --- Hand-timed kernel gate (--json mode) ---------------------------------

struct GateRow {
  const char* name;
  double ns_per_dot;
  double speedup_vs_scalar_fp32;
};

/// Times `fn` (one full sweep over the block of `n` dots) best-of-reps with a
/// warmup sweep; returns ns per dot.
template <typename Fn>
double TimeNsPerDot(size_t n, Fn&& fn) {
  using clock = std::chrono::steady_clock;
  fn();  // Warmup (page-in, branch predictors, turbo settle).
  double best = 1e300;
  for (int rep = 0; rep < 7; ++rep) {
    const auto t0 = clock::now();
    fn();
    const auto t1 = clock::now();
    const double ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count() /
        static_cast<double>(n);
    if (ns < best) best = ns;
  }
  return best;
}

int RunKernelGate(const std::string& json_path) {
  constexpr size_t kN = 8192, kD = 128, kSweeps = 8;
  Rng rng(17);
  std::vector<float> block(kN * kD), q(kD);
  rng.FillGaussian(block.data(), block.size());
  rng.FillGaussian(q.data(), kD);
  std::vector<uint16_t> f16(kN * kD);
  for (size_t i = 0; i < block.size(); ++i) f16[i] = Fp16FromFloat(block[i]);
  CodecParams params =
      ComputeCodecParams(block.data(), block.size(), VectorCodec::kInt8);
  std::vector<int8_t> i8(kN * kD);
  for (size_t i = 0; i < block.size(); ++i) {
    const float c = std::nearbyint(block[i] / params.scale + params.zero_point);
    i8[i] = static_cast<int8_t>(c < -128.f ? -128.f : (c > 127.f ? 127.f : c));
  }

  volatile float sink = 0.f;  // Defeats dead-code elimination across sweeps.
  const KernelOps& scalar = ScalarKernels();
  const KernelOps& ops = Kernels();
  const size_t dots = kN * kSweeps;

  const double scalar_fp32 = TimeNsPerDot(dots, [&] {
    float acc = 0.f;
    for (size_t s = 0; s < kSweeps; ++s)
      for (size_t i = 0; i < kN; ++i) acc += scalar.dot(q.data(), block.data() + i * kD, kD);
    sink = sink + acc;
  });
  const double fp32 = TimeNsPerDot(dots, [&] {
    float acc = 0.f;
    for (size_t s = 0; s < kSweeps; ++s)
      for (size_t i = 0; i < kN; ++i) acc += ops.dot(q.data(), block.data() + i * kD, kD);
    sink = sink + acc;
  });
  const double fp16 = TimeNsPerDot(dots, [&] {
    float acc = 0.f;
    for (size_t s = 0; s < kSweeps; ++s)
      for (size_t i = 0; i < kN; ++i) acc += ops.dot_f16(q.data(), f16.data() + i * kD, kD);
    sink = sink + acc;
  });
  const double int8 = TimeNsPerDot(dots, [&] {
    float acc = 0.f;
    for (size_t s = 0; s < kSweeps; ++s)
      for (size_t i = 0; i < kN; ++i) acc += ops.dot_i8(q.data(), i8.data() + i * kD, kD);
    sink = sink + acc;
  });

  const GateRow rows[] = {
      {"dot_fp32_scalar", scalar_fp32, 1.0},
      {"dot_fp32", fp32, scalar_fp32 / fp32},
      {"dot_f16", fp16, scalar_fp32 / fp16},
      {"dot_i8", int8, scalar_fp32 / int8},
  };

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 2;
  }
  std::fprintf(f, "{\n  \"dispatch_level\": \"%s\",\n  \"dim\": %zu,\n  \"rows\": [\n",
               KernelDispatchLevel(), kD);
  for (size_t i = 0; i < 4; ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"ns_per_dot\": %.3f, "
                 "\"speedup_vs_scalar_fp32\": %.3f}%s\n",
                 rows[i].name, rows[i].ns_per_dot, rows[i].speedup_vs_scalar_fp32,
                 i + 1 < 4 ? "," : "");
  }
  const bool scalar_only = std::strcmp(KernelDispatchLevel(), "scalar") == 0;
  const double int8_speedup = scalar_fp32 / int8;
  const bool gate_pass = scalar_only || int8_speedup >= 1.5;
  std::fprintf(f, "  ],\n  \"gate\": {\"int8_min_speedup\": 1.5, \"int8_speedup\": %.3f, "
                  "\"enforced\": %s, \"pass\": %s}\n}\n",
               int8_speedup, scalar_only ? "false" : "true",
               gate_pass ? "true" : "false");
  std::fclose(f);

  std::printf("kernel gate: level=%s int8 dot %.2fx vs scalar fp32 (gate %.2fx, %s)\n",
              KernelDispatchLevel(), int8_speedup, 1.5,
              scalar_only ? "not enforced on scalar host"
                          : (gate_pass ? "PASS" : "FAIL"));
  return gate_pass ? 0 : 1;
}

}  // namespace
}  // namespace alaya

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      return alaya::RunKernelGate(argv[i + 1]);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
