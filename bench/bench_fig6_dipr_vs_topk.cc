// Figure 6: quality vs number of retrieved critical tokens, DIPR vs top-k, on
// Passage R. and LCC profiles. DIPR reaches higher quality with fewer
// retrieved tokens because its budget adapts per head/query.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/llm/quality.h"

namespace alaya {
namespace {

struct Point {
  double tokens;
  double score;
};

Point EvalSpec(const SyntheticContext& ctx, const MethodSpec& spec,
               double full_fidelity, double paper_score, SimEnvironment* env) {
  MethodRunner runner(ctx.model(), spec);
  if (!runner.Prepare(ctx, env).ok()) std::abort();
  EvalOptions opts = bench::ScaledEval(ctx.model(), 4);
  auto eval = EvaluateMethod(ctx, &runner, opts);
  if (!eval.ok()) std::abort();
  return {eval.value().mean_retrieved,
          AnchoredScore(eval.value().fidelity, full_fidelity, paper_score)};
}

void RunTask(const char* name) {
  WorkloadSpec spec = FindTask(LongBenchSuite(1.0), name);
  spec.decode_steps = 4;
  SyntheticContext ctx = bench::MakeContext(spec, bench::BenchModel(),
                                            /*num_topics=*/4);
  SimEnvironment env;

  MethodRunner full(ctx.model(), MethodSpec::Full());
  if (!full.Prepare(ctx, &env).ok()) std::abort();
  auto full_eval = EvaluateMethod(ctx, &full, bench::ScaledEval(ctx.model(), 4));
  const double full_fid = full_eval.value().fidelity;

  std::printf("\n[%s] context=%zu, paper full-attention score=%.1f\n", name,
              ctx.num_tokens(), spec.paper_full_score);
  std::printf("%-10s %14s %10s\n", "method", "mean_tokens", "score");

  const double base_beta = SuggestedDiprBeta(spec, ctx.model().head_dim);
  const WindowConfig small_window{8, 64};
  for (double f : {0.55, 0.7, 0.85, 1.0, 1.15}) {
    MethodSpec m = MethodSpec::Diprs(static_cast<float>(base_beta * f));
    m.label = "DIPR";
    m.window = small_window;
    Point p = EvalSpec(ctx, m, full_fid, spec.paper_full_score, &env);
    std::printf("%-10s %14.1f %10.2f\n", "DIPR", p.tokens, p.score);
  }
  for (size_t k : {25u, 50u, 100u, 200u, 400u}) {
    MethodSpec m = MethodSpec::TopK(k);
    m.window = small_window;
    Point p = EvalSpec(ctx, m, full_fid, spec.paper_full_score, &env);
    std::printf("%-10s %14.1f %10.2f\n", "Top-k", p.tokens, p.score);
  }
}

}  // namespace
}  // namespace alaya

int main() {
  alaya::bench::Header("Figure 6",
                       "quality vs retrieved tokens: DIPR vs top-k (Passage R., LCC)");
  alaya::RunTask("Passage R.");
  alaya::RunTask("LCC");
  alaya::bench::Rule(78);
  std::printf(
      "expected shape (paper): the DIPR curve dominates top-k — equal or higher\n"
      "quality at fewer retrieved tokens, because k cannot fit all heads at once.\n");
  return 0;
}
