// Ablations of the §7 optimizations called out in DESIGN.md:
//   (a) window-caching enhanced DIPRS: explored candidates with vs without
//       the window prior;
//   (b) data-centric attention vs gather-then-compute: modeled device time;
//   (c) type-aware buffer manager vs plain LRU: hit rate under a graph-search
//       style access pattern.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/index/roargraph.h"
#include "src/query/diprs.h"
#include "src/storage/buffer_manager.h"

namespace alaya {
namespace {

void WindowHintAblation() {
  std::printf("\n(a) window-caching enhanced DIPRS (Section 7.1)\n");
  ModelConfig model{1, 2, 1, 64, 2};
  WorkloadSpec spec = FindTask(InfinityBenchSuite(1.0), "En.QA");
  spec.context_tokens = 12000;
  SyntheticContext ctx = bench::MakeContext(spec, model);
  RoarGraph graph(ctx.kv().Keys(0, 0), RoarGraphOptions{});
  auto training = ctx.MakeTrainingQueries(2400);
  if (!graph.BuildFromQueries(training->View(0, 0)).ok()) std::abort();

  DiprParams params;
  params.beta = static_cast<float>(SuggestedDiprBeta(spec, model.head_dim));
  // Small exploration floor so the pruning threshold (not the l0 floor)
  // governs list growth — the quantity the window prior improves.
  params.l0 = 16;
  WindowCache window(WindowConfig{32, 32});

  double appended_plain = 0, appended_hinted = 0, comps_plain = 0, comps_hinted = 0;
  std::vector<float> q(model.head_dim);
  const size_t steps = 8;
  Rng entry_rng(3);
  for (size_t step = 0; step < steps; ++step) {
    ctx.MakeDecodeQuery(step, 0, 0, q.data());
    // Entry far from the query's maximum (a different topic's member): the
    // max-norm entry is already near the sink, which would hide the hint's
    // benefit. Background leaves have no out-edges, so pick a planted token.
    const auto& other_topic = ctx.TopicMembers(0, 0, (step + 3) % 8);
    const uint32_t entry =
        other_topic[entry_rng.UniformInt(other_topic.size())];
    SearchResult plain =
        DiprsSearch(graph.graph(), graph.vectors(), entry, q.data(), params);
    DiprsHints hints;
    hints.prior_best_ip =
        window.MaxWindowInnerProduct(q.data(), ctx.kv().Keys(0, 0), ctx.num_tokens());
    SearchResult hinted =
        DiprsSearch(graph.graph(), graph.vectors(), entry, q.data(), params, hints);
    appended_plain += plain.stats.appended;
    appended_hinted += hinted.stats.appended;
    comps_plain += plain.stats.dist_comps;
    comps_hinted += hinted.stats.dist_comps;
  }
  std::printf("  appended/query:   plain=%.1f  window-hinted=%.1f  (%.1f%% saved)\n",
              appended_plain / steps, appended_hinted / steps,
              100.0 * (1.0 - appended_hinted / appended_plain));
  std::printf("  dist comps/query: plain=%.1f  window-hinted=%.1f\n",
              comps_plain / steps, comps_hinted / steps);
  std::printf(
      "  note: on this planted geometry the search reaches the global maximum\n"
      "  within the first hops (the connectivity hub sits near the sink), so\n"
      "  the prior's savings are small; the pruning mechanism itself is\n"
      "  verified in diprs_test (WindowHintPrunesExploration, MaxExplored).\n");
}

void DataCentricAblation() {
  std::printf("\n(b) data-centric attention vs gather-then-compute (Section 7.2)\n");
  const CostModel cost;
  const ModelConfig paper = ModelConfig::Llama3_8B();
  std::printf("  %-12s %18s %18s %10s\n", "retrieved", "data-centric", "gather",
              "ratio");
  for (size_t retrieved : {100u, 500u, 2000u, 8000u}) {
    // Data-centric: only the (d+2)-float partial result crosses PCIe per head.
    const double dc = cost.TransferSeconds((paper.head_dim + 2) * sizeof(float)) *
                      paper.num_q_heads * paper.num_layers;
    // Gather: retrieved K+V cross PCIe, then a device kernel runs.
    const uint64_t bytes = static_cast<uint64_t>(retrieved) * 2 * paper.head_dim *
                           paper.bytes_per_scalar;
    const double gather =
        (cost.TransferSeconds(bytes) +
         cost.GpuAttentionSeconds(4.0 * retrieved * paper.head_dim)) *
        paper.num_q_heads * paper.num_layers;
    std::printf("  %-12zu %18s %18s %9.1fx\n", retrieved, HumanSeconds(dc).c_str(),
                HumanSeconds(gather).c_str(), gather / dc);
  }
}

void BufferAblation() {
  std::printf("\n(c) type-aware buffer manager vs plain LRU (Section 7.3)\n");
  auto run = [&](bool type_aware) {
    BufferManager::Options o;
    o.block_size = 4096;
    o.capacity_bytes = 64 * 4096;
    o.type_aware = type_aware;
    BufferManager bm(o);
    Rng rng(7);
    // Graph-search pattern: index blocks (few, hot) consulted on every hop;
    // data blocks (many) touched once each.
    const uint64_t kIndexBlocks = 32, kDataBlocks = 4096;
    auto loader = [](uint8_t* dst) {
      std::memset(dst, 0, 4096);
      return Status::Ok();
    };
    for (int hop = 0; hop < 20000; ++hop) {
      const uint64_t ib = rng.UniformInt(kIndexBlocks);
      if (!bm.Fetch(1, ib, BlockType::kIndex, loader).ok()) std::abort();
      const uint64_t db = kIndexBlocks + rng.UniformInt(kDataBlocks);
      if (!bm.Fetch(1, db, BlockType::kData, loader).ok()) std::abort();
    }
    return bm.stats();
  };
  const BufferStats aware = run(true);
  const BufferStats plain = run(false);
  std::printf("  type-aware: hit rate %.3f (%llu evictions)\n", aware.HitRate(),
              static_cast<unsigned long long>(aware.evictions));
  std::printf("  plain LRU:  hit rate %.3f (%llu evictions)\n", plain.HitRate(),
              static_cast<unsigned long long>(plain.evictions));
}

}  // namespace
}  // namespace alaya

int main() {
  alaya::bench::Header("Ablations", "window-hint / data-centric / buffer policy");
  alaya::WindowHintAblation();
  alaya::DataCentricAblation();
  alaya::BufferAblation();
  return 0;
}
