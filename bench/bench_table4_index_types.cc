// Table 4: measured characteristics of the three index types — device memory
// consumption, and retrieval latency at small and large k.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/timer.h"
#include "src/index/coarse_index.h"
#include "src/index/flat_index.h"
#include "src/index/roargraph.h"

namespace alaya {
namespace {

double MeasureTopK(const VectorIndex& index, const SyntheticContext& ctx, size_t k,
                   size_t queries) {
  std::vector<float> q(ctx.model().head_dim);
  SearchResult res;
  AccumTimer timer;
  for (size_t step = 0; step < queries; ++step) {
    ctx.MakeDecodeQuery(step, 0, 0, q.data());
    timer.Start();
    TopKParams params{k, std::max<size_t>(k, 64)};
    if (!index.SearchTopK(q.data(), params, &res).ok()) std::abort();
    timer.Stop();
  }
  return timer.TotalMillis() / static_cast<double>(queries);
}

void Run() {
  bench::Header("Table 4", "index-type characteristics (measured)");
  ModelConfig model{1, 2, 1, 64, 2};
  WorkloadSpec spec = FindTask(InfinityBenchSuite(1.0), "En.QA");
  spec.context_tokens = 16000;
  SyntheticContext ctx = bench::MakeContext(spec, model);
  VectorSetView keys = ctx.kv().Keys(0, 0);

  SimEnvironment env;
  CoarseIndexOptions copts;
  copts.block_size = 128;
  copts.gpu_memory = &env.gpu_memory();
  copts.bytes_per_token_kv = static_cast<uint32_t>(model.KvBytesPerTokenLayer());
  CoarseIndex coarse(keys, copts);

  RoarGraph fine(keys, RoarGraphOptions{});
  auto training = ctx.MakeTrainingQueries(spec.context_tokens * 2 / 10);
  if (!fine.BuildFromQueries(training->View(0, 0)).ok()) std::abort();

  FlatIndex flat(keys);

  const size_t kSmall = 64, kLarge = 4096, kQueries = 12;
  std::printf("context=%zu tokens, d=%u\n\n", spec.context_tokens, model.head_dim);
  std::printf("%-8s %14s %16s %16s %8s\n", "index", "GPU memory", "lat k=64 (ms)",
              "lat k=4096 (ms)", "DIPR?");

  const double c_small = MeasureTopK(coarse, ctx, kSmall, kQueries);
  const double c_large = MeasureTopK(coarse, ctx, kLarge, kQueries);
  std::printf("%-8s %14s %16.3f %16.3f %8s\n", "coarse",
              HumanBytes(env.gpu_memory().current()).c_str(), c_small, c_large, "no");

  const double f_small = MeasureTopK(fine, ctx, kSmall, kQueries);
  const double f_large = MeasureTopK(fine, ctx, kLarge, kQueries);
  std::printf("%-8s %14s %16.3f %16.3f %8s\n", "fine", "0 B (CPU)", f_small, f_large,
              "yes");

  const double s_small = MeasureTopK(flat, ctx, kSmall, kQueries);
  const double s_large = MeasureTopK(flat, ctx, kLarge, kQueries);
  std::printf("%-8s %14s %16.3f %16.3f %8s\n", "flat", "0 B (CPU)", s_small, s_large,
              "yes");

  bench::Rule(78);
  std::printf(
      "expected shape (paper Table 4): coarse = large GPU memory, low latency\n"
      "at both k; fine = low latency at small k, degrades at large k (random\n"
      "access); flat = medium at both (sequential scan), winning at large k.\n"
      "fine k=64 vs flat k=64: %.2fx; flat k=4096 vs fine k=4096: %.2fx\n",
      s_small / std::max(f_small, 1e-9), f_large / std::max(s_large, 1e-9));
}

}  // namespace
}  // namespace alaya

int main() {
  alaya::Run();
  return 0;
}
