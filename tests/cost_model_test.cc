#include "src/device/cost_model.h"

#include <gtest/gtest.h>

namespace alaya {
namespace {

TEST(CostModelTest, TransferMonotonicInBytes) {
  CostModel cm;
  EXPECT_LT(cm.TransferSeconds(1 << 10), cm.TransferSeconds(1 << 20));
  EXPECT_LT(cm.TransferSeconds(1 << 20), cm.TransferSeconds(1 << 30));
  EXPECT_GT(cm.TransferSeconds(0), 0.0);  // Launch overhead.
}

TEST(CostModelTest, TransferMatchesBandwidth) {
  CostModel cm;
  cm.kernel_launch_seconds = 0;
  // 24 GB at 24 GB/s == 1 second.
  EXPECT_NEAR(cm.TransferSeconds(24ull << 30), 1.073, 0.08);
}

TEST(CostModelTest, GpuAttentionScalesWithFlops) {
  CostModel cm;
  const double t1 = cm.GpuAttentionSeconds(1e12);
  const double t2 = cm.GpuAttentionSeconds(2e12);
  EXPECT_GT(t2, t1);
  EXPECT_NEAR((t2 - cm.kernel_launch_seconds) / (t1 - cm.kernel_launch_seconds), 2.0,
              0.01);
}

TEST(CostModelTest, PrefillFlopsQuadratic) {
  const double f1 = PrefillAttentionFlops(1000, 8, 128, 4);
  const double f2 = PrefillAttentionFlops(2000, 8, 128, 4);
  EXPECT_NEAR(f2 / f1, 4.0, 0.01);
}

TEST(CostModelTest, DecodeFlopsLinear) {
  const double f1 = DecodeAttentionFlops(1000, 8, 128, 4);
  const double f2 = DecodeAttentionFlops(3000, 8, 128, 4);
  EXPECT_NEAR(f2 / f1, 3.0, 0.01);
}

TEST(CostModelTest, HfDecodeSlowerThanIdealStream) {
  CostModel cm;
  const uint64_t bytes = 1ull << 30;
  EXPECT_GT(cm.HfDecodeAttentionSeconds(bytes), cm.GpuMemoryStreamSeconds(bytes));
}

TEST(CostModelTest, FullModelDecodeViolatesSloPastHundredK) {
  // The paper observes full attention misses the 0.24 s TPOT SLO on long
  // contexts; verify the calibrated model reproduces the crossover region.
  CostModel cm;
  auto tpot = [&](uint64_t tokens) {
    const uint64_t kv_bytes = tokens * 2 * 8 * 128 * 2 * 32;  // Llama-3-8B bf16.
    return cm.HfDecodeAttentionSeconds(kv_bytes);
  };
  EXPECT_LT(tpot(20'000), 0.24);
  EXPECT_GT(tpot(150'000), 0.24);
}

TEST(CostModelTest, NvmeReadIncludesLatency) {
  CostModel cm;
  EXPECT_GE(cm.NvmeReadSeconds(0), cm.nvme_latency_seconds);
}

TEST(VirtualClockTest, Accumulates) {
  VirtualClock clock;
  EXPECT_EQ(clock.Seconds(), 0.0);
  clock.Advance(1.5);
  clock.Advance(0.5);
  EXPECT_DOUBLE_EQ(clock.Seconds(), 2.0);
  clock.Reset();
  EXPECT_EQ(clock.Seconds(), 0.0);
}

}  // namespace
}  // namespace alaya
