// Background Store(): late materialization off the decode path.
//
// Locks in the three guarantees the materialization queue makes:
//   1. equivalence — a store_on_finish run with background materialization
//      produces outputs AND stored contexts bit-identical to the synchronous
//      path (same code, different thread), observable after Drain();
//   2. isolation — BestPrefixMatch racing a materialization can never observe
//      a half-built context (pending ids are invisible until Publish);
//   3. index sharing — storing over a fully reused prefix extends the base
//      context's graphs instead of rebuilding them, proven by build-stats
//      counters (reused_base_nodes / zero training queries).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/server/serving_engine.h"

namespace alaya {
namespace {

struct BackgroundStoreFixture {
  ModelConfig model = ModelConfig::Tiny();
  size_t context_tokens = 160;
  SimEnvironment env;
  DbOptions options;
  std::unique_ptr<AlayaDB> db;
  uint64_t context_id = 0;
  /// Explicit multi-thread pool: materialization jobs must be able to overlap
  /// the step loop even on single-core CI machines.
  ThreadPool pool{4};

  ServingEngineOptions EngineOptions(size_t max_concurrent, bool background) {
    ServingEngineOptions o;
    o.scheduler.max_concurrent_sessions = max_concurrent;
    o.pool = &pool;
    o.background_store = background;
    return o;
  }

  BackgroundStoreFixture() {
    options.model = model;
    options.session.optimizer.short_context_threshold = 64;
    options.session.window = WindowConfig{8, 16};
    options.materialize_pool = &pool;
    db = std::make_unique<AlayaDB>(options, &env);
    auto imported = db->Import(ContextTokens(), MakeKv(context_tokens, /*seed=*/1));
    EXPECT_TRUE(imported.ok()) << imported.status().ToString();
    context_id = imported.ValueOr(0);
  }

  std::vector<int32_t> ContextTokens() const {
    std::vector<int32_t> t(context_tokens);
    for (size_t i = 0; i < context_tokens; ++i) t[i] = 100 + static_cast<int32_t>(i);
    return t;
  }

  std::unique_ptr<KvCache> MakeKv(size_t tokens, uint64_t seed) const {
    auto kv = std::make_unique<KvCache>(model);
    Rng rng(seed);
    const size_t stride = model.num_kv_heads * model.head_dim;
    std::vector<float> k(stride), v(stride);
    for (uint32_t layer = 0; layer < model.num_layers; ++layer) {
      for (size_t t = 0; t < tokens; ++t) {
        rng.FillGaussian(k.data(), stride);
        rng.FillGaussian(v.data(), stride);
        kv->AppendToken(layer, k.data(), v.data());
      }
    }
    return kv;
  }

  ServingRequest MakeRequest(uint64_t seed, size_t steps) const {
    ServingRequest r;
    r.prompt = ContextTokens();
    r.max_new_tokens = steps;
    r.record_outputs = true;
    r.store_on_finish = true;
    const ModelConfig m = model;
    r.fill_step = [m, seed](size_t step, uint32_t layer, float* q, float* k,
                            float* v) {
      Rng rng(seed * 1000003ull + step * 131ull + layer);
      rng.FillGaussian(q, static_cast<size_t>(m.num_q_heads) * m.head_dim);
      rng.FillGaussian(k, static_cast<size_t>(m.num_kv_heads) * m.head_dim);
      rng.FillGaussian(v, static_cast<size_t>(m.num_kv_heads) * m.head_dim);
    };
    return r;
  }
};

/// Asserts two contexts are bit-identical: tokens, per-(layer, head) KV rows,
/// and per-(layer, head) fine-index adjacency.
void ExpectContextsIdentical(const ModelConfig& model, const Context& a,
                             const Context& b) {
  ASSERT_EQ(a.length(), b.length());
  EXPECT_EQ(a.tokens(), b.tokens());
  ASSERT_EQ(a.kv().NumTokens(), b.kv().NumTokens());
  for (uint32_t layer = 0; layer < model.num_layers; ++layer) {
    for (uint32_t h = 0; h < model.num_kv_heads; ++h) {
      VectorSetView ka = a.kv().Keys(layer, h), kb = b.kv().Keys(layer, h);
      VectorSetView va = a.kv().Values(layer, h), vb = b.kv().Values(layer, h);
      ASSERT_EQ(ka.n, kb.n);
      EXPECT_EQ(std::memcmp(ka.data, kb.data, ka.n * ka.d * sizeof(float)), 0)
          << "keys layer " << layer << " head " << h;
      EXPECT_EQ(std::memcmp(va.data, vb.data, va.n * va.d * sizeof(float)), 0)
          << "values layer " << layer << " head " << h;
    }
    for (uint32_t qh = 0; qh < model.num_q_heads; ++qh) {
      const RoarGraph* ga = a.FineIndex(layer, qh);
      const RoarGraph* gb = b.FineIndex(layer, qh);
      ASSERT_EQ(ga != nullptr, gb != nullptr);
      if (ga == nullptr) continue;
      ASSERT_EQ(ga->graph().size(), gb->graph().size());
      EXPECT_EQ(ga->EntryPoint(nullptr), gb->EntryPoint(nullptr));
      for (uint32_t u = 0; u < ga->graph().size(); ++u) {
        auto na = ga->graph().Neighbors(u);
        auto nb = gb->graph().Neighbors(u);
        ASSERT_EQ(na.size(), nb.size()) << "node " << u;
        for (size_t i = 0; i < na.size(); ++i) {
          ASSERT_EQ(na[i], nb[i]) << "node " << u << " edge " << i;
        }
      }
    }
  }
}

TEST(BackgroundStoreTest, BackgroundMatchesSynchronousStoreBitIdentical) {
  constexpr int kRequests = 3;
  constexpr size_t kSteps = 4;

  BackgroundStoreFixture bg_fx, sync_fx;
  ServingEngine background(bg_fx.db.get(),
                           bg_fx.EngineOptions(kRequests, /*background=*/true));
  ServingEngine synchronous(sync_fx.db.get(),
                            sync_fx.EngineOptions(kRequests, /*background=*/false));

  std::vector<uint64_t> bg_ids, sync_ids;
  for (int i = 0; i < kRequests; ++i) {
    auto b = background.Submit(bg_fx.MakeRequest(11 + i, kSteps));
    auto s = synchronous.Submit(sync_fx.MakeRequest(11 + i, kSteps));
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(s.ok());
    bg_ids.push_back(b.value().id());
    sync_ids.push_back(s.value().id());
  }
  ASSERT_TRUE(background.RunToCompletion().ok());
  ASSERT_TRUE(synchronous.RunToCompletion().ok());

  // RunToCompletion drained: every materialization published.
  ASSERT_TRUE(bg_fx.db->WaitForMaterialization().ok());
  EXPECT_EQ(bg_fx.db->contexts().pending(), 0u);
  EXPECT_EQ(bg_fx.db->contexts().size(), 1u + kRequests);
  EXPECT_EQ(sync_fx.db->contexts().size(), 1u + kRequests);

  const ServingSnapshot bg_snap = background.snapshot();
  EXPECT_EQ(bg_snap.materializations_completed, static_cast<size_t>(kRequests));
  EXPECT_EQ(bg_snap.materializations_pending, 0u);
  EXPECT_EQ(bg_snap.materializations_failed, 0u);
  // The synchronous path never touches the background queue.
  EXPECT_EQ(synchronous.snapshot().materializations_completed, 0u);

  for (int i = 0; i < kRequests; ++i) {
    const RequestResult* b = background.result(bg_ids[i]);
    const RequestResult* s = synchronous.result(sync_ids[i]);
    ASSERT_NE(b, nullptr);
    ASSERT_NE(s, nullptr);
    ASSERT_TRUE(b->status.ok()) << b->status.ToString();
    ASSERT_TRUE(s->status.ok()) << s->status.ToString();
    EXPECT_EQ(b->outputs, s->outputs) << "request " << i;
    ASSERT_NE(b->stored_context_id, 0u);
    ASSERT_EQ(b->stored_context_id, s->stored_context_id);
    const Context* bc = bg_fx.db->contexts().FindUnsafeForTest(b->stored_context_id);
    const Context* sc = sync_fx.db->contexts().FindUnsafeForTest(s->stored_context_id);
    ASSERT_NE(bc, nullptr);
    ASSERT_NE(sc, nullptr);
    ExpectContextsIdentical(bg_fx.model, *bc, *sc);
  }
}

TEST(BackgroundStoreTest, ExtendFromBaseSkipsPrefixRebuild) {
  constexpr size_t kSteps = 5;
  BackgroundStoreFixture fx;
  ServingEngine engine(fx.db.get(), fx.EngineOptions(1, /*background=*/true));
  auto id = engine.Submit(fx.MakeRequest(21, kSteps));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.RunToCompletion().ok());

  const RequestResult* r = engine.result(id.value().id());
  ASSERT_NE(r, nullptr);
  ASSERT_TRUE(r->status.ok()) << r->status.ToString();
  ASSERT_NE(r->stored_context_id, 0u);

  const Context* base = fx.db->contexts().FindUnsafeForTest(fx.context_id);
  const Context* stored = fx.db->contexts().FindUnsafeForTest(r->stored_context_id);
  ASSERT_NE(base, nullptr);
  ASSERT_NE(stored, nullptr);
  ASSERT_TRUE(stored->HasFineIndices());
  EXPECT_EQ(stored->length(), fx.context_tokens + kSteps);

  // The base was built from scratch (trained queries, nothing reused)...
  const size_t num_indices =
      static_cast<size_t>(fx.model.num_layers) * fx.model.num_kv_heads;
  EXPECT_EQ(base->build_stats().extended_indices, 0u);
  EXPECT_GT(base->build_stats().training_queries, 0u);

  // ...while the stored context provably adopted the base's graphs for the
  // whole shared prefix and inserted only the decoded suffix: no kNN stage,
  // no training queries, every index extended.
  const IndexBuildStats& stats = stored->build_stats();
  EXPECT_EQ(stats.extended_indices, num_indices);
  EXPECT_EQ(stats.reused_base_nodes, fx.context_tokens * num_indices);
  EXPECT_EQ(stats.inserted_suffix_nodes, kSteps * num_indices);
  EXPECT_EQ(stats.training_queries, 0u);
  EXPECT_EQ(stats.knn_wall_seconds, 0.0);

  // The extended context is fully serviceable: a prompt over it reuses it and
  // its indices cover every token.
  auto again = fx.db->CreateSession(stored->tokens());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().reused_prefix, fx.context_tokens + kSteps);
  for (uint32_t layer = 0; layer < fx.model.num_layers; ++layer) {
    for (uint32_t qh = 0; qh < fx.model.num_q_heads; ++qh) {
      const RoarGraph* g = stored->FineIndex(layer, qh);
      ASSERT_NE(g, nullptr);
      EXPECT_EQ(g->size(), fx.context_tokens + kSteps);
      EXPECT_TRUE(g->built());
    }
  }
}

TEST(BackgroundStoreTest, StoreAsyncDetachesAndPublishesThroughDrain) {
  BackgroundStoreFixture fx;
  auto created = fx.db->CreateSession(fx.ContextTokens());
  ASSERT_TRUE(created.ok());
  Session* session = created.value().session.get();

  Rng rng(7);
  const size_t qstride = fx.model.num_q_heads * fx.model.head_dim;
  const size_t stride = fx.model.num_kv_heads * fx.model.head_dim;
  std::vector<float> q(qstride), k(stride), v(stride);
  std::vector<int32_t> new_tokens;
  for (int t = 0; t < 3; ++t) {
    for (uint32_t layer = 0; layer < fx.model.num_layers; ++layer) {
      rng.FillGaussian(q.data(), qstride);
      rng.FillGaussian(k.data(), stride);
      rng.FillGaussian(v.data(), stride);
      ASSERT_TRUE(session->Update(layer, q.data(), k.data(), v.data()).ok());
    }
    new_tokens.push_back(9000 + t);
  }

  auto id = fx.db->StoreAsync(session, new_tokens, created.value().context_ref);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  // The handoff severed the session: it is dead, its device bytes released.
  EXPECT_TRUE(session->detached());
  EXPECT_EQ(session->LocalTokens(), 0u);
  EXPECT_EQ(session->Update(0, q.data(), k.data(), v.data()).code(),
            StatusCode::kFailedPrecondition);
  // Storing a detached session again is refused, sync and async alike.
  EXPECT_EQ(fx.db->StoreAsync(session, {}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(fx.db->Store(session, {}).status().code(),
            StatusCode::kFailedPrecondition);

  // The drain barrier observes publication; the context is whole.
  ASSERT_TRUE(fx.db->WaitForMaterialization().ok());
  const AlayaDB::MaterializationStats stats = fx.db->materialization_stats();
  EXPECT_EQ(stats.pending, 0u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u);
  const Context* stored = fx.db->contexts().FindUnsafeForTest(id.value());
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(stored->length(), fx.context_tokens + 3);
  EXPECT_EQ(stored->kv().NumTokens(), fx.context_tokens + 3);
  EXPECT_TRUE(stored->HasFineIndices());
  EXPECT_EQ(stored->tokens().back(), 9002);
}

TEST(BackgroundStoreTest, StoreAsyncValidatesBeforeDetaching) {
  BackgroundStoreFixture fx;
  auto created = fx.db->CreateSession(fx.ContextTokens());
  ASSERT_TRUE(created.ok());
  Session* session = created.value().session.get();

  EXPECT_TRUE(fx.db->StoreAsync(nullptr, {}).status().IsInvalidArgument());
  // Token-count mismatch is caught synchronously, before the handoff: the
  // session survives a rejected StoreAsync.
  EXPECT_TRUE(fx.db->StoreAsync(session, {1, 2, 3}).status().IsInvalidArgument());
  EXPECT_FALSE(session->detached());
}

TEST(BackgroundStoreTest, FailedMaterializationIsAttributable) {
  // Inject a deterministic materialization failure: a session whose KV
  // geometry does not match the DB's model. Validation passes (token counts
  // agree) but the background KV clone fails — the loss must be countable
  // AND attributable to the reserved id, never silent.
  BackgroundStoreFixture fx;
  ModelConfig other = fx.model;
  other.head_dim *= 2;
  DbOptions other_options = fx.options;
  other_options.model = other;
  AlayaDB other_db(other_options, &fx.env);
  auto created = other_db.CreateSession({1, 2, 3});
  ASSERT_TRUE(created.ok());
  Session* session = created.value().session.get();

  const size_t qstride = other.num_q_heads * other.head_dim;
  const size_t stride = other.num_kv_heads * other.head_dim;
  std::vector<float> q(qstride, 0.f), k(stride, 0.f), v(stride, 0.f);
  for (uint32_t layer = 0; layer < other.num_layers; ++layer) {
    ASSERT_TRUE(session->Update(layer, q.data(), k.data(), v.data()).ok());
  }

  auto id = fx.db->StoreAsync(session, {4242});
  ASSERT_TRUE(id.ok());  // Scheduling succeeds; the job itself fails.
  EXPECT_FALSE(fx.db->WaitForMaterialization().ok());

  const AlayaDB::MaterializationStats stats = fx.db->materialization_stats();
  EXPECT_EQ(stats.pending, 0u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_FALSE(stats.first_error.ok());
  // The reserved id never published, was aborted, and maps to its error.
  EXPECT_EQ(fx.db->contexts().FindUnsafeForTest(id.value()), nullptr);
  EXPECT_EQ(fx.db->contexts().pending(), 0u);
  auto errors = fx.db->materialization_errors();
  ASSERT_EQ(errors.count(id.value()), 1u);
  EXPECT_TRUE(errors[id.value()].IsInvalidArgument());
}

TEST(BackgroundStoreTest, InlineFallbackIsCountedAndPublished) {
  // When the session's reused context was already removed from the store and
  // the caller passes no pin, StoreAsync cannot guarantee the base outlives a
  // background job and materializes inline — still publishing through the
  // pending id and still counted in the completed total.
  BackgroundStoreFixture fx;
  auto created = fx.db->CreateSession(fx.ContextTokens());
  ASSERT_TRUE(created.ok());
  ASSERT_EQ(created.value().reused_prefix, fx.context_tokens);
  Session* session = created.value().session.get();
  // Remove the base; created.context_ref (held here) keeps it alive.
  ASSERT_TRUE(fx.db->contexts().Remove(fx.context_id));

  auto id = fx.db->StoreAsync(session, {});  // No decode; no pin passed.
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  // Inline path: published before StoreAsync even returned.
  ASSERT_NE(fx.db->contexts().FindUnsafeForTest(id.value()), nullptr);
  EXPECT_EQ(fx.db->contexts().FindUnsafeForTest(id.value())->length(), fx.context_tokens);
  const AlayaDB::MaterializationStats stats = fx.db->materialization_stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.pending, 0u);
}

TEST(BackgroundStoreTest, SyntheticTokenIdsDoNotCollide) {
  // The old salt `(id % 20'000) * 100'000 + step` collided for request ids
  // 20'000 apart and overflowed int32 for large ids. The hash must not.
  EXPECT_NE(SyntheticStoredTokenId(1, 5), SyntheticStoredTokenId(20'001, 5));
  EXPECT_NE(SyntheticStoredTokenId(7, 0), SyntheticStoredTokenId(40'007, 0));
  // Large ids stay positive and in the reserved [2^30, 2^31) band.
  const int32_t big = SyntheticStoredTokenId(10'000'000'000ull, 3);
  EXPECT_GE(big, 1 << 30);
  // Deterministic, and distinct across steps of one request.
  EXPECT_EQ(SyntheticStoredTokenId(42, 9), SyntheticStoredTokenId(42, 9));
  std::set<int32_t> seen;
  for (uint64_t id : {1ull, 2ull, 20'001ull, 20'002ull, 1ull << 40}) {
    for (size_t step = 0; step < 16; ++step) {
      const int32_t tok = SyntheticStoredTokenId(id, step);
      EXPECT_GE(tok, 1 << 30);
      seen.insert(tok);
    }
  }
  EXPECT_EQ(seen.size(), 5u * 16u);  // No collisions across the sample.
}

// Stress: BestPrefixMatch racing materializations must never see a context
// that is not fully built (runs under TSan in CI).
TEST(BackgroundStoreTest, PrefixMatchNeverObservesHalfBuiltContext) {
  constexpr int kRequests = 6;
  constexpr size_t kSteps = 3;
  BackgroundStoreFixture fx;
  ServingEngine engine(fx.db.get(), fx.EngineOptions(3, /*background=*/true));
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(engine.Submit(fx.MakeRequest(31 + i, kSteps)).ok());
  }

  std::atomic<bool> done{false};
  std::atomic<size_t> probes{0};
  std::thread prober([&] {
    const std::vector<int32_t> prompt = fx.ContextTokens();
    while (!done.load()) {
      ContextStore::PrefixMatch m = fx.db->contexts().BestPrefixMatch(prompt);
      if (m.context != nullptr) {
        // Whatever matched must be whole: full KV and built indices. A
        // half-built context would trip one of these (or TSan).
        EXPECT_EQ(m.context->kv().NumTokens(), m.context->length());
        EXPECT_TRUE(m.context->HasFineIndices());
      }
      (void)engine.snapshot();  // Materialization counters race-free too.
      probes.fetch_add(1);
    }
  });

  Status run = engine.RunToCompletion();
  done.store(true);
  prober.join();
  ASSERT_TRUE(run.ok()) << run.ToString();
  EXPECT_GT(probes.load(), 0u);

  const ServingSnapshot snap = engine.snapshot();
  EXPECT_EQ(snap.completed, static_cast<size_t>(kRequests));
  EXPECT_EQ(snap.materializations_completed, static_cast<size_t>(kRequests));
  EXPECT_EQ(snap.materializations_failed, 0u);
  EXPECT_EQ(fx.db->contexts().size(), 1u + kRequests);
  EXPECT_EQ(fx.db->contexts().pending(), 0u);
  // Every stored context is complete and serviceable after the drain.
  for (uint64_t cid : fx.db->contexts().Ids()) {
    const Context* ctx = fx.db->contexts().FindUnsafeForTest(cid);
    ASSERT_NE(ctx, nullptr);
    EXPECT_EQ(ctx->kv().NumTokens(), ctx->length());
    EXPECT_TRUE(ctx->HasFineIndices());
  }
}

}  // namespace
}  // namespace alaya
