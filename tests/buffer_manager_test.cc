#include "src/storage/buffer_manager.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>

namespace alaya {
namespace {

BufferManager::Options SmallOptions(size_t blocks, bool type_aware = true) {
  BufferManager::Options o;
  o.block_size = 64;
  o.capacity_bytes = blocks * 64;
  o.type_aware = type_aware;
  return o;
}

std::function<Status(uint8_t*)> FillWith(uint8_t value, int* load_count = nullptr) {
  return [value, load_count](uint8_t* dst) {
    if (load_count != nullptr) ++*load_count;
    std::memset(dst, value, 64);
    return Status::Ok();
  };
}

TEST(BufferManagerTest, MissThenHit) {
  BufferManager bm(SmallOptions(4));
  int loads = 0;
  auto r1 = bm.Fetch(1, 0, BlockType::kData, FillWith(7, &loads));
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1.value()->bytes[0], 7);
  auto r2 = bm.Fetch(1, 0, BlockType::kData, FillWith(9, &loads));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value()->bytes[0], 7);  // Served from cache, not reloaded.
  EXPECT_EQ(loads, 1);
  auto stats = bm.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_NEAR(stats.HitRate(), 0.5, 1e-9);
}

TEST(BufferManagerTest, EvictsWhenFull) {
  BufferManager bm(SmallOptions(2));
  for (uint64_t b = 0; b < 5; ++b) {
    ASSERT_TRUE(bm.Fetch(1, b, BlockType::kData, FillWith(uint8_t(b))).ok());
  }
  EXPECT_LE(bm.cached_blocks(), 2u);
  EXPECT_GE(bm.stats().evictions, 3u);
}

TEST(BufferManagerTest, TypeAwareKeepsIndexBlocks) {
  BufferManager bm(SmallOptions(4, /*type_aware=*/true));
  // Two index blocks, then flood with data blocks.
  ASSERT_TRUE(bm.Fetch(1, 100, BlockType::kIndex, FillWith(1)).ok());
  ASSERT_TRUE(bm.Fetch(1, 101, BlockType::kIndex, FillWith(2)).ok());
  for (uint64_t b = 0; b < 20; ++b) {
    ASSERT_TRUE(bm.Fetch(1, b, BlockType::kData, FillWith(uint8_t(b))).ok());
  }
  // Index blocks survive: fetching them again must be hits.
  const uint64_t hits_before = bm.stats().hits;
  ASSERT_TRUE(bm.Fetch(1, 100, BlockType::kIndex, FillWith(0)).ok());
  ASSERT_TRUE(bm.Fetch(1, 101, BlockType::kIndex, FillWith(0)).ok());
  EXPECT_EQ(bm.stats().hits, hits_before + 2);
}

TEST(BufferManagerTest, PlainLruEvictsIndexBlocksToo) {
  BufferManager bm(SmallOptions(4, /*type_aware=*/false));
  ASSERT_TRUE(bm.Fetch(1, 100, BlockType::kIndex, FillWith(1)).ok());
  for (uint64_t b = 0; b < 20; ++b) {
    ASSERT_TRUE(bm.Fetch(1, b, BlockType::kData, FillWith(uint8_t(b))).ok());
  }
  const uint64_t misses_before = bm.stats().misses;
  ASSERT_TRUE(bm.Fetch(1, 100, BlockType::kIndex, FillWith(1)).ok());
  EXPECT_EQ(bm.stats().misses, misses_before + 1);  // Was evicted.
}

TEST(BufferManagerTest, PinnedBlocksNotEvicted) {
  BufferManager bm(SmallOptions(2));
  auto pinned = bm.Fetch(1, 0, BlockType::kData, FillWith(42)).TakeValue();
  for (uint64_t b = 1; b < 10; ++b) {
    ASSERT_TRUE(bm.Fetch(1, b, BlockType::kData, FillWith(uint8_t(b))).ok());
  }
  // The pinned block must still hit.
  const uint64_t hits = bm.stats().hits;
  auto again = bm.Fetch(1, 0, BlockType::kData, FillWith(0)).TakeValue();
  EXPECT_EQ(bm.stats().hits, hits + 1);
  EXPECT_EQ(again->bytes[0], 42);
}

TEST(BufferManagerTest, InvalidateForcesReload) {
  BufferManager bm(SmallOptions(4));
  int loads = 0;
  ASSERT_TRUE(bm.Fetch(1, 0, BlockType::kData, FillWith(1, &loads)).ok());
  bm.Invalidate(1, 0);
  ASSERT_TRUE(bm.Fetch(1, 0, BlockType::kData, FillWith(2, &loads)).ok());
  EXPECT_EQ(loads, 2);
}

TEST(BufferManagerTest, InstallServesSubsequentReads) {
  BufferManager bm(SmallOptions(4));
  std::vector<uint8_t> payload(64, 0xAB);
  bm.Install(2, 7, BlockType::kIndex, payload.data());
  int loads = 0;
  auto r = bm.Fetch(2, 7, BlockType::kIndex, FillWith(0, &loads));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(loads, 0);
  EXPECT_EQ(r.value()->bytes[0], 0xAB);
}

TEST(BufferManagerTest, DistinctFilesDistinctKeys) {
  BufferManager bm(SmallOptions(8));
  ASSERT_TRUE(bm.Fetch(1, 0, BlockType::kData, FillWith(1)).ok());
  ASSERT_TRUE(bm.Fetch(2, 0, BlockType::kData, FillWith(2)).ok());
  auto a = bm.Fetch(1, 0, BlockType::kData, FillWith(0)).TakeValue();
  auto b = bm.Fetch(2, 0, BlockType::kData, FillWith(0)).TakeValue();
  EXPECT_EQ(a->bytes[0], 1);
  EXPECT_EQ(b->bytes[0], 2);
}

TEST(BufferManagerTest, LoaderFailurePropagates) {
  BufferManager bm(SmallOptions(4));
  auto r = bm.Fetch(1, 0, BlockType::kData,
                    [](uint8_t*) { return Status::IoError("disk on fire"); });
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIoError());
  // A later good load works (failure not cached).
  EXPECT_TRUE(bm.Fetch(1, 0, BlockType::kData, FillWith(5)).ok());
}

TEST(BufferManagerTest, ConcurrentFetchesAreSafe) {
  BufferManager bm(SmallOptions(16));
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&bm, &errors] {
      for (uint64_t i = 0; i < 500; ++i) {
        auto r = bm.Fetch(1, i % 32, BlockType::kData,
                          [&](uint8_t* dst) {
                            std::memset(dst, int(i % 32), 64);
                            return Status::Ok();
                          });
        if (!r.ok() || r.value()->bytes[0] != uint8_t(i % 32)) errors.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
}

}  // namespace
}  // namespace alaya
