#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace alaya {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.UniformInt(17);
    EXPECT_LT(v, 17u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 17u);  // All residues hit.
}

TEST(RngTest, GaussianMoments) {
  Rng rng(99);
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, LogNormalIsPositive) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.LogNormal(0.0, 2.0), 0.0);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(11);
  for (size_t n : {10u, 100u, 1000u}) {
    for (size_t k : {1u, 5u, 10u}) {
      if (k > n) continue;
      auto picks = rng.SampleWithoutReplacement(n, k);
      EXPECT_EQ(picks.size(), k);
      std::set<size_t> s(picks.begin(), picks.end());
      EXPECT_EQ(s.size(), k);
      for (size_t p : picks) EXPECT_LT(p, n);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(13);
  auto picks = rng.SampleWithoutReplacement(64, 64);
  std::set<size_t> s(picks.begin(), picks.end());
  EXPECT_EQ(s.size(), 64u);
}

TEST(RngTest, SampleWithoutReplacementCoversUniformly) {
  // Every index should be picked with roughly equal frequency.
  Rng rng(17);
  std::vector<int> counts(20, 0);
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    for (size_t p : rng.SampleWithoutReplacement(20, 5)) counts[p]++;
  }
  const double expected = trials * 5.0 / 20.0;
  for (int c : counts) EXPECT_NEAR(c, expected, expected * 0.25);
}

TEST(RngTest, FillGaussianFillsAll) {
  Rng rng(3);
  std::vector<float> v(257, 0.f);
  rng.FillGaussian(v.data(), v.size());
  int zeros = 0;
  for (float x : v) {
    if (x == 0.f) ++zeros;
  }
  EXPECT_EQ(zeros, 0);
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(42);
  Rng child = parent.Fork();
  // The child should not replay the parent's stream.
  Rng parent2(42);
  parent2.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.Next() == parent.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(21);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto orig = v;
  rng.Shuffle(&v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);  // Same multiset.
  EXPECT_NE(v, orig);       // Actually shuffled (overwhelmingly likely).
}

}  // namespace
}  // namespace alaya
