#include "src/common/string_util.h"

#include <gtest/gtest.h>

namespace alaya {
namespace {

TEST(StringUtilTest, StrFormatBasic) {
  EXPECT_EQ(StrFormat("x=%d y=%.1f", 3, 2.5), "x=3 y=2.5");
  EXPECT_EQ(StrFormat("%s", "hello"), "hello");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringUtilTest, StrFormatLongOutput) {
  std::string long_str(500, 'a');
  EXPECT_EQ(StrFormat("%s", long_str.c_str()).size(), 500u);
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(17), "17 B");
  EXPECT_EQ(HumanBytes(1024), "1.00 KB");
  EXPECT_EQ(HumanBytes(1536), "1.50 KB");
  EXPECT_EQ(HumanBytes(1ull << 20), "1.00 MB");
  EXPECT_EQ(HumanBytes(3ull << 30), "3.00 GB");
}

TEST(StringUtilTest, HumanSeconds) {
  EXPECT_EQ(HumanSeconds(2.5), "2.500 s");
  EXPECT_EQ(HumanSeconds(0.0025), "2.500 ms");
  EXPECT_EQ(HumanSeconds(2.5e-6), "2.5 us");
  EXPECT_EQ(HumanSeconds(5e-9), "5 ns");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

}  // namespace
}  // namespace alaya
