// Unit tests for device placement: the pure policies (best-fit by free KV
// bytes with a warm-context affinity win; least-loaded spread) and the
// scheduler's per-device accounting built on them — per-device memory
// budgets, per-device TPOT headroom (a hot device never throttles admission
// to idle ones), and the kNeverFits front-door rejection.
#include "src/server/placement_policy.h"

#include <gtest/gtest.h>

#include "src/server/request_scheduler.h"

namespace alaya {
namespace {

DeviceLoad MakeLoad(int device, uint64_t budget, uint64_t reserved,
                    size_t sessions = 0, double step_seconds = 0) {
  DeviceLoad load;
  load.device = device;
  load.budget_bytes = budget;
  load.reserved_bytes = reserved;
  load.active_sessions = sessions;
  load.reserved_step_seconds = step_seconds;
  return load;
}

PlacementRequest MakeRequest(uint64_t bytes, double step_seconds = 0,
                             int affinity = -1) {
  PlacementRequest r;
  r.gpu_bytes = bytes;
  r.step_seconds = step_seconds;
  r.affinity_device = affinity;
  return r;
}

TEST(PlacementPolicyTest, BestFitPicksTightestFittingDevice) {
  BestFitPlacement policy;
  // Device 0 has 100 free, device 1 has 40 free, device 2 has 25 free (too
  // tight for a 30-byte request): best-fit packs onto device 1.
  const DeviceLoad loads[] = {MakeLoad(0, 100, 0, 1), MakeLoad(1, 100, 60, 1),
                              MakeLoad(2, 100, 75, 1)};
  const PlacementDecision d = policy.Place(MakeRequest(30), loads, 0);
  ASSERT_TRUE(d.placed());
  EXPECT_EQ(d.device, 1);
  EXPECT_FALSE(d.never_fits);
}

TEST(PlacementPolicyTest, BestFitBreaksTiesOnLowestDevice) {
  BestFitPlacement policy;
  const DeviceLoad loads[] = {MakeLoad(0, 100, 50), MakeLoad(1, 100, 50)};
  EXPECT_EQ(policy.Place(MakeRequest(10), loads, 0).device, 0);
  // Unlimited budgets tie at "infinite free" too: deterministic device 0.
  const DeviceLoad unlimited[] = {MakeLoad(0, 0, 0), MakeLoad(1, 0, 0)};
  EXPECT_EQ(policy.Place(MakeRequest(10), unlimited, 0).device, 0);
}

TEST(PlacementPolicyTest, AffinityWinsWheneverItFits) {
  BestFitPlacement policy;
  // Device 2 is the loosest fit — but the matched context is warm on device
  // 0, and same-device reuse skips the modeled window transfer.
  const DeviceLoad loads[] = {MakeLoad(0, 100, 10, 1), MakeLoad(1, 100, 70, 1),
                              MakeLoad(2, 100, 0, 0)};
  EXPECT_EQ(policy.Place(MakeRequest(30, 0, /*affinity=*/0), loads, 0).device, 0);

  // When the affinity device cannot hold the request, placement falls back to
  // best-fit among the rest (device 1: 30 free beats device 2's 100 free).
  const DeviceLoad full[] = {MakeLoad(0, 100, 95, 2), MakeLoad(1, 100, 70, 1),
                             MakeLoad(2, 100, 0, 0)};
  EXPECT_EQ(policy.Place(MakeRequest(30, 0, /*affinity=*/0), full, 0).device, 1);
}

TEST(PlacementPolicyTest, NeverFitsOnlyWhenNoBudgetCouldEverHold) {
  BestFitPlacement policy;
  const DeviceLoad loads[] = {MakeLoad(0, 100, 90), MakeLoad(1, 50, 0)};

  // 60 bytes: does not fit now on device 0 (10 free) and never on device 1
  // (budget 50) — but an eventual drain of device 0 frees room: retry-later.
  const PlacementDecision wait = policy.Place(MakeRequest(60), loads, 0);
  EXPECT_FALSE(wait.placed());
  EXPECT_FALSE(wait.never_fits);

  // 120 bytes exceed every device's budget outright: permanent.
  const PlacementDecision never = policy.Place(MakeRequest(120), loads, 0);
  EXPECT_FALSE(never.placed());
  EXPECT_TRUE(never.never_fits);

  // One unlimited device makes any footprint eventually placeable.
  const DeviceLoad unlimited[] = {MakeLoad(0, 100, 90), MakeLoad(1, 0, 1 << 20, 1)};
  EXPECT_FALSE(policy.Place(MakeRequest(1 << 30, 1.0, -1), unlimited, 0).never_fits);
}

TEST(PlacementPolicyTest, PerDeviceTpotExemptsIdleDevices) {
  BestFitPlacement policy;
  // Device 0 is hot (0.9s of 1.0s SLO reserved); device 1 is idle. A 0.5s
  // request does not fit device 0's headroom but lands on device 1 — and an
  // idle device admits even a request whose step time alone exceeds the SLO.
  const DeviceLoad loads[] = {MakeLoad(0, 0, 0, 2, 0.9), MakeLoad(1, 0, 0, 0, 0)};
  EXPECT_EQ(policy.Place(MakeRequest(10, 0.5), loads, 1.0).device, 1);
  EXPECT_EQ(policy.Place(MakeRequest(10, 5.0), loads, 1.0).device, 1);

  // With both devices occupied and hot, the request waits (not never_fits:
  // TPOT pressure drains).
  const DeviceLoad hot[] = {MakeLoad(0, 0, 0, 2, 0.9), MakeLoad(1, 0, 0, 1, 0.8)};
  const PlacementDecision d = policy.Place(MakeRequest(10, 0.5), hot, 1.0);
  EXPECT_FALSE(d.placed());
  EXPECT_FALSE(d.never_fits);
}

TEST(PlacementPolicyTest, BestFitSpreadsColdTrafficWhenBudgetsUnlimited) {
  BestFitPlacement policy;
  // Unlimited budgets make "free bytes" meaningless (all infinite): packing
  // tightly would send every cold request to device 0 and leave the rest of
  // the fleet idle. Ties must fall through to load spreading instead.
  const DeviceLoad loads[] = {MakeLoad(0, 0, 500, 1), MakeLoad(1, 0, 0, 0)};
  EXPECT_EQ(policy.Place(MakeRequest(10), loads, 0).device, 1);
  // Equal reserved bytes: fewer active sessions wins.
  const DeviceLoad sessions[] = {MakeLoad(0, 0, 100, 2), MakeLoad(1, 0, 100, 1)};
  EXPECT_EQ(policy.Place(MakeRequest(10), sessions, 0).device, 1);
}

TEST(PlacementPolicyTest, LeastLoadedSpreadsAcrossIdleFleet) {
  LeastLoadedPlacement policy;
  // Unlimited budgets: free bytes tie, so fewer active sessions wins.
  const DeviceLoad loads[] = {MakeLoad(0, 0, 0, 2), MakeLoad(1, 0, 0, 0),
                              MakeLoad(2, 0, 0, 1)};
  EXPECT_EQ(policy.Place(MakeRequest(10), loads, 0).device, 1);
  // With budgets, most free bytes wins outright.
  const DeviceLoad budgeted[] = {MakeLoad(0, 100, 80, 1), MakeLoad(1, 100, 20, 3),
                                 MakeLoad(2, 100, 50, 0)};
  EXPECT_EQ(policy.Place(MakeRequest(10), budgeted, 0).device, 1);
  // Affinity still wins when it fits.
  EXPECT_EQ(policy.Place(MakeRequest(10, 0, /*affinity=*/2), budgeted, 0).device, 2);
}

// --- Scheduler integration: per-device accounting over the policy. ---

struct SchedulerFixture {
  ModelConfig model = ModelConfig::Tiny();
  WindowConfig window{8, 16};
  CostModel cost;

  RequestScheduler Make(RequestSchedulerOptions options) {
    return RequestScheduler(model, window, cost, options);
  }

  static ServingRequest MakeServing(size_t prompt_tokens, size_t steps) {
    ServingRequest r;
    r.prompt.resize(prompt_tokens);
    for (size_t i = 0; i < prompt_tokens; ++i) r.prompt[i] = static_cast<int32_t>(i);
    r.max_new_tokens = steps;
    r.fill_step = [](size_t, uint32_t, float*, float*, float*) {};
    return r;
  }
};

TEST(PlacementSchedulerTest, AdmitAssignsDevicesAndTracksPerDeviceLoad) {
  SchedulerFixture fx;
  RequestSchedulerOptions options;
  options.devices = 2;
  // Full reuse: footprint is window + decoded tail only.
  options.prefix_probe = [](std::span<const int32_t> t) { return t.size(); };
  RequestScheduler probe = fx.Make(options);
  const uint64_t one = probe.Estimate(fx.MakeServing(100, 4), 100).gpu_bytes;
  ASSERT_GT(one, 0u);

  // Per-device budget holds exactly one session: best-fit must spill the
  // second request to device 1 instead of queueing it behind device 0.
  options.gpu_budget_bytes = one;
  RequestScheduler sched = fx.Make(options);
  ASSERT_TRUE(sched.Enqueue(fx.MakeServing(100, 4)).ok());
  ASSERT_TRUE(sched.Enqueue(fx.MakeServing(100, 4)).ok());
  ASSERT_TRUE(sched.Enqueue(fx.MakeServing(100, 4)).ok());  // No room: waits.

  auto admitted = sched.Admit();
  ASSERT_EQ(admitted.size(), 2u);
  EXPECT_EQ(admitted[0].device, 0);
  EXPECT_EQ(admitted[1].device, 1);
  EXPECT_EQ(sched.queued(), 1u);

  const std::vector<DeviceLoad> loads = sched.DeviceLoads();
  ASSERT_EQ(loads.size(), 2u);
  for (const DeviceLoad& load : loads) {
    EXPECT_EQ(load.reserved_bytes, one);
    EXPECT_LE(load.reserved_bytes, options.gpu_budget_bytes);
    EXPECT_EQ(load.active_sessions, 1u);
  }
  EXPECT_EQ(sched.reserved_gpu_bytes(), 2 * one);

  // Releasing device 0's session admits the waiter — onto device 0.
  sched.Release(admitted[0].id);
  auto next = sched.Admit();
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].device, 0);
}

TEST(PlacementSchedulerTest, HotDeviceDoesNotThrottleIdleOnes) {
  SchedulerFixture fx;
  RequestSchedulerOptions options;
  options.devices = 2;
  options.prefix_probe = [](std::span<const int32_t> t) { return t.size(); };

  // SLO fits one decode session per device but not two together: under the
  // old aggregate check the second request would queue; per-device accounting
  // admits it onto the idle device at once.
  RequestScheduler probe = fx.Make(options);
  const AdmissionEstimate e = probe.Estimate(fx.MakeServing(100, 4), 100);
  ASSERT_GT(e.EffectiveStepSeconds(), 0.0);
  options.tpot_slo_seconds = e.EffectiveStepSeconds() * 1.5;

  RequestScheduler sched = fx.Make(options);
  ASSERT_TRUE(sched.Enqueue(fx.MakeServing(100, 4)).ok());
  ASSERT_TRUE(sched.Enqueue(fx.MakeServing(100, 4)).ok());
  ASSERT_TRUE(sched.Enqueue(fx.MakeServing(100, 4)).ok());  // Both hot: waits.

  auto admitted = sched.Admit();
  ASSERT_EQ(admitted.size(), 2u);
  EXPECT_EQ(admitted[0].device, 0);
  EXPECT_EQ(admitted[1].device, 1);
  EXPECT_EQ(sched.queued(), 1u);
}

TEST(PlacementSchedulerTest, EnqueueRejectsFootprintNoDeviceCouldHold) {
  SchedulerFixture fx;
  RequestSchedulerOptions options;
  options.devices = 4;
  options.prefix_probe = [](std::span<const int32_t> t) { return t.size(); };
  RequestScheduler probe = fx.Make(options);
  const uint64_t one = probe.Estimate(fx.MakeServing(100, 4), 100).gpu_bytes;

  // More devices never rescue a request that exceeds the per-device budget.
  options.gpu_budget_bytes = one - 1;
  RequestScheduler sched = fx.Make(options);
  auto rejected = sched.Enqueue(fx.MakeServing(100, 4));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kNeverFits);
}

TEST(PlacementSchedulerTest, AffinityProbeRoutesToWarmDevice) {
  SchedulerFixture fx;
  RequestSchedulerOptions options;
  options.devices = 3;
  options.prefix_probe = [](std::span<const int32_t> t) { return t.size(); };
  // Pretend the matched context is warm on device 2.
  options.affinity_probe = [](std::span<const int32_t>) { return 2; };
  RequestScheduler sched = fx.Make(options);
  ASSERT_TRUE(sched.Enqueue(fx.MakeServing(100, 4)).ok());
  auto admitted = sched.Admit();
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_EQ(admitted[0].device, 2);
}

TEST(PlacementSchedulerTest, UnlimitedBudgetSpreadsColdRequests) {
  SchedulerFixture fx;
  RequestSchedulerOptions options;
  options.devices = 2;
  options.prefix_probe = [](std::span<const int32_t> t) { return t.size(); };
  RequestScheduler sched = fx.Make(options);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(sched.Enqueue(fx.MakeServing(100, 4)).ok());
  }
  auto admitted = sched.Admit();
  ASSERT_EQ(admitted.size(), 3u);
  // No budgets, no affinity: best-fit's spread tie-break alternates devices
  // instead of piling everything onto device 0.
  EXPECT_EQ(admitted[0].device, 0);
  EXPECT_EQ(admitted[1].device, 1);
  EXPECT_EQ(admitted[2].device, 0);
}

/// Adversarial policy: declares everything permanently unplaceable — the
/// custom-policy path where Enqueue's uniform-budget pre-check cannot help.
struct RejectAllPlacement : PlacementPolicy {
  PlacementDecision Place(const PlacementRequest&, std::span<const DeviceLoad>,
                          double) const override {
    PlacementDecision d;
    d.never_fits = true;
    return d;
  }
};

TEST(PlacementSchedulerTest, NeverFitsHeadIsRemovedNotStuck) {
  SchedulerFixture fx;
  RequestSchedulerOptions options;
  options.devices = 2;
  options.placement = std::make_shared<RejectAllPlacement>();
  options.prefix_probe = [](std::span<const int32_t> t) { return t.size(); };
  RequestScheduler sched = fx.Make(options);
  auto a = sched.Enqueue(fx.MakeServing(50, 2));
  auto b = sched.Enqueue(fx.MakeServing(50, 2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  // Neither admits, but neither wedges the queue either: both are removed
  // and surfaced for the caller to fail with a typed kNeverFits result.
  EXPECT_TRUE(sched.Admit().empty());
  EXPECT_EQ(sched.queued(), 0u);
  auto rejected = sched.TakeNeverFits();
  ASSERT_EQ(rejected.size(), 2u);
  EXPECT_EQ(rejected[0].id, a.value());
  EXPECT_EQ(rejected[1].id, b.value());
  EXPECT_TRUE(sched.TakeNeverFits().empty());  // Drained.
}

TEST(PlacementSchedulerTest, SingleDeviceDefaultsMatchLegacyBehavior) {
  // devices defaults to 1: every admission lands on device 0 and the
  // aggregate accessors reduce to the old single-tracker semantics.
  SchedulerFixture fx;
  RequestScheduler sched = fx.Make({});
  ASSERT_TRUE(sched.Enqueue(fx.MakeServing(50, 2)).ok());
  auto admitted = sched.Admit();
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_EQ(admitted[0].device, 0);
  const std::vector<DeviceLoad> loads = sched.DeviceLoads();
  ASSERT_EQ(loads.size(), 1u);
  EXPECT_EQ(loads[0].reserved_bytes, sched.reserved_gpu_bytes());
  EXPECT_DOUBLE_EQ(loads[0].reserved_step_seconds, sched.reserved_step_seconds());
}

}  // namespace
}  // namespace alaya
