#include "src/common/vec_math.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "src/common/rng.h"

namespace alaya {
namespace {

TEST(VecMathTest, DotBasic) {
  const float a[] = {1, 2, 3, 4, 5};
  const float b[] = {5, 4, 3, 2, 1};
  EXPECT_FLOAT_EQ(Dot(a, b, 5), 35.f);
  EXPECT_FLOAT_EQ(Dot(a, b, 0), 0.f);
  EXPECT_FLOAT_EQ(Dot(a, b, 1), 5.f);
}

TEST(VecMathTest, L2SqAndNorm) {
  const float a[] = {3, 4};
  const float z[] = {0, 0};
  EXPECT_FLOAT_EQ(L2Sq(a, z, 2), 25.f);
  EXPECT_FLOAT_EQ(Norm(a, 2), 5.f);
}

TEST(VecMathTest, ScaleAxpy) {
  float y[] = {1, 1, 1};
  const float x[] = {1, 2, 3};
  Axpy(y, x, 3, 2.f);
  EXPECT_FLOAT_EQ(y[0], 3.f);
  EXPECT_FLOAT_EQ(y[2], 7.f);
  Scale(y, 3, 0.5f);
  EXPECT_FLOAT_EQ(y[0], 1.5f);
}

TEST(VecMathTest, NormalizeUnitLength) {
  Rng rng(1);
  std::vector<float> v(64);
  rng.FillGaussian(v.data(), 64);
  NormalizeInPlace(v.data(), 64);
  EXPECT_NEAR(Norm(v.data(), 64), 1.0f, 1e-5);
}

TEST(VecMathTest, NormalizeZeroVectorIsNoop) {
  std::vector<float> v(8, 0.f);
  NormalizeInPlace(v.data(), 8);
  for (float x : v) EXPECT_EQ(x, 0.f);
}

TEST(VecMathTest, CosineSimProperties) {
  const float a[] = {1, 0, 0};
  const float b[] = {0, 1, 0};
  const float c[] = {2, 0, 0};
  EXPECT_NEAR(CosineSim(a, b, 3), 0.f, 1e-6);
  EXPECT_NEAR(CosineSim(a, c, 3), 1.f, 1e-6);
  const float z[] = {0, 0, 0};
  EXPECT_EQ(CosineSim(a, z, 3), 0.f);
}

TEST(VecMathTest, SoftmaxSumsToOne) {
  std::vector<float> s = {1.f, 2.f, 3.f, 4.f};
  SoftmaxInPlace(s.data(), s.size());
  const float sum = std::accumulate(s.begin(), s.end(), 0.f);
  EXPECT_NEAR(sum, 1.f, 1e-5);
  EXPECT_GT(s[3], s[2]);
  EXPECT_GT(s[2], s[1]);
}

TEST(VecMathTest, SoftmaxStableUnderLargeLogits) {
  std::vector<float> s = {1000.f, 1001.f, 999.f};
  SoftmaxInPlace(s.data(), s.size());
  const float sum = std::accumulate(s.begin(), s.end(), 0.f);
  EXPECT_NEAR(sum, 1.f, 1e-5);
  EXPECT_FALSE(std::isnan(s[0]));
}

TEST(VecMathTest, ArgMaxFirstOnTies) {
  const float a[] = {1.f, 3.f, 3.f, 2.f};
  EXPECT_EQ(ArgMax(a, 4), 1u);
  EXPECT_FLOAT_EQ(MaxValue(a, 4), 3.f);
}

TEST(VecMathTest, RelativeError) {
  const float a[] = {1.f, 0.f};
  const float b[] = {1.f, 0.f};
  EXPECT_NEAR(RelativeError(a, b, 2), 0.f, 1e-6);
  const float c[] = {2.f, 0.f};
  EXPECT_NEAR(RelativeError(c, b, 2), 1.f, 1e-5);
}

TEST(VecMathTest, MatVecDotMatchesLoop) {
  Rng rng(2);
  const size_t rows = 13, d = 37;
  std::vector<float> m(rows * d), v(d), out(rows);
  rng.FillGaussian(m.data(), m.size());
  rng.FillGaussian(v.data(), d);
  MatVecDot(m.data(), rows, d, v.data(), out.data());
  for (size_t i = 0; i < rows; ++i) {
    EXPECT_NEAR(out[i], Dot(m.data() + i * d, v.data(), d), 1e-4);
  }
}

TEST(VecMathTest, SortByScoreDescTieBreaksOnId) {
  std::vector<ScoredId> v = {{3, 1.f}, {1, 2.f}, {2, 2.f}, {0, 0.5f}};
  SortByScoreDesc(&v);
  EXPECT_EQ(v[0].id, 1u);
  EXPECT_EQ(v[1].id, 2u);
  EXPECT_EQ(v[2].id, 3u);
  EXPECT_EQ(v[3].id, 0u);
}

class DotDimTest : public ::testing::TestWithParam<size_t> {};

TEST_P(DotDimTest, MatchesNaiveAcrossDims) {
  const size_t d = GetParam();
  Rng rng(d + 1);
  std::vector<float> a(d), b(d);
  rng.FillGaussian(a.data(), d);
  rng.FillGaussian(b.data(), d);
  double naive = 0;
  for (size_t i = 0; i < d; ++i) naive += double(a[i]) * b[i];
  EXPECT_NEAR(Dot(a.data(), b.data(), d), naive, 1e-3 * (1.0 + std::abs(naive)));
}

INSTANTIATE_TEST_SUITE_P(Dims, DotDimTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 63, 64,
                                           65, 127, 128, 129, 255, 256));

}  // namespace
}  // namespace alaya
