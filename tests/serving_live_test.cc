// Live serving API: the always-on engine lifecycle (Start / Shutdown / Abort,
// Created -> Running -> Draining -> Stopped), RequestHandle Wait/TryWait/
// Cancel, per-step streaming through on_token, deadlines, and admission of
// requests submitted while the driver runs (the continuous-batching entry
// point). The cancellation/deadline tests race caller threads against the
// driver and run under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <latch>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/server/serving_engine.h"

namespace alaya {
namespace {

struct LiveFixture {
  ModelConfig model = ModelConfig::Tiny();
  size_t context_tokens = 160;
  SimEnvironment env;
  DbOptions options;
  std::unique_ptr<AlayaDB> db;
  uint64_t context_id = 0;
  ThreadPool pool{4};

  ServingEngineOptions EngineOptions(size_t max_concurrent) {
    ServingEngineOptions o;
    o.scheduler.max_concurrent_sessions = max_concurrent;
    o.pool = &pool;
    return o;
  }

  LiveFixture() {
    options.model = model;
    options.session.optimizer.short_context_threshold = 64;
    options.session.window = WindowConfig{8, 16};
    options.materialize_pool = &pool;
    db = std::make_unique<AlayaDB>(options, &env);
    auto kv = std::make_unique<KvCache>(model);
    Rng rng(1);
    const size_t stride = model.num_kv_heads * model.head_dim;
    std::vector<float> k(stride), v(stride);
    for (uint32_t layer = 0; layer < model.num_layers; ++layer) {
      for (size_t t = 0; t < context_tokens; ++t) {
        rng.FillGaussian(k.data(), stride);
        rng.FillGaussian(v.data(), stride);
        kv->AppendToken(layer, k.data(), v.data());
      }
    }
    auto imported = db->Import(ContextTokens(), std::move(kv));
    EXPECT_TRUE(imported.ok()) << imported.status().ToString();
    context_id = imported.ValueOr(0);
  }

  std::vector<int32_t> ContextTokens() const {
    std::vector<int32_t> t(context_tokens);
    for (size_t i = 0; i < context_tokens; ++i) t[i] = 100 + static_cast<int32_t>(i);
    return t;
  }

  ServingRequest MakeRequest(uint64_t seed, size_t steps) const {
    ServingRequest r;
    r.prompt = ContextTokens();
    r.max_new_tokens = steps;
    const ModelConfig m = model;
    r.fill_step = [m, seed](size_t step, uint32_t layer, float* q, float* k,
                            float* v) {
      Rng rng(seed * 1000003ull + step * 131ull + layer);
      rng.FillGaussian(q, static_cast<size_t>(m.num_q_heads) * m.head_dim);
      rng.FillGaussian(k, static_cast<size_t>(m.num_kv_heads) * m.head_dim);
      rng.FillGaussian(v, static_cast<size_t>(m.num_kv_heads) * m.head_dim);
    };
    return r;
  }
};

TEST(ServingLiveTest, LifecycleStateMachine) {
  LiveFixture fx;
  ServingEngine engine(fx.db.get(), fx.EngineOptions(2));
  EXPECT_EQ(engine.state(), ServingEngine::State::kCreated);
  EXPECT_TRUE(engine.Shutdown().ok());  // Never started: Ok no-op.

  ASSERT_TRUE(engine.Start().ok());
  EXPECT_EQ(engine.state(), ServingEngine::State::kRunning);
  // Double-Start is a typed precondition failure, not a second driver.
  EXPECT_EQ(engine.Start().code(), StatusCode::kFailedPrecondition);

  ASSERT_TRUE(engine.Shutdown().ok());
  EXPECT_EQ(engine.state(), ServingEngine::State::kStopped);
  EXPECT_TRUE(engine.Shutdown().ok());  // Double-Shutdown is idempotent.

  // Start-after-Shutdown: the engine is restartable and serves the backlog
  // accumulated while stopped.
  auto queued = engine.Submit(fx.MakeRequest(1, 2));
  ASSERT_TRUE(queued.ok());
  EXPECT_EQ(queued.value().TryWait(), nullptr);  // Stopped engine: in flight.
  ASSERT_TRUE(engine.Start().ok());
  const RequestResult* r = queued.value().Wait();
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->status.ok()) << r->status.ToString();
  EXPECT_EQ(r->steps_completed, 2u);
  ASSERT_TRUE(engine.Shutdown().ok());
  EXPECT_EQ(engine.state(), ServingEngine::State::kStopped);
}

TEST(ServingLiveTest, StreamingCallbackOrderedAndBitIdenticalToResult) {
  constexpr size_t kSteps = 6;
  LiveFixture fx;
  ServingEngine engine(fx.db.get(), fx.EngineOptions(1));
  ASSERT_TRUE(engine.Start().ok());

  // on_token runs on the driver thread; collect under a lock and compare the
  // stream against the recorded result afterwards.
  std::mutex mu;
  std::vector<size_t> streamed_steps;
  std::vector<float> streamed_values;
  ServingRequest req = fx.MakeRequest(7, kSteps);
  req.record_outputs = true;
  req.on_token = [&](size_t step, std::span<const float> out) {
    std::lock_guard<std::mutex> lk(mu);
    streamed_steps.push_back(step);
    streamed_values.insert(streamed_values.end(), out.begin(), out.end());
  };
  auto handle = engine.Submit(std::move(req));
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();

  const RequestResult* r = handle.value().Wait();
  ASSERT_NE(r, nullptr);
  ASSERT_TRUE(r->status.ok()) << r->status.ToString();
  ASSERT_TRUE(engine.Shutdown().ok());

  // Strict step order 0..N-1, and the streamed blocks ARE the outputs.
  ASSERT_EQ(streamed_steps.size(), kSteps);
  for (size_t i = 0; i < kSteps; ++i) EXPECT_EQ(streamed_steps[i], i);
  EXPECT_EQ(streamed_values, r->outputs);
  EXPECT_GT(r->ttft_seconds, 0.0);
  EXPECT_LE(r->ttft_seconds, r->decode_wall_seconds + r->prefill_wall_seconds + 1.0);
}

TEST(ServingLiveTest, SubmitWhileRunningIsAdmitted) {
  LiveFixture fx;
  ServingEngine engine(fx.db.get(), fx.EngineOptions(4));
  ASSERT_TRUE(engine.Start().ok());

  // First wave into a running (briefly idle) engine.
  std::vector<RequestHandle> handles;
  for (int i = 0; i < 3; ++i) {
    auto h = engine.Submit(fx.MakeRequest(20 + i, 3));
    ASSERT_TRUE(h.ok());
    handles.push_back(h.value());
  }
  // Second wave races the driver mid-flight: these are admitted at step
  // boundaries without any Run call — continuous admission.
  for (int i = 0; i < 3; ++i) {
    auto h = engine.Submit(fx.MakeRequest(30 + i, 3));
    ASSERT_TRUE(h.ok());
    handles.push_back(h.value());
  }
  for (const RequestHandle& h : handles) {
    const RequestResult* r = h.Wait();
    ASSERT_NE(r, nullptr);
    EXPECT_TRUE(r->status.ok()) << r->status.ToString();
    EXPECT_EQ(r->steps_completed, 3u);
  }
  engine.WaitIdle();
  ASSERT_TRUE(engine.Shutdown().ok());
  const ServingSnapshot snap = engine.snapshot();
  EXPECT_EQ(snap.completed, handles.size());
  EXPECT_EQ(snap.tokens_decoded, handles.size() * 3);
  EXPECT_EQ(engine.scheduler().active(), 0u);
  EXPECT_EQ(engine.scheduler().queued(), 0u);
}

TEST(ServingLiveTest, CancelQueuedFinalizesImmediatelyEvenWhenStopped) {
  LiveFixture fx;
  ServingEngine engine(fx.db.get(), fx.EngineOptions(1));
  auto h = engine.Submit(fx.MakeRequest(40, 4));
  ASSERT_TRUE(h.ok());
  // Never started: the cancel pulls the request out of the queue and
  // finalizes it from the calling thread.
  EXPECT_TRUE(h.value().Cancel());
  const RequestResult* r = h.value().TryWait();
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->status.code(), StatusCode::kCancelled);
  EXPECT_EQ(r->steps_completed, 0u);
  EXPECT_FALSE(h.value().Cancel());  // Already terminal.
  EXPECT_EQ(engine.scheduler().queued(), 0u);
  EXPECT_EQ(engine.snapshot().cancelled, 1u);
  // A later run has nothing to do and reports clean.
  ASSERT_TRUE(engine.RunToCompletion().ok());
  EXPECT_EQ(engine.snapshot().completed, 1u);
}

TEST(ServingLiveTest, CancelMidDecodeReleasesEverythingAndSkipsStore) {
  LiveFixture fx;
  ServingEngine engine(fx.db.get(), fx.EngineOptions(1));
  ASSERT_TRUE(engine.Start().ok());

  std::latch first_token(1);
  ServingRequest req = fx.MakeRequest(50, /*steps=*/100000);
  req.store_on_finish = true;  // Must be skipped on cancellation.
  req.on_token = [&](size_t step, std::span<const float>) {
    if (step == 0) first_token.count_down();
  };
  auto h = engine.Submit(std::move(req));
  ASSERT_TRUE(h.ok());

  first_token.wait();  // The session is provably mid-decode.
  EXPECT_TRUE(h.value().Cancel());
  const RequestResult* r = h.value().Wait();
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->status.code(), StatusCode::kCancelled);
  EXPECT_GE(r->steps_completed, 1u);
  EXPECT_LT(r->steps_completed, 100000u);
  EXPECT_EQ(r->stored_context_id, 0u);  // Store skipped.

  // The reservation and context pin are gone the moment the result is
  // terminal + the driver retires (Wait returns after FinalizeResult, which
  // precedes Release — WaitIdle closes the gap deterministically).
  engine.WaitIdle();
  EXPECT_EQ(engine.scheduler().active(), 0u);
  ASSERT_TRUE(engine.Shutdown().ok());
  EXPECT_EQ(fx.db->contexts().size(), 1u);  // Nothing materialized.
  EXPECT_EQ(engine.snapshot().materializations_completed, 0u);
  EXPECT_EQ(engine.snapshot().cancelled, 1u);
}

TEST(ServingLiveTest, DeadlineExpiresMidDecode) {
  LiveFixture fx;
  ServingEngine engine(fx.db.get(), fx.EngineOptions(1));
  ASSERT_TRUE(engine.Start().ok());
  ServingRequest req = fx.MakeRequest(60, /*steps=*/100000);
  req.deadline_seconds = 0.05;  // Generous for a few steps, hopeless for 1e5.
  auto h = engine.Submit(std::move(req));
  ASSERT_TRUE(h.ok());
  const RequestResult* r = h.value().Wait();
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(r->steps_completed, 100000u);
  ASSERT_TRUE(engine.Shutdown().ok());
  EXPECT_EQ(engine.snapshot().deadline_exceeded, 1u);
  EXPECT_EQ(engine.scheduler().active(), 0u);
}

TEST(ServingLiveTest, DeadlineExpiresWhileQueuedBehindLongRequest) {
  LiveFixture fx;
  ServingEngine engine(fx.db.get(), fx.EngineOptions(1));  // Single slot.
  ASSERT_TRUE(engine.Start().ok());

  std::latch first_token(1);
  ServingRequest hog = fx.MakeRequest(70, /*steps=*/100000);
  hog.on_token = [&](size_t step, std::span<const float>) {
    if (step == 0) first_token.count_down();
  };
  auto hog_handle = engine.Submit(std::move(hog));
  ASSERT_TRUE(hog_handle.ok());
  first_token.wait();  // The slot is provably taken.

  ServingRequest starved = fx.MakeRequest(71, 2);
  starved.deadline_seconds = 0.02;
  auto h = engine.Submit(std::move(starved));
  ASSERT_TRUE(h.ok());
  const RequestResult* r = h.value().Wait();  // Driver sweeps queued expiries.
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(r->steps_completed, 0u);  // Never admitted, never decoded.

  EXPECT_TRUE(hog_handle.value().Cancel());
  ASSERT_TRUE(engine.Shutdown().ok());
  EXPECT_EQ(engine.snapshot().deadline_exceeded, 1u);
  EXPECT_EQ(engine.snapshot().cancelled, 1u);
}

TEST(ServingLiveTest, AbortCancelsActiveAndQueued) {
  LiveFixture fx;
  ServingEngine engine(fx.db.get(), fx.EngineOptions(1));
  ASSERT_TRUE(engine.Start().ok());
  std::latch first_token(1);
  ServingRequest active = fx.MakeRequest(80, /*steps=*/100000);
  active.on_token = [&](size_t step, std::span<const float>) {
    if (step == 0) first_token.count_down();
  };
  auto a = engine.Submit(std::move(active));
  auto b = engine.Submit(fx.MakeRequest(81, 2));  // Queued behind the hog.
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  first_token.wait();

  ASSERT_TRUE(engine.Abort().ok());
  EXPECT_EQ(engine.state(), ServingEngine::State::kStopped);
  const RequestResult* ra = a.value().Wait();
  const RequestResult* rb = b.value().Wait();
  ASSERT_NE(ra, nullptr);
  ASSERT_NE(rb, nullptr);
  EXPECT_EQ(ra->status.code(), StatusCode::kCancelled);
  EXPECT_EQ(rb->status.code(), StatusCode::kCancelled);
  EXPECT_EQ(engine.scheduler().active(), 0u);
  EXPECT_EQ(engine.scheduler().queued(), 0u);
  EXPECT_EQ(engine.snapshot().cancelled, 2u);

  // Aborted != dead: a fresh Start serves new traffic.
  auto again = engine.Submit(fx.MakeRequest(82, 2));
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE(engine.Start().ok());
  const RequestResult* r = again.value().Wait();
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->status.ok()) << r->status.ToString();
  ASSERT_TRUE(engine.Shutdown().ok());
}

// Cancellations and deadlines racing the driver from multiple threads: every
// handle must reach exactly one typed terminal state and the scheduler must
// come out clean. Runs under TSan in CI.
TEST(ServingLiveTest, CancelAndDeadlineStormRacesDriver) {
  constexpr size_t kRequests = 24;
  LiveFixture fx;
  ServingEngine engine(fx.db.get(), fx.EngineOptions(3));
  ASSERT_TRUE(engine.Start().ok());

  std::vector<RequestHandle> handles(kRequests);
  for (size_t i = 0; i < kRequests; ++i) {
    ServingRequest req = fx.MakeRequest(100 + i, 4);
    // 1 + i%7 keeps every deadline strictly positive (0 would mean "none").
    if (i % 4 == 1) req.deadline_seconds = 0.001 * static_cast<double>(1 + i % 7);
    if (i % 4 == 2) req.store_on_finish = true;
    auto h = engine.Submit(std::move(req));
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    handles[i] = h.value();
  }

  // Two canceller threads sweep overlapping halves while the driver decodes.
  std::vector<std::thread> cancellers;
  for (int t = 0; t < 2; ++t) {
    cancellers.emplace_back([&, t] {
      for (size_t i = static_cast<size_t>(t); i < kRequests; i += 2) {
        if (i % 4 == 3) handles[i].Cancel();
        std::this_thread::yield();
      }
    });
  }
  for (auto& th : cancellers) th.join();

  size_t ok = 0, cancelled = 0, expired = 0;
  for (size_t i = 0; i < kRequests; ++i) {
    const RequestResult* r = handles[i].Wait();
    ASSERT_NE(r, nullptr) << "request " << i;
    if (r->status.ok()) {
      ++ok;
      EXPECT_EQ(r->steps_completed, 4u);
    } else if (r->status.IsCancelled()) {
      ++cancelled;
      EXPECT_EQ(r->stored_context_id, 0u);
    } else if (r->status.IsDeadlineExceeded()) {
      ++expired;
      EXPECT_EQ(r->stored_context_id, 0u);
    } else {
      FAIL() << "untyped terminal status: " << r->status.ToString();
    }
  }
  EXPECT_EQ(ok + cancelled + expired, kRequests);
  EXPECT_GT(ok, 0u);  // The un-cancelled, un-deadlined majority completes.

  engine.WaitIdle();
  ASSERT_TRUE(engine.Shutdown().ok());
  const ServingSnapshot snap = engine.snapshot();
  EXPECT_EQ(snap.completed, kRequests);
  EXPECT_EQ(snap.cancelled, cancelled);
  EXPECT_EQ(snap.deadline_exceeded, expired);
  EXPECT_EQ(engine.scheduler().active(), 0u);
  EXPECT_EQ(engine.scheduler().queued(), 0u);
  EXPECT_EQ(fx.db->contexts().pending(), 0u);
  // Every successful store_on_finish published; no cancelled one did.
  size_t stored = 0;
  for (const RequestHandle& h : handles) {
    const RequestResult* r = h.TryWait();
    ASSERT_NE(r, nullptr);
    if (r->stored_context_id != 0) {
      ++stored;
      EXPECT_TRUE(r->status.ok());
      EXPECT_NE(fx.db->contexts().FindShared(r->stored_context_id), nullptr);
    }
  }
  EXPECT_EQ(fx.db->contexts().size(), 1u + stored);
}

TEST(ServingLiveTest, RunToCompletionIsAWrapperOverTheLiveMachinery) {
  // The batch entry point and the live path must agree bit for bit: the same
  // requests through RunToCompletion and through Start/Wait/Shutdown.
  constexpr size_t kSteps = 4;
  std::vector<std::vector<float>> batch_outputs;
  {
    LiveFixture fx;
    ServingEngine engine(fx.db.get(), fx.EngineOptions(2));
    std::vector<RequestHandle> hs;
    for (int i = 0; i < 2; ++i) {
      ServingRequest r = fx.MakeRequest(200 + i, kSteps);
      r.record_outputs = true;
      auto h = engine.Submit(std::move(r));
      ASSERT_TRUE(h.ok());
      hs.push_back(h.value());
    }
    ASSERT_TRUE(engine.RunToCompletion().ok());
    EXPECT_EQ(engine.state(), ServingEngine::State::kStopped);
    for (auto& h : hs) {
      const RequestResult* r = h.TryWait();  // Terminal without blocking.
      ASSERT_NE(r, nullptr);
      ASSERT_TRUE(r->status.ok());
      batch_outputs.push_back(r->outputs);
    }
  }
  {
    LiveFixture fx;
    ServingEngine engine(fx.db.get(), fx.EngineOptions(2));
    ASSERT_TRUE(engine.Start().ok());
    std::vector<RequestHandle> hs;
    for (int i = 0; i < 2; ++i) {
      ServingRequest r = fx.MakeRequest(200 + i, kSteps);
      r.record_outputs = true;
      auto h = engine.Submit(std::move(r));
      ASSERT_TRUE(h.ok());
      hs.push_back(h.value());
    }
    for (size_t i = 0; i < hs.size(); ++i) {
      const RequestResult* r = hs[i].Wait();
      ASSERT_NE(r, nullptr);
      ASSERT_TRUE(r->status.ok());
      EXPECT_EQ(r->outputs, batch_outputs[i]) << "request " << i;
    }
    ASSERT_TRUE(engine.Shutdown().ok());
  }
}

TEST(ServingLiveTest, BoundedResultRetentionEvictsOldestButHandlesSurvive) {
  // The always-on leak fix: the id-keyed result map is bounded, evicting the
  // oldest terminal results beyond result_retention. Tickets co-own their
  // results, so every outstanding handle still reaches its full result —
  // only late result(id) lookups for ancient ids come back empty.
  LiveFixture fx;
  ServingEngineOptions opts = fx.EngineOptions(1);
  opts.result_retention = 2;
  ServingEngine engine(fx.db.get(), opts);
  std::vector<RequestHandle> handles;
  for (int i = 0; i < 5; ++i) {
    auto h = engine.Submit(fx.MakeRequest(60 + i, 2));
    ASSERT_TRUE(h.ok());
    handles.push_back(h.value());
  }
  ASSERT_TRUE(engine.RunToCompletion().ok());

  for (RequestHandle& h : handles) {
    const RequestResult* r = h.Wait();
    ASSERT_NE(r, nullptr);
    EXPECT_TRUE(r->status.ok()) << r->status.ToString();
    EXPECT_EQ(r->id, h.id());
    EXPECT_EQ(r->steps_completed, 2u);
  }

  // Sequential admission finalizes in id order: only the newest two ids
  // remain addressable; the snapshot still counts all five completions.
  size_t retained = 0;
  for (RequestHandle& h : handles) {
    if (engine.result(h.id()) != nullptr) ++retained;
  }
  EXPECT_EQ(retained, 2u);
  EXPECT_EQ(engine.result(handles[0].id()), nullptr);
  ASSERT_NE(engine.result(handles[4].id()), nullptr);
  EXPECT_EQ(engine.result(handles[4].id()), handles[4].Wait());
  EXPECT_EQ(engine.snapshot().completed, 5u);
}

}  // namespace
}  // namespace alaya
