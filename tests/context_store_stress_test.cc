// Concurrency stress for ContextStore and the DB front door: parallel
// Import / CreateSession / Store / Remove from the thread pool, locking in the
// guarantees the multi-session serving engine relies on (reader/writer lock +
// reference-counted context lifetime). Run under TSan in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/core/alaya_db.h"

namespace alaya {
namespace {

std::unique_ptr<KvCache> MakeKv(const ModelConfig& model, size_t tokens,
                                uint64_t seed) {
  auto kv = std::make_unique<KvCache>(model);
  Rng rng(seed);
  const size_t stride = model.num_kv_heads * model.head_dim;
  std::vector<float> k(stride), v(stride);
  for (uint32_t layer = 0; layer < model.num_layers; ++layer) {
    for (size_t t = 0; t < tokens; ++t) {
      rng.FillGaussian(k.data(), stride);
      rng.FillGaussian(v.data(), stride);
      kv->AppendToken(layer, k.data(), v.data());
    }
  }
  return kv;
}

std::vector<int32_t> TokenRange(int32_t start, size_t count) {
  std::vector<int32_t> t(count);
  for (size_t i = 0; i < count; ++i) t[i] = start + static_cast<int32_t>(i);
  return t;
}

TEST(ContextStoreStressTest, ParallelAddFindMatchRemove) {
  const ModelConfig model = ModelConfig::Tiny();
  ContextStore store;
  ThreadPool pool(4);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 8;
  std::atomic<int> found{0};

  for (int w = 0; w < kWriters; ++w) {
    pool.Submit([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        const int32_t base = w * 1000 + i * 50;
        auto ctx = std::make_unique<Context>(0, TokenRange(base, 24),
                                             MakeKv(model, 24, w * 100 + i));
        const uint64_t id = store.Add(std::move(ctx));
        // Interleave reads with other writers' adds/removes.
        if (store.FindShared(id) != nullptr) found.fetch_add(1);
        auto match = store.BestPrefixMatch(TokenRange(base, 30));
        EXPECT_GE(match.matched, 24u);
        store.Ids();
        store.TotalKvBytes();
        if (i % 3 == 2) store.Remove(id);
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(found.load(), kWriters * kPerWriter);
  // Each writer removed every third of its contexts.
  const size_t removed_per_writer = kPerWriter / 3;
  EXPECT_EQ(store.size(), kWriters * (kPerWriter - removed_per_writer));

  // Ids are unique even under concurrent assignment.
  std::vector<uint64_t> ids = store.Ids();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(ContextStoreStressTest, RemoveDoesNotFreePinnedContext) {
  const ModelConfig model = ModelConfig::Tiny();
  ContextStore store;
  auto ctx = std::make_unique<Context>(0, TokenRange(7, 16), MakeKv(model, 16, 9));
  const uint64_t id = store.Add(std::move(ctx));

  std::shared_ptr<Context> pinned = store.FindShared(id);
  ASSERT_NE(pinned, nullptr);
  ASSERT_TRUE(store.Remove(id));
  EXPECT_EQ(store.FindUnsafeForTest(id), nullptr);
  // The pin keeps the storage alive: reads remain valid after Remove.
  EXPECT_EQ(pinned->length(), 16u);
  EXPECT_EQ(pinned->tokens().front(), 7);
  EXPECT_EQ(pinned->kv().NumTokens(), 16u);
}

TEST(ContextStoreStressTest, ParallelImportCreateSessionStore) {
  const ModelConfig model = ModelConfig::Tiny();
  SimEnvironment env;
  DbOptions options;
  options.model = model;
  options.session.optimizer.short_context_threshold = 16;
  options.session.window = WindowConfig{4, 8};
  AlayaDB db(options, &env);

  ThreadPool pool(4);
  constexpr int kTenants = 4;
  std::atomic<int> failures{0};

  for (int w = 0; w < kTenants; ++w) {
    pool.Submit([&, w] {
      const int32_t base = w * 10000;
      // Import a tenant document.
      auto imported = db.Import(TokenRange(base, 48), MakeKv(model, 48, 7 + w));
      if (!imported.ok()) {
        failures.fetch_add(1);
        return;
      }
      // Open a session over it while other tenants import/store concurrently.
      auto created = db.CreateSession(TokenRange(base, 48));
      if (!created.ok() || created.value().reused_prefix != 48) {
        failures.fetch_add(1);
        return;
      }
      Session& session = *created.value().session;
      Rng rng(100 + w);
      const size_t qdim = static_cast<size_t>(model.num_q_heads) * model.head_dim;
      const size_t kvdim = static_cast<size_t>(model.num_kv_heads) * model.head_dim;
      std::vector<float> q(qdim), k(kvdim), v(kvdim), o(qdim);
      std::vector<int32_t> new_tokens;
      for (int step = 0; step < 3; ++step) {
        for (uint32_t layer = 0; layer < model.num_layers; ++layer) {
          rng.FillGaussian(q.data(), qdim);
          rng.FillGaussian(k.data(), kvdim);
          rng.FillGaussian(v.data(), kvdim);
          if (!session.Update(layer, q.data(), k.data(), v.data()).ok() ||
              !session.Attention(layer, q.data(), o.data()).ok()) {
            failures.fetch_add(1);
            return;
          }
        }
        new_tokens.push_back(base + 1000 + step);
      }
      // Materialize the extended context back into the shared store.
      if (!db.Store(&session, new_tokens).ok()) failures.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(failures.load(), 0);
  // Every tenant imported one context and stored one extension.
  EXPECT_EQ(db.contexts().size(), static_cast<size_t>(2 * kTenants));
  // All stored contexts remain individually reusable.
  for (uint64_t id : db.contexts().Ids()) {
    const Context* ctx = db.contexts().FindUnsafeForTest(id);
    ASSERT_NE(ctx, nullptr);
    auto again = db.CreateSession(ctx->tokens());
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again.value().reused_prefix, ctx->length());
  }
}

}  // namespace
}  // namespace alaya
